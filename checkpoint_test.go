package readys_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"readys"
)

func testAgent(t *testing.T, hidden, layers int) *readys.Agent {
	t.Helper()
	cfg := readys.DefaultAgentConfig()
	cfg.Hidden = hidden
	cfg.Layers = layers
	return readys.NewAgent(cfg)
}

// TestCheckpointRoundTrip saves an agent with metadata and restores it into a
// matching architecture: the restored agent must reproduce the original's
// schedules exactly, and the metadata must survive alongside the
// architecture keys SaveAgent adds.
func TestCheckpointRoundTrip(t *testing.T) {
	agent := testAgent(t, 8, 1)
	prob, err := readys.NewProblem(readys.Cholesky, 3, 1, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := readys.Schedule(agent, prob, 5)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "agent.json")
	meta := map[string]string{"source": "round-trip test", "episodes": "0"}
	if err := readys.SaveAgent(agent, path, meta); err != nil {
		t.Fatal(err)
	}

	restored := testAgent(t, 8, 1)
	got, err := readys.LoadAgent(restored, path)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range meta {
		if got[k] != v {
			t.Errorf("meta[%q] = %q, want %q", k, got[k], v)
		}
	}
	// SaveAgent records the architecture so checkpoints are self-describing.
	if got["hidden"] != "8" || got["layers"] != "1" {
		t.Errorf("architecture meta missing: %v", got)
	}

	res, err := readys.Schedule(restored, prob, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != want.Makespan {
		t.Fatalf("restored agent schedules differently: %g vs %g", res.Makespan, want.Makespan)
	}
}

// TestCheckpointMismatchedConfig loads a checkpoint into agents whose
// architecture differs in width and in depth: both must fail cleanly, naming
// the offending parameter.
func TestCheckpointMismatchedConfig(t *testing.T) {
	agent := testAgent(t, 8, 1)
	path := filepath.Join(t.TempDir(), "agent.json")
	if err := readys.SaveAgent(agent, path, nil); err != nil {
		t.Fatal(err)
	}

	if _, err := readys.LoadAgent(testAgent(t, 16, 1), path); err == nil {
		t.Fatal("hidden-width mismatch must fail")
	} else if !strings.Contains(err.Error(), "shape mismatch") {
		t.Fatalf("want a shape-mismatch error, got: %v", err)
	}
	// Deeper net: the extra GCN layer's parameters are missing entirely.
	if _, err := readys.LoadAgent(testAgent(t, 8, 2), path); err == nil {
		t.Fatal("layer-count mismatch must fail")
	} else if !strings.Contains(err.Error(), "missing parameter") {
		t.Fatalf("want a missing-parameter error, got: %v", err)
	}
}

// TestCheckpointCorruptFiles feeds truncated and malformed checkpoint files
// to LoadAgent: every case must return an error (never panic) and leave the
// target agent usable.
func TestCheckpointCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	agent := testAgent(t, 8, 1)
	good := filepath.Join(dir, "good.json")
	if err := readys.SaveAgent(agent, good, nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	write := func(name string, data []byte) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"missing":       filepath.Join(dir, "does-not-exist.json"),
		"empty":         write("empty.json", nil),
		"truncated":     write("truncated.json", raw[:len(raw)/2]),
		"not json":      write("garbage.json", []byte("not a checkpoint")),
		"wrong version": write("version.json", []byte(`{"version":99,"params":[]}`)),
		"no params":     write("noparams.json", []byte(`{"version":1,"params":[]}`)),
		"short data": write("shortdata.json",
			[]byte(`{"version":1,"params":[{"name":"input.W","rows":9,"cols":8,"data":[1,2]}]}`)),
	}
	for name, path := range cases {
		t.Run(name, func(t *testing.T) {
			target := testAgent(t, 8, 1)
			if _, err := readys.LoadAgent(target, path); err == nil {
				t.Fatalf("loading %s succeeded, want an error", path)
			}
			// The failed load must not have wedged the agent.
			prob, err := readys.NewProblem(readys.Cholesky, 2, 1, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := readys.Schedule(target, prob, 1); err != nil {
				t.Fatalf("agent unusable after failed load: %v", err)
			}
		})
	}
}
