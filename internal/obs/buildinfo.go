package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary for /healthz responses: module
// version, VCS revision, and toolchain. Fields the build didn't stamp (e.g.
// test binaries, or builds outside a git checkout) are left empty rather than
// guessed.
type BuildInfo struct {
	Module   string `json:"module,omitempty"`
	Version  string `json:"version,omitempty"`
	Revision string `json:"revision,omitempty"`
	Modified bool   `json:"modified,omitempty"`
	Go       string `json:"go"`
}

// ReadBuildInfo extracts BuildInfo from runtime/debug's embedded build
// metadata. It never fails: with no embedded info only the Go version is set.
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{Go: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.Module = info.Main.Path
	if info.Main.Version != "" && info.Main.Version != "(devel)" {
		bi.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
}
