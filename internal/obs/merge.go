package obs

import (
	"encoding/json"
	"fmt"
)

// MergeTraces joins Chrome trace exports from several processes into one
// loadable document. Every exporter in this repository records under its own
// local pid namespace (sim and serve both use pid 1, fleet uses 1 and 2), so
// a naive concatenation would interleave unrelated lanes. Merge assigns each
// (input document, local pid) pair a fresh global pid in order of first
// appearance, rewrites naming metadata and events accordingly, and emits all
// metadata first followed by each document's events in record order — lanes
// stay disjoint, so per-lane B/E balance and timestamp monotonicity survive
// the merge. Span identity in Args (trace_id / span_id / parent_span_id) is
// untouched: that is what stitches the processes together logically, and what
// ValidateTraceLinks resolves afterwards.
func MergeTraces(docs ...[]byte) ([]byte, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("obs: MergeTraces needs at least one trace document")
	}
	type lane struct {
		doc int
		pid int64
	}
	remap := make(map[lane]int64)
	var nextPID int64 = 1
	mapPID := func(doc int, pid int64) int64 {
		key := lane{doc, pid}
		if g, ok := remap[key]; ok {
			return g
		}
		g := nextPID
		nextPID++
		remap[key] = g
		return g
	}

	parsed := make([]chromeTrace, len(docs))
	var droppedTotal float64
	for i, data := range docs {
		if err := json.Unmarshal(data, &parsed[i]); err != nil {
			return nil, fmt.Errorf("obs: merge input %d is not a valid trace: %w", i, err)
		}
		if len(parsed[i].TraceEvents) == 0 {
			return nil, fmt.Errorf("obs: merge input %d has no events", i)
		}
		if d, ok := parsed[i].OtherData["dropped_events"].(float64); ok {
			droppedTotal += d
		}
	}

	// Pass 1: metadata, in document order, establishing the pid remap so
	// process naming appears before any event on the lane.
	var out []Event
	for i := range parsed {
		for _, e := range parsed[i].TraceEvents {
			if e.Ph != PhaseMetadata {
				continue
			}
			e.PID = mapPID(i, e.PID)
			out = append(out, e)
		}
	}
	// Pass 2: events, per document in record order.
	for i := range parsed {
		for _, e := range parsed[i].TraceEvents {
			if e.Ph == PhaseMetadata {
				continue
			}
			e.PID = mapPID(i, e.PID)
			out = append(out, e)
		}
	}

	merged := chromeTrace{
		TraceEvents:     out,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"merged_from": len(docs)},
	}
	if droppedTotal > 0 {
		merged.OtherData["dropped_events"] = droppedTotal
	}
	return json.Marshal(merged)
}
