package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// FlightEvent is one record in the cluster flight recorder: a timestamped
// cluster-level occurrence (a job arriving, a placement decision, a task
// killed by a fault, a resource going down) kept for post-mortem queries.
// Fields not meaningful for a kind are left at their zero value; Res is -1
// when no resource is involved.
type FlightEvent struct {
	T    float64 `json:"t"`              // simulated-clock time, seconds
	Kind string  `json:"kind"`           // one of the Flight* constants
	Job  string  `json:"job,omitempty"`  // stream job ID, when known
	Task string  `json:"task,omitempty"` // task name, when known
	Res  int     `json:"res"`            // resource index, -1 when not applicable
	Val  float64 `json:"val,omitempty"`  // kind-specific value (depth, speed factor, task count)
	Note string  `json:"note,omitempty"` // kind-specific detail (fault kind, policy verdict)
}

// Flight-event kinds recorded by the simulator and stream driver.
const (
	FlightArrival      = "arrival"       // a DAG job entered the cluster (Val = task count)
	FlightDecision     = "decision"      // the policy placed a task on a resource
	FlightKill         = "kill"          // a running task was killed by a fault
	FlightFault        = "fault"         // a fault event fired (Note = outage/death/degrade/recover)
	FlightResourceUp   = "resource_up"   // a resource came (back) up (Val = speed factor)
	FlightResourceDown = "resource_down" // a resource went down
	FlightReadyDepth   = "ready_depth"   // periodic sample of the ready-queue depth (Val = depth)
)

// DefaultFlightCapacity is the ring size used when NewFlightRecorder is given
// a non-positive capacity: enough for a few hundred streamed jobs.
const DefaultFlightCapacity = 1 << 14

// FlightRecorder keeps the most recent FlightEvents in a fixed-capacity ring
// buffer, overwriting the oldest when full — the same always-on, bounded
// discipline as Tracer, so a long-running stream can leave it enabled and
// still read the window around an incident afterwards. All methods are safe
// for concurrent use.
type FlightRecorder struct {
	mu      sync.Mutex
	buf     []FlightEvent
	next    int
	full    bool
	dropped uint64
}

// NewFlightRecorder returns a recorder with the given ring capacity (<= 0
// selects DefaultFlightCapacity).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{buf: make([]FlightEvent, 0, capacity)}
}

// Record appends one event, overwriting the oldest when the ring is full.
// Recording on a nil recorder is a no-op, so call sites can stay unguarded.
func (r *FlightRecorder) Record(e FlightEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
		r.full = true
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns a copy of the buffered events in record order (oldest
// first).
func (r *FlightRecorder) Events() []FlightEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]FlightEvent(nil), r.buf...)
	}
	out := make([]FlightEvent, 0, cap(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (r *FlightRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of buffered events.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// WriteJSONL exports the buffered events as JSON Lines, one event per line,
// oldest first — the same shape DecodeJSONLines and ReadFlightEvents read
// back.
func (r *FlightRecorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFlightEvents parses a JSONL flight-recorder export, skipping blank
// lines.
func ReadFlightEvents(rd io.Reader) ([]FlightEvent, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []FlightEvent
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e FlightEvent
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("obs: flight line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// FilterFlight returns the events matching kind (empty = any) within the
// closed time range [from, to] (to <= 0 = unbounded above).
func FilterFlight(events []FlightEvent, kind string, from, to float64) []FlightEvent {
	var out []FlightEvent
	for _, e := range events {
		if kind != "" && e.Kind != kind {
			continue
		}
		if e.T < from {
			continue
		}
		if to > 0 && e.T > to {
			continue
		}
		out = append(out, e)
	}
	return out
}

// FlightSummary aggregates a flight recording for the post-mortem one-liner
// readys-obs-check prints.
type FlightSummary struct {
	Events        int            `json:"events"`
	TMin          float64        `json:"t_min,omitempty"`
	TMax          float64        `json:"t_max,omitempty"`
	ByKind        map[string]int `json:"by_kind"`
	KillsByRes    map[int]int    `json:"kills_by_res,omitempty"`
	MaxReadyDepth float64        `json:"max_ready_depth,omitempty"`
}

// SummarizeFlight counts events per kind, tracks the recorded time range, the
// per-resource kill tally, and the deepest ready-queue sample.
func SummarizeFlight(events []FlightEvent) FlightSummary {
	s := FlightSummary{ByKind: make(map[string]int)}
	s.Events = len(events)
	if len(events) == 0 {
		return s
	}
	s.TMin, s.TMax = math.Inf(1), math.Inf(-1)
	for _, e := range events {
		s.ByKind[e.Kind]++
		if e.T < s.TMin {
			s.TMin = e.T
		}
		if e.T > s.TMax {
			s.TMax = e.T
		}
		if e.Kind == FlightKill && e.Res >= 0 {
			if s.KillsByRes == nil {
				s.KillsByRes = make(map[int]int)
			}
			s.KillsByRes[e.Res]++
		}
		if e.Kind == FlightReadyDepth && e.Val > s.MaxReadyDepth {
			s.MaxReadyDepth = e.Val
		}
	}
	return s
}

// FormatFlightSummary renders a summary as stable, sorted text for CLI output
// and golden tests.
func FormatFlightSummary(s FlightSummary) string {
	out := fmt.Sprintf("events=%d", s.Events)
	if s.Events > 0 {
		out += fmt.Sprintf(" t=[%.3f,%.3f]", s.TMin, s.TMax)
	}
	kinds := make([]string, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		out += fmt.Sprintf(" %s=%d", k, s.ByKind[k])
	}
	if s.MaxReadyDepth > 0 {
		out += fmt.Sprintf(" max_ready_depth=%.0f", s.MaxReadyDepth)
	}
	if len(s.KillsByRes) > 0 {
		ress := make([]int, 0, len(s.KillsByRes))
		for r := range s.KillsByRes {
			ress = append(ress, r)
		}
		sort.Ints(ress)
		for _, r := range ress {
			out += fmt.Sprintf(" kills[res%d]=%d", r, s.KillsByRes[r])
		}
	}
	return out
}
