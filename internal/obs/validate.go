package obs

import (
	"encoding/json"
	"fmt"
)

// ValidateChromeTrace checks that data is a loadable Chrome trace-event JSON
// document: a JSON object with a non-empty traceEvents array, every B event
// balanced by a matching E on the same (pid, tid) lane, non-decreasing B/E
// timestamps per lane, and non-negative X durations. This is what the golden
// and property tests (and `readys-obs-check`) assert before anyone loads a
// trace into Perfetto.
func ValidateChromeTrace(data []byte) error {
	var doc chromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace has no events")
	}
	type lane struct{ pid, tid int64 }
	stacks := make(map[lane][]string)
	lastTS := make(map[lane]float64)
	for i, e := range doc.TraceEvents {
		l := lane{e.PID, e.TID}
		switch e.Ph {
		case PhaseBegin, PhaseEnd:
			if last, ok := lastTS[l]; ok && e.TS < last {
				return fmt.Errorf("obs: event %d (%s %q): timestamp %.3f before %.3f on lane pid=%d tid=%d",
					i, e.Ph, e.Name, e.TS, last, e.PID, e.TID)
			}
			lastTS[l] = e.TS
			if e.Ph == PhaseBegin {
				stacks[l] = append(stacks[l], e.Name)
				continue
			}
			st := stacks[l]
			if len(st) == 0 {
				return fmt.Errorf("obs: event %d: E %q on lane pid=%d tid=%d with no open B", i, e.Name, e.PID, e.TID)
			}
			top := st[len(st)-1]
			if e.Name != "" && top != "" && e.Name != top {
				return fmt.Errorf("obs: event %d: E %q closes B %q on lane pid=%d tid=%d", i, e.Name, top, e.PID, e.TID)
			}
			stacks[l] = st[:len(st)-1]
		case PhaseComplete:
			if e.Dur < 0 {
				return fmt.Errorf("obs: event %d: X %q has negative duration %.3f", i, e.Name, e.Dur)
			}
		case PhaseInstant, PhaseMetadata:
			// Nothing positional to check.
		default:
			return fmt.Errorf("obs: event %d: unknown phase %q", i, e.Ph)
		}
	}
	for l, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("obs: lane pid=%d tid=%d ends with %d unclosed B events (first: %q)", l.pid, l.tid, len(st), st[0])
		}
	}
	return nil
}

// ValidateTraceLinks checks the distributed-tracing layer of a (typically
// merged) Chrome trace: every span that names a parent_span_id must find a
// recorded span with that span_id in the same trace_id, and at least one
// parent link must resolve across process (pid) boundaries when spans from
// more than one process are present. Single-process exports legitimately
// contain dangling parents (the parent span lives in another process's ring),
// which is why this is separate from ValidateChromeTrace and only applied
// after MergeTraces.
func ValidateTraceLinks(data []byte) error {
	var doc chromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	argStr := func(args map[string]any, key string) string {
		s, _ := args[key].(string)
		return s
	}
	type spanKey struct{ trace, span string }
	spanPID := make(map[spanKey]int64)
	spanCount := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == PhaseMetadata {
			continue
		}
		trace, span := argStr(e.Args, ArgTraceID), argStr(e.Args, ArgSpanID)
		if trace == "" || span == "" {
			continue
		}
		spanCount++
		spanPID[spanKey{trace, span}] = e.PID
	}
	if spanCount == 0 {
		return fmt.Errorf("obs: trace has no spans carrying trace context (%s/%s args)", ArgTraceID, ArgSpanID)
	}
	pids := make(map[int64]bool)
	crossPID := false
	linked := 0
	for i, e := range doc.TraceEvents {
		if e.Ph == PhaseMetadata {
			continue
		}
		trace, span := argStr(e.Args, ArgTraceID), argStr(e.Args, ArgSpanID)
		if trace == "" || span == "" {
			continue
		}
		pids[e.PID] = true
		parent := argStr(e.Args, ArgParentSpan)
		if parent == "" {
			continue
		}
		parentPID, ok := spanPID[spanKey{trace, parent}]
		if !ok {
			return fmt.Errorf("obs: event %d (%q): parent span %s not found in trace %s", i, e.Name, parent, trace)
		}
		linked++
		if parentPID != e.PID {
			crossPID = true
		}
	}
	if linked == 0 {
		return fmt.Errorf("obs: trace has spans but no parent links to check")
	}
	if len(pids) > 1 && !crossPID {
		return fmt.Errorf("obs: spans from %d processes but no parent link crosses a process boundary", len(pids))
	}
	return nil
}
