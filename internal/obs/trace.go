package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Event is one record in the Chrome trace-event JSON format (the format
// chrome://tracing and Perfetto load). Timestamps and durations are in
// microseconds, per the format specification.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace-event phase constants used by this repository.
const (
	PhaseBegin    = "B" // duration-slice begin
	PhaseEnd      = "E" // duration-slice end
	PhaseComplete = "X" // complete slice with an explicit duration
	PhaseInstant  = "i" // point event
	PhaseMetadata = "M" // process/thread naming
)

// Tracer records timestamped, attributed events into a fixed-capacity ring
// buffer. When the ring is full, the oldest events are overwritten (the
// dropped count is reported in the exported trace), so a long-running server
// always keeps the most recent window. Process and thread names are stored
// outside the ring so lane naming survives wrap-around. All methods are safe
// for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	dropped uint64

	procNames   map[int64]string
	threadNames map[[2]int64]string
	procOrder   []int64
	threadOrder [][2]int64
}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity: enough for a few thousand requests or a mid-size
// simulated schedule.
const DefaultTraceCapacity = 1 << 16

// NewTracer returns a tracer with the given ring capacity (<= 0 selects
// DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		buf:         make([]Event, 0, capacity),
		procNames:   make(map[int64]string),
		threadNames: make(map[[2]int64]string),
	}
}

func (t *Tracer) push(e Event) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.next = (t.next + 1) % cap(t.buf)
		t.full = true
		t.dropped++
	}
	t.mu.Unlock()
}

// Begin records the start of a duration slice on lane (pid, tid) at ts
// microseconds.
func (t *Tracer) Begin(name, cat string, pid, tid int64, ts float64, args map[string]any) {
	t.push(Event{Name: name, Cat: cat, Ph: PhaseBegin, TS: ts, PID: pid, TID: tid, Args: args})
}

// End closes the innermost open slice on lane (pid, tid) at ts microseconds.
func (t *Tracer) End(name string, pid, tid int64, ts float64) {
	t.push(Event{Name: name, Ph: PhaseEnd, TS: ts, PID: pid, TID: tid})
}

// Complete records a slice with an explicit duration (both in microseconds).
func (t *Tracer) Complete(name, cat string, pid, tid int64, ts, dur float64, args map[string]any) {
	t.push(Event{Name: name, Cat: cat, Ph: PhaseComplete, TS: ts, Dur: dur, PID: pid, TID: tid, Args: args})
}

// Instant records a point event.
func (t *Tracer) Instant(name, cat string, pid, tid int64, ts float64, args map[string]any) {
	t.push(Event{Name: name, Cat: cat, Ph: PhaseInstant, TS: ts, PID: pid, TID: tid, Args: args})
}

// NameProcess assigns a display name to a pid.
func (t *Tracer) NameProcess(pid int64, name string) {
	t.mu.Lock()
	if _, ok := t.procNames[pid]; !ok {
		t.procOrder = append(t.procOrder, pid)
	}
	t.procNames[pid] = name
	t.mu.Unlock()
}

// NameThread assigns a display name to a lane (pid, tid).
func (t *Tracer) NameThread(pid, tid int64, name string) {
	key := [2]int64{pid, tid}
	t.mu.Lock()
	if _, ok := t.threadNames[key]; !ok {
		t.threadOrder = append(t.threadOrder, key)
	}
	t.threadNames[key] = name
	t.mu.Unlock()
}

// Events returns a copy of the buffered events in record order (oldest
// first), excluding naming metadata.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Event(nil), t.buf...)
	}
	out := make([]Event, 0, cap(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// chromeTrace is the JSON-object envelope of the trace-event format.
type chromeTrace struct {
	TraceEvents     []Event        `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace exports the buffered events as a Chrome trace-event JSON
// object: naming metadata first (sorted, so output is deterministic), then
// the events in record order. The result loads directly in chrome://tracing
// and https://ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	procs := append([]int64(nil), t.procOrder...)
	threads := append([][2]int64(nil), t.threadOrder...)
	dropped := t.dropped
	t.mu.Unlock()
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	sort.Slice(threads, func(i, j int) bool {
		if threads[i][0] != threads[j][0] {
			return threads[i][0] < threads[j][0]
		}
		return threads[i][1] < threads[j][1]
	})

	events := make([]Event, 0, len(procs)+len(threads)+t.Len())
	t.mu.Lock()
	for _, pid := range procs {
		events = append(events, Event{
			Name: "process_name", Ph: PhaseMetadata, PID: pid,
			Args: map[string]any{"name": t.procNames[pid]},
		})
	}
	for _, key := range threads {
		events = append(events, Event{
			Name: "thread_name", Ph: PhaseMetadata, PID: key[0], TID: key[1],
			Args: map[string]any{"name": t.threadNames[key]},
		})
	}
	t.mu.Unlock()
	events = append(events, t.Events()...)

	out := chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}
	if dropped > 0 {
		out.OtherData = map[string]any{"dropped_events": dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
