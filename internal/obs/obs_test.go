package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("readys_things_total", "things that happened")
	c.Add(3)
	g := r.Gauge("readys_depth", "current depth")
	g.Set(-2)
	r.GaugeFunc("readys_computed", "computed at exposition", func() float64 { return 1.5 })
	h := r.Histogram("readys_lat_ms", "latency", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)
	v := r.CounterVec("readys_reqs_total", "requests", "endpoint")
	v.With("b").Add(2)
	v.With("a").Inc()

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wants := []string{
		"# TYPE readys_things_total counter",
		"readys_things_total 3",
		"readys_depth -2",
		"# TYPE readys_computed gauge",
		"readys_computed 1.5",
		"readys_lat_ms_bucket{le=\"1\"} 1",
		"readys_lat_ms_bucket{le=\"10\"} 2",
		"readys_lat_ms_bucket{le=\"+Inf\"} 3",
		"readys_lat_ms_sum 105.5",
		"readys_lat_ms_count 3",
		`readys_reqs_total{endpoint="a"} 1`,
		`readys_reqs_total{endpoint="b"} 2`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sorted children: a before b.
	if strings.Index(out, `endpoint="a"`) > strings.Index(out, `endpoint="b"`) {
		t.Errorf("vec children not sorted:\n%s", out)
	}
}

func TestGaugeVecText(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("readys_replica_up", "replica health", "replica")
	v.With("http://a:1").Set(1)
	v.With("http://b:2").Set(0)
	v.With("http://a:1").Set(0) // overwrite, not accumulate

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE readys_replica_up gauge",
		`readys_replica_up{replica="http://a:1"} 0`,
		`readys_replica_up{replica="http://b:2"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	labels := v.Labels()
	if len(labels) != 2 {
		t.Fatalf("Labels() = %v, want 2 children", labels)
	}
	if v.With("http://a:1") != v.With("http://a:1") {
		t.Fatal("same label values must return the same gauge")
	}
}

func TestRegistryReuseAndConcurrency(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x", "") != r.Counter("x", "") {
		t.Fatal("re-registering a counter must return the same instance")
	}
	v := r.CounterVec("y", "", "l")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				v.With("a").Inc()
				r.Counter("x", "").Inc()
			}
		}()
	}
	wg.Wait()
	if got := v.With("a").Value(); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	s := h.Snapshot()
	if s.Count != 3 || s.Sum != 5 {
		t.Fatalf("count=%d sum=%g", s.Count, s.Sum)
	}
	want := []uint64{1, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", s.Counts, want)
		}
	}
}

func TestTracerRingAndExport(t *testing.T) {
	tr := NewTracer(4)
	tr.NameProcess(1, "proc")
	tr.NameThread(1, 0, "lane0")
	tr.Begin("a", "cat", 1, 0, 10, map[string]any{"k": 1})
	tr.End("a", 1, 0, 20)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// 2 metadata + 2 events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("exported %d events, want 4", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != PhaseMetadata {
		t.Fatalf("metadata must come first, got %+v", doc.TraceEvents[0])
	}

	// Overflow the ring: oldest events are dropped, count reported.
	for i := 0; i < 10; i++ {
		tr.Complete("x", "", 1, 0, float64(i), 1, nil)
	}
	if tr.Len() != 4 {
		t.Fatalf("ring holds %d, want 4", tr.Len())
	}
	if tr.Dropped() == 0 {
		t.Fatal("dropped count not recorded")
	}
	ev := tr.Events()
	if ev[0].TS >= ev[len(ev)-1].TS {
		t.Fatalf("ring order wrong: %+v", ev)
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":     `{`,
		"empty":        `{"traceEvents":[]}`,
		"unbalanced B": `{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":1,"tid":1}]}`,
		"stray E":      `{"traceEvents":[{"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]}`,
		"time travel": `{"traceEvents":[
			{"name":"a","ph":"B","ts":5,"pid":1,"tid":1},
			{"name":"a","ph":"E","ts":4,"pid":1,"tid":1}]}`,
		"mismatched nesting": `{"traceEvents":[
			{"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
			{"name":"b","ph":"E","ts":2,"pid":1,"tid":1}]}`,
	}
	for name, data := range cases {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	if err := j.Write(map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Write(map[string]int{"b": 2}); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	lines, err := DecodeJSONLines(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("decoded %d lines, want 2", len(lines))
	}
	if _, err := DecodeJSONLines([]byte("{\"ok\":1}\nnope\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}
