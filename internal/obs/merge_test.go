package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// twoProcessDocs builds a dispatcher-like and a worker-like export, both
// recorded under local pid 1 (the collision MergeTraces must resolve), with
// the worker's span parented to the dispatcher's via trace context args.
func twoProcessDocs(t *testing.T) (disp, work []byte) {
	t.Helper()
	d := NewTracer(0)
	d.NameProcess(1, "dispatcher")
	d.Complete("request", "request", 1, 1, 0, 100,
		SpanArgs(map[string]any{"path": "/v1/jobs"}, "trace1", "spanA", ""))

	w := NewTracer(0)
	w.NameProcess(1, "worker")
	w.Complete("execute", "job", 1, 1, 50, 40,
		SpanArgs(map[string]any{"job_id": "j000001"}, "trace1", "spanB", "spanA"))

	var db, wb bytes.Buffer
	if err := d.WriteChromeTrace(&db); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChromeTrace(&wb); err != nil {
		t.Fatal(err)
	}
	return db.Bytes(), wb.Bytes()
}

func TestMergeTracesStitchesProcesses(t *testing.T) {
	disp, work := twoProcessDocs(t)
	merged, err := MergeTraces(disp, work)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(merged); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	if err := ValidateTraceLinks(merged); err != nil {
		t.Fatalf("merged trace links: %v", err)
	}

	// Both inputs recorded under local pid 1; the merge must keep their
	// lanes disjoint or span balance would be cross-contaminated.
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			PID  int64          `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(merged, &doc); err != nil {
		t.Fatal(err)
	}
	pids := map[int64]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph != PhaseMetadata {
			pids[e.PID] = true
		}
	}
	if len(pids) != 2 {
		t.Fatalf("merged trace has %d distinct pids, want 2 (lanes must stay disjoint)", len(pids))
	}
	if got, ok := doc.OtherData["merged_from"].(float64); !ok || got != 2 {
		t.Errorf("otherData merged_from = %v, want 2", doc.OtherData["merged_from"])
	}
}

func TestMergeTracesRejectsBadInput(t *testing.T) {
	if _, err := MergeTraces(); err == nil {
		t.Error("merging zero documents should fail")
	}
	if _, err := MergeTraces([]byte("{not json")); err == nil {
		t.Error("invalid JSON input should fail")
	}
	if _, err := MergeTraces([]byte(`{"traceEvents":[]}`)); err == nil {
		t.Error("empty trace input should fail")
	}
}

func TestValidateTraceLinksDanglingParent(t *testing.T) {
	// A single-process export whose span points at a parent recorded in
	// another process's ring: fine structurally, an error for -links.
	tr := NewTracer(0)
	tr.Complete("execute", "job", 1, 1, 0, 10,
		SpanArgs(nil, "trace1", "spanB", "missing-parent"))
	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(b.Bytes()); err != nil {
		t.Fatalf("structure should validate: %v", err)
	}
	err := ValidateTraceLinks(b.Bytes())
	if err == nil || !strings.Contains(err.Error(), "parent span missing-parent not found") {
		t.Fatalf("dangling parent not reported: %v", err)
	}
}

func TestValidateTraceLinksRequiresContextAndLinks(t *testing.T) {
	tr := NewTracer(0)
	tr.Complete("plain", "work", 1, 1, 0, 10, nil)
	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceLinks(b.Bytes()); err == nil ||
		!strings.Contains(err.Error(), "no spans carrying trace context") {
		t.Errorf("context-free trace: %v", err)
	}

	tr2 := NewTracer(0)
	tr2.Complete("root", "work", 1, 1, 0, 10, SpanArgs(nil, "trace1", "spanA", ""))
	var b2 bytes.Buffer
	if err := tr2.WriteChromeTrace(&b2); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceLinks(b2.Bytes()); err == nil ||
		!strings.Contains(err.Error(), "no parent links") {
		t.Errorf("link-free trace: %v", err)
	}
}

func TestValidateTraceLinksDemandsCrossProcessLink(t *testing.T) {
	// Two processes whose links all stay process-local: the stitch failed
	// even though every parent resolves.
	d := NewTracer(0)
	d.Complete("a", "work", 1, 1, 0, 10, SpanArgs(nil, "t1", "s1", ""))
	d.Complete("b", "work", 1, 1, 20, 10, SpanArgs(nil, "t1", "s2", "s1"))
	w := NewTracer(0)
	w.Complete("c", "work", 1, 1, 0, 10, SpanArgs(nil, "t2", "s3", ""))
	w.Complete("d", "work", 1, 1, 20, 10, SpanArgs(nil, "t2", "s4", "s3"))
	var db, wb bytes.Buffer
	if err := d.WriteChromeTrace(&db); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChromeTrace(&wb); err != nil {
		t.Fatal(err)
	}
	merged, err := MergeTraces(db.Bytes(), wb.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceLinks(merged); err == nil ||
		!strings.Contains(err.Error(), "no parent link crosses a process boundary") {
		t.Errorf("local-only links should fail multi-process validation: %v", err)
	}
}

func TestSpanContextHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	if sc.TraceID == "" || sc.SpanID == "" || sc.TraceID == sc.SpanID {
		t.Fatalf("degenerate ids: %+v", sc)
	}
	h := make(map[string][]string)
	sc.Inject(h)
	trace, parent, ok := ExtractTraceContext(h)
	if !ok || trace != sc.TraceID || parent != sc.SpanID {
		t.Fatalf("round trip: got (%q, %q, %v), want (%q, %q, true)", trace, parent, ok, sc.TraceID, sc.SpanID)
	}
	if _, _, ok := ExtractTraceContext(map[string][]string{}); ok {
		t.Error("empty headers should not extract")
	}
}

func TestSpanArgsOmitsEmptyParent(t *testing.T) {
	a := SpanArgs(map[string]any{"k": "v"}, "t", "s", "")
	if _, ok := a[ArgParentSpan]; ok {
		t.Error("empty parent must be omitted, not recorded as \"\"")
	}
	if a["k"] != "v" || a[ArgTraceID] != "t" || a[ArgSpanID] != "s" {
		t.Errorf("args mangled: %v", a)
	}
	b := SpanArgs(nil, "t", "s", "p")
	if b[ArgParentSpan] != "p" {
		t.Errorf("parent lost: %v", b)
	}
}
