package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestFlightRecorderWrapOverwritesOldest(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(FlightEvent{T: float64(i), Kind: FlightDecision, Res: i})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	// Oldest overwritten: the survivors are the last four, in record order.
	for i, e := range evs {
		if want := float64(6 + i); e.T != want {
			t.Errorf("event %d: T = %v, want %v", i, e.T, want)
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var r *FlightRecorder
	r.Record(FlightEvent{Kind: FlightKill}) // must not panic
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Error("nil recorder should report empty")
	}
}

func TestFlightJSONLRoundTrip(t *testing.T) {
	r := NewFlightRecorder(0)
	in := []FlightEvent{
		{T: 0, Kind: FlightArrival, Job: "j0", Res: -1, Val: 21},
		{T: 1.5, Kind: FlightDecision, Job: "j0", Task: "POTRF_0", Res: 2},
		{T: 3.25, Kind: FlightFault, Res: 1, Note: "outage"},
		{T: 3.25, Kind: FlightResourceDown, Res: 1},
		{T: 4, Kind: FlightKill, Job: "j0", Task: "TRSM_1_0", Res: 1, Note: "outage"},
		{T: 6, Kind: FlightResourceUp, Res: 1, Val: 1.0},
		{T: 7, Kind: FlightReadyDepth, Res: -1, Val: 5},
	}
	for _, e := range in {
		r.Record(e)
	}
	var b bytes.Buffer
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFlightEvents(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost events: %d -> %d", len(in), len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestFilterAndSummarizeFlight(t *testing.T) {
	events := []FlightEvent{
		{T: 0, Kind: FlightArrival, Res: -1},
		{T: 1, Kind: FlightKill, Res: 2},
		{T: 2, Kind: FlightKill, Res: 2},
		{T: 3, Kind: FlightKill, Res: 0},
		{T: 4, Kind: FlightReadyDepth, Res: -1, Val: 7},
		{T: 9, Kind: FlightReadyDepth, Res: -1, Val: 3},
	}
	kills := FilterFlight(events, FlightKill, 0, 0)
	if len(kills) != 3 {
		t.Fatalf("kind filter: %d, want 3", len(kills))
	}
	windowed := FilterFlight(events, "", 1, 4)
	if len(windowed) != 4 {
		t.Fatalf("time filter: %d, want 4", len(windowed))
	}

	s := SummarizeFlight(events)
	if s.Events != 6 || s.TMin != 0 || s.TMax != 9 {
		t.Errorf("summary bounds: %+v", s)
	}
	if s.ByKind[FlightKill] != 3 || s.KillsByRes[2] != 2 || s.KillsByRes[0] != 1 {
		t.Errorf("kill tally: %+v", s)
	}
	if s.MaxReadyDepth != 7 {
		t.Errorf("max ready depth = %v, want 7", s.MaxReadyDepth)
	}
	line := FormatFlightSummary(s)
	for _, want := range []string{"events=6", "kill=3", "max_ready_depth=7", "kills[res2]=2"} {
		if !strings.Contains(line, want) {
			t.Errorf("summary line missing %q: %s", want, line)
		}
	}
}
