package obs

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// Distributed trace context. A trace is one logical operation (a schedule
// request, a fleet job) whose spans may be recorded by several processes —
// client, dispatcher, worker, serving daemon — each into its own Tracer ring.
// The context travels between processes in two HTTP headers next to
// X-Request-ID; inside a trace export it lives in the span's Args under the
// "trace_id" / "span_id" / "parent_span_id" keys, which is what MergeTraces
// joins on and ValidateTraceLinks resolves.
const (
	// HeaderTraceID carries the trace identity of the calling operation.
	HeaderTraceID = "X-Trace-ID"
	// HeaderParentSpan carries the caller's current span ID; the callee's
	// request span becomes its child.
	HeaderParentSpan = "X-Parent-Span-ID"
)

// Args keys under which span identity is recorded in trace events.
const (
	ArgTraceID    = "trace_id"
	ArgSpanID     = "span_id"
	ArgParentSpan = "parent_span_id"
)

// SpanContext identifies one span within one trace.
type SpanContext struct {
	// TraceID groups every span of one logical operation across processes.
	TraceID string
	// SpanID identifies this span; children reference it as their parent.
	SpanID string
}

// NewTraceID returns a fresh 16-hex-digit trace identity. IDs are random
// (crypto/rand), so traces started independently by different processes never
// collide.
func NewTraceID() string { return randomHex(8) }

// NewSpanID returns a fresh 16-hex-digit span identity.
func NewSpanID() string { return randomHex(8) }

func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID keeps the
		// trace loadable rather than crashing the instrumented request path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b)
}

// Inject writes the context into outbound request headers. Empty fields are
// omitted, so an uninitialised context injects nothing.
func (sc SpanContext) Inject(h http.Header) {
	if sc.TraceID != "" {
		h.Set(HeaderTraceID, sc.TraceID)
	}
	if sc.SpanID != "" {
		h.Set(HeaderParentSpan, sc.SpanID)
	}
}

// ExtractTraceContext reads the inbound trace context: the caller's trace ID
// and the span that should become the parent of the callee's request span.
// ok is false when no trace header was present.
func ExtractTraceContext(h http.Header) (traceID, parentSpan string, ok bool) {
	traceID = h.Get(HeaderTraceID)
	parentSpan = h.Get(HeaderParentSpan)
	return traceID, parentSpan, traceID != "" || parentSpan != ""
}

// SpanArgs merges span identity into a (possibly nil) args map: trace_id and
// span_id always, parent_span_id only when non-empty. The input map is
// returned when non-nil (mutated in place), matching how trace call sites
// build their args.
func SpanArgs(args map[string]any, traceID, spanID, parentSpan string) map[string]any {
	if args == nil {
		args = make(map[string]any, 3)
	}
	args[ArgTraceID] = traceID
	args[ArgSpanID] = spanID
	if parentSpan != "" {
		args[ArgParentSpan] = parentSpan
	}
	return args
}
