package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// JSONL writes one JSON document per line — the structured telemetry format
// the trainers emit per-episode records into. Writes are serialised by a
// mutex so multiple goroutines may share a sink. The writer is buffered;
// call Flush (or Close) before reading the output elsewhere.
type JSONL struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
}

// NewJSONL wraps an io.Writer as a JSONL sink. If w is also an io.Closer,
// Close closes it.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	j := &JSONL{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// CreateJSONL creates (or truncates) path and returns a sink writing to it.
func CreateJSONL(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: creating telemetry file: %w", err)
	}
	return NewJSONL(f), nil
}

// Write appends v as one JSON line.
func (j *JSONL) Write(v any) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.enc.Encode(v)
}

// Flush pushes buffered lines to the underlying writer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bw.Flush()
}

// Close flushes and, when the sink owns a file, closes it.
func (j *JSONL) Close() error {
	if err := j.Flush(); err != nil {
		return err
	}
	if j.c != nil {
		return j.c.Close()
	}
	return nil
}

// DecodeJSONLines parses every non-empty line of data as a JSON object and
// returns the raw messages. It errors on the first malformed line — the
// check `make obs-smoke` and the telemetry tests run over training output.
func DecodeJSONLines(data []byte) ([]json.RawMessage, error) {
	var out []json.RawMessage
	start := 0
	for i := 0; i <= len(data); i++ {
		if i != len(data) && data[i] != '\n' {
			continue
		}
		line := data[start:i]
		start = i + 1
		if len(line) == 0 {
			continue
		}
		if !json.Valid(line) {
			return nil, fmt.Errorf("obs: line %d is not valid JSON: %.80s", len(out)+1, line)
		}
		out = append(out, json.RawMessage(append([]byte(nil), line...)))
	}
	return out, nil
}
