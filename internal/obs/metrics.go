// Package obs is the shared observability substrate of the repository:
// a stdlib-only metrics registry with Prometheus-style text exposition, a
// span/event tracer exporting the Chrome trace-event JSON format, and
// structured JSONL telemetry sinks for training.
//
// Every subsystem — the discrete-event simulator, the A2C/PPO trainers and
// the serving daemon — records into these primitives instead of growing its
// own ad-hoc counters, so the signals one later perf PR optimises against are
// the same signals every other layer reports.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add increments by delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a metric that can go up and down (an int64, which covers every
// gauge in this repository: in-flight requests, queue depths, residency).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments (or, with a negative delta, decrements) the value.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Cheap enough for request paths:
// one mutex-guarded slot increment per observation.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	mu     sync.Mutex
	counts []uint64 // len(bounds)+1
	sum    float64
	n      uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra trailing
	// element for the +Inf bucket. Counts are per-bucket, not cumulative.
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram state under its lock.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.n,
	}
	return s
}

// metricKind discriminates family types for exposition and double-register
// checks.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one named metric with zero or more labelled children.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string // label names; empty for unlabelled metrics

	bounds []float64      // histogram families only
	fn     func() float64 // gauge-func families only

	mu       sync.Mutex
	children map[string]any // label-value key -> *Counter | *Gauge | *Histogram
	order    []string       // insertion order of keys, for stable exposition
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different type", name))
		}
		return f
	}
	f = &family{name: name, help: help, kind: kind, labels: labels, children: make(map[string]any)}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = mk()
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// Counter registers (or returns the existing) unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, nil)
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns the existing) unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, nil)
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed at exposition time.
// Useful for runtime stats (goroutines, heap) and derived ratios.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGaugeFunc, nil)
	f.fn = fn
}

// Histogram registers (or returns the existing) unlabelled histogram with the
// given ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.family(name, help, kindHistogram, nil)
	f.bounds = bounds
	return f.child(nil, func() any { return newHistogram(bounds) }).(*Histogram)
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// CounterVec is a counter family with one or more labels.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label")
	}
	return &CounterVec{f: r.family(name, help, kindCounter, labels)}
}

// With returns the counter for the given label values, creating it on first
// use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// Labels returns every label-value combination observed so far, sorted.
func (v *CounterVec) Labels() [][]string { return v.f.labelValues() }

// GaugeVec is a gauge family with one or more labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("obs: GaugeVec needs at least one label")
	}
	return &GaugeVec{f: r.family(name, help, kindGauge, labels)}
}

// With returns the gauge for the given label values, creating it on first
// use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// Labels returns every label-value combination observed so far, sorted.
func (v *GaugeVec) Labels() [][]string { return v.f.labelValues() }

// HistogramVec is a histogram family with one or more labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labelled histogram family with shared buckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec needs at least one label")
	}
	f := r.family(name, help, kindHistogram, labels)
	f.bounds = bounds
	return &HistogramVec{f: f}
}

// With returns the histogram for the given label values, creating it on first
// use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

// Labels returns every label-value combination observed so far, sorted.
func (v *HistogramVec) Labels() [][]string { return v.f.labelValues() }

func (f *family) labelValues() [][]string {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	f.mu.Unlock()
	sort.Strings(keys)
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		if len(f.labels) == 0 {
			out = append(out, nil)
			continue
		}
		out = append(out, strings.Split(k, "\x00"))
	}
	return out
}

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers, one line per sample, histograms as
// cumulative _bucket/_sum/_count series. Families appear in registration
// order and children in sorted label order, so output is deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		r.mu.Unlock()
		if err := f.writeText(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeText(w io.Writer) error {
	var b strings.Builder
	if f.help != "" {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
	}
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
	if f.kind == kindGaugeFunc {
		fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.fn()))
		_, err := io.WriteString(w, b.String())
		return err
	}
	for _, values := range f.labelValues() {
		key := strings.Join(values, "\x00")
		f.mu.Lock()
		c := f.children[key]
		f.mu.Unlock()
		labels := formatLabels(f.labels, values)
		switch m := c.(type) {
		case *Counter:
			fmt.Fprintf(&b, "%s%s %d\n", f.name, labels, m.Value())
		case *Gauge:
			fmt.Fprintf(&b, "%s%s %d\n", f.name, labels, m.Value())
		case *Histogram:
			s := m.Snapshot()
			var cum uint64
			for i, bound := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					formatLabels(append(f.labels, "le"), append(append([]string(nil), values...), formatFloat(bound))), cum)
			}
			cum += s.Counts[len(s.Bounds)]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
				formatLabels(append(f.labels, "le"), append(append([]string(nil), values...), "+Inf")), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labels, formatFloat(s.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labels, s.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
