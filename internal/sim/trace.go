package sim

import "fmt"

// TracePID is the pid under which the simulator records every trace event.
const TracePID = 1

// Trace lanes: resource r executes on tid == r; when a communication model is
// active, transfers *into* resource r render on tid == Size()+r, so each
// resource lane is paired with its inbound-transfer lane.
func commLane(s *State, r int) int64 { return int64(s.Platform.Size() + r) }

// setupTrace names the trace process and one lane per resource (plus the
// inbound-communication lanes when a communication model is active). Lane
// names are stable across runs: "<Type> <id>" in platform order.
func setupTrace(s *State) {
	tr := s.tracer
	tr.NameProcess(TracePID, "readys-sim")
	for r, res := range s.Platform.Resources {
		tr.NameThread(TracePID, int64(r), fmt.Sprintf("%s %d", res.Type, r))
	}
	if s.Comm != nil {
		for r, res := range s.Platform.Resources {
			tr.NameThread(TracePID, commLane(s, r), fmt.Sprintf("comm → %s %d", res.Type, r))
		}
	}
}

// traceStart records the task-start event on the resource lane and, under a
// communication model, one complete slice per inbound transfer on the
// destination's comm lane. Simulated milliseconds map to trace microseconds.
func traceStart(s *State, task, r int) {
	name := s.Graph.Tasks[task].Name
	s.tracer.Begin(name, "task", TracePID, int64(r), s.StartTime[task]*1000, map[string]any{
		"task":   task,
		"kernel": s.Graph.KernelNames[s.Graph.Tasks[task].Kernel],
	})
	if s.Comm == nil {
		return
	}
	for _, p := range s.Graph.Pred[task] {
		from := s.AssignedTo[p]
		cost := s.Comm.Cost(from, r)
		if cost <= 0 {
			continue
		}
		s.tracer.Complete(fmt.Sprintf("t%d→t%d", p, task), "comm", TracePID, commLane(s, r),
			s.EndTime[p]*1000, cost*1000, map[string]any{"from_resource": from})
	}
}

// traceEnd records the task-end event on the resource lane.
func traceEnd(s *State, task int) {
	s.tracer.End(s.Graph.Tasks[task].Name, TracePID, int64(s.AssignedTo[task]), s.EndTime[task]*1000)
}

// Fault spans. Fault events render on the lane of the affected resource:
//   - "outage" — an X slice covering the planned unavailability window;
//   - "death"  — an i instant when the resource dies, plus a final "dead"
//     X slice from the death to the makespan emitted at end of run;
//   - "degrade" — an i instant carrying the new speed factor;
//   - "kill"   — the killed attempt's B is closed by a normal E at the kill
//     instant, marked with a "kill" i instant naming the task.
//
// X and i phases carry no stack constraints, so ValidateChromeTrace accepts
// traces with and without fault spans unchanged. Comm slices of killed
// attempts remain in the trace: the transfers did happen.

// traceOutage records the outage window on the resource lane at the time the
// outage begins.
func traceOutage(s *State, r int, at, dur float64) {
	s.tracer.Complete("outage", "fault", TracePID, int64(r), at*1000, dur*1000, nil)
}

// traceDeath records the instant resource r dies. The terminal "dead" slice
// is emitted by finishTraceFaults once the makespan is known.
func traceDeath(s *State, r int, at float64) {
	s.tracer.Instant("death", "fault", TracePID, int64(r), at*1000, nil)
}

// traceDegrade records a speed-factor change on the resource lane.
func traceDegrade(s *State, r int, at, factor float64) {
	s.tracer.Instant("degrade", "fault", TracePID, int64(r), at*1000, map[string]any{"factor": factor})
}

// traceKill closes the killed attempt's open B slice and marks the kill
// instant. Must run before the kill bookkeeping resets AssignedTo.
func traceKill(s *State, task, r int, at float64) {
	s.tracer.End(s.Graph.Tasks[task].Name, TracePID, int64(r), at*1000)
	s.tracer.Instant("kill", "fault", TracePID, int64(r), at*1000, map[string]any{
		"task":    task,
		"started": s.StartTime[task] * 1000,
	})
}

// traceArrival records a job-arrival instant on the first resource lane
// (arrivals are platform-wide events; lane 0 keeps them on one row).
func traceArrival(s *State, job, base, tasks int) {
	s.tracer.Instant(fmt.Sprintf("arrive j%d", job), "arrival", TracePID, 0, s.Now*1000, map[string]any{
		"job":   job,
		"base":  base,
		"tasks": tasks,
	})
}

// finishTraceFaults emits, for each permanently dead resource, a "dead" X
// slice from its death to the end of the run so the loss is visible across
// the whole Gantt tail.
func finishTraceFaults(s *State) {
	for r := range s.Dead {
		if s.Dead[r] && s.Now > s.deathAt[r] {
			s.tracer.Complete("dead", "fault", TracePID, int64(r), s.deathAt[r]*1000, (s.Now-s.deathAt[r])*1000, nil)
		}
	}
}
