package sim

import "fmt"

// TracePID is the pid under which the simulator records every trace event.
const TracePID = 1

// Trace lanes: resource r executes on tid == r; when a communication model is
// active, transfers *into* resource r render on tid == Size()+r, so each
// resource lane is paired with its inbound-transfer lane.
func commLane(s *State, r int) int64 { return int64(s.Platform.Size() + r) }

// setupTrace names the trace process and one lane per resource (plus the
// inbound-communication lanes when a communication model is active). Lane
// names are stable across runs: "<Type> <id>" in platform order.
func setupTrace(s *State) {
	tr := s.tracer
	tr.NameProcess(TracePID, "readys-sim")
	for r, res := range s.Platform.Resources {
		tr.NameThread(TracePID, int64(r), fmt.Sprintf("%s %d", res.Type, r))
	}
	if s.Comm != nil {
		for r, res := range s.Platform.Resources {
			tr.NameThread(TracePID, commLane(s, r), fmt.Sprintf("comm → %s %d", res.Type, r))
		}
	}
}

// traceStart records the task-start event on the resource lane and, under a
// communication model, one complete slice per inbound transfer on the
// destination's comm lane. Simulated milliseconds map to trace microseconds.
func traceStart(s *State, task, r int) {
	name := s.Graph.Tasks[task].Name
	s.tracer.Begin(name, "task", TracePID, int64(r), s.StartTime[task]*1000, map[string]any{
		"task":   task,
		"kernel": s.Graph.KernelNames[s.Graph.Tasks[task].Kernel],
	})
	if s.Comm == nil {
		return
	}
	for _, p := range s.Graph.Pred[task] {
		from := s.AssignedTo[p]
		cost := s.Comm.Cost(from, r)
		if cost <= 0 {
			continue
		}
		s.tracer.Complete(fmt.Sprintf("t%d→t%d", p, task), "comm", TracePID, commLane(s, r),
			s.EndTime[p]*1000, cost*1000, map[string]any{"from_resource": from})
	}
}

// traceEnd records the task-end event on the resource lane.
func traceEnd(s *State, task int) {
	s.tracer.End(s.Graph.Tasks[task].Name, TracePID, int64(s.AssignedTo[task]), s.EndTime[task]*1000)
}
