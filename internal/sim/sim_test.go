package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"readys/internal/platform"
	"readys/internal/taskgraph"
)

// fifoPolicy always starts the lowest-ID ready task.
type fifoPolicy struct{}

func (fifoPolicy) Reset(*State)               {}
func (fifoPolicy) Decide(s *State, _ int) int { return s.Ready[0] }

// idlePolicy always answers ∅ — used to exercise deadlock detection.
type idlePolicy struct{}

func (idlePolicy) Reset(*State)           {}
func (idlePolicy) Decide(*State, int) int { return NoTask }

// badPolicy returns a non-ready task.
type badPolicy struct{}

func (badPolicy) Reset(*State) {}
func (badPolicy) Decide(s *State, _ int) int {
	return s.Graph.NumTasks() - 1 // the sink is never ready first
}

func chol(T int) (*taskgraph.Graph, platform.Platform, platform.Timing) {
	g := taskgraph.NewCholesky(T)
	return g, platform.New(2, 2), platform.TimingFor(taskgraph.Cholesky)
}

func TestSimulateCompletesAllTasks(t *testing.T) {
	g, plat, tim := chol(6)
	res, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %v", res.Makespan)
	}
	if err := ValidateResult(g, plat.Size(), res); err != nil {
		t.Fatal(err)
	}
	if res.Decisions < g.NumTasks() {
		t.Fatalf("decisions %d < tasks %d", res.Decisions, g.NumTasks())
	}
}

func TestSimulateSingleTask(t *testing.T) {
	g := taskgraph.NewCholesky(1) // a single POTRF
	plat := platform.New(1, 0)
	tim := platform.TimingFor(taskgraph.Cholesky)
	res, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 16 { // POTRF on CPU, sigma 0
		t.Fatalf("makespan = %v, want 16", res.Makespan)
	}
}

func TestSimulateDeterministicAtSigmaZero(t *testing.T) {
	g, plat, tim := chol(5)
	// Same RNG seed ⇒ same processor draw order ⇒ identical schedules.
	a, _ := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(7))})
	b, _ := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(7))})
	if a.Makespan != b.Makespan {
		t.Fatalf("same seed, different makespans: %v vs %v", a.Makespan, b.Makespan)
	}
}

func TestSimulateNoiseChangesDurations(t *testing.T) {
	g, plat, tim := chol(5)
	a, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Sigma: 0.5, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Sigma: 0.5, Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan == b.Makespan {
		t.Fatal("different seeds under noise should differ")
	}
	if err := ValidateResult(g, plat.Size(), a); err != nil {
		t.Fatal(err)
	}
	if err := ValidateResult(g, plat.Size(), b); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateDeadlockDetection(t *testing.T) {
	g, plat, tim := chol(3)
	_, err := Simulate(g, plat, tim, idlePolicy{}, Options{Rng: rand.New(rand.NewSource(1))})
	if err != ErrDeadlock {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
}

func TestSimulateRejectsNonReadyTask(t *testing.T) {
	g, plat, tim := chol(3)
	_, err := Simulate(g, plat, tim, badPolicy{}, Options{Rng: rand.New(rand.NewSource(1))})
	if err == nil || !strings.Contains(err.Error(), "non-ready") {
		t.Fatalf("want non-ready error, got %v", err)
	}
}

func TestSimulateRequiresRng(t *testing.T) {
	g, plat, tim := chol(2)
	if _, err := Simulate(g, plat, tim, fifoPolicy{}, Options{}); err == nil {
		t.Fatal("missing rng should error")
	}
}

func TestSimulateValidScheduleProperty(t *testing.T) {
	f := func(seed int64, sigmaRaw uint8, kindSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		kinds := []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR}
		kind := kinds[int(kindSel)%3]
		T := 2 + int(seed%4+4)%4 // 2..5
		if T < 2 {
			T = 2
		}
		g := taskgraph.NewByKind(kind, T)
		plat := platform.New(1+int(seed%2+2)%2, 1+int(seed%3+3)%3)
		sigma := float64(sigmaRaw%5) * 0.1
		res, err := Simulate(g, plat, platform.TimingFor(kind), fifoPolicy{}, Options{Sigma: sigma, Rng: rng})
		if err != nil {
			return false
		}
		return ValidateResult(g, plat.Size(), res) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateRandomDAGs(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := taskgraph.NewLayeredRandom(rng, taskgraph.DefaultRandomConfig())
		plat := platform.New(2, 2)
		res, err := Simulate(g, plat, platform.TimingFor(taskgraph.Random), fifoPolicy{},
			Options{Sigma: 0.3, Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateResult(g, plat.Size(), res); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOnDecisionCallback(t *testing.T) {
	g, plat, tim := chol(4)
	var calls, starts int
	_, err := Simulate(g, plat, tim, fifoPolicy{}, Options{
		Rng: rand.New(rand.NewSource(1)),
		OnDecision: func(s *State, r, task int) {
			calls++
			if task != NoTask {
				starts++
			}
			if r < 0 || r >= plat.Size() {
				t.Fatalf("bad resource %d in callback", r)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if starts != g.NumTasks() {
		t.Fatalf("callback saw %d starts, want %d", starts, g.NumTasks())
	}
	if calls < starts {
		t.Fatal("callback calls fewer than starts")
	}
}

func TestMakespanLowerBound(t *testing.T) {
	// Makespan can never beat the critical path executed entirely on the
	// fastest resource for each kernel.
	g, plat, tim := chol(6)
	res, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	// Cheap bound: total GPU-time of all tasks / number of resources.
	var minTotal float64
	for _, task := range g.Tasks {
		best := math.Inf(1)
		for rt := platform.ResourceType(0); rt < platform.NumResourceTypes; rt++ {
			if d := tim.ExpectedDuration(task.Kernel, rt); d < best {
				best = d
			}
		}
		minTotal += best
	}
	bound := minTotal / float64(plat.Size())
	if res.Makespan < bound-1e-9 {
		t.Fatalf("makespan %.3f beats area bound %.3f", res.Makespan, bound)
	}
}

func TestTimeUntilFree(t *testing.T) {
	s := &State{
		Now:         10,
		BusyUntil:   []float64{5, 15},
		RunningTask: []int{NoTask, 3},
	}
	if s.TimeUntilFree(0) != 0 {
		t.Fatal("free resource should have 0 wait")
	}
	if s.TimeUntilFree(1) != 5 {
		t.Fatalf("wait = %v, want 5", s.TimeUntilFree(1))
	}
	if !s.IsFree(0) || s.IsFree(1) {
		t.Fatal("IsFree wrong")
	}
	free := s.FreeResources()
	if len(free) != 1 || free[0] != 0 {
		t.Fatalf("FreeResources = %v", free)
	}
}

func TestGanttCSVAndUtilisation(t *testing.T) {
	g, plat, tim := chol(4)
	res, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteGanttCSV(&sb, g, plat, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "resource,resource_type,task,kernel,start,end\n") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "POTRF(0)") {
		t.Fatal("missing task row")
	}
	lines := strings.Count(out, "\n")
	if lines != g.NumTasks()+1 {
		t.Fatalf("%d lines, want %d", lines, g.NumTasks()+1)
	}
	util := ResourceUtilisation(plat, res)
	if len(util) != plat.Size() {
		t.Fatal("utilisation length wrong")
	}
	for r, u := range util {
		if u < 0 || u > 1+1e-9 {
			t.Fatalf("utilisation[%d] = %v", r, u)
		}
	}
}

func TestValidateResultCatchesViolations(t *testing.T) {
	g := taskgraph.NewCholesky(2) // 4 tasks: POTRF(0), TRSM(1,0), SYRK(1,0), POTRF(1)
	ok := Result{
		Makespan: 4,
		Trace: []Placement{
			{Task: 0, Resource: 0, Start: 0, End: 1},
			{Task: 1, Resource: 0, Start: 1, End: 2},
			{Task: 2, Resource: 0, Start: 2, End: 3},
			{Task: 3, Resource: 0, Start: 3, End: 4},
		},
	}
	if err := ValidateResult(g, 1, ok); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	precViolation := ok
	precViolation.Trace = append([]Placement(nil), ok.Trace...)
	precViolation.Trace[1] = Placement{Task: 1, Resource: 0, Start: 0.5, End: 2}
	if err := ValidateResult(g, 1, precViolation); err == nil {
		t.Fatal("precedence violation not caught")
	}
	overlap := Result{
		Makespan: 4,
		Trace: []Placement{
			{Task: 0, Resource: 0, Start: 0, End: 2},
			{Task: 1, Resource: 0, Start: 1.5, End: 3}, // overlaps task 0 (also precedence)
			{Task: 2, Resource: 0, Start: 3, End: 3.5},
			{Task: 3, Resource: 0, Start: 3.5, End: 4},
		},
	}
	if err := ValidateResult(g, 1, overlap); err == nil {
		t.Fatal("overlap not caught")
	}
	wrongMakespan := ok
	wrongMakespan.Makespan = 99
	if err := ValidateResult(g, 1, wrongMakespan); err == nil {
		t.Fatal("makespan mismatch not caught")
	}
	short := ok
	short.Trace = ok.Trace[:3]
	if err := ValidateResult(g, 1, short); err == nil {
		t.Fatal("missing placement not caught")
	}
}
