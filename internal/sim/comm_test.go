package sim

import (
	"math"
	"math/rand"
	"testing"

	"readys/internal/platform"
	"readys/internal/taskgraph"
)

// pinPolicy assigns each task to a fixed resource (NoTask when the asking
// resource is not the pinned one).
type pinPolicy struct {
	pin map[int]int
}

func (p pinPolicy) Reset(*State) {}
func (p pinPolicy) Decide(s *State, r int) int {
	for _, t := range s.Ready {
		if p.pin[t] == r {
			return t
		}
	}
	return NoTask
}

func TestCommModelCost(t *testing.T) {
	c := &platform.CommModel{LatencyMs: 1, TileBytes: 100, BandwidthBytesPerMs: 50}
	if c.Cost(0, 0) != 0 {
		t.Fatal("same-resource transfer must be free")
	}
	if got := c.Cost(0, 1); got != 3 { // 1 + 100/50
		t.Fatalf("cost = %v, want 3", got)
	}
	var nilModel *platform.CommModel
	if nilModel.Cost(0, 1) != 0 {
		t.Fatal("nil model must be free")
	}
	if nilModel.MeanCost(4) != 0 {
		t.Fatal("nil mean cost must be 0")
	}
	if got := c.MeanCost(2); math.Abs(got-1.5) > 1e-12 { // 3 * 1/2
		t.Fatalf("mean cost = %v, want 1.5", got)
	}
}

func TestDefaultCommModelIsSmallVsKernels(t *testing.T) {
	c := platform.DefaultCommModel()
	cost := c.Cost(0, 1)
	if cost <= 0 || cost > 2 {
		t.Fatalf("default transfer cost %v ms should be sub-2ms (overlap regime)", cost)
	}
}

func TestCommStallOnCrossResourceChain(t *testing.T) {
	// Chain A→B pinned to different resources: B's completion is delayed by
	// exactly the transfer cost relative to the comm-free run.
	g := taskgraph.NewCustom(taskgraph.Cholesky, [4]string{"POTRF", "TRSM", "SYRK", "GEMM"})
	a := g.AddTask(taskgraph.KPOTRF, "A")
	b := g.AddTask(taskgraph.KPOTRF, "B")
	g.AddEdge(a, b)
	plat := platform.New(2, 0)
	tt := platform.TimingFor(taskgraph.Cholesky)
	pin := pinPolicy{pin: map[int]int{a: 0, b: 1}}

	free, err := Simulate(g, plat, tt, pin, Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	comm := &platform.CommModel{LatencyMs: 5, TileBytes: 0, BandwidthBytesPerMs: 1}
	withComm, err := Simulate(g, plat, tt, pin, Options{Rng: rand.New(rand.NewSource(1)), Comm: comm})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(withComm.Makespan-(free.Makespan+5)) > 1e-9 {
		t.Fatalf("comm makespan %v, want %v", withComm.Makespan, free.Makespan+5)
	}
}

func TestCommSameResourceNoStall(t *testing.T) {
	g := taskgraph.NewCustom(taskgraph.Cholesky, [4]string{"POTRF", "TRSM", "SYRK", "GEMM"})
	a := g.AddTask(taskgraph.KPOTRF, "A")
	b := g.AddTask(taskgraph.KPOTRF, "B")
	g.AddEdge(a, b)
	plat := platform.New(1, 0)
	tt := platform.TimingFor(taskgraph.Cholesky)
	comm := &platform.CommModel{LatencyMs: 100, TileBytes: 0, BandwidthBytesPerMs: 1}
	res, err := Simulate(g, plat, tt, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(1)), Comm: comm})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 32 { // two POTRFs back to back on the CPU
		t.Fatalf("same-resource chain stalled: makespan %v", res.Makespan)
	}
}

func TestCommSchedulesRemainValid(t *testing.T) {
	g := taskgraph.NewCholesky(5)
	plat := platform.New(2, 2)
	tt := platform.TimingFor(taskgraph.Cholesky)
	res, err := Simulate(g, plat, tt, fifoPolicy{}, Options{
		Sigma: 0.3, Comm: platform.DefaultCommModel(), Rng: rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateResult(g, plat.Size(), res); err != nil {
		t.Fatal(err)
	}
}

func TestCommIncreasesMakespanMonotonically(t *testing.T) {
	g := taskgraph.NewCholesky(6)
	plat := platform.New(2, 2)
	tt := platform.TimingFor(taskgraph.Cholesky)
	run := func(c *platform.CommModel) float64 {
		res, err := Simulate(g, plat, tt, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(3)), Comm: c})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	base := run(nil)
	slow := run(&platform.CommModel{LatencyMs: 20, TileBytes: 0, BandwidthBytesPerMs: 1})
	if slow <= base {
		t.Fatalf("expensive comm should hurt: %v vs %v", slow, base)
	}
}

func TestDataReadyTime(t *testing.T) {
	g := taskgraph.NewCustom(taskgraph.Cholesky, [4]string{"POTRF", "TRSM", "SYRK", "GEMM"})
	a := g.AddTask(taskgraph.KPOTRF, "A")
	b := g.AddTask(taskgraph.KPOTRF, "B")
	c := g.AddTask(taskgraph.KPOTRF, "C")
	g.AddEdge(a, c)
	g.AddEdge(b, c)
	s := &State{
		Graph:      g,
		Comm:       &platform.CommModel{LatencyMs: 2, TileBytes: 0, BandwidthBytesPerMs: 1},
		EndTime:    []float64{10, 12, 0},
		AssignedTo: []int{0, 1, -1},
	}
	// On resource 1: A needs transfer (10+2), B local (12) → 12.
	if got := s.DataReadyTime(c, 1); got != 12 {
		t.Fatalf("data ready on r1 = %v, want 12", got)
	}
	// On resource 0: A local (10), B transfers (12+2) → 14.
	if got := s.DataReadyTime(c, 0); got != 14 {
		t.Fatalf("data ready on r0 = %v, want 14", got)
	}
}
