package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"readys/internal/obs"
	"readys/internal/platform"
	"readys/internal/taskgraph"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// simulateTraced runs one episode with a tracer attached and returns the
// exported Chrome trace JSON.
func simulateTraced(t *testing.T, g *taskgraph.Graph, plat platform.Platform, tim platform.Timing, pol Policy, opt Options) ([]byte, Result) {
	t.Helper()
	tr := obs.NewTracer(0)
	opt.Tracer = tr
	res, err := Simulate(g, plat, tim, pol, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestTraceGoldenCholesky pins the Chrome trace of a small fixed-seed
// Cholesky schedule: the export must be byte-identical to the checked-in
// golden file (stable lane naming, stable event ordering) and pass the
// structural validator (balanced B/E, monotonic per-lane timestamps).
// Regenerate with: go test ./internal/sim -run TestTraceGolden -update
func TestTraceGoldenCholesky(t *testing.T) {
	g, plat, tim := chol(3)
	data, res := simulateTraced(t, g, plat, tim, fifoPolicy{}, Options{Sigma: 0.2, Rng: rand.New(rand.NewSource(7))})

	if err := obs.ValidateChromeTrace(data); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}

	golden := filepath.Join("testdata", "cholesky_T3_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("trace drifted from golden file (run with -update if intended)\ngot:  %.400s\nwant: %.400s", data, want)
	}

	// Structural cross-checks against the schedule itself.
	var doc struct {
		TraceEvents []obs.Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	var begins, ends int
	threadNames := map[int64]string{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case obs.PhaseBegin:
			begins++
		case obs.PhaseEnd:
			ends++
		case obs.PhaseMetadata:
			if e.Name == "thread_name" {
				threadNames[e.TID] = e.Args["name"].(string)
			}
		}
	}
	if begins != g.NumTasks() || ends != g.NumTasks() {
		t.Fatalf("B=%d E=%d events, want %d each", begins, ends, g.NumTasks())
	}
	for r, res := range plat.Resources {
		want := fmt.Sprintf("%s %d", res.Type, r)
		if threadNames[int64(r)] != want {
			t.Fatalf("lane %d named %q, want %q", r, threadNames[int64(r)], want)
		}
	}
	if res.Makespan <= 0 {
		t.Fatal("schedule did not run")
	}
}

// TestTraceIsDeterministicAndInert asserts that attaching a tracer neither
// consumes randomness nor alters the schedule, and that two traced runs with
// the same seed export identical bytes.
func TestTraceIsDeterministicAndInert(t *testing.T) {
	g, plat, tim := chol(4)
	run := func(trace bool) ([]byte, Result) {
		opt := Options{Sigma: 0.3, Rng: rand.New(rand.NewSource(11))}
		var tr *obs.Tracer
		if trace {
			tr = obs.NewTracer(0)
			opt.Tracer = tr
		}
		res, err := Simulate(g, plat, tim, fifoPolicy{}, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !trace {
			return nil, res
		}
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res
	}
	_, plain := run(false)
	t1, traced := run(true)
	t2, _ := run(true)
	if plain.Makespan != traced.Makespan || plain.Decisions != traced.Decisions {
		t.Fatalf("tracing changed the schedule: %+v vs %+v", plain, traced)
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("same seed produced different traces")
	}
}

// TestTracePropertyAnySchedule is the fuzz-ish property test: any simulated
// schedule — random layered DAGs, varying platforms, noise levels, with and
// without the communication model — must export parseable, structurally
// valid Chrome trace JSON.
func TestTracePropertyAnySchedule(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := taskgraph.RandomConfig{
			Layers:       2 + rng.Intn(5),
			WidthMin:     1,
			WidthMax:     1 + rng.Intn(5),
			EdgeProb:     0.3,
			LongEdgeProb: 0.1,
		}
		g := taskgraph.NewLayeredRandom(rng, cfg)
		plat := platform.New(1+rng.Intn(3), rng.Intn(3))
		tim := platform.TimingFor(taskgraph.Random)
		opt := Options{Sigma: []float64{0, 0.2, 0.5}[rng.Intn(3)], Rng: rng}
		if rng.Intn(2) == 1 {
			opt.Comm = platform.DefaultCommModel()
		}
		data, res := simulateTraced(t, g, plat, tim, fifoPolicy{}, opt)
		if err := obs.ValidateChromeTrace(data); err != nil {
			t.Fatalf("seed %d (%d tasks, %s, σ=%g comm=%v): %v",
				seed, g.NumTasks(), plat, opt.Sigma, opt.Comm != nil, err)
		}
		if err := ValidateResult(g, plat.Size(), res); err != nil {
			t.Fatalf("seed %d: schedule invalid: %v", seed, err)
		}
	}
}
