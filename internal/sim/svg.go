package sim

import (
	"fmt"
	"io"
	"sort"

	"readys/internal/platform"
	"readys/internal/taskgraph"
)

// svgKernelColors match the DOT palette of package taskgraph.
var svgKernelColors = [taskgraph.NumKernels]string{"#e8956d", "#8fbf6f", "#7aa6c2", "#c2a878"}

// WriteGanttSVG renders the schedule as a standalone SVG Gantt chart: one
// horizontal lane per resource, one rectangle per task coloured by kernel
// type, with a time axis in milliseconds and a kernel legend. Task names are
// embedded as SVG <title> elements, so hovering in a browser identifies each
// placement.
func WriteGanttSVG(w io.Writer, g *taskgraph.Graph, plat platform.Platform, res Result) error {
	const (
		laneH   = 34
		laneGap = 8
		leftPad = 90
		topPad  = 28
		width   = 980
		axisH   = 30
		legendH = 26
	)
	if res.Makespan <= 0 {
		return fmt.Errorf("sim: cannot render empty schedule")
	}
	height := topPad + plat.Size()*(laneH+laneGap) + axisH + legendH
	scale := float64(width-leftPad-20) / res.Makespan

	trace := append([]Placement(nil), res.Trace...)
	sort.Slice(trace, func(a, b int) bool { return trace[a].Start < trace[b].Start })

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(w, `<text x="%d" y="16" font-size="13">%s on %s — makespan %.1f ms</text>`+"\n",
		leftPad, g.Kind, plat, res.Makespan)

	// Lanes and labels.
	for r := 0; r < plat.Size(); r++ {
		y := topPad + r*(laneH+laneGap)
		fmt.Fprintf(w, `<text x="6" y="%d">%s %d</text>`+"\n", y+laneH/2+4, plat.Resources[r].Type, r)
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f4f4f4"/>`+"\n",
			leftPad, y, width-leftPad-20, laneH)
	}
	// Task rectangles.
	for _, p := range trace {
		y := topPad + p.Resource*(laneH+laneGap)
		x := leftPad + p.Start*scale
		wpx := (p.End - p.Start) * scale
		if wpx < 0.5 {
			wpx = 0.5
		}
		task := g.Tasks[p.Task]
		fmt.Fprintf(w, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s" stroke="#555" stroke-width="0.4"><title>%s [%.1f, %.1f] ms</title></rect>`+"\n",
			x, y+2, wpx, laneH-4, svgKernelColors[task.Kernel], task.Name, p.Start, p.End)
	}
	// Time axis: 10 ticks.
	axisY := topPad + plat.Size()*(laneH+laneGap) + 4
	for i := 0; i <= 10; i++ {
		t := res.Makespan * float64(i) / 10
		x := leftPad + t*scale
		fmt.Fprintf(w, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#999"/>`+"\n", x, axisY, x, axisY+4)
		fmt.Fprintf(w, `<text x="%.1f" y="%d" text-anchor="middle" fill="#555">%.0f</text>`+"\n", x, axisY+16, t)
	}
	// Legend.
	lx := leftPad
	ly := axisY + axisH
	for k := 0; k < taskgraph.NumKernels; k++ {
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", lx, ly, svgKernelColors[k])
		fmt.Fprintf(w, `<text x="%d" y="%d">%s</text>`+"\n", lx+16, ly+10, g.KernelNames[k])
		lx += 24 + 9*len(g.KernelNames[k])
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}
