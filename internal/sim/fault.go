package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Fault injection.
//
// Real heterogeneous platforms exhibit harsher drift than duration noise:
// resources slow down, drop out for a while, or disappear and take their
// in-flight work with them. A FaultPlan is a deterministic list of such
// events replayed by the event-driven engine:
//
//   - FaultOutage: the resource is unavailable over [At, At+Duration). The
//     in-flight task (and its active inbound transfers) is killed and
//     returns to the ready set; completed predecessors' outputs are
//     retained, so only the killed attempt is lost.
//   - FaultDeath: the resource never returns (an outage with no end).
//     Pending work planned on it must be re-placed elsewhere.
//   - FaultDegrade: the resource's speed factor changes mid-run. The
//     remaining wall-clock of the task executing on it is re-timed by the
//     factor ratio, and every later task started on it samples its duration
//     scaled by the new factor.
//
// The plan is external state: policies never see future events, only the
// current resource state exposed on State (Up, Dead, Speed, FaultEpoch).
// Fault plans are pure data derived from a seed, so the same (plan, RNG
// seed) pair replays bit-identically — the chaos property suite relies on
// this.

// FaultKind enumerates the fault event kinds.
type FaultKind int

// Fault event kinds.
const (
	FaultOutage FaultKind = iota
	FaultDeath
	FaultDegrade
)

// String names the kind for error messages and traces.
func (k FaultKind) String() string {
	switch k {
	case FaultOutage:
		return "outage"
	case FaultDeath:
		return "death"
	case FaultDegrade:
		return "degrade"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultEvent is one scheduled fault against one resource.
type FaultEvent struct {
	Kind     FaultKind
	Resource int
	// At is the simulated time (ms) at which the event fires.
	At float64
	// Duration is the outage length in ms (FaultOutage only).
	Duration float64
	// Factor is the new duration multiplier (FaultDegrade only): 1 is
	// nominal speed, 2 doubles every remaining and future duration on the
	// resource. Factors below 1 model recovery or speed-up.
	Factor float64
}

// FaultPlan is a deterministic schedule of fault events. The zero value (and
// nil) injects nothing; the engine is proven bit-inert in that case.
type FaultPlan struct {
	Events []FaultEvent
}

// Empty reports whether the plan injects no events.
func (p *FaultPlan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Validate checks the plan against a platform size: known kinds, existing
// resources, non-negative times, positive outage durations and degrade
// factors.
func (p *FaultPlan) Validate(numResources int) error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		if e.Resource < 0 || e.Resource >= numResources {
			return fmt.Errorf("sim: fault event %d targets unknown resource %d", i, e.Resource)
		}
		if e.At < 0 || math.IsNaN(e.At) || math.IsInf(e.At, 0) {
			return fmt.Errorf("sim: fault event %d has invalid time %v", i, e.At)
		}
		switch e.Kind {
		case FaultOutage:
			if e.Duration <= 0 || math.IsNaN(e.Duration) || math.IsInf(e.Duration, 0) {
				return fmt.Errorf("sim: outage event %d has invalid duration %v", i, e.Duration)
			}
		case FaultDeath:
			// Nothing further.
		case FaultDegrade:
			if e.Factor <= 0 || math.IsNaN(e.Factor) || math.IsInf(e.Factor, 0) {
				return fmt.Errorf("sim: degrade event %d has invalid factor %v", i, e.Factor)
			}
		default:
			return fmt.Errorf("sim: fault event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// DeadResources returns, per resource, whether the plan eventually kills it
// permanently. Validators and generators use it to reason about survivors.
func (p *FaultPlan) DeadResources(numResources int) []bool {
	dead := make([]bool, numResources)
	if p == nil {
		return dead
	}
	for _, e := range p.Events {
		if e.Kind == FaultDeath && e.Resource >= 0 && e.Resource < numResources {
			dead[e.Resource] = true
		}
	}
	return dead
}

// Kill records one killed task attempt: the task was executing on Resource
// since Start and was terminated by a fault at At, then returned to the
// ready set.
type Kill struct {
	Task     int
	Resource int
	Start    float64
	At       float64
	// Cause is the fault kind that killed the attempt (outage or death).
	Cause FaultKind
}

// FaultSpec parameterises the seed-derived fault-plan generator. All rates
// are expected event counts per resource over the horizon, so one scalar
// "fault rate" scales naturally (see SpecForRate). The zero value disables
// fault injection entirely.
type FaultSpec struct {
	// Horizon is the time window (ms) over which events are drawn. Events
	// beyond the actual makespan simply never fire. When zero, callers that
	// derive plans from problems (core.Problem, the trainers) substitute a
	// multiple of the HEFT projected makespan.
	Horizon float64
	// OutageRate is the expected number of transient outages per resource.
	OutageRate float64
	// OutageMeanFrac is the mean outage length as a fraction of the horizon
	// (exponentially distributed). Zero selects the default 0.08.
	OutageMeanFrac float64
	// DeathProb is the per-resource probability of permanent death at a
	// uniform time in the horizon. One uniformly chosen resource is always
	// spared so that at least one compatible resource survives any plan.
	DeathProb float64
	// DegradeRate is the expected number of speed-factor changes per
	// resource.
	DegradeRate float64
	// DegradeMin/DegradeMax bound the uniform degrade factor. Zero values
	// select the defaults [1.25, 3].
	DegradeMin, DegradeMax float64
}

// Enabled reports whether the spec can generate any event.
func (sp FaultSpec) Enabled() bool {
	return sp.OutageRate > 0 || sp.DeathProb > 0 || sp.DegradeRate > 0
}

// SpecForRate maps one scalar fault rate to a full spec over the given
// horizon: rate outages and degrades per resource, and a death probability
// growing with the rate but capped so platforms keep most of their
// resources at moderate rates. Rate 0 disables everything; rate 1 is the
// benchmark's "one disruption of each kind per resource" operating point.
func SpecForRate(rate, horizon float64) FaultSpec {
	if rate <= 0 {
		return FaultSpec{Horizon: horizon}
	}
	death := 0.15 * rate
	if death > 0.4 {
		death = 0.4
	}
	return FaultSpec{
		Horizon:     horizon,
		OutageRate:  rate,
		DeathProb:   death,
		DegradeRate: rate,
	}
}

const (
	defaultOutageMeanFrac = 0.08
	defaultDegradeMin     = 1.25
	defaultDegradeMax     = 3.0
)

// GeneratePlan derives a deterministic fault plan from a seed: same (seed,
// numResources, spec) always yields the same plan, independent of any other
// randomness, so per-episode fault streams compose with the splitmix64
// episode seeding without disturbing duration noise. Event counts per
// resource are drawn as floor(rate) plus a Bernoulli on the fractional
// part, times uniformly over the horizon, outage lengths exponentially.
func GeneratePlan(seed int64, numResources int, spec FaultSpec) *FaultPlan {
	plan := &FaultPlan{}
	if !spec.Enabled() || spec.Horizon <= 0 || numResources <= 0 {
		return plan
	}
	rng := rand.New(rand.NewSource(seed))
	h := spec.Horizon
	meanFrac := spec.OutageMeanFrac
	if meanFrac <= 0 {
		meanFrac = defaultOutageMeanFrac
	}
	dmin, dmax := spec.DegradeMin, spec.DegradeMax
	if dmin <= 0 {
		dmin = defaultDegradeMin
	}
	if dmax < dmin {
		dmax = dmin
	}
	// One resource is always spared from permanent death so that every task
	// retains at least one compatible resource.
	spared := rng.Intn(numResources)
	for r := 0; r < numResources; r++ {
		for i := 0; i < drawCount(rng, spec.OutageRate); i++ {
			at := rng.Float64() * h
			dur := rng.ExpFloat64() * meanFrac * h
			if dur <= 0 {
				dur = meanFrac * h
			}
			plan.Events = append(plan.Events, FaultEvent{Kind: FaultOutage, Resource: r, At: at, Duration: dur})
		}
		if r != spared && spec.DeathProb > 0 && rng.Float64() < spec.DeathProb {
			plan.Events = append(plan.Events, FaultEvent{Kind: FaultDeath, Resource: r, At: rng.Float64() * h})
		}
		for i := 0; i < drawCount(rng, spec.DegradeRate); i++ {
			plan.Events = append(plan.Events, FaultEvent{Kind: FaultDegrade, Resource: r,
				At: rng.Float64() * h, Factor: dmin + rng.Float64()*(dmax-dmin)})
		}
	}
	sortEvents(plan.Events)
	return plan
}

// drawCount samples floor(rate) + Bernoulli(frac(rate)) events.
func drawCount(rng *rand.Rand, rate float64) int {
	if rate <= 0 {
		return 0
	}
	n := int(rate)
	if rng.Float64() < rate-float64(n) {
		n++
	}
	return n
}

// sortEvents orders events deterministically: by time, then kind (recovery
// semantics are handled in the engine), then resource, then duration/factor
// as final tie-breaks.
func sortEvents(evs []FaultEvent) {
	sort.Slice(evs, func(a, b int) bool {
		x, y := evs[a], evs[b]
		if x.At != y.At {
			return x.At < y.At
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		if x.Resource != y.Resource {
			return x.Resource < y.Resource
		}
		if x.Duration != y.Duration {
			return x.Duration < y.Duration
		}
		return x.Factor < y.Factor
	})
}

// Internal fault timeline. FaultOutage expands into a down transition plus a
// recovery transition so the engine can advance time to either boundary.
type tlKind int

const (
	tlRecover tlKind = iota // ordered first at equal times: recover, then fail
	tlDeath
	tlOutage
	tlDegrade
)

type tlEvent struct {
	at       float64
	kind     tlKind
	resource int
	// end is the outage end (At+Duration) for tlOutage; for tlRecover, at
	// equals the end of the outage that scheduled it.
	end float64
	// factor is the degrade factor for tlDegrade.
	factor float64
}

// faultTimeline is the engine-side expansion of a FaultPlan: a time-ordered
// event cursor.
type faultTimeline struct {
	events []tlEvent
	next   int
}

func newFaultTimeline(p *FaultPlan) *faultTimeline {
	tl := &faultTimeline{}
	if p.Empty() {
		return tl
	}
	for _, e := range p.Events {
		switch e.Kind {
		case FaultOutage:
			end := e.At + e.Duration
			tl.events = append(tl.events,
				tlEvent{at: e.At, kind: tlOutage, resource: e.Resource, end: end},
				tlEvent{at: end, kind: tlRecover, resource: e.Resource, end: end})
		case FaultDeath:
			tl.events = append(tl.events, tlEvent{at: e.At, kind: tlDeath, resource: e.Resource})
		case FaultDegrade:
			tl.events = append(tl.events, tlEvent{at: e.At, kind: tlDegrade, resource: e.Resource, factor: e.Factor})
		}
	}
	sort.Slice(tl.events, func(a, b int) bool {
		x, y := tl.events[a], tl.events[b]
		if x.at != y.at {
			return x.at < y.at
		}
		if x.kind != y.kind {
			return x.kind < y.kind
		}
		if x.resource != y.resource {
			return x.resource < y.resource
		}
		return x.end < y.end
	})
	return tl
}

// nextTime returns the time of the next pending event, or +Inf.
func (tl *faultTimeline) nextTime() float64 {
	if tl.next >= len(tl.events) {
		return math.Inf(1)
	}
	return tl.events[tl.next].at
}
