package sim

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"readys/internal/obs"
	"readys/internal/platform"
	"readys/internal/taskgraph"
)

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		ev   FaultEvent
	}{
		{"unknown resource", FaultEvent{Kind: FaultOutage, Resource: 9, At: 1, Duration: 1}},
		{"negative time", FaultEvent{Kind: FaultDeath, Resource: 0, At: -1}},
		{"zero outage duration", FaultEvent{Kind: FaultOutage, Resource: 0, At: 1}},
		{"zero degrade factor", FaultEvent{Kind: FaultDegrade, Resource: 0, At: 1}},
		{"unknown kind", FaultEvent{Kind: FaultKind(42), Resource: 0, At: 1}},
	}
	for _, c := range cases {
		p := &FaultPlan{Events: []FaultEvent{c.ev}}
		if err := p.Validate(2); err == nil {
			t.Errorf("%s: not rejected", c.name)
		}
	}
	var nilPlan *FaultPlan
	if err := nilPlan.Validate(2); err != nil {
		t.Fatalf("nil plan rejected: %v", err)
	}
	good := &FaultPlan{Events: []FaultEvent{
		{Kind: FaultOutage, Resource: 0, At: 0, Duration: 3},
		{Kind: FaultDeath, Resource: 1, At: 5},
		{Kind: FaultDegrade, Resource: 0, At: 2, Factor: 0.5},
	}}
	if err := good.Validate(2); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
}

func TestGeneratePlanDeterministicAndSparing(t *testing.T) {
	spec := FaultSpec{Horizon: 100, OutageRate: 1.5, DeathProb: 1, DegradeRate: 0.7}
	a := GeneratePlan(11, 4, spec)
	b := GeneratePlan(11, 4, spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	if reflect.DeepEqual(a, GeneratePlan(12, 4, spec)) {
		t.Fatal("different seeds produced identical plans")
	}
	if err := a.Validate(4); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	// DeathProb 1 kills every resource except the spared one.
	dead := a.DeadResources(4)
	alive := 0
	for _, d := range dead {
		if !d {
			alive++
		}
	}
	if alive != 1 {
		t.Fatalf("want exactly 1 survivor at DeathProb 1, got %d", alive)
	}
	// Zero-rate spec and zero horizon generate nothing.
	if p := GeneratePlan(1, 4, FaultSpec{Horizon: 100}); !p.Empty() {
		t.Fatal("disabled spec generated events")
	}
	if p := GeneratePlan(1, 4, FaultSpec{OutageRate: 1}); !p.Empty() {
		t.Fatal("zero horizon generated events")
	}
}

func TestSpecForRate(t *testing.T) {
	if SpecForRate(0, 100).Enabled() {
		t.Fatal("rate 0 should disable faults")
	}
	sp := SpecForRate(1, 100)
	if !sp.Enabled() || sp.OutageRate != 1 || sp.DegradeRate != 1 {
		t.Fatalf("unexpected spec %+v", sp)
	}
	if hi := SpecForRate(10, 100); hi.DeathProb > 0.4 {
		t.Fatalf("death probability uncapped: %v", hi.DeathProb)
	}
}

// singleTask returns a 1-task problem on one CPU: POTRF, expected 16ms.
func singleTask() (*taskgraph.Graph, platform.Platform, platform.Timing) {
	return taskgraph.NewCholesky(1), platform.New(1, 0), platform.TimingFor(taskgraph.Cholesky)
}

func TestOutageKillsAndReexecutes(t *testing.T) {
	g, plat, tim := singleTask()
	plan := &FaultPlan{Events: []FaultEvent{{Kind: FaultOutage, Resource: 0, At: 8, Duration: 12}}}
	res, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(1)), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	// Attempt 1 runs [0, 8) and is killed; the resource recovers at 20 and
	// the re-execution runs [20, 36].
	if res.Makespan != 36 {
		t.Fatalf("makespan = %v, want 36", res.Makespan)
	}
	if len(res.Kills) != 1 {
		t.Fatalf("kills = %+v, want exactly one", res.Kills)
	}
	k := res.Kills[0]
	if k.Task != 0 || k.Resource != 0 || k.Start != 0 || k.At != 8 || k.Cause != FaultOutage {
		t.Fatalf("unexpected kill record %+v", k)
	}
	if err := ValidateResultStrict(g, res, CheckOptions{Platform: plat, Timing: tim, Faults: plan}); err != nil {
		t.Fatal(err)
	}
}

func TestOutageTieCompletionWins(t *testing.T) {
	g, plat, tim := singleTask()
	// Outage begins exactly when the task completes: the completion wins the
	// tie and nothing is killed.
	plan := &FaultPlan{Events: []FaultEvent{{Kind: FaultOutage, Resource: 0, At: 16, Duration: 4}}}
	res, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(1)), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 16 || len(res.Kills) != 0 {
		t.Fatalf("makespan %v kills %d, want 16 and none", res.Makespan, len(res.Kills))
	}
}

func TestDegradeRetimesInFlightWork(t *testing.T) {
	g, plat, tim := singleTask()
	// Half the work done at nominal speed, the rest at factor 2:
	// 8 + 8·2 = 24.
	plan := &FaultPlan{Events: []FaultEvent{{Kind: FaultDegrade, Resource: 0, At: 8, Factor: 2}}}
	res, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(1)), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 24 {
		t.Fatalf("makespan = %v, want 24", res.Makespan)
	}
	if len(res.Kills) != 0 {
		t.Fatal("degrade must not kill")
	}
	if err := ValidateResultStrict(g, res, CheckOptions{Platform: plat, Timing: tim, Faults: plan}); err != nil {
		t.Fatal(err)
	}
	// A task *started* after the degrade samples at the new factor.
	late := &FaultPlan{Events: []FaultEvent{{Kind: FaultDegrade, Resource: 0, At: 0, Factor: 2}}}
	res2, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(1)), Faults: late})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Makespan != 32 {
		t.Fatalf("makespan = %v, want 32", res2.Makespan)
	}
}

func TestDeathKillsResourceForGood(t *testing.T) {
	g, plat, tim := chol(4)
	plan := &FaultPlan{Events: []FaultEvent{{Kind: FaultDeath, Resource: 0, At: 10}}}
	res, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(2)), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Trace {
		if p.Resource == 0 && p.End > 10 {
			t.Fatalf("task %d ran on dead resource until %v", p.Task, p.End)
		}
	}
	if err := ValidateResultStrict(g, res, CheckOptions{Platform: plat, Timing: tim, Faults: plan}); err != nil {
		t.Fatal(err)
	}
}

func TestAllResourcesDeadErrors(t *testing.T) {
	g, plat, tim := singleTask()
	plan := &FaultPlan{Events: []FaultEvent{{Kind: FaultDeath, Resource: 0, At: 5}}}
	_, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(1)), Faults: plan})
	if !errors.Is(err, ErrAllResourcesDead) {
		t.Fatalf("want ErrAllResourcesDead, got %v", err)
	}
}

func TestOverlappingOutagesRecoverAtLatestEnd(t *testing.T) {
	g, plat, tim := singleTask()
	plan := &FaultPlan{Events: []FaultEvent{
		{Kind: FaultOutage, Resource: 0, At: 2, Duration: 10}, // down [2, 12)
		{Kind: FaultOutage, Resource: 0, At: 6, Duration: 2},  // nested [6, 8)
	}}
	res, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(1)), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	// Killed at 2; the nested recovery at 8 must NOT restart the task: it
	// reruns only from 12. 12 + 16 = 28.
	if res.Makespan != 28 {
		t.Fatalf("makespan = %v, want 28", res.Makespan)
	}
	if err := ValidateResultStrict(g, res, CheckOptions{Platform: plat, Timing: tim, Faults: plan}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyPlanBitInert(t *testing.T) {
	g, plat, tim := chol(5)
	run := func(plan *FaultPlan) Result {
		res, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Sigma: 0.3, Rng: rand.New(rand.NewSource(9)), Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(nil)
	if got := run(&FaultPlan{}); !reflect.DeepEqual(base, got) {
		t.Fatal("empty plan changed the result")
	}
}

func TestFaultRunsDeterministicPerSeed(t *testing.T) {
	g, plat, tim := chol(6)
	plan := GeneratePlan(3, plat.Size(), SpecForRate(1.5, 400))
	a, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Sigma: 0.2, Rng: rand.New(rand.NewSource(4)), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Sigma: 0.2, Rng: rand.New(rand.NewSource(4)), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (plan, seed) produced different results")
	}
}

func TestValidateResultStrictChecksDurations(t *testing.T) {
	g, plat, tim := chol(4)
	res, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	opt := CheckOptions{Platform: plat, Timing: tim}
	if err := ValidateResultStrict(g, res, opt); err != nil {
		t.Fatalf("honest sigma-0 run rejected: %v", err)
	}
	// Stretch one slice: passes the old validator, fails the strict one.
	forged := res
	forged.Trace = append([]Placement(nil), res.Trace...)
	last := -1
	var maxStart float64
	for i, p := range forged.Trace {
		if p.Start >= maxStart {
			maxStart, last = p.Start, i
		}
	}
	forged.Trace[last].End += 7
	forged.Makespan = 0
	for _, p := range forged.Trace {
		if p.End > forged.Makespan {
			forged.Makespan = p.End
		}
	}
	if err := ValidateResult(g, plat.Size(), forged); err != nil {
		t.Fatalf("forged run should pass the base validator: %v", err)
	}
	if err := ValidateResultStrict(g, forged, opt); err == nil {
		t.Fatal("stretched duration not caught")
	} else if !strings.Contains(err.Error(), "compute time") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Noisy runs pass the envelope check.
	noisy, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Sigma: 0.4, Rng: rand.New(rand.NewSource(6))})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateResultStrict(g, noisy, CheckOptions{Platform: plat, Timing: tim, Sigma: 0.4}); err != nil {
		t.Fatalf("honest noisy run rejected: %v", err)
	}
}

func TestValidateResultStrictChecksFaultWindows(t *testing.T) {
	g, plat, tim := singleTask()
	plan := &FaultPlan{Events: []FaultEvent{{Kind: FaultOutage, Resource: 0, At: 8, Duration: 12}}}
	opt := CheckOptions{Platform: plat, Timing: tim, Faults: plan}
	// A slice running straight through the outage must be rejected.
	inside := Result{
		Makespan: 16,
		Trace:    []Placement{{Task: 0, Resource: 0, Start: 0, End: 16}},
	}
	if err := ValidateResultStrict(g, inside, opt); err == nil {
		t.Fatal("outage overlap not caught")
	} else if !strings.Contains(err.Error(), "outage") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Execution past a death must be rejected.
	death := &FaultPlan{Events: []FaultEvent{{Kind: FaultDeath, Resource: 0, At: 8}}}
	if err := ValidateResultStrict(g, inside, CheckOptions{Platform: plat, Timing: tim,
		Faults: &FaultPlan{Events: append(death.Events, FaultEvent{Kind: FaultDeath, Resource: 0, At: 8})}}); err == nil {
		t.Fatal("all-dead plan with a complete result not caught")
	}
	twoRes := platform.New(2, 0)
	deadRun := Result{Makespan: 16, Trace: []Placement{{Task: 0, Resource: 0, Start: 0, End: 16}}}
	if err := ValidateResultStrict(g, deadRun, CheckOptions{Platform: twoRes, Timing: tim, Faults: death}); err == nil {
		t.Fatal("post-death execution not caught")
	} else if !strings.Contains(err.Error(), "died") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Inconsistent kill records are rejected.
	okRun, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(1)), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	bad := okRun
	bad.Kills = []Kill{{Task: 0, Resource: 0, Start: 9, At: 3, Cause: FaultOutage}}
	if err := ValidateResultStrict(g, bad, opt); err == nil {
		t.Fatal("kill before its start not caught")
	}
	bad.Kills = []Kill{{Task: 0, Resource: 0, Start: 0, At: 8, Cause: FaultDegrade}}
	if err := ValidateResultStrict(g, bad, opt); err == nil {
		t.Fatal("degrade kill cause not caught")
	}
}

func TestFaultTraceIsValidChromeTraceAndInert(t *testing.T) {
	g, plat, tim := chol(5)
	plan := GeneratePlan(7, plat.Size(), SpecForRate(2, 500))
	if plan.Empty() {
		t.Fatal("test plan unexpectedly empty")
	}
	tr := obs.NewTracer(1 << 14)
	traced, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Sigma: 0.2, Rng: rand.New(rand.NewSource(8)), Faults: plan, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Sigma: 0.2, Rng: rand.New(rand.NewSource(8)), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traced, plain) {
		t.Fatal("tracing changed a faulty run")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("fault trace invalid: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, `"outage"`) {
		t.Fatal("trace missing outage spans")
	}
	if len(traced.Kills) > 0 && !strings.Contains(out, `"kill"`) {
		t.Fatal("trace missing kill instants")
	}
}

func TestFaultStateAccessorsOnHandBuiltState(t *testing.T) {
	// States assembled by hand (no fault bookkeeping) must behave as fully
	// up, alive, nominal speed.
	s := &State{RunningTask: []int{NoTask}}
	if !s.ResourceUp(0) || s.ResourceDead(0) || s.SpeedFactor(0) != 1 {
		t.Fatal("nil fault state must read as healthy")
	}
	if !s.IsFree(0) {
		t.Fatal("idle resource with nil fault state must be free")
	}
}
