package sim

import (
	"fmt"
	"math"
	"sort"

	"readys/internal/platform"
	"readys/internal/taskgraph"
)

// ValidateResult checks that a simulation result is a feasible schedule:
// every task placed exactly once on an existing resource, precedence
// constraints respected (a task starts no earlier than the completion of all
// its predecessors), and no two tasks overlapping on the same resource.
// It returns the first violation found, or nil.
func ValidateResult(g *taskgraph.Graph, numResources int, res Result) error {
	n := g.NumTasks()
	if len(res.Trace) != n {
		return fmt.Errorf("sim: trace has %d placements for %d tasks", len(res.Trace), n)
	}
	byTask := make([]Placement, n)
	seen := make([]bool, n)
	for _, p := range res.Trace {
		if p.Task < 0 || p.Task >= n {
			return fmt.Errorf("sim: placement for unknown task %d", p.Task)
		}
		if seen[p.Task] {
			return fmt.Errorf("sim: task %d placed twice", p.Task)
		}
		seen[p.Task] = true
		if p.Resource < 0 || p.Resource >= numResources {
			return fmt.Errorf("sim: task %d on unknown resource %d", p.Task, p.Resource)
		}
		if p.End < p.Start {
			return fmt.Errorf("sim: task %d ends (%.3f) before it starts (%.3f)", p.Task, p.End, p.Start)
		}
		byTask[p.Task] = p
	}
	// Precedence.
	for j := 0; j < n; j++ {
		for _, i := range g.Pred[j] {
			if byTask[j].Start < byTask[i].End-1e-9 {
				return fmt.Errorf("sim: task %d starts at %.3f before predecessor %d ends at %.3f",
					j, byTask[j].Start, i, byTask[i].End)
			}
		}
	}
	// Resource exclusivity.
	perRes := make([][]Placement, numResources)
	for _, p := range byTask {
		perRes[p.Resource] = append(perRes[p.Resource], p)
	}
	for r, ps := range perRes {
		// Sort by (start, end) so zero-duration tasks sharing a start
		// instant with a longer one are not misreported as overlapping.
		sort.Slice(ps, func(a, b int) bool {
			if ps[a].Start != ps[b].Start {
				return ps[a].Start < ps[b].Start
			}
			return ps[a].End < ps[b].End
		})
		for i := 1; i < len(ps); i++ {
			if ps[i].Start < ps[i-1].End-1e-9 {
				return fmt.Errorf("sim: resource %d runs tasks %d and %d concurrently", r, ps[i-1].Task, ps[i].Task)
			}
		}
	}
	// Makespan consistency.
	var maxEnd float64
	for _, p := range byTask {
		if p.End > maxEnd {
			maxEnd = p.End
		}
	}
	if maxEnd-res.Makespan > 1e-9 || res.Makespan-maxEnd > 1e-9 {
		return fmt.Errorf("sim: makespan %.3f != max end time %.3f", res.Makespan, maxEnd)
	}
	return nil
}

// CheckOptions parameterises ValidateResultStrict with everything the engine
// saw, so the validator can recompute what the engine claims instead of
// trusting it.
type CheckOptions struct {
	Platform platform.Platform
	Timing   platform.Timing
	// Sigma is the duration noise level the run used. Zero makes the
	// duration check exact.
	Sigma float64
	// Comm is the communication model (nil = free), needed to recompute the
	// data stall embedded in each slice.
	Comm *platform.CommModel
	// Faults is the fault plan the run replayed (nil = none): slices are
	// checked against outage windows, death times, and degrade factors.
	Faults *FaultPlan
	// TimingOf, if non-nil, overrides Timing per task — required to check
	// union schedules of multi-family streams, where each job's tasks carry
	// the timing table of its own DAG family (State.TaskTiming).
	TimingOf func(task int) platform.Timing
}

// timingOf resolves the timing table governing one task.
func (o CheckOptions) timingOf(task int) platform.Timing {
	if o.TimingOf != nil {
		return o.TimingOf(task)
	}
	return o.Timing
}

// Relative and absolute tolerances of the strict duration checks. Durations
// are pure float arithmetic on the engine side, so violations at these
// magnitudes indicate a real engine bug, not rounding.
const (
	strictRelTol = 1e-6
	strictAbsTol = 1e-9
)

// sigmaEnvelope bounds realised noisy durations: the duration model draws
// max(0, N(E, sigma·E)), and a 10-sigma excursion is beyond anything a
// correct engine produces over this repo's test sizes.
func sigmaEnvelope(sigma float64) float64 { return 1 + 10*sigma }

// ValidateResultStrict runs ValidateResult and then recomputes every slice
// against the timing table and the fault plan:
//
//   - each final slice's compute duration (slice length minus the recomputed
//     communication stall) must be exactly the expected duration when Sigma
//     is zero and the resource is never degraded, and inside
//     [E·minFactor, E·(1+10σ)·maxFactor] otherwise;
//   - no final or killed slice may overlap a transient outage window of its
//     resource (touching endpoints are legal: completions win ties against
//     fault events);
//   - nothing may execute on a resource after its permanent death, and the
//     plan must leave at least one resource alive — otherwise a complete
//     result is impossible and the engine should have failed;
//   - every recorded Kill must be consistent (known task and resource,
//     attempt killed after it started, cause an outage or death).
//
// The recomputed stall uses the final trace: predecessors are always Done
// before a successor starts and their (End, AssignedTo) never change
// afterwards, so the reconstruction is sound even under kills.
func ValidateResultStrict(g *taskgraph.Graph, res Result, opt CheckOptions) error {
	if err := ValidateResult(g, opt.Platform.Size(), res); err != nil {
		return err
	}
	if err := opt.Faults.Validate(opt.Platform.Size()); err != nil {
		return err
	}
	byTask := make([]Placement, g.NumTasks())
	for _, p := range res.Trace {
		byTask[p.Task] = p
	}
	// Per-resource degrade factor bounds and fault windows from the plan.
	numRes := opt.Platform.Size()
	minF := make([]float64, numRes)
	maxF := make([]float64, numRes)
	degraded := make([]bool, numRes)
	deathAt := make([]float64, numRes)
	for r := 0; r < numRes; r++ {
		minF[r], maxF[r] = 1, 1
		deathAt[r] = math.Inf(1)
	}
	var outages []FaultEvent
	if opt.Faults != nil {
		for _, e := range opt.Faults.Events {
			switch e.Kind {
			case FaultOutage:
				outages = append(outages, e)
			case FaultDeath:
				if e.At < deathAt[e.Resource] {
					deathAt[e.Resource] = e.At
				}
			case FaultDegrade:
				degraded[e.Resource] = true
				minF[e.Resource] = math.Min(minF[e.Resource], e.Factor)
				maxF[e.Resource] = math.Max(maxF[e.Resource], e.Factor)
			}
		}
	}
	survivors := 0
	for r := 0; r < numRes; r++ {
		if math.IsInf(deathAt[r], 1) {
			survivors++
		}
	}
	if numRes > 0 && survivors == 0 {
		return fmt.Errorf("sim: fault plan kills every resource, yet the result claims completion")
	}

	// Slice-level duration and fault-window checks for the final attempts.
	for t := 0; t < g.NumTasks(); t++ {
		p := byTask[t]
		// Recompute the communication stall embedded in the slice.
		var ready float64
		for _, pr := range g.Pred[t] {
			at := byTask[pr].End + opt.Comm.Cost(byTask[pr].Resource, p.Resource)
			if at > ready {
				ready = at
			}
		}
		stall := ready - p.Start
		if stall < 0 {
			stall = 0
		}
		work := (p.End - p.Start) - stall
		e := opt.timingOf(t).ExpectedDuration(g.Tasks[t].Kernel, opt.Platform.Resources[p.Resource].Type)
		tol := strictRelTol*e + strictAbsTol
		if opt.Sigma == 0 && !degraded[p.Resource] {
			if math.Abs(work-e) > tol {
				return fmt.Errorf("sim: task %d compute time %.6f != expected %.6f on resource %d (sigma 0, no degrade)",
					t, work, e, p.Resource)
			}
		} else {
			lo := 0.0
			if opt.Sigma == 0 {
				lo = e*minF[p.Resource] - tol
			}
			hi := e*sigmaEnvelope(opt.Sigma)*maxF[p.Resource] + tol
			if work < lo || work > hi {
				return fmt.Errorf("sim: task %d compute time %.6f outside [%.6f, %.6f] on resource %d",
					t, work, lo, hi, p.Resource)
			}
		}
		if err := checkSliceAgainstFaults(fmt.Sprintf("task %d", t), p.Resource, p.Start, p.End, outages, deathAt); err != nil {
			return err
		}
	}

	// Killed attempts: internally consistent and inside no forbidden window
	// (the attempt ends exactly when the fault fires, so only the open
	// interval before the kill matters).
	for i, k := range res.Kills {
		if k.Task < 0 || k.Task >= g.NumTasks() {
			return fmt.Errorf("sim: kill %d names unknown task %d", i, k.Task)
		}
		if k.Resource < 0 || k.Resource >= numRes {
			return fmt.Errorf("sim: kill %d on unknown resource %d", i, k.Resource)
		}
		if k.At < k.Start-strictAbsTol {
			return fmt.Errorf("sim: kill %d of task %d at %.3f precedes its start %.3f", i, k.Task, k.At, k.Start)
		}
		if k.Cause != FaultOutage && k.Cause != FaultDeath {
			return fmt.Errorf("sim: kill %d of task %d has non-killing cause %v", i, k.Task, k.Cause)
		}
		if err := checkSliceAgainstFaults(fmt.Sprintf("killed attempt of task %d", k.Task),
			k.Resource, k.Start, k.At, outages, deathAt); err != nil {
			return err
		}
	}
	return nil
}

// checkSliceAgainstFaults rejects a slice [start, end] on resource r that
// overlaps an outage window of r with positive measure, or extends past r's
// death. Touching endpoints are legal: the engine lets completions win ties,
// and re-executions may start exactly at a recovery instant.
func checkSliceAgainstFaults(what string, r int, start, end float64, outages []FaultEvent, deathAt []float64) error {
	for _, o := range outages {
		if o.Resource != r {
			continue
		}
		oEnd := o.At + o.Duration
		if start < oEnd-strictAbsTol && end > o.At+strictAbsTol {
			return fmt.Errorf("sim: %s [%.3f, %.3f] overlaps outage [%.3f, %.3f] on resource %d",
				what, start, end, o.At, oEnd, r)
		}
	}
	if end > deathAt[r]+strictAbsTol {
		return fmt.Errorf("sim: %s runs until %.3f on resource %d, which died at %.3f", what, end, r, deathAt[r])
	}
	return nil
}
