package sim

import (
	"fmt"
	"sort"

	"readys/internal/taskgraph"
)

// ValidateResult checks that a simulation result is a feasible schedule:
// every task placed exactly once on an existing resource, precedence
// constraints respected (a task starts no earlier than the completion of all
// its predecessors), and no two tasks overlapping on the same resource.
// It returns the first violation found, or nil.
func ValidateResult(g *taskgraph.Graph, numResources int, res Result) error {
	n := g.NumTasks()
	if len(res.Trace) != n {
		return fmt.Errorf("sim: trace has %d placements for %d tasks", len(res.Trace), n)
	}
	byTask := make([]Placement, n)
	seen := make([]bool, n)
	for _, p := range res.Trace {
		if p.Task < 0 || p.Task >= n {
			return fmt.Errorf("sim: placement for unknown task %d", p.Task)
		}
		if seen[p.Task] {
			return fmt.Errorf("sim: task %d placed twice", p.Task)
		}
		seen[p.Task] = true
		if p.Resource < 0 || p.Resource >= numResources {
			return fmt.Errorf("sim: task %d on unknown resource %d", p.Task, p.Resource)
		}
		if p.End < p.Start {
			return fmt.Errorf("sim: task %d ends (%.3f) before it starts (%.3f)", p.Task, p.End, p.Start)
		}
		byTask[p.Task] = p
	}
	// Precedence.
	for j := 0; j < n; j++ {
		for _, i := range g.Pred[j] {
			if byTask[j].Start < byTask[i].End-1e-9 {
				return fmt.Errorf("sim: task %d starts at %.3f before predecessor %d ends at %.3f",
					j, byTask[j].Start, i, byTask[i].End)
			}
		}
	}
	// Resource exclusivity.
	perRes := make([][]Placement, numResources)
	for _, p := range byTask {
		perRes[p.Resource] = append(perRes[p.Resource], p)
	}
	for r, ps := range perRes {
		// Sort by (start, end) so zero-duration tasks sharing a start
		// instant with a longer one are not misreported as overlapping.
		sort.Slice(ps, func(a, b int) bool {
			if ps[a].Start != ps[b].Start {
				return ps[a].Start < ps[b].Start
			}
			return ps[a].End < ps[b].End
		})
		for i := 1; i < len(ps); i++ {
			if ps[i].Start < ps[i-1].End-1e-9 {
				return fmt.Errorf("sim: resource %d runs tasks %d and %d concurrently", r, ps[i-1].Task, ps[i].Task)
			}
		}
	}
	// Makespan consistency.
	var maxEnd float64
	for _, p := range byTask {
		if p.End > maxEnd {
			maxEnd = p.End
		}
	}
	if maxEnd-res.Makespan > 1e-9 || res.Makespan-maxEnd > 1e-9 {
		return fmt.Errorf("sim: makespan %.3f != max end time %.3f", res.Makespan, maxEnd)
	}
	return nil
}
