package sim

// Cluster is the long-lived variant of the event engine: a persistent
// platform whose task graph GROWS over time as jobs arrive, instead of being
// fixed once per Simulate call. It is the substrate of internal/stream's
// online multi-tenant scheduling: every job's DAG is appended to one union
// graph with namespaced task IDs, the shared ready set spans all live jobs,
// and a single Policy (READYS, MCT, re-planning HEFT, ...) fills free
// resources from that union exactly as in the single-DAG engine. Duration
// noise, the ∅ action, forced rounds and the full fault model (outages,
// deaths, degradation, kill/retain/re-time semantics) behave identically —
// the decision and completion machinery is shared with Simulate, not
// reimplemented.
//
// The driving loop belongs to the caller: RunUntil advances simulated time to
// a deadline (typically the next job arrival), AddJob injects a DAG at the
// current instant, and Drain runs the remaining work to completion. All
// randomness comes from Options.Rng, so a (seed, arrivals, fault plan) triple
// replays bit-identically.

import (
	"errors"
	"fmt"
	"math"

	"readys/internal/obs"
	"readys/internal/platform"
	"readys/internal/taskgraph"
)

// Cluster is a persistent simulation state accepting streaming job arrivals.
type Cluster struct {
	s   *State
	opt Options
	tl  *faultTimeline
	res Result

	// readyIntegral accumulates ∫ |Ready| dt for queue-depth metrics.
	readyIntegral float64
	// busy accumulates realised occupancy per resource, including killed
	// attempts (the resource was genuinely occupied until the kill).
	busy []float64
}

// NewCluster builds an empty persistent cluster on the platform. Options are
// interpreted as in Simulate (Rng required; Faults replay against the
// cluster's whole lifetime; Tracer records every job's slices in one trace).
func NewCluster(plat platform.Platform, opt Options) (*Cluster, error) {
	if opt.Rng == nil {
		return nil, errors.New("sim: Options.Rng is required")
	}
	if err := opt.Faults.Validate(plat.Size()); err != nil {
		return nil, err
	}
	s := &State{
		Platform:    plat,
		Sigma:       opt.Sigma,
		Comm:        opt.Comm,
		Graph:       taskgraph.NewCustom(taskgraph.Random, [taskgraph.NumKernels]string{"k0", "k1", "k2", "k3"}),
		BusyUntil:   make([]float64, plat.Size()),
		RunningTask: make([]int, plat.Size()),
		Up:          make([]bool, plat.Size()),
		Dead:        make([]bool, plat.Size()),
		Speed:       make([]float64, plat.Size()),
		JobID:       []int{},
		downUntil:   make([]float64, plat.Size()),
		deathAt:     make([]float64, plat.Size()),
		tracer:      opt.Tracer,
		recorder:    opt.Recorder,
	}
	for r := range s.RunningTask {
		s.RunningTask[r] = NoTask
		s.Up[r] = true
		s.Speed[r] = 1
	}
	c := &Cluster{s: s, opt: opt, tl: newFaultTimeline(opt.Faults), busy: make([]float64, plat.Size())}
	if s.tracer != nil {
		setupTrace(s)
	}
	s.onDone = func(t int, at float64) {
		c.busy[s.AssignedTo[t]] += at - s.StartTime[t]
	}
	return c, nil
}

// State exposes the cluster's scheduling state (read-only for policies).
func (c *Cluster) State() *State { return c.s }

// Now returns the current simulated time in ms.
func (c *Cluster) Now() float64 { return c.s.Now }

// TotalTasks returns the number of tasks injected so far.
func (c *Cluster) TotalTasks() int { return c.s.Graph.NumTasks() }

// Done reports whether every injected task has completed.
func (c *Cluster) Done() bool { return c.s.NumDone == c.s.Graph.NumTasks() }

// OnTaskDone registers a completion hook (task ID, completion time); the
// stream layer uses it to detect job completions. Must be set before running.
func (c *Cluster) OnTaskDone(fn func(task int, at float64)) {
	inner := c.s.onDone
	c.s.onDone = func(t int, at float64) {
		inner(t, at)
		fn(t, at)
	}
}

// AddJob appends a job's DAG to the union graph at the current simulated
// time: task IDs are shifted by the current graph size, the job's roots enter
// the shared ready set, and GraphEpoch is bumped so adaptive policies replan.
// tt is the timing table of the job's DAG family (jobs of different families
// legitimately carry different tables). Returns the job's base task offset.
func (c *Cluster) AddJob(job int, g *taskgraph.Graph, tt platform.Timing) (int, error) {
	s := c.s
	if err := g.Validate(); err != nil {
		return 0, fmt.Errorf("sim: job %d graph invalid: %w", job, err)
	}
	if g.NumTasks() == 0 {
		return 0, fmt.Errorf("sim: job %d has no tasks", job)
	}
	base := s.Graph.NumTasks()
	if base == 0 {
		// Cosmetic: label union kernels after the first job's family.
		s.Graph.KernelNames = g.KernelNames
	}
	// Intern the timing table (streams mix at most a handful of families).
	ti := -1
	for i, have := range s.Timings {
		if have == tt {
			ti = i
			break
		}
	}
	if ti == -1 {
		s.Timings = append(s.Timings, tt)
		ti = len(s.Timings) - 1
	}
	for _, t := range g.Tasks {
		s.Graph.AddTask(t.Kernel, fmt.Sprintf("j%d:%s", job, t.Name))
		s.Done = append(s.Done, false)
		s.Started = append(s.Started, false)
		s.StartTime = append(s.StartTime, 0)
		s.EndTime = append(s.EndTime, 0)
		s.AssignedTo = append(s.AssignedTo, -1)
		s.PredLeft = append(s.PredLeft, len(g.Pred[t.ID]))
		s.Attempts = append(s.Attempts, 0)
		s.TimingIdx = append(s.TimingIdx, ti)
		s.JobID = append(s.JobID, job)
		if len(g.Pred[t.ID]) == 0 {
			s.Ready = insertSorted(s.Ready, base+t.ID)
		}
	}
	for from, succ := range g.Succ {
		for _, to := range succ {
			s.Graph.AddEdge(base+from, base+to)
		}
	}
	s.GraphEpoch++
	if s.tracer != nil {
		traceArrival(s, job, base, g.NumTasks())
	}
	if s.recorder != nil {
		s.recorder.Record(obs.FlightEvent{
			T: s.Now, Kind: obs.FlightArrival,
			Job: fmt.Sprintf("j%d", job), Res: -1, Val: float64(g.NumTasks()),
		})
	}
	return base, nil
}

// RunUntil advances the cluster to the given deadline (exclusive of any event
// strictly after it): completions, fault events and scheduling decisions with
// time ≤ until are processed, then Now is set to until. A completion tying
// with the deadline is processed (completions win ties, matching Simulate's
// fault-boundary rule), so a job arriving at `until` sees fully current
// state. With until = +Inf this drains every injected task, entering forced
// rounds (MustAct) when every resource idles with nothing running — exactly
// Simulate's deadlock/all-dead semantics.
func (c *Cluster) RunUntil(pol Policy, until float64) error {
	s := c.s
	for {
		if err := decisionPhase(s, pol, c.opt, &c.res); err != nil {
			return err
		}
		drained := s.NumDone == s.Graph.NumTasks()
		if drained && math.IsInf(until, 1) {
			// Draining stops at the last completion: later fault events
			// cannot affect finished work (Makespan = last task's end, as in
			// Simulate). With a finite deadline they still fire below, so an
			// idle cluster's resource state is current when a job arrives.
			return nil
		}
		tc := earliestCompletion(s)
		tf := c.tl.nextTime()
		next := math.Min(tc, tf)
		// next == +Inf must take this branch even when until is +Inf too
		// (Inf > Inf is false): with no event pending, the only ways forward
		// are parking at a finite deadline or a forced round.
		if next > until || math.IsInf(next, 1) {
			if !math.IsInf(until, 1) {
				c.account(until)
				s.Now = until
				return nil
			}
			// Nothing pending and no deadline: either the platform is gone
			// or every free resource declined while nothing runs — force a
			// start exactly as the single-DAG engine does.
			if s.aliveCount() == 0 {
				return fmt.Errorf("%w: %d tasks remain", ErrAllResourcesDead, s.Graph.NumTasks()-s.NumDone)
			}
			if err := forcedPhase(s, pol, c.opt, &c.res); err != nil {
				return err
			}
			continue
		}
		c.account(next)
		if tf < tc {
			s.Now = tf
			applyFaults(s, c.tl, &c.res)
			continue
		}
		completeNext(s)
	}
}

// Drain runs every remaining task to completion and finalises the result
// (makespan = completion time of the last task, full union trace).
func (c *Cluster) Drain(pol Policy) error {
	if err := c.RunUntil(pol, math.Inf(1)); err != nil {
		return err
	}
	if c.s.tracer != nil {
		finishTraceFaults(c.s)
	}
	return nil
}

// account integrates the ready-queue depth up to time t and samples it into
// the flight recorder (one sample per advance, at the interval's start).
func (c *Cluster) account(t float64) {
	if dt := t - c.s.Now; dt > 0 {
		c.readyIntegral += float64(len(c.s.Ready)) * dt
		if c.s.recorder != nil {
			c.s.recorder.Record(obs.FlightEvent{
				T: c.s.Now, Kind: obs.FlightReadyDepth, Res: -1, Val: float64(len(c.s.Ready)),
			})
		}
	}
}

// Result snapshots the cluster outcome in Simulate's Result shape: the union
// trace over every completed task, the cumulative decision counts and kill
// log, and Makespan = current simulated time. Call after Drain for the final
// schedule (ValidateResult/ValidateResultStrict accept it against the union
// graph).
func (c *Cluster) Result() Result {
	s := c.s
	res := Result{
		Makespan:      s.Now,
		Decisions:     c.res.Decisions,
		IdleDecisions: c.res.IdleDecisions,
		Kills:         append([]Kill(nil), c.res.Kills...),
		Trace:         make([]Placement, 0, s.NumDone),
	}
	for t := 0; t < s.Graph.NumTasks(); t++ {
		if s.Done[t] {
			res.Trace = append(res.Trace, Placement{Task: t, Resource: s.AssignedTo[t], Start: s.StartTime[t], End: s.EndTime[t]})
		}
	}
	return res
}

// BusyTime returns the cumulative realised occupancy of each resource in ms,
// including killed attempts (occupancy the cluster genuinely spent).
func (c *Cluster) BusyTime() []float64 {
	out := append([]float64(nil), c.busy...)
	s := c.s
	for r, t := range s.RunningTask {
		if t != NoTask {
			out[r] += s.Now - s.StartTime[t]
		}
	}
	return out
}

// MeanReadyDepth returns the time-averaged ready-set depth since t=0.
func (c *Cluster) MeanReadyDepth() float64 {
	if c.s.Now <= 0 {
		return 0
	}
	return c.readyIntegral / c.s.Now
}
