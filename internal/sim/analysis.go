package sim

import (
	"math"
	"sort"

	"readys/internal/platform"
	"readys/internal/taskgraph"
)

// ScheduleStats summarises a simulated schedule beyond its makespan: where
// the time went, how each kernel type was placed across resource types, and
// the realised critical chain that determined the makespan.
type ScheduleStats struct {
	Makespan float64
	// BusyTime[r] is the total computing time of resource r; IdleTime[r] is
	// Makespan − BusyTime[r].
	BusyTime []float64
	IdleTime []float64
	// MeanUtilisation is the average of BusyTime/Makespan over resources.
	MeanUtilisation float64
	// KernelPlacement[k][t] counts tasks of kernel k executed on resource
	// type t — the learned (or heuristic) allocation split.
	KernelPlacement [taskgraph.NumKernels][platform.NumResourceTypes]int
	// CriticalChain is a realised blocking chain ending at the last-finishing
	// task: each element starts exactly when its blocking predecessor — a DAG
	// parent or the previous task on the same resource — ends. Its length is
	// a lower-bound witness for the achieved makespan.
	CriticalChain []int
}

// Analyze computes ScheduleStats for a completed simulation result.
func Analyze(g *taskgraph.Graph, plat platform.Platform, res Result) ScheduleStats {
	st := ScheduleStats{
		Makespan: res.Makespan,
		BusyTime: make([]float64, plat.Size()),
		IdleTime: make([]float64, plat.Size()),
	}
	byTask := make([]Placement, g.NumTasks())
	perRes := make([][]Placement, plat.Size())
	for _, p := range res.Trace {
		byTask[p.Task] = p
		st.BusyTime[p.Resource] += p.End - p.Start
		st.KernelPlacement[g.Tasks[p.Task].Kernel][plat.Resources[p.Resource].Type]++
		perRes[p.Resource] = append(perRes[p.Resource], p)
	}
	var utilSum float64
	for r := range st.BusyTime {
		st.IdleTime[r] = res.Makespan - st.BusyTime[r]
		if res.Makespan > 0 {
			utilSum += st.BusyTime[r] / res.Makespan
		}
	}
	st.MeanUtilisation = utilSum / float64(plat.Size())

	// Resource-order predecessor lookup.
	prevOnRes := make(map[int]int) // task -> previous task on same resource, or absent
	for _, ps := range perRes {
		sort.Slice(ps, func(a, b int) bool {
			if ps[a].Start != ps[b].Start {
				return ps[a].Start < ps[b].Start
			}
			return ps[a].End < ps[b].End
		})
		for i := 1; i < len(ps); i++ {
			prevOnRes[ps[i].Task] = ps[i-1].Task
		}
	}

	// Walk the blocking chain backwards from the last-finishing task.
	last, lastEnd := -1, math.Inf(-1)
	for t, p := range byTask {
		if p.End > lastEnd {
			last, lastEnd = t, p.End
		}
	}
	const eps = 1e-9
	var chain []int
	for t := last; t >= 0; {
		chain = append(chain, t)
		p := byTask[t]
		blocker := -1
		// A DAG parent finishing exactly at our start blocks us...
		for _, pr := range g.Pred[t] {
			if math.Abs(byTask[pr].End-p.Start) <= eps {
				blocker = pr
				break
			}
		}
		// ...otherwise the previous task on the same resource might.
		if blocker == -1 {
			if pr, ok := prevOnRes[t]; ok && math.Abs(byTask[pr].End-p.Start) <= eps {
				blocker = pr
			}
		}
		t = blocker
	}
	// Reverse into execution order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	st.CriticalChain = chain
	return st
}

// GPUShare returns the fraction of tasks of kernel k that ran on GPUs.
func (s ScheduleStats) GPUShare(k taskgraph.Kernel) float64 {
	total := s.KernelPlacement[k][platform.CPU] + s.KernelPlacement[k][platform.GPU]
	if total == 0 {
		return 0
	}
	return float64(s.KernelPlacement[k][platform.GPU]) / float64(total)
}
