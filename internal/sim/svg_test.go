package sim

import (
	"math/rand"
	"strings"
	"testing"
)

func TestWriteGanttSVG(t *testing.T) {
	g, plat, tim := chol(4)
	res, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteGanttSVG(&sb, g, plat, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<svg", "</svg>", "POTRF(0)", "makespan", "CPU", "GPU"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// One rect per task placement (plus lanes/background/legend).
	if n := strings.Count(out, "<title>"); n != g.NumTasks() {
		t.Fatalf("%d task titles, want %d", n, g.NumTasks())
	}
}

func TestWriteGanttSVGRejectsEmpty(t *testing.T) {
	g, plat, _ := chol(2)
	var sb strings.Builder
	if err := WriteGanttSVG(&sb, g, plat, Result{}); err == nil {
		t.Fatal("empty schedule should error")
	}
}
