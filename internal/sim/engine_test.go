package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"readys/internal/platform"
	"readys/internal/taskgraph"
)

// stubbornPolicy idles until the engine forces it (MustAct), then plays FIFO.
type stubbornPolicy struct {
	forcedCalls int
}

func (p *stubbornPolicy) Reset(*State) {}
func (p *stubbornPolicy) Decide(s *State, _ int) int {
	if s.MustAct {
		p.forcedCalls++
		return s.Ready[0]
	}
	return NoTask
}

func TestForcedPhaseRescuesStubbornPolicy(t *testing.T) {
	g, plat, tim := chol(4)
	pol := &stubbornPolicy{}
	res, err := Simulate(g, plat, tim, pol, Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateResult(g, plat.Size(), res); err != nil {
		t.Fatal(err)
	}
	if pol.forcedCalls == 0 {
		t.Fatal("forced rounds never triggered")
	}
	// Every task must have been started through a forced round (the policy
	// never starts anything voluntarily).
	if pol.forcedCalls != g.NumTasks() {
		t.Fatalf("forced calls %d, want %d", pol.forcedCalls, g.NumTasks())
	}
	// Outside forced rounds everything idles.
	if res.IdleDecisions == 0 {
		t.Fatal("expected idle decisions")
	}
}

// semiStubborn idles even when forced — a real deadlock.
type semiStubborn struct{}

func (semiStubborn) Reset(*State)           {}
func (semiStubborn) Decide(*State, int) int { return NoTask }

func TestForcedPhaseStillDeadlocksOnTotalRefusal(t *testing.T) {
	g, plat, tim := chol(3)
	_, err := Simulate(g, plat, tim, semiStubborn{}, Options{Rng: rand.New(rand.NewSource(1))})
	if err != ErrDeadlock {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
}

func TestMustActClearedAfterForcedPhase(t *testing.T) {
	g, plat, tim := chol(3)
	sawMustActOutsideForce := false
	pol := &probeMustAct{flag: &sawMustActOutsideForce}
	if _, err := Simulate(g, plat, tim, pol, Options{Rng: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
	if sawMustActOutsideForce {
		t.Fatal("MustAct leaked outside forced rounds")
	}
}

// probeMustAct behaves like FIFO (never refuses), so the engine must never
// enter a forced round and MustAct must never be observed set.
type probeMustAct struct {
	flag *bool
}

func (p *probeMustAct) Reset(*State) {}
func (p *probeMustAct) Decide(s *State, _ int) int {
	if s.MustAct {
		*p.flag = true
	}
	return s.Ready[0]
}

func TestInsertRemoveSortedProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		var xs []int
		seen := map[int]bool{}
		for _, v := range vals {
			if !seen[int(v)] {
				seen[int(v)] = true
				xs = insertSorted(xs, int(v))
			}
		}
		if !sort.IntsAreSorted(xs) {
			return false
		}
		// Remove half the elements and stay sorted.
		for i, v := range vals {
			if i%2 == 0 && seen[int(v)] {
				seen[int(v)] = false
				xs = removeSorted(xs, int(v))
				if !sort.IntsAreSorted(xs) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveSortedMissingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("removing a missing element should panic")
		}
	}()
	removeSorted([]int{1, 3}, 2)
}

func TestSimulateMultiRootRandomDAG(t *testing.T) {
	// Random layered DAGs can have several roots; the engine must handle
	// multiple initially-ready tasks.
	rng := rand.New(rand.NewSource(9))
	cfg := taskgraph.RandomConfig{Layers: 4, WidthMin: 3, WidthMax: 6, EdgeProb: 0.4}
	g := taskgraph.NewLayeredRandom(rng, cfg)
	plat := platform.New(3, 1)
	res, err := Simulate(g, plat, platform.TimingFor(taskgraph.Random), fifoPolicy{},
		Options{Sigma: 0.2, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateResult(g, plat.Size(), res); err != nil {
		t.Fatal(err)
	}
}
