package sim

import (
	"math"
	"math/rand"
	"testing"

	"readys/internal/platform"
	"readys/internal/taskgraph"
)

func TestAnalyzeBusyIdleAndUtilisation(t *testing.T) {
	g, plat, tim := chol(6)
	res, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	st := Analyze(g, plat, res)
	if st.Makespan != res.Makespan {
		t.Fatal("makespan mismatch")
	}
	var busySum float64
	for r := range st.BusyTime {
		if st.BusyTime[r] < 0 || st.BusyTime[r] > res.Makespan+1e-9 {
			t.Fatalf("busy[%d] = %v out of range", r, st.BusyTime[r])
		}
		if math.Abs(st.BusyTime[r]+st.IdleTime[r]-res.Makespan) > 1e-9 {
			t.Fatalf("busy+idle != makespan on resource %d", r)
		}
		busySum += st.BusyTime[r]
	}
	// Busy time must equal the sum of all task durations.
	var durSum float64
	for _, p := range res.Trace {
		durSum += p.End - p.Start
	}
	if math.Abs(busySum-durSum) > 1e-9 {
		t.Fatal("total busy time inconsistent")
	}
	if st.MeanUtilisation <= 0 || st.MeanUtilisation > 1 {
		t.Fatalf("utilisation %v", st.MeanUtilisation)
	}
}

func TestAnalyzeKernelPlacementCounts(t *testing.T) {
	g, plat, tim := chol(5)
	res, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	st := Analyze(g, plat, res)
	counts := g.KernelCounts()
	for k := 0; k < taskgraph.NumKernels; k++ {
		total := 0
		for rt := platform.ResourceType(0); rt < platform.NumResourceTypes; rt++ {
			total += st.KernelPlacement[k][rt]
		}
		if total != counts[k] {
			t.Fatalf("kernel %d placement total %d, want %d", k, total, counts[k])
		}
	}
	// GPUShare is a valid fraction.
	for k := 0; k < taskgraph.NumKernels; k++ {
		if s := st.GPUShare(taskgraph.Kernel(k)); s < 0 || s > 1 {
			t.Fatalf("GPUShare(%d) = %v", k, s)
		}
	}
}

func TestAnalyzeCriticalChain(t *testing.T) {
	g, plat, tim := chol(6)
	res, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Sigma: 0.2, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	st := Analyze(g, plat, res)
	if len(st.CriticalChain) == 0 {
		t.Fatal("empty critical chain")
	}
	byTask := make([]Placement, g.NumTasks())
	for _, p := range res.Trace {
		byTask[p.Task] = p
	}
	// The chain ends at the last-finishing task.
	lastInChain := st.CriticalChain[len(st.CriticalChain)-1]
	if math.Abs(byTask[lastInChain].End-res.Makespan) > 1e-9 {
		t.Fatal("chain does not end at the makespan")
	}
	// Every link is blocking: next.Start == prev.End.
	for i := 1; i < len(st.CriticalChain); i++ {
		prev, next := byTask[st.CriticalChain[i-1]], byTask[st.CriticalChain[i]]
		if math.Abs(next.Start-prev.End) > 1e-9 {
			t.Fatalf("chain link %d not blocking: %v -> %v", i, prev, next)
		}
	}
}

func TestAnalyzeSingleResourceFullyBusy(t *testing.T) {
	g := taskgraph.NewCholesky(3)
	plat := platform.New(1, 0)
	tim := platform.TimingFor(taskgraph.Cholesky)
	res, err := Simulate(g, plat, tim, fifoPolicy{}, Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	st := Analyze(g, plat, res)
	// One resource, no dependencies can idle it with FIFO: utilisation 1.
	if math.Abs(st.MeanUtilisation-1) > 1e-9 {
		t.Fatalf("single-resource utilisation %v", st.MeanUtilisation)
	}
	// Critical chain covers every task (pure serial execution).
	if len(st.CriticalChain) != g.NumTasks() {
		t.Fatalf("serial chain has %d of %d tasks", len(st.CriticalChain), g.NumTasks())
	}
}
