// Package sim is the discrete-event simulator on which every scheduler in
// this repository — HEFT, MCT, random and the READYS agent — is evaluated,
// mirroring the simulation methodology of the paper (§V-B).
//
// The engine advances simulated time from task-completion event to
// task-completion event. Whenever at least one resource is free and at least
// one task is ready, it repeatedly picks a free resource ("the current
// processor", chosen uniformly at random as in §III-B) and asks the Policy to
// either start a ready task on it or leave it idle (the ∅ action) until the
// next event. Actual task durations are drawn from the platform's stochastic
// duration model at start time, so dynamic policies observe — and can react
// to — realised durations, while static policies suffer from drift, exactly
// the phenomenon the paper studies.
//
// Beyond duration noise the engine can replay a deterministic FaultPlan
// (Options.Faults): transient resource outages, permanent deaths and
// mid-run speed degradation, with in-flight tasks killed and re-executed.
// With an empty plan the fault layer is bit-inert — every existing result
// is unchanged.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"readys/internal/obs"
	"readys/internal/platform"
	"readys/internal/taskgraph"
)

// NoTask is returned by a Policy to leave the current resource idle until the
// next completion event (the paper's ∅ action).
const NoTask = -1

// State is the complete runtime state visible to scheduling policies.
// Policies must treat it as read-only.
type State struct {
	Graph    *taskgraph.Graph
	Platform platform.Platform
	Timing   platform.Timing
	Sigma    float64
	// Comm is the optional communication model (nil = free communication,
	// the paper's setting).
	Comm *platform.CommModel

	// Now is the current simulated time in ms.
	Now float64
	// Ready lists the ready tasks (all predecessors done, not started),
	// sorted by task ID.
	Ready []int
	// Running lists the currently executing tasks, sorted by task ID.
	Running []int

	// Status per task.
	Done      []bool
	Started   []bool
	StartTime []float64
	EndTime   []float64
	// AssignedTo[i] is the resource executing (or having executed) task i,
	// or -1.
	AssignedTo []int

	// BusyUntil[r] is the time at which resource r finishes its current
	// task (<= Now when free). RunningTask[r] is the task executing on r,
	// or -1.
	BusyUntil   []float64
	RunningTask []int

	// NumDone counts completed tasks.
	NumDone int
	// PredLeft[i] counts unfinished predecessors of task i.
	PredLeft []int

	// MustAct is set by the engine during a forced decision round: every
	// free resource declined while no task was running, so simulated time
	// cannot advance unless someone starts a task. Policies that support
	// the ∅ action must not idle when MustAct is true.
	MustAct bool

	// Fault-injection state (Options.Faults). Policies may read it; without
	// a fault plan every resource is Up, none Dead, all speeds 1 and the
	// epoch stays 0.
	//
	// Up[r] reports whether resource r is currently available (alive and
	// not inside an outage). Dead[r] reports permanent death. Speed[r] is
	// the current duration multiplier of r (1 = nominal, 2 = half speed).
	// Attempts[i] counts killed executions of task i. FaultEpoch increments
	// whenever a fault event changes visible resource state — adaptive
	// policies key replans on it.
	Up         []bool
	Dead       []bool
	Speed      []float64
	Attempts   []int
	FaultEpoch int

	// Multi-job (streaming) state. Single-DAG runs leave all three nil/zero
	// and behave exactly as before.
	//
	// Timings, when non-empty, holds the distinct timing tables of the jobs
	// sharing the cluster, and TimingIdx[t] selects the table governing task
	// t (mixed DAG families have different per-kernel durations, so one
	// global table cannot describe a multi-family stream). JobID[t], when
	// non-nil, is the arrival-ordered job a task belongs to. GraphEpoch
	// increments whenever tasks are appended to the graph mid-run (a job
	// arrival); adaptive policies key replans on it like on FaultEpoch.
	Timings    []platform.Timing
	TimingIdx  []int
	JobID      []int
	GraphEpoch int

	// downUntil[r] is the engine-internal recovery time of an ongoing
	// outage (not exposed: policies must not see the future). deathAt[r]
	// records when r died, for tracing.
	downUntil []float64
	deathAt   []float64

	// tracer, when set via Options.Tracer, receives task-start/task-end
	// events per resource lane (and comm transfers), plus outage / death /
	// kill fault spans. Invisible to policies.
	tracer *obs.Tracer

	// recorder, when set via Options.Recorder, receives cluster-level flight
	// events (arrivals, placements, kills, faults, resource up/down,
	// ready-depth samples). Invisible to policies; nil is a no-op.
	recorder *obs.FlightRecorder

	// onDone, when set (Cluster runs), is invoked after each task completes
	// — the hook streaming job bookkeeping hangs off. Invisible to policies.
	onDone func(task int, at float64)
}

// NumRunning returns the number of tasks currently executing.
func (s *State) NumRunning() int { return len(s.Running) }

// up reports current availability, tolerating hand-built States without
// fault bookkeeping.
func (s *State) up(r int) bool { return s.Up == nil || s.Up[r] }

// speed returns the current duration multiplier of r (1 when no fault state
// is attached).
func (s *State) speed(r int) float64 {
	if s.Speed == nil {
		return 1
	}
	return s.Speed[r]
}

// ResourceUp reports whether resource r is currently available: alive and
// not inside an outage. The engine never asks policies to fill unavailable
// resources, but resource-ranking heuristics (MCT, re-planning HEFT) must
// exclude them when estimating completion times.
func (s *State) ResourceUp(r int) bool { return s.up(r) }

// ResourceDead reports whether resource r failed permanently.
func (s *State) ResourceDead(r int) bool { return s.Dead != nil && s.Dead[r] }

// SpeedFactor returns the current duration multiplier of resource r.
func (s *State) SpeedFactor(r int) float64 { return s.speed(r) }

// IsFree reports whether resource r can start a task at s.Now: idle and
// currently available.
func (s *State) IsFree(r int) bool { return s.RunningTask[r] == NoTask && s.up(r) }

// FreeResources returns the IDs of idle, available resources in ascending
// order.
func (s *State) FreeResources() []int {
	var out []int
	for r := range s.RunningTask {
		if s.RunningTask[r] == NoTask && s.up(r) {
			out = append(out, r)
		}
	}
	return out
}

// TimeUntilFree returns max(0, BusyUntil[r] - Now): the *actual* wait before
// resource r becomes available (0 when free). Only the engine knows this
// exactly; schedulers should use EstTimeUntilFree, which is based on expected
// durations.
func (s *State) TimeUntilFree(r int) float64 {
	d := s.BusyUntil[r] - s.Now
	if d < 0 {
		return 0
	}
	return d
}

// EstDuration returns the expected duration of kernel k on resource r under
// r's current speed factor — the best estimate a scheduler can make for a
// possibly degraded resource. In multi-job streams the kernel index alone is
// ambiguous (families have distinct tables); use EstTaskDuration there.
func (s *State) EstDuration(k taskgraph.Kernel, r int) float64 {
	return s.Timing.ExpectedDuration(k, s.Platform.Resources[r].Type) * s.speed(r)
}

// TaskTiming returns the timing table governing task t: the per-job table in
// a multi-job stream, the problem-wide table otherwise.
func (s *State) TaskTiming(t int) platform.Timing {
	if len(s.Timings) > 0 {
		return s.Timings[s.TimingIdx[t]]
	}
	return s.Timing
}

// EstTaskDuration returns the expected duration of task t on resource r under
// r's current speed factor, resolved through t's own timing table.
func (s *State) EstTaskDuration(t, r int) float64 {
	return s.TaskTiming(t).ExpectedDuration(s.Graph.Tasks[t].Kernel, s.Platform.Resources[r].Type) * s.speed(r)
}

// JobOf returns the job a task belongs to (0 for single-DAG runs).
func (s *State) JobOf(t int) int {
	if s.JobID == nil {
		return 0
	}
	return s.JobID[t]
}

// MaxExpected returns the largest expected duration over every timing table
// attached to the state — the normaliser for time-valued features. Equals
// Timing.MaxExpected() in single-DAG runs.
func (s *State) MaxExpected() float64 {
	if len(s.Timings) == 0 {
		return s.Timing.MaxExpected()
	}
	var m float64
	for _, tt := range s.Timings {
		if v := tt.MaxExpected(); v > m {
			m = v
		}
	}
	return m
}

// EstTimeUntilFree returns the wait before resource r becomes available as a
// scheduler can estimate it: the running task's start time plus its
// *expected* duration (under r's current speed factor), clamped at zero when
// the task is overdue. This is the "estimated time at which it will be
// available" resource feature of §III-B; under duration noise it deviates
// from the truth, which is exactly the information imperfection dynamic
// schedulers must cope with.
func (s *State) EstTimeUntilFree(r int) float64 {
	t := s.RunningTask[r]
	if t == NoTask {
		return 0
	}
	e := s.EstTaskDuration(t, r)
	d := s.StartTime[t] + e - s.Now
	if d < 0 {
		return 0
	}
	return d
}

// Policy decides, each time a free resource must be filled, which ready task
// to start on it (or NoTask for ∅). Implementations may keep internal state;
// Reset is called once per episode before the first decision.
type Policy interface {
	// Reset prepares the policy for a fresh episode on the given problem.
	// It is called after the State has been initialised.
	Reset(s *State)
	// Decide returns a task from s.Ready to start on resource r, or NoTask.
	Decide(s *State, r int) int
}

// Placement records where and when one task executed.
type Placement struct {
	Task     int
	Resource int
	Start    float64
	End      float64
}

// Result is the outcome of one simulated schedule.
type Result struct {
	Makespan  float64
	Trace     []Placement
	Decisions int
	// IdleDecisions counts ∅ actions taken.
	IdleDecisions int
	// Kills lists the task attempts terminated by fault events (empty
	// without a fault plan). The final, successful attempt of each task is
	// the one recorded in Trace.
	Kills []Kill
}

// Options configures a simulation run.
type Options struct {
	// Sigma is the duration noise level (§V-B).
	Sigma float64
	// Comm enables the communication-cost extension (nil = free, as in the
	// paper).
	Comm *platform.CommModel
	// Rng drives duration sampling and the random choice of the current
	// processor. Required.
	Rng *rand.Rand
	// Faults, if non-nil and non-empty, replays the fault plan against the
	// run: outages and deaths kill in-flight work, degrades re-time it.
	// Fault events consume no randomness from Rng, and an empty plan leaves
	// every result bit-identical to a fault-free run.
	Faults *FaultPlan
	// OnDecision, if non-nil, is invoked after every policy decision with
	// the state, the resource asked, and the chosen task (or NoTask). Used
	// by the RL trainer to record trajectories.
	OnDecision func(s *State, resource, task int)
	// Tracer, if non-nil, records task-start/task-end events per resource
	// lane (and, with a communication model, per-transfer slices) that
	// export as a Chrome trace (obs.Tracer.WriteChromeTrace). Tracing never
	// consumes randomness, so a traced run is bit-identical to an untraced
	// one.
	Tracer *obs.Tracer
	// Recorder, if non-nil, is the cluster flight recorder: a bounded ring
	// of arrivals, placement decisions, kills, fault transitions and
	// ready-depth samples for post-mortem queries (readys-obs-check
	// -flight). Like Tracer it never consumes randomness — a recorded run
	// is bit-identical to an unrecorded one.
	Recorder *obs.FlightRecorder
}

// ErrDeadlock is returned when every resource idles while no task is running
// and tasks remain: simulated time can no longer advance.
var ErrDeadlock = errors.New("sim: all resources idle with no running task but tasks remain")

// ErrAllResourcesDead is returned when the fault plan permanently kills every
// resource before the DAG completes: the remaining tasks have no compatible
// survivor. Plans produced by GeneratePlan always spare one resource.
var ErrAllResourcesDead = errors.New("sim: every resource died before the DAG completed")

// Simulate executes the whole DAG under the policy and returns the schedule.
// The graph must be a valid DAG. An error is returned if the policy picks a
// non-ready task or deadlocks the system, or if a fault plan kills every
// resource before the DAG completes.
func Simulate(g *taskgraph.Graph, plat platform.Platform, timing platform.Timing, pol Policy, opt Options) (Result, error) {
	if opt.Rng == nil {
		return Result{}, errors.New("sim: Options.Rng is required")
	}
	if err := opt.Faults.Validate(plat.Size()); err != nil {
		return Result{}, err
	}
	n := g.NumTasks()
	s := &State{
		Graph:       g,
		Platform:    plat,
		Timing:      timing,
		Sigma:       opt.Sigma,
		Comm:        opt.Comm,
		Done:        make([]bool, n),
		Started:     make([]bool, n),
		StartTime:   make([]float64, n),
		EndTime:     make([]float64, n),
		AssignedTo:  make([]int, n),
		BusyUntil:   make([]float64, plat.Size()),
		RunningTask: make([]int, plat.Size()),
		PredLeft:    make([]int, n),
		Up:          make([]bool, plat.Size()),
		Dead:        make([]bool, plat.Size()),
		Speed:       make([]float64, plat.Size()),
		Attempts:    make([]int, n),
		downUntil:   make([]float64, plat.Size()),
		deathAt:     make([]float64, plat.Size()),
		tracer:      opt.Tracer,
		recorder:    opt.Recorder,
	}
	if s.tracer != nil {
		setupTrace(s)
	}
	for i := range s.AssignedTo {
		s.AssignedTo[i] = -1
	}
	for r := range s.RunningTask {
		s.RunningTask[r] = NoTask
		s.Up[r] = true
		s.Speed[r] = 1
	}
	for i := 0; i < n; i++ {
		s.PredLeft[i] = len(g.Pred[i])
		if s.PredLeft[i] == 0 {
			s.Ready = append(s.Ready, i)
		}
	}
	faults := newFaultTimeline(opt.Faults)
	pol.Reset(s)

	res := Result{Trace: make([]Placement, 0, n)}
	for s.NumDone < n {
		// Decision phase: fill free resources until the policy declines
		// every remaining one or no ready task is left.
		if err := decisionPhase(s, pol, opt, &res); err != nil {
			return res, err
		}
		if s.NumDone == n {
			break
		}
		tc := earliestCompletion(s)
		tf := faults.nextTime()
		if math.IsInf(tc, 1) && math.IsInf(tf, 1) {
			// Nothing runs and no fault event can change the resource
			// state. If nothing is even alive, the remaining tasks can
			// never complete; otherwise re-ask in forced mode (∅
			// disallowed) until someone starts a task.
			if s.aliveCount() == 0 {
				return res, fmt.Errorf("%w: %d tasks remain", ErrAllResourcesDead, n-s.NumDone)
			}
			if err := forcedPhase(s, pol, opt, &res); err != nil {
				return res, err
			}
			tc = earliestCompletion(s)
		}
		// Advance to the earlier of the next completion and the next fault
		// event; completions win ties so a task finishing exactly at an
		// outage boundary is not killed retroactively.
		if tf < tc {
			s.Now = tf
			applyFaults(s, faults, &res)
			continue
		}
		completeNext(s)
	}
	res.Makespan = s.Now
	for i := 0; i < n; i++ {
		res.Trace = append(res.Trace, Placement{Task: i, Resource: s.AssignedTo[i], Start: s.StartTime[i], End: s.EndTime[i]})
	}
	if s.tracer != nil {
		finishTraceFaults(s)
	}
	return res, nil
}

// earliestCompletion returns the earliest running-task end time, or +Inf when
// nothing is running.
func earliestCompletion(s *State) float64 {
	earliest := math.Inf(1)
	for _, t := range s.Running {
		if s.EndTime[t] < earliest {
			earliest = s.EndTime[t]
		}
	}
	return earliest
}

// aliveCount returns the number of resources that have not died permanently.
func (s *State) aliveCount() int {
	var n int
	for r := range s.Dead {
		if !s.Dead[r] {
			n++
		}
	}
	return n
}

// applyFaults applies every timeline event scheduled at s.Now.
func applyFaults(s *State, tl *faultTimeline, res *Result) {
	for tl.next < len(tl.events) && tl.events[tl.next].at <= s.Now {
		applyFaultEvent(s, tl.events[tl.next], res)
		tl.next++
	}
}

// applyFaultEvent transitions resource state for one timeline event, killing
// in-flight work and re-timing remaining work as required.
func applyFaultEvent(s *State, ev tlEvent, res *Result) {
	r := ev.resource
	switch ev.kind {
	case tlOutage:
		if s.Dead[r] {
			return
		}
		if ev.end > s.downUntil[r] {
			s.downUntil[r] = ev.end
		}
		if s.tracer != nil {
			traceOutage(s, r, ev.at, ev.end-ev.at)
		}
		if s.Up[r] {
			s.Up[r] = false
			if s.recorder != nil {
				s.recorder.Record(obs.FlightEvent{T: ev.at, Kind: obs.FlightFault, Res: r, Note: FaultOutage.String()})
				s.recorder.Record(obs.FlightEvent{T: ev.at, Kind: obs.FlightResourceDown, Res: r})
			}
			killRunning(s, r, ev.at, FaultOutage, res)
			s.FaultEpoch++
		}
	case tlRecover:
		if s.Dead[r] || s.Up[r] {
			return
		}
		// A longer overlapping outage may still hold the resource down;
		// only the recovery matching the latest outage end releases it.
		if ev.at >= s.downUntil[r] {
			s.Up[r] = true
			if s.recorder != nil {
				s.recorder.Record(obs.FlightEvent{T: ev.at, Kind: obs.FlightResourceUp, Res: r, Val: s.Speed[r]})
			}
			s.FaultEpoch++
		}
	case tlDeath:
		if s.Dead[r] {
			return
		}
		s.Dead[r] = true
		s.deathAt[r] = ev.at
		s.downUntil[r] = math.Inf(1)
		if s.tracer != nil {
			traceDeath(s, r, ev.at)
		}
		if s.recorder != nil {
			s.recorder.Record(obs.FlightEvent{T: ev.at, Kind: obs.FlightFault, Res: r, Note: FaultDeath.String()})
			s.recorder.Record(obs.FlightEvent{T: ev.at, Kind: obs.FlightResourceDown, Res: r})
		}
		s.Up[r] = false
		killRunning(s, r, ev.at, FaultDeath, res)
		s.FaultEpoch++
	case tlDegrade:
		if s.Dead[r] {
			return
		}
		old := s.Speed[r]
		if ev.factor == old {
			return
		}
		s.Speed[r] = ev.factor
		// Re-time the remaining *compute* of the in-flight task by the
		// factor ratio: work already done stays done, and the data stall
		// (network, not compute) is unaffected. BusyUntil tracks the pure
		// compute span, so its remainder is exactly what stretches;
		// EndTime shifts by the same delta.
		if t := s.RunningTask[r]; t != NoTask {
			ratio := ev.factor / old
			if rem := s.BusyUntil[r] - ev.at; rem > 0 {
				s.BusyUntil[r] = ev.at + rem*ratio
				s.EndTime[t] += rem * (ratio - 1)
			}
		}
		if s.tracer != nil {
			traceDegrade(s, r, ev.at, ev.factor)
		}
		if s.recorder != nil {
			s.recorder.Record(obs.FlightEvent{T: ev.at, Kind: obs.FlightFault, Res: r, Val: ev.factor, Note: FaultDegrade.String()})
		}
		s.FaultEpoch++
	}
}

// recordDecision logs one placement into the flight recorder (no-op when
// recording is off).
func recordDecision(s *State, task, r int, note string) {
	if s.recorder == nil {
		return
	}
	s.recorder.Record(obs.FlightEvent{
		T: s.Now, Kind: obs.FlightDecision,
		Job: jobLabel(s, task), Task: s.Graph.Tasks[task].Name, Res: r, Note: note,
	})
}

// jobLabel names the stream job owning task t ("" in single-DAG runs).
func jobLabel(s *State, t int) string {
	if s.JobID == nil {
		return ""
	}
	return fmt.Sprintf("j%d", s.JobID[t])
}

// killRunning terminates the task executing on resource r (if any) at time
// at: the attempt is recorded, the task returns to the ready set, and its
// predecessors' outputs are retained so re-execution only repeats the killed
// work (plus fresh input transfers under the communication model).
func killRunning(s *State, r int, at float64, cause FaultKind, res *Result) {
	t := s.RunningTask[r]
	if t == NoTask {
		return
	}
	if s.tracer != nil {
		traceKill(s, t, r, at)
	}
	if s.recorder != nil {
		s.recorder.Record(obs.FlightEvent{
			T: at, Kind: obs.FlightKill,
			Job: jobLabel(s, t), Task: s.Graph.Tasks[t].Name, Res: r, Note: cause.String(),
		})
	}
	res.Kills = append(res.Kills, Kill{Task: t, Resource: r, Start: s.StartTime[t], At: at, Cause: cause})
	s.Attempts[t]++
	s.Running = removeSorted(s.Running, t)
	s.RunningTask[r] = NoTask
	s.BusyUntil[r] = at
	s.Started[t] = false
	s.AssignedTo[t] = -1
	s.StartTime[t] = 0
	s.EndTime[t] = 0
	s.Ready = insertSorted(s.Ready, t)
}

// decisionPhase asks the policy to fill free resources. Each free resource is
// asked at most once per phase (an ∅ answer parks it until the next event),
// and the "current processor" is drawn uniformly at random among the not-yet-
// asked free resources, as in §III-B.
func decisionPhase(s *State, pol Policy, opt Options, res *Result) error {
	free := s.FreeResources()
	// Shuffle so the current processor is uniform among free ones.
	opt.Rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	for _, r := range free {
		if len(s.Ready) == 0 {
			break
		}
		task := pol.Decide(s, r)
		res.Decisions++
		if opt.OnDecision != nil {
			opt.OnDecision(s, r, task)
		}
		if task == NoTask {
			res.IdleDecisions++
			continue
		}
		if err := startTask(s, task, r, opt.Rng); err != nil {
			return err
		}
		recordDecision(s, task, r, "")
	}
	return nil
}

// DataReadyTime returns the earliest time the inputs of a ready task are
// available on resource r: the max over predecessors of their completion time
// plus the transfer cost from their resource to r. Equals the predecessors'
// max end time when no communication model is set.
func (s *State) DataReadyTime(task, r int) float64 {
	var ready float64
	for _, p := range s.Graph.Pred[task] {
		at := s.EndTime[p] + s.Comm.Cost(s.AssignedTo[p], r)
		if at > ready {
			ready = at
		}
	}
	return ready
}

// forcedPhase re-asks free resources with MustAct set until one starts a
// task. It is only entered when nothing is running, no fault event is
// pending, and every resource idled; a policy that still declines every
// resource deadlocks the system.
func forcedPhase(s *State, pol Policy, opt Options, res *Result) error {
	s.MustAct = true
	defer func() { s.MustAct = false }()
	free := s.FreeResources()
	opt.Rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	for _, r := range free {
		if len(s.Ready) == 0 {
			break
		}
		task := pol.Decide(s, r)
		res.Decisions++
		if opt.OnDecision != nil {
			opt.OnDecision(s, r, task)
		}
		if task == NoTask {
			res.IdleDecisions++
			continue
		}
		if err := startTask(s, task, r, opt.Rng); err != nil {
			return err
		}
		recordDecision(s, task, r, "forced")
		return nil // time can advance again
	}
	return ErrDeadlock
}

// startTask begins executing task on resource r at s.Now, sampling its actual
// duration (scaled by r's current speed factor).
func startTask(s *State, task, r int, rng *rand.Rand) error {
	if task < 0 || task >= s.Graph.NumTasks() {
		return fmt.Errorf("sim: policy chose invalid task %d", task)
	}
	if s.Started[task] {
		return fmt.Errorf("sim: policy chose already-started task %d", task)
	}
	if s.PredLeft[task] != 0 {
		return fmt.Errorf("sim: policy chose non-ready task %d (%d predecessors pending)", task, s.PredLeft[task])
	}
	if !s.IsFree(r) {
		return fmt.Errorf("sim: resource %d is busy or unavailable", r)
	}
	dur := s.TaskTiming(task).SampleDuration(rng, s.Graph.Tasks[task].Kernel, s.Platform.Resources[r].Type, s.Sigma) * s.speed(r)
	// Communication extension: the computation stalls until every input tile
	// produced on another resource has arrived (transfers overlap but data
	// cannot be consumed before it lands).
	stall := s.DataReadyTime(task, r) - s.Now
	if stall < 0 {
		stall = 0
	}
	s.Started[task] = true
	s.StartTime[task] = s.Now
	s.EndTime[task] = s.Now + stall + dur
	s.AssignedTo[task] = r
	s.RunningTask[r] = task
	s.BusyUntil[r] = s.Now + dur
	s.Ready = removeSorted(s.Ready, task)
	s.Running = insertSorted(s.Running, task)
	if s.tracer != nil {
		traceStart(s, task, r)
	}
	return nil
}

// completeNext advances time to the earliest running-task completion and
// retires every task finishing at that instant.
func completeNext(s *State) {
	s.Now = earliestCompletion(s)
	// Retire all tasks completing now (ties happen with sigma = 0).
	for i := 0; i < len(s.Running); {
		t := s.Running[i]
		if s.EndTime[t] <= s.Now {
			s.Running = append(s.Running[:i], s.Running[i+1:]...)
			finishTask(s, t)
			continue
		}
		i++
	}
}

func finishTask(s *State, t int) {
	if s.tracer != nil {
		traceEnd(s, t)
	}
	s.Done[t] = true
	s.NumDone++
	r := s.AssignedTo[t]
	s.RunningTask[r] = NoTask
	for _, succ := range s.Graph.Succ[t] {
		s.PredLeft[succ]--
		if s.PredLeft[succ] == 0 {
			s.Ready = insertSorted(s.Ready, succ)
		}
	}
	if s.onDone != nil {
		s.onDone(t, s.Now)
	}
}

func insertSorted(xs []int, v int) []int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	xs = append(xs, 0)
	copy(xs[lo+1:], xs[lo:])
	xs[lo] = v
	return xs
}

func removeSorted(xs []int, v int) []int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(xs) || xs[lo] != v {
		panic(fmt.Sprintf("sim: %d not found in sorted slice", v))
	}
	return append(xs[:lo], xs[lo+1:]...)
}
