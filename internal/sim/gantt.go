package sim

import (
	"fmt"
	"io"
	"sort"

	"readys/internal/platform"
	"readys/internal/taskgraph"
)

// WriteGanttCSV writes the schedule as CSV rows
// resource,resource_type,task,kernel,start,end — one per placement, sorted by
// resource then start time — suitable for plotting a Gantt chart.
func WriteGanttCSV(w io.Writer, g *taskgraph.Graph, plat platform.Platform, res Result) error {
	trace := append([]Placement(nil), res.Trace...)
	sort.Slice(trace, func(a, b int) bool {
		if trace[a].Resource != trace[b].Resource {
			return trace[a].Resource < trace[b].Resource
		}
		return trace[a].Start < trace[b].Start
	})
	if _, err := fmt.Fprintln(w, "resource,resource_type,task,kernel,start,end"); err != nil {
		return err
	}
	for _, p := range trace {
		task := g.Tasks[p.Task]
		rt := plat.Resources[p.Resource].Type
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s,%.3f,%.3f\n",
			p.Resource, rt, task.Name, g.KernelNames[task.Kernel], p.Start, p.End); err != nil {
			return err
		}
	}
	return nil
}

// ResourceUtilisation returns, per resource, the fraction of the makespan
// spent computing (busy time / makespan). A perfectly packed schedule has
// utilisation 1 on every resource.
func ResourceUtilisation(plat platform.Platform, res Result) []float64 {
	busy := make([]float64, plat.Size())
	for _, p := range res.Trace {
		busy[p.Resource] += p.End - p.Start
	}
	if res.Makespan > 0 {
		for i := range busy {
			busy[i] /= res.Makespan
		}
	}
	return busy
}
