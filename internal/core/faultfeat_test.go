package core

import (
	"math/rand"
	"testing"

	"readys/internal/platform"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// faultedState runs a few decisions of a Cholesky episode and then fakes the
// fault context the new features read: a bumped FaultEpoch, one resource
// down, one degraded. The legacy feature set reads none of those fields, so a
// flag-off encoding must not see the difference.
func faultedState(t *testing.T) *sim.State {
	t.Helper()
	g := taskgraph.NewCholesky(4)
	plat := platform.New(2, 2)
	tt := platform.TimingFor(taskgraph.Cholesky)
	n := g.NumTasks()
	s := &sim.State{
		Graph:       g,
		Platform:    plat,
		Timing:      tt,
		Done:        make([]bool, n),
		Started:     make([]bool, n),
		StartTime:   make([]float64, n),
		EndTime:     make([]float64, n),
		AssignedTo:  make([]int, n),
		PredLeft:    make([]int, n),
		BusyUntil:   make([]float64, plat.Size()),
		RunningTask: []int{sim.NoTask, sim.NoTask, sim.NoTask, sim.NoTask},
		Up:          []bool{true, true, true, true},
		Dead:        make([]bool, plat.Size()),
		Speed:       []float64{1, 1, 1, 1},
	}
	for i := 0; i < n; i++ {
		s.AssignedTo[i] = -1
		s.PredLeft[i] = len(g.Pred[i])
		if s.PredLeft[i] == 0 {
			s.Ready = append(s.Ready, i)
		}
	}
	return s
}

func cloneFeatures(s *sim.State, fault bool) []float64 {
	F := taskgraph.DescendantFeatures(s.Graph)
	es := EncodeFault(s, 0, F, 2, false, fault)
	out := append([]float64(nil), es.X.Data...)
	out = append(out, es.Proc.Data...)
	return out
}

// TestFaultFeaturesBitInertWhenOff is the flag-off inertness contract: an
// encoding taken before and after the fault context changes (FaultEpoch
// bump, resource outage, degrade) must be bit-identical with FaultFeatures
// off, and must differ with it on.
func TestFaultFeaturesBitInertWhenOff(t *testing.T) {
	s := faultedState(t)
	before := cloneFeatures(s, false)
	beforeOn := cloneFeatures(s, true)

	// Mutate only state the fault block reads and no legacy feature can:
	// with nothing running, FaultEpoch is read by nothing legacy and Speed
	// only ever scales running-task estimates.
	s.FaultEpoch = 3
	s.Speed[0] = 2.5

	after := cloneFeatures(s, false)
	afterOn := cloneFeatures(s, true)

	if len(before) != len(after) {
		t.Fatalf("flag-off widths differ: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("flag-off encoding moved at %d: %v -> %v", i, before[i], after[i])
		}
	}
	same := len(beforeOn) == len(afterOn)
	if same {
		for i := range beforeOn {
			if beforeOn[i] != afterOn[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("flag-on encoding did not react to FaultEpoch/Speed mutation")
	}
}

// TestFaultFeatureWidths pins the width arithmetic and the parameter-layout
// consequences: flag-off agents keep the legacy constants (so old
// checkpoints load), flag-on agents widen input and proc layers by the
// fault block, and the two layouts refuse to cross-load.
func TestFaultFeatureWidths(t *testing.T) {
	if ProcFeatureWidth(false) != NumProcFeatures || NodeFeatureWidth(false) != NumNodeFeatures {
		t.Fatalf("flag-off widths drifted: proc %d node %d", ProcFeatureWidth(false), NodeFeatureWidth(false))
	}
	if ProcFeatureWidth(true) != NumProcFeatures+3 || NodeFeatureWidth(true) != NumNodeFeatures+3 {
		t.Fatalf("flag-on widths wrong: proc %d node %d", ProcFeatureWidth(true), NodeFeatureWidth(true))
	}

	cfg := Config{Window: 1, Layers: 1, Hidden: 8, Seed: 5}
	off := NewAgent(cfg)
	cfg.FaultFeatures = true
	on := NewAgent(cfg)

	path := t.TempDir() + "/on.ckpt"
	if err := on.SaveCheckpoint(path, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := off.LoadCheckpoint(path); err == nil {
		t.Fatal("flag-off agent loaded a flag-on checkpoint: widths not enforced")
	}

	// A flag-on agent must run end-to-end on a faulted state.
	s := faultedState(t)
	s.FaultEpoch = 2
	pol := &Policy{Agent: on, Rng: rand.New(rand.NewSource(1))}
	pol.Reset(s)
	if task := pol.Decide(s, 0); task != sim.NoTask && (task < 0 || task >= s.Graph.NumTasks()) {
		t.Fatalf("flag-on policy returned invalid task %d", task)
	}
}
