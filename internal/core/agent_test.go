package core

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"readys/internal/autograd"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

func encodeInitial(p Problem, resource, w int) *EncodedState {
	s := initialState(p)
	return Encode(s, resource, taskgraph.DescendantFeatures(p.Graph), w)
}

func TestAgentForwardDistribution(t *testing.T) {
	p := NewProblem(taskgraph.Cholesky, 4, 2, 2, 0)
	agent := NewAgent(Config{Window: 2, Layers: 2, Hidden: 16, Seed: 1})
	es := encodeInitial(p, 0, 2)
	fw := agent.Forward(es)

	if fw.NumActions != es.NumActions() {
		t.Fatalf("NumActions %d vs %d", fw.NumActions, es.NumActions())
	}
	var sum float64
	for i := 0; i < fw.NumActions; i++ {
		lp := fw.LogProbs.Value.Data[i]
		if lp > 1e-9 || math.IsNaN(lp) {
			t.Fatalf("log prob %v invalid", lp)
		}
		sum += math.Exp(lp)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if fw.IdleIndex != fw.NumActions-1 {
		t.Fatalf("idle index %d", fw.IdleIndex)
	}
	if v := autograd.Scalar(fw.Value); math.IsNaN(v) {
		t.Fatal("value is NaN")
	}
}

func TestAgentForwardIdleMasked(t *testing.T) {
	p := NewProblem(taskgraph.Cholesky, 4, 2, 2, 0)
	agent := NewAgent(Config{Window: 1, Layers: 1, Hidden: 16, Seed: 1})
	s := initialState(p)
	s.MustAct = true
	es := Encode(s, 0, taskgraph.DescendantFeatures(p.Graph), 1)
	fw := agent.Forward(es)
	if fw.IdleIndex != -1 {
		t.Fatal("idle index must be -1 when masked")
	}
	if fw.NumActions != len(es.ReadyRows) {
		t.Fatal("action space must exclude idle")
	}
}

func TestAgentForwardDeterministic(t *testing.T) {
	p := NewProblem(taskgraph.LU, 3, 1, 1, 0)
	agent := NewAgent(Config{Window: 2, Layers: 2, Hidden: 16, Seed: 7})
	es := encodeInitial(p, 0, 2)
	a := agent.Forward(es)
	b := agent.Forward(es)
	if !a.LogProbs.Value.Equal(b.LogProbs.Value) || autograd.Scalar(a.Value) != autograd.Scalar(b.Value) {
		t.Fatal("forward pass must be deterministic")
	}
}

func TestAgentSeedsDiffer(t *testing.T) {
	p := NewProblem(taskgraph.LU, 3, 1, 1, 0)
	es := encodeInitial(p, 0, 2)
	a := NewAgent(Config{Window: 2, Layers: 2, Hidden: 16, Seed: 1}).Forward(es)
	b := NewAgent(Config{Window: 2, Layers: 2, Hidden: 16, Seed: 2}).Forward(es)
	if a.LogProbs.Value.Equal(b.LogProbs.Value) {
		t.Fatal("different seeds should give different policies")
	}
}

func TestForwardSampleRespectsDistribution(t *testing.T) {
	p := NewProblem(taskgraph.Cholesky, 4, 2, 2, 0)
	agent := NewAgent(Config{Window: 2, Layers: 1, Hidden: 16, Seed: 3})
	es := encodeInitial(p, 0, 2)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 8)
	const n = 5000
	fw := agent.Forward(es)
	for i := 0; i < n; i++ {
		a := fw.Sample(rng)
		if a < 0 || a >= fw.NumActions {
			t.Fatalf("sample out of range: %d", a)
		}
		counts[a]++
	}
	for i := 0; i < fw.NumActions; i++ {
		want := math.Exp(fw.LogProbs.Value.Data[i])
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.03 {
			t.Fatalf("action %d frequency %v, prob %v", i, got, want)
		}
	}
}

func TestForwardArgmax(t *testing.T) {
	p := NewProblem(taskgraph.Cholesky, 4, 2, 2, 0)
	agent := NewAgent(Config{Window: 2, Layers: 1, Hidden: 16, Seed: 3})
	fw := agent.Forward(encodeInitial(p, 0, 2))
	best := fw.Argmax()
	for i := 0; i < fw.NumActions; i++ {
		if fw.LogProbs.Value.Data[i] > fw.LogProbs.Value.Data[best] {
			t.Fatal("argmax not maximal")
		}
	}
}

func TestForwardEntropyMatchesManual(t *testing.T) {
	p := NewProblem(taskgraph.Cholesky, 4, 2, 2, 0)
	agent := NewAgent(Config{Window: 2, Layers: 1, Hidden: 16, Seed: 4})
	fw := agent.Forward(encodeInitial(p, 0, 2))
	var want float64
	for i := 0; i < fw.NumActions; i++ {
		lp := fw.LogProbs.Value.Data[i]
		want -= math.Exp(lp) * lp
	}
	if got := autograd.Scalar(fw.Entropy()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("entropy %v, want %v", got, want)
	}
}

func TestPolicyProducesValidSchedules(t *testing.T) {
	for _, kind := range []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR} {
		p := NewProblem(kind, 4, 2, 2, 0.3)
		agent := NewAgent(Config{Window: 2, Layers: 2, Hidden: 16, Seed: 1})
		pol := NewTrainingPolicy(agent, rand.New(rand.NewSource(2)))
		res, err := p.Simulate(pol, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := sim.ValidateResult(p.Graph, p.Platform.Size(), res); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(pol.Steps) == 0 {
			t.Fatal("training policy must record steps")
		}
		if pol.InferenceCount != len(pol.Steps) {
			t.Fatalf("inference count %d vs %d steps", pol.InferenceCount, len(pol.Steps))
		}
	}
}

func TestPolicyGreedyDeterministicAtSigmaZero(t *testing.T) {
	p := NewProblem(taskgraph.Cholesky, 4, 2, 2, 0)
	agent := NewAgent(Config{Window: 2, Layers: 2, Hidden: 16, Seed: 5})
	a, err := p.Simulate(NewPolicy(agent), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Simulate(NewPolicy(agent), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatal("greedy policy should be deterministic for a fixed seed")
	}
}

func TestCheckpointTransferRoundTrip(t *testing.T) {
	cfg := Config{Window: 2, Layers: 2, Hidden: 16, Seed: 6}
	a := NewAgent(cfg)
	path := filepath.Join(t.TempDir(), "agent.json")
	if err := a.SaveCheckpoint(path, map[string]string{"kernel": "cholesky"}); err != nil {
		t.Fatal(err)
	}

	b := NewAgent(Config{Window: 2, Layers: 2, Hidden: 16, Seed: 999}) // different init
	meta, err := b.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta["kernel"] != "cholesky" || meta["hidden"] != "16" {
		t.Fatalf("meta = %v", meta)
	}
	// The two agents must now act identically — on a *different* problem
	// size too (transfer): T=6 instead of 4.
	p6 := NewProblem(taskgraph.Cholesky, 6, 2, 2, 0)
	ra, err := p6.Simulate(NewPolicy(a), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := p6.Simulate(NewPolicy(b), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if ra.Makespan != rb.Makespan {
		t.Fatalf("restored agent behaves differently: %v vs %v", ra.Makespan, rb.Makespan)
	}
}

func TestCheckpointArchitectureMismatch(t *testing.T) {
	a := NewAgent(Config{Window: 2, Layers: 2, Hidden: 16, Seed: 1})
	path := filepath.Join(t.TempDir(), "agent.json")
	if err := a.SaveCheckpoint(path, nil); err != nil {
		t.Fatal(err)
	}
	b := NewAgent(Config{Window: 2, Layers: 2, Hidden: 32, Seed: 1})
	if _, err := b.LoadCheckpoint(path); err == nil {
		t.Fatal("hidden-size mismatch must fail to load")
	}
	c := NewAgent(Config{Window: 2, Layers: 3, Hidden: 16, Seed: 1})
	if _, err := c.LoadCheckpoint(path); err == nil {
		t.Fatal("layer-count mismatch must fail to load")
	}
}

func TestAgentParamCount(t *testing.T) {
	cfg := Config{Window: 2, Layers: 2, Hidden: 64, Seed: 1}
	a := NewAgent(cfg)
	h := cfg.Hidden
	want := (NumNodeFeatures*h + h) + // input
		2*(h*h+h) + // 2 GCN layers
		(h + 1) + // actor
		(NumProcFeatures*h + h) + // proc
		(2*h + 1) + // idle
		(h + 1) // critic
	if got := a.Params().NumValues(); got != want {
		t.Fatalf("param count %d, want %d", got, want)
	}
}

func TestAgentWindowZeroLayersZero(t *testing.T) {
	// Degenerate config (w=0, g=0): the net sees only ready/running tasks
	// through the input projection; must still produce valid distributions.
	p := NewProblem(taskgraph.Cholesky, 4, 2, 2, 0)
	agent := NewAgent(Config{Window: 0, Layers: 0, Hidden: 8, Seed: 1})
	res, err := p.Simulate(NewPolicy(agent), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.ValidateResult(p.Graph, p.Platform.Size(), res); err != nil {
		t.Fatal(err)
	}
}

func TestNewAgentRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config should panic")
		}
	}()
	NewAgent(Config{Window: 1, Layers: 1, Hidden: 0})
}
