package core

import (
	"sync"
	"time"

	"readys/internal/nn"
	"readys/internal/tensor"
)

// Batcher coalesces concurrent serving-path forwards on one agent into a
// single row-batched pass through the serving kernels. Concurrent
// /v1/schedule rollouts (or bench clients) submit their encoded states via
// Forward; the batcher stacks up to MaxWidth states and runs one batched
// forward for all of them.
//
// Why this is profitable even on one core: a batch of B states multiplies the
// weight matrices once over Σnᵢ stacked rows instead of B times over nᵢ rows
// each, so every weight matrix is streamed through the cache once per batch
// instead of once per request, and the per-forward call/scratch overhead is
// paid once. The GCN propagation stays per-state (a block-diagonal SpMM has no
// cross-state work to amortise) but writes into segments of the stacked
// activations so the dense products around it batch.
//
// Flush policy, in order of precedence:
//
//  1. width: the pending batch reached MaxWidth;
//  2. co-scheduling: every attached rollout (Attach/Detach) has a state
//     pending, so nobody else can arrive until someone is answered — waiting
//     longer is pure latency;
//  3. dwell: a timer bounds the wait of the oldest pending state (~100µs), so
//     a lone submitter with stale attach accounting is never stuck.
//
// At one concurrent client rule 2 fires on every submit, so batching adds no
// latency when there is nothing to coalesce.
//
// Per-request results are computed by the same kernels in the same
// per-row operation order as the B=1 serving engine, so at PrecisionFloat64
// they are bit-identical to serveEngine.forward (test-enforced); the reduced
// tiers are likewise bit-identical to their own B=1 paths.
type Batcher struct {
	cfg BatcherConfig
	en  *batchEngine

	mu       sync.Mutex
	pending  []*batchReq
	spare    []*batchReq // recycled backing array for the next pending batch
	gen      uint64      // batch generation; guards stale dwell timers
	timer    *time.Timer // armed when the current batch is non-empty
	attached int

	// engMu serialises batched forwards (the engine owns one scratch set);
	// the next batch accumulates under mu while the previous one computes.
	engMu sync.Mutex
}

// BatcherConfig tunes a Batcher. The zero value takes defaults.
type BatcherConfig struct {
	// MaxWidth is the batch width that forces an immediate flush. Default 8.
	MaxWidth int
	// Dwell bounds how long the oldest pending state may wait for company
	// before the batch is flushed anyway. Default 100µs.
	Dwell time.Duration
	// OnFlush, when set, observes the width of every flushed batch.
	OnFlush func(width int)
	// OnWait, when set, observes each request's queue dwell (submit → flush).
	OnWait func(d time.Duration)
}

// DefaultBatchWidth and DefaultBatchDwell are the BatcherConfig defaults.
const (
	DefaultBatchWidth = 8
	DefaultBatchDwell = 100 * time.Microsecond
)

// batchReq is one state waiting for (or being answered by) a batched forward.
// Requests are pooled; done is a reusable 1-buffered channel that receives
// exactly one token per flush.
type batchReq struct {
	es       *EncodedState
	enqueued time.Time
	done     chan struct{}

	dst      []float64 // caller-provided result buffer, grown if too small
	logProbs []float64 // result (dst or its replacement), written before done
	idleIdx  int
}

// reqPool recycles batchReqs (and their done channels) across submissions so
// the steady-state hot path allocates nothing per decision.
var reqPool = sync.Pool{New: func() any { return &batchReq{done: make(chan struct{}, 1)} }}

// NewBatcher builds a batcher over the agent's parameters at the given
// precision. Like the serving engine it panics on the DenseProp ablation,
// which keeps the tape forward. The agent's parameters must stay immutable
// while the batcher is in use (serving masters are).
func NewBatcher(agent *Agent, prec Precision, cfg BatcherConfig) *Batcher {
	if agent.Cfg.DenseProp {
		panic("core: batched serving does not support DenseProp")
	}
	if cfg.MaxWidth < 1 {
		cfg.MaxWidth = DefaultBatchWidth
	}
	if cfg.Dwell <= 0 {
		cfg.Dwell = DefaultBatchDwell
	}
	return &Batcher{cfg: cfg, en: newBatchEngine(agent, prec)}
}

// Precision returns the numeric tier the batcher computes at.
func (b *Batcher) Precision() Precision { return b.en.prec }

// Attach declares one rollout that will submit states through Forward. The
// batcher flushes as soon as every attached rollout has a state pending
// (nobody left to wait for), which keeps latency flat at low concurrency.
func (b *Batcher) Attach() {
	b.mu.Lock()
	b.attached++
	b.mu.Unlock()
}

// Detach undoes Attach when the rollout finishes. If the remaining attached
// rollouts all have states pending, the batch is flushed now rather than on
// the dwell timer.
func (b *Batcher) Detach() {
	b.mu.Lock()
	b.attached--
	if len(b.pending) > 0 && len(b.pending) >= b.attached {
		batch := b.takeLocked()
		b.mu.Unlock()
		b.run(batch)
		return
	}
	b.mu.Unlock()
}

// Forward submits one encoded state and blocks until a batched forward has
// answered it. dst, when non-nil, is used as the result buffer if it has the
// capacity (callers that loop — one slot per decision — hand the previous
// result back in and the hot path stays allocation-free); the returned slice
// is owned by the caller either way. Safe for concurrent use from any number
// of goroutines.
func (b *Batcher) Forward(es *EncodedState, dst []float64) (logProbs []float64, idleIdx int) {
	req := reqPool.Get().(*batchReq)
	req.es, req.dst = es, dst
	if b.cfg.OnWait != nil {
		req.enqueued = time.Now()
	}
	b.mu.Lock()
	b.pending = append(b.pending, req)
	if n := len(b.pending); n >= b.cfg.MaxWidth || (b.attached > 0 && n >= b.attached) {
		batch := b.takeLocked()
		b.mu.Unlock()
		// The last submitter computes the batch itself: no handoff to a
		// flusher goroutine, and its own result is ready when run returns.
		b.run(batch)
	} else {
		if len(b.pending) == 1 {
			// First state of a new batch: bound its wait.
			gen := b.gen
			b.timer = time.AfterFunc(b.cfg.Dwell, func() { b.flushGen(gen) })
		}
		b.mu.Unlock()
	}
	// run sends one token to every request in the batch, the self-flusher's
	// included — the receive below drains it so the pooled channel is empty
	// for its next owner.
	<-req.done
	logProbs, idleIdx = req.logProbs, req.idleIdx
	req.es, req.dst, req.logProbs = nil, nil, nil
	reqPool.Put(req)
	return logProbs, idleIdx
}

// takeLocked claims the pending batch; callers hold b.mu. The next batch
// accumulates into the spare backing array (returned by the previous run), so
// steady state reuses two arrays instead of growing a fresh one per batch.
func (b *Batcher) takeLocked() []*batchReq {
	batch := b.pending
	b.pending = b.spare
	b.spare = nil
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// flushGen is the dwell-timer path: flush the batch the timer was armed for,
// unless it was already flushed (generation moved on).
func (b *Batcher) flushGen(gen uint64) {
	b.mu.Lock()
	if b.gen != gen || len(b.pending) == 0 {
		b.mu.Unlock()
		return
	}
	batch := b.takeLocked()
	b.mu.Unlock()
	b.run(batch)
}

// run executes one batched forward and wakes every waiter. Waiters are woken
// even if the forward panics (the panic still propagates to the flusher), so
// a malformed state can never strand the other requests in its batch.
func (b *Batcher) run(batch []*batchReq) {
	defer func() {
		for i, r := range batch {
			batch[i] = nil       // drop the ref before the pooled req is reused
			r.done <- struct{}{} // 1-buffered and drained, never blocks
		}
		b.mu.Lock()
		if b.spare == nil {
			b.spare = batch[:0]
		}
		b.mu.Unlock()
	}()
	b.engMu.Lock()
	defer b.engMu.Unlock()
	b.en.forwardBatch(batch)
	if b.cfg.OnFlush != nil {
		b.cfg.OnFlush(len(batch))
	}
	if b.cfg.OnWait != nil {
		now := time.Now()
		for _, r := range batch {
			b.cfg.OnWait(now.Sub(r.enqueued))
		}
	}
}

// batchEngine evaluates B encoded states in one pass over the serving
// kernels. Every kernel on the path (MatMulInto, SpMMInto, AddRowVectorInto,
// GatherRowsInto, MaxRowsInto and their reduced-tier counterparts) computes
// each output row independently with a fixed accumulation order, so stacking
// states as row blocks changes which rows exist, not what any row contains —
// the foundation of the bit-identity guarantee (see TestBatchedBitIdentical).
type batchEngine struct {
	agent *Agent
	prec  Precision

	// Converted weights for the reduced tiers, in serveEngine's layer order.
	layers []*nn.ServingLayer

	// Block-diagonal stacked CSR of the batch's Norm matrices, rebuilt per
	// flush and reused across every GCN layer (reduced tiers only — the
	// float64 path propagates per segment on views instead, which is the same
	// block-diagonal product without materialising the stacked CSR).
	normRowPtr []int
	normCol    []int
	normVal    []float64
	norm       tensor.Sparse

	// float64 stacked scratch.
	h, tmp, ready, score       tensor.Matrix
	proc, procEmb, cat, idleSc tensor.Matrix
	argBuf                     []int
	readyRows                  []int
	idleStates                 []int
	offsets                    []int

	// segA/segB are reusable header structs for segment views of the stacked
	// scratch. The kernels take *Matrix, so a loop-local view header would
	// escape to the heap on every call — several allocations per decision.
	segA, segB tensor.Matrix

	// float32 stacked scratch.
	x32, h32, tmp32, ready32, score32 tensor.Matrix32
	p32, procEmb32, cat32, idleSc32   tensor.Matrix32
	val32                             []float32
}

func newBatchEngine(a *Agent, prec Precision) *batchEngine {
	en := &batchEngine{agent: a, prec: prec}
	if prec != PrecisionFloat64 {
		en.layers = append(en.layers, nn.NewServingLayer(a.input.W, a.input.B))
		for _, g := range a.gcn {
			en.layers = append(en.layers, nn.NewServingLayer(g.W, g.B))
		}
		en.layers = append(en.layers,
			nn.NewServingLayer(a.actor.W, a.actor.B),
			nn.NewServingLayer(a.proc.W, a.proc.B),
			nn.NewServingLayer(a.idle.W, a.idle.B))
	}
	return en
}

// forwardBatch answers every request in the batch: stacked forward, then a
// per-state log-softmax into each request's own result slice.
func (en *batchEngine) forwardBatch(batch []*batchReq) {
	offsets, total := en.stackShapes(batch)
	if en.prec == PrecisionFloat64 {
		en.forwardBatchF64(batch, offsets, total)
	} else {
		en.forwardBatchReduced(batch, offsets, total)
	}
}

// stackShapes computes each state's node-row offset in the stacked matrices
// and validates the batch.
func (en *batchEngine) stackShapes(batch []*batchReq) (offsets []int, total int) {
	if cap(en.offsets) < len(batch) {
		en.offsets = make([]int, len(batch))
	}
	offsets = en.offsets[:len(batch)]
	for i, r := range batch {
		if len(r.es.ReadyRows) == 0 {
			panic("core: batched forward with no ready task")
		}
		offsets[i] = total
		total += len(r.es.Nodes)
	}
	return offsets, total
}

// stackNorm builds the block-diagonal CSR of the batch's Norm matrices:
// segment i's rows keep their nonzero order with columns shifted by its node
// offset, so row r of the product SpMM(stacked, stacked-h) accumulates exactly
// the terms row r-offset of SpMM(normᵢ, hᵢ) does, in the same order.
func (en *batchEngine) stackNorm(batch []*batchReq, offsets []int, total int) {
	nnz := 0
	for _, r := range batch {
		nnz += r.es.Norm.NNZ()
	}
	if cap(en.normRowPtr) < total+1 {
		en.normRowPtr = make([]int, total+1)
	}
	en.normRowPtr = en.normRowPtr[:total+1]
	if cap(en.normCol) < nnz {
		en.normCol = make([]int, nnz)
		en.normVal = make([]float64, nnz)
	}
	en.normCol, en.normVal = en.normCol[:nnz], en.normVal[:nnz]

	pos := 0
	en.normRowPtr[0] = 0
	row := 0
	for i, r := range batch {
		s := r.es.Norm
		off := offsets[i]
		for ri := 0; ri < s.Rows; ri++ {
			for k := s.RowPtr[ri]; k < s.RowPtr[ri+1]; k++ {
				en.normCol[pos] = s.Col[k] + off
				en.normVal[pos] = s.Val[k]
				pos++
			}
			row++
			en.normRowPtr[row] = pos
		}
	}
	en.norm = tensor.Sparse{Rows: total, Cols: total, RowPtr: en.normRowPtr, Col: en.normCol, Val: en.normVal}
}

// setView points the reusable header v at state i's row block of a stacked
// matrix, sharing the stacked storage. The serving kernels compute each output
// row independently by relative index, so running them on a view is
// bit-identical to running them on a standalone matrix with the same rows.
func setView(v *tensor.Matrix, data []float64, off, rows, cols int) {
	v.Rows, v.Cols = rows, cols
	v.Data = data[off*cols : (off+rows)*cols]
}

// forwardBatchF64 is the float64 stacked forward: serveEngine.forwardF64's
// exact operation sequence over row-stacked inputs. The dense layer products
// (input, GCN weights, actor, proc, idle) run once over the stacked rows —
// that is where batching pays, the weight panel streams through the cache once
// per batch — while the GCN propagation runs per segment on views, since a
// block-diagonal SpMM does no cross-segment work to amortise.
func (en *batchEngine) forwardBatchF64(batch []*batchReq, offsets []int, total int) {
	a := en.agent
	hid := a.Cfg.Hidden

	// h = ReLU(X*W_in + b_in): input product straight out of each state's own
	// X into its segment of h (no stacked X copy), bias + ReLU once over the
	// stack.
	resizeMatrix(&en.h, total, hid)
	for i, r := range batch {
		setView(&en.segA, en.h.Data, offsets[i], len(r.es.Nodes), hid)
		tensor.MatMulInto(r.es.X, a.input.W.Value, &en.segA)
	}
	tensor.AddRowVectorInto(&en.h, a.input.B.Value, &en.h)
	reluInPlace(en.h.Data)

	// GCN stack: h = ReLU(SpMM(norm, h)*W + b), propagation per segment.
	resizeMatrix(&en.tmp, total, hid)
	for _, g := range a.gcn {
		for i, r := range batch {
			n := len(r.es.Nodes)
			setView(&en.segA, en.h.Data, offsets[i], n, hid)
			setView(&en.segB, en.tmp.Data, offsets[i], n, hid)
			tensor.SpMMInto(r.es.Norm, &en.segA, &en.segB)
		}
		tensor.MatMulInto(&en.tmp, g.W.Value, &en.h)
		tensor.AddRowVectorInto(&en.h, g.B.Value, &en.h)
		reluInPlace(en.h.Data)
	}

	// Actor scores: gather every state's ready rows (global offsets) into one
	// stacked matrix and score them in a single matmul.
	nReady := 0
	for _, r := range batch {
		nReady += len(r.es.ReadyRows)
	}
	if cap(en.readyRows) < nReady {
		en.readyRows = make([]int, nReady)
	}
	en.readyRows = en.readyRows[:nReady]
	pos := 0
	for i, r := range batch {
		for _, row := range r.es.ReadyRows {
			en.readyRows[pos] = row + offsets[i]
			pos++
		}
	}
	resizeMatrix(&en.ready, nReady, hid)
	tensor.GatherRowsInto(&en.h, en.readyRows, &en.ready)
	resizeMatrix(&en.score, nReady, 1)
	tensor.MatMulInto(&en.ready, a.actor.W.Value, &en.score)
	tensor.AddRowVectorInto(&en.score, a.actor.B.Value, &en.score)

	// ∅ scores for the idle-allowed states: stacked proc embedding, per-state
	// maxpool over the state's own h segment, one stacked idle matmul.
	idleStates := en.idleStates[:0]
	for i, r := range batch {
		if r.es.AllowIdle {
			idleStates = append(idleStates, i)
		}
	}
	en.idleStates = idleStates
	if len(idleStates) > 0 {
		procW := batch[idleStates[0]].es.Proc.Cols
		resizeMatrix(&en.proc, len(idleStates), procW)
		for j, i := range idleStates {
			copy(en.proc.Row(j), batch[i].es.Proc.Data)
		}
		resizeMatrix(&en.procEmb, len(idleStates), hid)
		tensor.MatMulInto(&en.proc, a.proc.W.Value, &en.procEmb)
		tensor.AddRowVectorInto(&en.procEmb, a.proc.B.Value, &en.procEmb)
		reluInPlace(en.procEmb.Data)
		resizeMatrix(&en.cat, len(idleStates), 2*hid)
		if cap(en.argBuf) < hid {
			en.argBuf = make([]int, hid)
		}
		for j, i := range idleStates {
			catRow := en.cat.Row(j)
			copy(catRow[:hid], en.procEmb.Row(j))
			setView(&en.segA, en.h.Data, offsets[i], len(batch[i].es.Nodes), hid)
			en.segB.Rows, en.segB.Cols, en.segB.Data = 1, hid, catRow[hid:]
			tensor.MaxRowsInto(&en.segA, &en.segB, en.argBuf[:hid])
		}
		resizeMatrix(&en.idleSc, len(idleStates), 1)
		tensor.MatMulInto(&en.cat, a.idle.W.Value, &en.idleSc)
	}

	// Per-state results: slice this state's scores out of the stacked score
	// column, append its ∅ score, log-softmax into the request's own buffer.
	scorePos, idlePos := 0, 0
	for _, r := range batch {
		k := len(r.es.ReadyRows)
		nActions := k
		if r.es.AllowIdle {
			nActions++
		}
		dst := r.dst
		if cap(dst) < nActions {
			dst = make([]float64, nActions)
		}
		dst = dst[:nActions]
		copy(dst, en.score.Data[scorePos:scorePos+k])
		scorePos += k
		r.idleIdx = -1
		if r.es.AllowIdle {
			dst[k] = en.idleSc.Data[idlePos] + a.idle.B.Value.Data[0]
			idlePos++
			r.idleIdx = k
		}
		logSoftmaxInto(dst, dst)
		r.logProbs = dst
	}
}

// forwardBatchReduced is the float32 / int8-weight stacked forward, mirroring
// serveEngine.forwardReduced row for row.
func (en *batchEngine) forwardBatchReduced(batch []*batchReq, offsets []int, total int) {
	a := en.agent
	hid := a.Cfg.Hidden
	input, gcns := en.layers[0], en.layers[1:1+len(a.gcn)]
	actor, proc, idle := en.layers[1+len(a.gcn)], en.layers[2+len(a.gcn)], en.layers[3+len(a.gcn)]
	en.stackNorm(batch, offsets, total)

	feats := NodeFeatureWidth(a.Cfg.FaultFeatures)
	en.x32.Reset(total, feats)
	nnz := 0
	for _, r := range batch {
		nnz += r.es.Norm.NNZ()
	}
	if cap(en.val32) < nnz {
		en.val32 = make([]float32, nnz)
	}
	en.val32 = en.val32[:nnz]
	pos := 0
	for i, r := range batch {
		base := offsets[i] * feats
		for j, v := range r.es.X.Data {
			en.x32.Data[base+j] = float32(v)
		}
		for _, v := range r.es.Norm.Val {
			en.val32[pos] = float32(v)
			pos++
		}
	}

	en.matmulReduced(&en.x32, input, &en.h32)
	addRowReLU32(&en.h32, input.B32.Data)
	for _, g := range gcns {
		tensor.SpMM32Into(&en.norm, en.val32, &en.h32, &en.tmp32)
		en.matmulReduced(&en.tmp32, g, &en.h32)
		addRowReLU32(&en.h32, g.B32.Data)
	}

	nReady := 0
	for _, r := range batch {
		nReady += len(r.es.ReadyRows)
	}
	en.ready32.Reset(nReady, hid)
	pos = 0
	for i, r := range batch {
		for _, row := range r.es.ReadyRows {
			copy(en.ready32.Row(pos), en.h32.Row(row+offsets[i]))
			pos++
		}
	}
	en.matmulReduced(&en.ready32, actor, &en.score32)

	idleStates := en.idleStates[:0]
	for i, r := range batch {
		if r.es.AllowIdle {
			idleStates = append(idleStates, i)
		}
	}
	en.idleStates = idleStates
	if len(idleStates) > 0 {
		procW := batch[idleStates[0]].es.Proc.Cols
		en.p32.Reset(len(idleStates), procW)
		for j, i := range idleStates {
			for k, v := range batch[i].es.Proc.Data {
				en.p32.Row(j)[k] = float32(v)
			}
		}
		en.matmulReduced(&en.p32, proc, &en.procEmb32)
		addRowReLU32(&en.procEmb32, proc.B32.Data)
		en.cat32.Reset(len(idleStates), 2*hid)
		for j, i := range idleStates {
			catRow := en.cat32.Row(j)
			copy(catRow[:hid], en.procEmb32.Row(j))
			// Column-wise max pool over the state's own h segment (first row,
			// then strict improvements) — serveEngine.forwardReduced's loop.
			off, n := offsets[i], len(batch[i].es.Nodes)
			pooled := catRow[hid:]
			copy(pooled, en.h32.Row(off))
			for ri := off + 1; ri < off+n; ri++ {
				row := en.h32.Row(ri)
				for c, v := range row {
					if v > pooled[c] {
						pooled[c] = v
					}
				}
			}
		}
		en.matmulReduced(&en.cat32, idle, &en.idleSc32)
	}

	scorePos, idlePos := 0, 0
	for _, r := range batch {
		k := len(r.es.ReadyRows)
		nActions := k
		if r.es.AllowIdle {
			nActions++
		}
		dst := r.dst
		if cap(dst) < nActions {
			dst = make([]float64, nActions)
		}
		dst = dst[:nActions]
		for j := 0; j < k; j++ {
			dst[j] = float64(en.score32.Data[scorePos+j] + actor.B32.Data[0])
		}
		scorePos += k
		r.idleIdx = -1
		if r.es.AllowIdle {
			dst[k] = float64(en.idleSc32.Data[idlePos] + idle.B32.Data[0])
			idlePos++
			r.idleIdx = k
		}
		logSoftmaxInto(dst, dst)
		r.logProbs = dst
	}
}

// matmulReduced multiplies by the layer's weight at the engine's tier; the
// destination must not alias a.
func (en *batchEngine) matmulReduced(a *tensor.Matrix32, l *nn.ServingLayer, out *tensor.Matrix32) {
	if en.prec == PrecisionInt8 {
		tensor.MatMulQ8Into(a, l.W8, out)
		return
	}
	tensor.MatMul32SkipInto(a, &l.W32, out)
}
