package core

import (
	"math"
	"math/rand"
	"testing"

	"readys/internal/taskgraph"
)

func TestSampleTemperatureZeroIsArgmax(t *testing.T) {
	p := NewProblem(taskgraph.Cholesky, 4, 2, 2, 0)
	agent := NewAgent(Config{Window: 2, Layers: 1, Hidden: 16, Seed: 3})
	fw := agent.Forward(encodeInitial(p, 0, 2))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		if fw.SampleTemperature(rng, 0) != fw.Argmax() {
			t.Fatal("τ=0 must equal argmax")
		}
	}
}

func TestSampleTemperatureLowConcentratesOnArgmax(t *testing.T) {
	p := NewProblem(taskgraph.Cholesky, 4, 2, 2, 0)
	agent := NewAgent(Config{Window: 2, Layers: 1, Hidden: 16, Seed: 4})
	fw := agent.Forward(encodeInitial(p, 0, 2))
	rng := rand.New(rand.NewSource(2))
	best := fw.Argmax()
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if fw.SampleTemperature(rng, 0.05) == best {
			hits++
		}
	}
	if float64(hits)/n < 0.95 {
		t.Fatalf("τ=0.05 picked argmax only %d/%d times", hits, n)
	}
}

func TestSampleTemperatureOneMatchesPolicy(t *testing.T) {
	// τ=1 must reproduce the raw distribution (statistically).
	p := NewProblem(taskgraph.Cholesky, 4, 2, 2, 0)
	agent := NewAgent(Config{Window: 2, Layers: 1, Hidden: 16, Seed: 5})
	fw := agent.Forward(encodeInitial(p, 0, 2))
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, fw.NumActions)
	const n = 8000
	for i := 0; i < n; i++ {
		counts[fw.SampleTemperature(rng, 1)]++
	}
	for i := 0; i < fw.NumActions; i++ {
		want := math.Exp(fw.LogProbs.Value.Data[i])
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.03 {
			t.Fatalf("action %d: frequency %.3f vs probability %.3f", i, got, want)
		}
	}
}

func TestSampleTemperatureAlwaysInRange(t *testing.T) {
	p := NewProblem(taskgraph.LU, 3, 1, 1, 0)
	agent := NewAgent(Config{Window: 1, Layers: 1, Hidden: 8, Seed: 6})
	fw := agent.Forward(encodeInitial(p, 0, 1))
	rng := rand.New(rand.NewSource(4))
	for _, tau := range []float64{0.01, 0.25, 1, 4} {
		for i := 0; i < 200; i++ {
			a := fw.SampleTemperature(rng, tau)
			if a < 0 || a >= fw.NumActions {
				t.Fatalf("τ=%v sampled out-of-range action %d", tau, a)
			}
		}
	}
}

func TestPolicyTemperatureModeValidSchedules(t *testing.T) {
	p := NewProblem(taskgraph.QR, 4, 2, 2, 0.2)
	agent := NewAgent(Config{Window: 2, Layers: 2, Hidden: 16, Seed: 7})
	pol := &Policy{Agent: agent, Temperature: 0.25, Rng: rand.New(rand.NewSource(1))}
	res, err := p.Simulate(pol, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != p.Graph.NumTasks() {
		t.Fatal("incomplete schedule")
	}
}
