package core

import (
	"math/rand"
	"strconv"
	"time"

	"readys/internal/autograd"
	"readys/internal/nn"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// Step records one decision of a training episode: the encoded state, the
// forward pass (whose tape the loss will be built on) and the chosen action.
// A2C builds its loss directly on Forward's tape; PPO re-evaluates State
// under updated parameters.
type Step struct {
	State   *EncodedState
	Forward *Forward
	Action  int
}

// Policy adapts an Agent to the simulator's Policy interface.
//
// In greedy mode it picks the argmax action; otherwise it samples from the
// policy distribution using Rng (training behaviour). When Record is true,
// every decision's Forward pass and action are appended to Steps so the A2C
// trainer can compute losses after the episode terminates.
type Policy struct {
	Agent *Agent
	// Rng drives action sampling; required unless Greedy.
	Rng *rand.Rand
	// Greedy selects argmax actions (evaluation mode).
	Greedy bool
	// Temperature, when positive and Greedy is false, sharpens the sampling
	// distribution (pᵢ ∝ exp(log πᵢ/τ)). Ignored in Greedy mode.
	Temperature float64
	// Record keeps per-decision tapes for training.
	Record bool
	// DisableIdle masks the ∅ action at every decision (ablation: READYS
	// reduced to a pure list scheduler that must fill the asking resource).
	DisableIdle bool
	// Steps holds the recorded decisions of the current episode.
	Steps []Step

	// InferenceTime accumulates wall-clock time spent in Forward (used for
	// the Figure 7 experiment) and InferenceCount the number of decisions.
	InferenceTime  time.Duration
	InferenceCount int

	feats [][taskgraph.NumKernels]float64
}

// NewPolicy returns an evaluation-mode (greedy) policy for the agent.
func NewPolicy(agent *Agent) *Policy {
	return &Policy{Agent: agent, Greedy: true}
}

// NewTrainingPolicy returns a sampling, recording policy for the agent.
func NewTrainingPolicy(agent *Agent, rng *rand.Rand) *Policy {
	return &Policy{Agent: agent, Rng: rng, Record: true}
}

// Reset implements sim.Policy: it precomputes the DAG's descendant features
// and clears the episode recording.
func (p *Policy) Reset(s *sim.State) {
	p.feats = taskgraph.DescendantFeatures(s.Graph)
	p.Steps = p.Steps[:0]
}

// Decide implements sim.Policy.
func (p *Policy) Decide(s *sim.State, r int) int {
	if len(p.feats) != s.Graph.NumTasks() {
		// The graph grew since Reset (streaming job arrival): recompute the
		// descendant features over the union DAG. Single-DAG episodes never
		// take this branch after Reset.
		p.feats = taskgraph.DescendantFeatures(s.Graph)
	}
	es := EncodeFault(s, r, p.feats, p.Agent.Cfg.Window, p.Agent.Cfg.Directed, p.Agent.Cfg.FaultFeatures)
	if p.DisableIdle {
		es.AllowIdle = false
	}
	start := time.Now()
	fw := p.Agent.Forward(es)
	p.InferenceTime += time.Since(start)
	p.InferenceCount++

	var action int
	switch {
	case p.Greedy:
		action = fw.Argmax()
	case p.Temperature > 0:
		action = fw.SampleTemperature(p.Rng, p.Temperature)
	default:
		action = fw.Sample(p.Rng)
	}
	idleIdx := fw.IdleIndex
	if p.Record {
		p.Steps = append(p.Steps, Step{State: es, Forward: fw, Action: action})
	} else {
		// Nothing will revisit this decision: hand the tape's scratch
		// buffers straight back to the pool (serving and greedy evaluation
		// run allocation-free at steady state).
		fw.Binding.Release()
	}
	if action == idleIdx && idleIdx >= 0 {
		return sim.NoTask
	}
	return es.ReadyTasks[action]
}

// SaveCheckpoint writes the agent's parameters and architecture metadata.
func (a *Agent) SaveCheckpoint(path string, meta map[string]string) error {
	m := map[string]string{
		"window": strconv.Itoa(a.Cfg.Window),
		"layers": strconv.Itoa(a.Cfg.Layers),
		"hidden": strconv.Itoa(a.Cfg.Hidden),
	}
	if a.Cfg.FaultFeatures {
		// Written only when set, so flag-off checkpoints stay byte-identical
		// to ones produced before the flag existed.
		m["fault_features"] = "1"
	}
	for k, v := range meta {
		m[k] = v
	}
	return nn.SaveCheckpointFile(path, a.params, m)
}

// LoadCheckpoint restores the agent's parameters from a checkpoint produced
// by SaveCheckpoint; the architecture (window/layers/hidden) must match.
func (a *Agent) LoadCheckpoint(path string) (map[string]string, error) {
	return nn.LoadCheckpointFile(path, a.params)
}

// MeanEntropy returns the average policy entropy over the recorded steps —
// a diagnostic of exploration during training.
func (p *Policy) MeanEntropy() float64 {
	if len(p.Steps) == 0 {
		return 0
	}
	var s float64
	for _, st := range p.Steps {
		s += autograd.Scalar(st.Forward.Entropy())
	}
	return s / float64(len(p.Steps))
}
