package core

import (
	"math"
	"math/rand"
	"strconv"
	"time"

	"readys/internal/autograd"
	"readys/internal/nn"
	"readys/internal/platform"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// Step records one decision of a training episode: the encoded state, the
// forward pass (whose tape the loss will be built on) and the chosen action.
// A2C builds its loss directly on Forward's tape; PPO re-evaluates State
// under updated parameters.
type Step struct {
	State   *EncodedState
	Forward *Forward
	Action  int
}

// Policy adapts an Agent to the simulator's Policy interface.
//
// In greedy mode it picks the argmax action; otherwise it samples from the
// policy distribution using Rng (training behaviour). When Record is true,
// every decision's Forward pass and action are appended to Steps so the A2C
// trainer can compute losses after the episode terminates.
type Policy struct {
	Agent *Agent
	// Rng drives action sampling; required unless Greedy.
	Rng *rand.Rand
	// Greedy selects argmax actions (evaluation mode).
	Greedy bool
	// Temperature, when positive and Greedy is false, sharpens the sampling
	// distribution (pᵢ ∝ exp(log πᵢ/τ)). Ignored in Greedy mode.
	Temperature float64
	// Record keeps per-decision tapes for training.
	Record bool
	// DisableIdle masks the ∅ action at every decision (ablation: READYS
	// reduced to a pure list scheduler that must fill the asking resource).
	DisableIdle bool
	// Steps holds the recorded decisions of the current episode.
	Steps []Step

	// InferenceTime accumulates wall-clock time spent in Forward (used for
	// the Figure 7 experiment) and InferenceCount the number of decisions.
	InferenceTime  time.Duration
	InferenceCount int

	feats [][taskgraph.NumKernels]float64

	// inc maintains the decision state incrementally on the non-recording
	// path; nil falls back to EncodeFault on every decision. engine, when set,
	// replaces the tape forward with the serving engine at prec.
	inc    *incrementalEncoder
	engine *serveEngine
	batch  *Batcher
	lpBuf  []float64 // reusable result buffer for batched forwards
	prec   Precision
	memo   map[memoKey]memoVal
	noMemo bool
}

// memoKey identifies a decision state up to forward-pass equivalence: within
// one (NumDone, FaultEpoch, GraphEpoch) version, task starts are the only
// mutations and they move exactly one task from Ready to Running, so the
// counts pin the window contents; Now and the asking resource's type and
// speed pin the remaining features. Two decisions with equal keys see
// bit-identical EncodedStates and hence identical log-probabilities.
type memoKey struct {
	numDone, faultEpoch, graphEpoch int
	numRunning, numReady            int
	nowBits, speedBits              uint64
	isCPU, allowIdle                bool
}

type memoVal struct {
	logProbs []float64
	idleIdx  int
}

// NewPolicy returns an evaluation-mode (greedy) policy for the agent. The
// decision state is maintained incrementally and the forward pass runs on the
// allocation-free float64 serving engine — both bit-identical to the full
// rebuild + tape path (see the equivalence tests) and individually revertible
// via DisableIncrementalState / DisableServingEngine. The DenseProp ablation
// keeps the tape forward (the engine only implements the sparse hot path).
func NewPolicy(agent *Agent) *Policy {
	p := &Policy{Agent: agent, Greedy: true}
	p.inc = newIncrementalEncoder(agent.Cfg.Window, agent.Cfg.Directed, agent.Cfg.FaultFeatures)
	if !agent.Cfg.DenseProp {
		p.engine = newServeEngine(agent, PrecisionFloat64)
	}
	return p
}

// NewServingPolicy returns a greedy policy that evaluates the network on the
// allocation-free serving engine at the given precision instead of the
// autograd tape. PrecisionFloat64 decides bit-identically to NewPolicy;
// float32/int8 trade bounded decision divergence for latency. Serving
// policies cannot record training steps.
func NewServingPolicy(agent *Agent, prec Precision) *Policy {
	p := NewPolicy(agent)
	p.EnableServing(prec)
	return p
}

// NewTrainingPolicy returns a sampling, recording policy for the agent.
// Training always runs the float64 tape path with full state rebuilds.
func NewTrainingPolicy(agent *Agent, rng *rand.Rand) *Policy {
	return &Policy{Agent: agent, Rng: rng, Record: true}
}

// EnableServing switches the policy's forward pass to the serving engine at
// the given precision. Panics if the policy records training steps — the
// reduced-precision path must never feed the trainer — or if the agent uses
// the DenseProp ablation (which keeps the tape forward).
func (p *Policy) EnableServing(prec Precision) {
	if p.Record {
		panic("core: serving precision on a recording (training) policy")
	}
	p.engine = newServeEngine(p.Agent, prec)
	p.prec = prec
}

// UseBatcher routes the policy's serving forwards through a shared Batcher:
// concurrent decisions on the same model coalesce into one row-batched pass.
// The batcher's precision replaces any engine precision; at
// core.PrecisionFloat64 decisions stay bit-identical to the unbatched path.
// Panics on a recording (training) policy — batched forwards have no tape.
func (p *Policy) UseBatcher(b *Batcher) {
	if p.Record {
		panic("core: batched serving on a recording (training) policy")
	}
	p.batch = b
	p.prec = b.Precision()
}

// DisableIncrementalState forces a full EncodeFault rebuild on every decision
// (the incremental path's oracle; also what training uses).
func (p *Policy) DisableIncrementalState() { p.inc = nil }

// DisableDecisionMemo turns off within-round forward memoization.
func (p *Policy) DisableDecisionMemo() { p.noMemo = true }

// DisableServingEngine reverts the forward pass to the autograd tape.
// Combined with DisableIncrementalState and DisableDecisionMemo this
// reproduces the pre-optimization decision path exactly — the oracle
// configuration for equivalence tests and benchmarks.
func (p *Policy) DisableServingEngine() { p.engine = nil }

// IncrementalStats reports the incremental encoder's work counters (zero
// value when the incremental path is disabled).
func (p *Policy) IncrementalStats() IncrementalStats {
	if p.inc == nil {
		return IncrementalStats{}
	}
	return p.inc.stats
}

// Reset implements sim.Policy: it precomputes the DAG's descendant features
// and clears the episode recording, the incremental state, and the decision
// memo.
func (p *Policy) Reset(s *sim.State) {
	p.feats = taskgraph.DescendantFeatures(s.Graph)
	p.Steps = p.Steps[:0]
	if p.inc != nil {
		p.inc.reset()
	}
	for k := range p.memo {
		delete(p.memo, k)
	}
}

// Decide implements sim.Policy.
func (p *Policy) Decide(s *sim.State, r int) int {
	if len(p.feats) != s.Graph.NumTasks() {
		// The graph grew since Reset (streaming job arrival): recompute the
		// descendant features over the union DAG. Single-DAG episodes never
		// take this branch after Reset.
		p.feats = taskgraph.DescendantFeatures(s.Graph)
	}
	if p.Record {
		if p.engine != nil {
			panic("core: serving precision on a recording (training) policy")
		}
		return p.decideTape(s, r)
	}

	var es *EncodedState
	if p.inc != nil {
		es = p.inc.Encode(s, r, p.feats)
	} else {
		es = EncodeFault(s, r, p.feats, p.Agent.Cfg.Window, p.Agent.Cfg.Directed, p.Agent.Cfg.FaultFeatures)
	}
	if p.DisableIdle {
		es.AllowIdle = false
	}

	var key memoKey
	if !p.noMemo {
		key = memoKey{
			numDone:    s.NumDone,
			faultEpoch: s.FaultEpoch,
			graphEpoch: s.GraphEpoch,
			numRunning: len(s.Running),
			numReady:   len(s.Ready),
			nowBits:    math.Float64bits(s.Now),
			speedBits:  math.Float64bits(s.SpeedFactor(r)),
			isCPU:      s.Platform.Resources[r].Type == platform.CPU,
			allowIdle:  es.AllowIdle,
		}
		if v, ok := p.memo[key]; ok {
			p.InferenceCount++
			return p.act(es, v.logProbs, v.idleIdx)
		}
	}

	start := time.Now()
	var logProbs []float64
	var idleIdx int
	if p.batch != nil {
		logProbs, idleIdx = p.batch.Forward(es, p.lpBuf)
		p.lpBuf = logProbs // reuse the (possibly grown) buffer next decision
	} else if p.engine != nil {
		logProbs, idleIdx = p.engine.forward(es)
	} else {
		fw := p.Agent.Forward(es)
		logProbs = fw.LogProbs.Value.Data[:fw.NumActions]
		idleIdx = fw.IdleIndex
		// Copy out of the tape before releasing its buffers to the pool.
		logProbs = append([]float64(nil), logProbs...)
		fw.Binding.Release()
	}
	p.InferenceTime += time.Since(start)
	p.InferenceCount++

	if p.noMemo {
		return p.act(es, logProbs, idleIdx)
	}
	if p.memo == nil {
		p.memo = make(map[memoKey]memoVal)
	}
	stored := append([]float64(nil), logProbs...)
	p.memo[key] = memoVal{logProbs: stored, idleIdx: idleIdx}
	return p.act(es, stored, idleIdx)
}

// act picks an action from the log-probabilities and maps it to a task.
func (p *Policy) act(es *EncodedState, logProbs []float64, idleIdx int) int {
	var action int
	switch {
	case p.Greedy:
		action = argmaxLogProbs(logProbs)
	case p.Temperature > 0:
		action = sampleTemperatureLogProbs(p.Rng, logProbs, p.Temperature)
	default:
		action = sampleLogProbs(p.Rng, logProbs)
	}
	if action == idleIdx && idleIdx >= 0 {
		return sim.NoTask
	}
	return es.ReadyTasks[action]
}

// decideTape is the original tape-forward path used for training: the full
// EncodeFault rebuild, the autograd forward, and step recording.
func (p *Policy) decideTape(s *sim.State, r int) int {
	es := EncodeFault(s, r, p.feats, p.Agent.Cfg.Window, p.Agent.Cfg.Directed, p.Agent.Cfg.FaultFeatures)
	if p.DisableIdle {
		es.AllowIdle = false
	}
	start := time.Now()
	fw := p.Agent.Forward(es)
	p.InferenceTime += time.Since(start)
	p.InferenceCount++

	var action int
	switch {
	case p.Greedy:
		action = fw.Argmax()
	case p.Temperature > 0:
		action = fw.SampleTemperature(p.Rng, p.Temperature)
	default:
		action = fw.Sample(p.Rng)
	}
	idleIdx := fw.IdleIndex
	p.Steps = append(p.Steps, Step{State: es, Forward: fw, Action: action})
	if action == idleIdx && idleIdx >= 0 {
		return sim.NoTask
	}
	return es.ReadyTasks[action]
}

// SaveCheckpoint writes the agent's parameters and architecture metadata.
func (a *Agent) SaveCheckpoint(path string, meta map[string]string) error {
	m := map[string]string{
		"window": strconv.Itoa(a.Cfg.Window),
		"layers": strconv.Itoa(a.Cfg.Layers),
		"hidden": strconv.Itoa(a.Cfg.Hidden),
	}
	if a.Cfg.FaultFeatures {
		// Written only when set, so flag-off checkpoints stay byte-identical
		// to ones produced before the flag existed.
		m["fault_features"] = "1"
	}
	for k, v := range meta {
		m[k] = v
	}
	return nn.SaveCheckpointFile(path, a.params, m)
}

// LoadCheckpoint restores the agent's parameters from a checkpoint produced
// by SaveCheckpoint; the architecture (window/layers/hidden) must match.
func (a *Agent) LoadCheckpoint(path string) (map[string]string, error) {
	return nn.LoadCheckpointFile(path, a.params)
}

// MeanEntropy returns the average policy entropy over the recorded steps —
// a diagnostic of exploration during training.
func (p *Policy) MeanEntropy() float64 {
	if len(p.Steps) == 0 {
		return 0
	}
	var s float64
	for _, st := range p.Steps {
		s += autograd.Scalar(st.Forward.Entropy())
	}
	return s / float64(len(p.Steps))
}
