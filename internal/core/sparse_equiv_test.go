package core

import (
	"testing"

	"readys/internal/taskgraph"
)

// TestSparseDensePropagationEquivalent pins the contract EXPERIMENTS.md relies
// on: the sparse CSR propagation path and the DenseProp ablation produce
// bit-identical network outputs, so switching the hot path to SpMM changes no
// reported number. Exact equality holds because both paths accumulate each
// output element in ascending column order and skipped zero terms cannot
// change an IEEE sum.
func TestSparseDensePropagationEquivalent(t *testing.T) {
	for _, directed := range []bool{false, true} {
		p := NewProblem(taskgraph.Cholesky, 4, 2, 2, 0)
		s := initialState(p)
		es := EncodeWith(s, 0, taskgraph.DescendantFeatures(p.Graph), 2, directed)

		cfg := Config{Window: 2, Layers: 2, Hidden: 16, Seed: 1, Directed: directed}
		sparseAgent := NewAgent(cfg)
		cfg.DenseProp = true
		denseAgent := NewAgent(cfg)

		sp := sparseAgent.Forward(es)
		de := denseAgent.Forward(es)
		if !sp.LogProbs.Value.Equal(de.LogProbs.Value) {
			t.Fatalf("directed=%v: sparse and dense propagation log-probs differ", directed)
		}
		if !sp.Value.Value.Equal(de.Value.Value) {
			t.Fatalf("directed=%v: sparse and dense propagation values differ", directed)
		}
		sp.Binding.Release()
		de.Binding.Release()
	}
}

// TestDenseNormMatchesSparse checks the cached dense materialisation.
func TestDenseNormMatchesSparse(t *testing.T) {
	p := NewProblem(taskgraph.Cholesky, 4, 2, 2, 0)
	es := encodeInitial(p, 0, 2)
	d := es.DenseNorm()
	if d != es.DenseNorm() {
		t.Fatal("DenseNorm must cache its result")
	}
	if d.Rows != es.Norm.Rows || d.Cols != es.Norm.Cols {
		t.Fatalf("DenseNorm shape %dx%d vs sparse %dx%d", d.Rows, d.Cols, es.Norm.Rows, es.Norm.Cols)
	}
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if d.At(i, j) != es.Norm.At(i, j) {
				t.Fatalf("DenseNorm(%d,%d) = %v, sparse %v", i, j, d.At(i, j), es.Norm.At(i, j))
			}
		}
	}
}
