package core

import (
	"fmt"
	"math"
	"math/rand"

	"readys/internal/autograd"
	"readys/internal/nn"
)

// Config holds the agent's architectural hyper-parameters (§V-D).
type Config struct {
	// Window is the sub-DAG depth w (the paper searches w ∈ [0, 3]).
	Window int
	// Layers is the number of GCN layers g (the paper uses g ≥ w so that
	// information can flow from the window frontier to the ready tasks).
	Layers int
	// Hidden is the embedding width.
	Hidden int
	// Directed switches the GCN propagation operator from the symmetric
	// D̃^{-1/2}ÃD̃^{-1/2} of the paper to the row-normalised downstream
	// operator D̃^{-1}Ã (ablation: information flows only from a task to its
	// descendants).
	Directed bool
	// DenseProp materialises the propagation operator densely and multiplies
	// it as an n x n matrix instead of in CSR form. The outputs are
	// numerically equivalent (see the sparse/dense equivalence tests); this
	// exists as the ablation/benchmark baseline for the sparse hot path.
	DenseProp bool
	// FaultFeatures appends the fault-state block (resource availability,
	// speed factor, normalised fault-epoch counter) to the resource context,
	// widening the input and proc layers to NodeFeatureWidth(true) /
	// ProcFeatureWidth(true). Off by default: the flag-off encoding and
	// parameter layout are bit-identical to agents built before the flag
	// existed, so legacy checkpoints load unchanged.
	FaultFeatures bool
	// Seed initialises the parameters.
	Seed int64
}

// DefaultConfig mirrors the paper's best-performing region of the
// hyper-parameter search: window 2, two GCN layers.
func DefaultConfig() Config {
	return Config{Window: 2, Layers: 2, Hidden: 64, Seed: 1}
}

// Agent is the READYS policy/value network of Fig. 2.
type Agent struct {
	Cfg Config

	input  *nn.Linear // NumNodeFeatures -> Hidden
	gcn    []*nn.GCN  // Hidden -> Hidden, Cfg.Layers of them
	actor  *nn.Linear // Hidden -> 1: per-ready-task score
	proc   *nn.Linear // NumProcFeatures -> Hidden: processor embedding
	idle   *nn.Linear // 2*Hidden -> 1: ∅-action score
	critic *nn.Linear // Hidden -> 1: state value

	params *nn.ParamSet
}

// NewAgent builds an agent with freshly initialised parameters.
func NewAgent(cfg Config) *Agent {
	if cfg.Hidden <= 0 || cfg.Layers < 0 || cfg.Window < 0 {
		panic(fmt.Sprintf("core: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	a := &Agent{Cfg: cfg}
	a.input = nn.NewLinear(rng, "input", NodeFeatureWidth(cfg.FaultFeatures), cfg.Hidden)
	for l := 0; l < cfg.Layers; l++ {
		a.gcn = append(a.gcn, nn.NewGCN(rng, fmt.Sprintf("gcn%d", l), cfg.Hidden, cfg.Hidden))
	}
	a.actor = nn.NewLinear(rng, "actor", cfg.Hidden, 1)
	a.proc = nn.NewLinear(rng, "proc", ProcFeatureWidth(cfg.FaultFeatures), cfg.Hidden)
	a.idle = nn.NewLinear(rng, "idle", 2*cfg.Hidden, 1)
	a.critic = nn.NewLinear(rng, "critic", cfg.Hidden, 1)

	a.params = nn.NewParamSet()
	a.params.Add(a.input.Params()...)
	for _, g := range a.gcn {
		a.params.Add(g.Params()...)
	}
	a.params.Add(a.actor.Params()...)
	a.params.Add(a.proc.Params()...)
	a.params.Add(a.idle.Params()...)
	a.params.Add(a.critic.Params()...)
	return a
}

// Params exposes the trainable parameters (for the optimizer and
// checkpointing).
func (a *Agent) Params() *nn.ParamSet { return a.params }

// Clone returns a new agent with the same architecture and a deep copy of the
// parameter values. The clone shares nothing mutable with the receiver, so
// clone and original can train or infer concurrently without coordination.
func (a *Agent) Clone() *Agent {
	c := NewAgent(a.Cfg)
	if err := c.params.CopyValuesFrom(a.params); err != nil {
		// Same Cfg always produces an identical parameter layout.
		panic(fmt.Sprintf("core: cloning agent: %v", err))
	}
	return c
}

// Forward is the result of one policy/value evaluation: everything the A2C
// trainer needs to build its loss on the decision's tape.
type Forward struct {
	Binding *nn.Binding
	// LogProbs is the NumActions x 1 log-softmax over actions: one score per
	// ready task, plus — when the ∅ action is legal — a final idle entry.
	LogProbs *autograd.Node
	// Value is the critic's 1x1 state-value estimate.
	Value *autograd.Node
	// IdleIndex is the action index of ∅, or -1 when masked.
	IdleIndex int
	// NumActions is the action-space size.
	NumActions int
}

// Forward evaluates the network on an encoded state. The caller chooses an
// action from LogProbs (Sample or Argmax) and maps it back through
// EncodedState.ReadyTasks.
//
// Concurrency: Forward only READS the agent's parameters. All intermediate
// state lives on a fresh per-call Binding/Tape, and gradients reach the
// shared parameters only when a trainer explicitly calls Tape.Backward
// followed by Binding.Flush. Any number of goroutines may therefore call
// Forward on the same agent concurrently, as long as no goroutine is
// mutating the parameters (training, LoadCheckpoint, InitSeed) at the same
// time. internal/serve relies on this contract; TestConcurrentInference
// enforces it under the race detector.
func (a *Agent) Forward(es *EncodedState) *Forward {
	if len(es.ReadyRows) == 0 {
		panic("core: Forward with no ready task")
	}
	b := nn.NewBinding()
	tp := b.Tape

	// Node embeddings: input projection then the GCN stack. Propagation runs
	// sparse (CSR SpMM) unless the DenseProp ablation asks for the dense
	// baseline.
	h := tp.ReLU(a.input.Forward(b, tp.Const(es.X)))
	if a.Cfg.DenseProp {
		norm := tp.Const(es.DenseNorm())
		for _, g := range a.gcn {
			h = g.ForwardDense(b, norm, h)
		}
	} else {
		for _, g := range a.gcn {
			h = g.Forward(b, es.Norm, h)
		}
	}

	// Actor: one score per ready task.
	readyEmb := tp.GatherRows(h, es.ReadyRows)
	scores := a.actor.Forward(b, readyEmb) // k x 1

	idleIdx := -1
	if es.AllowIdle {
		// ∅ score from the processor embedding and the max-pooled DAG
		// representation (Fig. 2).
		procEmb := tp.ReLU(a.proc.Forward(b, tp.Const(es.Proc)))       // 1 x Hidden
		pooled := tp.MaxRows(h)                                        // 1 x Hidden
		idleScore := a.idle.Forward(b, tp.ConcatCols(procEmb, pooled)) // 1 x 1
		scores = tp.ConcatRows(scores, idleScore)
		idleIdx = len(es.ReadyRows)
	}

	logProbs := tp.LogSoftmaxCol(scores)

	// Critic: mean-pool then one-dimensional projection.
	value := a.critic.Forward(b, tp.MeanRows(h))

	return &Forward{
		Binding:    b,
		LogProbs:   logProbs,
		Value:      value,
		IdleIndex:  idleIdx,
		NumActions: len(es.ReadyRows) + boolToInt(es.AllowIdle),
	}
}

// Sample draws an action index from the policy distribution.
func (f *Forward) Sample(rng *rand.Rand) int {
	return sampleLogProbs(rng, f.LogProbs.Value.Data[:f.NumActions])
}

// SampleTemperature draws an action from the distribution sharpened by the
// given temperature: pᵢ ∝ exp(log πᵢ / τ). τ→0 approaches Argmax, τ=1 is
// Sample. Low-temperature sampling keeps the learned preferences while
// escaping the rare degenerate argmax loops (a policy whose mode is ∅ in
// some recurring state would otherwise idle forever on it).
func (f *Forward) SampleTemperature(rng *rand.Rand, tau float64) int {
	return sampleTemperatureLogProbs(rng, f.LogProbs.Value.Data[:f.NumActions], tau)
}

// Argmax returns the most probable action index.
func (f *Forward) Argmax() int {
	return argmaxLogProbs(f.LogProbs.Value.Data[:f.NumActions])
}

// sampleLogProbs draws an index from a log-probability vector, consuming
// exactly one rng value.
func sampleLogProbs(rng *rand.Rand, logProbs []float64) int {
	u := rng.Float64()
	var cum float64
	for i, lp := range logProbs {
		cum += math.Exp(lp)
		if u < cum {
			return i
		}
	}
	return len(logProbs) - 1
}

// sampleTemperatureLogProbs draws an index from the temperature-sharpened
// distribution pᵢ ∝ exp(log πᵢ/τ), consuming one rng value (none for τ ≤ 0).
func sampleTemperatureLogProbs(rng *rand.Rand, logProbs []float64, tau float64) int {
	if tau <= 0 {
		return argmaxLogProbs(logProbs)
	}
	maxv := math.Inf(-1)
	for _, lp := range logProbs {
		if v := lp / tau; v > maxv {
			maxv = v
		}
	}
	var z float64
	w := make([]float64, len(logProbs))
	for i, lp := range logProbs {
		w[i] = math.Exp(lp/tau - maxv)
		z += w[i]
	}
	u := rng.Float64() * z
	var cum float64
	for i := range w {
		cum += w[i]
		if u < cum {
			return i
		}
	}
	return len(logProbs) - 1
}

// argmaxLogProbs returns the index of the largest entry (first wins on ties).
func argmaxLogProbs(logProbs []float64) int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range logProbs {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Entropy builds the (differentiable) entropy of the policy distribution on
// the forward pass's tape: H = −Σ p log p.
func (f *Forward) Entropy() *autograd.Node {
	tp := f.Binding.Tape
	p := tp.Exp(f.LogProbs)
	return tp.Neg(tp.SumAll(tp.Mul(p, f.LogProbs)))
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
