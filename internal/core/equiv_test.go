package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// assertStatesEqual requires two encodings of the same decision to be
// bitwise identical in every field the forward pass reads.
func assertStatesEqual(t *testing.T, want, got *EncodedState, ctx string) {
	t.Helper()
	if !intsEqual(want.Nodes, got.Nodes) {
		t.Fatalf("%s: nodes differ: %v vs %v", ctx, want.Nodes, got.Nodes)
	}
	if want.X.Rows != got.X.Rows || want.X.Cols != got.X.Cols {
		t.Fatalf("%s: X shape %dx%d vs %dx%d", ctx, want.X.Rows, want.X.Cols, got.X.Rows, got.X.Cols)
	}
	for i := range want.X.Data {
		if math.Float64bits(want.X.Data[i]) != math.Float64bits(got.X.Data[i]) {
			t.Fatalf("%s: X[%d] = %v vs %v", ctx, i, want.X.Data[i], got.X.Data[i])
		}
	}
	if !intsEqual(want.Norm.RowPtr, got.Norm.RowPtr) || !intsEqual(want.Norm.Col, got.Norm.Col) {
		t.Fatalf("%s: adjacency structure differs", ctx)
	}
	for i := range want.Norm.Val {
		if math.Float64bits(want.Norm.Val[i]) != math.Float64bits(got.Norm.Val[i]) {
			t.Fatalf("%s: norm val[%d] = %v vs %v", ctx, i, want.Norm.Val[i], got.Norm.Val[i])
		}
	}
	if !intsEqual(want.ReadyRows, got.ReadyRows) || !intsEqual(want.ReadyTasks, got.ReadyTasks) {
		t.Fatalf("%s: ready sets differ: %v/%v vs %v/%v", ctx, want.ReadyRows, want.ReadyTasks, got.ReadyRows, got.ReadyTasks)
	}
	for i := range want.Proc.Data {
		if math.Float64bits(want.Proc.Data[i]) != math.Float64bits(got.Proc.Data[i]) {
			t.Fatalf("%s: proc[%d] = %v vs %v", ctx, i, want.Proc.Data[i], got.Proc.Data[i])
		}
	}
	if want.AllowIdle != got.AllowIdle {
		t.Fatalf("%s: AllowIdle %v vs %v", ctx, want.AllowIdle, got.AllowIdle)
	}
}

// encodeProbe wraps a policy and, at every decision, checks the incremental
// encoding against the EncodeFault oracle before delegating.
type encodeProbe struct {
	t     *testing.T
	inner *Policy
	ctx   string
	n     int
}

func (pp *encodeProbe) Reset(s *sim.State) { pp.inner.Reset(s) }

func (pp *encodeProbe) Decide(s *sim.State, r int) int {
	p := pp.inner
	if len(p.feats) != s.Graph.NumTasks() {
		p.feats = taskgraph.DescendantFeatures(s.Graph)
	}
	oracle := EncodeFault(s, r, p.feats, p.Agent.Cfg.Window, p.Agent.Cfg.Directed, p.Agent.Cfg.FaultFeatures)
	inc := p.inc.Encode(s, r, p.feats)
	assertStatesEqual(pp.t, oracle, inc, fmt.Sprintf("%s decision %d", pp.ctx, pp.n))
	pp.n++
	return p.Decide(s, r)
}

// TestIncrementalEncodeBitIdentical sweeps problem kinds, fault injection,
// duration noise, the directed operator, and fault features, asserting the
// incremental encoder reproduces EncodeFault bit for bit at every single
// decision of full episodes.
func TestIncrementalEncodeBitIdentical(t *testing.T) {
	kinds := []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR}
	for _, kind := range kinds {
		for _, faults := range []bool{false, true} {
			for _, directed := range []bool{false, true} {
				for _, ff := range []bool{false, true} {
					cfg := Config{Window: 2, Layers: 2, Hidden: 16, Seed: 3, Directed: directed, FaultFeatures: ff}
					agent := NewAgent(cfg)
					prob := NewProblem(kind, 6, 2, 2, 0.1)
					if faults {
						prob.Faults = sim.SpecForRate(1.5, 0)
					}
					pol := NewPolicy(agent)
					ctx := fmt.Sprintf("%v faults=%v directed=%v ff=%v", kind, faults, directed, ff)
					probe := &encodeProbe{t: t, inner: pol, ctx: ctx}
					if _, err := prob.Simulate(probe, rand.New(rand.NewSource(17))); err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
					if probe.n == 0 {
						t.Fatalf("%s: no decisions probed", ctx)
					}
					st := pol.IncrementalStats()
					if st.Rebuilds == 0 || st.Rebuilds >= st.Decisions {
						t.Fatalf("%s: implausible incremental stats %+v", ctx, st)
					}
				}
			}
		}
	}
}

// TestIncrementalResultIdentical runs whole episodes twice — incremental+memo
// against the pre-optimization oracle path (full rebuild, no memo) — and
// requires identical sim.Results, under faults and noise, greedy and
// sampling.
func TestIncrementalResultIdentical(t *testing.T) {
	for _, kind := range []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU} {
		for _, faults := range []bool{false, true} {
			for _, greedy := range []bool{true, false} {
				cfg := Config{Window: 2, Layers: 2, Hidden: 16, Seed: 5}
				agent := NewAgent(cfg)
				prob := NewProblem(kind, 6, 2, 2, 0.15)
				if faults {
					prob.Faults = sim.SpecForRate(1.0, 0)
				}

				fast := NewPolicy(agent)
				slow := NewPolicy(agent)
				slow.DisableIncrementalState()
				slow.DisableDecisionMemo()
				slow.DisableServingEngine()
				if !greedy {
					fast.Greedy, fast.Rng = false, rand.New(rand.NewSource(7))
					slow.Greedy, slow.Rng = false, rand.New(rand.NewSource(7))
				}

				ra, err := prob.Simulate(fast, rand.New(rand.NewSource(23)))
				if err != nil {
					t.Fatal(err)
				}
				rb, err := prob.Simulate(slow, rand.New(rand.NewSource(23)))
				if err != nil {
					t.Fatal(err)
				}
				ctx := fmt.Sprintf("%v faults=%v greedy=%v", kind, faults, greedy)
				if ra.Makespan != rb.Makespan || ra.Decisions != rb.Decisions || ra.IdleDecisions != rb.IdleDecisions {
					t.Fatalf("%s: results diverge: %+v vs %+v", ctx, ra, rb)
				}
				if len(ra.Trace) != len(rb.Trace) {
					t.Fatalf("%s: trace lengths differ", ctx)
				}
				for i := range ra.Trace {
					if ra.Trace[i] != rb.Trace[i] {
						t.Fatalf("%s: trace[%d] %+v vs %+v", ctx, i, ra.Trace[i], rb.Trace[i])
					}
				}
			}
		}
	}
}

// TestServingF64BitIdenticalToTape requires the float64 serving engine to
// reproduce the tape forward's log-probabilities bit for bit on every
// decision of a faulted episode.
func TestServingF64BitIdenticalToTape(t *testing.T) {
	for _, ff := range []bool{false, true} {
		agent := NewAgent(Config{Window: 2, Layers: 2, Hidden: 16, Seed: 9, FaultFeatures: ff})
		prob := NewProblem(taskgraph.Cholesky, 6, 2, 2, 0.1)
		prob.Faults = sim.SpecForRate(1.0, 0)
		engine := newServeEngine(agent, PrecisionFloat64)
		pol := NewPolicy(agent)
		n := 0
		probe := policyFunc{
			reset: pol.Reset,
			decide: func(s *sim.State, r int) int {
				es := EncodeFault(s, r, pol.feats, agent.Cfg.Window, agent.Cfg.Directed, agent.Cfg.FaultFeatures)
				fw := agent.Forward(es)
				lp, idleIdx := engine.forward(es)
				if idleIdx != fw.IdleIndex || len(lp) != fw.NumActions {
					t.Fatalf("decision %d: action space %d/%d vs %d/%d", n, len(lp), idleIdx, fw.NumActions, fw.IdleIndex)
				}
				for i := range lp {
					if math.Float64bits(lp[i]) != math.Float64bits(fw.LogProbs.Value.Data[i]) {
						t.Fatalf("decision %d: logprob[%d] = %v vs tape %v", n, i, lp[i], fw.LogProbs.Value.Data[i])
					}
				}
				fw.Binding.Release()
				n++
				return pol.Decide(s, r)
			},
		}
		if _, err := prob.Simulate(probe, rand.New(rand.NewSource(31))); err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("no decisions compared")
		}
	}
}

// TestServingPolicyResultIdentical pins the end-to-end contract serve relies
// on: a float64 serving policy (engine + incremental + memo) schedules
// exactly like the oracle tape policy.
func TestServingPolicyResultIdentical(t *testing.T) {
	agent := NewAgent(Config{Window: 2, Layers: 2, Hidden: 16, Seed: 11})
	prob := NewProblem(taskgraph.QR, 6, 2, 2, 0.1)
	prob.Faults = sim.SpecForRate(1.0, 0)

	serving := NewServingPolicy(agent, PrecisionFloat64)
	oracle := NewPolicy(agent)
	oracle.DisableIncrementalState()
	oracle.DisableDecisionMemo()
	oracle.DisableServingEngine()

	ra, err := prob.Simulate(serving, rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := prob.Simulate(oracle, rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}
	if ra.Makespan != rb.Makespan || len(ra.Trace) != len(rb.Trace) {
		t.Fatalf("serving f64 diverged from tape: %+v vs %+v", ra, rb)
	}
	for i := range ra.Trace {
		if ra.Trace[i] != rb.Trace[i] {
			t.Fatalf("trace[%d]: %+v vs %+v", i, ra.Trace[i], rb.Trace[i])
		}
	}
}

// TestServingNeverInTraining pins the guard: reduced precision on a recording
// policy must panic rather than feed the trainer.
func TestServingNeverInTraining(t *testing.T) {
	agent := NewAgent(Config{Window: 1, Layers: 1, Hidden: 8, Seed: 2})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("EnableServing on a recording policy did not panic")
			}
		}()
		p := NewTrainingPolicy(agent, rand.New(rand.NewSource(1)))
		p.EnableServing(PrecisionInt8)
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Decide on a recording serving policy did not panic")
			}
		}()
		p := NewServingPolicy(agent, PrecisionFloat32)
		p.Record = true
		prob := NewProblem(taskgraph.Cholesky, 4, 1, 1, 0)
		_, _ = prob.Simulate(p, rand.New(rand.NewSource(1)))
	}()
}

// policyFunc adapts two closures to sim.Policy for probing tests.
type policyFunc struct {
	reset  func(*sim.State)
	decide func(*sim.State, int) int
}

func (p policyFunc) Reset(s *sim.State)             { p.reset(s) }
func (p policyFunc) Decide(s *sim.State, r int) int { return p.decide(s, r) }
