package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// initialState builds a State at t=0 for a problem, before any decision.
func initialState(p Problem) *sim.State {
	g := p.Graph
	n := g.NumTasks()
	s := &sim.State{
		Graph:       g,
		Platform:    p.Platform,
		Timing:      p.Timing,
		Sigma:       p.Sigma,
		Done:        make([]bool, n),
		Started:     make([]bool, n),
		StartTime:   make([]float64, n),
		EndTime:     make([]float64, n),
		AssignedTo:  make([]int, n),
		BusyUntil:   make([]float64, p.Platform.Size()),
		RunningTask: make([]int, p.Platform.Size()),
		PredLeft:    make([]int, n),
	}
	for i := range s.AssignedTo {
		s.AssignedTo[i] = -1
	}
	for r := range s.RunningTask {
		s.RunningTask[r] = sim.NoTask
	}
	for i := 0; i < n; i++ {
		s.PredLeft[i] = len(g.Pred[i])
		if s.PredLeft[i] == 0 {
			s.Ready = append(s.Ready, i)
		}
	}
	return s
}

func TestEncodeInitialState(t *testing.T) {
	p := NewProblem(taskgraph.Cholesky, 4, 2, 2, 0)
	s := initialState(p)
	F := taskgraph.DescendantFeatures(p.Graph)
	es := Encode(s, 0, F, 2)

	// Window holds the root and its descendants up to depth 2.
	want := taskgraph.Window(p.Graph, nil, []int{0}, 2)
	if len(es.Nodes) != len(want) {
		t.Fatalf("window size %d, want %d", len(es.Nodes), len(want))
	}
	if es.X.Rows != len(es.Nodes) || es.X.Cols != NumNodeFeatures {
		t.Fatalf("X shape %dx%d", es.X.Rows, es.X.Cols)
	}
	if es.Norm.Rows != len(es.Nodes) || es.Norm.Cols != len(es.Nodes) {
		t.Fatalf("Norm shape %dx%d", es.Norm.Rows, es.Norm.Cols)
	}
	// Only the root is ready.
	if len(es.ReadyRows) != 1 || es.ReadyTasks[0] != 0 {
		t.Fatalf("ready = %v/%v", es.ReadyRows, es.ReadyTasks)
	}
	// Root row features.
	row := es.X.Row(es.ReadyRows[0])
	if row[featReady] != 1 || row[featRunning] != 0 {
		t.Fatal("root should be ready, not running")
	}
	if row[featType0] != 1 { // POTRF one-hot
		t.Fatal("root kernel one-hot wrong")
	}
	// Idle is allowed at t=0 (the engine would force-re-ask if everyone
	// declines).
	if !es.AllowIdle {
		t.Fatal("∅ must be allowed outside forced rounds")
	}
	if es.NumActions() != 2 {
		t.Fatalf("NumActions = %d, want 2", es.NumActions())
	}
	// Resource context: asked CPU 0; all resources free.
	if es.Proc.Data[procIsCPU] != 1 || es.Proc.Data[procIsGPU] != 0 {
		t.Fatal("proc type one-hot wrong")
	}
	if es.Proc.Data[procFreeCPU] != 1 || es.Proc.Data[procFreeGPU] != 1 {
		t.Fatal("free fractions should be 1")
	}
	if es.Proc.Data[procWaitCPU] != 0 || es.Proc.Data[procWaitGPU] != 0 {
		t.Fatal("waits should be 0")
	}
}

func TestEncodeMustActMasksIdle(t *testing.T) {
	p := NewProblem(taskgraph.Cholesky, 4, 2, 2, 0)
	s := initialState(p)
	s.MustAct = true
	es := Encode(s, 0, taskgraph.DescendantFeatures(p.Graph), 2)
	if es.AllowIdle {
		t.Fatal("idle must be masked in forced rounds")
	}
	if es.NumActions() != 1 {
		t.Fatalf("NumActions = %d, want 1", es.NumActions())
	}
}

func TestEncodeRunningTask(t *testing.T) {
	p := NewProblem(taskgraph.Cholesky, 4, 1, 1, 0)
	s := initialState(p)
	// Start the root on the GPU (resource 1) manually.
	s.Started[0] = true
	s.StartTime[0] = 0
	s.EndTime[0] = 8
	s.AssignedTo[0] = 1
	s.RunningTask[1] = 0
	s.BusyUntil[1] = 8
	s.Ready = nil
	s.Running = []int{0}
	s.Now = 2

	F := taskgraph.DescendantFeatures(p.Graph)
	// Make TRSM(1,0)=task 1 ready for the encoder to have a candidate.
	s.PredLeft[1] = 0
	s.Ready = []int{1}
	es := Encode(s, 0, F, 1)

	var rootRow []float64
	for i, task := range es.Nodes {
		if task == 0 {
			rootRow = es.X.Row(i)
		}
	}
	if rootRow == nil {
		t.Fatal("running root not in window")
	}
	if rootRow[featRunning] != 1 || rootRow[featReady] != 0 {
		t.Fatal("running flags wrong")
	}
	// Remaining expected: started at 0 on GPU, E=8, now=2 → 6; maxE = 88.
	want := 6.0 / 88.0
	if math.Abs(rootRow[featRemaining]-want) > 1e-12 {
		t.Fatalf("remaining = %v, want %v", rootRow[featRemaining], want)
	}
	// Proc context: CPU free, GPU busy with estimated wait 6.
	if es.Proc.Data[procFreeGPU] != 0 || math.Abs(es.Proc.Data[procWaitGPU]-want) > 1e-12 {
		t.Fatalf("GPU context wrong: %v", es.Proc.Data)
	}
	if !es.AllowIdle {
		t.Fatal("idle allowed when a task is running")
	}
}

func TestEncodeFeatureBoundsProperty(t *testing.T) {
	// All features stay in [0, 1] throughout real episodes.
	p := NewProblem(taskgraph.LU, 4, 2, 2, 0.4)
	F := taskgraph.DescendantFeatures(p.Graph)
	violated := false
	probe := probePolicy{check: func(s *sim.State, r int) {
		es := Encode(s, r, F, 2)
		for _, v := range es.X.Data {
			if v < -1e-12 || v > 1+1e-9 || math.IsNaN(v) {
				violated = true
			}
		}
		for _, v := range es.Proc.Data {
			// Wait features can exceed 1 when a task runs much longer than
			// maxE; they must still be finite and non-negative.
			if v < -1e-12 || math.IsNaN(v) || math.IsInf(v, 0) {
				violated = true
			}
		}
	}}
	if _, err := p.Simulate(&probe, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if violated {
		t.Fatal("feature out of bounds during episode")
	}
}

// probePolicy runs FIFO while letting a test inspect every decision state.
type probePolicy struct {
	check func(s *sim.State, r int)
}

func (p *probePolicy) Reset(*sim.State) {}
func (p *probePolicy) Decide(s *sim.State, r int) int {
	if p.check != nil {
		p.check(s, r)
	}
	return s.Ready[0]
}

func TestEncodeWindowZero(t *testing.T) {
	p := NewProblem(taskgraph.Cholesky, 4, 2, 2, 0)
	s := initialState(p)
	es := Encode(s, 0, taskgraph.DescendantFeatures(p.Graph), 0)
	if len(es.Nodes) != 1 {
		t.Fatalf("w=0 window should hold only the ready root, got %v", es.Nodes)
	}
}

func TestEncodeDeterministicProperty(t *testing.T) {
	p := NewProblem(taskgraph.QR, 3, 1, 2, 0)
	F := taskgraph.DescendantFeatures(p.Graph)
	f := func(r8 uint8, w8 uint8) bool {
		s := initialState(p)
		r := int(r8) % p.Platform.Size()
		w := int(w8 % 4)
		a := Encode(s, r, F, w)
		b := Encode(s, r, F, w)
		return a.X.Equal(b.X) && a.Norm.Equal(b.Norm) && len(a.ReadyRows) == len(b.ReadyRows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRewardSign(t *testing.T) {
	if Reward(100, 90) <= 0 {
		t.Fatal("beating HEFT must give positive reward")
	}
	if Reward(100, 110) >= 0 {
		t.Fatal("losing to HEFT must give negative reward")
	}
	if Reward(100, 100) != 0 {
		t.Fatal("matching HEFT must give zero reward")
	}
}

func TestProblemHEFTBaselinePositive(t *testing.T) {
	for _, kind := range []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR} {
		p := NewProblem(kind, 4, 2, 2, 0)
		if p.HEFTBaseline() <= 0 {
			t.Fatalf("%v baseline %v", kind, p.HEFTBaseline())
		}
	}
}

func TestProcFeatureHomogeneousPlatforms(t *testing.T) {
	// CPU-only platform: GPU context features stay zero.
	p := NewProblem(taskgraph.Cholesky, 4, 4, 0, 0)
	s := initialState(p)
	es := Encode(s, 0, taskgraph.DescendantFeatures(p.Graph), 1)
	if es.Proc.Data[procFreeGPU] != 0 || es.Proc.Data[procWaitGPU] != 0 {
		t.Fatal("GPU features must be zero on CPU-only platform")
	}
	if es.Proc.Data[procIsCPU] != 1 {
		t.Fatal("current processor must be CPU")
	}
}
