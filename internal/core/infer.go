package core

import (
	"fmt"
	"math"

	"readys/internal/nn"
	"readys/internal/tensor"
)

// Precision selects the numeric tier of the serving forward path. Training
// always runs float64 on the autograd tape; the reduced tiers exist only for
// inference behind an explicit knob.
type Precision int

const (
	// PrecisionFloat64 runs the serving engine in float64. Every operation
	// replicates the tape forward bit for bit, so decisions are identical to
	// the training-path policy — it is the tape's oracle-equivalent without
	// tape bookkeeping.
	PrecisionFloat64 Precision = iota
	// PrecisionFloat32 converts weights and activations to float32.
	PrecisionFloat32
	// PrecisionInt8 quantizes weight matrices to int8 (per-output-column
	// symmetric scales) and accumulates in float32.
	PrecisionInt8
)

// String returns the flag-friendly name of the precision tier.
func (p Precision) String() string {
	switch p {
	case PrecisionFloat64:
		return "float64"
	case PrecisionFloat32:
		return "float32"
	case PrecisionInt8:
		return "int8"
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

// ParsePrecision parses a precision tier name as accepted by the serving
// knobs ("float64"/"f64", "float32"/"f32", "int8"/"q8").
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "float64", "f64", "fp64", "":
		return PrecisionFloat64, nil
	case "float32", "f32", "fp32":
		return PrecisionFloat32, nil
	case "int8", "q8":
		return PrecisionInt8, nil
	}
	return 0, fmt.Errorf("core: unknown precision %q (want float64, float32 or int8)", s)
}

// serveEngine evaluates the agent's policy head without the autograd tape:
// preallocated scratch, no per-decision allocations, and optionally reduced
// precision. The float64 tier reproduces Agent.Forward's log-probabilities bit
// for bit (same kernels, same operation order); float32/int8 use weight copies
// converted once at construction. The critic is skipped — serving only needs
// the action distribution.
type serveEngine struct {
	agent *Agent
	prec  Precision

	// Converted weights, built once for the reduced tiers: input, gcn layers,
	// actor, proc, idle in that order.
	layers []*nn.ServingLayer

	// float64 scratch.
	h, tmp, ready, pooled, cat, score tensor.Matrix
	argBuf                            []int

	// float32 scratch.
	x32, p32, h32, tmp32, ready32, pooled32, cat32, score32 tensor.Matrix32
	val32                                                   []float32

	logits   []float64
	logProbs []float64
}

// newServeEngine builds an engine for the agent at the given precision. The
// engine reads the agent's parameters (float64) or private converted copies
// (float32/int8); it never writes them.
func newServeEngine(a *Agent, prec Precision) *serveEngine {
	if a.Cfg.DenseProp {
		// The engine only implements the sparse propagation hot path; the
		// dense ablation keeps the tape forward.
		panic("core: serving engine does not support DenseProp")
	}
	en := &serveEngine{agent: a, prec: prec}
	if prec != PrecisionFloat64 {
		en.layers = append(en.layers, nn.NewServingLayer(a.input.W, a.input.B))
		for _, g := range a.gcn {
			en.layers = append(en.layers, nn.NewServingLayer(g.W, g.B))
		}
		en.layers = append(en.layers,
			nn.NewServingLayer(a.actor.W, a.actor.B),
			nn.NewServingLayer(a.proc.W, a.proc.B),
			nn.NewServingLayer(a.idle.W, a.idle.B))
	}
	return en
}

// forward computes the log-probabilities over the state's actions. The
// returned slice is engine-owned and valid until the next call.
func (en *serveEngine) forward(es *EncodedState) (logProbs []float64, idleIdx int) {
	if len(es.ReadyRows) == 0 {
		panic("core: serving forward with no ready task")
	}
	if en.prec == PrecisionFloat64 {
		en.forwardF64(es)
	} else {
		en.forwardReduced(es)
	}

	k := len(en.logits)
	if cap(en.logProbs) < k {
		en.logProbs = make([]float64, k)
	}
	en.logProbs = en.logProbs[:k]
	logSoftmaxInto(en.logits, en.logProbs)
	idleIdx = -1
	if es.AllowIdle {
		idleIdx = len(es.ReadyRows)
	}
	return en.logProbs, idleIdx
}

// forwardF64 mirrors Agent.Forward operation by operation on the shared
// float64 kernels; see the bit-identity test against the tape forward.
func (en *serveEngine) forwardF64(es *EncodedState) {
	a := en.agent
	n, hid := len(es.Nodes), a.Cfg.Hidden

	// h = ReLU(X*W_in + b_in)
	resizeMatrix(&en.h, n, hid)
	tensor.MatMulInto(es.X, a.input.W.Value, &en.h)
	tensor.AddRowVectorInto(&en.h, a.input.B.Value, &en.h)
	reluInPlace(en.h.Data)

	// GCN stack: h = ReLU(SpMM(norm, h)*W + b)
	resizeMatrix(&en.tmp, n, hid)
	for _, g := range a.gcn {
		tensor.SpMMInto(es.Norm, &en.h, &en.tmp)
		tensor.MatMulInto(&en.tmp, g.W.Value, &en.h)
		tensor.AddRowVectorInto(&en.h, g.B.Value, &en.h)
		reluInPlace(en.h.Data)
	}

	// Actor scores for the ready rows.
	nActions := len(es.ReadyRows)
	if es.AllowIdle {
		nActions++
	}
	if cap(en.logits) < nActions {
		en.logits = make([]float64, nActions)
	}
	en.logits = en.logits[:nActions]
	resizeMatrix(&en.ready, len(es.ReadyRows), hid)
	tensor.GatherRowsInto(&en.h, es.ReadyRows, &en.ready)
	resizeMatrix(&en.score, len(es.ReadyRows), 1)
	tensor.MatMulInto(&en.ready, a.actor.W.Value, &en.score)
	tensor.AddRowVectorInto(&en.score, a.actor.B.Value, &en.score)
	copy(en.logits, en.score.Data)

	if es.AllowIdle {
		// ∅ score: [ReLU(proc*W_p + b_p) | maxpool(h)] * W_idle + b_idle.
		resizeMatrix(&en.cat, 1, 2*hid)
		procEmb := tensor.Matrix{Rows: 1, Cols: hid, Data: en.cat.Data[:hid]}
		tensor.MatMulInto(es.Proc, a.proc.W.Value, &procEmb)
		tensor.AddRowVectorInto(&procEmb, a.proc.B.Value, &procEmb)
		reluInPlace(procEmb.Data)
		pooled := tensor.Matrix{Rows: 1, Cols: hid, Data: en.cat.Data[hid:]}
		if cap(en.argBuf) < hid {
			en.argBuf = make([]int, hid)
		}
		tensor.MaxRowsInto(&en.h, &pooled, en.argBuf[:hid])
		resizeMatrix(&en.score, 1, 1)
		tensor.MatMulInto(&en.cat, a.idle.W.Value, &en.score)
		en.logits[nActions-1] = en.score.Data[0] + a.idle.B.Value.Data[0]
	}
}

// forwardReduced is the float32 / int8-weight forward: same structure as
// forwardF64 on the reduced kernels, with the log-softmax still computed in
// float64 from the float32 scores.
func (en *serveEngine) forwardReduced(es *EncodedState) {
	a := en.agent
	hid := a.Cfg.Hidden
	input, gcns := en.layers[0], en.layers[1:1+len(a.gcn)]
	actor, proc, idle := en.layers[1+len(a.gcn)], en.layers[2+len(a.gcn)], en.layers[3+len(a.gcn)]

	en.x32.SetFrom(es.X)
	if cap(en.val32) < len(es.Norm.Val) {
		en.val32 = make([]float32, len(es.Norm.Val))
	}
	en.val32 = en.val32[:len(es.Norm.Val)]
	for i, v := range es.Norm.Val {
		en.val32[i] = float32(v)
	}

	en.matmulReduced(&en.x32, input, &en.h32)
	addRowReLU32(&en.h32, input.B32.Data)
	for _, g := range gcns {
		tensor.SpMM32Into(es.Norm, en.val32, &en.h32, &en.tmp32)
		en.matmulReduced(&en.tmp32, g, &en.h32)
		addRowReLU32(&en.h32, g.B32.Data)
	}

	nActions := len(es.ReadyRows)
	if es.AllowIdle {
		nActions++
	}
	if cap(en.logits) < nActions {
		en.logits = make([]float64, nActions)
	}
	en.logits = en.logits[:nActions]
	en.ready32.Reset(len(es.ReadyRows), hid)
	for i, r := range es.ReadyRows {
		copy(en.ready32.Row(i), en.h32.Row(r))
	}
	en.matmulReduced(&en.ready32, actor, &en.score32)
	for i := range es.ReadyRows {
		en.logits[i] = float64(en.score32.Data[i] + actor.B32.Data[0])
	}

	if es.AllowIdle {
		en.p32.SetFrom(es.Proc)
		en.cat32.Reset(1, 2*hid)
		procEmb := tensor.Matrix32{Rows: 1, Cols: hid, Data: en.cat32.Data[:hid]}
		en.matmulReduced(&en.p32, proc, &procEmb)
		for j := range procEmb.Data {
			v := procEmb.Data[j] + proc.B32.Data[j]
			if v < 0 {
				v = 0
			}
			procEmb.Data[j] = v
		}
		// Column-wise max pool over h (first row, then strict improvements).
		pooled := en.cat32.Data[hid:]
		copy(pooled, en.h32.Row(0))
		for i := 1; i < en.h32.Rows; i++ {
			row := en.h32.Row(i)
			for j, v := range row {
				if v > pooled[j] {
					pooled[j] = v
				}
			}
		}
		en.matmulReduced(&en.cat32, idle, &en.score32)
		en.logits[nActions-1] = float64(en.score32.Data[0] + idle.B32.Data[0])
	}
}

// matmulReduced multiplies by the layer's weight at the engine's tier. The
// destination must not alias a.
func (en *serveEngine) matmulReduced(a *tensor.Matrix32, l *nn.ServingLayer, out *tensor.Matrix32) {
	if en.prec == PrecisionInt8 {
		tensor.MatMulQ8Into(a, l.W8, out)
		return
	}
	tensor.MatMul32SkipInto(a, &l.W32, out)
}

// logSoftmaxInto writes the log-softmax of logits into dst (len(dst) ==
// len(logits)), replicating autograd.LogSoftmaxCol in float64. Both the B=1
// serving forward and the batched forward normalise through this one function,
// so their per-state results cannot diverge at this step by construction.
func logSoftmaxInto(logits, dst []float64) {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range logits {
		sum += math.Exp(v - maxv)
	}
	logZ := maxv + math.Log(sum)
	for i, v := range logits {
		dst[i] = v - logZ
	}
}

func reluInPlace(xs []float64) {
	for i, v := range xs {
		if v > 0 {
			continue
		}
		xs[i] = 0
	}
}

func addRowReLU32(m *tensor.Matrix32, bias []float32) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			v += bias[j]
			if v < 0 {
				v = 0
			}
			row[j] = v
		}
	}
}
