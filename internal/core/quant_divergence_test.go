package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// TestQuantizedBoundedDivergence bounds how far the reduced-precision serving
// tiers may drift from float64 on the paper grid (Cholesky/LU/QR, T ∈ {4, 8}):
// per-decision argmax agreement along the float64 trajectory must stay at or
// above the tier's floor, and the full-episode makespan of the reduced-tier
// policy must stay within 5% of float64. The thresholds leave slack below the
// measured values (float32 agreed on 100% and int8 on ≥ 99.3% of decisions,
// with zero makespan delta); the bound documented in EXPERIMENTS.md mirrors
// these.
func TestQuantizedBoundedDivergence(t *testing.T) {
	floors := map[Precision]float64{
		PrecisionFloat32: 0.995,
		PrecisionInt8:    0.97,
	}
	const maxMakespanDelta = 0.05

	for _, kind := range []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR} {
		for _, T := range []int{4, 8} {
			for prec, floor := range floors {
				agent := NewAgent(Config{Window: 2, Layers: 2, Hidden: 64, Seed: 1})
				prob := NewProblem(kind, T, 2, 2, 0.1)
				ctx := fmt.Sprintf("%v T=%d %v", kind, T, prec)

				// Per-decision agreement along the float64 trajectory.
				f64e := newServeEngine(agent, PrecisionFloat64)
				qe := newServeEngine(agent, prec)
				pol := NewPolicy(agent)
				agree, total := 0, 0
				probe := policyFunc{
					reset: pol.Reset,
					decide: func(s *sim.State, r int) int {
						es := EncodeFault(s, r, pol.feats, agent.Cfg.Window, agent.Cfg.Directed, agent.Cfg.FaultFeatures)
						lpA, _ := f64e.forward(es)
						a := argmaxLogProbs(lpA)
						lpB, _ := qe.forward(es)
						if a == argmaxLogProbs(lpB) {
							agree++
						}
						total++
						return pol.Decide(s, r)
					},
				}
				if _, err := prob.Simulate(probe, rand.New(rand.NewSource(5))); err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
				if total == 0 {
					t.Fatalf("%s: no decisions compared", ctx)
				}
				if rate := float64(agree) / float64(total); rate < floor {
					t.Errorf("%s: argmax agreement %.4f (%d/%d) below floor %.3f", ctx, rate, agree, total, floor)
				}

				// Full-episode makespan bound.
				rq, err := prob.Simulate(NewServingPolicy(agent, prec), rand.New(rand.NewSource(5)))
				if err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
				rf, err := prob.Simulate(NewServingPolicy(agent, PrecisionFloat64), rand.New(rand.NewSource(5)))
				if err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
				if delta := math.Abs(rq.Makespan-rf.Makespan) / rf.Makespan; delta > maxMakespanDelta {
					t.Errorf("%s: makespan delta %.4f exceeds %.2f (%.3f vs %.3f)",
						ctx, delta, maxMakespanDelta, rq.Makespan, rf.Makespan)
				}
			}
		}
	}
}
