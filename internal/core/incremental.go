package core

import (
	"math"

	"readys/internal/sim"
	"readys/internal/taskgraph"
	"readys/internal/tensor"
)

// incrementalEncoder maintains the EncodedState across the decisions of one
// episode instead of rebuilding it from scratch each time (EncodeFault).
//
// Validity is keyed on (NumDone, FaultEpoch, GraphEpoch): within one key the
// window membership is invariant — decisions only move tasks from Ready to
// Running, and the window BFS seeds from their union — so the node list, the
// normalized adjacency, and the static feature columns all carry over, and
// only the decision-varying columns (ready/running/remaining plus the
// broadcast resource context) are rewritten. When the key moves (a completion,
// a fault, or a streaming arrival) the window is recomputed with reused
// scratch, unchanged static rows are copied from the previous buffer, and the
// adjacency is rebuilt only if the node set actually changed.
//
// Every feature value is produced by the same fill helpers EncodeFault uses
// and the adjacency by the same formulas as nn.NormalizedAdjacency /
// nn.DirectedNormalizedAdjacency, so the encoder is bit-identical to the full
// rebuild — the equivalence tests enforce this per decision. EncodeFault
// remains the fallback and the oracle.
//
// The returned EncodedState aliases buffers owned by the encoder and is only
// valid until the next Encode call; training (which retains states on tapes)
// must keep using EncodeFault.
type IncrementalStats struct {
	// Decisions counts Encode calls; Rebuilds how many recomputed the window.
	Decisions, Rebuilds int
	// RowsCopied / RowsFilled split static-row work during rebuilds between
	// rows carried over from the previous window and rows computed fresh.
	RowsCopied, RowsFilled int
	// AdjRebuilds counts adjacency reconstructions (node set changed).
	AdjRebuilds int
}

type incrementalEncoder struct {
	w             int
	directed      bool
	faultFeatures bool

	// Window validity key.
	valid      bool
	numDone    int
	faultEpoch int

	// Per-graph-epoch caches (-1 = none yet).
	graphEpoch int
	maxE       float64
	sortedSucc [][]int
	sortedPred [][]int

	// BFS scratch indexed by task ID. seen is all-false between rebuilds.
	seen  []bool
	depth []int32
	queue []int

	// rowOf[t] is 1 + the row of task t in the current window, 0 when absent.
	rowOf []int32

	// Double-buffered node lists and feature matrices: rebuilds fill the spare
	// buffer (copying unchanged static rows from the active one) and flip.
	nodes  [2][]int
	x      [2]tensor.Matrix
	cur    int
	xEpoch int // graph epoch the active buffer's static rows were filled at

	// Owned CSR adjacency buffers backing es.Norm.
	norm     tensor.Sparse
	adjEpoch int
	nbuf     []int

	es    EncodedState
	stats IncrementalStats
}

func newIncrementalEncoder(w int, directed, faultFeatures bool) *incrementalEncoder {
	e := &incrementalEncoder{w: w, directed: directed, faultFeatures: faultFeatures}
	e.es.Proc = tensor.New(1, ProcFeatureWidth(faultFeatures))
	e.reset()
	return e
}

// reset invalidates everything; called at episode boundaries.
func (e *incrementalEncoder) reset() {
	e.valid = false
	e.graphEpoch = -1
	e.xEpoch = -1
	e.adjEpoch = -1
	// rowOf entries for the stale window must not leak into the next episode
	// (same task IDs, different graph).
	for _, t := range e.nodes[e.cur] {
		if t < len(e.rowOf) {
			e.rowOf[t] = 0
		}
	}
	e.nodes[e.cur] = e.nodes[e.cur][:0]
	e.es.Nodes = nil
	e.es.Norm = nil
}

// Encode returns the EncodedState for a decision on the given resource,
// reusing as much of the previous decision's state as the validity key allows.
func (e *incrementalEncoder) Encode(s *sim.State, resource int, F [][taskgraph.NumKernels]float64) *EncodedState {
	if e.graphEpoch != s.GraphEpoch || len(e.seen) != s.Graph.NumTasks() {
		e.refreshGraphCaches(s)
	}
	if !e.valid || e.numDone != s.NumDone || e.faultEpoch != s.FaultEpoch {
		e.rebuildWindow(s, F)
		e.valid, e.numDone, e.faultEpoch = true, s.NumDone, s.FaultEpoch
	}

	// Decision-varying refresh: the resource context, the ready/running
	// columns, and the broadcast block of every row.
	es := &e.es
	fillProcVector(s, resource, e.maxE, len(es.Nodes), e.faultFeatures, es.Proc.Data)
	es.ReadyRows = es.ReadyRows[:0]
	es.ReadyTasks = es.ReadyTasks[:0]
	x := &e.x[e.cur]
	for row, t := range es.Nodes {
		rf := x.Row(row)
		if fillDynamicTaskFeatures(s, t, e.maxE, rf) {
			es.ReadyRows = append(es.ReadyRows, row)
			es.ReadyTasks = append(es.ReadyTasks, t)
		}
		copy(rf[numTaskFeatures:], es.Proc.Data)
	}
	es.AllowIdle = !s.MustAct
	e.stats.Decisions++
	return es
}

// refreshGraphCaches rebuilds everything derived from the graph topology and
// timing tables: called on the first decision and after each GraphEpoch bump
// (streaming arrival).
func (e *incrementalEncoder) refreshGraphCaches(s *sim.State) {
	n := s.Graph.NumTasks()
	e.maxE = s.MaxExpected()
	e.sortedSucc = resizeIntRows(e.sortedSucc, n)
	e.sortedPred = resizeIntRows(e.sortedPred, n)
	for t := 0; t < n; t++ {
		e.sortedSucc[t] = appendSortedInts(e.sortedSucc[t][:0], s.Graph.Succ[t])
		e.sortedPred[t] = appendSortedInts(e.sortedPred[t][:0], s.Graph.Pred[t])
	}
	if len(e.seen) < n {
		e.seen = make([]bool, n)
		e.depth = make([]int32, n)
		old := e.rowOf
		e.rowOf = make([]int32, n)
		copy(e.rowOf, old)
	} else {
		e.seen = e.seen[:n]
		e.depth = e.depth[:n]
		e.rowOf = e.rowOf[:n]
	}
	e.graphEpoch = s.GraphEpoch
	e.valid = false
}

// rebuildWindow recomputes the window node set (same membership as
// taskgraph.Window), refills or copies the static feature rows, and rebuilds
// the induced adjacency when the node set changed.
func (e *incrementalEncoder) rebuildWindow(s *sim.State, F [][taskgraph.NumKernels]float64) {
	g := s.Graph

	// Multi-source BFS over successors, depth-capped at w. All seeds start at
	// depth 0 and expansion is FIFO, so first-visit depth is minimal and the
	// visited set equals taskgraph.Window's membership.
	q := e.queue[:0]
	for _, t := range s.Running {
		if !e.seen[t] {
			e.seen[t] = true
			e.depth[t] = 0
			q = append(q, t)
		}
	}
	for _, t := range s.Ready {
		if !e.seen[t] {
			e.seen[t] = true
			e.depth[t] = 0
			q = append(q, t)
		}
	}
	for head := 0; head < len(q); head++ {
		t := q[head]
		d := e.depth[t]
		if int(d) == e.w {
			continue
		}
		for _, c := range g.Succ[t] {
			if !e.seen[c] {
				e.seen[c] = true
				e.depth[c] = d + 1
				q = append(q, c)
			}
		}
	}
	e.queue = q[:0]

	next := 1 - e.cur
	nodes := append(e.nodes[next][:0], q...)
	insertionSortInts(nodes)
	for _, t := range q {
		e.seen[t] = false
	}

	// Static rows: copy rows whose task already had a row at this graph epoch,
	// fill the rest fresh.
	width := numTaskFeatures + ProcFeatureWidth(e.faultFeatures)
	newX := &e.x[next]
	resizeMatrix(newX, len(nodes), width)
	oldX := &e.x[e.cur]
	canCopy := e.xEpoch == e.graphEpoch
	for row, t := range nodes {
		rf := newX.Row(row)
		if canCopy && e.rowOf[t] != 0 {
			copy(rf, oldX.Row(int(e.rowOf[t])-1))
			e.stats.RowsCopied++
		} else {
			for i := range rf {
				rf[i] = 0
			}
			fillStaticTaskFeatures(s, t, F, e.maxE, rf)
			e.stats.RowsFilled++
		}
	}

	sameNodes := intsEqual(nodes, e.nodes[e.cur])
	for _, t := range e.nodes[e.cur] {
		e.rowOf[t] = 0
	}
	for row, t := range nodes {
		e.rowOf[t] = int32(row + 1)
	}

	e.nodes[next] = nodes
	e.cur = next
	e.xEpoch = e.graphEpoch
	e.es.Nodes = nodes
	e.es.X = newX

	if !sameNodes || e.adjEpoch != e.graphEpoch {
		e.rebuildAdjacency(nodes)
		e.adjEpoch = e.graphEpoch
		e.es.denseNorm = nil
		e.stats.AdjRebuilds++
	}
	e.stats.Rebuilds++
}

// rebuildAdjacency reconstructs the induced normalized adjacency into the
// encoder-owned CSR buffers. Window rows are sorted by task ID and the cached
// neighbour lists are sorted too, so induced column indices arrive almost
// sorted; a small insertion sort plus dedup reproduces nn.adjacencyRows'
// sorted/deduplicated self-loop rows, and the value formulas match
// nn.NormalizedAdjacency / nn.DirectedNormalizedAdjacency exactly.
func (e *incrementalEncoder) rebuildAdjacency(nodes []int) {
	n := len(nodes)
	rowPtr := e.norm.RowPtr[:0]
	rowPtr = append(rowPtr, 0)
	cols := e.norm.Col[:0]
	for i, t := range nodes {
		nb := e.nbuf[:0]
		nb = append(nb, i) // self-loop
		for _, c := range e.sortedSucc[t] {
			if r := e.rowOf[c]; r != 0 {
				nb = append(nb, int(r)-1)
			}
		}
		if !e.directed {
			for _, c := range e.sortedPred[t] {
				if r := e.rowOf[c]; r != 0 {
					nb = append(nb, int(r)-1)
				}
			}
		}
		insertionSortInts(nb)
		w := 0
		for k, v := range nb {
			if k == 0 || v != nb[w-1] {
				nb[w] = v
				w++
			}
		}
		cols = append(cols, nb[:w]...)
		rowPtr = append(rowPtr, len(cols))
		e.nbuf = nb[:0]
	}

	vals := e.norm.Val
	if cap(vals) < len(cols) {
		vals = make([]float64, len(cols))
	}
	vals = vals[:len(cols)]
	if e.directed {
		for i := 0; i < n; i++ {
			d := float64(rowPtr[i+1] - rowPtr[i])
			v := 1 / d
			for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
				vals[k] = v
			}
		}
	} else {
		for i := 0; i < n; i++ {
			di := float64(rowPtr[i+1] - rowPtr[i])
			for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
				j := cols[k]
				dj := float64(rowPtr[j+1] - rowPtr[j])
				vals[k] = 1 / math.Sqrt(di*dj)
			}
		}
	}
	e.norm = tensor.Sparse{Rows: n, Cols: n, RowPtr: rowPtr, Col: cols, Val: vals}
	e.es.Norm = &e.norm
}

// resizeMatrix reshapes m reusing its backing slice; contents unspecified.
func resizeMatrix(m *tensor.Matrix, rows, cols int) {
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
}

func resizeIntRows(rows [][]int, n int) [][]int {
	if cap(rows) < n {
		out := make([][]int, n)
		copy(out, rows)
		return out
	}
	return rows[:n]
}

func appendSortedInts(dst, src []int) []int {
	dst = append(dst, src...)
	insertionSortInts(dst)
	return dst
}

// insertionSortInts sorts small int slices in place (window rows and
// neighbour lists are tens of elements).
func insertionSortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
