package core

import (
	"fmt"
	"testing"

	"readys/internal/taskgraph"
)

func BenchmarkEncode(b *testing.B) {
	for _, T := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("cholesky/T=%d", T), func(b *testing.B) {
			p := NewProblem(taskgraph.Cholesky, T, 2, 2, 0)
			s := initialState(p)
			F := taskgraph.DescendantFeatures(p.Graph)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Encode(s, 0, F, 2)
			}
		})
	}
}

func BenchmarkAgentForward(b *testing.B) {
	for _, hidden := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("hidden=%d", hidden), func(b *testing.B) {
			p := NewProblem(taskgraph.Cholesky, 8, 2, 2, 0)
			agent := NewAgent(Config{Window: 2, Layers: 2, Hidden: hidden, Seed: 1})
			es := encodeInitial(p, 0, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agent.Forward(es)
			}
		})
	}
}

func BenchmarkDescendantFeatures(b *testing.B) {
	g := taskgraph.NewCholesky(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		taskgraph.DescendantFeatures(g)
	}
}
