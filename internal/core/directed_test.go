package core

import (
	"testing"

	"readys/internal/taskgraph"
)

func TestEncodeWithDirectedOperator(t *testing.T) {
	p := NewProblem(taskgraph.Cholesky, 4, 2, 2, 0)
	s := initialState(p)
	F := taskgraph.DescendantFeatures(p.Graph)
	sym := EncodeWith(s, 0, F, 2, false)
	dir := EncodeWith(s, 0, F, 2, true)
	if sym.Norm.Equal(dir.Norm) {
		t.Fatal("directed and symmetric operators must differ")
	}
	// The symmetric operator is symmetric; the directed one is not (for a
	// non-trivial window).
	symmetric := func(m interface{ At(i, j int) float64 }, n int) bool {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m.At(i, j) != m.At(j, i) {
					return false
				}
			}
		}
		return true
	}
	n := len(sym.Nodes)
	if !symmetric(sym.Norm, n) {
		t.Fatal("symmetric operator is not symmetric")
	}
	if symmetric(dir.Norm, n) {
		t.Fatal("directed operator should not be symmetric on this window")
	}
	// Directed rows are stochastic.
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			sum += dir.Norm.At(i, j)
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			t.Fatalf("directed row %d sums to %v", i, sum)
		}
	}
	// Feature matrices are identical — only the operator changes.
	if !sym.X.Equal(dir.X) {
		t.Fatal("features must not depend on the operator")
	}
}
