// Package core implements READYS, the paper's contribution: a reinforcement-
// learning dynamic scheduler for DAGs on heterogeneous platforms.
//
// The package contains
//   - the state encoder of §III-B (windowed sub-DAG of running/ready tasks
//     and their descendants up to depth w, per-task raw features X̂ including
//     the descendant-type summary F, and the resource-state vector),
//   - the policy/value network of Fig. 2 (input projection, a stack of GCN
//     layers, an actor head scoring each ready task, an ∅-action head fed by
//     the processor embedding and the max-pooled DAG representation, and a
//     critic head on the mean-pooled representation),
//   - the sim.Policy adapter used for both training (sampling, trajectory
//     recording) and evaluation (greedy), and
//   - checkpointing for the transfer-learning experiments (§V-F).
package core

import (
	"errors"
	"fmt"
	"math/rand"

	"readys/internal/platform"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// Problem bundles one scheduling instance: a DAG, a platform, the timing
// tables and the duration-noise level, plus an optional fault model.
type Problem struct {
	Graph    *taskgraph.Graph
	Platform platform.Platform
	Timing   platform.Timing
	Sigma    float64
	// Faults, when enabled, injects a per-run fault plan (outages, deaths,
	// degradation) derived deterministically from the simulation RNG. The
	// zero value disables fault injection entirely and leaves every result
	// bit-identical to a fault-free run.
	Faults sim.FaultSpec
}

// NewProblem builds a Problem for a factorisation kind, tile count, platform
// and noise level.
func NewProblem(kind taskgraph.Kind, T, numCPU, numGPU int, sigma float64) Problem {
	return Problem{
		Graph:    taskgraph.NewByKind(kind, T),
		Platform: platform.New(numCPU, numGPU),
		Timing:   platform.TimingFor(kind),
		Sigma:    sigma,
	}
}

// HEFTBaseline returns the projected HEFT makespan of the problem under
// expected durations. Per §III-B the terminal reward is
//
//	R = (makespan(HEFT) − makespan) / makespan(HEFT),
//
// positive exactly when the agent beats HEFT. The projection is used (rather
// than a noisy HEFT execution) so the reward scale is deterministic across
// episodes.
func (p Problem) HEFTBaseline() float64 {
	return sched.HEFT(p.Graph, p.Platform, p.Timing).Makespan
}

// Reward converts an achieved makespan into the terminal reward against the
// given HEFT baseline makespan.
func Reward(heftMakespan, makespan float64) float64 {
	return (heftMakespan - makespan) / heftMakespan
}

// FaultHorizonFactor sizes the default fault horizon relative to the HEFT
// projected makespan: faults keep arriving while the schedule drags past its
// projection, which is precisely when a fragile policy is being punished.
const FaultHorizonFactor = 2.5

// FaultPlanFor materialises the problem's fault spec into a concrete plan
// for the given seed (nil spec disabled → empty plan). A zero Horizon
// defaults to FaultHorizonFactor times the HEFT projection.
func (p Problem) FaultPlanFor(seed int64) *sim.FaultPlan {
	if !p.Faults.Enabled() {
		return nil
	}
	spec := p.Faults
	if spec.Horizon <= 0 {
		spec.Horizon = FaultHorizonFactor * p.HEFTBaseline()
	}
	return sim.GeneratePlan(seed, p.Platform.Size(), spec)
}

// Simulate runs the problem under an arbitrary policy with the given RNG.
// When the problem's fault spec is enabled, a fault plan is derived from one
// draw of rng — so distinct episode RNGs yield distinct, reproducible fault
// streams; with faults disabled, rng is consumed exactly as before.
func (p Problem) Simulate(pol sim.Policy, rng *rand.Rand) (sim.Result, error) {
	var plan *sim.FaultPlan
	if p.Faults.Enabled() {
		plan = p.FaultPlanFor(rng.Int63())
	}
	return sim.Simulate(p.Graph, p.Platform, p.Timing, pol, sim.Options{Sigma: p.Sigma, Rng: rng, Faults: plan})
}

// Validate checks that the problem is well-formed: a non-empty acyclic graph,
// at least one resource, and a non-negative noise level. Zero-valued or
// hand-assembled Problems pass through here before any simulation touches
// them, so callers get an error instead of a panic deep inside the engine.
func (p Problem) Validate() error {
	if p.Graph == nil {
		return errors.New("core: problem has no task graph")
	}
	if p.Graph.NumTasks() == 0 {
		return errors.New("core: problem graph has no tasks")
	}
	if err := p.Graph.Validate(); err != nil {
		return fmt.Errorf("core: problem graph invalid: %w", err)
	}
	if p.Platform.Size() < 1 {
		return errors.New("core: problem platform has no resources")
	}
	if p.Sigma < 0 {
		return fmt.Errorf("core: negative duration noise sigma %g", p.Sigma)
	}
	f := p.Faults
	if f.OutageRate < 0 || f.DegradeRate < 0 {
		return fmt.Errorf("core: negative fault rate (outage %g, degrade %g)", f.OutageRate, f.DegradeRate)
	}
	if f.DeathProb < 0 || f.DeathProb > 1 {
		return fmt.Errorf("core: death probability %g outside [0, 1]", f.DeathProb)
	}
	if f.Horizon < 0 {
		return fmt.Errorf("core: negative fault horizon %g", f.Horizon)
	}
	return nil
}
