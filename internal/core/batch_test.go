package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// collectStates harvests freshly allocated EncodedStates from every decision
// of a full (faulted) episode, so batching tests run over the real state
// distribution rather than synthetic inputs. Roughly half the states keep
// AllowIdle as encoded; every fourth has it masked, mimicking DisableIdle.
func collectStates(t *testing.T, agent *Agent, kind taskgraph.Kind) []*EncodedState {
	t.Helper()
	prob := NewProblem(kind, 6, 2, 2, 0.1)
	prob.Faults = sim.SpecForRate(1.0, 0)
	pol := NewPolicy(agent)
	var states []*EncodedState
	probe := policyFunc{
		reset: pol.Reset,
		decide: func(s *sim.State, r int) int {
			es := EncodeFault(s, r, pol.feats, agent.Cfg.Window, agent.Cfg.Directed, agent.Cfg.FaultFeatures)
			if len(states)%4 == 3 {
				es.AllowIdle = false
			}
			states = append(states, es)
			return pol.Decide(s, r)
		},
	}
	if _, err := prob.Simulate(probe, rand.New(rand.NewSource(101))); err != nil {
		t.Fatal(err)
	}
	if len(states) < 20 {
		t.Fatalf("only %d states collected; episode too small to exercise batching", len(states))
	}
	return states
}

// TestBatchedBitIdentical is the tentpole guarantee: for every precision tier
// and every batch width, the batched forward's per-state log-probabilities
// equal the B=1 serving engine's bit for bit. float64 is the acceptance
// criterion; the reduced tiers are held to the same standard against their
// own B=1 paths since their kernels are equally row-independent.
func TestBatchedBitIdentical(t *testing.T) {
	for _, ff := range []bool{false, true} {
		agent := NewAgent(Config{Window: 2, Layers: 2, Hidden: 16, Seed: 9, FaultFeatures: ff})
		states := collectStates(t, agent, taskgraph.Cholesky)
		for _, prec := range []Precision{PrecisionFloat64, PrecisionFloat32, PrecisionInt8} {
			// B=1 reference results from the serving engine.
			ref := newServeEngine(agent, prec)
			want := make([][]float64, len(states))
			wantIdle := make([]int, len(states))
			for i, es := range states {
				lp, idle := ref.forward(es)
				want[i] = append([]float64(nil), lp...)
				wantIdle[i] = idle
			}
			for _, width := range []int{1, 2, 3, 8, 17, len(states)} {
				en := newBatchEngine(agent, prec)
				for lo := 0; lo < len(states); lo += width {
					hi := lo + width
					if hi > len(states) {
						hi = len(states)
					}
					batch := make([]*batchReq, 0, hi-lo)
					for _, es := range states[lo:hi] {
						batch = append(batch, &batchReq{es: es})
					}
					en.forwardBatch(batch)
					for j, r := range batch {
						i := lo + j
						ctx := fmt.Sprintf("ff=%v %s width=%d state %d", ff, prec, width, i)
						if r.idleIdx != wantIdle[i] || len(r.logProbs) != len(want[i]) {
							t.Fatalf("%s: action space %d/%d vs %d/%d", ctx, len(r.logProbs), r.idleIdx, len(want[i]), wantIdle[i])
						}
						for k := range want[i] {
							if math.Float64bits(r.logProbs[k]) != math.Float64bits(want[i][k]) {
								t.Fatalf("%s: logprob[%d] = %v vs B=1 %v", ctx, k, r.logProbs[k], want[i][k])
							}
						}
					}
				}
			}
		}
	}
}

// TestBatchedPolicyResultIdentical runs whole episodes concurrently through
// one shared Batcher and requires every client's schedule to equal the
// unbatched serving policy's for the same seed — the end-to-end contract the
// serve and gateway layers rely on. Runs under -race in make check.
func TestBatchedPolicyResultIdentical(t *testing.T) {
	agent := NewAgent(Config{Window: 2, Layers: 2, Hidden: 16, Seed: 5})
	const clients = 8

	type outcome struct {
		makespan  float64
		decisions int
		trace     []sim.Placement
	}
	run := func(i int, b *Batcher) (outcome, error) {
		prob := NewProblem(taskgraph.Cholesky, 6, 2, 2, 0.1)
		pol := NewServingPolicy(agent, PrecisionFloat64)
		if b != nil {
			pol.UseBatcher(b)
		}
		res, err := prob.Simulate(pol, rand.New(rand.NewSource(int64(1000+i))))
		if err != nil {
			return outcome{}, err
		}
		return outcome{makespan: res.Makespan, decisions: res.Decisions, trace: res.Trace}, nil
	}

	want := make([]outcome, clients)
	for i := range want {
		o, err := run(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = o
	}

	b := NewBatcher(agent, PrecisionFloat64, BatcherConfig{MaxWidth: clients})
	got := make([]outcome, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		b.Attach() // before spawning, so early clients wait for late ones
		go func(i int) {
			defer wg.Done()
			defer b.Detach()
			got[i], errs[i] = run(i, b)
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if got[i].makespan != want[i].makespan || got[i].decisions != want[i].decisions {
			t.Fatalf("client %d: batched run diverged: %+v vs %+v", i, got[i], want[i])
		}
		if len(got[i].trace) != len(want[i].trace) {
			t.Fatalf("client %d: trace lengths differ", i)
		}
		for j := range got[i].trace {
			if got[i].trace[j] != want[i].trace[j] {
				t.Fatalf("client %d: trace[%d] %+v vs %+v", i, j, got[i].trace[j], want[i].trace[j])
			}
		}
	}
}

// TestBatcherCoalesces asserts batching actually happens under concurrency:
// with N attached clients the observed flush widths must reach beyond 1, and
// every submitted state must be answered (waits observed == flush-width sum).
func TestBatcherCoalesces(t *testing.T) {
	agent := NewAgent(Config{Window: 2, Layers: 2, Hidden: 16, Seed: 5})
	const clients = 4
	var mu sync.Mutex
	maxWidth, flushedStates, waits := 0, 0, 0
	b := NewBatcher(agent, PrecisionFloat64, BatcherConfig{
		MaxWidth: 64,
		OnFlush: func(w int) {
			mu.Lock()
			if w > maxWidth {
				maxWidth = w
			}
			flushedStates += w
			mu.Unlock()
		},
		OnWait: func(time.Duration) { mu.Lock(); waits++; mu.Unlock() },
	})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		// Attach before spawning: on a single-core box a client that starts
		// alone would otherwise self-flush at width 1 and finish its episode
		// before the next goroutine is even scheduled.
		b.Attach()
		go func(i int) {
			defer wg.Done()
			defer b.Detach()
			prob := NewProblem(taskgraph.Cholesky, 5, 2, 2, 0.1)
			pol := NewServingPolicy(agent, PrecisionFloat64)
			pol.UseBatcher(b)
			if _, err := prob.Simulate(pol, rand.New(rand.NewSource(int64(i)))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if maxWidth < 2 {
		t.Fatalf("no coalescing: max observed batch width %d with %d concurrent clients", maxWidth, clients)
	}
	if maxWidth > clients {
		t.Fatalf("batch width %d exceeds client count %d", maxWidth, clients)
	}
	if waits != flushedStates || flushedStates == 0 {
		t.Fatalf("accounting mismatch: %d waits vs %d flushed states", waits, flushedStates)
	}
}

// TestBatcherDwellBound pins the liveness guarantee: a single submitter that
// never attached is answered on the dwell timer, within a margin of it.
func TestBatcherDwellBound(t *testing.T) {
	agent := NewAgent(Config{Window: 2, Layers: 2, Hidden: 16, Seed: 9})
	states := collectStates(t, agent, taskgraph.Cholesky)
	dwell := 2 * time.Millisecond
	b := NewBatcher(agent, PrecisionFloat64, BatcherConfig{MaxWidth: 64, Dwell: dwell})
	ref := newServeEngine(agent, PrecisionFloat64)
	wantLP, wantIdle := ref.forward(states[0])

	start := time.Now()
	lp, idle := b.Forward(states[0], nil)
	elapsed := time.Since(start)
	if elapsed > 100*dwell {
		t.Fatalf("lone request waited %s, dwell is %s", elapsed, dwell)
	}
	if idle != wantIdle || len(lp) != len(wantLP) {
		t.Fatalf("dwell-flushed result has wrong shape")
	}
	for i := range wantLP {
		if math.Float64bits(lp[i]) != math.Float64bits(wantLP[i]) {
			t.Fatalf("dwell-flushed logprob[%d] = %v vs %v", i, lp[i], wantLP[i])
		}
	}
}

// TestBatcherAttachedFlushImmediate pins the zero-latency property at one
// client: with exactly one attached rollout every Forward flushes itself
// immediately (flush width 1, no dwell wait).
func TestBatcherAttachedFlushImmediate(t *testing.T) {
	agent := NewAgent(Config{Window: 2, Layers: 2, Hidden: 16, Seed: 9})
	states := collectStates(t, agent, taskgraph.Cholesky)
	flushes := 0
	// A dwell of one minute: if any request waited for the timer the test
	// would hang well past the suite deadline instead of passing slowly.
	b := NewBatcher(agent, PrecisionFloat64, BatcherConfig{MaxWidth: 64, Dwell: time.Minute,
		OnFlush: func(w int) {
			if w != 1 {
				t.Errorf("flush width %d with a single attached client", w)
			}
			flushes++
		}})
	b.Attach()
	defer b.Detach()
	for _, es := range states[:10] {
		b.Forward(es, nil)
	}
	if flushes != 10 {
		t.Fatalf("%d flushes for 10 submits", flushes)
	}
}

// TestBatcherTrainingGuard: batched forwards have no tape, so wiring a
// batcher into a recording policy must panic.
func TestBatcherTrainingGuard(t *testing.T) {
	agent := NewAgent(Config{Window: 1, Layers: 1, Hidden: 8, Seed: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("UseBatcher on a recording policy did not panic")
		}
	}()
	p := NewTrainingPolicy(agent, rand.New(rand.NewSource(1)))
	p.UseBatcher(NewBatcher(agent, PrecisionFloat64, BatcherConfig{}))
}
