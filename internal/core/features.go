package core

import (
	"math"

	"readys/internal/nn"
	"readys/internal/platform"
	"readys/internal/sim"
	"readys/internal/taskgraph"
	"readys/internal/tensor"
)

// Per-node raw feature layout (§III-B, extended with explicit per-resource
// expected durations so the network can learn the unrelated-machines
// structure). All features are normalised to keep the representation
// transferable across problem sizes.
const (
	featSucc  = iota // |S(i)| / degreeNorm (clamped)
	featPred         // |P(i)| / degreeNorm (clamped)
	featType0        // one-hot kernel type
	featType1
	featType2
	featType3
	featReady     // 1 if the task is ready
	featRunning   // 1 if the task is currently executing
	featRemaining // estimated remaining expected time / maxE (running only)
	featF0        // descendant-type summary F(i)
	featF1
	featF2
	featF3
	featDurCPU // E(i, CPU) / maxE
	featDurGPU // E(i, GPU) / maxE

	numTaskFeatures
)

// Resource-context features, appended to every node row ("sub-DAG enriched
// with the computing resource state information", Fig. 2) and fed separately
// to the ∅-action head.
const (
	procIsCPU = iota // current processor type one-hot
	procIsGPU
	procFreeCPU  // fraction of CPUs currently free
	procFreeGPU  // fraction of GPUs currently free
	procWaitCPU  // min estimated wait over CPUs / maxE
	procWaitGPU  // min estimated wait over GPUs / maxE
	procReadyCnt // |ready| / window size

	NumProcFeatures
)

// Fault-state features (Config.FaultFeatures), appended after the base
// resource context. They expose exactly the state PR 5's fault model mutates
// — availability, speed degradation, and how often the world has shifted —
// so the agent can learn to route around outages instead of re-discovering
// them through stalled ECTs.
const (
	procUpFrac     = NumProcFeatures + iota // fraction of resources currently up (ResourceUp)
	procSpeed                               // SpeedFactor of the asking resource / speedNorm (clamped)
	procFaultEpoch                          // FaultEpoch / (FaultEpoch + faultEpochNorm) ∈ [0, 1)

	numFaultProcFeatures = iota
)

// speedNorm bounds the speed-factor feature (degrade factors in GeneratePlan
// stay well under this); faultEpochNorm soft-normalises the event counter.
const (
	speedNorm      = 4.0
	faultEpochNorm = 8.0
)

// NumNodeFeatures is the width of each node row: task features plus the
// broadcast resource context.
const NumNodeFeatures = numTaskFeatures + NumProcFeatures

// ProcFeatureWidth returns the resource-context width for the given
// fault-feature setting; NodeFeatureWidth the matching node-row width. The
// legacy constants equal the faultFeatures=false widths, so existing
// checkpoints keep their parameter layout bit-for-bit.
func ProcFeatureWidth(faultFeatures bool) int {
	if faultFeatures {
		return NumProcFeatures + numFaultProcFeatures
	}
	return NumProcFeatures
}

// NodeFeatureWidth returns the per-node feature width for the given
// fault-feature setting.
func NodeFeatureWidth(faultFeatures bool) int {
	return numTaskFeatures + ProcFeatureWidth(faultFeatures)
}

// degreeNorm bounds the degree features; factorisation DAGs have per-node
// degrees well below this for the sizes studied.
const degreeNorm = 12.0

// EncodedState is the network-ready representation of one scheduling
// decision: the windowed sub-DAG with features and normalised adjacency, the
// rows corresponding to ready tasks (the candidate actions) and the resource
// context.
type EncodedState struct {
	// Nodes lists the window's task IDs, sorted; row i of X describes
	// Nodes[i].
	Nodes []int
	// X is the len(Nodes) x NumNodeFeatures feature matrix.
	X *tensor.Matrix
	// Norm is the normalised adjacency of the induced sub-DAG in CSR form
	// (DAG windows are sparse: O(E) nonzeros against n² dense entries).
	Norm *tensor.Sparse
	// ReadyRows/ReadyTasks map candidate actions to rows and task IDs.
	ReadyRows  []int
	ReadyTasks []int
	// Proc is the 1 x NumProcFeatures resource-context vector.
	Proc *tensor.Matrix
	// AllowIdle reports whether the ∅ action is legal (at least one task is
	// running, so simulated time can advance).
	AllowIdle bool

	denseNorm *tensor.Matrix
}

// DenseNorm materialises Norm as a dense matrix, caching the result. Only the
// dense-propagation ablation path (core.Config.DenseProp) and benchmarks use
// it; the hot path multiplies Norm directly in CSR form.
func (e *EncodedState) DenseNorm() *tensor.Matrix {
	if e.denseNorm == nil {
		e.denseNorm = e.Norm.Dense()
	}
	return e.denseNorm
}

// NumActions returns the size of the action space of this state.
func (e *EncodedState) NumActions() int {
	n := len(e.ReadyRows)
	if e.AllowIdle {
		n++
	}
	return n
}

// Encode builds the EncodedState for a decision on the given resource. F is
// the per-task descendant feature matrix of the full DAG (computed once per
// episode with taskgraph.DescendantFeatures); w is the window depth. The
// GCN operator is the paper's symmetric normalisation; use EncodeWith for
// the directed ablation variant.
func Encode(s *sim.State, resource int, F [][taskgraph.NumKernels]float64, w int) *EncodedState {
	return EncodeWith(s, resource, F, w, false)
}

// EncodeWith is Encode with an explicit choice of propagation operator:
// directed selects the row-normalised downstream operator (see
// nn.DirectedNormalizedAdjacency).
func EncodeWith(s *sim.State, resource int, F [][taskgraph.NumKernels]float64, w int, directed bool) *EncodedState {
	return EncodeFault(s, resource, F, w, directed, false)
}

// EncodeFault is EncodeWith with an explicit fault-feature setting: when
// faultFeatures is true the resource context (and hence every node row) gains
// the fault-state block, widening rows to NodeFeatureWidth(true). With it
// false the encoding is bit-identical to EncodeWith — the flag-off inertness
// the checkpoint format relies on.
func EncodeFault(s *sim.State, resource int, F [][taskgraph.NumKernels]float64, w int, directed, faultFeatures bool) *EncodedState {
	g := s.Graph
	nodes := taskgraph.Window(g, s.Running, s.Ready, w)
	rowOf := make(map[int]int, len(nodes))
	for row, t := range nodes {
		rowOf[t] = row
	}
	maxE := s.MaxExpected()
	procWidth := ProcFeatureWidth(faultFeatures)

	proc := tensor.New(1, procWidth)
	fillProcVector(s, resource, maxE, len(nodes), faultFeatures, proc.Data)

	// The ∅ action is legal unless the engine is in a forced round: when
	// nothing is running and every resource idled, someone must act or time
	// cannot advance.
	x := tensor.New(len(nodes), numTaskFeatures+procWidth)
	es := &EncodedState{Nodes: nodes, X: x, Proc: proc, AllowIdle: !s.MustAct}
	for row, t := range nodes {
		rf := x.Row(row)
		fillStaticTaskFeatures(s, t, F, maxE, rf)
		if fillDynamicTaskFeatures(s, t, maxE, rf) {
			es.ReadyRows = append(es.ReadyRows, row)
			es.ReadyTasks = append(es.ReadyTasks, t)
		}
		copy(rf[numTaskFeatures:], proc.Data)
	}

	// Induced sub-DAG adjacency, symmetrically normalised for the GCN.
	succ := make([][]int, len(nodes))
	for row, t := range nodes {
		for _, j := range g.Succ[t] {
			if jr, ok := rowOf[j]; ok {
				succ[row] = append(succ[row], jr)
			}
		}
	}
	if directed {
		es.Norm = nn.DirectedNormalizedAdjacency(len(nodes), succ)
	} else {
		es.Norm = nn.NormalizedAdjacency(len(nodes), succ)
	}
	return es
}

// fillProcVector fills the resource-context vector for a decision on the
// given resource. data must have length ProcFeatureWidth(faultFeatures) and is
// zeroed first, so the same buffer can be reused across decisions. It is the
// single implementation shared by the full rebuild (EncodeFault) and the
// incremental encoder — sharing is what makes the two paths bit-identical.
func fillProcVector(s *sim.State, resource int, maxE float64, numNodes int, faultFeatures bool, data []float64) {
	for i := range data {
		data[i] = 0
	}
	if s.Platform.Resources[resource].Type == platform.CPU {
		data[procIsCPU] = 1
	} else {
		data[procIsGPU] = 1
	}
	var freeCPU, freeGPU, numCPU, numGPU int
	waitCPU, waitGPU := math.Inf(1), math.Inf(1)
	for r, res := range s.Platform.Resources {
		wait := s.EstTimeUntilFree(r)
		if res.Type == platform.CPU {
			numCPU++
			if s.IsFree(r) {
				freeCPU++
			}
			if wait < waitCPU {
				waitCPU = wait
			}
		} else {
			numGPU++
			if s.IsFree(r) {
				freeGPU++
			}
			if wait < waitGPU {
				waitGPU = wait
			}
		}
	}
	if numCPU > 0 {
		data[procFreeCPU] = float64(freeCPU) / float64(numCPU)
		data[procWaitCPU] = waitCPU / maxE
	}
	if numGPU > 0 {
		data[procFreeGPU] = float64(freeGPU) / float64(numGPU)
		data[procWaitGPU] = waitGPU / maxE
	}
	if numNodes > 0 {
		data[procReadyCnt] = float64(len(s.Ready)) / float64(numNodes)
	}
	if faultFeatures {
		var up int
		for r := range s.Platform.Resources {
			if s.ResourceUp(r) {
				up++
			}
		}
		data[procUpFrac] = float64(up) / float64(s.Platform.Size())
		data[procSpeed] = clamp01(s.SpeedFactor(resource) / speedNorm)
		data[procFaultEpoch] = float64(s.FaultEpoch) / (float64(s.FaultEpoch) + faultEpochNorm)
	}
}

// fillStaticTaskFeatures fills the columns of rf that change only when the
// graph itself changes (GraphEpoch): degrees, kernel one-hot, descendant
// summary, and expected durations. rf must be zeroed beforehand.
func fillStaticTaskFeatures(s *sim.State, t int, F [][taskgraph.NumKernels]float64, maxE float64, rf []float64) {
	g := s.Graph
	task := g.Tasks[t]
	rf[featSucc] = clamp01(float64(len(g.Succ[t])) / degreeNorm)
	rf[featPred] = clamp01(float64(len(g.Pred[t])) / degreeNorm)
	rf[featType0+int(task.Kernel)] = 1
	for k := 0; k < taskgraph.NumKernels; k++ {
		rf[featF0+k] = F[t][k]
	}
	tt := s.TaskTiming(t)
	rf[featDurCPU] = tt.ExpectedDuration(task.Kernel, platform.CPU) / maxE
	rf[featDurGPU] = tt.ExpectedDuration(task.Kernel, platform.GPU) / maxE
}

// fillDynamicTaskFeatures overwrites the decision-varying columns of rf
// (ready/running/remaining) and reports whether the task is ready — i.e.
// whether it is a candidate action of this decision.
func fillDynamicTaskFeatures(s *sim.State, t int, maxE float64, rf []float64) bool {
	rf[featReady], rf[featRunning], rf[featRemaining] = 0, 0, 0
	if s.Started[t] && !s.Done[t] {
		rf[featRunning] = 1
		r := s.AssignedTo[t]
		// Speed-aware under fault injection (exact multiply by 1 without).
		e := s.EstTaskDuration(t, r)
		rem := s.StartTime[t] + e - s.Now
		if rem < 0 {
			rem = 0
		}
		rf[featRemaining] = rem / maxE
		return false
	}
	if s.PredLeft[t] == 0 && !s.Started[t] {
		rf[featReady] = 1
		return true
	}
	return false
}

func clamp01(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < 0 {
		return 0
	}
	return v
}
