package fleet

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestPrometheusGoldenExposition pins the exact text exposition of the fleet
// metric set after a fixed synthetic event sequence. The fleet gauges are
// plain event-updated gauges (not GaugeFuncs) precisely so this output is a
// pure function of the event history; any drift in metric names, labels,
// bucket layouts or ordering fails the golden comparison.
func TestPrometheusGoldenExposition(t *testing.T) {
	m := NewMetrics()

	// A deterministic history: two submissions (one train, one eval), one
	// dedup hit, one worker registering, one lease (train starts running),
	// a lease expiry + retry, a completion, and two instrumented requests.
	m.submitted.With("train").Inc()
	m.submitted.With("eval").Inc()
	m.queueDepth.Add(2)
	m.dedupHits.Inc()
	m.workers.Set(1)
	m.queueDepth.Add(-1)
	m.runningJobs.Add(1)
	m.leaseExpirations.Inc()
	m.retries.Inc()
	m.runningJobs.Add(-1)
	m.queueDepth.Add(1)
	m.queueDepth.Add(-1)
	m.runningJobs.Add(1)
	m.runningJobs.Add(-1)
	m.completed.With("train").Inc()
	m.duration.With("train").Observe(2.5)
	m.failed.With("eval").Inc()
	m.artifactBytes.Add(1024)
	m.walCompactions.Inc()
	m.ObserveHTTP("lease", 3*time.Millisecond, false)
	m.ObserveHTTP("complete", 40*time.Millisecond, true)

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	want := `# HELP fleet_queue_depth Jobs waiting in the dispatcher queue.
# TYPE fleet_queue_depth gauge
fleet_queue_depth 1
# HELP fleet_jobs_running Jobs currently held under a worker lease.
# TYPE fleet_jobs_running gauge
fleet_jobs_running 0
# HELP fleet_workers_registered Workers currently registered.
# TYPE fleet_workers_registered gauge
fleet_workers_registered 1
# HELP fleet_lease_expirations_total Leases expired after missed heartbeats.
# TYPE fleet_lease_expirations_total counter
fleet_lease_expirations_total 1
# HELP fleet_job_retries_total Jobs requeued after a lease expiry or worker failure.
# TYPE fleet_job_retries_total counter
fleet_job_retries_total 1
# HELP fleet_dedup_hits_total Job submissions answered by an existing job with the same spec hash.
# TYPE fleet_dedup_hits_total counter
fleet_dedup_hits_total 1
# HELP fleet_jobs_submitted_total Jobs accepted into the queue by type.
# TYPE fleet_jobs_submitted_total counter
fleet_jobs_submitted_total{type="eval"} 1
fleet_jobs_submitted_total{type="train"} 1
# HELP fleet_jobs_completed_total Jobs completed by type.
# TYPE fleet_jobs_completed_total counter
fleet_jobs_completed_total{type="train"} 1
# HELP fleet_jobs_failed_total Jobs terminally failed (retry budget spent) by type.
# TYPE fleet_jobs_failed_total counter
fleet_jobs_failed_total{type="eval"} 1
# HELP fleet_job_duration_seconds Wall-clock from first lease to completion by type.
# TYPE fleet_job_duration_seconds histogram
fleet_job_duration_seconds_bucket{type="train",le="0.1"} 0
fleet_job_duration_seconds_bucket{type="train",le="0.5"} 0
fleet_job_duration_seconds_bucket{type="train",le="1"} 0
fleet_job_duration_seconds_bucket{type="train",le="5"} 1
fleet_job_duration_seconds_bucket{type="train",le="15"} 1
fleet_job_duration_seconds_bucket{type="train",le="60"} 1
fleet_job_duration_seconds_bucket{type="train",le="300"} 1
fleet_job_duration_seconds_bucket{type="train",le="900"} 1
fleet_job_duration_seconds_bucket{type="train",le="3600"} 1
fleet_job_duration_seconds_bucket{type="train",le="14400"} 1
fleet_job_duration_seconds_bucket{type="train",le="+Inf"} 1
fleet_job_duration_seconds_sum{type="train"} 2.5
fleet_job_duration_seconds_count{type="train"} 1
# HELP fleet_artifact_bytes_total Bytes accepted into the artifact store.
# TYPE fleet_artifact_bytes_total counter
fleet_artifact_bytes_total 1024
# HELP fleet_wal_compactions_total WAL compaction passes.
# TYPE fleet_wal_compactions_total counter
fleet_wal_compactions_total 1
# HELP fleet_http_requests_total HTTP requests by endpoint.
# TYPE fleet_http_requests_total counter
fleet_http_requests_total{endpoint="complete"} 1
fleet_http_requests_total{endpoint="lease"} 1
# HELP fleet_http_errors_total HTTP responses with status >= 400 by endpoint.
# TYPE fleet_http_errors_total counter
fleet_http_errors_total{endpoint="complete"} 1
fleet_http_errors_total{endpoint="lease"} 0
# HELP fleet_http_latency_ms Request latency in milliseconds by endpoint.
# TYPE fleet_http_latency_ms histogram
fleet_http_latency_ms_bucket{endpoint="complete",le="1"} 0
fleet_http_latency_ms_bucket{endpoint="complete",le="2"} 0
fleet_http_latency_ms_bucket{endpoint="complete",le="5"} 0
fleet_http_latency_ms_bucket{endpoint="complete",le="10"} 0
fleet_http_latency_ms_bucket{endpoint="complete",le="25"} 0
fleet_http_latency_ms_bucket{endpoint="complete",le="50"} 1
fleet_http_latency_ms_bucket{endpoint="complete",le="100"} 1
fleet_http_latency_ms_bucket{endpoint="complete",le="250"} 1
fleet_http_latency_ms_bucket{endpoint="complete",le="500"} 1
fleet_http_latency_ms_bucket{endpoint="complete",le="1000"} 1
fleet_http_latency_ms_bucket{endpoint="complete",le="+Inf"} 1
fleet_http_latency_ms_sum{endpoint="complete"} 40
fleet_http_latency_ms_count{endpoint="complete"} 1
fleet_http_latency_ms_bucket{endpoint="lease",le="1"} 0
fleet_http_latency_ms_bucket{endpoint="lease",le="2"} 0
fleet_http_latency_ms_bucket{endpoint="lease",le="5"} 1
fleet_http_latency_ms_bucket{endpoint="lease",le="10"} 1
fleet_http_latency_ms_bucket{endpoint="lease",le="25"} 1
fleet_http_latency_ms_bucket{endpoint="lease",le="50"} 1
fleet_http_latency_ms_bucket{endpoint="lease",le="100"} 1
fleet_http_latency_ms_bucket{endpoint="lease",le="250"} 1
fleet_http_latency_ms_bucket{endpoint="lease",le="500"} 1
fleet_http_latency_ms_bucket{endpoint="lease",le="1000"} 1
fleet_http_latency_ms_bucket{endpoint="lease",le="+Inf"} 1
fleet_http_latency_ms_sum{endpoint="lease"} 3
fleet_http_latency_ms_count{endpoint="lease"} 1
`
	if got != want {
		t.Fatalf("golden exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s\n--- first diff ---\n%s",
			got, want, firstDiff(got, want))
	}
}

// firstDiff pinpoints the first differing line of two multi-line strings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: got %q | want %q", i+1, al[i], bl[i])
		}
	}
	return "length mismatch"
}
