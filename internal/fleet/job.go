// Package fleet is the distributed dispatch layer of the READYS stack: a
// dispatcher daemon owning a durable priority queue of typed experiment jobs
// (training runs, evaluation sweeps, figure regeneration) and a fleet of
// worker daemons that pull jobs under time-bounded leases, stream progress
// through heartbeats, and upload their results to a content-addressed
// artifact store.
//
// The design is the standard shape of a fault-tolerant training/inference
// fleet:
//
//   - the queue is a JSONL write-ahead log replayed on restart (and compacted
//     in place), so a dispatcher crash loses no acknowledged job;
//   - workers hold jobs under leases with heartbeats; a missed heartbeat
//     expires the lease and requeues the job with exponential backoff, the
//     failing worker excluded, until a bounded retry budget is spent;
//   - jobs are deduplicated by the canonical spec hash of internal/exp, so
//     resubmitting the paper grid is idempotent;
//   - artifacts (agent checkpoints, per-episode history JSONL, result tables)
//     are stored content-addressed by SHA-256, and a completed training job
//     can publish its checkpoint straight into internal/serve's model
//     registry, closing the train → serve loop.
//
// Everything is stdlib-only, like the rest of the repository.
package fleet

import (
	"encoding/json"
	"fmt"
	"time"

	"readys/internal/exp"
)

// JobType discriminates the payload of a JobSpec.
type JobType string

// The job types the fleet executes.
const (
	JobTrain  JobType = "train"  // one exp.TrainAgentWith run
	JobEval   JobType = "eval"   // one exp.EvalSpec sweep
	JobFigure JobType = "figure" // one figure regeneration by name
)

// TrainSpec is the payload of a train job.
type TrainSpec struct {
	Agent exp.AgentSpec `json:"agent"`
	// Episodes is the training budget; 0 selects the size-scaled default
	// (exp.EpisodesFor).
	Episodes int `json:"episodes,omitempty"`
}

// EpisodeBudget resolves the effective episode count.
func (t TrainSpec) EpisodeBudget() int {
	if t.Episodes > 0 {
		return t.Episodes
	}
	return exp.EpisodesFor(t.Agent.Kind, t.Agent.T)
}

// FigureSpec is the payload of a figure job.
type FigureSpec struct {
	// Name is one of exp.FigureNames(): "figure3" … "figure7".
	Name string `json:"name"`
}

// JobSpec is the typed, client-submitted description of one unit of work.
// Exactly one payload field matching Type must be set.
type JobSpec struct {
	Type JobType `json:"type"`
	// Priority orders the queue: higher runs first; ties run in submission
	// order. The paper grid submits training at high priority so evaluation
	// sweeps find their checkpoints published.
	Priority int           `json:"priority,omitempty"`
	Train    *TrainSpec    `json:"train,omitempty"`
	Eval     *exp.EvalSpec `json:"eval,omitempty"`
	Figure   *FigureSpec   `json:"figure,omitempty"`
}

// Validate rejects malformed specs before they reach the queue.
func (s JobSpec) Validate() error {
	set := 0
	if s.Train != nil {
		set++
	}
	if s.Eval != nil {
		set++
	}
	if s.Figure != nil {
		set++
	}
	if set != 1 {
		return fmt.Errorf("fleet: job spec must set exactly one payload, got %d", set)
	}
	switch s.Type {
	case JobTrain:
		if s.Train == nil {
			return fmt.Errorf("fleet: type %q without train payload", s.Type)
		}
		if s.Train.Agent.T < 1 || s.Train.Agent.NumCPU+s.Train.Agent.NumGPU < 1 {
			return fmt.Errorf("fleet: train spec needs T >= 1 and at least one resource")
		}
	case JobEval:
		if s.Eval == nil {
			return fmt.Errorf("fleet: type %q without eval payload", s.Type)
		}
		if err := s.Eval.Validate(); err != nil {
			return err
		}
	case JobFigure:
		if s.Figure == nil {
			return fmt.Errorf("fleet: type %q without figure payload", s.Type)
		}
		found := false
		for _, n := range exp.FigureNames() {
			if n == s.Figure.Name {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("fleet: unknown figure %q", s.Figure.Name)
		}
	default:
		return fmt.Errorf("fleet: unknown job type %q", s.Type)
	}
	return nil
}

// Hash is the canonical dedup identity of the spec: the exp-level spec hash
// under a per-type domain. Priority is deliberately excluded — resubmitting
// the same work at a different priority must dedup onto the existing job.
func (s JobSpec) Hash() string {
	switch s.Type {
	case JobTrain:
		return string(JobTrain) + ":" + s.Train.Agent.Hash() + fmt.Sprintf(":ep%d", s.Train.EpisodeBudget())
	case JobEval:
		return string(JobEval) + ":" + s.Eval.Hash()
	case JobFigure:
		return string(JobFigure) + ":" + s.Figure.Name
	}
	return "invalid"
}

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle. pending → running → done, with running → pending again on
// lease expiry or worker failure (bounded by MaxAttempts, then failed).
const (
	StatePending JobState = "pending"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Progress is the episode-level statistics a worker piggy-backs on its
// heartbeats for a running training job.
type Progress struct {
	Episode  int     `json:"episode"`
	Episodes int     `json:"episodes"`
	Reward   float64 `json:"reward"`
	Makespan float64 `json:"makespan"`
}

// Job is one queue entry: the spec plus all dispatcher-owned lifecycle
// state. The full record is what the WAL persists on every transition.
type Job struct {
	ID   string  `json:"id"`
	Hash string  `json:"hash"`
	Spec JobSpec `json:"spec"`

	// TraceID is the distributed-trace identity the job's whole lifetime is
	// recorded under: adopted from the submitter's X-Trace-ID header when
	// present, minted otherwise. SpanID is the dispatcher-side job span;
	// worker execution spans name it as their parent, which is what lets
	// obs.MergeTraces stitch dispatcher and worker exports into one timeline.
	// Both persist in the WAL so a replayed job keeps its trace. Empty on
	// records written before tracing existed (tolerated everywhere).
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`

	State    JobState `json:"state"`
	Seq      int64    `json:"seq"`      // submission order, tie-breaker within a priority
	Attempts int      `json:"attempts"` // lease grants so far

	// Worker is the current lease holder (running jobs only).
	Worker string `json:"worker,omitempty"`
	// Excluded lists workers that held an expired or failed lease on this
	// job; the queue will not lease it to them again.
	Excluded []string `json:"excluded_workers,omitempty"`
	// NotBefore delays re-leasing after a failure (exponential backoff).
	NotBefore time.Time `json:"not_before,omitempty"`

	// Error is the last failure message (failed jobs, or the reason behind
	// the most recent requeue).
	Error string `json:"error,omitempty"`
	// Artifacts maps logical artifact names ("checkpoint", "history",
	// "result") to content digests in the dispatcher's artifact store.
	Artifacts map[string]string `json:"artifacts,omitempty"`
	// Result is a small job-type-specific summary returned by the worker.
	Result json.RawMessage `json:"result,omitempty"`
	// Progress is the latest heartbeat-reported training progress.
	Progress *Progress `json:"progress,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
}

// excludes reports whether the job must not be leased to worker.
func (j *Job) excludes(worker string) bool {
	for _, w := range j.Excluded {
		if w == worker {
			return true
		}
	}
	return false
}

// clone returns a deep copy safe to hand to HTTP encoding outside the
// dispatcher lock.
func (j *Job) clone() *Job {
	c := *j
	c.Excluded = append([]string(nil), j.Excluded...)
	if j.Artifacts != nil {
		c.Artifacts = make(map[string]string, len(j.Artifacts))
		for k, v := range j.Artifacts {
			c.Artifacts[k] = v
		}
	}
	if j.Result != nil {
		c.Result = append(json.RawMessage(nil), j.Result...)
	}
	if j.Progress != nil {
		p := *j.Progress
		c.Progress = &p
	}
	return &c
}
