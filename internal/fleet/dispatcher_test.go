package fleet

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"readys/internal/exp"
	"readys/internal/taskgraph"
)

// tinyAgentSpec is the smallest trainable architecture, used throughout the
// fleet tests so train jobs finish in milliseconds.
func tinyAgentSpec() exp.AgentSpec {
	spec := exp.DefaultAgentSpec(taskgraph.Cholesky, 2, 1, 1)
	spec.Window, spec.Layers, spec.Hidden = 1, 1, 8
	return spec
}

// trainJob is a tiny train job spec (3 episodes).
func trainJob(priority int) JobSpec {
	return JobSpec{
		Type:     JobTrain,
		Priority: priority,
		Train:    &TrainSpec{Agent: tinyAgentSpec(), Episodes: 3},
	}
}

// figureJob is the cheapest distinct-hash filler job for queue tests (it is
// never executed there).
func figureJob(name string, priority int) JobSpec {
	return JobSpec{Type: JobFigure, Priority: priority, Figure: &FigureSpec{Name: name}}
}

// newTestDispatcher builds a dispatcher on a temp directory. mutate, if
// non-nil, adjusts the config before construction.
func newTestDispatcher(t *testing.T, mutate func(*Config)) *Dispatcher {
	t.Helper()
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.WALPath = filepath.Join(dir, "queue.wal")
	cfg.ArtifactsDir = filepath.Join(dir, "artifacts")
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := NewDispatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestSubmitValidates(t *testing.T) {
	d := newTestDispatcher(t, nil)
	bad := []JobSpec{
		{},               // no payload
		{Type: JobTrain}, // type without payload
		{Type: JobFigure, Figure: &FigureSpec{Name: "figure99"}},                    // unknown figure
		{Type: JobTrain, Train: &TrainSpec{}, Figure: &FigureSpec{Name: "figure7"}}, // two payloads
		{Type: "bake", Figure: &FigureSpec{Name: "figure7"}},                        // unknown type
	}
	for i, spec := range bad {
		if _, _, err := d.Submit(spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}

func TestSubmitDedupsBySpecHash(t *testing.T) {
	d := newTestDispatcher(t, nil)
	j1, dup, err := d.Submit(trainJob(0))
	if err != nil || dup {
		t.Fatalf("first submit = (dup=%v, err=%v)", dup, err)
	}
	// Same work at a different priority must dedup onto the existing job.
	j2, dup, err := d.Submit(trainJob(99))
	if err != nil {
		t.Fatal(err)
	}
	if !dup || j2.ID != j1.ID {
		t.Fatalf("resubmit returned job %s (dup=%v), want dedup onto %s", j2.ID, dup, j1.ID)
	}
	if got := d.Metrics().dedupHits.Value(); got != 1 {
		t.Fatalf("dedup counter = %d, want 1", got)
	}
	// A different spec is a different job.
	j3, dup, err := d.Submit(figureJob("figure7", 0))
	if err != nil || dup {
		t.Fatalf("distinct submit = (dup=%v, err=%v)", dup, err)
	}
	if j3.ID == j1.ID {
		t.Fatal("distinct specs share a job ID")
	}
}

func TestLeaseOrderPriorityThenSubmission(t *testing.T) {
	d := newTestDispatcher(t, nil)
	low, _, _ := d.Submit(figureJob("figure3", 0))
	mid1, _, _ := d.Submit(figureJob("figure4", 5))
	mid2, _, _ := d.Submit(figureJob("figure5", 5))
	high, _, _ := d.Submit(figureJob("figure6", 10))

	w := d.Register("order")
	var got []string
	for {
		j, _, err := d.Lease(w.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j == nil {
			break
		}
		got = append(got, j.ID)
	}
	want := []string{high.ID, mid1.ID, mid2.ID, low.ID}
	if len(got) != len(want) {
		t.Fatalf("leased %d jobs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lease order %v, want %v", got, want)
		}
	}
}

func TestLeaseRequiresRegistration(t *testing.T) {
	d := newTestDispatcher(t, nil)
	if _, _, err := d.Lease("w9999-ghost"); err != ErrUnknownWorker {
		t.Fatalf("lease by unregistered worker: %v, want ErrUnknownWorker", err)
	}
}

func TestFailRequeuesWithBackoffThenTerminal(t *testing.T) {
	d := newTestDispatcher(t, func(c *Config) {
		c.MaxAttempts = 2
		c.RetryBackoff = time.Hour // visible, never elapses in-test
	})
	job, _, err := d.Submit(figureJob("figure7", 0))
	if err != nil {
		t.Fatal(err)
	}
	w1 := d.Register("w1")
	w2 := d.Register("w2")

	leased, _, err := d.Lease(w1.ID)
	if err != nil || leased == nil || leased.ID != job.ID {
		t.Fatalf("lease = (%v, %v)", leased, err)
	}
	if err := d.Fail(w1.ID, job.ID, "boom"); err != nil {
		t.Fatal(err)
	}
	j, _ := d.Job(job.ID)
	if j.State != StatePending {
		t.Fatalf("after first failure state = %q, want pending", j.State)
	}
	if !j.excludes(w1.ID) {
		t.Fatalf("failing worker %s not excluded: %v", w1.ID, j.Excluded)
	}
	if time.Until(j.NotBefore) < 30*time.Minute {
		t.Fatalf("backoff NotBefore = %s, want ~1h out", j.NotBefore)
	}
	// The excluded worker never sees the job again; a fresh worker does, but
	// only once the backoff has elapsed.
	if got, _, _ := d.Lease(w1.ID); got != nil {
		t.Fatalf("excluded worker releases %s", got.ID)
	}
	if got, _, _ := d.Lease(w2.ID); got != nil {
		t.Fatalf("backoff not honoured: leased %s", got.ID)
	}

	// Clear the backoff and spend the final attempt: the job fails terminally
	// and the hash index forgets it, so resubmission makes a fresh job.
	d.mu.Lock()
	d.jobs[job.ID].NotBefore = time.Time{}
	d.mu.Unlock()
	if got, _, _ := d.Lease(w2.ID); got == nil || got.ID != job.ID {
		t.Fatalf("second attempt not leased: %v", got)
	}
	if err := d.Fail(w2.ID, job.ID, "boom again"); err != nil {
		t.Fatal(err)
	}
	j, _ = d.Job(job.ID)
	if j.State != StateFailed {
		t.Fatalf("after retry budget spent state = %q, want failed", j.State)
	}
	if got := d.Metrics().retries.Value(); got != 1 {
		t.Fatalf("retry counter = %d, want 1 (terminal failure is not a retry)", got)
	}
	fresh, dup, err := d.Submit(figureJob("figure7", 0))
	if err != nil || dup {
		t.Fatalf("resubmit after terminal failure = (dup=%v, err=%v)", dup, err)
	}
	if fresh.ID == job.ID {
		t.Fatal("terminally failed job answered the resubmission")
	}
}

// TestLoneWorkerRetriesAfterTransientFailure pins the single-worker escape
// hatch: exclusion is ignored once every registered worker is on the job's
// excluded list, so a lone worker's transient failure (e.g. a failed artifact
// upload) does not strand the job in pending with attempts to spare.
func TestLoneWorkerRetriesAfterTransientFailure(t *testing.T) {
	d := newTestDispatcher(t, func(c *Config) {
		c.MaxAttempts = 3
		c.RetryBackoff = time.Millisecond
	})
	job, _, err := d.Submit(figureJob("figure7", 0))
	if err != nil {
		t.Fatal(err)
	}
	w := d.Register("loner")
	leased, _, err := d.Lease(w.ID)
	if err != nil || leased == nil {
		t.Fatalf("lease = (%v, %v)", leased, err)
	}
	if err := d.Fail(w.ID, job.ID, "transient upload failure"); err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	d.jobs[job.ID].NotBefore = time.Time{} // skip the backoff wait
	d.mu.Unlock()

	retried, _, err := d.Lease(w.ID)
	if err != nil {
		t.Fatal(err)
	}
	if retried == nil || retried.ID != job.ID {
		t.Fatalf("lone worker not re-leased its own failed job: %v", retried)
	}
	digest, err := d.Store().Put([]byte("rows\n"))
	if err != nil {
		t.Fatal(err)
	}
	done, err := d.Complete(w.ID, job.ID, map[string]string{ArtifactResult: digest}, nil)
	if err != nil || done.State != StateDone {
		t.Fatalf("retry completion = (%v, %v)", done, err)
	}
	// With a second worker registered, exclusion applies again.
	job2, _, _ := d.Submit(figureJob("figure3", 0))
	w2 := d.Register("second")
	if leased, _, _ = d.Lease(w.ID); leased == nil || leased.ID != job2.ID {
		t.Fatalf("lease = %v, want %s", leased, job2.ID)
	}
	if err := d.Fail(w.ID, job2.ID, "boom"); err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	d.jobs[job2.ID].NotBefore = time.Time{}
	d.mu.Unlock()
	if got, _, _ := d.Lease(w.ID); got != nil {
		t.Fatalf("excluded worker re-leased %s despite an eligible survivor", got.ID)
	}
	if got, _, _ := d.Lease(w2.ID); got == nil || got.ID != job2.ID {
		t.Fatalf("survivor not leased the job: %v", got)
	}
}

// TestCompleteMissingArtifactIsClientError pins the sentinel: citing a digest
// that was never uploaded refuses the completion with ErrArtifactMissing and
// leaves the lease (and job state) intact so the worker can upload and retry.
func TestCompleteMissingArtifactIsClientError(t *testing.T) {
	d := newTestDispatcher(t, nil)
	job, _, _ := d.Submit(figureJob("figure7", 0))
	w := d.Register("uploader")
	if leased, _, _ := d.Lease(w.ID); leased == nil {
		t.Fatal("lease failed")
	}
	bogus := map[string]string{ArtifactResult: "not-a-digest"}
	if _, err := d.Complete(w.ID, job.ID, bogus, nil); !errors.Is(err, ErrArtifactMissing) {
		t.Fatalf("complete with bogus digest: %v, want ErrArtifactMissing", err)
	}
	j, _ := d.Job(job.ID)
	if j.State != StateRunning {
		t.Fatalf("job state after refused completion = %q, want running", j.State)
	}
	digest, err := d.Store().Put([]byte("rows\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Complete(w.ID, job.ID, map[string]string{ArtifactResult: digest}, nil); err != nil {
		t.Fatalf("retry after upload: %v", err)
	}
}

func TestLeaseExpiryRequeues(t *testing.T) {
	d := newTestDispatcher(t, func(c *Config) {
		c.LeaseTTL = 30 * time.Millisecond
		c.SweepInterval = 5 * time.Millisecond
		c.RetryBackoff = time.Millisecond
	})
	job, _, err := d.Submit(figureJob("figure7", 0))
	if err != nil {
		t.Fatal(err)
	}
	w := d.Register("mortal")
	if leased, _, _ := d.Lease(w.ID); leased == nil {
		t.Fatal("lease failed")
	}
	// No heartbeat: the sweeper must expire the lease and requeue.
	deadline := time.Now().Add(2 * time.Second)
	for {
		j, _ := d.Job(job.ID)
		if j.State == StatePending {
			if !j.excludes(w.ID) {
				t.Fatalf("expired worker not excluded: %v", j.Excluded)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never expired; job state %q", j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := d.Metrics().leaseExpirations.Value(); got == 0 {
		t.Fatal("lease expiration not counted")
	}
	// The expired worker's heartbeat and completion must be rejected.
	if err := d.Heartbeat(w.ID, job.ID, nil); err != ErrLeaseLost {
		t.Fatalf("zombie heartbeat: %v, want ErrLeaseLost", err)
	}
	if _, err := d.Complete(w.ID, job.ID, nil, nil); err != ErrLeaseLost {
		t.Fatalf("zombie completion: %v, want ErrLeaseLost", err)
	}
}

func TestHeartbeatExtendsLeaseAndRecordsProgress(t *testing.T) {
	d := newTestDispatcher(t, func(c *Config) {
		c.LeaseTTL = 60 * time.Millisecond
		c.SweepInterval = 10 * time.Millisecond
	})
	job, _, _ := d.Submit(figureJob("figure7", 0))
	w := d.Register("beater")
	if leased, _, _ := d.Lease(w.ID); leased == nil {
		t.Fatal("lease failed")
	}
	// Heartbeat well past the original TTL: the lease must stay alive.
	for i := 0; i < 10; i++ {
		time.Sleep(20 * time.Millisecond)
		if err := d.Heartbeat(w.ID, job.ID, &Progress{Episode: i + 1, Episodes: 10}); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	j, _ := d.Job(job.ID)
	if j.State != StateRunning {
		t.Fatalf("state = %q after heartbeats, want running", j.State)
	}
	if j.Progress == nil || j.Progress.Episode != 10 {
		t.Fatalf("progress not recorded: %+v", j.Progress)
	}
}

func TestCompleteVerifiesArtifactsExist(t *testing.T) {
	d := newTestDispatcher(t, nil)
	job, _, _ := d.Submit(figureJob("figure7", 0))
	w := d.Register("uploader")
	if leased, _, _ := d.Lease(w.ID); leased == nil {
		t.Fatal("lease failed")
	}
	missing := map[string]string{ArtifactResult: exp.HashBytes([]byte("never uploaded"))}
	if _, err := d.Complete(w.ID, job.ID, missing, nil); err == nil {
		t.Fatal("completion with an unuploaded artifact accepted")
	}
	digest, err := d.Store().Put([]byte("the result"))
	if err != nil {
		t.Fatal(err)
	}
	done, err := d.Complete(w.ID, job.ID, map[string]string{ArtifactResult: digest}, json.RawMessage(`{"rows":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone || done.Artifacts[ArtifactResult] != digest {
		t.Fatalf("completed job = %+v", done)
	}
}

func TestDeregisterRequeuesHeldLease(t *testing.T) {
	d := newTestDispatcher(t, func(c *Config) { c.RetryBackoff = time.Millisecond })
	job, _, _ := d.Submit(figureJob("figure7", 0))
	w := d.Register("quitter")
	if leased, _, _ := d.Lease(w.ID); leased == nil {
		t.Fatal("lease failed")
	}
	if err := d.Deregister(w.ID); err != nil {
		t.Fatal(err)
	}
	j, _ := d.Job(job.ID)
	if j.State != StatePending {
		t.Fatalf("state after deregister = %q, want pending", j.State)
	}
}

// TestDispatcherCrashReplay restarts the dispatcher on the same WAL mid-queue
// and checks that no job is lost, duplicated or resurrected: pending stays
// pending, running is requeued (its lease died with the process), done stays
// done with its artifacts, and the dedup index still answers resubmissions.
func TestDispatcherCrashReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.WALPath = filepath.Join(dir, "queue.wal")
	cfg.ArtifactsDir = filepath.Join(dir, "artifacts")
	d, err := NewDispatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}

	pending, _, _ := d.Submit(figureJob("figure3", 1))
	running, _, _ := d.Submit(figureJob("figure4", 2))
	done, _, _ := d.Submit(figureJob("figure5", 3))
	w := d.Register("doomed")
	// Drain by priority: figure5 first (completed), then figure4 (left
	// running across the crash).
	first, _, _ := d.Lease(w.ID)
	if first == nil || first.ID != done.ID {
		t.Fatalf("first lease = %v, want %s", first, done.ID)
	}
	digest, err := d.Store().Put([]byte("figure5 rows"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Complete(w.ID, done.ID, map[string]string{ArtifactResult: digest}, nil); err != nil {
		t.Fatal(err)
	}
	second, _, _ := d.Lease(w.ID)
	if second == nil || second.ID != running.ID {
		t.Fatalf("second lease = %v, want %s", second, running.ID)
	}
	if err := d.Close(); err != nil { // crash: running job never reported back
		t.Fatal(err)
	}

	d2, err := NewDispatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	jobs := d2.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(jobs))
	}
	byID := map[string]*Job{}
	for _, j := range jobs {
		byID[j.ID] = j
	}
	if j := byID[pending.ID]; j == nil || j.State != StatePending {
		t.Fatalf("pending job replayed as %+v", byID[pending.ID])
	}
	if j := byID[running.ID]; j == nil || j.State != StatePending || j.Worker != "" {
		t.Fatalf("running job not requeued on replay: %+v", byID[running.ID])
	} else if j.Attempts != 1 {
		t.Fatalf("requeued job attempts = %d, want the granted attempt still charged", j.Attempts)
	}
	if j := byID[done.ID]; j == nil || j.State != StateDone || j.Artifacts[ArtifactResult] != digest {
		t.Fatalf("done job replayed as %+v", byID[done.ID])
	}
	if data, err := d2.Store().Get(digest); err != nil || string(data) != "figure5 rows" {
		t.Fatalf("artifact lost across restart: (%q, %v)", data, err)
	}
	// Dedup survives the restart: resubmitting completed work answers with
	// the done job; the new ID sequence does not collide with replayed IDs.
	again, dup, err := d2.Submit(figureJob("figure5", 3))
	if err != nil || !dup || again.ID != done.ID {
		t.Fatalf("post-restart dedup = (%v, dup=%v, err=%v)", again, dup, err)
	}
	freshSpec := figureJob("figure6", 0)
	fresh, dup, err := d2.Submit(freshSpec)
	if err != nil || dup {
		t.Fatal("fresh submission after restart failed")
	}
	if _, clash := byID[fresh.ID]; clash {
		t.Fatalf("new job reused replayed ID %s", fresh.ID)
	}

	// The requeued job is leasable again and completable by a new worker.
	w2 := d2.Register("survivor")
	got, _, err := d2.Lease(w2.ID)
	if err != nil || got == nil || got.ID != running.ID {
		t.Fatalf("survivor lease = (%v, %v), want requeued %s", got, err, running.ID)
	}
}

func TestWALCompactionTriggersOnChurn(t *testing.T) {
	d := newTestDispatcher(t, func(c *Config) { c.CompactMinRecords = 8 })
	w := d.Register("churner")
	// One job cycled through fail→resubmit repeatedly appends far more
	// records than live jobs, crossing the compaction threshold.
	for i := 0; i < 10; i++ {
		job, _, err := d.Submit(figureJob("figure7", 0))
		if err != nil {
			t.Fatal(err)
		}
		if job.State == StateFailed {
			t.Fatal("submitted job already failed")
		}
		d.mu.Lock()
		d.jobs[job.ID].NotBefore = time.Time{}
		d.mu.Unlock()
		leased, _, err := d.Lease(w.ID)
		if err != nil || leased == nil {
			t.Fatalf("lease %d = (%v, %v)", i, leased, err)
		}
		// Exhaust the attempt budget so the hash index frees the spec.
		for leased != nil {
			if err := d.Fail(w.ID, leased.ID, "churn"); err != nil {
				t.Fatal(err)
			}
			d.mu.Lock()
			j := d.jobs[leased.ID]
			j.NotBefore = time.Time{}
			j.Excluded = nil // let the same worker retry in this synthetic churn
			failed := j.State == StateFailed
			d.mu.Unlock()
			if failed {
				break
			}
			leased, _, err = d.Lease(w.ID)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := d.Metrics().walCompactions.Value(); got == 0 {
		t.Fatalf("no WAL compaction after churn (%d records, %d jobs)", d.wal.Records(), len(d.jobs))
	}
	// Compaction must preserve the live set.
	d.mu.Lock()
	live := len(d.jobs)
	d.mu.Unlock()
	if live != 10 {
		t.Fatalf("live jobs = %d, want 10", live)
	}
}

func TestPaperGridSubmissionIsIdempotent(t *testing.T) {
	d := newTestDispatcher(t, nil)
	grid := PaperGrid()
	for _, spec := range grid {
		if _, dup, err := d.Submit(spec); err != nil || dup {
			t.Fatalf("first grid pass: dup=%v err=%v for %s job", dup, err, spec.Type)
		}
	}
	for _, spec := range grid {
		if _, dup, err := d.Submit(spec); err != nil || !dup {
			t.Fatalf("second grid pass not deduplicated (dup=%v, err=%v)", dup, err)
		}
	}
	if got := int(d.Metrics().dedupHits.Value()); got != len(grid) {
		t.Fatalf("dedup hits = %d, want %d", got, len(grid))
	}
}
