package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// DirPublisher publishes completed training checkpoints into a model
// directory — the directory a readys-serve daemon (or eval workers with a
// shared filesystem) loads from. Writes are atomic (temp file + rename), so
// a concurrent reader never observes a torn checkpoint.
type DirPublisher struct {
	Dir string
}

// Publish writes data to Dir/base atomically. base must be a bare file name
// (the canonical model name); path traversal is rejected.
func (p DirPublisher) Publish(base string, data []byte) error {
	if base == "" || base != filepath.Base(base) || strings.ContainsAny(base, "/\\") {
		return fmt.Errorf("fleet: invalid publish name %q", base)
	}
	if err := os.MkdirAll(p.Dir, 0o755); err != nil {
		return fmt.Errorf("fleet: creating publish dir: %w", err)
	}
	tmp, err := os.CreateTemp(p.Dir, ".publish-*")
	if err != nil {
		return fmt.Errorf("fleet: staging %s: %w", base, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: writing %s: %w", base, err)
	}
	// Sync before rename so a crash just after publish cannot install a
	// zero-length or torn checkpoint under the canonical name.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: syncing %s: %w", base, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(p.Dir, base)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: installing %s: %w", base, err)
	}
	return nil
}
