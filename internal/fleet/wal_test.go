package fleet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func walJob(id string, seq int64, state JobState) *Job {
	return &Job{
		ID:    id,
		Hash:  "hash-" + id,
		Spec:  JobSpec{Type: JobFigure, Figure: &FigureSpec{Name: "figure7"}},
		State: state,
		Seq:   seq,
	}
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	w, jobs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("fresh WAL replayed %d jobs", len(jobs))
	}
	// j2 is written before j1 and then transitions twice: replay must apply
	// last-writer-wins per job and sort by Seq.
	for _, j := range []*Job{
		walJob("j2", 2, StatePending),
		walJob("j1", 1, StatePending),
		walJob("j2", 2, StateRunning),
		walJob("j2", 2, StateDone),
	} {
		if err := w.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != 4 {
		t.Fatalf("Records() = %d, want 4", w.Records())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, jobs, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	if jobs[0].ID != "j1" || jobs[1].ID != "j2" {
		t.Fatalf("replay order = %s, %s; want j1, j2", jobs[0].ID, jobs[1].ID)
	}
	if jobs[1].State != StateDone {
		t.Fatalf("j2 replayed in state %q, want last-written %q", jobs[1].State, StateDone)
	}
}

func TestWALDropsTruncatedTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walJob("j1", 1, StatePending)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a half-written record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","job":{"id":"j2","se`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w, jobs, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("replay with truncated trailing line: %v", err)
	}
	if len(jobs) != 1 || jobs[0].ID != "j1" {
		t.Fatalf("replayed %d jobs, want only the acknowledged j1", len(jobs))
	}
	// OpenWAL truncated the partial tail, so the log must stay appendable and
	// the next replay must recover every acknowledged record — the partial
	// bytes must not have merged with the new append into mid-file corruption.
	if err := w.Append(walJob("j3", 3, StatePending)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, jobs, err = OpenWAL(path)
	if err != nil {
		t.Fatalf("replay after appending over a truncated tail: %v", err)
	}
	if len(jobs) != 2 || jobs[0].ID != "j1" || jobs[1].ID != "j3" {
		t.Fatalf("replayed %v, want exactly j1 and j3", jobIDs(jobs))
	}
	for _, j := range jobs {
		if j.ID == "j2" {
			t.Fatal("replay resurrected the unacknowledged j2")
		}
	}
}

func jobIDs(jobs []*Job) []string {
	ids := make([]string, len(jobs))
	for i, j := range jobs {
		ids[i] = j.ID
	}
	return ids
}

// A crash can persist a record's complete JSON but not its trailing newline.
// Append syncs the full line (newline included) before acknowledging, so such
// a record was never acknowledged: it must be dropped and truncated exactly
// like a malformed tail, never merged with the next append.
func TestWALDropsUnterminatedValidJSONTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walJob("j1", 1, StatePending)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","job":{"id":"j2","seq":2,"state":"pending","spec":{"type":"figure","figure":{"name":"figure7"}},"hash":"h2","submitted_at":"2026-01-01T00:00:00Z"}}`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w, jobs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "j1" {
		t.Fatalf("replayed %v, want only j1", jobIDs(jobs))
	}
	if err := w.Append(walJob("j3", 3, StatePending)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, jobs, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].ID != "j1" || jobs[1].ID != "j3" {
		t.Fatalf("replayed %v, want exactly j1 and j3", jobIDs(jobs))
	}
}

func TestWALMidFileCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	content := `{"op":"put","job":{"id":"j1","seq":1,"state":"pending","spec":{"type":"figure","figure":{"name":"figure7"}},"hash":"h1","submitted_at":"2026-01-01T00:00:00Z"}}
this line is garbage
{"op":"put","job":{"id":"j2","seq":2,"state":"pending","spec":{"type":"figure","figure":{"name":"figure7"}},"hash":"h2","submitted_at":"2026-01-01T00:00:00Z"}}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path); err == nil {
		t.Fatal("mid-file corruption silently accepted")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestWALCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	live := []*Job{walJob("j1", 1, StateDone), walJob("j2", 2, StatePending)}
	for i := 0; i < 10; i++ {
		for _, j := range live {
			if err := w.Append(j); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Compact(live); err != nil {
		t.Fatal(err)
	}
	if w.Records() != len(live) {
		t.Fatalf("Records() = %d after compaction, want %d", w.Records(), len(live))
	}
	// The compacted log stays appendable and replays to the same live set.
	if err := w.Append(walJob("j3", 3, StatePending)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, jobs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs after compaction, want 3", len(jobs))
	}
}
