package fleet

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyProxy fronts a dispatcher handler and fails the first n requests of
// every (method, path) with 503, then forwards. Counts total hits per path.
type flakyProxy struct {
	next  http.Handler
	fails int32
	left  atomic.Int32
	hits  map[string]*atomic.Int32
}

func newFlakyProxy(next http.Handler, fails int) *flakyProxy {
	p := &flakyProxy{next: next, fails: int32(fails), hits: map[string]*atomic.Int32{}}
	p.left.Store(int32(fails))
	return p
}

func (p *flakyProxy) counter(path string) *atomic.Int32 {
	if c, ok := p.hits[path]; ok {
		return c
	}
	c := &atomic.Int32{}
	p.hits[path] = c
	return c
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.counter(r.URL.Path).Add(1)
	if p.left.Add(-1) >= 0 {
		http.Error(w, `{"error":"dispatcher briefly down"}`, http.StatusServiceUnavailable)
		return
	}
	p.next.ServeHTTP(w, r)
}

func flakyClient(t *testing.T, fails int) (*flakyProxy, *Client) {
	t.Helper()
	d := newTestDispatcher(t, nil)
	proxy := newFlakyProxy(d.Handler(), fails)
	srv := httptest.NewServer(proxy)
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	c.RetryBase = time.Millisecond // keep the test fast
	return proxy, c
}

func TestIdempotentCallsRetryThroughFlakiness(t *testing.T) {
	proxy, client := flakyClient(t, 2)

	// Register survives two 503s within the default retry budget of 3.
	workerID, ttl, err := client.Register("flaky")
	if err != nil {
		t.Fatalf("register through flaky server: %v", err)
	}
	if ttl <= 0 {
		t.Fatalf("lease TTL = %s", ttl)
	}
	if got := proxy.counter("/v1/workers/register").Load(); got != 3 {
		t.Fatalf("register sent %d times, want 3 (2 failures + 1 success)", got)
	}

	// An empty lease (204) after one more outage burst.
	proxy.left.Store(1)
	if job, _, err := client.Lease(workerID); err != nil || job != nil {
		t.Fatalf("lease = (%v, %v), want (nil, nil)", job, err)
	}
	if got := proxy.counter("/v1/lease").Load(); got != 2 {
		t.Fatalf("lease sent %d times, want 2", got)
	}
}

func TestRetriesExhaustOnPersistentOutage(t *testing.T) {
	proxy, client := flakyClient(t, 1000) // never recovers
	if _, _, err := client.Register("doomed"); err == nil {
		t.Fatal("register against a dead dispatcher succeeded")
	}
	if got := proxy.counter("/v1/workers/register").Load(); got != 1+defaultRetries {
		t.Fatalf("register sent %d times, want %d", got, 1+defaultRetries)
	}
}

func TestConflictsAndNonIdempotentCallsNotRetried(t *testing.T) {
	proxy, client := flakyClient(t, 0)

	// A 409 lease conflict is an application answer, not a transient fault.
	if err := client.Heartbeat("w-ghost", "job-ghost", nil); err != ErrLeaseLost {
		t.Fatalf("ghost heartbeat = %v, want ErrLeaseLost", err)
	}
	if got := proxy.counter("/v1/heartbeat").Load(); got != 1 {
		t.Fatalf("heartbeat sent %d times, want 1 (409 must not retry)", got)
	}

	// Submit is not idempotent: a 503 surfaces immediately.
	proxy.left.Store(1000)
	if _, _, err := client.Submit(figureJob("figure7", 3)); err == nil {
		t.Fatal("submit through outage succeeded")
	}
	if got := proxy.counter("/v1/jobs").Load(); got != 1 {
		t.Fatalf("submit sent %d times, want 1 (non-idempotent must not retry)", got)
	}
}

func TestRetryDisabled(t *testing.T) {
	proxy, client := flakyClient(t, 1)
	client.Retries = -1
	if _, _, err := client.Register("no-retry"); err == nil {
		t.Fatal("register succeeded without retries against a flap")
	}
	if got := proxy.counter("/v1/workers/register").Load(); got != 1 {
		t.Fatalf("register sent %d times, want 1", got)
	}
}

func TestBackoffDelayJitterBounds(t *testing.T) {
	base := 8 * time.Millisecond
	for attempt := 1; attempt <= 3; attempt++ {
		d := base << (attempt - 1)
		for i := 0; i < 100; i++ {
			got := BackoffDelay(base, attempt)
			if got < d/2 || got >= d+d/2 {
				t.Fatalf("attempt %d: delay %s outside [%s, %s)", attempt, got, d/2, d+d/2)
			}
		}
	}
}
