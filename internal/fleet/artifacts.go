package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"

	"readys/internal/exp"
)

// digestRE matches a hex SHA-256 content address.
var digestRE = regexp.MustCompile(`^[0-9a-f]{64}$`)

// ArtifactStore is a content-addressed blob store on the dispatcher's disk:
// every blob is filed under sha256/<first two hex chars>/<digest>. Content
// addressing makes uploads idempotent (a retried upload of the same bytes is
// a no-op) and lets clients verify downloads end-to-end.
type ArtifactStore struct {
	dir string
}

// NewArtifactStore opens (creating if needed) a store rooted at dir.
func NewArtifactStore(dir string) (*ArtifactStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, "sha256"), 0o755); err != nil {
		return nil, fmt.Errorf("fleet: creating artifact store: %w", err)
	}
	return &ArtifactStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *ArtifactStore) Dir() string { return s.dir }

func (s *ArtifactStore) path(digest string) string {
	return filepath.Join(s.dir, "sha256", digest[:2], digest)
}

// Put stores data and returns its content digest. Writing is atomic (temp
// file + rename) and idempotent: storing bytes that already exist succeeds
// without touching the existing blob.
func (s *ArtifactStore) Put(data []byte) (string, error) {
	digest := exp.HashBytes(data)
	dst := s.path(digest)
	if _, err := os.Stat(dst); err == nil {
		return digest, nil
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return "", fmt.Errorf("fleet: creating artifact shard: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".upload-*")
	if err != nil {
		return "", fmt.Errorf("fleet: staging artifact: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("fleet: writing artifact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("fleet: syncing artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("fleet: installing artifact: %w", err)
	}
	return digest, nil
}

// Get returns the blob stored under digest, verifying the content against
// its address before handing it out.
func (s *ArtifactStore) Get(digest string) ([]byte, error) {
	if !digestRE.MatchString(digest) {
		return nil, fmt.Errorf("fleet: malformed artifact digest %q", digest)
	}
	data, err := os.ReadFile(s.path(digest))
	if err != nil {
		return nil, err
	}
	if got := exp.HashBytes(data); got != digest {
		return nil, fmt.Errorf("fleet: artifact %s corrupt on disk (content hashes to %s)", digest, got)
	}
	return data, nil
}

// Has reports whether a blob exists under digest.
func (s *ArtifactStore) Has(digest string) bool {
	if !digestRE.MatchString(digest) {
		return false
	}
	_, err := os.Stat(s.path(digest))
	return err == nil
}
