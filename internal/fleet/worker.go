package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"readys/internal/exp"
	"readys/internal/obs"
	"readys/internal/rl"
)

// WorkerConfig tunes one worker daemon.
type WorkerConfig struct {
	// Dispatcher is the dispatcher's base URL.
	Dispatcher string
	// Name labels the worker in the dispatcher's listing (the assigned
	// worker ID embeds it).
	Name string
	// PollInterval is the idle wait between lease attempts.
	PollInterval time.Duration
	// ModelsDir is the worker's local checkpoint cache: eval and figure jobs
	// load (or train on demand) their agents here, and completed train jobs
	// leave their checkpoint behind so a later eval on the same worker hits
	// the cache via exp.LoadOrTrain.
	ModelsDir string
	// RolloutWorkers is passed through to training (0 = GOMAXPROCS);
	// training results are bit-identical at any value.
	RolloutWorkers int
	// Logger receives worker diagnostics; nil disables logging.
	Logger *log.Logger
}

// Worker pulls jobs from a dispatcher under a heartbeated lease, executes
// them, uploads artifacts and reports completion. One worker runs one job at
// a time (training saturates the cores on its own).
// workerPID is the pid under which a worker records trace events (its own
// process namespace; obs.MergeTraces remaps pids when joining exports).
const workerPID = 1

type Worker struct {
	cfg    WorkerConfig
	client *Client

	id  string
	ttl time.Duration

	// epoch anchors trace timestamps; tracer records per-job execution spans
	// into a bounded ring; jobSeq hands out trace lanes (one per leased job).
	epoch  time.Time
	tracer *obs.Tracer
	jobSeq atomic.Int64

	// progress is the latest episode statistic, piggy-backed on heartbeats.
	progress atomic.Pointer[Progress]
	// abandoned is set by the heartbeater when the dispatcher reports the
	// lease lost; the in-flight result is then discarded.
	abandoned atomic.Bool

	// killed simulates abrupt process death (tests): heartbeats stop, the
	// in-flight result is never reported, the loop exits without
	// deregistering.
	killed   chan struct{}
	killOnce sync.Once

	// testHookJobStart, when set, observes every lease grant before
	// execution begins (test instrumentation).
	testHookJobStart func(*Job)
}

// NewWorker builds a worker for the dispatcher at cfg.Dispatcher.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.Name = host
	}
	if cfg.ModelsDir == "" {
		cfg.ModelsDir = "fleet-models"
	}
	w := &Worker{
		cfg:    cfg,
		client: NewClient(cfg.Dispatcher),
		epoch:  time.Now(),
		tracer: obs.NewTracer(0),
		killed: make(chan struct{}),
	}
	w.tracer.NameProcess(workerPID, "readys-worker:"+cfg.Name)
	return w
}

// Tracer exposes the worker's span ring (tests and trace export).
func (w *Worker) Tracer() *obs.Tracer { return w.tracer }

// WriteTrace exports the worker's execution spans as Chrome trace-event JSON.
// Merged with the dispatcher's /debug/trace export via obs.MergeTraces, the
// two processes' spans stitch into one timeline through the job's trace IDs.
func (w *Worker) WriteTrace(out io.Writer) error { return w.tracer.WriteChromeTrace(out) }

// span records a completed slice on the given job lane.
func (w *Worker) span(name, cat string, tid int64, start time.Time, args map[string]any) {
	w.tracer.Complete(name, cat, workerPID, tid,
		float64(start.Sub(w.epoch))/float64(time.Microsecond),
		float64(time.Since(start))/float64(time.Microsecond), args)
}

// ID returns the dispatcher-assigned worker ID (empty before Run registers).
func (w *Worker) ID() string { return w.id }

// Kill simulates abrupt process death: heartbeats stop immediately, the
// in-flight job's result is discarded, and Run returns without completing or
// deregistering. The dispatcher notices via lease expiry.
func (w *Worker) Kill() { w.killOnce.Do(func() { close(w.killed) }) }

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logger != nil {
		w.cfg.Logger.Printf(format, args...)
	}
}

// Run registers the worker and processes jobs until ctx is cancelled, then
// shuts down gracefully: the in-flight job (if any) runs to completion, its
// artifacts are uploaded, the lease is released by completing the job, and
// the worker deregisters. Mirrors readys-serve's drain-on-SIGTERM.
func (w *Worker) Run(ctx context.Context) error {
	id, ttl, err := w.client.Register(w.cfg.Name)
	if err != nil {
		return fmt.Errorf("fleet: registering with %s: %w", w.cfg.Dispatcher, err)
	}
	w.id, w.ttl = id, ttl
	w.logf("fleet: worker %s registered (lease TTL %s)", id, ttl)

	for {
		select {
		case <-w.killed:
			return nil
		case <-ctx.Done():
			return w.deregister()
		default:
		}
		job, ttl, err := w.client.Lease(w.id)
		if err != nil {
			w.logf("fleet: lease: %v", err)
			if !w.sleep(ctx) {
				return w.deregister()
			}
			continue
		}
		if job == nil {
			if !w.sleep(ctx) {
				return w.deregister()
			}
			continue
		}
		if ttl > 0 {
			w.ttl = ttl
		}
		w.execute(job)
		// A cancelled context is only honoured between jobs: the in-flight
		// job above already ran to completion (graceful drain).
	}
}

// deregister releases the worker's registration on shutdown.
func (w *Worker) deregister() error {
	if err := w.client.Deregister(w.id); err != nil {
		return fmt.Errorf("fleet: deregistering %s: %w", w.id, err)
	}
	w.logf("fleet: worker %s deregistered", w.id)
	return nil
}

// sleep waits one poll interval; false means ctx was cancelled.
func (w *Worker) sleep(ctx context.Context) bool {
	t := time.NewTimer(w.cfg.PollInterval)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-w.killed:
		return false
	case <-t.C:
		return true
	}
}

// execute runs one leased job under a heartbeater and reports the outcome.
func (w *Worker) execute(job *Job) {
	w.logf("fleet: worker %s running %s (%s, attempt %d)", w.id, job.ID, job.Spec.Type, job.Attempts)
	if w.testHookJobStart != nil {
		w.testHookJobStart(job)
	}
	w.abandoned.Store(false)
	w.progress.Store(nil)

	// Join the job's distributed trace: the execute span parents to the
	// dispatcher-side job span, and the client carries the execute span's
	// context so every heartbeat/upload/completion request the job makes is
	// recorded server-side as its child.
	traceID := job.TraceID
	if traceID == "" {
		traceID = obs.NewTraceID() // pre-tracing dispatcher; keep spans linkable
	}
	execSC := obs.SpanContext{TraceID: traceID, SpanID: obs.NewSpanID()}
	w.client.SetTraceContext(execSC)
	defer w.client.ClearTraceContext()
	tid := w.jobSeq.Add(1)
	w.tracer.NameThread(workerPID, tid, job.ID)
	execStart := time.Now()
	defer func() {
		w.span("execute", "job", tid, execStart,
			obs.SpanArgs(map[string]any{"job_id": job.ID, "type": string(job.Spec.Type), "attempt": job.Attempts},
				execSC.TraceID, execSC.SpanID, job.SpanID))
	}()

	stop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		interval := w.ttl / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-w.killed:
				return
			case <-t.C:
				err := w.client.Heartbeat(w.id, job.ID, w.progress.Load())
				if errors.Is(err, ErrLeaseLost) {
					w.abandoned.Store(true)
					return
				}
				if err != nil {
					w.logf("fleet: heartbeat for %s: %v", job.ID, err)
				}
			}
		}
	}()

	runStart := time.Now()
	artifacts, result, runErr := w.run(job)
	w.span(string(job.Spec.Type), "work", tid, runStart,
		obs.SpanArgs(map[string]any{"ok": runErr == nil}, execSC.TraceID, obs.NewSpanID(), execSC.SpanID))
	close(stop)
	hb.Wait()

	select {
	case <-w.killed:
		// Simulated process death: never report, the lease will expire.
		return
	default:
	}
	if w.abandoned.Load() {
		w.logf("fleet: worker %s lost the lease on %s; discarding result", w.id, job.ID)
		return
	}
	if runErr != nil {
		w.logf("fleet: worker %s failed %s: %v", w.id, job.ID, runErr)
		if err := w.client.Fail(w.id, job.ID, runErr.Error()); err != nil && !errors.Is(err, ErrLeaseLost) {
			w.logf("fleet: reporting failure of %s: %v", job.ID, err)
		}
		return
	}

	digests := make(map[string]string, len(artifacts))
	for name, data := range artifacts {
		upStart := time.Now()
		digest, err := w.client.PutArtifact(data)
		w.span("upload", "artifact", tid, upStart,
			obs.SpanArgs(map[string]any{"artifact": name, "bytes": len(data)},
				execSC.TraceID, obs.NewSpanID(), execSC.SpanID))
		if err != nil {
			w.logf("fleet: uploading %s of %s: %v", name, job.ID, err)
			if ferr := w.client.Fail(w.id, job.ID, fmt.Sprintf("artifact upload: %v", err)); ferr != nil && !errors.Is(ferr, ErrLeaseLost) {
				w.logf("fleet: reporting upload failure of %s: %v", job.ID, ferr)
			}
			return
		}
		digests[name] = digest
	}
	if err := w.client.Complete(w.id, job.ID, digests, result); err != nil {
		if errors.Is(err, ErrLeaseLost) {
			w.logf("fleet: worker %s completed %s after losing the lease; result discarded", w.id, job.ID)
		} else {
			w.logf("fleet: completing %s: %v", job.ID, err)
		}
		return
	}
	w.logf("fleet: worker %s completed %s", w.id, job.ID)
}

// run dispatches on the job type and returns named artifact blobs plus a
// small JSON result summary.
func (w *Worker) run(job *Job) (map[string][]byte, json.RawMessage, error) {
	switch job.Spec.Type {
	case JobTrain:
		return w.runTrain(job.Spec.Train)
	case JobEval:
		return w.runEval(job.Spec.Eval)
	case JobFigure:
		return w.runFigure(job.Spec.Figure)
	default:
		return nil, nil, fmt.Errorf("fleet: worker cannot run job type %q", job.Spec.Type)
	}
}

// runTrain executes one training job exactly as a local readys-train run
// would: exp.TrainAgentWith with the spec's seed, a JSONL telemetry sink for
// the per-episode history, and the checkpoint written by the trainer itself.
// Artifacts are therefore bit-identical to the local run's outputs.
func (w *Worker) runTrain(spec *TrainSpec) (map[string][]byte, json.RawMessage, error) {
	scratch, err := os.MkdirTemp("", "readys-fleet-train-*")
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: creating scratch dir: %w", err)
	}
	defer os.RemoveAll(scratch)

	episodes := spec.EpisodeBudget()
	historyPath := scratch + "/history.jsonl"
	sink, err := obs.CreateJSONL(historyPath)
	if err != nil {
		return nil, nil, err
	}
	opt := exp.TrainOptions{
		Episodes:  episodes,
		Workers:   w.cfg.RolloutWorkers,
		Telemetry: sink,
		Progress: func(st rl.EpisodeStats) {
			w.progress.Store(&Progress{
				Episode:  st.Episode,
				Episodes: episodes,
				Reward:   st.Reward,
				Makespan: st.Makespan,
			})
		},
	}
	_, hist, err := exp.TrainAgentWith(spec.Agent, scratch, opt)
	if cerr := sink.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return nil, nil, err
	}

	checkpoint, err := os.ReadFile(spec.Agent.ModelPath(scratch))
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: reading trained checkpoint: %w", err)
	}
	history, err := os.ReadFile(historyPath)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: reading training history: %w", err)
	}
	// Leave a copy in the local model cache so later eval jobs on this
	// worker hit exp.LoadOrTrain instead of retraining.
	if w.cfg.ModelsDir != "" {
		if err := (DirPublisher{Dir: w.cfg.ModelsDir}).Publish(spec.Agent.Name()+".json", checkpoint); err != nil {
			w.logf("fleet: caching checkpoint locally: %v", err)
		}
	}

	result, err := json.Marshal(map[string]any{
		"episodes":          episodes,
		"final_mean_reward": hist.FinalMeanReward(100),
		"baseline_makespan": hist.BaselineMakespan,
	})
	if err != nil {
		return nil, nil, err
	}
	return map[string][]byte{
		ArtifactCheckpoint: checkpoint,
		ArtifactHistory:    history,
	}, result, nil
}

// runEval executes one evaluation sweep. The agent is loaded from the
// worker's model cache (training it there first if the checkpoint has not
// been published or trained locally yet).
func (w *Worker) runEval(spec *exp.EvalSpec) (map[string][]byte, json.RawMessage, error) {
	points, err := spec.Run(w.cfg.ModelsDir)
	if err != nil {
		return nil, nil, err
	}
	data, err := json.Marshal(points)
	if err != nil {
		return nil, nil, err
	}
	result, err := json.Marshal(map[string]any{"points": len(points)})
	if err != nil {
		return nil, nil, err
	}
	return map[string][]byte{ArtifactResult: data}, result, nil
}

// runFigure regenerates one figure table and uploads it as CSV.
func (w *Worker) runFigure(spec *FigureSpec) (map[string][]byte, json.RawMessage, error) {
	tab, err := exp.FigureByName(spec.Name, w.cfg.ModelsDir)
	if err != nil {
		return nil, nil, err
	}
	result, err := json.Marshal(map[string]any{"rows": len(tab.Rows), "title": tab.Title})
	if err != nil {
		return nil, nil, err
	}
	return map[string][]byte{ArtifactResult: []byte(tab.CSV())}, result, nil
}
