package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"readys/internal/obs"
)

// TestTwoProcessTraceStitch runs a real train job through an httptest
// dispatcher and a worker — two separate span rings, like two processes —
// then merges their exports and requires the distributed trace to stitch:
// balanced lanes, every parent span resolving, and at least one parent link
// crossing the dispatcher/worker boundary.
func TestTwoProcessTraceStitch(t *testing.T) {
	d := newTestDispatcher(t, nil)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Submit over HTTP with an upstream trace context, as a traced client
	// (e.g. readys-serve or a CI driver) would — recording the root span in
	// the client's own ring, the third "process" of the merge.
	client := NewClient(srv.URL)
	rootSC := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()}
	clientTracer := obs.NewTracer(0)
	clientTracer.NameProcess(1, "test-client")
	client.SetTraceContext(rootSC)
	submitStart := time.Now()
	job, _, err := client.Submit(trainJob(0))
	if err != nil {
		t.Fatal(err)
	}
	client.ClearTraceContext()
	clientTracer.Complete("submit", "client", 1, 1, 0,
		float64(time.Since(submitStart))/float64(time.Microsecond),
		obs.SpanArgs(nil, rootSC.TraceID, rootSC.SpanID, ""))
	if job.TraceID != rootSC.TraceID {
		t.Fatalf("job did not adopt the submitted trace: %q != %q", job.TraceID, rootSC.TraceID)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w, done := startWorker(t, ctx, WorkerConfig{Dispatcher: srv.URL, Name: "stitch"})
	waitForState(t, d, job.ID, StateDone, time.Minute)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("worker shutdown: %v", err)
	}

	var cb, db, wb bytes.Buffer
	if err := clientTracer.WriteChromeTrace(&cb); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteTrace(&db); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTrace(&wb); err != nil {
		t.Fatal(err)
	}

	// Each export alone is structurally valid but must NOT pass link
	// validation: the worker's parents live in the dispatcher's ring.
	for _, doc := range [][]byte{db.Bytes(), wb.Bytes()} {
		if err := obs.ValidateChromeTrace(doc); err != nil {
			t.Fatalf("per-process trace invalid: %v", err)
		}
	}
	if err := obs.ValidateTraceLinks(wb.Bytes()); err == nil {
		t.Error("worker-only trace should have dangling parents before the merge")
	}

	merged, err := obs.MergeTraces(cb.Bytes(), db.Bytes(), wb.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(merged); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	if err := obs.ValidateTraceLinks(merged); err != nil {
		t.Fatalf("merged trace links: %v", err)
	}

	// The whole distributed chain must live in the submitted trace ID, and
	// the worker's execute span must parent to the dispatcher's job span.
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(merged, &doc); err != nil {
		t.Fatal(err)
	}
	var sawExecute bool
	for _, e := range doc.TraceEvents {
		trace, _ := e.Args[obs.ArgTraceID].(string)
		if e.Name == "execute" {
			sawExecute = true
			if trace != rootSC.TraceID {
				t.Errorf("execute span in trace %q, want %q", trace, rootSC.TraceID)
			}
			if parent, _ := e.Args[obs.ArgParentSpan].(string); parent != job.SpanID {
				t.Errorf("execute span parent %q, want the job span %q", parent, job.SpanID)
			}
		}
	}
	if !sawExecute {
		t.Error("merged trace has no worker execute span")
	}
}

// TestDispatcherHealthzBuildInfo checks the /healthz payload carries build
// identity and uptime next to the status (ISSUE 7 satellite b).
func TestDispatcherHealthzBuildInfo(t *testing.T) {
	d := newTestDispatcher(t, nil)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz -> %d", resp.StatusCode)
	}
	var body struct {
		Status        string        `json:"status"`
		Build         obs.BuildInfo `json:"build"`
		UptimeSeconds *float64      `json:"uptime_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Errorf("status %q", body.Status)
	}
	if body.Build.Go == "" {
		t.Errorf("build info missing go version: %+v", body.Build)
	}
	if body.UptimeSeconds == nil || *body.UptimeSeconds < 0 {
		t.Errorf("uptime_seconds missing or negative: %v", body.UptimeSeconds)
	}
}

// TestSubmitWithoutUpstreamTraceMintsOne: a plain Submit (no incoming
// headers) must still put the job on a fresh trace so worker spans stitch.
func TestSubmitWithoutUpstreamTraceMintsOne(t *testing.T) {
	d := newTestDispatcher(t, nil)
	job, _, err := d.Submit(trainJob(0))
	if err != nil {
		t.Fatal(err)
	}
	if job.TraceID == "" || job.SpanID == "" {
		t.Fatalf("untraced submit left job without trace identity: %+v", job)
	}
}
