package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync/atomic"
	"time"

	"readys/internal/exp"
	"readys/internal/obs"
)

// Backoff defaults: a failed idempotent request is re-sent up to
// defaultRetries times, sleeping defaultRetryBase before the first retry and
// doubling per attempt, each delay jittered to ±50% so a worker fleet hitting
// a briefly-down dispatcher does not retry in lockstep.
const (
	defaultRetries   = 3
	defaultRetryBase = 25 * time.Millisecond
)

// Client is the typed HTTP client of the fleet API, used by workers, the
// grid submitter and tests. It is safe for concurrent use.
//
// Idempotent calls (Register, Lease, Heartbeat and the read-only lookups)
// transparently retry transient failures — transport errors and 5xx
// responses — with jittered exponential backoff. Application-level outcomes
// (409 lease conflicts, 404s, 412 artifact refusals) are never retried, and
// neither are non-idempotent calls such as Submit, Complete and Fail.
type Client struct {
	// BaseURL is the dispatcher root, e.g. "http://127.0.0.1:9090".
	BaseURL string
	// HTTPClient defaults to a client with a 30s timeout.
	HTTPClient *http.Client
	// Retries is the number of re-sends after a failed idempotent request.
	// Zero means defaultRetries; negative disables retrying.
	Retries int
	// RetryBase is the pre-jitter delay before the first retry, doubling
	// each attempt. Zero means defaultRetryBase.
	RetryBase time.Duration

	// trace, when set, is injected into every outbound request's headers so
	// dispatcher-side request spans join the caller's trace. Workers set it
	// per leased job (SetTraceContext) so heartbeats, uploads and the
	// completion all land in the job's timeline.
	trace atomic.Pointer[obs.SpanContext]
}

// SetTraceContext makes every subsequent request carry the given trace
// context in its headers (X-Trace-ID / X-Parent-Span-ID).
func (c *Client) SetTraceContext(sc obs.SpanContext) { c.trace.Store(&sc) }

// ClearTraceContext stops injecting trace headers.
func (c *Client) ClearTraceContext() { c.trace.Store(nil) }

// injectTrace stamps the current trace context (if any) onto h.
func (c *Client) injectTrace(h http.Header) {
	if sc := c.trace.Load(); sc != nil {
		sc.Inject(h)
	}
}

// NewClient returns a client for the dispatcher at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) retries() int {
	switch {
	case c.Retries < 0:
		return 0
	case c.Retries == 0:
		return defaultRetries
	}
	return c.Retries
}

func (c *Client) retryBase() time.Duration {
	if c.RetryBase > 0 {
		return c.RetryBase
	}
	return defaultRetryBase
}

// BackoffDelay is the sleep before retry attempt i (1-based): the base delay
// doubled per attempt, jittered uniformly over [0.5d, 1.5d). Exported because
// it is the repository's one retry-backoff policy — the gateway's failover
// path uses the same curve against serving replicas.
func BackoffDelay(base time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// Retriable reports whether a request outcome is worth re-sending: transport
// errors (no status at all) and server-side 5xx failures. Every 4xx is an
// application answer — a retry would just repeat it.
func Retriable(status int, err error) bool {
	return (err != nil && status == 0) || status >= http.StatusInternalServerError
}

// do sends a JSON request and decodes a JSON response into out (out may be
// nil). wantStatus lists acceptable statuses; anything else is decoded as an
// ErrorResponse. Non-idempotent calls use do; idempotent ones doIdempotent.
func (c *Client) do(method, path string, body, out any, wantStatus ...int) (int, error) {
	return c.send(method, path, body, out, false, wantStatus...)
}

// doIdempotent is do with transient-failure retries.
func (c *Client) doIdempotent(method, path string, body, out any, wantStatus ...int) (int, error) {
	return c.send(method, path, body, out, true, wantStatus...)
}

func (c *Client) send(method, path string, body, out any, retry bool, wantStatus ...int) (int, error) {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return 0, fmt.Errorf("fleet: encoding request: %w", err)
		}
	}
	attempts := 1
	if retry {
		attempts += c.retries()
	}
	var (
		status int
		err    error
	)
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(BackoffDelay(c.retryBase(), i))
		}
		status, err = c.doOnce(method, path, data, body != nil, out, wantStatus...)
		if !Retriable(status, err) {
			break
		}
	}
	return status, err
}

// doOnce performs a single attempt; the request is rebuilt from the
// pre-marshalled body so retries never re-send a drained reader.
func (c *Client) doOnce(method, path string, data []byte, hasBody bool, out any, wantStatus ...int) (int, error) {
	var rd io.Reader
	if hasBody {
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return 0, err
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	c.injectTrace(req.Header)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	for _, s := range wantStatus {
		if resp.StatusCode == s {
			if out != nil && resp.StatusCode != http.StatusNoContent {
				if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
					return resp.StatusCode, fmt.Errorf("fleet: decoding response: %w", err)
				}
			}
			return resp.StatusCode, nil
		}
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		return resp.StatusCode, fmt.Errorf("fleet: %s %s: unexpected status %d", method, path, resp.StatusCode)
	}
	return resp.StatusCode, fmt.Errorf("fleet: %s %s: %s (status %d)", method, path, e.Error, resp.StatusCode)
}

// Submit enqueues (or dedups) a job.
func (c *Client) Submit(spec JobSpec) (*Job, bool, error) {
	var resp SubmitResponse
	if _, err := c.do(http.MethodPost, "/v1/jobs", SubmitRequest{Spec: spec}, &resp, http.StatusOK); err != nil {
		return nil, false, err
	}
	return resp.Job, resp.Deduped, nil
}

// Jobs lists every job on the dispatcher.
func (c *Client) Jobs() ([]*Job, error) {
	var resp JobsResponse
	if _, err := c.doIdempotent(http.MethodGet, "/v1/jobs", nil, &resp, http.StatusOK); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Job fetches one job by ID.
func (c *Client) Job(id string) (*Job, error) {
	var j Job
	if _, err := c.doIdempotent(http.MethodGet, "/v1/jobs/"+id, nil, &j, http.StatusOK); err != nil {
		return nil, err
	}
	return &j, nil
}

// Register registers a worker and returns its ID plus the lease TTL.
// Retried on transient failures: a duplicate registration merely leaves an
// orphan worker entry that expires with its lease.
func (c *Client) Register(name string) (string, time.Duration, error) {
	var resp RegisterResponse
	if _, err := c.doIdempotent(http.MethodPost, "/v1/workers/register", RegisterRequest{Name: name}, &resp, http.StatusOK); err != nil {
		return "", 0, err
	}
	return resp.WorkerID, time.Duration(resp.LeaseTTLMS) * time.Millisecond, nil
}

// Deregister removes the worker from the dispatcher.
func (c *Client) Deregister(workerID string) error {
	_, err := c.do(http.MethodPost, "/v1/workers/deregister", WorkerRequest{WorkerID: workerID}, nil, http.StatusOK)
	return err
}

// Lease pulls the next job; (nil, 0, nil) means the queue had nothing
// eligible. Retried on transient failures: if a lease response is lost in
// transit the leased job sits out one lease TTL and is then requeued, so
// at-least-once delivery is preserved.
func (c *Client) Lease(workerID string) (*Job, time.Duration, error) {
	var resp LeaseResponse
	status, err := c.doIdempotent(http.MethodPost, "/v1/lease", WorkerRequest{WorkerID: workerID}, &resp,
		http.StatusOK, http.StatusNoContent)
	if err != nil {
		return nil, 0, err
	}
	if status == http.StatusNoContent {
		return nil, 0, nil
	}
	return resp.Job, time.Duration(resp.LeaseTTLMS) * time.Millisecond, nil
}

// Heartbeat extends the lease; ErrLeaseLost when the dispatcher already
// requeued the job (the worker must abandon it). Extending a lease is
// idempotent, so transient failures are retried; the 409 conflict is an
// application answer and is not.
func (c *Client) Heartbeat(workerID, jobID string, p *Progress) error {
	status, err := c.doIdempotent(http.MethodPost, "/v1/heartbeat",
		HeartbeatRequest{WorkerID: workerID, JobID: jobID, Progress: p}, nil, http.StatusOK)
	if status == http.StatusConflict {
		return ErrLeaseLost
	}
	return err
}

// Complete finishes a job with its uploaded artifacts. ErrLeaseLost means
// the worker must abandon the job; ErrArtifactMissing means a cited digest
// was never uploaded (or is malformed) and the completion was refused.
func (c *Client) Complete(workerID, jobID string, artifacts map[string]string, result json.RawMessage) error {
	status, err := c.do(http.MethodPost, "/v1/complete",
		CompleteRequest{WorkerID: workerID, JobID: jobID, Artifacts: artifacts, Result: result}, nil, http.StatusOK)
	switch status {
	case http.StatusConflict:
		return ErrLeaseLost
	case http.StatusPreconditionFailed:
		return fmt.Errorf("%w: %v", ErrArtifactMissing, err)
	}
	return err
}

// Fail reports a job failure so the dispatcher requeues it elsewhere.
func (c *Client) Fail(workerID, jobID, msg string) error {
	status, err := c.do(http.MethodPost, "/v1/fail",
		FailRequest{WorkerID: workerID, JobID: jobID, Error: msg}, nil, http.StatusOK)
	if status == http.StatusConflict {
		return ErrLeaseLost
	}
	return err
}

// PutArtifact uploads bytes to the content-addressed store and returns the
// digest, verifying it client-side.
func (c *Client) PutArtifact(data []byte) (string, error) {
	req, err := http.NewRequest(http.MethodPut, c.BaseURL+"/v1/artifacts", bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	c.injectTrace(req.Header)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		return "", fmt.Errorf("fleet: uploading artifact: %s (status %d)", e.Error, resp.StatusCode)
	}
	var out PutArtifactResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("fleet: decoding upload response: %w", err)
	}
	if want := exp.HashBytes(data); out.Digest != want {
		return "", fmt.Errorf("fleet: dispatcher hashed artifact to %s, local digest %s", out.Digest, want)
	}
	return out.Digest, nil
}

// GetArtifact downloads a blob and verifies it against its content address.
func (c *Client) GetArtifact(digest string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/v1/artifacts/"+digest, nil)
	if err != nil {
		return nil, err
	}
	c.injectTrace(req.Header)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("fleet: fetching artifact %s: %s (status %d)", digest, e.Error, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if got := exp.HashBytes(data); got != digest {
		return nil, fmt.Errorf("fleet: artifact %s corrupt in transit (content hashes to %s)", digest, got)
	}
	return data, nil
}
