package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"readys/internal/exp"
)

// Client is the typed HTTP client of the fleet API, used by workers, the
// grid submitter and tests. It is safe for concurrent use.
type Client struct {
	// BaseURL is the dispatcher root, e.g. "http://127.0.0.1:9090".
	BaseURL string
	// HTTPClient defaults to a client with a 30s timeout.
	HTTPClient *http.Client
}

// NewClient returns a client for the dispatcher at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do sends a JSON request and decodes a JSON response into out (out may be
// nil). wantStatus lists acceptable statuses; anything else is decoded as an
// ErrorResponse.
func (c *Client) do(method, path string, body, out any, wantStatus ...int) (int, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, fmt.Errorf("fleet: encoding request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	for _, s := range wantStatus {
		if resp.StatusCode == s {
			if out != nil && resp.StatusCode != http.StatusNoContent {
				if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
					return resp.StatusCode, fmt.Errorf("fleet: decoding response: %w", err)
				}
			}
			return resp.StatusCode, nil
		}
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		return resp.StatusCode, fmt.Errorf("fleet: %s %s: unexpected status %d", method, path, resp.StatusCode)
	}
	return resp.StatusCode, fmt.Errorf("fleet: %s %s: %s (status %d)", method, path, e.Error, resp.StatusCode)
}

// Submit enqueues (or dedups) a job.
func (c *Client) Submit(spec JobSpec) (*Job, bool, error) {
	var resp SubmitResponse
	if _, err := c.do(http.MethodPost, "/v1/jobs", SubmitRequest{Spec: spec}, &resp, http.StatusOK); err != nil {
		return nil, false, err
	}
	return resp.Job, resp.Deduped, nil
}

// Jobs lists every job on the dispatcher.
func (c *Client) Jobs() ([]*Job, error) {
	var resp JobsResponse
	if _, err := c.do(http.MethodGet, "/v1/jobs", nil, &resp, http.StatusOK); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Job fetches one job by ID.
func (c *Client) Job(id string) (*Job, error) {
	var j Job
	if _, err := c.do(http.MethodGet, "/v1/jobs/"+id, nil, &j, http.StatusOK); err != nil {
		return nil, err
	}
	return &j, nil
}

// Register registers a worker and returns its ID plus the lease TTL.
func (c *Client) Register(name string) (string, time.Duration, error) {
	var resp RegisterResponse
	if _, err := c.do(http.MethodPost, "/v1/workers/register", RegisterRequest{Name: name}, &resp, http.StatusOK); err != nil {
		return "", 0, err
	}
	return resp.WorkerID, time.Duration(resp.LeaseTTLMS) * time.Millisecond, nil
}

// Deregister removes the worker from the dispatcher.
func (c *Client) Deregister(workerID string) error {
	_, err := c.do(http.MethodPost, "/v1/workers/deregister", WorkerRequest{WorkerID: workerID}, nil, http.StatusOK)
	return err
}

// Lease pulls the next job; (nil, 0, nil) means the queue had nothing
// eligible.
func (c *Client) Lease(workerID string) (*Job, time.Duration, error) {
	var resp LeaseResponse
	status, err := c.do(http.MethodPost, "/v1/lease", WorkerRequest{WorkerID: workerID}, &resp,
		http.StatusOK, http.StatusNoContent)
	if err != nil {
		return nil, 0, err
	}
	if status == http.StatusNoContent {
		return nil, 0, nil
	}
	return resp.Job, time.Duration(resp.LeaseTTLMS) * time.Millisecond, nil
}

// Heartbeat extends the lease; ErrLeaseLost when the dispatcher already
// requeued the job (the worker must abandon it).
func (c *Client) Heartbeat(workerID, jobID string, p *Progress) error {
	status, err := c.do(http.MethodPost, "/v1/heartbeat",
		HeartbeatRequest{WorkerID: workerID, JobID: jobID, Progress: p}, nil, http.StatusOK)
	if status == http.StatusConflict {
		return ErrLeaseLost
	}
	return err
}

// Complete finishes a job with its uploaded artifacts. ErrLeaseLost means
// the worker must abandon the job; ErrArtifactMissing means a cited digest
// was never uploaded (or is malformed) and the completion was refused.
func (c *Client) Complete(workerID, jobID string, artifacts map[string]string, result json.RawMessage) error {
	status, err := c.do(http.MethodPost, "/v1/complete",
		CompleteRequest{WorkerID: workerID, JobID: jobID, Artifacts: artifacts, Result: result}, nil, http.StatusOK)
	switch status {
	case http.StatusConflict:
		return ErrLeaseLost
	case http.StatusPreconditionFailed:
		return fmt.Errorf("%w: %v", ErrArtifactMissing, err)
	}
	return err
}

// Fail reports a job failure so the dispatcher requeues it elsewhere.
func (c *Client) Fail(workerID, jobID, msg string) error {
	status, err := c.do(http.MethodPost, "/v1/fail",
		FailRequest{WorkerID: workerID, JobID: jobID, Error: msg}, nil, http.StatusOK)
	if status == http.StatusConflict {
		return ErrLeaseLost
	}
	return err
}

// PutArtifact uploads bytes to the content-addressed store and returns the
// digest, verifying it client-side.
func (c *Client) PutArtifact(data []byte) (string, error) {
	req, err := http.NewRequest(http.MethodPut, c.BaseURL+"/v1/artifacts", bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		return "", fmt.Errorf("fleet: uploading artifact: %s (status %d)", e.Error, resp.StatusCode)
	}
	var out PutArtifactResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("fleet: decoding upload response: %w", err)
	}
	if want := exp.HashBytes(data); out.Digest != want {
		return "", fmt.Errorf("fleet: dispatcher hashed artifact to %s, local digest %s", out.Digest, want)
	}
	return out.Digest, nil
}

// GetArtifact downloads a blob and verifies it against its content address.
func (c *Client) GetArtifact(digest string) ([]byte, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/v1/artifacts/" + digest)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("fleet: fetching artifact %s: %s (status %d)", digest, e.Error, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if got := exp.HashBytes(data); got != digest {
		return nil, fmt.Errorf("fleet: artifact %s corrupt in transit (content hashes to %s)", digest, got)
	}
	return data, nil
}
