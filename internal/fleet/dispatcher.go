package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"readys/internal/obs"
)

// Sentinel errors mapped to HTTP statuses by the handler layer.
var (
	// ErrLeaseLost means the worker no longer holds the job: its lease
	// expired (and the job was requeued) or the job was completed elsewhere.
	ErrLeaseLost = errors.New("fleet: lease lost")
	// ErrUnknownWorker means the worker ID is not registered.
	ErrUnknownWorker = errors.New("fleet: unknown worker")
	// ErrUnknownJob means the job ID does not exist.
	ErrUnknownJob = errors.New("fleet: unknown job")
	// ErrArtifactMissing means a completion referenced an artifact digest
	// that is malformed or was never uploaded to the store — a client error,
	// not a dispatcher fault.
	ErrArtifactMissing = errors.New("fleet: artifact not uploaded")
)

// Publisher receives completed training checkpoints. serve.(*Registry).Publish
// satisfies it for in-process train → serve loops; DirPublisher writes into a
// shared model directory for daemon deployments.
type Publisher interface {
	Publish(base string, data []byte) error
}

// Config tunes the dispatcher.
type Config struct {
	// WALPath is the queue's write-ahead log file.
	WALPath string
	// ArtifactsDir roots the content-addressed artifact store.
	ArtifactsDir string
	// LeaseTTL is how long a worker may go between heartbeats before its
	// job is requeued.
	LeaseTTL time.Duration
	// MaxAttempts bounds lease grants per job; the next failure after the
	// budget is spent is terminal.
	MaxAttempts int
	// RetryBackoff is the base requeue delay; attempt n waits
	// RetryBackoff·2^(n-1), capped at 64×.
	RetryBackoff time.Duration
	// SweepInterval is the lease-expiry scan period (default LeaseTTL/4).
	SweepInterval time.Duration
	// CompactMinRecords is the WAL record count below which compaction never
	// triggers.
	CompactMinRecords int
	// MaxBodyBytes bounds request bodies; artifacts (checkpoints, history
	// JSONL) dominate, so the default is generous.
	MaxBodyBytes int64
	// Publisher, if non-nil, receives every completed train job's checkpoint
	// under its canonical model file name.
	Publisher Publisher
	// Logger receives dispatcher diagnostics; nil disables logging.
	Logger *log.Logger
	// TraceEvents is the request-span ring capacity (<= 0 picks the obs
	// default).
	TraceEvents int
}

// DefaultConfig returns production-shaped defaults.
func DefaultConfig() Config {
	return Config{
		WALPath:           "fleet/queue.wal",
		ArtifactsDir:      "fleet/artifacts",
		LeaseTTL:          30 * time.Second,
		MaxAttempts:       3,
		RetryBackoff:      2 * time.Second,
		CompactMinRecords: 256,
		MaxBodyBytes:      256 << 20,
	}
}

// workerState is one registered worker.
type workerState struct {
	ID           string    `json:"id"`
	Name         string    `json:"name"`
	RegisteredAt time.Time `json:"registered_at"`
	LastSeen     time.Time `json:"last_seen"`
}

// lease is one live job assignment.
type lease struct {
	worker   string
	deadline time.Time
}

// Dispatcher owns the durable job queue, the lease table, the artifact store
// and the registered-worker set, and serves the fleet HTTP API.
type Dispatcher struct {
	cfg     Config
	metrics *Metrics
	store   *ArtifactStore
	mux     *http.ServeMux

	epoch  time.Time
	tracer *obs.Tracer
	reqSeq atomic.Int64
	build  obs.BuildInfo

	mu        sync.Mutex
	wal       *WAL
	jobs      map[string]*Job
	byHash    map[string]string // spec hash -> job ID (pending/running/done)
	leases    map[string]*lease // job ID -> lease
	workers   map[string]*workerState
	seq       int64
	workerSeq int64
	closed    bool

	stopSweep chan struct{}
	sweepDone chan struct{}
}

// NewDispatcher replays the WAL at cfg.WALPath and returns a dispatcher
// ready to serve. Jobs that were running when the previous process died are
// requeued (their leases did not survive); the granted attempt stays charged.
func NewDispatcher(cfg Config) (*Dispatcher, error) {
	def := DefaultConfig()
	if cfg.WALPath == "" {
		cfg.WALPath = def.WALPath
	}
	if cfg.ArtifactsDir == "" {
		cfg.ArtifactsDir = def.ArtifactsDir
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = def.LeaseTTL
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = def.MaxAttempts
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = def.RetryBackoff
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.LeaseTTL / 4
	}
	if cfg.CompactMinRecords < 1 {
		cfg.CompactMinRecords = def.CompactMinRecords
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = def.MaxBodyBytes
	}

	store, err := NewArtifactStore(cfg.ArtifactsDir)
	if err != nil {
		return nil, err
	}
	wal, replayed, err := OpenWAL(cfg.WALPath)
	if err != nil {
		return nil, err
	}

	d := &Dispatcher{
		cfg:       cfg,
		metrics:   NewMetrics(),
		store:     store,
		mux:       http.NewServeMux(),
		epoch:     time.Now(),
		tracer:    obs.NewTracer(cfg.TraceEvents),
		wal:       wal,
		jobs:      make(map[string]*Job),
		byHash:    make(map[string]string),
		leases:    make(map[string]*lease),
		workers:   make(map[string]*workerState),
		stopSweep: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	d.tracer.NameProcess(fleetPID, "readys-fleet")
	d.tracer.NameThread(fleetPID, jobsTID, "jobs")
	d.build = obs.ReadBuildInfo()

	for _, j := range replayed {
		if j.State == StateRunning {
			// The lease died with the previous process; hand the job back to
			// the queue. The attempt stays charged — the work was granted.
			j.State = StatePending
			j.Worker = ""
			if err := d.wal.Append(j); err != nil {
				return nil, err
			}
		}
		d.jobs[j.ID] = j
		if j.State != StateFailed {
			d.byHash[j.Hash] = j.ID
		}
		if j.Seq > d.seq {
			d.seq = j.Seq
		}
		switch j.State {
		case StatePending:
			d.metrics.queueDepth.Add(1)
		}
	}

	d.registerHandlers()
	go d.sweep()
	return d, nil
}

// sweep periodically expires overdue leases. Expiry is also checked lazily
// on every lease/heartbeat call, so the sweeper only bounds the staleness of
// jobs nobody is polling for.
func (d *Dispatcher) sweep() {
	defer close(d.sweepDone)
	t := time.NewTicker(d.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stopSweep:
			return
		case <-t.C:
			d.mu.Lock()
			d.expireLocked(time.Now())
			d.mu.Unlock()
		}
	}
}

// Close stops the sweeper and closes the WAL. In-memory state stays readable.
func (d *Dispatcher) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	close(d.stopSweep)
	<-d.sweepDone
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wal.Close()
}

// Metrics exposes the dispatcher's counter set.
func (d *Dispatcher) Metrics() *Metrics { return d.metrics }

// Store exposes the artifact store (the daemon and tests read it directly).
func (d *Dispatcher) Store() *ArtifactStore { return d.store }

// WriteTrace exports the dispatcher's request and job spans as Chrome
// trace-event JSON — the same document /debug/trace serves, available without
// an HTTP round-trip so an in-process run (fleet smoke) can merge it with the
// worker's export via obs.MergeTraces.
func (d *Dispatcher) WriteTrace(out io.Writer) error { return d.tracer.WriteChromeTrace(out) }

func (d *Dispatcher) logf(format string, args ...any) {
	if d.cfg.Logger != nil {
		d.cfg.Logger.Printf(format, args...)
	}
}

// Submit validates, dedups and enqueues a job. When a non-failed job with
// the same spec hash already exists, that job is returned with deduped=true
// and nothing is enqueued.
func (d *Dispatcher) Submit(spec JobSpec) (*Job, bool, error) {
	return d.submitTraced(spec, "", "")
}

// submitTraced is Submit with the submitter's trace context: the new job
// adopts the caller's trace (or mints one) and gets a job span whose parent
// is the submitting request's span, so dispatcher and worker exports stitch.
// A deduplicated submission keeps the existing job's original trace.
func (d *Dispatcher) submitTraced(spec JobSpec, traceID, parentSpan string) (*Job, bool, error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	hash := spec.Hash()
	now := time.Now()

	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byHash[hash]; ok {
		if j, live := d.jobs[id]; live && j.State != StateFailed {
			d.metrics.dedupHits.Inc()
			return j.clone(), true, nil
		}
	}
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	d.seq++
	j := &Job{
		ID:          fmt.Sprintf("j%06d", d.seq),
		Hash:        hash,
		Spec:        spec,
		TraceID:     traceID,
		SpanID:      obs.NewSpanID(),
		State:       StatePending,
		Seq:         d.seq,
		SubmittedAt: now,
	}
	if err := d.wal.Append(j); err != nil {
		d.seq--
		return nil, false, err
	}
	d.jobs[j.ID] = j
	d.byHash[hash] = j.ID
	d.tracer.Instant("job_submit", "job", fleetPID, jobsTID,
		float64(now.Sub(d.epoch))/float64(time.Microsecond),
		obs.SpanArgs(map[string]any{"job_id": j.ID, "type": string(spec.Type)}, j.TraceID, j.SpanID, parentSpan))
	d.metrics.queueDepth.Add(1)
	d.metrics.submitted.With(string(spec.Type)).Inc()
	d.maybeCompactLocked()
	return j.clone(), false, nil
}

// Register adds a worker and returns its assigned ID.
func (d *Dispatcher) Register(name string) *workerState {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.workerSeq++
	w := &workerState{
		ID:           fmt.Sprintf("w%04d-%s", d.workerSeq, name),
		Name:         name,
		RegisteredAt: time.Now(),
		LastSeen:     time.Now(),
	}
	d.workers[w.ID] = w
	d.metrics.workers.Set(int64(len(d.workers)))
	return w
}

// Deregister removes a worker. Any lease it still holds is expired
// immediately, requeueing the job for the survivors.
func (d *Dispatcher) Deregister(workerID string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.workers[workerID]; !ok {
		return ErrUnknownWorker
	}
	delete(d.workers, workerID)
	d.metrics.workers.Set(int64(len(d.workers)))
	for jobID, l := range d.leases {
		if l.worker == workerID {
			d.expireLeaseLocked(jobID, "worker deregistered holding the lease")
		}
	}
	return nil
}

// Lease hands the worker the highest-priority eligible pending job under a
// time-bounded lease, or returns (nil, 0, nil) when nothing is eligible.
func (d *Dispatcher) Lease(workerID string) (*Job, time.Duration, error) {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	w, ok := d.workers[workerID]
	if !ok {
		return nil, 0, ErrUnknownWorker
	}
	w.LastSeen = now
	d.expireLocked(now)

	var pick *Job
	for _, j := range d.jobs {
		if j.State != StatePending {
			continue
		}
		if j.excludes(workerID) && !d.allWorkersExcludedLocked(j) {
			continue
		}
		if !j.NotBefore.IsZero() && now.Before(j.NotBefore) {
			continue
		}
		if pick == nil ||
			j.Spec.Priority > pick.Spec.Priority ||
			(j.Spec.Priority == pick.Spec.Priority && j.Seq < pick.Seq) {
			pick = j
		}
	}
	if pick == nil {
		return nil, 0, nil
	}

	pick.State = StateRunning
	pick.Worker = workerID
	pick.Attempts++
	if pick.StartedAt.IsZero() {
		pick.StartedAt = now
	}
	if err := d.wal.Append(pick); err != nil {
		pick.State = StatePending
		pick.Worker = ""
		pick.Attempts--
		return nil, 0, err
	}
	d.leases[pick.ID] = &lease{worker: workerID, deadline: now.Add(d.cfg.LeaseTTL)}
	d.metrics.queueDepth.Add(-1)
	d.metrics.runningJobs.Add(1)
	return pick.clone(), d.cfg.LeaseTTL, nil
}

// Heartbeat extends the worker's lease on the job and records streamed
// progress. ErrLeaseLost tells the worker to abandon the job: the dispatcher
// has already requeued (or finished) it.
func (d *Dispatcher) Heartbeat(workerID, jobID string, p *Progress) error {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if w, ok := d.workers[workerID]; ok {
		w.LastSeen = now
	}
	d.expireLocked(now)
	l, ok := d.leases[jobID]
	if !ok || l.worker != workerID {
		return ErrLeaseLost
	}
	l.deadline = now.Add(d.cfg.LeaseTTL)
	if p != nil {
		// Progress is ephemeral observability state: kept in memory (and
		// served on GET /v1/jobs), deliberately not WAL-persisted.
		d.jobs[jobID].Progress = p
	}
	return nil
}

// Complete finishes a job the worker holds: artifacts must already be in the
// store (uploaded via PUT /v1/artifacts), result is a small typed summary.
// Completed train jobs are forwarded to the Publisher when one is wired.
func (d *Dispatcher) Complete(workerID, jobID string, artifacts map[string]string, result json.RawMessage) (*Job, error) {
	now := time.Now()

	d.mu.Lock()
	l, ok := d.leases[jobID]
	if !ok || l.worker != workerID {
		d.mu.Unlock()
		return nil, ErrLeaseLost
	}
	j := d.jobs[jobID]
	for name, digest := range artifacts {
		if !d.store.Has(digest) {
			d.mu.Unlock()
			return nil, fmt.Errorf("%w: %q (%s)", ErrArtifactMissing, name, digest)
		}
	}
	j.State = StateDone
	j.Worker = ""
	j.Artifacts = artifacts
	j.Result = result
	j.FinishedAt = now
	j.Error = ""
	if err := d.wal.Append(j); err != nil {
		j.State = StateRunning
		j.Worker = workerID
		d.mu.Unlock()
		return nil, err
	}
	delete(d.leases, jobID)
	if j.TraceID != "" {
		d.tracer.Instant("job_done", "job", fleetPID, jobsTID,
			float64(now.Sub(d.epoch))/float64(time.Microsecond),
			obs.SpanArgs(map[string]any{"job_id": j.ID, "worker": workerID}, j.TraceID, obs.NewSpanID(), j.SpanID))
	}
	d.metrics.runningJobs.Add(-1)
	d.metrics.completed.With(string(j.Spec.Type)).Inc()
	d.metrics.duration.With(string(j.Spec.Type)).Observe(now.Sub(j.StartedAt).Seconds())
	d.maybeCompactLocked()
	out := j.clone()
	d.mu.Unlock()

	d.publish(out)
	return out, nil
}

// publish forwards a completed train job's checkpoint to the publisher.
// Publish failures are logged, not propagated: the job's artifacts are safe
// in the store and the checkpoint can be re-published by hand.
func (d *Dispatcher) publish(j *Job) {
	if d.cfg.Publisher == nil || j.Spec.Type != JobTrain {
		return
	}
	digest, ok := j.Artifacts[ArtifactCheckpoint]
	if !ok {
		d.logf("fleet: job %s completed without a checkpoint artifact; nothing to publish", j.ID)
		return
	}
	data, err := d.store.Get(digest)
	if err != nil {
		d.logf("fleet: reading checkpoint of %s for publishing: %v", j.ID, err)
		return
	}
	base := j.Spec.Train.Agent.Name() + ".json"
	if err := d.cfg.Publisher.Publish(base, data); err != nil {
		d.logf("fleet: publishing %s from %s: %v", base, j.ID, err)
		return
	}
	d.logf("fleet: published %s (%d bytes) from %s", base, len(data), j.ID)
}

// Fail reports a worker-side job failure; the job is requeued with backoff
// (or terminally failed once the attempt budget is spent).
func (d *Dispatcher) Fail(workerID, jobID, msg string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	l, ok := d.leases[jobID]
	if !ok || l.worker != workerID {
		return ErrLeaseLost
	}
	delete(d.leases, jobID)
	d.metrics.runningJobs.Add(-1)
	return d.requeueLocked(d.jobs[jobID], workerID, msg)
}

// expireLocked requeues every job whose lease deadline has passed.
func (d *Dispatcher) expireLocked(now time.Time) {
	for jobID, l := range d.leases {
		if now.After(l.deadline) {
			d.metrics.leaseExpirations.Inc()
			d.expireLeaseLocked(jobID, fmt.Sprintf("lease expired (no heartbeat within %s)", d.cfg.LeaseTTL))
		}
	}
}

// expireLeaseLocked drops the lease and requeues its job.
func (d *Dispatcher) expireLeaseLocked(jobID, reason string) {
	l := d.leases[jobID]
	delete(d.leases, jobID)
	d.metrics.runningJobs.Add(-1)
	if err := d.requeueLocked(d.jobs[jobID], l.worker, reason); err != nil {
		d.logf("fleet: requeueing %s: %v", jobID, err)
	}
}

// allWorkersExcludedLocked reports whether every registered worker is on the
// job's excluded list. When that happens exclusion is ignored at lease time:
// in a single-worker fleet (or once every worker has failed the job once)
// honouring it would strand the job in pending with attempts to spare, never
// leased and never terminally failed.
func (d *Dispatcher) allWorkersExcludedLocked(j *Job) bool {
	for id := range d.workers {
		if !j.excludes(id) {
			return false
		}
	}
	return true
}

// requeueLocked moves a running job back to pending with exponential backoff
// and the failing worker excluded, or to failed once MaxAttempts lease
// grants have all ended badly.
func (d *Dispatcher) requeueLocked(j *Job, worker, reason string) error {
	j.Worker = ""
	j.Error = reason
	if !j.excludes(worker) {
		j.Excluded = append(j.Excluded, worker)
	}
	if j.Attempts >= d.cfg.MaxAttempts {
		j.State = StateFailed
		j.FinishedAt = time.Now()
		d.metrics.failed.With(string(j.Spec.Type)).Inc()
		delete(d.byHash, j.Hash)
		d.logf("fleet: job %s failed terminally after %d attempts: %s", j.ID, j.Attempts, reason)
	} else {
		backoff := d.cfg.RetryBackoff << uint(j.Attempts-1)
		if limit := d.cfg.RetryBackoff << 6; backoff > limit {
			backoff = limit
		}
		j.State = StatePending
		j.NotBefore = time.Now().Add(backoff)
		d.metrics.queueDepth.Add(1)
		d.metrics.retries.Inc()
		d.logf("fleet: job %s requeued (attempt %d/%d, backoff %s, excluding %s): %s",
			j.ID, j.Attempts, d.cfg.MaxAttempts, backoff, worker, reason)
	}
	return d.wal.Append(j)
}

// maybeCompactLocked rewrites the WAL once it holds several times more
// records than live jobs (every job transition appends one record, so a
// churning queue grows the log without bound otherwise).
func (d *Dispatcher) maybeCompactLocked() {
	if d.wal.Records() < d.cfg.CompactMinRecords || d.wal.Records() <= 3*len(d.jobs) {
		return
	}
	live := d.jobsSortedLocked()
	if err := d.wal.Compact(live); err != nil {
		d.logf("fleet: WAL compaction: %v", err)
		return
	}
	d.metrics.walCompactions.Inc()
	d.logf("fleet: WAL compacted to %d records", len(live))
}

func (d *Dispatcher) jobsSortedLocked() []*Job {
	out := make([]*Job, 0, len(d.jobs))
	for _, j := range d.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq < out[k].Seq })
	return out
}

// Jobs returns a snapshot of every job, in submission order.
func (d *Dispatcher) Jobs() []*Job {
	d.mu.Lock()
	defer d.mu.Unlock()
	jobs := d.jobsSortedLocked()
	out := make([]*Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.clone()
	}
	return out
}

// Job returns one job by ID.
func (d *Dispatcher) Job(id string) (*Job, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j.clone(), nil
}

// WorkerList returns a snapshot of the registered workers sorted by ID.
func (d *Dispatcher) WorkerList() []workerState {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]workerState, 0, len(d.workers))
	for _, w := range d.workers {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// CountByState tallies jobs per lifecycle state (the JSON metrics snapshot).
func (d *Dispatcher) CountByState() map[JobState]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[JobState]int, 4)
	for _, j := range d.jobs {
		out[j.State]++
	}
	return out
}
