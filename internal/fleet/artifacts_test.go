package fleet

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"readys/internal/exp"
)

func TestArtifactStoreRoundTrip(t *testing.T) {
	store, err := NewArtifactStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox")
	digest, err := store.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if digest != exp.HashBytes(data) {
		t.Fatalf("Put returned %s, want the content hash %s", digest, exp.HashBytes(data))
	}
	if !store.Has(digest) {
		t.Fatal("Has reports the stored digest missing")
	}
	got, err := store.Get(digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get returned %q, want %q", got, data)
	}
	// Idempotent: re-putting the same bytes yields the same digest.
	again, err := store.Put(data)
	if err != nil || again != digest {
		t.Fatalf("second Put = (%s, %v), want (%s, nil)", again, err, digest)
	}
}

func TestArtifactStoreRejectsBadDigests(t *testing.T) {
	store, err := NewArtifactStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "nope", "../../etc/passwd", strings.Repeat("g", 64)} {
		if store.Has(bad) {
			t.Errorf("Has(%q) = true", bad)
		}
		if _, err := store.Get(bad); err == nil {
			t.Errorf("Get(%q) succeeded", bad)
		}
	}
	if _, err := store.Get(strings.Repeat("a", 64)); err == nil {
		t.Error("Get of an absent (well-formed) digest succeeded")
	}
}

func TestArtifactStoreDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	store, err := NewArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := store.Put([]byte("original bytes"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip the stored blob behind the store's back.
	path := store.path(digest)
	if err := os.WriteFile(path, []byte("tampered bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(digest); err == nil {
		t.Fatal("Get returned tampered content without an integrity error")
	}
}
