package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"readys/internal/obs"
)

// newTestServer wires a dispatcher behind httptest and returns a typed
// client for it.
func newTestServer(t *testing.T, mutate func(*Config)) (*Dispatcher, *Client) {
	t.Helper()
	d := newTestDispatcher(t, mutate)
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return d, NewClient(srv.URL)
}

// TestHTTPLifecycle drives one job through the full wire protocol:
// register → submit → lease → heartbeat → upload → complete → inspect.
func TestHTTPLifecycle(t *testing.T) {
	_, client := newTestServer(t, nil)

	workerID, ttl, err := client.Register("httptest")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(workerID, "-httptest") || ttl <= 0 {
		t.Fatalf("register = (%q, %s)", workerID, ttl)
	}

	job, dup, err := client.Submit(figureJob("figure7", 3))
	if err != nil || dup {
		t.Fatalf("submit = (dup=%v, err=%v)", dup, err)
	}
	if _, dup, _ := client.Submit(figureJob("figure7", 3)); !dup {
		t.Fatal("wire resubmission not deduplicated")
	}

	leased, leaseTTL, err := client.Lease(workerID)
	if err != nil || leased == nil || leased.ID != job.ID {
		t.Fatalf("lease = (%v, %v)", leased, err)
	}
	if leaseTTL <= 0 {
		t.Fatalf("lease TTL = %s", leaseTTL)
	}
	// Queue drained: the next lease answers 204 → (nil, nil).
	if empty, _, err := client.Lease(workerID); err != nil || empty != nil {
		t.Fatalf("empty lease = (%v, %v), want (nil, nil)", empty, err)
	}

	if err := client.Heartbeat(workerID, job.ID, &Progress{Episode: 1, Episodes: 2}); err != nil {
		t.Fatal(err)
	}
	data := []byte("figure rows,go,here\n")
	digest, err := client.PutArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Complete(workerID, job.ID, map[string]string{ArtifactResult: digest}, json.RawMessage(`{"rows":1}`)); err != nil {
		t.Fatal(err)
	}

	got, err := client.Job(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || got.Artifacts[ArtifactResult] != digest {
		t.Fatalf("job after completion: %+v", got)
	}
	back, err := client.GetArtifact(digest)
	if err != nil || string(back) != string(data) {
		t.Fatalf("artifact round-trip = (%q, %v)", back, err)
	}
	all, err := client.Jobs()
	if err != nil || len(all) != 1 {
		t.Fatalf("jobs listing = (%d, %v)", len(all), err)
	}
	if err := client.Deregister(workerID); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	d, client := newTestServer(t, nil)
	base := client.BaseURL

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	cases := []struct {
		name string
		resp *http.Response
		want int
	}{
		{"unknown job", get("/v1/jobs/j999999"), http.StatusNotFound},
		{"malformed digest", get("/v1/artifacts/zz"), http.StatusBadRequest},
		{"absent artifact", get("/v1/artifacts/" + strings.Repeat("a", 64)), http.StatusNotFound},
		{"invalid submit", post("/v1/jobs", `{"spec":{"type":"train"}}`), http.StatusBadRequest},
		{"unknown submit field", post("/v1/jobs", `{"bogus":1}`), http.StatusBadRequest},
		{"unregistered lease", post("/v1/lease", `{"worker_id":"w9999-ghost"}`), http.StatusNotFound},
		{"zombie heartbeat", post("/v1/heartbeat", `{"worker_id":"w9999-ghost","job_id":"j000001"}`), http.StatusConflict},
		{"method not allowed", post("/healthz", `{}`), http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		if c.resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, c.resp.StatusCode, c.want)
		}
		if c.resp.Header.Get("X-Request-ID") == "" {
			t.Errorf("%s: no X-Request-ID header", c.name)
		}
	}

	// Client-level mapping: a heartbeat for a lease the worker lost is
	// surfaced as ErrLeaseLost, not a generic error.
	w := d.Register("mapper")
	if err := client.Heartbeat(w.ID, "j000042", nil); err != ErrLeaseLost {
		t.Fatalf("client heartbeat mapping: %v, want ErrLeaseLost", err)
	}

	// A completion citing a never-uploaded artifact is the client's fault:
	// 412 on the wire, ErrArtifactMissing from the typed client — not a 500.
	job, _, err := client.Submit(figureJob("figure7", 0))
	if err != nil {
		t.Fatal(err)
	}
	if leased, _, err := client.Lease(w.ID); err != nil || leased == nil {
		t.Fatalf("lease = (%v, %v)", leased, err)
	}
	resp, err := http.Post(base+"/v1/complete", "application/json",
		strings.NewReader(`{"worker_id":"`+w.ID+`","job_id":"`+job.ID+`","artifacts":{"result":"`+strings.Repeat("a", 64)+`"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("complete with missing artifact: status %d, want 412", resp.StatusCode)
	}
	err = client.Complete(w.ID, job.ID, map[string]string{ArtifactResult: strings.Repeat("b", 64)}, nil)
	if !errors.Is(err, ErrArtifactMissing) {
		t.Fatalf("client complete mapping: %v, want ErrArtifactMissing", err)
	}
}

func TestHTTPMetricsAndTrace(t *testing.T) {
	d, client := newTestServer(t, nil)
	w := d.Register("observer")
	if _, _, err := client.Submit(figureJob("figure7", 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Lease(w.ID); err != nil {
		t.Fatal(err)
	}

	// JSON snapshot.
	resp, err := http.Get(client.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Queue   map[string]int `json:"queue"`
		Workers int            `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Queue["running"] != 1 || snap.Workers != 1 {
		t.Fatalf("metrics snapshot = %+v", snap)
	}

	// Prometheus exposition.
	resp2, err := http.Get(client.BaseURL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("prometheus content type = %q", ct)
	}
	text := readAll(t, resp2)
	for _, want := range []string{
		"fleet_queue_depth 0",
		"fleet_jobs_running 1",
		"fleet_workers_registered 1",
		`fleet_jobs_submitted_total{type="figure"} 1`,
		`fleet_http_requests_total{endpoint="jobs"} 1`,
		"# TYPE fleet_job_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Chrome trace export carries the instrumented request spans.
	resp3, err := http.Get(client.BaseURL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	trace := readAll(t, resp3)
	var export struct {
		TraceEvents []obs.Event `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(trace), &export); err != nil {
		t.Fatalf("trace is not valid trace-event JSON: %v", err)
	}
	found := false
	for _, ev := range export.TraceEvents {
		if ev.Name == "jobs" && ev.Ph == obs.PhaseComplete {
			found = true
		}
	}
	if !found {
		t.Fatalf("no completed span for the jobs endpoint in %d events", len(export.TraceEvents))
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

// TestHTTPRequestSizeLimit checks the body cap is enforced on uploads.
func TestHTTPRequestSizeLimit(t *testing.T) {
	_, client := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 128 })
	if _, err := client.PutArtifact(make([]byte, 4096)); err == nil {
		t.Fatal("oversized artifact accepted")
	}
	small, err := client.PutArtifact([]byte("fits"))
	if err != nil || small == "" {
		t.Fatalf("small artifact rejected: %v", err)
	}
}
