package fleet

import (
	"readys/internal/exp"
	"readys/internal/taskgraph"
)

// Priorities of the paper grid: training runs first so evaluation sweeps
// find their checkpoints published (and otherwise fall back to training
// locally via exp.LoadOrTrain, which is correct but wasteful).
const (
	PriorityTrain = 10
	PriorityEval  = 5
	PriorityFig   = 0
)

// PaperGrid returns the full evaluation grid of the paper as fleet jobs:
// every trained agent the figures need (Figure 3's kernels × sizes plus the
// transfer experiments' platforms), one evaluation sweep per figure cell,
// and the model-free inference-time figure. Job hashes dedup resubmission,
// so posting the grid twice is idempotent.
func PaperGrid() []JobSpec {
	var jobs []JobSpec
	seen := map[string]bool{}
	train := func(spec exp.AgentSpec) {
		if seen[spec.Name()] {
			return
		}
		seen[spec.Name()] = true
		jobs = append(jobs, JobSpec{
			Type:     JobTrain,
			Priority: PriorityTrain,
			Train:    &TrainSpec{Agent: spec},
		})
	}
	eval := func(e exp.EvalSpec) {
		jobs = append(jobs, JobSpec{Type: JobEval, Priority: PriorityEval, Eval: &e})
	}

	// Figure 3: three kernels × T ∈ {2, 4, 8} on 2 CPUs + 2 GPUs, evaluated
	// on the training size (evaluation seed 42, as in exp.Figure3).
	for _, kind := range []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR} {
		for _, T := range []int{2, 4, 8} {
			spec := exp.DefaultAgentSpec(kind, T, 2, 2)
			train(spec)
			e := exp.DefaultEvalSpec(spec, T)
			eval(e)
		}
	}

	// Figures 4-6: transfer learning — Cholesky agents trained on
	// T ∈ {4, 6, 8}, tested unchanged on T ∈ {10, 12}, on 4 CPUs,
	// 2 CPUs + 2 GPUs and 4 GPUs (evaluation seed 43, as in
	// exp.TransferFigure).
	for _, plat := range [][2]int{{4, 0}, {2, 2}, {0, 4}} {
		for _, trainT := range []int{4, 6, 8} {
			spec := exp.DefaultAgentSpec(taskgraph.Cholesky, trainT, plat[0], plat[1])
			train(spec)
			for _, testT := range []int{10, 12} {
				e := exp.DefaultEvalSpec(spec, testT)
				e.Seed = 43
				eval(e)
			}
		}
	}

	// Figure 7 needs no trained model: inference time per decision.
	jobs = append(jobs, JobSpec{
		Type:     JobFigure,
		Priority: PriorityFig,
		Figure:   &FigureSpec{Name: "figure7"},
	})
	return jobs
}
