package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// WAL is the dispatcher's write-ahead log: one JSON record per line, each
// holding the full job after a state transition (last-writer-wins replay).
// Appends are fsynced before the transition is acknowledged, so a dispatcher
// crash never loses an acknowledged job and never resurrects an
// unacknowledged one. A partially written trailing line (crash mid-append)
// is detected and dropped on replay.
type WAL struct {
	path string
	f    *os.File
	bw   *bufio.Writer
	// records counts lines in the file (live + superseded); the dispatcher
	// compacts when it outgrows the live set.
	records int
}

// walRecord is one WAL line. Op is always "put" today; the field keeps the
// format self-describing so later ops (e.g. tombstones) stay loadable.
type walRecord struct {
	Op  string `json:"op"`
	Job *Job   `json:"job"`
}

// OpenWAL replays the log at path (creating it if missing) and returns the
// WAL opened for append plus the live jobs in replay order. Jobs that were
// running when the previous dispatcher died are returned as-is; the caller
// requeues them (their leases died with the process).
func OpenWAL(path string) (*WAL, []*Job, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("fleet: creating WAL dir: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("fleet: reading WAL: %w", err)
	}

	byID := make(map[string]*Job)
	records := 0
	// validEnd is the byte offset just past the last fully parsed,
	// newline-terminated record. Anything after it is a crash-truncated tail.
	validEnd := 0
	pos := 0
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		// The split consumed a '\n' after every element but the last; an
		// unterminated final line means the record's trailing newline (and so
		// its acknowledging fsync) never hit the disk.
		terminated := i < len(lines)-1
		lineEnd := pos + len(line)
		if terminated {
			lineEnd++
		}
		if len(bytes.TrimSpace(line)) == 0 {
			if terminated {
				validEnd = lineEnd
			}
			pos = lineEnd
			continue
		}
		var rec walRecord
		err := json.Unmarshal(line, &rec)
		if err != nil || !terminated {
			// A malformed or unterminated final line is the signature of a
			// crash mid-append: the record was never acknowledged (Append
			// syncs the full line before returning), so dropping it is
			// correct. Malformed lines elsewhere mean real corruption.
			if i == len(lines)-1 || allBlank(lines[i+1:]) {
				break
			}
			return nil, nil, fmt.Errorf("fleet: WAL %s corrupt at line %d: %w", path, i+1, err)
		}
		if rec.Op != "put" || rec.Job == nil || rec.Job.ID == "" {
			return nil, nil, fmt.Errorf("fleet: WAL %s has invalid record at line %d", path, i+1)
		}
		byID[rec.Job.ID] = rec.Job
		records++
		validEnd = lineEnd
		pos = lineEnd
	}

	// Drop the crash tail before reopening: O_APPEND would otherwise
	// concatenate the next record onto the partial line, turning it into
	// mid-file corruption that the following replay would refuse to load.
	if validEnd < len(data) {
		if err := os.Truncate(path, int64(validEnd)); err != nil {
			return nil, nil, fmt.Errorf("fleet: truncating WAL crash tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: opening WAL: %w", err)
	}
	w := &WAL{path: path, f: f, bw: bufio.NewWriter(f), records: records}

	jobs := make([]*Job, 0, len(byID))
	for _, j := range byID {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].Seq < jobs[k].Seq })
	return w, jobs, nil
}

func allBlank(lines [][]byte) bool {
	for _, l := range lines {
		if len(bytes.TrimSpace(l)) != 0 {
			return false
		}
	}
	return true
}

// Append durably records the job's current state. The job is not
// acknowledged to any client until Append returns.
func (w *WAL) Append(j *Job) error {
	line, err := json.Marshal(walRecord{Op: "put", Job: j})
	if err != nil {
		return fmt.Errorf("fleet: encoding WAL record: %w", err)
	}
	line = append(line, '\n')
	if _, err := w.bw.Write(line); err != nil {
		return fmt.Errorf("fleet: appending WAL record: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("fleet: flushing WAL: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("fleet: syncing WAL: %w", err)
	}
	w.records++
	return nil
}

// Records returns the number of records currently in the file (live plus
// superseded); the dispatcher's compaction policy reads it.
func (w *WAL) Records() int { return w.records }

// Compact atomically rewrites the log as one record per live job: write to a
// temp file in the same directory, fsync, rename over the log. A crash at
// any point leaves either the old complete log or the new complete log.
func (w *WAL) Compact(live []*Job) error {
	tmp := w.path + ".compact"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("fleet: creating compaction file: %w", err)
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	for _, j := range live {
		if err := enc.Encode(walRecord{Op: "put", Job: j}); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("fleet: writing compaction record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fleet: flushing compaction: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fleet: syncing compaction: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fleet: installing compacted WAL: %w", err)
	}
	// Swap the append handle onto the new file.
	w.f.Close()
	nf, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("fleet: reopening compacted WAL: %w", err)
	}
	w.f = nf
	w.bw = bufio.NewWriter(nf)
	w.records = len(live)
	return nil
}

// Close flushes and closes the log file.
func (w *WAL) Close() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Close()
}
