package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"readys/internal/obs"
)

// fleetPID is the pid under which the dispatcher records trace events.
const fleetPID = 1

// jobsTID is the trace lane carrying job lifecycle instants (submit/done).
// Request lanes start at tid 1 (reqSeq), so 0 is free.
const jobsTID = 0

// Canonical artifact names attached to completed jobs.
const (
	ArtifactCheckpoint = "checkpoint" // trained agent parameters (train jobs)
	ArtifactHistory    = "history"    // per-episode training stats JSONL (train jobs)
	ArtifactResult     = "result"     // comparison points / figure CSV (eval, figure jobs)
)

// Wire types of the fleet HTTP API. Every response body is JSON; errors are
// {"error": "..."} with a 4xx/5xx status.

// SubmitRequest is the body of POST /v1/jobs.
type SubmitRequest struct {
	Spec JobSpec `json:"spec"`
}

// SubmitResponse reports the accepted (or deduplicated) job.
type SubmitResponse struct {
	Job *Job `json:"job"`
	// Deduped is true when an existing job with the same spec hash answered
	// the submission.
	Deduped bool `json:"deduped"`
}

// RegisterRequest is the body of POST /v1/workers/register.
type RegisterRequest struct {
	Name string `json:"name"`
}

// RegisterResponse hands the worker its ID and the lease TTL it must
// heartbeat within.
type RegisterResponse struct {
	WorkerID   string `json:"worker_id"`
	LeaseTTLMS int64  `json:"lease_ttl_ms"`
}

// WorkerRequest identifies the calling worker (deregister, lease).
type WorkerRequest struct {
	WorkerID string `json:"worker_id"`
}

// LeaseResponse carries one leased job; the endpoint answers 204 when the
// queue has nothing eligible.
type LeaseResponse struct {
	Job        *Job  `json:"job"`
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
}

// HeartbeatRequest extends a lease and optionally streams progress.
type HeartbeatRequest struct {
	WorkerID string    `json:"worker_id"`
	JobID    string    `json:"job_id"`
	Progress *Progress `json:"progress,omitempty"`
}

// CompleteRequest finishes a job; artifact digests must already be uploaded.
type CompleteRequest struct {
	WorkerID  string            `json:"worker_id"`
	JobID     string            `json:"job_id"`
	Artifacts map[string]string `json:"artifacts,omitempty"`
	Result    json.RawMessage   `json:"result,omitempty"`
}

// FailRequest reports a worker-side failure.
type FailRequest struct {
	WorkerID string `json:"worker_id"`
	JobID    string `json:"job_id"`
	Error    string `json:"error"`
}

// PutArtifactResponse is the answer to PUT /v1/artifacts.
type PutArtifactResponse struct {
	Digest string `json:"digest"`
	Size   int    `json:"size"`
}

// JobsResponse lists the queue.
type JobsResponse struct {
	Jobs []*Job `json:"jobs"`
}

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Handler returns the dispatcher's HTTP handler.
func (d *Dispatcher) Handler() http.Handler { return d.mux }

func (d *Dispatcher) registerHandlers() {
	d.mux.HandleFunc("/v1/jobs", d.instrument("jobs", d.handleJobs))
	d.mux.HandleFunc("/v1/jobs/", d.instrument("job", d.handleJob))
	d.mux.HandleFunc("/v1/workers/register", d.instrument("register", d.handleRegister))
	d.mux.HandleFunc("/v1/workers/deregister", d.instrument("deregister", d.handleDeregister))
	d.mux.HandleFunc("/v1/lease", d.instrument("lease", d.handleLease))
	d.mux.HandleFunc("/v1/heartbeat", d.instrument("heartbeat", d.handleHeartbeat))
	d.mux.HandleFunc("/v1/complete", d.instrument("complete", d.handleComplete))
	d.mux.HandleFunc("/v1/fail", d.instrument("fail", d.handleFail))
	d.mux.HandleFunc("/v1/artifacts", d.instrument("artifact_put", d.handlePutArtifact))
	d.mux.HandleFunc("/v1/artifacts/", d.instrument("artifact_get", d.handleGetArtifact))
	d.mux.HandleFunc("/healthz", d.instrument("healthz", d.handleHealthz))
	d.mux.HandleFunc("/metrics", d.instrument("metrics", d.handleMetrics))
	d.mux.HandleFunc("/debug/trace", d.handleTrace)
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-endpoint counters, a latency
// histogram, a request ID (echoed as X-Request-ID) and a request span on the
// dispatcher's trace ring.
func (d *Dispatcher) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := d.reqSeq.Add(1)
		w.Header().Set("X-Request-ID", strconv.FormatInt(id, 10))
		// Adopt the caller's trace so worker- and client-originated requests
		// stitch into their job's timeline; mint one otherwise.
		traceID, parentSpan, _ := obs.ExtractTraceContext(r.Header)
		if traceID == "" {
			traceID = obs.NewTraceID()
		}
		sc := obs.SpanContext{TraceID: traceID, SpanID: obs.NewSpanID()}
		w.Header().Set(obs.HeaderTraceID, traceID)
		r = r.WithContext(context.WithValue(r.Context(), traceKey{}, sc))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		d.metrics.ObserveHTTP(name, time.Since(start), sw.status >= 400)
		d.tracer.Complete(name, "request", fleetPID, id,
			float64(start.Sub(d.epoch))/float64(time.Microsecond),
			float64(time.Since(start))/float64(time.Microsecond),
			obs.SpanArgs(map[string]any{"request_id": id, "endpoint": name, "status": sw.status},
				sc.TraceID, sc.SpanID, parentSpan))
	}
}

// traceKey carries the request span's trace context through the request
// context, so handlers spawning further work (job submission) can parent it.
type traceKey struct{}

// requestTrace returns the trace context instrument() assigned (zero when the
// handler is exercised directly in tests).
func requestTrace(ctx context.Context) obs.SpanContext {
	sc, _ := ctx.Value(traceKey{}).(obs.SpanContext)
	return sc
}

func (d *Dispatcher) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		d.logf("fleet: writing response: %v", err)
	}
}

func (d *Dispatcher) writeError(w http.ResponseWriter, status int, err error) {
	d.writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// decode parses a JSON request body with the configured size cap.
func (d *Dispatcher) decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, d.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("fleet: decoding request: %w", err)
	}
	return nil
}

// leaseStatus maps dispatcher errors onto HTTP statuses: lost leases are
// 409 (the worker must abandon), unknown workers 404, completions citing
// missing artifacts 412 (the client must upload before completing).
func (d *Dispatcher) leaseStatus(err error) int {
	switch {
	case errors.Is(err, ErrLeaseLost):
		return http.StatusConflict
	case errors.Is(err, ErrUnknownWorker), errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrArtifactMissing):
		return http.StatusPreconditionFailed
	default:
		return http.StatusInternalServerError
	}
}

func (d *Dispatcher) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req SubmitRequest
		if err := d.decode(w, r, &req); err != nil {
			d.writeError(w, http.StatusBadRequest, err)
			return
		}
		sc := requestTrace(r.Context())
		job, deduped, err := d.submitTraced(req.Spec, sc.TraceID, sc.SpanID)
		if err != nil {
			d.writeError(w, http.StatusBadRequest, err)
			return
		}
		d.writeJSON(w, http.StatusOK, SubmitResponse{Job: job, Deduped: deduped})
	case http.MethodGet:
		d.writeJSON(w, http.StatusOK, JobsResponse{Jobs: d.Jobs()})
	default:
		d.writeError(w, http.StatusMethodNotAllowed, errors.New("fleet: use GET or POST"))
	}
}

func (d *Dispatcher) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		d.writeError(w, http.StatusMethodNotAllowed, errors.New("fleet: use GET"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	job, err := d.Job(id)
	if err != nil {
		d.writeError(w, http.StatusNotFound, err)
		return
	}
	d.writeJSON(w, http.StatusOK, job)
}

func (d *Dispatcher) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		d.writeError(w, http.StatusMethodNotAllowed, errors.New("fleet: use POST"))
		return
	}
	var req RegisterRequest
	if err := d.decode(w, r, &req); err != nil {
		d.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" {
		req.Name = "worker"
	}
	ws := d.Register(req.Name)
	d.writeJSON(w, http.StatusOK, RegisterResponse{
		WorkerID:   ws.ID,
		LeaseTTLMS: d.cfg.LeaseTTL.Milliseconds(),
	})
}

func (d *Dispatcher) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		d.writeError(w, http.StatusMethodNotAllowed, errors.New("fleet: use POST"))
		return
	}
	var req WorkerRequest
	if err := d.decode(w, r, &req); err != nil {
		d.writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := d.Deregister(req.WorkerID); err != nil {
		d.writeError(w, d.leaseStatus(err), err)
		return
	}
	d.writeJSON(w, http.StatusOK, map[string]string{"status": "deregistered"})
}

func (d *Dispatcher) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		d.writeError(w, http.StatusMethodNotAllowed, errors.New("fleet: use POST"))
		return
	}
	var req WorkerRequest
	if err := d.decode(w, r, &req); err != nil {
		d.writeError(w, http.StatusBadRequest, err)
		return
	}
	job, ttl, err := d.Lease(req.WorkerID)
	if err != nil {
		d.writeError(w, d.leaseStatus(err), err)
		return
	}
	if job == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	d.writeJSON(w, http.StatusOK, LeaseResponse{Job: job, LeaseTTLMS: ttl.Milliseconds()})
}

func (d *Dispatcher) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		d.writeError(w, http.StatusMethodNotAllowed, errors.New("fleet: use POST"))
		return
	}
	var req HeartbeatRequest
	if err := d.decode(w, r, &req); err != nil {
		d.writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := d.Heartbeat(req.WorkerID, req.JobID, req.Progress); err != nil {
		d.writeError(w, d.leaseStatus(err), err)
		return
	}
	d.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (d *Dispatcher) handleComplete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		d.writeError(w, http.StatusMethodNotAllowed, errors.New("fleet: use POST"))
		return
	}
	var req CompleteRequest
	if err := d.decode(w, r, &req); err != nil {
		d.writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := d.Complete(req.WorkerID, req.JobID, req.Artifacts, req.Result)
	if err != nil {
		d.writeError(w, d.leaseStatus(err), err)
		return
	}
	d.writeJSON(w, http.StatusOK, job)
}

func (d *Dispatcher) handleFail(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		d.writeError(w, http.StatusMethodNotAllowed, errors.New("fleet: use POST"))
		return
	}
	var req FailRequest
	if err := d.decode(w, r, &req); err != nil {
		d.writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := d.Fail(req.WorkerID, req.JobID, req.Error); err != nil {
		d.writeError(w, d.leaseStatus(err), err)
		return
	}
	d.writeJSON(w, http.StatusOK, map[string]string{"status": "requeued"})
}

func (d *Dispatcher) handlePutArtifact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPut && r.Method != http.MethodPost {
		d.writeError(w, http.StatusMethodNotAllowed, errors.New("fleet: use PUT"))
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, d.cfg.MaxBodyBytes))
	if err != nil {
		d.writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("fleet: reading artifact: %w", err))
		return
	}
	digest, err := d.store.Put(data)
	if err != nil {
		d.writeError(w, http.StatusInternalServerError, err)
		return
	}
	d.metrics.artifactBytes.Add(uint64(len(data)))
	d.writeJSON(w, http.StatusOK, PutArtifactResponse{Digest: digest, Size: len(data)})
}

func (d *Dispatcher) handleGetArtifact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		d.writeError(w, http.StatusMethodNotAllowed, errors.New("fleet: use GET"))
		return
	}
	digest := strings.TrimPrefix(r.URL.Path, "/v1/artifacts/")
	data, err := d.store.Get(digest)
	if err != nil {
		status := http.StatusNotFound
		if !digestRE.MatchString(digest) {
			status = http.StatusBadRequest
		}
		d.writeError(w, status, fmt.Errorf("fleet: artifact %s: %w", digest, err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (d *Dispatcher) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		d.writeError(w, http.StatusMethodNotAllowed, errors.New("fleet: use GET"))
		return
	}
	d.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"wal":            d.cfg.WALPath,
		"build":          d.build,
		"uptime_seconds": time.Since(d.epoch).Seconds(),
	})
}

func (d *Dispatcher) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		d.writeError(w, http.StatusMethodNotAllowed, errors.New("fleet: use GET"))
		return
	}
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := d.metrics.WritePrometheus(w); err != nil {
			d.logf("fleet: writing prometheus metrics: %v", err)
		}
		return
	}
	states := d.CountByState()
	d.writeJSON(w, http.StatusOK, map[string]any{
		"queue": map[string]any{
			"pending": states[StatePending],
			"running": states[StateRunning],
			"done":    states[StateDone],
			"failed":  states[StateFailed],
		},
		"workers":           len(d.WorkerList()),
		"lease_expirations": d.metrics.leaseExpirations.Value(),
		"retries":           d.metrics.retries.Value(),
		"dedup_hits":        d.metrics.dedupHits.Value(),
	})
}

// handleTrace exports the request-span ring as Chrome trace-event JSON.
func (d *Dispatcher) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		d.writeError(w, http.StatusMethodNotAllowed, errors.New("fleet: use GET"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := d.tracer.WriteChromeTrace(w); err != nil {
		d.logf("fleet: writing trace: %v", err)
	}
}
