package fleet

import (
	"os"
	"path/filepath"
	"testing"

	"readys/internal/serve"
)

// The train → serve loop depends on serve's registry satisfying the fleet's
// publisher contract.
var _ Publisher = (*serve.Registry)(nil)

func TestDirPublisherAtomicWrite(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "models") // not yet created: Publish must mkdir
	p := DirPublisher{Dir: dir}
	if err := p.Publish("model.json", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := p.Publish("model.json", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "model.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v2" {
		t.Fatalf("published content %q, want the last write", data)
	}
	// No staging temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("publish dir has %d entries, want 1: %v", len(entries), entries)
	}
}

func TestDirPublisherRejectsTraversal(t *testing.T) {
	p := DirPublisher{Dir: t.TempDir()}
	for _, bad := range []string{"", "../escape.json", "a/b.json", `a\b.json`} {
		if err := p.Publish(bad, []byte("x")); err == nil {
			t.Errorf("Publish(%q) accepted", bad)
		}
	}
}
