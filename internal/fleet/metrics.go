package fleet

import (
	"io"
	"time"

	"readys/internal/obs"
)

// jobLatencyBuckets are the job-duration histogram bounds in seconds: fleet
// jobs range from sub-second smoke trainings to multi-hour full-grid cells.
var jobLatencyBuckets = []float64{0.1, 0.5, 1, 5, 15, 60, 300, 900, 3600, 14400}

// httpLatencyBucketsMS mirror the serving daemon's request buckets.
var httpLatencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}

// Metrics is the dispatcher's counter set on the shared obs registry,
// exported at GET /metrics as JSON or Prometheus text exposition.
//
// Queue occupancy is tracked with plain gauges updated on every transition
// (not GaugeFuncs), which keeps the exposition a pure function of the event
// history — the golden exposition test depends on that.
type Metrics struct {
	reg *obs.Registry

	queueDepth  *obs.Gauge // jobs in state pending
	runningJobs *obs.Gauge // jobs in state running
	workers     *obs.Gauge // registered workers

	leaseExpirations *obs.Counter
	retries          *obs.Counter
	dedupHits        *obs.Counter

	submitted *obs.CounterVec // by job type
	completed *obs.CounterVec
	failed    *obs.CounterVec // terminal failures only
	duration  *obs.HistogramVec

	artifactBytes  *obs.Counter
	walCompactions *obs.Counter

	httpRequests *obs.CounterVec
	httpErrors   *obs.CounterVec
	httpLatency  *obs.HistogramVec
}

// NewMetrics returns an empty fleet metric set.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		reg:         reg,
		queueDepth:  reg.Gauge("fleet_queue_depth", "Jobs waiting in the dispatcher queue."),
		runningJobs: reg.Gauge("fleet_jobs_running", "Jobs currently held under a worker lease."),
		workers:     reg.Gauge("fleet_workers_registered", "Workers currently registered."),

		leaseExpirations: reg.Counter("fleet_lease_expirations_total", "Leases expired after missed heartbeats."),
		retries:          reg.Counter("fleet_job_retries_total", "Jobs requeued after a lease expiry or worker failure."),
		dedupHits:        reg.Counter("fleet_dedup_hits_total", "Job submissions answered by an existing job with the same spec hash."),

		submitted: reg.CounterVec("fleet_jobs_submitted_total", "Jobs accepted into the queue by type.", "type"),
		completed: reg.CounterVec("fleet_jobs_completed_total", "Jobs completed by type.", "type"),
		failed:    reg.CounterVec("fleet_jobs_failed_total", "Jobs terminally failed (retry budget spent) by type.", "type"),
		duration:  reg.HistogramVec("fleet_job_duration_seconds", "Wall-clock from first lease to completion by type.", jobLatencyBuckets, "type"),

		artifactBytes:  reg.Counter("fleet_artifact_bytes_total", "Bytes accepted into the artifact store."),
		walCompactions: reg.Counter("fleet_wal_compactions_total", "WAL compaction passes."),

		httpRequests: reg.CounterVec("fleet_http_requests_total", "HTTP requests by endpoint.", "endpoint"),
		httpErrors:   reg.CounterVec("fleet_http_errors_total", "HTTP responses with status >= 400 by endpoint.", "endpoint"),
		httpLatency:  reg.HistogramVec("fleet_http_latency_ms", "Request latency in milliseconds by endpoint.", httpLatencyBucketsMS, "endpoint"),
	}
	return m
}

// Registry exposes the underlying obs registry.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// ObserveHTTP records one finished request against an endpoint.
func (m *Metrics) ObserveHTTP(endpoint string, d time.Duration, isError bool) {
	m.httpRequests.With(endpoint).Inc()
	e := m.httpErrors.With(endpoint) // materialise the series even at zero
	if isError {
		e.Inc()
	}
	m.httpLatency.With(endpoint).Observe(float64(d) / float64(time.Millisecond))
}

// WritePrometheus renders the metric set as Prometheus 0.0.4 text.
func (m *Metrics) WritePrometheus(w io.Writer) error { return m.reg.WriteText(w) }
