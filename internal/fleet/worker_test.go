package fleet

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"readys/internal/exp"
)

// startWorker launches a worker against the dispatcher URL and returns it
// with the channel Run's error arrives on.
func startWorker(t *testing.T, ctx context.Context, cfg WorkerConfig) (*Worker, chan error) {
	t.Helper()
	return startWorkerWith(t, ctx, cfg, nil)
}

// startWorkerWith is startWorker with a configure step that runs before the
// worker goroutine launches (e.g. installing testHookJobStart race-free).
func startWorkerWith(t *testing.T, ctx context.Context, cfg WorkerConfig, configure func(*Worker)) (*Worker, chan error) {
	t.Helper()
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 10 * time.Millisecond
	}
	if cfg.ModelsDir == "" {
		cfg.ModelsDir = filepath.Join(t.TempDir(), "models")
	}
	w := NewWorker(cfg)
	if configure != nil {
		configure(w)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	return w, done
}

// waitForState polls a job until it reaches want (or the deadline passes).
func waitForState(t *testing.T, d *Dispatcher, jobID string, want JobState, timeout time.Duration) *Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j, err := d.Job(jobID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == want {
			return j
		}
		if j.State == StateFailed && want != StateFailed {
			t.Fatalf("job %s failed: %s", jobID, j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (want %q)", jobID, j.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWorkerGracefulShutdown cancels the worker's context the moment it
// starts a job (the in-process equivalent of SIGTERM mid-job): the in-flight
// training must run to completion, its artifacts uploaded and the job
// completed, and only then does the worker deregister.
func TestWorkerGracefulShutdown(t *testing.T) {
	d := newTestDispatcher(t, nil)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	job, _, err := d.Submit(trainJob(0))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewWorker(WorkerConfig{
		Dispatcher:   srv.URL,
		Name:         "drainer",
		PollInterval: 10 * time.Millisecond,
		ModelsDir:    filepath.Join(t.TempDir(), "models"),
	})
	w.testHookJobStart = func(*Job) { cancel() } // SIGTERM arrives as the job starts
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("worker shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not drain")
	}
	j, err := d.Job(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateDone {
		t.Fatalf("in-flight job abandoned on shutdown: state %q (%s)", j.State, j.Error)
	}
	if j.Artifacts[ArtifactCheckpoint] == "" || j.Artifacts[ArtifactHistory] == "" {
		t.Fatalf("drained job missing artifacts: %v", j.Artifacts)
	}
	if ws := d.WorkerList(); len(ws) != 0 {
		t.Fatalf("worker did not deregister: %v", ws)
	}
}

// TestWorkerRunsEvalJob executes an eval sweep against a pre-trained
// checkpoint in the worker's model cache.
func TestWorkerRunsEvalJob(t *testing.T) {
	d := newTestDispatcher(t, nil)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	modelsDir := filepath.Join(t.TempDir(), "models")
	agent := tinyAgentSpec()
	if _, _, err := exp.TrainAgentWith(agent, modelsDir, exp.TrainOptions{Episodes: 3}); err != nil {
		t.Fatal(err)
	}
	evalSpec := exp.EvalSpec{
		Agent: agent,
		Kind:  agent.Kind, T: agent.T, NumCPU: agent.NumCPU, NumGPU: agent.NumGPU,
		Sigmas: []float64{0, 0.2},
		Runs:   2,
		Seed:   7,
	}
	job, _, err := d.Submit(JobSpec{Type: JobEval, Eval: &evalSpec})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, done := startWorker(t, ctx, WorkerConfig{
		Dispatcher: srv.URL,
		Name:       "evaluator",
		ModelsDir:  modelsDir, // checkpoint pre-seeded: LoadOrTrain must hit it
	})

	finished := waitForState(t, d, job.ID, StateDone, 60*time.Second)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("worker shutdown: %v", err)
	}

	data, err := d.Store().Get(finished.Artifacts[ArtifactResult])
	if err != nil {
		t.Fatal(err)
	}
	var points []exp.ComparisonPoint
	if err := json.Unmarshal(data, &points); err != nil {
		t.Fatalf("result artifact is not a comparison table: %v", err)
	}
	if len(points) != len(evalSpec.Sigmas) {
		t.Fatalf("eval produced %d points, want one per sigma (%d)", len(points), len(evalSpec.Sigmas))
	}
}

// TestWorkerReportsJobFailure checks a worker-side error surfaces as a
// dispatcher-side requeue (not a hang or a silent drop).
func TestWorkerReportsJobFailure(t *testing.T) {
	d := newTestDispatcher(t, func(c *Config) {
		c.MaxAttempts = 1 // fail terminally on the first error
	})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// A corrupt checkpoint in the worker's model cache makes the eval's
	// LoadOrTrain fail fast (the file exists, so no training fallback).
	agent := tinyAgentSpec()
	modelsDir := filepath.Join(t.TempDir(), "models")
	if err := os.MkdirAll(modelsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(agent.ModelPath(modelsDir), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	evalSpec := exp.EvalSpec{
		Agent: agent,
		Kind:  agent.Kind, T: 2, NumCPU: 1, NumGPU: 1,
		Sigmas: []float64{0},
		Runs:   1,
		Seed:   7,
	}
	job, _, err := d.Submit(JobSpec{Type: JobEval, Eval: &evalSpec})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, done := startWorker(t, ctx, WorkerConfig{
		Dispatcher: srv.URL,
		Name:       "failer",
		ModelsDir:  modelsDir,
	})

	finished := waitForState(t, d, job.ID, StateFailed, 60*time.Second)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("worker shutdown: %v", err)
	}
	if finished.Error == "" {
		t.Fatal("failed job carries no error message")
	}
	if got := d.Metrics().failed.With(string(JobEval)).Value(); got != 1 {
		t.Fatalf("failed counter = %d, want 1", got)
	}
}
