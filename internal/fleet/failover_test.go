package fleet

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"readys/internal/exp"
	"readys/internal/obs"
)

// failoverConfig shrinks every fault-tolerance timescale so a kill → expiry →
// requeue → survivor cycle fits in well under a second of waiting.
func failoverConfig(c *Config) {
	c.LeaseTTL = 200 * time.Millisecond
	c.SweepInterval = 20 * time.Millisecond
	c.RetryBackoff = time.Millisecond
	c.MaxAttempts = 3
}

// TestWorkerKillFailover kills a worker mid-job (heartbeats stop, the result
// is never reported — the in-process equivalent of kill -9) and checks the
// dispatcher notices via lease expiry, requeues with the dead worker
// excluded, and a survivor completes the job.
func TestWorkerKillFailover(t *testing.T) {
	d := newTestDispatcher(t, failoverConfig)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	job, _, err := d.Submit(trainJob(0))
	if err != nil {
		t.Fatal(err)
	}

	// Victim first, alone, so it is guaranteed to win the first lease.
	victimCtx, victimCancel := context.WithCancel(context.Background())
	defer victimCancel()
	victim, victimDone := startWorkerWith(t, victimCtx, WorkerConfig{
		Dispatcher: srv.URL,
		Name:       "victim",
	}, func(w *Worker) {
		w.testHookJobStart = func(*Job) { w.Kill() }
	})

	select {
	case err := <-victimDone:
		if err != nil {
			t.Fatalf("killed worker returned error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("killed worker never exited")
	}
	victimID := victim.ID()
	if victimID == "" {
		t.Fatal("victim never registered")
	}

	// The survivor arrives after the kill and completes the requeued job.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	survivor, survivorDone := startWorker(t, ctx, WorkerConfig{
		Dispatcher: srv.URL,
		Name:       "survivor",
	})
	finished := waitForState(t, d, job.ID, StateDone, 60*time.Second)
	cancel()
	if err := <-survivorDone; err != nil {
		t.Fatalf("survivor shutdown: %v", err)
	}

	if finished.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (victim + survivor)", finished.Attempts)
	}
	if !finished.excludes(victimID) {
		t.Fatalf("victim %s not excluded after lease expiry: %v", victimID, finished.Excluded)
	}
	if finished.Worker != "" {
		t.Fatalf("done job still assigned to %s", finished.Worker)
	}
	if finished.Artifacts[ArtifactCheckpoint] == "" || finished.Artifacts[ArtifactHistory] == "" {
		t.Fatalf("completed job missing artifacts: %v", finished.Artifacts)
	}
	if got := d.Metrics().leaseExpirations.Value(); got == 0 {
		t.Fatal("lease expiration not counted")
	}
	if got := d.Metrics().retries.Value(); got == 0 {
		t.Fatal("retry not counted")
	}
	_ = survivor
}

// TestTrainJobDeterministicAcrossFailover is the subsystem's acceptance
// criterion: a train job executed through the dispatcher and workers —
// including one injected worker kill and requeue — produces a checkpoint and
// per-episode history JSONL bit-identical to a local TrainAgentWith run of
// the same spec and seed (the exact code path of readys-train -telemetry).
func TestTrainJobDeterministicAcrossFailover(t *testing.T) {
	spec := tinyAgentSpec()
	const episodes = 5

	// Reference run: plain local training with a JSONL telemetry sink.
	scratch := t.TempDir()
	historyPath := filepath.Join(scratch, "history.jsonl")
	sink, err := obs.CreateJSONL(historyPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := exp.TrainAgentWith(spec, scratch, exp.TrainOptions{
		Episodes:  episodes,
		Telemetry: sink,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	wantCheckpoint, err := os.ReadFile(spec.ModelPath(scratch))
	if err != nil {
		t.Fatal(err)
	}
	wantHistory, err := os.ReadFile(historyPath)
	if err != nil {
		t.Fatal(err)
	}

	// Fleet run with an injected failure: the first worker is killed the
	// moment it starts the job; the lease expires and a second worker
	// re-runs it from scratch.
	published := filepath.Join(t.TempDir(), "published")
	d := newTestDispatcher(t, func(c *Config) {
		failoverConfig(c)
		c.Publisher = DirPublisher{Dir: published}
	})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	job, _, err := d.Submit(JobSpec{Type: JobTrain, Train: &TrainSpec{Agent: spec, Episodes: episodes}})
	if err != nil {
		t.Fatal(err)
	}

	victimCtx, victimCancel := context.WithCancel(context.Background())
	defer victimCancel()
	_, victimDone := startWorkerWith(t, victimCtx, WorkerConfig{Dispatcher: srv.URL, Name: "victim"},
		func(w *Worker) {
			w.testHookJobStart = func(*Job) { w.Kill() }
		})
	select {
	case <-victimDone:
	case <-time.After(30 * time.Second):
		t.Fatal("killed worker never exited")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, survivorDone := startWorker(t, ctx, WorkerConfig{Dispatcher: srv.URL, Name: "survivor"})
	finished := waitForState(t, d, job.ID, StateDone, 120*time.Second)
	cancel()
	if err := <-survivorDone; err != nil {
		t.Fatalf("survivor shutdown: %v", err)
	}
	if finished.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (the kill must have forced a requeue)", finished.Attempts)
	}

	gotCheckpoint, err := d.Store().Get(finished.Artifacts[ArtifactCheckpoint])
	if err != nil {
		t.Fatal(err)
	}
	gotHistory, err := d.Store().Get(finished.Artifacts[ArtifactHistory])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCheckpoint, wantCheckpoint) {
		t.Errorf("fleet checkpoint differs from the local run (%d vs %d bytes)",
			len(gotCheckpoint), len(wantCheckpoint))
	}
	if !bytes.Equal(gotHistory, wantHistory) {
		t.Errorf("fleet history differs from the local run (%d vs %d bytes)",
			len(gotHistory), len(wantHistory))
	}

	// The train → serve hook saw the same bytes: the published checkpoint is
	// the artifact, verbatim.
	pub, err := os.ReadFile(filepath.Join(published, spec.Name()+".json"))
	if err != nil {
		t.Fatalf("checkpoint was not published: %v", err)
	}
	if !bytes.Equal(pub, wantCheckpoint) {
		t.Error("published checkpoint differs from the training artifact")
	}
}
