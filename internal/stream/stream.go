package stream

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"readys/internal/obs"
	"readys/internal/platform"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// Config describes one stream run: the persistent platform, the arrival
// list, and the simulation knobs shared with internal/sim.
type Config struct {
	Platform platform.Platform
	// Arrivals is the job stream, sorted by Run on time (stable).
	Arrivals []Arrival
	// Sigma is the duration noise level.
	Sigma float64
	// Faults, if non-nil, replays mid-stream against the shared platform.
	Faults *sim.FaultPlan
	// Rng drives duration sampling (and nothing else); required.
	Rng *rand.Rand
	// Tracer, if non-nil, records the whole stream (arrivals, every job's
	// slices, fault spans) as one Chrome trace.
	Tracer *obs.Tracer
	// Metrics, if non-nil, receives job-level metrics: readys_stream_*
	// counters, response-time histogram and terminal gauges.
	Metrics *obs.Registry
	// Recorder, if non-nil, is the cluster flight recorder: the run's
	// arrivals, placements, kills, fault transitions and ready-depth samples
	// land in its ring and the Result keeps a reference (Result.Flight) for
	// export. Recording is bit-inert: results are identical with it off.
	Recorder *obs.FlightRecorder
}

// JobResult is the job-level outcome streaming scheduling is judged on.
type JobResult struct {
	Job      int
	Kind     taskgraph.Kind
	Size     int
	Tasks    int
	ArriveAt float64
	DoneAt   float64
	// Response is DoneAt − ArriveAt: waiting and service combined.
	Response float64
	// IsolatedMakespan is the projected makespan of a noise-free HEFT run of
	// this job alone on an empty platform — the classical normaliser.
	IsolatedMakespan float64
	// Slowdown is Response / IsolatedMakespan (≥ 0; values near 1 mean the
	// shared cluster served the job as fast as a dedicated one could).
	Slowdown float64
}

// Result aggregates a stream run.
type Result struct {
	Jobs []JobResult
	// Makespan is the completion time of the last task (after Drain).
	Makespan float64
	// MeanResponse and P99Response summarise job response times in ms
	// (nearest-rank p99).
	MeanResponse float64
	P99Response  float64
	// MeanSlowdown averages per-job slowdowns.
	MeanSlowdown float64
	// Utilization is Σ busy time / (resources × makespan) ∈ [0, 1], busy
	// including killed attempts (the cluster genuinely spent them).
	Utilization float64
	// MeanReadyDepth is the time-averaged ready-queue depth.
	MeanReadyDepth float64
	Kills          int
	Decisions      int
	IdleDecisions  int

	// Sim is the union-schedule result; Validate checks it.
	Sim sim.Result

	// Flight is the run's flight recorder (nil when Config.Recorder was
	// unset): the queryable event window behind post-mortems.
	Flight *obs.FlightRecorder

	graph    *taskgraph.Graph
	timingOf func(task int) platform.Timing
	cfg      Config
}

// Run schedules the arrival stream under one policy on a persistent cluster
// and returns job-level metrics. The policy sees the union of ready tasks
// across all live jobs; fault plans fire mid-stream; everything is
// deterministic in (Config.Rng seed, Arrivals, Faults).
func Run(pol sim.Policy, cfg Config) (*Result, error) {
	if cfg.Rng == nil {
		return nil, fmt.Errorf("stream: Config.Rng is required")
	}
	if len(cfg.Arrivals) == 0 {
		return nil, fmt.Errorf("stream: no arrivals")
	}
	arrivals := append([]Arrival(nil), cfg.Arrivals...)
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].At < arrivals[j].At })
	for _, a := range arrivals {
		if err := a.validate(); err != nil {
			return nil, fmt.Errorf("stream: %w", err)
		}
	}

	cl, err := sim.NewCluster(cfg.Platform, sim.Options{
		Sigma:    cfg.Sigma,
		Rng:      cfg.Rng,
		Faults:   cfg.Faults,
		Tracer:   cfg.Tracer,
		Recorder: cfg.Recorder,
	})
	if err != nil {
		return nil, err
	}

	var (
		jobs      = make([]JobResult, len(arrivals))
		remaining = make([]int, len(arrivals)) // undone tasks per job
		jobOfTask []int                        // union task ID → job
	)
	var mArrived, mCompleted *obs.Counter
	var mResponse *obs.Histogram
	if cfg.Metrics != nil {
		mArrived = cfg.Metrics.Counter("readys_stream_jobs_arrived_total", "jobs injected into the cluster")
		mCompleted = cfg.Metrics.Counter("readys_stream_jobs_completed_total", "jobs whose last task completed")
		mResponse = cfg.Metrics.Histogram("readys_stream_job_response_ms", "job response time (completion − arrival) in ms",
			[]float64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000})
	}
	cl.OnTaskDone(func(task int, at float64) {
		j := jobOfTask[task]
		remaining[j]--
		if remaining[j] == 0 {
			jobs[j].DoneAt = at
			jobs[j].Response = at - jobs[j].ArriveAt
			if jobs[j].IsolatedMakespan > 0 {
				jobs[j].Slowdown = jobs[j].Response / jobs[j].IsolatedMakespan
			}
			if mCompleted != nil {
				mCompleted.Inc()
				mResponse.Observe(jobs[j].Response)
			}
		}
	})

	pol.Reset(cl.State())
	for i, a := range arrivals {
		if err := cl.RunUntil(pol, a.At); err != nil {
			return nil, fmt.Errorf("stream: advancing to arrival %d at %.1f: %w", i, a.At, err)
		}
		g := a.Graph()
		tt := platform.TimingFor(a.Kind)
		jobs[i] = JobResult{
			Job: i, Kind: a.Kind, Size: a.Size, Tasks: g.NumTasks(), ArriveAt: a.At,
			IsolatedMakespan: sched.HEFT(g, cfg.Platform, tt).Makespan,
		}
		remaining[i] = g.NumTasks()
		if _, err := cl.AddJob(i, g, tt); err != nil {
			return nil, err
		}
		for t := 0; t < g.NumTasks(); t++ {
			jobOfTask = append(jobOfTask, i)
		}
		if mArrived != nil {
			mArrived.Inc()
		}
	}
	if err := cl.Drain(pol); err != nil {
		return nil, fmt.Errorf("stream: draining after last arrival: %w", err)
	}

	s := cl.State()
	res := &Result{
		Jobs:           jobs,
		Makespan:       cl.Now(),
		MeanReadyDepth: cl.MeanReadyDepth(),
		Sim:            cl.Result(),
		Flight:         cfg.Recorder,
		graph:          s.Graph,
		timingOf:       s.TaskTiming,
		cfg:            cfg,
	}
	res.Kills = len(res.Sim.Kills)
	res.Decisions = res.Sim.Decisions
	res.IdleDecisions = res.Sim.IdleDecisions

	responses := make([]float64, 0, len(jobs))
	var sumResp, sumSlow float64
	for _, j := range jobs {
		responses = append(responses, j.Response)
		sumResp += j.Response
		sumSlow += j.Slowdown
	}
	sort.Float64s(responses)
	res.MeanResponse = sumResp / float64(len(jobs))
	res.P99Response = percentile(responses, 0.99)
	res.MeanSlowdown = sumSlow / float64(len(jobs))

	if res.Makespan > 0 {
		var busy float64
		for _, b := range cl.BusyTime() {
			busy += b
		}
		res.Utilization = busy / (float64(cfg.Platform.Size()) * res.Makespan)
	}
	if cfg.Metrics != nil {
		cfg.Metrics.GaugeFunc("readys_stream_utilization", "cluster utilization of the finished run",
			func() float64 { return res.Utilization })
		cfg.Metrics.GaugeFunc("readys_stream_mean_ready_depth", "time-averaged ready-queue depth",
			func() float64 { return res.MeanReadyDepth })
		cfg.Metrics.Counter("readys_stream_tasks_completed_total", "tasks retired across all jobs").Add(uint64(s.NumDone))
		cfg.Metrics.Counter("readys_stream_kills_total", "task attempts killed by fault events").Add(uint64(res.Kills))
	}
	return res, nil
}

// Validate checks the union schedule with the strict validator: per-task
// durations against each job's own timing table, fault windows, kill
// consistency. A passing stream run is a feasible multi-job schedule.
func (r *Result) Validate() error {
	return sim.ValidateResultStrict(r.graph, r.Sim, sim.CheckOptions{
		Platform: r.cfg.Platform,
		Sigma:    r.cfg.Sigma,
		Faults:   r.cfg.Faults,
		TimingOf: r.timingOf,
	})
}

// percentile returns the nearest-rank percentile of ascending xs.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
