package stream

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"readys/internal/core"
	"readys/internal/platform"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

var chaosKinds = []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR}

func testArrivals(t *testing.T, seed int64, jobs int, rate float64) []Arrival {
	t.Helper()
	arr, err := PoissonProcess{
		Rate: rate, Jobs: jobs, Kinds: chaosKinds, Sizes: []int{2, 3},
	}.Generate(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestPoissonGenerateDeterministic(t *testing.T) {
	a := testArrivals(t, 3, 20, 2.0)
	b := testArrivals(t, 3, 20, 2.0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different arrival streams")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("arrivals out of order at %d", i)
		}
	}
}

func TestArrivalsJSONLRoundTrip(t *testing.T) {
	want := testArrivals(t, 9, 12, 1.5)
	var buf bytes.Buffer
	if err := WriteArrivals(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArrivals(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip drifted:\ngot  %+v\nwant %+v", got, want)
	}
	if _, err := ReadArrivals(bytes.NewReader([]byte(`{"at_ms": -1, "kind": "lu", "size": 2}`))); err == nil {
		t.Fatal("negative arrival time accepted")
	}
	if _, err := ReadArrivals(bytes.NewReader([]byte(`{"at_ms": 1, "kind": "nope", "size": 2}`))); err == nil {
		t.Fatal("unknown family accepted")
	}
}

// runStream executes one stream run with a fresh policy instance.
func runStream(t *testing.T, mkPol func() sim.Policy, arr []Arrival, seed int64, faults *sim.FaultPlan) *Result {
	t.Helper()
	res, err := Run(mkPol(), Config{
		Platform: platform.New(2, 2),
		Arrivals: arr,
		Sigma:    0.1,
		Faults:   faults,
		Rng:      rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStreamRunCompletesAndValidates(t *testing.T) {
	arr := testArrivals(t, 1, 8, 3.0)
	res := runStream(t, func() sim.Policy { return sched.MCTPolicy{} }, arr, 42, nil)
	if len(res.Jobs) != len(arr) {
		t.Fatalf("got %d job results for %d arrivals", len(res.Jobs), len(arr))
	}
	for _, j := range res.Jobs {
		if j.DoneAt < j.ArriveAt || j.Response < 0 {
			t.Fatalf("job %d has impossible timing: %+v", j.Job, j)
		}
		if j.IsolatedMakespan <= 0 || j.Slowdown <= 0 {
			t.Fatalf("job %d missing isolated baseline: %+v", j.Job, j)
		}
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization %v outside (0, 1]", res.Utilization)
	}
	if res.MeanResponse <= 0 || res.P99Response < res.MeanResponse/float64(len(arr)) {
		t.Fatalf("response stats implausible: mean %v p99 %v", res.MeanResponse, res.P99Response)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("union schedule invalid: %v", err)
	}
}

// TestStreamFaultsMidStream pins the PR 5 integration: a plan dense enough to
// kill work mid-stream still yields a complete, strictly valid union
// schedule, and the re-executions show up as kills.
func TestStreamFaultsMidStream(t *testing.T) {
	arr := testArrivals(t, 5, 8, 4.0)
	horizon := arr[len(arr)-1].At + 4000
	plan := sim.GeneratePlan(99, 4, sim.SpecForRate(2.0, horizon))
	res := runStream(t, func() sim.Policy { return sched.NewReplanHEFTPolicy() }, arr, 7, plan)
	if err := res.Validate(); err != nil {
		t.Fatalf("faulted union schedule invalid: %v", err)
	}
	for _, j := range res.Jobs {
		if j.DoneAt < j.ArriveAt {
			t.Fatalf("job %d unfinished under faults: %+v", j.Job, j)
		}
	}
}

// fingerprint reduces a Result to a comparable value covering everything
// downstream consumers read.
func fingerprint(r *Result) string {
	return fmt.Sprintf("%+v|%+v|%v|%v|%v|%v|%v|%d|%d|%d",
		r.Jobs, r.Sim.Trace, r.Makespan, r.MeanResponse, r.P99Response, r.MeanSlowdown,
		r.MeanReadyDepth, r.Kills, r.Decisions, r.IdleDecisions)
}

// TestStreamReplayChaos is the bit-identical replay sweep: 25 random
// mixed-family Poisson streams × faults on/off × every policy family, each
// run twice from the same seed. Any divergence — map iteration, shared
// state, hidden randomness — fails the fingerprint comparison.
func TestStreamReplayChaos(t *testing.T) {
	agent := core.NewAgent(core.Config{Window: 1, Layers: 1, Hidden: 8, Seed: 4})
	faultAgent := core.NewAgent(core.Config{Window: 1, Layers: 1, Hidden: 8, Seed: 4, FaultFeatures: true})
	policies := map[string]func() sim.Policy{
		"mct":        func() sim.Policy { return sched.MCTPolicy{} },
		"replanheft": func() sim.Policy { return sched.NewReplanHEFTPolicy() },
		"heftperjob": func() sim.Policy { return NewHEFTPerJobPolicy() },
		"random":     func() sim.Policy { return sched.RandomPolicy{Rng: rand.New(rand.NewSource(123))} },
		"readys":     func() sim.Policy { return core.NewPolicy(agent) },
		"readys-ff":  func() sim.Policy { return core.NewPolicy(faultAgent) },
	}
	for i := 0; i < 25; i++ {
		seed := int64(1000 + i)
		arr := testArrivals(t, seed, 4, 2.0+float64(i%3))
		horizon := arr[len(arr)-1].At + 3000
		for fi, faults := range []*sim.FaultPlan{nil, sim.GeneratePlan(seed, 4, sim.SpecForRate(1.0, horizon))} {
			for name, mk := range policies {
				a := runStream(t, mk, arr, seed, faults)
				b := runStream(t, mk, arr, seed, faults)
				if fa, fb := fingerprint(a), fingerprint(b); fa != fb {
					t.Fatalf("stream %d faults=%d policy %s not replay-identical:\n%s\nvs\n%s", i, fi, name, fa, fb)
				}
				if err := a.Validate(); err != nil {
					t.Fatalf("stream %d faults=%d policy %s invalid: %v", i, fi, name, err)
				}
			}
		}
	}
}

// TestHEFTPerJobSingleJobReasonable sanity-checks the baseline: on a lone
// Cholesky job it must finish everything and not be wildly worse than MCT.
func TestHEFTPerJobSingleJobReasonable(t *testing.T) {
	arr := []Arrival{{At: 0, Kind: taskgraph.Cholesky, Size: 4}}
	hpj := runStream(t, func() sim.Policy { return NewHEFTPerJobPolicy() }, arr, 3, nil)
	mct := runStream(t, func() sim.Policy { return sched.MCTPolicy{} }, arr, 3, nil)
	if hpj.Makespan <= 0 || hpj.Makespan > 3*mct.Makespan {
		t.Fatalf("HEFT-per-job makespan %v implausible vs MCT %v", hpj.Makespan, mct.Makespan)
	}
	if err := hpj.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamJobMetricsAgainstTrace cross-checks the job bookkeeping against
// the union trace: a job's DoneAt must equal the max end time over its tasks
// and its arrival must precede every one of its task starts.
func TestStreamJobMetricsAgainstTrace(t *testing.T) {
	arr := testArrivals(t, 11, 6, 2.0)
	res := runStream(t, func() sim.Policy { return sched.MCTPolicy{} }, arr, 13, nil)
	ends := make(map[int]float64)
	base := 0
	for _, j := range res.Jobs {
		for ti := 0; ti < j.Tasks; ti++ {
			p := res.Sim.Trace[base+ti]
			if p.Start < j.ArriveAt-1e-9 {
				t.Fatalf("job %d task %d started at %v before arrival %v", j.Job, p.Task, p.Start, j.ArriveAt)
			}
			if p.End > ends[j.Job] {
				ends[j.Job] = p.End
			}
		}
		base += j.Tasks
	}
	for _, j := range res.Jobs {
		if ends[j.Job] != j.DoneAt {
			t.Fatalf("job %d DoneAt %v != max task end %v", j.Job, j.DoneAt, ends[j.Job])
		}
	}
}

// TestStreamIncrementalIdentical pins the incremental decision state against
// its full-rebuild oracle across streaming arrivals: Cluster.AddJob bumps the
// graph epoch mid-episode, so every cache layer (window, adjacency, static
// features, decision memo) must invalidate correctly. The default policy
// (incremental + memo) and the serving engine at float64 must fingerprint
// identically to the pre-optimization path (full EncodeFault rebuild, tape
// forward, no memo), with and without fault plans.
func TestStreamIncrementalIdentical(t *testing.T) {
	agent := core.NewAgent(core.Config{Window: 1, Layers: 1, Hidden: 8, Seed: 4})
	faultAgent := core.NewAgent(core.Config{Window: 1, Layers: 1, Hidden: 8, Seed: 4, FaultFeatures: true})
	variants := map[string]func(a *core.Agent) sim.Policy{
		"incremental": func(a *core.Agent) sim.Policy { return core.NewPolicy(a) },
		"serving-f64": func(a *core.Agent) sim.Policy { return core.NewServingPolicy(a, core.PrecisionFloat64) },
	}
	for i := 0; i < 6; i++ {
		seed := int64(5000 + i)
		arr := testArrivals(t, seed, 5, 2.5)
		horizon := arr[len(arr)-1].At + 3000
		for fi, faults := range []*sim.FaultPlan{nil, sim.GeneratePlan(seed, 4, sim.SpecForRate(1.0, horizon))} {
			for _, ag := range []*core.Agent{agent, faultAgent} {
				oracle := runStream(t, func() sim.Policy {
					p := core.NewPolicy(ag)
					p.DisableIncrementalState()
					p.DisableDecisionMemo()
					p.DisableServingEngine()
					return p
				}, arr, seed, faults)
				want := fingerprint(oracle)
				for name, mk := range variants {
					got := runStream(t, func() sim.Policy { return mk(ag) }, arr, seed, faults)
					if g := fingerprint(got); g != want {
						t.Fatalf("stream %d faults=%d ff=%v %s diverged from rebuild oracle:\n%s\nvs\n%s",
							i, fi, ag.Cfg.FaultFeatures, name, g, want)
					}
				}
			}
		}
	}
}
