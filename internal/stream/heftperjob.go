package stream

import (
	"math"

	"readys/internal/sched"
	"readys/internal/sim"
)

// HEFTPerJobPolicy is the classical multi-tenant baseline: jobs are served
// FIFO (earliest arrival first) and, within a job, tasks follow that job's
// own HEFT upward ranks, each placed on the resource minimising its expected
// completion time. Because concurrent jobs are disjoint components of the
// union DAG, computing upward ranks over the union (per-task timing tables,
// current platform) is exactly per-job HEFT — the plan each job would get in
// isolation — while placement still sees the real shared load through the
// ECT term. The policy replans ranks whenever the graph grows (GraphEpoch),
// which costs O(V+E) per arrival.
//
// Dispatch mirrors MCTPolicy's resource-driven form: the asking resource
// starts the FIFO-first, rank-best ready task only if it is that task's
// ECT-best resource, and defers (∅) otherwise; forced rounds fall back to
// the same order unconditionally.
type HEFTPerJobPolicy struct {
	rank  []float64
	epoch int
}

// NewHEFTPerJobPolicy returns a fresh policy.
func NewHEFTPerJobPolicy() *HEFTPerJobPolicy { return &HEFTPerJobPolicy{} }

// Reset implements sim.Policy.
func (p *HEFTPerJobPolicy) Reset(s *sim.State) {
	p.epoch = -1
	p.refresh(s)
}

func (p *HEFTPerJobPolicy) refresh(s *sim.State) {
	if p.epoch == s.GraphEpoch && len(p.rank) == s.Graph.NumTasks() {
		return
	}
	p.rank = sched.UpwardRanksFor(s.Graph, s.Platform, s.TaskTiming)
	p.epoch = s.GraphEpoch
}

// Decide implements sim.Policy.
func (p *HEFTPerJobPolicy) Decide(s *sim.State, r int) int {
	p.refresh(s)
	best := sim.NoTask
	for _, t := range s.Ready {
		if p.before(s, t, best) {
			best = t
		}
	}
	if best == sim.NoTask {
		return sim.NoTask
	}
	if bestRes := p.ectBest(s, best); bestRes == r || s.MustAct {
		return best
	}
	return sim.NoTask
}

// before reports whether ready task a should dispatch before current pick b:
// FIFO across jobs, decreasing upward rank within a job, then task ID.
func (p *HEFTPerJobPolicy) before(s *sim.State, a, b int) bool {
	if b == sim.NoTask {
		return true
	}
	if ja, jb := s.JobOf(a), s.JobOf(b); ja != jb {
		return ja < jb
	}
	if p.rank[a] != p.rank[b] {
		return p.rank[a] > p.rank[b]
	}
	return a < b
}

// ectBest returns the available resource minimising the expected completion
// time of task t (ties to the smaller ID), or -1 if none is up.
func (p *HEFTPerJobPolicy) ectBest(s *sim.State, t int) int {
	best, bestECT := -1, math.Inf(1)
	for r := 0; r < s.Platform.Size(); r++ {
		if !s.ResourceUp(r) {
			continue
		}
		start := s.Now + s.EstTimeUntilFree(r)
		if dr := s.DataReadyTime(t, r); dr > start {
			start = dr
		}
		if ect := start + s.EstTaskDuration(t, r); ect < bestECT {
			best, bestECT = r, ect
		}
	}
	return best
}

var _ sim.Policy = (*HEFTPerJobPolicy)(nil)
