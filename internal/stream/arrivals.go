// Package stream implements online multi-tenant scheduling: jobs (DAGs of
// any built-in family, mixed sizes) arrive over simulated time on one
// persistent heterogeneous platform, a single policy schedules the union of
// their ready tasks, and the headline numbers are job-level — response time,
// slowdown against an isolated HEFT run, cluster utilization, queue depth —
// instead of single-DAG makespan. This is the regime READYS is pitched for
// ("dynamic scheduling") and the one REACH and Decima-style systems evaluate
// in; the single-DAG paths elsewhere in the repo are the special case of one
// arrival at t=0.
//
// The engine underneath is sim.Cluster: stream turns an arrival process into
// AddJob/RunUntil calls and job-completion bookkeeping, so the fault model,
// duration noise and decision semantics are exactly those of internal/sim.
package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"readys/internal/taskgraph"
)

// Arrival is one job of a stream: a DAG family and size arriving at At (ms).
type Arrival struct {
	// At is the arrival time in simulated milliseconds.
	At float64 `json:"at_ms"`
	// Kind is the DAG family (serialised by name, e.g. "cholesky").
	Kind taskgraph.Kind `json:"kind"`
	// Size is the family's size parameter (tile count T; width for forkjoin).
	Size int `json:"size"`
}

// Graph materialises the arrival's DAG. Generation is deterministic in
// (Kind, Size), so a stream replays bit-identically from its arrival list.
func (a Arrival) Graph() *taskgraph.Graph { return taskgraph.NewByKind(a.Kind, a.Size) }

// PoissonProcess parameterises a synthetic arrival stream: exponential
// interarrival times with the given rate, job families and sizes drawn
// uniformly per arrival.
type PoissonProcess struct {
	// Rate is the arrival intensity in jobs per second of simulated time
	// (1000 ms). Must be positive.
	Rate float64
	// Jobs is the number of arrivals to generate.
	Jobs int
	// Kinds is the family pool (at least one).
	Kinds []taskgraph.Kind
	// Sizes is the size pool (at least one entry, all positive).
	Sizes []int
}

// Generate draws the arrival list from rng. Draw order is fixed
// (interarrival, kind, size) so a seed pins the whole stream.
func (p PoissonProcess) Generate(rng *rand.Rand) ([]Arrival, error) {
	if p.Rate <= 0 {
		return nil, fmt.Errorf("stream: arrival rate %v must be positive", p.Rate)
	}
	if p.Jobs <= 0 {
		return nil, fmt.Errorf("stream: job count %d must be positive", p.Jobs)
	}
	if len(p.Kinds) == 0 || len(p.Sizes) == 0 {
		return nil, fmt.Errorf("stream: empty family or size pool")
	}
	for _, s := range p.Sizes {
		if s <= 0 {
			return nil, fmt.Errorf("stream: size %d must be positive", s)
		}
	}
	meanGap := 1000 / p.Rate // ms per arrival
	arrivals := make([]Arrival, 0, p.Jobs)
	var at float64
	for i := 0; i < p.Jobs; i++ {
		at += rng.ExpFloat64() * meanGap
		arrivals = append(arrivals, Arrival{
			At:   at,
			Kind: p.Kinds[rng.Intn(len(p.Kinds))],
			Size: p.Sizes[rng.Intn(len(p.Sizes))],
		})
	}
	return arrivals, nil
}

// ReadArrivals parses a JSONL arrival trace: one Arrival object per line
// ({"at_ms": 12.5, "kind": "cholesky", "size": 4}), blank lines ignored.
// Arrivals are sorted by time (stable, so equal-time order follows the file).
func ReadArrivals(r io.Reader) ([]Arrival, error) {
	var out []Arrival
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var a Arrival
		if err := json.Unmarshal(raw, &a); err != nil {
			return nil, fmt.Errorf("stream: arrival trace line %d: %w", line, err)
		}
		if err := a.validate(); err != nil {
			return nil, fmt.Errorf("stream: arrival trace line %d: %w", line, err)
		}
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream: reading arrival trace: %w", err)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}

// WriteArrivals emits the JSONL form read back by ReadArrivals.
func WriteArrivals(w io.Writer, arrivals []Arrival) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, a := range arrivals {
		if err := enc.Encode(a); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (a Arrival) validate() error {
	if a.At < 0 {
		return fmt.Errorf("negative arrival time %v", a.At)
	}
	if a.Size <= 0 {
		return fmt.Errorf("size %d must be positive", a.Size)
	}
	return nil
}
