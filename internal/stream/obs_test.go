package stream

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"readys/internal/obs"
	"readys/internal/platform"
	"readys/internal/sched"
	"readys/internal/sim"
)

// resultBytes serializes everything the scheduler computed — job table, sim
// trace, aggregate stats — with the recorder pointer nulled out, so two runs
// can be compared byte for byte.
func resultBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	res.Flight = nil
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFlightRecorderBitInert is the observability contract: attaching a
// flight recorder must not consume randomness or alter scheduling, so the
// recorded and unrecorded runs produce byte-identical results.
func TestFlightRecorderBitInert(t *testing.T) {
	arr := testArrivals(t, 3, 8, 4.0)
	horizon := arr[len(arr)-1].At + 4000
	faults := sim.GeneratePlan(7, 4, sim.SpecForRate(2, horizon))

	run := func(rec *obs.FlightRecorder) *Result {
		res, err := Run(sched.MCTPolicy{}, Config{
			Platform: platform.New(2, 2),
			Arrivals: arr,
			Sigma:    0.1,
			Faults:   faults,
			Rng:      rand.New(rand.NewSource(42)),
			Recorder: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run(nil)
	rec := obs.NewFlightRecorder(0)
	recorded := run(rec)
	if recorded.Flight != rec {
		t.Fatal("result did not carry the recorder through")
	}
	if !bytes.Equal(resultBytes(t, plain), resultBytes(t, recorded)) {
		t.Fatal("flight recorder changed the schedule: results are not byte-identical")
	}
	if rec.Len() == 0 {
		t.Fatal("recorder attached but empty")
	}
}

// TestFlightRecorderContents cross-checks the recorded window against the
// run's own aggregates: one arrival per job, kills matching Result.Kills,
// fault and resource-transition events from the injected plan, and ready
// depth samples bounded by the union queue.
func TestFlightRecorderContents(t *testing.T) {
	arr := testArrivals(t, 5, 8, 4.0)
	horizon := arr[len(arr)-1].At + 4000
	faults := sim.GeneratePlan(11, 4, sim.SpecForRate(2, horizon))
	rec := obs.NewFlightRecorder(0)
	res, err := Run(sched.MCTPolicy{}, Config{
		Platform: platform.New(2, 2),
		Arrivals: arr,
		Sigma:    0.1,
		Faults:   faults,
		Rng:      rand.New(rand.NewSource(9)),
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	s := obs.SummarizeFlight(rec.Events())
	if s.ByKind[obs.FlightArrival] != len(arr) {
		t.Errorf("recorded %d arrivals, want %d", s.ByKind[obs.FlightArrival], len(arr))
	}
	if s.ByKind[obs.FlightKill] != res.Kills {
		t.Errorf("recorded %d kills, Result.Kills = %d", s.ByKind[obs.FlightKill], res.Kills)
	}
	if res.Kills > 0 && s.ByKind[obs.FlightFault] == 0 {
		t.Error("kills happened but no fault events recorded")
	}
	if s.ByKind[obs.FlightDecision] == 0 {
		t.Error("no decision events recorded")
	}
	decisions := obs.FilterFlight(rec.Events(), obs.FlightDecision, 0, 0)
	for _, d := range decisions {
		if d.Res < 0 || d.Res >= 4 {
			t.Fatalf("decision on impossible resource: %+v", d)
		}
		if d.Job == "" || d.Task == "" {
			t.Fatalf("decision missing job/task identity: %+v", d)
		}
	}

	// The JSONL export round-trips through the readys-obs-check reader.
	var b bytes.Buffer
	if err := rec.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadFlightEvents(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != rec.Len() {
		t.Fatalf("JSONL round trip: %d != %d", len(back), rec.Len())
	}
}

// TestStreamMetricsGoldenExposition pins the Prometheus text rendering of the
// stream's metric family end to end: exact names, HELP/TYPE lines, histogram
// bucket layout, and the deterministic values of a seeded run.
func TestStreamMetricsGoldenExposition(t *testing.T) {
	arr := testArrivals(t, 1, 6, 3.0)
	reg := obs.NewRegistry()
	res, err := Run(sched.MCTPolicy{}, Config{
		Platform: platform.New(2, 2),
		Arrivals: arr,
		Sigma:    0.1,
		Rng:      rand.New(rand.NewSource(42)),
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	var b bytes.Buffer
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	// Structural golden: every family with HELP and TYPE, counters matching
	// the run's own aggregates, histogram count matching the job count.
	for _, want := range []string{
		"# HELP readys_stream_jobs_arrived_total jobs injected into the cluster\n",
		"# TYPE readys_stream_jobs_arrived_total counter\n",
		"readys_stream_jobs_arrived_total 6\n",
		"readys_stream_jobs_completed_total 6\n",
		"# TYPE readys_stream_job_response_ms histogram\n",
		`readys_stream_job_response_ms_bucket{le="+Inf"} 6`,
		"readys_stream_job_response_ms_count 6\n",
		"# TYPE readys_stream_tasks_completed_total counter\n",
		"readys_stream_kills_total 0\n",
		"# TYPE readys_stream_utilization gauge\n",
		"# TYPE readys_stream_mean_ready_depth gauge\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, got)
		}
	}
	tasks := 0
	for _, j := range res.Jobs {
		tasks += j.Tasks
	}
	if want := "readys_stream_tasks_completed_total " + strconv.Itoa(tasks) + "\n"; !strings.Contains(got, want) {
		t.Errorf("exposition missing %q", want)
	}
}
