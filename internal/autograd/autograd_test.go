package autograd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"readys/internal/tensor"
)

// checkGrad validates reverse-mode gradients of f against central finite
// differences for every input matrix. f must build a 1x1 scalar from the
// tape-bound inputs and must be deterministic.
func checkGrad(t *testing.T, name string, f func(tp *Tape, xs []*Node) *Node, inputs []*tensor.Matrix, tol float64) {
	t.Helper()
	tp := NewTape()
	vars := make([]*Node, len(inputs))
	for i, m := range inputs {
		vars[i] = tp.Var(m)
	}
	out := f(tp, vars)
	tp.Backward(out)

	const eps = 1e-6
	for vi, m := range inputs {
		for di := range m.Data {
			orig := m.Data[di]
			m.Data[di] = orig + eps
			plus := evalScalar(f, inputs)
			m.Data[di] = orig - eps
			minus := evalScalar(f, inputs)
			m.Data[di] = orig
			want := (plus - minus) / (2 * eps)
			var got float64
			if vars[vi].Grad != nil {
				got = vars[vi].Grad.Data[di]
			}
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("%s: grad input %d elem %d = %v, finite diff %v", name, vi, di, got, want)
			}
		}
	}
}

func evalScalar(f func(tp *Tape, xs []*Node) *Node, inputs []*tensor.Matrix) float64 {
	tp := NewTape()
	vars := make([]*Node, len(inputs))
	for i, m := range inputs {
		vars[i] = tp.Var(m)
	}
	return Scalar(f(tp, vars))
}

func randMat(rng *rand.Rand, r, c int) *tensor.Matrix {
	return tensor.RandNormal(rng, r, c, 1)
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	checkGrad(t, "matmul", func(tp *Tape, xs []*Node) *Node {
		return tp.SumAll(tp.MatMul(xs[0], xs[1]))
	}, []*tensor.Matrix{randMat(rng, 3, 4), randMat(rng, 4, 2)}, 1e-5)
}

func TestGradAddSubMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	checkGrad(t, "add-sub-mul", func(tp *Tape, xs []*Node) *Node {
		s := tp.Mul(tp.Add(xs[0], xs[1]), tp.Sub(xs[0], xs[1]))
		return tp.SumAll(s)
	}, []*tensor.Matrix{randMat(rng, 2, 3), randMat(rng, 2, 3)}, 1e-5)
}

func TestGradScaleAddConst(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	checkGrad(t, "scale", func(tp *Tape, xs []*Node) *Node {
		return tp.SumAll(tp.AddConst(tp.Scale(xs[0], -2.5), 3))
	}, []*tensor.Matrix{randMat(rng, 2, 2)}, 1e-6)
}

func TestGradAddRowVector(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	checkGrad(t, "bias", func(tp *Tape, xs []*Node) *Node {
		return tp.SumAll(tp.Square(tp.AddRowVector(xs[0], xs[1])))
	}, []*tensor.Matrix{randMat(rng, 3, 4), randMat(rng, 1, 4)}, 1e-5)
}

func TestGradReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Shift inputs away from 0 where ReLU is non-differentiable.
	m := randMat(rng, 4, 4)
	for i := range m.Data {
		if math.Abs(m.Data[i]) < 0.05 {
			m.Data[i] = 0.1
		}
	}
	checkGrad(t, "relu", func(tp *Tape, xs []*Node) *Node {
		return tp.SumAll(tp.Square(tp.ReLU(xs[0])))
	}, []*tensor.Matrix{m}, 1e-5)
}

func TestGradLeakyReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randMat(rng, 3, 3)
	for i := range m.Data {
		if math.Abs(m.Data[i]) < 0.05 {
			m.Data[i] = -0.2
		}
	}
	checkGrad(t, "leakyrelu", func(tp *Tape, xs []*Node) *Node {
		return tp.SumAll(tp.Square(tp.LeakyReLU(xs[0], 0.1)))
	}, []*tensor.Matrix{m}, 1e-5)
}

func TestGradTanhExp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checkGrad(t, "tanh-exp", func(tp *Tape, xs []*Node) *Node {
		return tp.SumAll(tp.Exp(tp.Tanh(xs[0])))
	}, []*tensor.Matrix{randMat(rng, 2, 3)}, 1e-5)
}

func TestGradMeanRows(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	checkGrad(t, "meanrows", func(tp *Tape, xs []*Node) *Node {
		return tp.SumAll(tp.Square(tp.MeanRows(xs[0])))
	}, []*tensor.Matrix{randMat(rng, 5, 3)}, 1e-5)
}

func TestGradMaxRows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Spread values so the argmax is stable under the finite-difference eps.
	m := randMat(rng, 4, 3)
	for i := range m.Data {
		m.Data[i] *= 10
	}
	checkGrad(t, "maxrows", func(tp *Tape, xs []*Node) *Node {
		return tp.SumAll(tp.Square(tp.MaxRows(xs[0])))
	}, []*tensor.Matrix{m}, 1e-5)
}

func TestGradGatherRows(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	checkGrad(t, "gather", func(tp *Tape, xs []*Node) *Node {
		// Repeated index 2 exercises scatter-add.
		return tp.SumAll(tp.Square(tp.GatherRows(xs[0], []int{2, 0, 2})))
	}, []*tensor.Matrix{randMat(rng, 4, 3)}, 1e-5)
}

func TestGradConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checkGrad(t, "concat", func(tp *Tape, xs []*Node) *Node {
		h := tp.ConcatCols(xs[0], xs[1])
		v := tp.ConcatRows(h, h)
		return tp.SumAll(tp.Square(v))
	}, []*tensor.Matrix{randMat(rng, 2, 2), randMat(rng, 2, 3)}, 1e-5)
}

func TestGradLogSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	checkGrad(t, "logsoftmax", func(tp *Tape, xs []*Node) *Node {
		ls := tp.LogSoftmaxCol(xs[0])
		// Weighted negative log likelihood of entry 1 plus entropy-ish term.
		pick := tp.Pick(ls, 1, 0)
		ent := tp.SumAll(tp.Mul(tp.Exp(ls), ls))
		return tp.Add(tp.Neg(pick), tp.Scale(ent, 0.3))
	}, []*tensor.Matrix{randMat(rng, 5, 1)}, 1e-4)
}

func TestGradPick(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	checkGrad(t, "pick", func(tp *Tape, xs []*Node) *Node {
		return tp.Square(tp.Pick(xs[0], 1, 2))
	}, []*tensor.Matrix{randMat(rng, 3, 4)}, 1e-6)
}

func TestGradComposite(t *testing.T) {
	// A miniature version of the actual policy head: GCN-ish propagate, pool,
	// project, softmax, NLL + value MSE — gradients must flow end-to-end.
	rng := rand.New(rand.NewSource(14))
	adj := randMat(rng, 5, 5) // stands in for the normalised adjacency
	checkGrad(t, "composite", func(tp *Tape, xs []*Node) *Node {
		x, w1, w2, vproj := xs[0], xs[1], xs[2], xs[3]
		a := tp.Const(adj)
		h := tp.ReLU(tp.MatMul(tp.MatMul(a, x), w1))
		h = tp.ReLU(tp.MatMul(tp.MatMul(a, h), w2))
		scores := tp.GatherRows(h, []int{0, 2, 4})
		col := tp.MatMul(scores, vproj) // 3x1
		ls := tp.LogSoftmaxCol(col)
		nll := tp.Neg(tp.Pick(ls, 1, 0))
		v := tp.MatMul(tp.MeanRows(h), vproj)
		mse := tp.Square(tp.AddConst(v, -0.37))
		return tp.Add(nll, tp.Scale(mse, 0.5))
	}, []*tensor.Matrix{
		randMat(rng, 5, 4),
		randMat(rng, 4, 6),
		randMat(rng, 6, 6),
		randMat(rng, 6, 1),
	}, 1e-4)
}

func TestLogSoftmaxIsNormalisedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	f := func(n8 uint8, scale float64) bool {
		n := int(n8%10) + 1
		if math.IsNaN(scale) || math.IsInf(scale, 0) {
			scale = 1
		}
		// Large magnitudes stress numerical stability.
		m := tensor.RandNormal(rng, n, 1, 1+math.Mod(math.Abs(scale), 100))
		tp := NewTape()
		ls := tp.LogSoftmaxCol(tp.Const(m))
		var sum float64
		for _, v := range ls.Value.Data {
			if math.IsNaN(v) || v > 1e-9 {
				return false
			}
			sum += math.Exp(v)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardRequiresScalarRoot(t *testing.T) {
	tp := NewTape()
	n := tp.Var(tensor.New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on non-scalar should panic")
		}
	}()
	tp.Backward(n)
}

func TestConstGetsNoGrad(t *testing.T) {
	tp := NewTape()
	c := tp.Const(tensor.Full(2, 2, 1))
	v := tp.Var(tensor.Full(2, 2, 2))
	out := tp.SumAll(tp.Mul(c, v))
	tp.Backward(out)
	if c.Grad != nil {
		t.Fatal("const accumulated gradient")
	}
	if v.Grad == nil || v.Grad.At(0, 0) != 1 {
		t.Fatalf("var gradient wrong: %v", v.Grad)
	}
}

func TestGradAccumulatesOverReuse(t *testing.T) {
	// Using the same node twice must sum both gradient paths.
	tp := NewTape()
	x := tp.Var(tensor.Full(1, 1, 3))
	y := tp.Add(x, x) // dy/dx = 2
	tp.Backward(tp.SumAll(y))
	if x.Grad.Data[0] != 2 {
		t.Fatalf("grad = %v, want 2", x.Grad.Data[0])
	}
}
