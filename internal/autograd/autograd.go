// Package autograd implements tape-based reverse-mode automatic
// differentiation over dense matrices.
//
// A Tape records every operation in creation order; Backward seeds the
// gradient of a scalar (1x1) output and replays the tape in reverse,
// accumulating gradients into every node that requires them. The op set is
// exactly what the READYS policy/value network of the paper (Fig. 2) and the
// A2C loss need: matrix products (dense and sparse-propagation SpMM),
// bias broadcasts, ReLU/Tanh/Exp nonlinearities, node-set pooling (mean/max
// over rows), row gathering for ready-task selection, concatenation,
// log-softmax, and scalar arithmetic (scalars are represented as 1x1
// matrices).
//
// Every intermediate the tape creates — op outputs and gradient accumulators
// — is drawn from the size-bucketed buffer pool in internal/tensor and
// tracked on a tape-scoped free list. Release returns the whole list to the
// pool in one sweep, so steady-state training and serving recycle their
// scratch memory instead of exercising the allocator on every decision.
// Caller-provided matrices (Const/Var inputs) are never pooled or released.
//
// Gradient correctness for every op is property-tested against central
// finite differences in autograd_test.go.
package autograd

import (
	"fmt"
	"math"

	"readys/internal/tensor"
)

// Node is a value in the computation graph together with its accumulated
// gradient. Nodes are created through Tape methods and must not be mutated
// after creation.
type Node struct {
	Value *tensor.Matrix
	// Grad has the same shape as Value. It is nil until the first
	// gradient is accumulated into the node.
	Grad *tensor.Matrix

	requiresGrad bool
	backward     func()
}

// RequiresGrad reports whether gradients flow into this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// accum adds g into n.Grad, allocating it from the buffer pool on first use.
// It is a no-op for nodes that do not require gradients, so op backward
// functions can call it unconditionally.
func (n *Node) accum(g *tensor.Matrix) {
	if !n.requiresGrad {
		return
	}
	if n.Grad == nil {
		n.Grad = tensor.GetPooled(n.Value.Rows, n.Value.Cols)
	}
	tensor.AddInPlace(n.Grad, g)
}

// Tape records operations for a single forward pass. A Tape is not safe for
// concurrent use; create one tape per goroutine.
type Tape struct {
	nodes []*Node
	// owned lists the matrices this tape allocated from the buffer pool
	// (op output values); Release returns them together with every node's
	// gradient accumulator.
	owned    []*tensor.Matrix
	released bool
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Len returns the number of recorded nodes (useful in tests and for sizing
// diagnostics).
func (t *Tape) Len() int { return len(t.nodes) }

func (t *Tape) push(n *Node) *Node {
	if t.released {
		panic("autograd: use of a released tape")
	}
	t.nodes = append(t.nodes, n)
	return n
}

// alloc draws a zeroed rows x cols matrix from the buffer pool and records it
// on the tape's free list.
func (t *Tape) alloc(rows, cols int) *tensor.Matrix {
	m := tensor.GetPooled(rows, cols)
	t.owned = append(t.owned, m)
	return m
}

// Release resets the tape and returns every pooled intermediate — op output
// values and gradient accumulators — to the buffer pool. The tape and every
// node created on it must not be used afterwards: values read from nodes
// (sampled actions, scalar losses) must be extracted before releasing.
// Release is idempotent; a tape that is never released is simply collected by
// the GC as before.
func (t *Tape) Release() {
	if t.released {
		return
	}
	t.released = true
	for _, n := range t.nodes {
		if n.Grad != nil {
			tensor.PutPooled(n.Grad)
			n.Grad = nil
		}
		n.backward = nil
		n.Value = nil
	}
	for _, m := range t.owned {
		tensor.PutPooled(m)
	}
	t.nodes = nil
	t.owned = nil
}

// Released reports whether Release has been called.
func (t *Tape) Released() bool { return t.released }

// Const records a node through which no gradient flows (inputs, masks).
// The matrix is used as-is and must not be mutated afterwards.
func (t *Tape) Const(m *tensor.Matrix) *Node {
	return t.push(&Node{Value: m})
}

// Var records a differentiable leaf (a parameter or an input whose gradient
// is wanted). After Backward, the accumulated gradient is in Node.Grad.
func (t *Tape) Var(m *tensor.Matrix) *Node {
	return t.push(&Node{Value: m, requiresGrad: true})
}

// Backward runs reverse-mode differentiation from root, which must be a 1x1
// scalar node; its gradient is seeded with 1. It may be called once per tape.
func (t *Tape) Backward(root *Node) {
	if root.Value.Rows != 1 || root.Value.Cols != 1 {
		panic(fmt.Sprintf("autograd: Backward root must be 1x1, got %dx%d", root.Value.Rows, root.Value.Cols))
	}
	if !root.requiresGrad {
		return // nothing on the tape influences the root
	}
	seed := tensor.GetPooled(1, 1)
	seed.Data[0] = 1
	root.accum(seed)
	tensor.PutPooled(seed)
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.backward != nil && n.Grad != nil {
			n.backward()
		}
	}
}

func anyGrad(ns ...*Node) bool {
	for _, n := range ns {
		if n.requiresGrad {
			return true
		}
	}
	return false
}

// scratch draws a pooled matrix for a backward-pass temporary; pair with
// tensor.PutPooled as soon as the value has been accumulated.
func scratch(rows, cols int) *tensor.Matrix {
	return tensor.GetPooled(rows, cols)
}

// MatMul records c = a*b.
func (t *Tape) MatMul(a, b *Node) *Node {
	val := t.alloc(a.Value.Rows, b.Value.Cols)
	tensor.MatMulInto(a.Value, b.Value, val)
	out := &Node{Value: val, requiresGrad: anyGrad(a, b)}
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				g := scratch(a.Value.Rows, a.Value.Cols)
				tensor.MatMulTransBInto(out.Grad, b.Value, g)
				a.accum(g)
				tensor.PutPooled(g)
			}
			if b.requiresGrad {
				g := scratch(b.Value.Rows, b.Value.Cols)
				tensor.MatMulTransAInto(a.Value, out.Grad, g)
				b.accum(g)
				tensor.PutPooled(g)
			}
		}
	}
	return t.push(out)
}

// SpMM records c = a*b for a constant sparse operand a (the GCN propagation
// operator): the graph topology carries no gradient, so only the dense
// operand b receives one — ∂c/∂b applied to an upstream gradient G is aᵀG.
// Forward cost is O(nnz(a)·b.Cols) instead of the dense O(n²·b.Cols).
func (t *Tape) SpMM(a *tensor.Sparse, b *Node) *Node {
	val := t.alloc(a.Rows, b.Value.Cols)
	tensor.SpMMInto(a, b.Value, val)
	out := &Node{Value: val, requiresGrad: b.requiresGrad}
	if out.requiresGrad {
		out.backward = func() {
			g := scratch(b.Value.Rows, b.Value.Cols)
			tensor.SpMMTransAInto(a, out.Grad, g)
			b.accum(g)
			tensor.PutPooled(g)
		}
	}
	return t.push(out)
}

// Add records c = a + b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.AddInto(a.Value, b.Value, val)
	out := &Node{Value: val, requiresGrad: anyGrad(a, b)}
	if out.requiresGrad {
		out.backward = func() {
			a.accum(out.Grad)
			b.accum(out.Grad)
		}
	}
	return t.push(out)
}

// Sub records c = a - b.
func (t *Tape) Sub(a, b *Node) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.SubInto(a.Value, b.Value, val)
	out := &Node{Value: val, requiresGrad: anyGrad(a, b)}
	if out.requiresGrad {
		out.backward = func() {
			a.accum(out.Grad)
			if b.requiresGrad {
				g := scratch(out.Grad.Rows, out.Grad.Cols)
				tensor.ScaleInto(out.Grad, -1, g)
				b.accum(g)
				tensor.PutPooled(g)
			}
		}
	}
	return t.push(out)
}

// Mul records the elementwise product c = a ⊙ b.
func (t *Tape) Mul(a, b *Node) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.MulInto(a.Value, b.Value, val)
	out := &Node{Value: val, requiresGrad: anyGrad(a, b)}
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				g := scratch(a.Value.Rows, a.Value.Cols)
				tensor.MulInto(out.Grad, b.Value, g)
				a.accum(g)
				tensor.PutPooled(g)
			}
			if b.requiresGrad {
				g := scratch(b.Value.Rows, b.Value.Cols)
				tensor.MulInto(out.Grad, a.Value, g)
				b.accum(g)
				tensor.PutPooled(g)
			}
		}
	}
	return t.push(out)
}

// Scale records c = s*a for a constant s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.ScaleInto(a.Value, s, val)
	out := &Node{Value: val, requiresGrad: a.requiresGrad}
	if out.requiresGrad {
		out.backward = func() {
			g := scratch(out.Grad.Rows, out.Grad.Cols)
			tensor.ScaleInto(out.Grad, s, g)
			a.accum(g)
			tensor.PutPooled(g)
		}
	}
	return t.push(out)
}

// AddConst records c = a + s for a constant s.
func (t *Tape) AddConst(a *Node, s float64) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.ApplyInto(a.Value, func(v float64) float64 { return v + s }, val)
	out := &Node{Value: val, requiresGrad: a.requiresGrad}
	if out.requiresGrad {
		out.backward = func() { a.accum(out.Grad) }
	}
	return t.push(out)
}

// AddRowVector records c[i,:] = a[i,:] + v where v is 1 x Cols (bias broadcast).
func (t *Tape) AddRowVector(a, v *Node) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.AddRowVectorInto(a.Value, v.Value, val)
	out := &Node{Value: val, requiresGrad: anyGrad(a, v)}
	if out.requiresGrad {
		out.backward = func() {
			a.accum(out.Grad)
			if v.requiresGrad {
				// Bias gradient: sum of out.Grad over rows.
				g := scratch(1, v.Value.Cols)
				for i := 0; i < out.Grad.Rows; i++ {
					row := out.Grad.Row(i)
					for j, x := range row {
						g.Data[j] += x
					}
				}
				v.accum(g)
				tensor.PutPooled(g)
			}
		}
	}
	return t.push(out)
}

// ReLU records c = max(a, 0) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.ApplyInto(a.Value, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	}, val)
	out := &Node{Value: val, requiresGrad: a.requiresGrad}
	if out.requiresGrad {
		out.backward = func() {
			g := scratch(a.Value.Rows, a.Value.Cols)
			for i, v := range a.Value.Data {
				if v > 0 {
					g.Data[i] = out.Grad.Data[i]
				}
			}
			a.accum(g)
			tensor.PutPooled(g)
		}
	}
	return t.push(out)
}

// LeakyReLU records c = a if a>0 else slope*a.
func (t *Tape) LeakyReLU(a *Node, slope float64) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.ApplyInto(a.Value, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return slope * v
	}, val)
	out := &Node{Value: val, requiresGrad: a.requiresGrad}
	if out.requiresGrad {
		out.backward = func() {
			g := scratch(a.Value.Rows, a.Value.Cols)
			for i, v := range a.Value.Data {
				if v > 0 {
					g.Data[i] = out.Grad.Data[i]
				} else {
					g.Data[i] = slope * out.Grad.Data[i]
				}
			}
			a.accum(g)
			tensor.PutPooled(g)
		}
	}
	return t.push(out)
}

// Tanh records c = tanh(a) elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.ApplyInto(a.Value, math.Tanh, val)
	out := &Node{Value: val, requiresGrad: a.requiresGrad}
	if out.requiresGrad {
		out.backward = func() {
			g := scratch(val.Rows, val.Cols)
			for i, y := range val.Data {
				g.Data[i] = out.Grad.Data[i] * (1 - y*y)
			}
			a.accum(g)
			tensor.PutPooled(g)
		}
	}
	return t.push(out)
}

// Exp records c = exp(a) elementwise.
func (t *Tape) Exp(a *Node) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.ApplyInto(a.Value, math.Exp, val)
	out := &Node{Value: val, requiresGrad: a.requiresGrad}
	if out.requiresGrad {
		out.backward = func() {
			g := scratch(val.Rows, val.Cols)
			tensor.MulInto(out.Grad, val, g)
			a.accum(g)
			tensor.PutPooled(g)
		}
	}
	return t.push(out)
}

// Square records c = a² elementwise.
func (t *Tape) Square(a *Node) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.MulInto(a.Value, a.Value, val)
	out := &Node{Value: val, requiresGrad: a.requiresGrad}
	if out.requiresGrad {
		out.backward = func() {
			g := scratch(a.Value.Rows, a.Value.Cols)
			tensor.MulInto(out.Grad, a.Value, g)
			for i := range g.Data {
				g.Data[i] *= 2
			}
			a.accum(g)
			tensor.PutPooled(g)
		}
	}
	return t.push(out)
}

// SumAll records the 1x1 scalar sum of every entry of a.
func (t *Tape) SumAll(a *Node) *Node {
	val := t.alloc(1, 1)
	val.Data[0] = tensor.Sum(a.Value)
	out := &Node{Value: val, requiresGrad: a.requiresGrad}
	if out.requiresGrad {
		out.backward = func() {
			g := scratch(a.Value.Rows, a.Value.Cols)
			v := out.Grad.Data[0]
			for i := range g.Data {
				g.Data[i] = v
			}
			a.accum(g)
			tensor.PutPooled(g)
		}
	}
	return t.push(out)
}

// MeanRows records the 1 x Cols vector of column means (mean pooling over the
// node set, used by the critic head).
func (t *Tape) MeanRows(a *Node) *Node {
	val := t.alloc(1, a.Value.Cols)
	tensor.MeanRowsInto(a.Value, val)
	out := &Node{Value: val, requiresGrad: a.requiresGrad}
	if out.requiresGrad {
		rows := a.Value.Rows
		out.backward = func() {
			if rows == 0 {
				return
			}
			g := scratch(rows, a.Value.Cols)
			inv := 1.0 / float64(rows)
			for i := 0; i < rows; i++ {
				grow := g.Row(i)
				for j, v := range out.Grad.Data {
					grow[j] = v * inv
				}
			}
			a.accum(g)
			tensor.PutPooled(g)
		}
	}
	return t.push(out)
}

// MaxRows records the 1 x Cols vector of column maxima (max pooling over the
// node set, used for the ∅-action score). The gradient routes to the argmax
// row of each column.
func (t *Tape) MaxRows(a *Node) *Node {
	val := t.alloc(1, a.Value.Cols)
	arg := make([]int, a.Value.Cols)
	tensor.MaxRowsInto(a.Value, val, arg)
	out := &Node{Value: val, requiresGrad: a.requiresGrad}
	if out.requiresGrad {
		out.backward = func() {
			if a.Value.Rows == 0 {
				return
			}
			g := scratch(a.Value.Rows, a.Value.Cols)
			for j, i := range arg {
				g.Set(i, j, out.Grad.Data[j])
			}
			a.accum(g)
			tensor.PutPooled(g)
		}
	}
	return t.push(out)
}

// GatherRows records the matrix whose i-th row is a's row idx[i] (selecting
// the embeddings of the ready tasks). Gradients scatter-add back, so repeated
// indices are handled correctly.
func (t *Tape) GatherRows(a *Node, idx []int) *Node {
	ids := append([]int(nil), idx...)
	val := t.alloc(len(ids), a.Value.Cols)
	tensor.GatherRowsInto(a.Value, ids, val)
	out := &Node{Value: val, requiresGrad: a.requiresGrad}
	if out.requiresGrad {
		out.backward = func() {
			g := scratch(a.Value.Rows, a.Value.Cols)
			for i, r := range ids {
				grow := g.Row(r)
				orow := out.Grad.Row(i)
				for j, v := range orow {
					grow[j] += v
				}
			}
			a.accum(g)
			tensor.PutPooled(g)
		}
	}
	return t.push(out)
}

// ConcatCols records [a | b].
func (t *Tape) ConcatCols(a, b *Node) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols+b.Value.Cols)
	tensor.ConcatColsInto(a.Value, b.Value, val)
	out := &Node{Value: val, requiresGrad: anyGrad(a, b)}
	if out.requiresGrad {
		ac := a.Value.Cols
		out.backward = func() {
			if a.requiresGrad {
				g := scratch(a.Value.Rows, a.Value.Cols)
				for i := 0; i < g.Rows; i++ {
					copy(g.Row(i), out.Grad.Row(i)[:ac])
				}
				a.accum(g)
				tensor.PutPooled(g)
			}
			if b.requiresGrad {
				g := scratch(b.Value.Rows, b.Value.Cols)
				for i := 0; i < g.Rows; i++ {
					copy(g.Row(i), out.Grad.Row(i)[ac:])
				}
				b.accum(g)
				tensor.PutPooled(g)
			}
		}
	}
	return t.push(out)
}

// ConcatRows records the vertical concatenation of nodes (all with equal
// column counts); used to stack per-task scores with the ∅-action score.
func (t *Tape) ConcatRows(nodes ...*Node) *Node {
	if len(nodes) == 0 {
		panic("autograd: ConcatRows needs at least one node")
	}
	cols := nodes[0].Value.Cols
	rows := 0
	req := false
	for _, n := range nodes {
		if n.Value.Rows > 0 {
			if cols == 0 || nodes[0].Value.Rows == 0 {
				cols = n.Value.Cols
			}
			if n.Value.Cols != cols {
				panic(fmt.Sprintf("autograd: ConcatRows col mismatch %d vs %d", n.Value.Cols, cols))
			}
		}
		rows += n.Value.Rows
		req = req || n.requiresGrad
	}
	val := t.alloc(rows, cols)
	offset := 0
	for _, n := range nodes {
		copy(val.Data[offset*cols:], n.Value.Data)
		offset += n.Value.Rows
	}
	out := &Node{Value: val, requiresGrad: req}
	if out.requiresGrad {
		parts := append([]*Node(nil), nodes...)
		out.backward = func() {
			offset := 0
			for _, p := range parts {
				rows := p.Value.Rows
				if p.requiresGrad {
					g := scratch(rows, p.Value.Cols)
					copy(g.Data, out.Grad.Data[offset*out.Grad.Cols:(offset+rows)*out.Grad.Cols])
					p.accum(g)
					tensor.PutPooled(g)
				}
				offset += rows
			}
		}
	}
	return t.push(out)
}

// LogSoftmaxCol records the log-softmax of an n x 1 column vector in a
// numerically stable way (max-shifted).
func (t *Tape) LogSoftmaxCol(a *Node) *Node {
	if a.Value.Cols != 1 {
		panic(fmt.Sprintf("autograd: LogSoftmaxCol wants n x 1, got %dx%d", a.Value.Rows, a.Value.Cols))
	}
	n := a.Value.Rows
	maxv := math.Inf(-1)
	for _, v := range a.Value.Data {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range a.Value.Data {
		sum += math.Exp(v - maxv)
	}
	logZ := maxv + math.Log(sum)
	val := t.alloc(n, 1)
	for i, v := range a.Value.Data {
		val.Data[i] = v - logZ
	}
	out := &Node{Value: val, requiresGrad: a.requiresGrad}
	if out.requiresGrad {
		out.backward = func() {
			// d logsoftmax: dx_i = g_i - softmax_i * Σ g.
			var gsum float64
			for _, v := range out.Grad.Data {
				gsum += v
			}
			g := scratch(n, 1)
			for i := range g.Data {
				g.Data[i] = out.Grad.Data[i] - math.Exp(val.Data[i])*gsum
			}
			a.accum(g)
			tensor.PutPooled(g)
		}
	}
	return t.push(out)
}

// Pick records the 1x1 scalar a[i,j].
func (t *Tape) Pick(a *Node, i, j int) *Node {
	val := t.alloc(1, 1)
	val.Data[0] = a.Value.At(i, j)
	out := &Node{Value: val, requiresGrad: a.requiresGrad}
	if out.requiresGrad {
		out.backward = func() {
			g := scratch(a.Value.Rows, a.Value.Cols)
			g.Set(i, j, out.Grad.Data[0])
			a.accum(g)
			tensor.PutPooled(g)
		}
	}
	return t.push(out)
}

// Neg records c = -a.
func (t *Tape) Neg(a *Node) *Node { return t.Scale(a, -1) }

// Scalar returns the single value of a 1x1 node.
func Scalar(n *Node) float64 {
	if n.Value.Rows != 1 || n.Value.Cols != 1 {
		panic(fmt.Sprintf("autograd: Scalar on %dx%d node", n.Value.Rows, n.Value.Cols))
	}
	return n.Value.Data[0]
}
