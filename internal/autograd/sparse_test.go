package autograd

import (
	"math/rand"
	"testing"

	"readys/internal/tensor"
)

// randomSparseOperator builds a symmetric DAG-like propagation operator in
// CSR form (self-loops plus random off-diagonal weights), the constant
// operand shape Tape.SpMM sees from the GCN.
func randomSparseOperator(rng *rand.Rand, n int) *tensor.Sparse {
	d := tensor.New(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, rng.Float64()+0.1)
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.35 {
				w := rng.Float64() + 0.1
				d.Set(i, j, w)
				d.Set(j, i, w)
			}
		}
	}
	return tensor.SparseFromDense(d)
}

func TestGradSpMM(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := randomSparseOperator(rng, 5)
	checkGrad(t, "spmm", func(tp *Tape, xs []*Node) *Node {
		return tp.SumAll(tp.Square(tp.SpMM(s, xs[0])))
	}, []*tensor.Matrix{randMat(rng, 5, 3)}, 1e-5)
}

func TestGradSpMMThroughChain(t *testing.T) {
	// Gradient flow through SpMM composed with MatMul and ReLU — the exact
	// shape of a GCN layer.
	rng := rand.New(rand.NewSource(22))
	s := randomSparseOperator(rng, 4)
	checkGrad(t, "spmm-chain", func(tp *Tape, xs []*Node) *Node {
		h := tp.ReLU(tp.MatMul(tp.SpMM(s, xs[0]), xs[1]))
		return tp.SumAll(h)
	}, []*tensor.Matrix{randMat(rng, 4, 3), randMat(rng, 3, 2)}, 1e-5)
}

func TestSpMMMatchesDenseOnTape(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := randomSparseOperator(rng, 8)
	x := randMat(rng, 8, 4)
	tp := NewTape()
	sparse := tp.SpMM(s, tp.Const(x))
	dense := tp.MatMul(tp.Const(s.Dense()), tp.Const(x))
	if !sparse.Value.Equal(dense.Value) {
		t.Fatal("tape SpMM diverges from dense MatMul")
	}
}
