package autograd

import (
	"math/rand"
	"testing"

	"readys/internal/tensor"
)

func TestReleaseIsIdempotentAndGuardsReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tp := NewTape()
	x := tp.Var(randMat(rng, 3, 3))
	y := tp.SumAll(tp.Square(x))
	tp.Backward(y)
	got := Scalar(y)
	if got == 0 {
		t.Fatal("expected non-zero scalar before release")
	}
	tp.Release()
	if !tp.Released() {
		t.Fatal("Released must report true")
	}
	tp.Release() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("pushing onto a released tape must panic")
		}
	}()
	tp.Const(tensor.New(1, 1))
}

// TestPooledTapesAreDeterministic runs the same computation twice; the second
// run consumes recycled (previously dirty) buffers from the first, so any op
// that fails to fully overwrite its pooled destination would diverge.
func TestPooledTapesAreDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randMat(rng, 6, 4)
	b := randMat(rng, 4, 5)
	s := randomSparseOperator(rng, 6)

	run := func() (float64, []float64) {
		tp := NewTape()
		av, bv := tp.Var(a), tp.Var(b)
		h := tp.ReLU(tp.MatMul(tp.SpMM(s, av), bv))
		pooled := tp.ConcatCols(tp.MeanRows(h), tp.MaxRows(h))
		loss := tp.SumAll(tp.Square(pooled))
		tp.Backward(loss)
		out := Scalar(loss)
		grad := append([]float64(nil), av.Grad.Data...)
		tp.Release()
		return out, grad
	}
	l1, g1 := run()
	l2, g2 := run()
	if l1 != l2 {
		t.Fatalf("loss changed across pooled runs: %v vs %v", l1, l2)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("gradient %d changed across pooled runs", i)
		}
	}
}

// TestParamValuesSurviveRelease pins the ownership rule: Release returns only
// tape-allocated intermediates, never caller-provided Var/Const matrices.
func TestParamValuesSurviveRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	w := randMat(rng, 3, 3)
	before := append([]float64(nil), w.Data...)
	tp := NewTape()
	y := tp.SumAll(tp.MatMul(tp.Var(w), tp.Const(tensor.Eye(3))))
	tp.Backward(y)
	tp.Release()
	for i, v := range w.Data {
		if v != before[i] {
			t.Fatal("Release must not touch caller-owned matrices")
		}
	}
}
