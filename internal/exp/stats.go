package exp

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the mean and a confidence half-width of a sample.
type Summary struct {
	Mean float64
	// CI is the half-width of the 95% normal-approximation confidence
	// interval (1.96·σ/√n); 0 for samples of size ≤ 1.
	CI float64
	N  int
}

// Summarise computes mean and confidence interval of a sample.
func Summarise(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return Summary{Mean: mean, N: 1}
	}
	var sq float64
	for _, x := range xs {
		d := x - mean
		sq += d * d
	}
	std := math.Sqrt(sq / float64(n-1))
	return Summary{Mean: mean, CI: 1.96 * std / math.Sqrt(float64(n)), N: n}
}

// SummariseCI computes the half-width at an arbitrary z (e.g. 2.58 for the
// 99% interval used by Figure 7).
func SummariseCI(xs []float64, z float64) Summary {
	s := Summarise(xs)
	if s.N > 1 {
		s.CI = s.CI / 1.96 * z
	}
	return s
}

// Median returns the sample median.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	mid := len(ys) / 2
	if len(ys)%2 == 1 {
		return ys[mid]
	}
	return (ys[mid-1] + ys[mid]) / 2
}

// Table is a simple textual table: the common output format of every figure
// runner, written as CSV or aligned text.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// CSV renders the table as CSV (header first). Cells are expected not to
// contain commas; the harness only emits numbers and identifiers.
func (t *Table) CSV() string {
	out := join(t.Header) + "\n"
	for _, r := range t.Rows {
		out += join(r) + "\n"
	}
	return out
}

// Text renders the table with aligned columns for terminal output.
func (t *Table) Text() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var out string
	if t.Title != "" {
		out += "# " + t.Title + "\n"
	}
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			s += fmt.Sprintf("%-*s", widths[i]+2, c)
		}
		return s + "\n"
	}
	out += line(t.Header)
	for _, r := range t.Rows {
		out += line(r)
	}
	return out
}

func join(cells []string) string {
	out := ""
	for i, c := range cells {
		if i > 0 {
			out += ","
		}
		out += c
	}
	return out
}

// F formats a float with 4 significant digits for table cells.
func F(v float64) string { return fmt.Sprintf("%.4g", v) }
