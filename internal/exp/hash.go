package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// This file defines the canonical spec hashing used by the fleet for job
// deduplication and checkpoint cache keys. The hash must be stable across
// processes, Go versions and code refactors, so it is NOT derived from any
// struct encoding (field order would leak in): every spec explicitly lists
// its fields as strings, the fields are sorted by name, floats are formatted
// with strconv's shortest round-trip representation, and the result is the
// SHA-256 of the sorted key=value lines under a versioned domain prefix.

// canonicalHash hashes a field map deterministically: the domain string
// separates spec kinds (an AgentSpec can never collide with an EvalSpec of
// coincidentally equal fields), keys are sorted so insertion order is
// irrelevant, and keys/values are length-prefixed so no concatenation of
// values can alias another ("ab"+"c" vs "a"+"bc").
func canonicalHash(domain string, fields map[string]string) string {
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	fmt.Fprintf(h, "%d:%s", len(domain), domain)
	for _, k := range keys {
		v := fields[k]
		fmt.Fprintf(h, "%d:%s%d:%s", len(k), k, len(v), v)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// canonFloat formats a float canonically: the shortest representation that
// round-trips through a float64. Equal floats always produce equal strings,
// regardless of how the value was computed or previously printed.
func canonFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// canonFloats formats a float slice canonically, preserving order (a σ sweep
// [0, 0.1] is a different experiment from [0.1, 0]).
func canonFloats(vs []float64) string {
	var b []byte
	for i, v := range vs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, canonFloat(v)...)
	}
	return string(b)
}

// Hash returns the canonical SHA-256 identity of the spec, hex-encoded. Two
// specs hash equal iff every field is equal; the encoding is independent of
// struct field order and of float formatting at call sites.
func (s AgentSpec) Hash() string {
	return canonicalHash("readys/agent-spec/v1", s.hashFields())
}

func (s AgentSpec) hashFields() map[string]string {
	return map[string]string{
		"kind":        s.Kind.String(),
		"t":           strconv.Itoa(s.T),
		"cpus":        strconv.Itoa(s.NumCPU),
		"gpus":        strconv.Itoa(s.NumGPU),
		"sigma_train": canonFloat(s.SigmaTrain),
		"window":      strconv.Itoa(s.Window),
		"layers":      strconv.Itoa(s.Layers),
		"hidden":      strconv.Itoa(s.Hidden),
		"seed":        strconv.FormatInt(s.Seed, 10),
	}
}

// Hash returns the canonical SHA-256 identity of the evaluation spec. The
// agent's own hash is embedded as one field, so an eval of a differently
// trained agent on the same test problem is a different job.
func (e EvalSpec) Hash() string {
	return canonicalHash("readys/eval-spec/v1", map[string]string{
		"agent":  e.Agent.Hash(),
		"kind":   e.Kind.String(),
		"t":      strconv.Itoa(e.T),
		"cpus":   strconv.Itoa(e.NumCPU),
		"gpus":   strconv.Itoa(e.NumGPU),
		"sigmas": canonFloats(e.Sigmas),
		"runs":   strconv.Itoa(e.Runs),
		"seed":   strconv.FormatInt(e.Seed, 10),
	})
}

// HashReader hashes a stream with the artifact-store digest function, so
// callers can verify downloaded artifacts against their content address.
func HashReader(r io.Reader) (string, error) {
	h := sha256.New()
	if _, err := io.Copy(h, r); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// HashBytes is the content digest of a byte slice (hex SHA-256) — the
// address under which the fleet's artifact store files the content.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
