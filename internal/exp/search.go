package exp

import (
	"readys/internal/core"
	"readys/internal/rl"
)

// trainWithOverrides trains a fresh agent for the spec with an explicit
// entropy coefficient and unroll length (used by the random search; no
// checkpoint is written).
func trainWithOverrides(spec AgentSpec, episodes int, entropyBeta float64, unroll int) (*core.Agent, rl.History, error) {
	agent := core.NewAgent(spec.AgentConfig())
	cfg := rl.DefaultConfig()
	cfg.Episodes = episodes
	cfg.Seed = spec.Seed
	cfg.EntropyBeta = entropyBeta
	cfg.Unroll = unroll
	hist, err := rl.NewTrainer(agent, spec.Problem(), cfg).Run(nil)
	return agent, hist, err
}

// evaluateGreedy returns the mean greedy makespan of the agent on the spec's
// own problem.
func evaluateGreedy(agent *core.Agent, spec AgentSpec, runs int, seed int64) (float64, error) {
	ms, err := rl.Evaluate(agent, spec.Problem(), runs, seed)
	if err != nil {
		return 0, err
	}
	return Summarise(ms).Mean, nil
}
