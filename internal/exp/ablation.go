package exp

import (
	"fmt"
	"math/rand"

	"readys/internal/core"
	"readys/internal/taskgraph"
)

// Ablation trains small READYS variants on Cholesky T=4 (2 CPUs + 2 GPUs)
// and isolates the contribution of the design choices DESIGN.md calls out:
// the window depth w, the number of GCN layers g, and the ∅ (idle) action.
// Each variant is evaluated against HEFT and MCT at σ ∈ {0, 0.3}. Variants
// are cached in modelsDir like the main agents.
func Ablation(modelsDir string, episodes int) (*Table, error) {
	tab := &Table{
		Title:  "Ablation: window depth, GCN depth and the ∅ action (Cholesky T=4, 2 CPUs + 2 GPUs)",
		Header: []string{"variant", "sigma", "readys_ms", "improve_vs_heft", "improve_vs_mct"},
	}
	type variant struct {
		name        string
		window      int
		layers      int
		disableIdle bool
	}
	variants := []variant{
		{"w=0_g=1", 0, 1, false},
		{"w=1_g=1", 1, 1, false},
		{"w=2_g=1", 2, 1, false},
		{"w=2_g=2", 2, 2, false},
		{"w=2_g=3", 2, 3, false},
		{"w=2_g=2_no-idle", 2, 2, true},
	}
	for _, v := range variants {
		spec := DefaultAgentSpec(taskgraph.Cholesky, 4, 2, 2)
		spec.Window, spec.Layers = v.window, v.layers
		agent, err := LoadOrTrain(spec, modelsDir, episodes)
		if err != nil {
			return nil, fmt.Errorf("exp: ablation %s: %w", v.name, err)
		}
		for _, sigma := range []float64{0, 0.3} {
			pts := compareWithPolicy(agent, taskgraph.Cholesky, 4, 2, 2, sigma, EvalRuns, 44, v.disableIdle)
			tab.AddRow(v.name, F(sigma), F(pts.READYS.Mean), F(pts.ImproveHEFT), F(pts.ImproveMCT))
		}
	}
	return tab, nil
}

// compareWithPolicy is Compare for a single σ with an optional idle-disabled
// agent policy.
func compareWithPolicy(agent *core.Agent, kind taskgraph.Kind, T, cpus, gpus int, sigma float64, runs int, seed int64, disableIdle bool) ComparisonPoint {
	pts := Compare(agent, kind, T, cpus, gpus, []float64{sigma}, runs, seed)
	pt := pts[0]
	if !disableIdle {
		return pt
	}
	// Re-run READYS with the ∅ action masked.
	prob := core.NewProblem(kind, T, cpus, gpus, sigma)
	var ms []float64
	for i := 0; i < runs; i++ {
		pol := core.NewPolicy(agent)
		pol.DisableIdle = true
		res, err := prob.Simulate(pol, rand.New(rand.NewSource(seed+int64(i))))
		if err != nil {
			continue
		}
		ms = append(ms, res.Makespan)
	}
	pt.READYS = Summarise(ms)
	if pt.READYS.Mean > 0 {
		pt.ImproveHEFT = pt.HEFT.Mean / pt.READYS.Mean
		pt.ImproveMCT = pt.MCT.Mean / pt.READYS.Mean
	}
	return pt
}

// SearchTrial is one sampled configuration of the §V-D random search.
type SearchTrial struct {
	Window      int
	Layers      int
	EntropyBeta float64
	Unroll      int
	FinalReward float64
	GreedyMs    float64
}

// RandomSearch reproduces the hyper-parameter search protocol of §V-D on
// Cholesky T=4: the window w is sampled from [0, 2] and the number of GCN
// layers g from [1, 3] (random search); the entropy coefficient is sampled
// from the paper's grid {1e-3, 5e-3, 1e-2} and the unroll length from
// {20, 40, 60, 80}. Each trial trains for the given episode budget; trials
// are returned in sampling order.
func RandomSearch(rng *rand.Rand, trials, episodes int) ([]SearchTrial, *Table, error) {
	entropyGrid := []float64{1e-3, 5e-3, 1e-2}
	unrollGrid := []int{20, 40, 60, 80}
	tab := &Table{
		Title:  "Random search over w, g, entropy β and unroll (Cholesky T=4, 2 CPUs + 2 GPUs)",
		Header: []string{"window", "layers", "entropy", "unroll", "final_mean_reward", "greedy_ms"},
	}
	var out []SearchTrial
	for i := 0; i < trials; i++ {
		tr := SearchTrial{
			Window:      rng.Intn(3),
			Layers:      1 + rng.Intn(3),
			EntropyBeta: entropyGrid[rng.Intn(len(entropyGrid))],
			Unroll:      unrollGrid[rng.Intn(len(unrollGrid))],
		}
		spec := DefaultAgentSpec(taskgraph.Cholesky, 4, 2, 2)
		spec.Window, spec.Layers = tr.Window, tr.Layers
		spec.Seed = int64(100 + i)
		agent, hist, err := trainWithOverrides(spec, episodes, tr.EntropyBeta, tr.Unroll)
		if err != nil {
			return nil, nil, err
		}
		tr.FinalReward = hist.FinalMeanReward(100)
		if ms, err := evaluateGreedy(agent, spec, 3, 45); err == nil {
			tr.GreedyMs = ms
		}
		out = append(out, tr)
		tab.AddRow(fmt.Sprint(tr.Window), fmt.Sprint(tr.Layers), F(tr.EntropyBeta),
			fmt.Sprint(tr.Unroll), F(tr.FinalReward), F(tr.GreedyMs))
	}
	return out, tab, nil
}
