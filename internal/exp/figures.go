package exp

import (
	"fmt"
	"math/rand"

	"readys/internal/core"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// Figure3 regenerates the data of the paper's Figure 3: the makespan
// improvement of READYS over HEFT and over MCT for the three kernels
// (columns), T ∈ {2, 4, 8} (rows) and the σ sweep, on 2 CPUs + 2 GPUs.
// Ratios above 1 mean READYS wins. Agents are loaded from modelsDir (trained
// on demand with the size-scaled episode budget when missing).
func Figure3(modelsDir string) (*Table, error) {
	tab := &Table{
		Title:  "Figure 3: makespan improvement over HEFT and MCT (2 CPUs + 2 GPUs)",
		Header: []string{"kernel", "T", "sigma", "readys_ms", "heft_ms", "mct_ms", "improve_vs_heft", "improve_vs_mct"},
	}
	for _, kind := range []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR} {
		for _, T := range []int{2, 4, 8} {
			spec := DefaultAgentSpec(kind, T, 2, 2)
			agent, err := LoadOrTrain(spec, modelsDir, EpisodesFor(kind, T))
			if err != nil {
				return nil, fmt.Errorf("exp: figure 3 %s: %w", spec.Name(), err)
			}
			for _, pt := range Compare(agent, kind, T, 2, 2, Sigmas, EvalRuns, 42) {
				tab.AddRow(kind.String(), fmt.Sprint(T), F(pt.Sigma),
					F(pt.READYS.Mean), F(pt.HEFT.Mean), F(pt.MCT.Mean),
					F(pt.ImproveHEFT), F(pt.ImproveMCT))
			}
		}
	}
	return tab, nil
}

// TransferFigure regenerates one of Figures 4, 5 or 6: agents trained on
// Cholesky T ∈ {4, 6, 8} are applied unchanged to Cholesky T ∈ {10, 12} on
// the given platform, and compared to HEFT and MCT across σ.
//   - Figure 4: 4 CPUs
//   - Figure 5: 2 CPUs + 2 GPUs
//   - Figure 6: 4 GPUs
func TransferFigure(modelsDir string, numCPU, numGPU int) (*Table, error) {
	tab := &Table{
		Title:  fmt.Sprintf("Transfer learning on %dCPU+%dGPU: Cholesky, trained T∈{4,6,8}, tested T∈{10,12}", numCPU, numGPU),
		Header: []string{"train_T", "test_T", "sigma", "readys_ms", "heft_ms", "mct_ms", "improve_vs_heft", "improve_vs_mct"},
	}
	for _, trainT := range []int{4, 6, 8} {
		spec := DefaultAgentSpec(taskgraph.Cholesky, trainT, numCPU, numGPU)
		agent, err := LoadOrTrain(spec, modelsDir, EpisodesFor(taskgraph.Cholesky, trainT))
		if err != nil {
			return nil, fmt.Errorf("exp: transfer %s: %w", spec.Name(), err)
		}
		for _, testT := range []int{10, 12} {
			for _, pt := range Compare(agent, taskgraph.Cholesky, testT, numCPU, numGPU, Sigmas, EvalRuns, 43) {
				tab.AddRow(fmt.Sprint(trainT), fmt.Sprint(testT), F(pt.Sigma),
					F(pt.READYS.Mean), F(pt.HEFT.Mean), F(pt.MCT.Mean),
					F(pt.ImproveHEFT), F(pt.ImproveMCT))
			}
		}
	}
	return tab, nil
}

// Figure4 is the 4-CPU transfer experiment.
func Figure4(modelsDir string) (*Table, error) { return TransferFigure(modelsDir, 4, 0) }

// Figure5 is the 2-CPU + 2-GPU transfer experiment.
func Figure5(modelsDir string) (*Table, error) { return TransferFigure(modelsDir, 2, 2) }

// Figure6 is the 4-GPU transfer experiment.
func Figure6(modelsDir string) (*Table, error) { return TransferFigure(modelsDir, 0, 4) }

// InferencePoint is one row of the Figure 7 experiment.
type InferencePoint struct {
	T               int
	Tasks           int
	MeanWindow      float64
	MeanInferenceMs Summary
}

// Figure7 measures the mean wall-clock inference time per scheduling decision
// on Cholesky DAGs of growing size (99% confidence interval, as in the
// paper), together with the mean number of tasks in the window. One untrained
// agent is used — inference cost does not depend on the weights.
func Figure7(sizes []int, runs int) (*Table, []InferencePoint) {
	tab := &Table{
		Title:  "Figure 7: mean inference time per decision (Cholesky, 2 CPUs + 2 GPUs)",
		Header: []string{"T", "tasks", "mean_window_tasks", "mean_inference_ms", "ci99_ms"},
	}
	agent := core.NewAgent(core.Config{Window: 2, Layers: 2, Hidden: 32, Seed: 1})
	var points []InferencePoint
	for _, T := range sizes {
		prob := core.NewProblem(taskgraph.Cholesky, T, 2, 2, 0.1)
		var perDecisionMs []float64
		var windowSum, windowCnt float64
		for run := 0; run < runs; run++ {
			pol := &windowProbePolicy{Policy: core.NewPolicy(agent)}
			if _, err := prob.Simulate(pol, rand.New(rand.NewSource(int64(run)))); err != nil {
				continue
			}
			perDecisionMs = append(perDecisionMs,
				float64(pol.InferenceTime.Nanoseconds())/1e6/float64(pol.InferenceCount))
			windowSum += pol.windowSum
			windowCnt += float64(pol.windowCnt)
		}
		s := SummariseCI(perDecisionMs, 2.58)
		pt := InferencePoint{
			T:               T,
			Tasks:           taskgraph.CholeskyTaskCount(T),
			MeanWindow:      windowSum / windowCnt,
			MeanInferenceMs: s,
		}
		points = append(points, pt)
		tab.AddRow(fmt.Sprint(T), fmt.Sprint(pt.Tasks), F(pt.MeanWindow), F(s.Mean), F(s.CI))
	}
	return tab, points
}

// windowProbePolicy wraps the agent policy to record window sizes.
type windowProbePolicy struct {
	*core.Policy
	windowSum float64
	windowCnt int
	feats     [][taskgraph.NumKernels]float64
}

func (p *windowProbePolicy) Reset(s *sim.State) {
	p.Policy.Reset(s)
	p.feats = taskgraph.DescendantFeatures(s.Graph)
}

func (p *windowProbePolicy) Decide(s *sim.State, r int) int {
	es := core.Encode(s, r, p.feats, p.Policy.Agent.Cfg.Window)
	p.windowSum += float64(len(es.Nodes))
	p.windowCnt++
	return p.Policy.Decide(s, r)
}
