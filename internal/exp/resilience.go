package exp

import (
	"fmt"
	"math/rand"

	"readys/internal/core"
	"readys/internal/platform"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// FaultRates is the default fault-rate sweep of the resilience benchmark:
// rate 0 is the fault-free reference, rate 1 the "one disruption of each
// kind per resource" operating point (see sim.SpecForRate).
var FaultRates = []float64{0, 0.5, 1, 2}

// ResiliencePoint is one fault-rate point of the resilience benchmark: mean
// makespans of the four schedulers plus their degradation relative to the
// same scheduler's fault-free mean (1 = unaffected, 2 = twice as slow).
type ResiliencePoint struct {
	Rate       float64
	READYS     Summary
	HEFT       Summary
	ReplanHEFT Summary
	MCT        Summary
	// Degradation factors: mean(rate) / mean(rate 0) per scheduler. The
	// benchmark's headline is the gap between these curves — a dynamic
	// policy should degrade far more gracefully than a static plan.
	DegradeREADYS float64
	DegradeHEFT   float64
	DegradeReplan float64
	DegradeMCT    float64
}

// ResilienceSweep benchmarks READYS against static HEFT, re-planning HEFT and
// MCT under increasing fault rates on the (kind, T, platform, sigma) problem.
//
// The comparison is paired: at each (rate, run) every scheduler replays the
// *same* fault plan with the same duration-noise seed, so differences isolate
// scheduling behaviour. Fault plans are derived from (seed, rate index, run)
// with a horizon of core.FaultHorizonFactor times the HEFT projection; plans
// from sim.GeneratePlan always spare one resource, so runs complete (a
// scheduler failing a run — e.g. a deadlock — simply contributes no sample,
// like the error paths in Compare).
func ResilienceSweep(agent *core.Agent, kind taskgraph.Kind, T, numCPU, numGPU int, sigma float64, rates []float64, runs int, seed int64) []ResiliencePoint {
	g := taskgraph.NewByKind(kind, T)
	plat := platform.New(numCPU, numGPU)
	tt := platform.TimingFor(kind)
	heft := sched.HEFT(g, plat, tt)
	horizon := core.FaultHorizonFactor * heft.Makespan

	out := make([]ResiliencePoint, 0, len(rates))
	for ri, rate := range rates {
		var rd, hd, pd, md []float64
		for i := 0; i < runs; i++ {
			base := seed + int64(ri*1000+i)
			var plan *sim.FaultPlan
			if rate > 0 {
				plan = sim.GeneratePlan(base+104729, plat.Size(), sim.SpecForRate(rate, horizon))
			}
			run := func(pol sim.Policy) (float64, bool) {
				res, err := sim.Simulate(g, plat, tt, pol, sim.Options{
					Sigma: sigma, Rng: rand.New(rand.NewSource(base)), Faults: plan})
				if err != nil {
					return 0, false
				}
				return res.Makespan, true
			}
			pol := &core.Policy{Agent: agent, Temperature: EvalTemperature, Rng: rand.New(rand.NewSource(base + 7919))}
			if m, ok := run(pol); ok {
				rd = append(rd, m)
			}
			if m, ok := run(sched.NewStaticPolicy(heft)); ok {
				hd = append(hd, m)
			}
			if m, ok := run(sched.NewReplanHEFTPolicy()); ok {
				pd = append(pd, m)
			}
			if m, ok := run(sched.MCTPolicy{}); ok {
				md = append(md, m)
			}
		}
		out = append(out, ResiliencePoint{
			Rate:       rate,
			READYS:     Summarise(rd),
			HEFT:       Summarise(hd),
			ReplanHEFT: Summarise(pd),
			MCT:        Summarise(md),
		})
	}
	// Degradation relative to the first rate point (by convention rate 0).
	if len(out) > 0 {
		ref := out[0]
		ratio := func(cur, base float64) float64 {
			if base <= 0 {
				return 0
			}
			return cur / base
		}
		for i := range out {
			out[i].DegradeREADYS = ratio(out[i].READYS.Mean, ref.READYS.Mean)
			out[i].DegradeHEFT = ratio(out[i].HEFT.Mean, ref.HEFT.Mean)
			out[i].DegradeReplan = ratio(out[i].ReplanHEFT.Mean, ref.ReplanHEFT.Mean)
			out[i].DegradeMCT = ratio(out[i].MCT.Mean, ref.MCT.Mean)
		}
	}
	return out
}

// ResilienceTable renders a resilience sweep as the benchmark's figure table.
func ResilienceTable(points []ResiliencePoint, kind taskgraph.Kind, T, numCPU, numGPU int, sigma float64) *Table {
	tab := &Table{
		Title: fmt.Sprintf("Resilience: makespan degradation vs fault rate (%s T=%d, %dCPU+%dGPU, sigma=%g)",
			kind, T, numCPU, numGPU, sigma),
		Header: []string{"fault_rate",
			"readys_ms", "heft_ms", "replan_heft_ms", "mct_ms",
			"degrade_readys", "degrade_heft", "degrade_replan_heft", "degrade_mct"},
	}
	for _, pt := range points {
		tab.AddRow(F(pt.Rate),
			F(pt.READYS.Mean), F(pt.HEFT.Mean), F(pt.ReplanHEFT.Mean), F(pt.MCT.Mean),
			F(pt.DegradeREADYS), F(pt.DegradeHEFT), F(pt.DegradeReplan), F(pt.DegradeMCT))
	}
	return tab
}

// ResilienceFigure regenerates the resilience benchmark end-to-end on the
// repo's reference configuration (Cholesky T=8 on 2 CPUs + 2 GPUs, the
// paper's main platform) at mild duration noise, loading (or training) the
// default agent from modelsDir.
func ResilienceFigure(modelsDir string) (*Table, error) {
	spec := DefaultAgentSpec(taskgraph.Cholesky, 8, 2, 2)
	agent, err := LoadOrTrain(spec, modelsDir, EpisodesFor(taskgraph.Cholesky, 8))
	if err != nil {
		return nil, fmt.Errorf("exp: resilience figure %s: %w", spec.Name(), err)
	}
	pts := ResilienceSweep(agent, taskgraph.Cholesky, 8, 2, 2, 0.1, FaultRates, EvalRuns, 47)
	return ResilienceTable(pts, taskgraph.Cholesky, 8, 2, 2, 0.1), nil
}
