package exp

import (
	"math/rand"

	"readys/internal/core"
	"readys/internal/platform"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// Sigmas is the noise sweep used by every figure, following the paper's
// "as soon as σ > 0" analysis up to strong noise.
var Sigmas = []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5}

// EvalRuns is the number of runs/seeds averaged per stochastic data point
// (the paper uses 5).
const EvalRuns = 5

// EvalTemperature is the sampling temperature used when evaluating READYS
// agents. The paper samples actions from the policy distribution (§IV-B);
// with our shorter training budgets the policies keep non-trivial entropy,
// so raw sampling is noisy while pure argmax can lock into rare degenerate
// ∅ loops. Sharpened sampling at τ=0.25 keeps the learned preferences,
// escapes those loops, and is seed-reproducible.
const EvalTemperature = 0.25

// ComparisonPoint is one σ-point of a READYS-vs-baselines comparison.
type ComparisonPoint struct {
	Sigma  float64
	READYS Summary
	HEFT   Summary
	MCT    Summary
	// ImproveHEFT and ImproveMCT are the paper's "makespan improvement"
	// ratios mean(baseline)/mean(READYS): above 1 means READYS wins.
	ImproveHEFT float64
	ImproveMCT  float64
}

// Compare evaluates the agent against HEFT and MCT on the (kind, T, platform)
// problem across the σ sweep, averaging each point over runs seeds. The HEFT
// schedule is computed once from expected durations and replayed statically
// under noise; MCT and READYS decide dynamically.
func Compare(agent *core.Agent, kind taskgraph.Kind, T, numCPU, numGPU int, sigmas []float64, runs int, seed int64) []ComparisonPoint {
	g := taskgraph.NewByKind(kind, T)
	plat := platform.New(numCPU, numGPU)
	tt := platform.TimingFor(kind)
	heft := sched.HEFT(g, plat, tt)

	out := make([]ComparisonPoint, 0, len(sigmas))
	for si, sigma := range sigmas {
		var rd, hd, md []float64
		for i := 0; i < runs; i++ {
			base := seed + int64(si*1000+i)
			prob := core.Problem{Graph: g, Platform: plat, Timing: tt, Sigma: sigma}

			pol := &core.Policy{Agent: agent, Temperature: EvalTemperature, Rng: rand.New(rand.NewSource(base + 7919))}
			res, err := prob.Simulate(pol, rand.New(rand.NewSource(base)))
			if err == nil {
				rd = append(rd, res.Makespan)
			}
			hres, err := sim.Simulate(g, plat, tt, sched.NewStaticPolicy(heft), sim.Options{Sigma: sigma, Rng: rand.New(rand.NewSource(base))})
			if err == nil {
				hd = append(hd, hres.Makespan)
			}
			mres, err := sim.Simulate(g, plat, tt, sched.MCTPolicy{}, sim.Options{Sigma: sigma, Rng: rand.New(rand.NewSource(base))})
			if err == nil {
				md = append(md, mres.Makespan)
			}
		}
		pt := ComparisonPoint{
			Sigma:  sigma,
			READYS: Summarise(rd),
			HEFT:   Summarise(hd),
			MCT:    Summarise(md),
		}
		if pt.READYS.Mean > 0 {
			pt.ImproveHEFT = pt.HEFT.Mean / pt.READYS.Mean
			pt.ImproveMCT = pt.MCT.Mean / pt.READYS.Mean
		}
		out = append(out, pt)
	}
	return out
}
