package exp

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"readys/internal/core"
	"readys/internal/platform"
	"readys/internal/rl"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/stream"
	"readys/internal/taskgraph"
)

// Stream benchmark: online multi-tenant scheduling of Poisson job arrivals on
// a persistent 2 CPU + 2 GPU cluster. Where the single-DAG figures score
// makespan, this sweep scores what multi-tenant systems are judged on — job
// response time (mean and p99), slowdown against an isolated HEFT run and
// cluster utilization — across offered-load factors, with one operating point
// under mid-stream fault injection.

// StreamKinds and StreamSizes define the job mix of the stream benchmark:
// two DAG families at two sizes, drawn uniformly per arrival.
var (
	StreamKinds = []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU}
	StreamSizes = []int{2, 3}
)

// StreamCase is one sweep row: an offered-load factor and a fault rate.
// Load is normalised so that 1.0 means the mean interarrival gap equals the
// mean isolated HEFT makespan of the job mix — jobs arrive exactly as fast as
// a dedicated cluster could serve them one at a time, so a multi-resource
// cluster runs moderately loaded and anything above queues aggressively.
type StreamCase struct {
	Load      float64
	FaultRate float64
}

// DefaultStreamCases sweeps three load factors fault-free plus the unit-load
// point under fault rate 1 (one disruption of each kind per resource across
// the arrival window; see sim.SpecForRate).
func DefaultStreamCases() []StreamCase {
	return []StreamCase{{Load: 0.5}, {Load: 1}, {Load: 2}, {Load: 1, FaultRate: 1}}
}

// StreamStats summarises one policy at one sweep row across the run seeds.
type StreamStats struct {
	MeanResponse Summary // per-run mean job response (ms)
	P99Response  Summary // per-run p99 job response (ms)
	MeanSlowdown Summary // per-run mean slowdown vs isolated HEFT
	Utilization  Summary // per-run cluster utilization ∈ [0, 1]
}

// StreamPoint is one row of the stream sweep.
type StreamPoint struct {
	Load      float64
	FaultRate float64
	// RateJobsPerSec is the concrete arrival intensity the load maps to.
	RateJobsPerSec float64
	READYS         StreamStats
	HEFTPerJob     StreamStats
	ReplanHEFT     StreamStats
	MCT            StreamStats
}

// meanIsolatedMakespan averages the noise-free HEFT projection over the job
// mix — the normaliser that turns a load factor into an arrival rate.
func meanIsolatedMakespan(plat platform.Platform, kinds []taskgraph.Kind, sizes []int) float64 {
	var sum float64
	var n int
	for _, k := range kinds {
		tt := platform.TimingFor(k)
		for _, s := range sizes {
			sum += sched.HEFT(taskgraph.NewByKind(k, s), plat, tt).Makespan
			n++
		}
	}
	return sum / float64(n)
}

// StreamSweep benchmarks the agent against HEFT-per-job, re-planning HEFT and
// MCT on streaming arrivals. The comparison is paired, mirroring
// ResilienceSweep: at each (case, run) every policy replays the same arrival
// list, the same fault plan and the same duration-noise seed, so differences
// isolate scheduling behaviour. Jobs per stream and runs per row are
// configurable; a policy failing a run contributes no sample.
func StreamSweep(agent *core.Agent, numCPU, numGPU int, kinds []taskgraph.Kind, sizes []int, sigma float64, cases []StreamCase, jobs, runs int, seed int64) []StreamPoint {
	plat := platform.New(numCPU, numGPU)
	isolated := meanIsolatedMakespan(plat, kinds, sizes)

	out := make([]StreamPoint, 0, len(cases))
	for ci, sc := range cases {
		rate := sc.Load * 1000 / isolated // jobs per second of simulated time
		type agg struct{ resp, p99, slow, util []float64 }
		var ra, ha, pa, ma agg
		for i := 0; i < runs; i++ {
			base := seed + int64(ci*1000+i)
			arrivals, err := stream.PoissonProcess{
				Rate: rate, Jobs: jobs, Kinds: kinds, Sizes: sizes,
			}.Generate(rand.New(rand.NewSource(base + 13)))
			if err != nil {
				continue
			}
			var plan *sim.FaultPlan
			if sc.FaultRate > 0 {
				horizon := arrivals[len(arrivals)-1].At + core.FaultHorizonFactor*isolated
				plan = sim.GeneratePlan(base+104729, plat.Size(), sim.SpecForRate(sc.FaultRate, horizon))
			}
			run := func(pol sim.Policy, a *agg) {
				res, err := stream.Run(pol, stream.Config{
					Platform: plat, Arrivals: arrivals, Sigma: sigma,
					Faults: plan, Rng: rand.New(rand.NewSource(base)),
				})
				if err != nil {
					return
				}
				a.resp = append(a.resp, res.MeanResponse)
				a.p99 = append(a.p99, res.P99Response)
				a.slow = append(a.slow, res.MeanSlowdown)
				a.util = append(a.util, res.Utilization)
			}
			run(&core.Policy{Agent: agent, Temperature: EvalTemperature, Rng: rand.New(rand.NewSource(base + 7919))}, &ra)
			run(stream.NewHEFTPerJobPolicy(), &ha)
			run(sched.NewReplanHEFTPolicy(), &pa)
			run(sched.MCTPolicy{}, &ma)
		}
		sum := func(a agg) StreamStats {
			return StreamStats{
				MeanResponse: Summarise(a.resp),
				P99Response:  Summarise(a.p99),
				MeanSlowdown: Summarise(a.slow),
				Utilization:  Summarise(a.util),
			}
		}
		out = append(out, StreamPoint{
			Load: sc.Load, FaultRate: sc.FaultRate, RateJobsPerSec: rate,
			READYS: sum(ra), HEFTPerJob: sum(ha), ReplanHEFT: sum(pa), MCT: sum(ma),
		})
	}
	return out
}

// StreamTable renders a stream sweep as the benchmark's figure table.
func StreamTable(points []StreamPoint, numCPU, numGPU, jobs int, sigma float64, kinds []taskgraph.Kind, sizes []int) *Table {
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	tab := &Table{
		Title: fmt.Sprintf("Online scheduling: job response time vs offered load (%s, sizes %v, %d jobs/stream, %dCPU+%dGPU, sigma=%g)",
			strings.Join(names, "+"), sizes, jobs, numCPU, numGPU, sigma),
		Header: []string{"load", "rate_jobs_per_s", "fault_rate",
			"readys_resp_ms", "readys_p99_ms", "readys_slowdown", "readys_util",
			"heft_job_resp_ms", "heft_job_p99_ms", "heft_job_slowdown", "heft_job_util",
			"replan_heft_resp_ms", "replan_heft_p99_ms", "replan_heft_slowdown", "replan_heft_util",
			"mct_resp_ms", "mct_p99_ms", "mct_slowdown", "mct_util"},
	}
	for _, pt := range points {
		cols := []string{F(pt.Load), F(pt.RateJobsPerSec), F(pt.FaultRate)}
		for _, st := range []StreamStats{pt.READYS, pt.HEFTPerJob, pt.ReplanHEFT, pt.MCT} {
			cols = append(cols, F(st.MeanResponse.Mean), F(st.P99Response.Mean), F(st.MeanSlowdown.Mean), F(st.Utilization.Mean))
		}
		tab.AddRow(cols...)
	}
	return tab
}

// Stream agent: READYS trained directly on arrival streams (rl.Config.Arrivals)
// rather than on a single DAG. The checkpoint is named outside the AgentSpec
// scheme because its identity is the job mix, not one (kind, T) combination.

// StreamTrainJobs is the number of arrivals per training episode; streams this
// short keep episodes affordable while still overlapping several jobs.
const StreamTrainJobs = 5

// StreamTrainEpisodes is the default stream-training budget: the policy
// reaches HEFT-per-job parity on mean response around here (~2 minutes on a
// single laptop core).
const StreamTrainEpisodes = 8000

// streamAgentName identifies the stream-trained checkpoint for the benchmark
// platform and the default architecture.
const streamAgentName = "readys_stream_mix_2c2g_w2_l2_h32"

// StreamAgentPath returns the stream-trained checkpoint path inside dir.
func StreamAgentPath(dir string) string { return filepath.Join(dir, streamAgentName+".json") }

// StreamTrainProcess is the arrival process used for stream training: the
// benchmark job mix at unit load on the benchmark platform.
func StreamTrainProcess() stream.PoissonProcess {
	isolated := meanIsolatedMakespan(platform.New(2, 2), StreamKinds, StreamSizes)
	return stream.PoissonProcess{
		Rate: 1000 / isolated, Jobs: StreamTrainJobs,
		Kinds: StreamKinds, Sizes: StreamSizes,
	}
}

// TrainStreamAgent trains a fresh default-architecture agent on arrival
// streams (see rl.Config.Arrivals) and saves its checkpoint under dir.
func TrainStreamAgent(dir string, episodes, workers int, progress func(rl.EpisodeStats)) (*core.Agent, rl.History, error) {
	agent := core.NewAgent(core.Config{Window: 2, Layers: 2, Hidden: 32, Seed: 1})
	proc := StreamTrainProcess()
	cfg := rl.DefaultConfig()
	cfg.Episodes = episodes
	cfg.RolloutWorkers = workers
	cfg.Arrivals = &proc
	problem := core.Problem{Platform: platform.New(2, 2), Sigma: 0.1}
	trainer := rl.NewTrainer(agent, problem, cfg)
	hist, err := trainer.Run(progress)
	if err != nil {
		return nil, hist, fmt.Errorf("exp: stream training: %w", err)
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, hist, err
		}
		sizes := make([]string, len(StreamSizes))
		for i, s := range StreamSizes {
			sizes[i] = strconv.Itoa(s)
		}
		meta := map[string]string{
			"stream":            "1",
			"kinds":             "cholesky,lu",
			"sizes":             strings.Join(sizes, ","),
			"rate_jobs_per_s":   fmt.Sprintf("%g", proc.Rate),
			"jobs_per_episode":  strconv.Itoa(proc.Jobs),
			"episodes":          strconv.Itoa(episodes),
			"final_mean_reward": fmt.Sprintf("%.4f", hist.FinalMeanReward(100)),
		}
		if err := agent.SaveCheckpoint(StreamAgentPath(dir), meta); err != nil {
			return nil, hist, fmt.Errorf("exp: saving stream agent: %w", err)
		}
	}
	return agent, hist, nil
}

// LoadOrTrainStreamAgent restores the stream-trained checkpoint if present,
// otherwise trains it with the given episode budget.
func LoadOrTrainStreamAgent(dir string, episodes int) (*core.Agent, error) {
	if dir != "" {
		if _, err := os.Stat(StreamAgentPath(dir)); err == nil {
			agent := core.NewAgent(core.Config{Window: 2, Layers: 2, Hidden: 32, Seed: 1})
			if _, err := agent.LoadCheckpoint(StreamAgentPath(dir)); err != nil {
				return nil, err
			}
			return agent, nil
		}
	}
	agent, _, err := TrainStreamAgent(dir, episodes, 0, nil)
	return agent, err
}

// StreamFigure regenerates the stream benchmark end-to-end on the reference
// platform (2 CPUs + 2 GPUs) at mild duration noise, loading (or training)
// the stream-trained agent from modelsDir.
func StreamFigure(modelsDir string) (*Table, error) {
	agent, err := LoadOrTrainStreamAgent(modelsDir, StreamTrainEpisodes)
	if err != nil {
		return nil, fmt.Errorf("exp: stream figure: %w", err)
	}
	const jobs = 12
	pts := StreamSweep(agent, 2, 2, StreamKinds, StreamSizes, 0.1, DefaultStreamCases(), jobs, EvalRuns, 53)
	return StreamTable(pts, 2, 2, jobs, 0.1, StreamKinds, StreamSizes), nil
}
