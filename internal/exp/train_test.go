package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"readys/internal/obs"
	"readys/internal/taskgraph"
)

// TestTrainAgentWithTelemetry is the end-to-end acceptance check for the
// training telemetry pipeline: a short readys-train-style run with a JSONL
// sink attached must stream exactly one record per episode, and the final
// record's reward must match the returned History exactly.
func TestTrainAgentWithTelemetry(t *testing.T) {
	spec := DefaultAgentSpec(taskgraph.Cholesky, 2, 1, 1)
	spec.Hidden, spec.Layers = 8, 1

	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	_, hist, err := TrainAgentWith(spec, "", TrainOptions{Episodes: 4, Telemetry: sink})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	lines, err := obs.DecodeJSONLines(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(hist.Episodes) {
		t.Fatalf("%d telemetry lines for %d episodes", len(lines), len(hist.Episodes))
	}
	var last struct {
		Episode int     `json:"episode"`
		Reward  float64 `json:"reward"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	final := hist.Episodes[len(hist.Episodes)-1]
	if last.Episode != final.Episode || last.Reward != final.Reward {
		t.Fatalf("final telemetry record (ep %d, reward %v) != history (ep %d, reward %v)",
			last.Episode, last.Reward, final.Episode, final.Reward)
	}
}
