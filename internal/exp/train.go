package exp

import (
	"fmt"
	"os"
	"strconv"

	"readys/internal/core"
	"readys/internal/obs"
	"readys/internal/rl"
	"readys/internal/sim"
)

// TrainOptions parameterise TrainAgentWith beyond the spec itself.
type TrainOptions struct {
	// Episodes is the training budget.
	Episodes int
	// Progress, if non-nil, receives per-episode statistics.
	Progress func(rl.EpisodeStats)
	// Telemetry, if non-nil, receives every EpisodeStats as one JSON line.
	// Attaching a sink never changes the training trajectory.
	Telemetry *obs.JSONL
	// Workers is the number of concurrent episode rollouts per training
	// batch (0 selects GOMAXPROCS). Results are bit-identical at any value;
	// see rl.Config.RolloutWorkers.
	Workers int
	// Faults, if enabled, injects a fresh per-episode fault plan into every
	// training rollout; see rl.Config.Faults.
	Faults sim.FaultSpec
}

// TrainAgent trains a fresh agent for the spec with the given episode budget
// and saves its checkpoint under dir. Progress, if non-nil, receives episode
// statistics.
func TrainAgent(spec AgentSpec, dir string, episodes int, progress func(rl.EpisodeStats)) (*core.Agent, rl.History, error) {
	return TrainAgentWith(spec, dir, TrainOptions{Episodes: episodes, Progress: progress})
}

// TrainAgentWith is TrainAgent with a full option set, including a structured
// telemetry sink.
func TrainAgentWith(spec AgentSpec, dir string, opt TrainOptions) (*core.Agent, rl.History, error) {
	agent := core.NewAgent(spec.AgentConfig())
	cfg := rl.DefaultConfig()
	cfg.Episodes = opt.Episodes
	cfg.Seed = spec.Seed
	cfg.RolloutWorkers = opt.Workers
	cfg.Faults = opt.Faults
	trainer := rl.NewTrainer(agent, spec.Problem(), cfg)
	trainer.Telemetry = opt.Telemetry
	hist, err := trainer.Run(opt.Progress)
	if err != nil {
		return nil, hist, fmt.Errorf("exp: training %s: %w", spec.Name(), err)
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, hist, err
		}
		meta := map[string]string{
			"kind":              spec.Kind.String(),
			"T":                 strconv.Itoa(spec.T),
			"cpus":              strconv.Itoa(spec.NumCPU),
			"gpus":              strconv.Itoa(spec.NumGPU),
			"sigma_train":       fmt.Sprintf("%g", spec.SigmaTrain),
			"episodes":          strconv.Itoa(opt.Episodes),
			"final_mean_reward": fmt.Sprintf("%.4f", hist.FinalMeanReward(100)),
		}
		if err := agent.SaveCheckpoint(spec.ModelPath(dir), meta); err != nil {
			return nil, hist, fmt.Errorf("exp: saving %s: %w", spec.Name(), err)
		}
	}
	return agent, hist, nil
}

// LoadAgent restores a trained agent for the spec from dir.
func LoadAgent(spec AgentSpec, dir string) (*core.Agent, error) {
	agent := core.NewAgent(spec.AgentConfig())
	if _, err := agent.LoadCheckpoint(spec.ModelPath(dir)); err != nil {
		return nil, err
	}
	return agent, nil
}

// LoadOrTrain restores the spec's checkpoint if present, otherwise trains it
// with the given episode budget (and caches the result when dir is non-empty).
func LoadOrTrain(spec AgentSpec, dir string, episodes int) (*core.Agent, error) {
	if dir != "" {
		if _, err := os.Stat(spec.ModelPath(dir)); err == nil {
			return LoadAgent(spec, dir)
		}
	}
	agent, _, err := TrainAgent(spec, dir, episodes, nil)
	return agent, err
}

// DefaultModelsDir resolves the model cache directory: $READYS_MODELS_DIR or
// "models".
func DefaultModelsDir() string {
	if d := os.Getenv("READYS_MODELS_DIR"); d != "" {
		return d
	}
	return "models"
}
