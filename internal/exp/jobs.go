package exp

import (
	"fmt"

	"readys/internal/core"
	"readys/internal/taskgraph"
)

// This file holds the job-sized entry points the fleet's workers execute:
// one evaluation sweep over seeds and σ, and one figure regeneration by
// name. Training's job-sized entry point is TrainAgentWith in train.go.

// EvalSpec identifies one evaluation sweep: which trained agent to use and
// which (kernel, size, platform) problem to compare it against HEFT and MCT
// on, across a σ sweep averaged over runs seeds. Train-vs-test fields are
// separate so transfer experiments (train T=4, test T=12) are one spec.
type EvalSpec struct {
	Agent  AgentSpec      `json:"agent"`
	Kind   taskgraph.Kind `json:"kind"`
	T      int            `json:"t"`
	NumCPU int            `json:"cpus"`
	NumGPU int            `json:"gpus"`
	Sigmas []float64      `json:"sigmas"`
	Runs   int            `json:"runs"`
	Seed   int64          `json:"seed"`
}

// DefaultEvalSpec returns the harness's standard sweep for an agent tested on
// size testT on its own platform: the full σ sweep, EvalRuns seeds, and the
// fixed evaluation seed of Figure 3.
func DefaultEvalSpec(agent AgentSpec, testT int) EvalSpec {
	return EvalSpec{
		Agent: agent,
		Kind:  agent.Kind, T: testT, NumCPU: agent.NumCPU, NumGPU: agent.NumGPU,
		Sigmas: append([]float64(nil), Sigmas...),
		Runs:   EvalRuns,
		Seed:   42,
	}
}

// Validate rejects specs that cannot run.
func (e EvalSpec) Validate() error {
	if e.T < 1 {
		return fmt.Errorf("exp: eval spec: T must be >= 1, got %d", e.T)
	}
	if e.NumCPU+e.NumGPU < 1 {
		return fmt.Errorf("exp: eval spec: platform needs at least one resource")
	}
	if e.Runs < 1 {
		return fmt.Errorf("exp: eval spec: runs must be >= 1, got %d", e.Runs)
	}
	if len(e.Sigmas) == 0 {
		return fmt.Errorf("exp: eval spec: empty sigma sweep")
	}
	return nil
}

// Run executes the sweep: the agent is restored from modelsDir (trained with
// the size-scaled budget if its checkpoint is missing) and compared against
// HEFT and MCT on the spec's test problem.
func (e EvalSpec) Run(modelsDir string) ([]ComparisonPoint, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	agent, err := LoadOrTrain(e.Agent, modelsDir, EpisodesFor(e.Agent.Kind, e.Agent.T))
	if err != nil {
		return nil, fmt.Errorf("exp: eval %s: %w", e.Agent.Name(), err)
	}
	return e.RunWith(agent), nil
}

// RunWith executes the sweep with an already-loaded agent (used when the
// caller manages checkpoints itself).
func (e EvalSpec) RunWith(agent *core.Agent) []ComparisonPoint {
	return Compare(agent, e.Kind, e.T, e.NumCPU, e.NumGPU, e.Sigmas, e.Runs, e.Seed)
}

// FigureNames lists the figure identifiers FigureByName accepts, in paper
// order.
func FigureNames() []string {
	return []string{"figure3", "figure4", "figure5", "figure6", "figure7"}
}

// Figure7Sizes and Figure7Runs are the defaults of the inference-time figure
// (matching readys-fig).
var Figure7Sizes = []int{2, 4, 6, 8, 10, 12}

const Figure7Runs = 10

// FigureByName regenerates one figure's table by identifier. Figures 3-6
// load (or train on demand) their checkpoints from modelsDir; figure7 needs
// no models.
func FigureByName(name, modelsDir string) (*Table, error) {
	switch name {
	case "figure3":
		return Figure3(modelsDir)
	case "figure4":
		return Figure4(modelsDir)
	case "figure5":
		return Figure5(modelsDir)
	case "figure6":
		return Figure6(modelsDir)
	case "figure7":
		tab, _ := Figure7(Figure7Sizes, Figure7Runs)
		return tab, nil
	default:
		return nil, fmt.Errorf("exp: unknown figure %q (want one of %v)", name, FigureNames())
	}
}
