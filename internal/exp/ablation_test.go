package exp

import (
	"math/rand"
	"testing"

	"readys/internal/taskgraph"
)

func TestAblationRunsWithTinyBudget(t *testing.T) {
	dir := t.TempDir()
	tab, err := Ablation(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 6 variants × 2 σ points.
	if len(tab.Rows) != 12 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("ragged row %v", row)
		}
	}
}

func TestAblationCachesVariants(t *testing.T) {
	dir := t.TempDir()
	if _, err := Ablation(dir, 2); err != nil {
		t.Fatal(err)
	}
	// Second run must reuse the cached checkpoints: with episodes=0 a train
	// attempt would panic inside the trainer config validation, so success
	// proves the cache was hit.
	if _, err := Ablation(dir, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRandomSearchSamplesWithinGrids(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trials, tab, err := RandomSearch(rng, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 4 || len(tab.Rows) != 4 {
		t.Fatalf("%d trials", len(trials))
	}
	entropyOK := map[float64]bool{1e-3: true, 5e-3: true, 1e-2: true}
	unrollOK := map[int]bool{20: true, 40: true, 60: true, 80: true}
	for _, tr := range trials {
		if tr.Window < 0 || tr.Window > 2 {
			t.Fatalf("window %d outside [0,2]", tr.Window)
		}
		if tr.Layers < 1 || tr.Layers > 3 {
			t.Fatalf("layers %d outside [1,3]", tr.Layers)
		}
		if !entropyOK[tr.EntropyBeta] || !unrollOK[tr.Unroll] {
			t.Fatalf("off-grid trial %+v", tr)
		}
		if tr.GreedyMs <= 0 {
			t.Fatalf("no greedy evaluation in %+v", tr)
		}
	}
}

func TestSearchHelpers(t *testing.T) {
	spec := DefaultAgentSpec(taskgraph.Cholesky, 2, 1, 1)
	spec.Hidden, spec.Layers, spec.Window = 8, 1, 1
	agent, hist, err := trainWithOverrides(spec, 3, 1e-3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Episodes) != 3 {
		t.Fatal("override training wrong length")
	}
	ms, err := evaluateGreedy(agent, spec, 2, 1)
	if err != nil || ms <= 0 {
		t.Fatalf("greedy eval %v err %v", ms, err)
	}
}
