package exp

import (
	"math"
	"strings"
	"testing"

	"readys/internal/core"
	"readys/internal/taskgraph"
)

func TestSummarise(t *testing.T) {
	s := Summarise([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 || s.N != 4 {
		t.Fatalf("summary %+v", s)
	}
	// std = sqrt(5/3); CI = 1.96*std/2
	wantCI := 1.96 * math.Sqrt(5.0/3.0) / 2
	if math.Abs(s.CI-wantCI) > 1e-12 {
		t.Fatalf("CI = %v, want %v", s.CI, wantCI)
	}
	if Summarise(nil).N != 0 {
		t.Fatal("empty summary")
	}
	one := Summarise([]float64{7})
	if one.Mean != 7 || one.CI != 0 {
		t.Fatalf("single-sample summary %+v", one)
	}
}

func TestSummariseCI99(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	s95 := Summarise(xs)
	s99 := SummariseCI(xs, 2.58)
	if math.Abs(s99.CI-s95.CI/1.96*2.58) > 1e-12 {
		t.Fatalf("99%% CI scaling wrong: %v vs %v", s99.CI, s95.CI)
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.AddRow("30", "40")
	csv := tab.CSV()
	if csv != "a,b\n1,2\n30,40\n" {
		t.Fatalf("CSV = %q", csv)
	}
	text := tab.Text()
	if !strings.Contains(text, "# demo") || !strings.Contains(text, "30") {
		t.Fatalf("Text = %q", text)
	}
}

func TestAgentSpecNaming(t *testing.T) {
	spec := DefaultAgentSpec(taskgraph.Cholesky, 8, 2, 2)
	if spec.Name() != "readys_cholesky_T8_2c2g_w2_l2_h32" {
		t.Fatalf("Name = %q", spec.Name())
	}
	if !strings.HasSuffix(spec.ModelPath("models"), "readys_cholesky_T8_2c2g_w2_l2_h32.json") {
		t.Fatalf("ModelPath = %q", spec.ModelPath("models"))
	}
	if spec.Problem().Graph.NumTasks() != 120 {
		t.Fatal("spec problem wrong")
	}
}

func TestEpisodesForScaling(t *testing.T) {
	small := EpisodesFor(taskgraph.Cholesky, 2)
	large := EpisodesFor(taskgraph.Cholesky, 12)
	if small != 8000 {
		t.Fatalf("tiny problem should cap at 8000, got %d", small)
	}
	if large >= small {
		t.Fatal("episodes must shrink with problem size")
	}
	if large < 1200 {
		t.Fatalf("floor violated: %d", large)
	}
}

func TestTrainSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := DefaultAgentSpec(taskgraph.Cholesky, 2, 1, 1)
	spec.Hidden, spec.Layers, spec.Window = 8, 1, 1
	agent, hist, err := TrainAgent(spec, dir, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Episodes) != 5 {
		t.Fatal("history wrong")
	}
	loaded, err := LoadAgent(spec, dir)
	if err != nil {
		t.Fatal(err)
	}
	// Loaded agent must equal the trained one parameter for parameter.
	for _, p := range agent.Params().All() {
		q := loaded.Params().Get(p.Name)
		if q == nil || !q.Value.Equal(p.Value) {
			t.Fatalf("parameter %s not restored", p.Name)
		}
	}
	// LoadOrTrain must hit the cache (episodes=0 would fail if it trained).
	if _, err := LoadOrTrain(spec, dir, 5); err != nil {
		t.Fatal(err)
	}
}

func TestCompareProducesSaneRatios(t *testing.T) {
	agent := core.NewAgent(core.Config{Window: 1, Layers: 1, Hidden: 8, Seed: 1})
	pts := Compare(agent, taskgraph.Cholesky, 3, 1, 1, []float64{0, 0.3}, 3, 7)
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, pt := range pts {
		if pt.READYS.Mean <= 0 || pt.HEFT.Mean <= 0 || pt.MCT.Mean <= 0 {
			t.Fatalf("non-positive means: %+v", pt)
		}
		if pt.ImproveHEFT <= 0 || pt.ImproveMCT <= 0 {
			t.Fatalf("non-positive ratios: %+v", pt)
		}
		// An untrained agent should not beat HEFT by much, and HEFT should
		// not be worse than 20x the agent (sanity bounds).
		if pt.ImproveHEFT > 20 || pt.ImproveHEFT < 0.01 {
			t.Fatalf("implausible ratio %v", pt.ImproveHEFT)
		}
	}
}

func TestCompareNoiseFreePointIsStable(t *testing.T) {
	agent := core.NewAgent(core.Config{Window: 1, Layers: 1, Hidden: 8, Seed: 2})
	a := Compare(agent, taskgraph.Cholesky, 3, 1, 1, []float64{0}, 2, 7)
	b := Compare(agent, taskgraph.Cholesky, 3, 1, 1, []float64{0}, 2, 7)
	if a[0].READYS.Mean != b[0].READYS.Mean || a[0].HEFT.Mean != b[0].HEFT.Mean {
		t.Fatal("same seed must reproduce")
	}
}

func TestFigure7SmallSizes(t *testing.T) {
	tab, pts := Figure7([]int{2, 3}, 2)
	if len(pts) != 2 || len(tab.Rows) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Tasks != 4 || pts[1].Tasks != 10 {
		t.Fatalf("task counts %v %v", pts[0].Tasks, pts[1].Tasks)
	}
	for _, pt := range pts {
		if pt.MeanInferenceMs.Mean <= 0 {
			t.Fatalf("inference time %v", pt.MeanInferenceMs.Mean)
		}
		if pt.MeanWindow <= 0 {
			t.Fatalf("window %v", pt.MeanWindow)
		}
	}
	// Larger DAGs have at least as large average windows.
	if pts[1].MeanWindow < pts[0].MeanWindow {
		t.Fatal("window should grow with T")
	}
}

func TestDefaultModelsDir(t *testing.T) {
	t.Setenv("READYS_MODELS_DIR", "")
	if DefaultModelsDir() != "models" {
		t.Fatal("default dir wrong")
	}
	t.Setenv("READYS_MODELS_DIR", "/tmp/m")
	if DefaultModelsDir() != "/tmp/m" {
		t.Fatal("env override ignored")
	}
}
