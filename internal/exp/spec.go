// Package exp is the experiment harness: it trains and caches READYS agents
// for every (kernel, size, platform) combination the paper evaluates,
// compares them against HEFT and MCT across noise levels, and regenerates the
// data behind every figure of the evaluation section (§V):
//
//	Figure 3   — READYS vs HEFT and MCT, kernels × sizes × σ, 2 CPUs + 2 GPUs
//	Figures 4-6 — transfer learning: train on T∈{4,6,8}, test on T∈{10,12}
//	              on 4 CPUs, 2 CPUs + 2 GPUs, and 4 GPUs
//	Figure 7   — inference time per scheduling decision vs window size
package exp

import (
	"fmt"
	"path/filepath"

	"readys/internal/core"
	"readys/internal/taskgraph"
)

// AgentSpec identifies one trained agent: the problem combination it was
// trained on plus its architecture.
type AgentSpec struct {
	Kind   taskgraph.Kind
	T      int
	NumCPU int
	NumGPU int
	// SigmaTrain is the duration-noise level used during training. The
	// harness trains at a mild σ=0.1 and evaluates across the whole σ sweep;
	// training with a little noise regularises the policy and keeps one
	// agent per combination affordable (documented in EXPERIMENTS.md).
	SigmaTrain float64
	Window     int
	Layers     int
	Hidden     int
	Seed       int64
}

// DefaultAgentSpec returns the spec used throughout the harness for a
// problem combination: the paper's best hyper-parameter region (w=2, g=2).
func DefaultAgentSpec(kind taskgraph.Kind, T, numCPU, numGPU int) AgentSpec {
	return AgentSpec{
		Kind: kind, T: T, NumCPU: numCPU, NumGPU: numGPU,
		SigmaTrain: 0.1,
		Window:     2, Layers: 2, Hidden: 32,
		Seed: 1,
	}
}

// Name returns the canonical, filesystem-safe name of the spec.
func (s AgentSpec) Name() string {
	return fmt.Sprintf("readys_%s_T%d_%dc%dg_w%d_l%d_h%d",
		s.Kind, s.T, s.NumCPU, s.NumGPU, s.Window, s.Layers, s.Hidden)
}

// ModelPath returns the checkpoint path of the spec inside dir.
func (s AgentSpec) ModelPath(dir string) string {
	return filepath.Join(dir, s.Name()+".json")
}

// Problem returns the training problem of the spec.
func (s AgentSpec) Problem() core.Problem {
	return core.NewProblem(s.Kind, s.T, s.NumCPU, s.NumGPU, s.SigmaTrain)
}

// AgentConfig returns the architecture config of the spec.
func (s AgentSpec) AgentConfig() core.Config {
	return core.Config{Window: s.Window, Layers: s.Layers, Hidden: s.Hidden, Seed: s.Seed}
}

// EpisodesFor scales the training budget inversely with the DAG size: larger
// problems have more decisions (and therefore more gradient signal) per
// episode, and cost proportionally more wall-clock per episode. The schedule
// keeps every combination trainable on a single laptop core, in the spirit of
// the paper's "approximately 20 minutes on a standard laptop".
func EpisodesFor(kind taskgraph.Kind, T int) int {
	n := taskgraph.NewByKind(kind, T).NumTasks()
	ep := 300000 / n
	if ep > 8000 {
		ep = 8000
	}
	if ep < 1200 {
		ep = 1200
	}
	return ep
}
