package exp

import (
	"encoding/json"
	"math/rand"
	"testing"

	"readys/internal/taskgraph"
)

// TestCanonicalHashOrderIndependent proves the property the fleet's dedup
// relies on: the hash is a function of the field *set*, not of any insertion
// or declaration order.
func TestCanonicalHashOrderIndependent(t *testing.T) {
	a := map[string]string{}
	a["kind"] = "cholesky"
	a["t"] = "8"
	a["seed"] = "1"
	b := map[string]string{}
	b["seed"] = "1"
	b["kind"] = "cholesky"
	b["t"] = "8"
	if canonicalHash("d", a) != canonicalHash("d", b) {
		t.Fatal("hash depends on map insertion order")
	}
	if canonicalHash("d1", a) == canonicalHash("d2", a) {
		t.Fatal("domain separation lost: different domains hash equal")
	}
	// Length prefixing: key/value boundaries must not alias.
	x := map[string]string{"ab": "c"}
	y := map[string]string{"a": "bc"}
	if canonicalHash("d", x) == canonicalHash("d", y) {
		t.Fatal("field boundaries alias: {ab:c} == {a:bc}")
	}
}

// TestCanonFloatStable proves float formatting cannot change the hash: equal
// float64 values format identically however they were computed, and the
// format round-trips.
func TestCanonFloatStable(t *testing.T) {
	// Runtime arithmetic (not constant-folded): x+y really is
	// 0.30000000000000004, a different float64 from 0.3.
	x, y := 0.1, 0.2
	if canonFloat(0.30000000000000004) != canonFloat(x+y) {
		t.Fatalf("equal floats format differently: %q vs %q",
			canonFloat(0.30000000000000004), canonFloat(x+y))
	}
	two, six, three := 2.0, 6.0, 3.0
	if canonFloat(two) != canonFloat(six/three) {
		t.Fatalf("equal floats format differently: %q vs %q",
			canonFloat(two), canonFloat(six/three))
	}
	if canonFloat(0.3) == canonFloat(x+y) {
		t.Fatal("distinct floats collapsed to one string")
	}
	// Shortest round-trip representation: "0.1", not "0.10000000000000001".
	if got := canonFloat(0.1); got != "0.1" {
		t.Fatalf("canonFloat(0.1) = %q", got)
	}
}

// TestAgentSpecHashDeterministic pins the basic identity properties.
func TestAgentSpecHashDeterministic(t *testing.T) {
	s := DefaultAgentSpec(taskgraph.Cholesky, 8, 2, 2)
	if s.Hash() != s.Hash() {
		t.Fatal("hash not deterministic")
	}
	if len(s.Hash()) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(s.Hash()))
	}
	// A JSON round trip (the fleet wire format) preserves the hash.
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back AgentSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Hash() != s.Hash() {
		t.Fatalf("hash changed across JSON round trip: %s vs %s", back.Hash(), s.Hash())
	}
}

// randomAgentSpec draws a spec from a small grid large enough that a
// collision sweep is meaningful.
func randomAgentSpec(rng *rand.Rand) AgentSpec {
	kinds := []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR, taskgraph.Random}
	return AgentSpec{
		Kind:       kinds[rng.Intn(len(kinds))],
		T:          1 + rng.Intn(16),
		NumCPU:     rng.Intn(5),
		NumGPU:     rng.Intn(5),
		SigmaTrain: []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5}[rng.Intn(6)],
		Window:     1 + rng.Intn(4),
		Layers:     1 + rng.Intn(4),
		Hidden:     8 << rng.Intn(4),
		Seed:       int64(rng.Intn(64)),
	}
}

// TestAgentSpecHashNoCollisions sweeps random specs and asserts distinct
// specs never share a hash, while equal specs always do.
func TestAgentSpecHashNoCollisions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := make(map[string]AgentSpec)
	for i := 0; i < 5000; i++ {
		s := randomAgentSpec(rng)
		h := s.Hash()
		if prev, ok := seen[h]; ok && prev != s {
			t.Fatalf("collision: %+v and %+v both hash to %s", prev, s, h)
		}
		seen[h] = s
	}
	if len(seen) < 1000 {
		t.Fatalf("sweep degenerate: only %d distinct specs", len(seen))
	}
}

// TestEvalSpecHashSensitivity mutates each EvalSpec field in turn and
// asserts the hash moves, and that the eval domain never collides with the
// agent domain.
func TestEvalSpecHashSensitivity(t *testing.T) {
	base := DefaultEvalSpec(DefaultAgentSpec(taskgraph.Cholesky, 4, 2, 2), 10)
	h0 := base.Hash()
	if h0 == base.Agent.Hash() {
		t.Fatal("eval spec hash collides with its agent's hash")
	}
	mutate := []func(*EvalSpec){
		func(e *EvalSpec) { e.Agent.Seed++ },
		func(e *EvalSpec) { e.Kind = taskgraph.LU },
		func(e *EvalSpec) { e.T++ },
		func(e *EvalSpec) { e.NumCPU++ },
		func(e *EvalSpec) { e.NumGPU++ },
		func(e *EvalSpec) { e.Sigmas = []float64{0.5, 0.1} },
		func(e *EvalSpec) { e.Runs++ },
		func(e *EvalSpec) { e.Seed++ },
	}
	for i, m := range mutate {
		e := base
		e.Sigmas = append([]float64(nil), base.Sigmas...)
		m(&e)
		if e.Hash() == h0 {
			t.Fatalf("mutation %d did not change the hash", i)
		}
	}
	// Sigma order matters: a reordered sweep is a different experiment.
	a, b := base, base
	a.Sigmas = []float64{0, 0.1}
	b.Sigmas = []float64{0.1, 0}
	if a.Hash() == b.Hash() {
		t.Fatal("sigma order ignored by the hash")
	}
}
