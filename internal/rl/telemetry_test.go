package rl

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"readys/internal/obs"
)

// runWithTelemetry trains a fresh tiny agent with an optional JSONL sink and
// returns the history plus the raw telemetry bytes.
func runWithTelemetry(t *testing.T, telemetry bool) (History, []byte) {
	t.Helper()
	tr := NewTrainer(tinyAgent(1), tinyProblem(), fastCfg(9))
	var buf bytes.Buffer
	if telemetry {
		tr.Telemetry = obs.NewJSONL(&buf)
	}
	h, err := tr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if telemetry {
		if err := tr.Telemetry.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return h, buf.Bytes()
}

// TestTelemetryDoesNotAlterTraining is the determinism guarantee: the same
// seed with and without a telemetry sink must yield an identical History.
func TestTelemetryDoesNotAlterTraining(t *testing.T) {
	plain, _ := runWithTelemetry(t, false)
	traced, _ := runWithTelemetry(t, true)
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("telemetry altered training:\nplain:  %+v\ntraced: %+v", plain.Episodes[len(plain.Episodes)-1], traced.Episodes[len(traced.Episodes)-1])
	}
}

// TestTelemetryMatchesHistory asserts the JSONL stream is the History,
// line for line — in particular the final-episode reward matches exactly.
func TestTelemetryMatchesHistory(t *testing.T) {
	h, data := runWithTelemetry(t, true)
	lines, err := obs.DecodeJSONLines(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(h.Episodes) {
		t.Fatalf("%d telemetry lines for %d episodes", len(lines), len(h.Episodes))
	}
	for i, line := range lines {
		var st EpisodeStats
		if err := json.Unmarshal(line, &st); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if st != h.Episodes[i] {
			t.Fatalf("line %d diverges from history:\njsonl:   %+v\nhistory: %+v", i, st, h.Episodes[i])
		}
	}
	final := h.Episodes[len(h.Episodes)-1]
	var last EpisodeStats
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last.Reward != final.Reward {
		t.Fatalf("final telemetry reward %v != history reward %v", last.Reward, final.Reward)
	}
}

// TestTelemetryFieldsPopulated checks the new per-episode diagnostics: the
// loss decomposes into its components and updates carry a gradient norm.
func TestTelemetryFieldsPopulated(t *testing.T) {
	cfg := fastCfg(8)
	cfg.BatchEpisodes = 4
	tr := NewTrainer(tinyAgent(1), tinyProblem(), cfg)
	h, err := tr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var sawGrad bool
	for i, e := range h.Episodes {
		if e.PolicyLoss == 0 && e.ValueLoss == 0 {
			t.Fatalf("episode %d: loss components not recorded: %+v", i, e)
		}
		updateEpisode := (i+1)%cfg.BatchEpisodes == 0 || i == cfg.Episodes-1
		if updateEpisode && e.GradNorm > 0 {
			sawGrad = true
		}
		if !updateEpisode && e.GradNorm != 0 {
			t.Fatalf("episode %d reports a gradient norm without an update: %+v", i, e)
		}
	}
	if !sawGrad {
		t.Fatal("no update episode recorded a gradient norm")
	}
}

// TestPPOTelemetry mirrors the A2C guarantees for the PPO trainer:
// determinism with a sink attached and a JSONL stream identical to History.
func TestPPOTelemetry(t *testing.T) {
	run := func(telemetry bool) (History, []byte) {
		cfg := DefaultPPOConfig()
		cfg.Iterations = 2
		cfg.EpisodesPerIter = 3
		cfg.Epochs = 2
		tr := NewPPOTrainer(tinyAgent(1), tinyProblem(), cfg)
		var buf bytes.Buffer
		if telemetry {
			tr.Telemetry = obs.NewJSONL(&buf)
		}
		h, err := tr.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if telemetry {
			if err := tr.Telemetry.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		return h, buf.Bytes()
	}
	plain, _ := run(false)
	traced, data := run(true)
	if !reflect.DeepEqual(plain, traced) {
		t.Fatal("telemetry altered PPO training")
	}
	lines, err := obs.DecodeJSONLines(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(traced.Episodes) {
		t.Fatalf("%d telemetry lines for %d episodes", len(lines), len(traced.Episodes))
	}
	var last EpisodeStats
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	final := traced.Episodes[len(traced.Episodes)-1]
	if last != final {
		t.Fatalf("final telemetry %+v != history %+v", last, final)
	}
	if final.Loss == 0 && final.PolicyLoss == 0 && final.ValueLoss == 0 {
		t.Fatalf("PPO episode stats carry no losses: %+v", final)
	}
}
