package rl

import (
	"math"
	"testing"

	"readys/internal/core"
	"readys/internal/platform"
	"readys/internal/sim"
	"readys/internal/stream"
	"readys/internal/taskgraph"
)

func tinyArrivals() *stream.PoissonProcess {
	return &stream.PoissonProcess{
		Rate:  4,
		Jobs:  3,
		Kinds: []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU},
		Sizes: []int{2},
	}
}

// streamProblem carries only what stream training reads: platform and σ.
func streamProblem() core.Problem {
	return core.Problem{Platform: platform.New(1, 1), Sigma: 0.05}
}

func TestStreamTrainingRunsAndRewardsConsistent(t *testing.T) {
	cfg := fastCfg(6)
	cfg.BatchEpisodes = 3
	cfg.Arrivals = tinyArrivals()
	tr := NewTrainer(tinyAgent(1), streamProblem(), cfg)
	if tr.Baseline() != 0 {
		t.Fatalf("stream trainer has a single-DAG baseline: %v", tr.Baseline())
	}
	h, err := tr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Episodes) != 6 {
		t.Fatalf("history has %d episodes", len(h.Episodes))
	}
	if h.BaselineMakespan != 0 {
		t.Fatalf("stream history claims a global baseline: %v", h.BaselineMakespan)
	}
	for _, e := range h.Episodes {
		if e.Makespan <= 0 || math.IsNaN(e.Reward) || math.IsNaN(e.Loss) || math.IsNaN(e.Entropy) {
			t.Fatalf("bad stream episode stats: %+v", e)
		}
	}
}

// TestStreamTrainingWorkerInvariance extends the repo's determinism criterion
// to stream training: the History (and final parameters) must be bit-identical
// whether episodes roll out sequentially or on 4 workers.
func TestStreamTrainingWorkerInvariance(t *testing.T) {
	run := func(workers int) (History, string) {
		agent := tinyAgent(7)
		cfg := fastCfg(8)
		cfg.BatchEpisodes = 4
		cfg.RolloutWorkers = workers
		cfg.Arrivals = tinyArrivals()
		h, err := NewTrainer(agent, streamProblem(), cfg).Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return h, snapshotParams(agent.Params())
	}
	seqHist, seqParams := run(1)
	parHist, parParams := run(4)
	historiesIdentical(t, seqHist, parHist, "a2c-stream")
	if seqParams != parParams {
		t.Fatal("stream training: final parameters differ between sequential and parallel rollouts")
	}
}

// TestStreamTrainingUnderFaults trains with mid-stream fault injection and
// fault-state features on, pinning the full stream-training surface.
func TestStreamTrainingUnderFaults(t *testing.T) {
	agent := core.NewAgent(core.Config{Window: 1, Layers: 1, Hidden: 8, Seed: 2, FaultFeatures: true})
	cfg := fastCfg(4)
	cfg.BatchEpisodes = 2
	cfg.Arrivals = tinyArrivals()
	cfg.Faults = sim.SpecForRate(0.5, 0) // horizon defaulted per episode
	h, err := NewTrainer(agent, streamProblem(), cfg).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range h.Episodes {
		if math.IsNaN(e.Reward) || math.IsInf(e.Reward, 0) {
			t.Fatalf("faulted stream episode reward broken: %+v", e)
		}
	}
}

func TestStreamTrainingPPO(t *testing.T) {
	cfg := DefaultPPOConfig()
	cfg.Iterations = 2
	cfg.EpisodesPerIter = 2
	cfg.Epochs = 2
	cfg.Arrivals = tinyArrivals()
	h, err := NewPPOTrainer(tinyAgent(5), streamProblem(), cfg).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Episodes) != 4 || h.BaselineMakespan != 0 {
		t.Fatalf("ppo stream history: %d episodes, baseline %v", len(h.Episodes), h.BaselineMakespan)
	}
}
