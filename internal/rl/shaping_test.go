package rl

import (
	"math"
	"testing"

	"readys/internal/core"
	"readys/internal/taskgraph"
)

func TestIdlePenaltyShapingRuns(t *testing.T) {
	cfg := fastCfg(8)
	cfg.IdlePenalty = 0.05
	tr := NewTrainer(tinyAgent(11), tinyProblem(), cfg)
	h, err := tr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range h.Episodes {
		if math.IsNaN(e.Loss) {
			t.Fatal("NaN loss under shaping")
		}
	}
}

func TestIdlePenaltyWithUnrollRuns(t *testing.T) {
	cfg := fastCfg(6)
	cfg.IdlePenalty = 0.05
	cfg.Unroll = 4
	tr := NewTrainer(tinyAgent(12), tinyProblem(), cfg)
	if _, err := tr.Run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestShapingChangesGradients(t *testing.T) {
	// With identical seeds, enabling the idle penalty must change the
	// parameter trajectory (the shaped returns differ whenever ∅ is taken).
	run := func(penalty float64) string {
		agent := tinyAgent(13)
		cfg := fastCfg(12)
		cfg.IdlePenalty = penalty
		tr := NewTrainer(agent, tinyProblem(), cfg)
		if _, err := tr.Run(nil); err != nil {
			t.Fatal(err)
		}
		return snapshotParams(agent.Params())
	}
	if run(0) == run(0.5) {
		t.Fatal("idle penalty had no effect on training")
	}
}

func TestDirectedAgentVariant(t *testing.T) {
	prob := core.NewProblem(taskgraph.Cholesky, 3, 1, 1, 0)
	agent := core.NewAgent(core.Config{Window: 2, Layers: 2, Hidden: 8, Directed: true, Seed: 1})
	cfg := fastCfg(5)
	tr := NewTrainer(agent, prob, cfg)
	if _, err := tr.Run(nil); err != nil {
		t.Fatal(err)
	}
	// Directed and symmetric agents with identical weights must differ in
	// behaviour (different propagation operator).
	sym := core.NewAgent(core.Config{Window: 2, Layers: 2, Hidden: 8, Seed: 99})
	dir := core.NewAgent(core.Config{Window: 2, Layers: 2, Hidden: 8, Directed: true, Seed: 99})
	msSym, err := Evaluate(sym, prob, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	msDir, err := Evaluate(dir, prob, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// They *may* coincide by luck on a tiny DAG; check the encoded operator
	// differs instead if makespans agree.
	if msSym[0] == msDir[0] {
		t.Log("identical makespans on tiny problem; operator difference checked in core tests")
	}
}
