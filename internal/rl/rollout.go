package rl

import (
	"math/rand"
	"runtime"
	"sync"

	"readys/internal/core"
	"readys/internal/stream"
)

// Parallel rollout collection.
//
// Between gradient updates, the episodes of a batch are independent: Forward
// only reads the agent's parameters (see the concurrency contract on
// core.Agent.Forward), so rollouts can run concurrently A3C-style. Two rules
// keep the training History bit-identical to a sequential run at any worker
// count:
//
//  1. Every episode draws from its own RNG stream seeded by (Seed,
//     episodeIndex) — episodeSeed below — so an episode's randomness never
//     depends on which worker ran it or what ran before it.
//  2. Gradient accumulation and statistics happen on the caller's goroutine
//     in fixed episode order after the batch barrier; workers only produce
//     recorded tapes.

// episodeSeed derives episode ep's RNG seed from the trainer seed with a
// splitmix64-style finaliser, decorrelating consecutive episodes and
// consecutive trainer seeds.
func episodeSeed(seed int64, ep int) int64 {
	z := uint64(seed) + (uint64(ep)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// resolveWorkers maps a RolloutWorkers config value to an effective worker
// count (0 or negative selects GOMAXPROCS).
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// rolloutResult is one collected episode: the recorded decision tapes plus
// everything that must be computed inside the worker (entropy pushes nodes
// onto the episode's tapes, so it cannot wait until after release).
type rolloutResult struct {
	ep       int
	steps    []core.Step
	makespan float64
	reward   float64
	entropy  float64
	err      error
}

// collectRollouts runs episodes [start, start+n) of the training schedule and
// returns their results indexed by position. With workers > 1 the episodes
// run concurrently on a bounded worker pool; results are identical to the
// sequential path by construction (per-episode RNG streams, no shared mutable
// state beyond the read-only agent parameters). A non-nil arrivals process
// switches every episode to the stream rollout (see stream.go).
func collectRollouts(agent *core.Agent, problem core.Problem, arrivals *stream.PoissonProcess, baseline float64, seed int64, start, n, workers int) []rolloutResult {
	results := make([]rolloutResult, n)
	runOne := func(k int) {
		ep := start + k
		rng := rand.New(rand.NewSource(episodeSeed(seed, ep)))
		if arrivals != nil {
			results[k] = runStreamEpisode(agent, problem, *arrivals, ep, rng)
			return
		}
		pol := core.NewTrainingPolicy(agent, rng)
		res, err := problem.Simulate(pol, rng)
		r := rolloutResult{ep: ep, steps: pol.Steps, err: err}
		if err == nil {
			r.makespan = res.Makespan
			r.reward = core.Reward(baseline, res.Makespan)
			r.entropy = pol.MeanEntropy()
		}
		results[k] = r
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for k := 0; k < n; k++ {
			runOne(k)
		}
		return results
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range idx {
				runOne(k)
			}
		}()
	}
	for k := 0; k < n; k++ {
		idx <- k
	}
	close(idx)
	wg.Wait()
	return results
}

// releaseSteps returns the recorded decision tapes of an episode to the
// buffer pool once their gradients (and any value reads) are consumed.
func releaseSteps(steps []core.Step) {
	for _, st := range steps {
		st.Forward.Binding.Release()
	}
}

// releaseResults releases every episode tape in results (error-path cleanup).
func releaseResults(results []rolloutResult) {
	for _, r := range results {
		releaseSteps(r.steps)
	}
}
