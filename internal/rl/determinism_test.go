package rl

import (
	"testing"
)

// historiesIdentical compares two training curves field by field, bit-exactly.
func historiesIdentical(t *testing.T, a, b History, what string) {
	t.Helper()
	if a.BaselineMakespan != b.BaselineMakespan {
		t.Fatalf("%s: baselines differ: %v vs %v", what, a.BaselineMakespan, b.BaselineMakespan)
	}
	if len(a.Episodes) != len(b.Episodes) {
		t.Fatalf("%s: episode counts differ: %d vs %d", what, len(a.Episodes), len(b.Episodes))
	}
	for i := range a.Episodes {
		if a.Episodes[i] != b.Episodes[i] {
			t.Fatalf("%s: episode %d diverges:\n  seq: %+v\n  par: %+v", what, i, a.Episodes[i], b.Episodes[i])
		}
	}
}

// TestA2CParallelRolloutsBitIdentical is the ISSUE's determinism criterion:
// training with RolloutWorkers: 4 must produce a History identical
// line-for-line to RolloutWorkers: 1, and the final parameters must match.
func TestA2CParallelRolloutsBitIdentical(t *testing.T) {
	run := func(workers int) (History, string) {
		agent := tinyAgent(7)
		cfg := fastCfg(12)
		cfg.BatchEpisodes = 4
		cfg.RolloutWorkers = workers
		tr := NewTrainer(agent, tinyProblem(), cfg)
		h, err := tr.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return h, snapshotParams(agent.Params())
	}
	seqHist, seqParams := run(1)
	parHist, parParams := run(4)
	historiesIdentical(t, seqHist, parHist, "a2c")
	if seqParams != parParams {
		t.Fatal("a2c: final parameters differ between sequential and parallel rollouts")
	}
}

func TestA2CDefaultWorkersBitIdentical(t *testing.T) {
	// RolloutWorkers: 0 (GOMAXPROCS, whatever this host has) must also match.
	run := func(workers int) History {
		cfg := fastCfg(8)
		cfg.BatchEpisodes = 4
		cfg.RolloutWorkers = workers
		h, err := NewTrainer(tinyAgent(3), tinyProblem(), cfg).Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	historiesIdentical(t, run(1), run(0), "a2c-default-workers")
}

func TestPPOParallelRolloutsBitIdentical(t *testing.T) {
	run := func(workers int) (History, string) {
		agent := tinyAgent(7)
		cfg := DefaultPPOConfig()
		cfg.Iterations = 3
		cfg.EpisodesPerIter = 4
		cfg.Epochs = 2
		cfg.RolloutWorkers = workers
		tr := NewPPOTrainer(agent, tinyProblem(), cfg)
		h, err := tr.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return h, snapshotParams(agent.Params())
	}
	seqHist, seqParams := run(1)
	parHist, parParams := run(4)
	historiesIdentical(t, seqHist, parHist, "ppo")
	if seqParams != parParams {
		t.Fatal("ppo: final parameters differ between sequential and parallel rollouts")
	}
}

func TestEpisodeSeedStreamsDistinct(t *testing.T) {
	seen := map[int64]int{}
	for seed := int64(1); seed <= 3; seed++ {
		for ep := 0; ep < 200; ep++ {
			s := episodeSeed(seed, ep)
			if prev, dup := seen[s]; dup {
				t.Fatalf("episodeSeed collision: %d (prev entry %d)", s, prev)
			}
			seen[s] = ep
		}
	}
}
