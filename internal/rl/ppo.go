package rl

import (
	"fmt"
	"math"

	"readys/internal/autograd"
	"readys/internal/core"
	"readys/internal/nn"
	"readys/internal/obs"
	"readys/internal/sim"
	"readys/internal/stream"
)

// PPOConfig holds the hyper-parameters of the PPO trainer — the "more recent
// algorithms" extension the paper's future-work section (§VI) points to.
type PPOConfig struct {
	// Iterations is the number of collect-then-optimise cycles.
	Iterations int
	// EpisodesPerIter is the number of rollout episodes per cycle.
	EpisodesPerIter int
	// Epochs is the number of optimisation passes over each batch.
	Epochs int
	// ClipEps is the PPO surrogate clipping radius (0.2 by convention).
	ClipEps float64

	Gamma       float64
	EntropyBeta float64
	ValueScale  float64
	LR          float64
	ClipNorm    float64
	// Seed drives episode randomness; each rollout episode uses its own
	// stream derived from (Seed, episodeIndex).
	Seed int64
	// RolloutWorkers is the number of concurrent rollouts per iteration
	// (0 selects GOMAXPROCS). The History is bit-identical at any worker
	// count, mirroring the A2C contract (see Config.RolloutWorkers).
	RolloutWorkers int
	// Faults, when enabled, trains under per-episode fault injection,
	// mirroring the A2C contract (see Config.Faults).
	Faults sim.FaultSpec
	// Arrivals, when non-nil, trains on streaming job arrivals, mirroring the
	// A2C contract (see Config.Arrivals).
	Arrivals *stream.PoissonProcess
}

// DefaultPPOConfig returns conventional PPO constants matched to the A2C
// defaults of this repository.
func DefaultPPOConfig() PPOConfig {
	return PPOConfig{
		Iterations:      100,
		EpisodesPerIter: 8,
		Epochs:          3,
		ClipEps:         0.2,
		Gamma:           0.99,
		EntropyBeta:     1e-2,
		ValueScale:      0.5,
		LR:              0.003,
		ClipNorm:        5,
		Seed:            1,
	}
}

// ppoSample is one stored decision of a rollout batch.
type ppoSample struct {
	state     *core.EncodedState
	action    int
	oldLogP   float64
	target    float64 // discounted terminal return
	advantage float64 // target − V_old(state)
}

// PPOTrainer trains an agent with clipped-surrogate PPO on a fixed problem.
type PPOTrainer struct {
	Agent   *core.Agent
	Problem core.Problem
	Cfg     PPOConfig

	// Telemetry, if non-nil, receives one EpisodeStats JSON line per rollout
	// episode (emitted after the iteration's optimisation passes, so the
	// loss fields are populated). Attaching it never alters training.
	Telemetry *obs.JSONL

	opt      *nn.Adam
	baseline float64
}

// NewPPOTrainer prepares PPO training of the agent on the problem.
func NewPPOTrainer(agent *core.Agent, problem core.Problem, cfg PPOConfig) *PPOTrainer {
	if cfg.Iterations <= 0 || cfg.EpisodesPerIter <= 0 || cfg.Epochs <= 0 {
		panic(fmt.Sprintf("rl: invalid PPO config %+v", cfg))
	}
	if cfg.Faults.Enabled() {
		problem.Faults = cfg.Faults
	}
	t := &PPOTrainer{
		Agent:   agent,
		Problem: problem,
		Cfg:     cfg,
		opt:     nn.NewAdam(cfg.LR),
	}
	if cfg.Arrivals == nil {
		t.baseline = problem.HEFTBaseline()
	}
	return t
}

// Run executes the PPO loop and returns a training history with one entry
// per rollout episode. Episode statistics are appended and emitted after the
// iteration's optimisation passes, so the loss fields carry the batch-mean
// losses of the final epoch. A nil progress callback and a nil Telemetry
// sink are both fine (see emitEpisode).
func (t *PPOTrainer) Run(progress func(EpisodeStats)) (History, error) {
	hist := History{BaselineMakespan: t.baseline}
	params := t.Agent.Params()
	params.ZeroGrad()
	workers := resolveWorkers(t.Cfg.RolloutWorkers)
	for it := 0; it < t.Cfg.Iterations; it++ {
		// Collect a batch of rollouts under the current ("old") policy,
		// concurrently across the worker pool; samples are extracted in fixed
		// episode order, so the batch layout is worker-count independent.
		var batch []ppoSample
		var pending []EpisodeStats
		results := collectRollouts(t.Agent, t.Problem, t.Cfg.Arrivals, t.baseline, t.Cfg.Seed, it*t.Cfg.EpisodesPerIter, t.Cfg.EpisodesPerIter, workers)
		for k := range results {
			r := &results[k]
			if r.err != nil {
				releaseResults(results[k:])
				return hist, fmt.Errorf("rl: ppo rollout: %w", r.err)
			}
			d := len(r.steps)
			for i, st := range r.steps {
				target := math.Pow(t.Cfg.Gamma, float64(d-1-i)) * r.reward
				vOld := autograd.Scalar(st.Forward.Value)
				batch = append(batch, ppoSample{
					state:     st.State,
					action:    st.Action,
					oldLogP:   st.Forward.LogProbs.Value.Data[st.Action],
					target:    target,
					advantage: target - vOld,
				})
			}
			// The rollout tapes are only needed for the reads above: PPO
			// re-runs Forward on the stored states during optimisation.
			releaseSteps(r.steps)
			pending = append(pending, EpisodeStats{Episode: r.ep, Makespan: r.makespan, Reward: r.reward, Entropy: r.entropy})
		}
		// Optimise the clipped surrogate for several epochs.
		var epochTotal, epochPolicy, epochValue, gradNorm float64
		for ep := 0; ep < t.Cfg.Epochs; ep++ {
			epochTotal, epochPolicy, epochValue = 0, 0, 0
			scale := 1.0 / float64(len(batch))
			for _, s := range batch {
				fw := t.Agent.Forward(s.state)
				tp := fw.Binding.Tape

				logp := tp.Pick(fw.LogProbs, s.action, 0)
				ratio := tp.Exp(tp.AddConst(logp, -s.oldLogP))
				// Clipped surrogate: the unclipped branch only contributes
				// gradient when it is the active minimum.
				rv := autograd.Scalar(ratio)
				clipped := math.Min(math.Max(rv, 1-t.Cfg.ClipEps), 1+t.Cfg.ClipEps)
				var surrogate *autograd.Node
				if rv*s.advantage <= clipped*s.advantage {
					surrogate = tp.Scale(ratio, s.advantage)
				} else {
					// Constant branch: no policy gradient flows.
					surrogate = tp.Scale(tp.AddConst(tp.Scale(ratio, 0), clipped), s.advantage)
				}
				policyLoss := tp.Neg(surrogate)
				valueErr := tp.AddConst(fw.Value, -s.target)
				valueLoss := tp.Scale(tp.Square(valueErr), t.Cfg.ValueScale)
				entropy := fw.Entropy()
				loss := tp.Sub(tp.Add(policyLoss, valueLoss), tp.Scale(entropy, t.Cfg.EntropyBeta))
				loss = tp.Scale(loss, scale)
				tp.Backward(loss)
				epochTotal += autograd.Scalar(loss)
				epochPolicy += autograd.Scalar(policyLoss) * scale
				epochValue += autograd.Scalar(valueLoss) * scale
				fw.Binding.Flush()
				fw.Binding.Release()
			}
			gradNorm = applyUpdate(params, t.opt, t.Cfg.ClipNorm)
		}
		for i, st := range pending {
			st.Loss = epochTotal
			st.PolicyLoss = epochPolicy
			st.ValueLoss = epochValue
			if i == len(pending)-1 {
				st.GradNorm = gradNorm
			}
			hist.Episodes = append(hist.Episodes, st)
			if err := emitEpisode(t.Telemetry, progress, st); err != nil {
				return hist, err
			}
		}
	}
	return hist, nil
}
