package rl

import (
	"math"
	"math/rand"
	"testing"

	"readys/internal/core"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

func TestQLinearProducesValidSchedules(t *testing.T) {
	q := NewQLinear(1)
	for _, kind := range []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU} {
		prob := core.NewProblem(kind, 4, 2, 2, 0.2)
		res, err := prob.Simulate(q, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := sim.ValidateResult(prob.Graph, prob.Platform.Size(), res); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

func TestQLinearTrainingUpdatesWeights(t *testing.T) {
	q := NewQLinear(1)
	prob := core.NewProblem(taskgraph.Cholesky, 3, 1, 1, 0)
	hist, err := TrainQLinear(q, prob, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Episodes) != 20 {
		t.Fatal("history length wrong")
	}
	var norm float64
	for _, w := range q.W {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatal("weights diverged")
		}
		norm += w * w
	}
	if norm == 0 {
		t.Fatal("weights never updated")
	}
}

func TestQLinearLearnsSomething(t *testing.T) {
	if testing.Short() {
		t.Skip("learning test skipped in -short mode")
	}
	// On 1 CPU + 1 GPU the linear features (GPU flag × acceleration) suffice
	// to learn "put accelerated kernels on the GPU": the trained agent must
	// beat its untrained self on average.
	prob := core.NewProblem(taskgraph.Cholesky, 4, 1, 1, 0)
	untrained := NewQLinear(7)
	trained := NewQLinear(7)
	if _, err := TrainQLinear(trained, prob, 800, 5); err != nil {
		t.Fatal(err)
	}
	evalMean := func(q *QLinear) float64 {
		var sum float64
		for i := 0; i < 5; i++ {
			res, err := prob.Simulate(q, rand.New(rand.NewSource(int64(100+i))))
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Makespan
		}
		return sum / 5
	}
	mu, mt := evalMean(untrained), evalMean(trained)
	if mt >= mu {
		t.Fatalf("Q-learning did not improve: untrained %.1f, trained %.1f", mu, mt)
	}
}

func TestQLinearVsREADYSGapNote(t *testing.T) {
	// Structural check only: both policies run on the same problem, and the
	// feature dimension stays as documented.
	q := NewQLinear(1)
	if len(q.W) != qFeatures {
		t.Fatalf("weight dim %d", len(q.W))
	}
}
