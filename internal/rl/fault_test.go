package rl

import (
	"math/rand"
	"testing"

	"readys/internal/core"
	"readys/internal/sim"
)

// faultSpec is a small but lively fault regime for the tiny test problem.
func faultSpec() sim.FaultSpec {
	return sim.FaultSpec{OutageRate: 1, DeathProb: 0.2, DegradeRate: 1}
}

func TestA2CTrainsUnderFaults(t *testing.T) {
	cfg := fastCfg(8)
	cfg.BatchEpisodes = 4
	cfg.Faults = faultSpec()
	tr := NewTrainer(tinyAgent(1), tinyProblem(), cfg)
	h, err := tr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Episodes) != 8 {
		t.Fatalf("got %d episodes", len(h.Episodes))
	}
	// The reward baseline stays the fault-free HEFT projection.
	if h.BaselineMakespan != tinyProblem().HEFTBaseline() {
		t.Fatal("baseline changed under faults")
	}
}

func TestA2CFaultTrainingBitIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) (History, string) {
		agent := tinyAgent(7)
		cfg := fastCfg(12)
		cfg.BatchEpisodes = 4
		cfg.RolloutWorkers = workers
		cfg.Faults = faultSpec()
		tr := NewTrainer(agent, tinyProblem(), cfg)
		h, err := tr.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return h, snapshotParams(agent.Params())
	}
	seqHist, seqParams := run(1)
	parHist, parParams := run(4)
	historiesIdentical(t, seqHist, parHist, "a2c-faults")
	if seqParams != parParams {
		t.Fatal("a2c: final parameters differ across worker counts under faults")
	}
}

func TestPPOTrainsUnderFaults(t *testing.T) {
	cfg := DefaultPPOConfig()
	cfg.Iterations = 2
	cfg.EpisodesPerIter = 4
	cfg.Epochs = 2
	cfg.Faults = faultSpec()
	h, err := NewPPOTrainer(tinyAgent(2), tinyProblem(), cfg).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Episodes) != 8 {
		t.Fatalf("got %d episodes", len(h.Episodes))
	}
}

func TestFaultEpisodesActuallyFault(t *testing.T) {
	// Derived per-episode plans must inject real events on the tiny problem:
	// across a handful of episode streams at rate 1, at least one run sees a
	// kill or an episode-to-episode plan difference.
	p := tinyProblem()
	p.Faults = faultSpec()
	var kills int
	seenPlans := map[string]bool{}
	for ep := 0; ep < 6; ep++ {
		rng := rand.New(rand.NewSource(episodeSeed(1, ep)))
		plan := p.FaultPlanFor(rng.Int63())
		if plan.Empty() {
			continue
		}
		key := ""
		for _, e := range plan.Events {
			key += e.Kind.String()
		}
		seenPlans[key] = true
		rng2 := rand.New(rand.NewSource(episodeSeed(1, ep)))
		pol := core.NewTrainingPolicy(tinyAgent(1), rng2)
		res, err := p.Simulate(pol, rng2)
		if err != nil {
			t.Fatal(err)
		}
		kills += len(res.Kills)
	}
	if len(seenPlans) < 2 && kills == 0 {
		t.Fatal("fault injection appears inert: no kills and no plan diversity across episodes")
	}
}

func TestEvaluateUnderFaults(t *testing.T) {
	p := tinyProblem()
	p.Faults = faultSpec()
	agent := tinyAgent(3)
	faulty, err := Evaluate(agent, p, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Evaluate(agent, tinyProblem(), 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulty) != 4 || len(clean) != 4 {
		t.Fatal("wrong run counts")
	}
	// Same seeds re-yield the same faulty makespans (plan derivation is
	// part of the per-run RNG stream).
	again, err := Evaluate(agent, p, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range faulty {
		if faulty[i] != again[i] {
			t.Fatalf("faulty evaluation not reproducible: run %d %v vs %v", i, faulty[i], again[i])
		}
	}
}
