package rl

import (
	"math"
	"math/rand"

	"readys/internal/core"
	"readys/internal/platform"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// QLinear is a linear-function-approximation Q-learning scheduler in the
// spirit of the simple tabular/linear approaches the paper's related work
// discusses (e.g. Orhean et al. [42]) and argues cannot scale or generalise.
// It is included as a learning baseline: Q(s, a) = w·φ(s, a) over a small
// hand-crafted feature vector, trained with ε-greedy exploration and TD(0)
// backups on the same terminal reward as READYS. Comparing it with READYS
// isolates the value of the GCN state representation.
type QLinear struct {
	W       []float64
	Epsilon float64
	Alpha   float64
	Gamma   float64
	rng     *rand.Rand

	// learning state (per episode): the feature vectors of the actions
	// actually taken, for Monte-Carlo backups at episode end.
	episodeFeats [][]float64
	training     bool
}

// qFeatures is the dimension of φ: kernel one-hot (4), the task's GPU
// acceleration interacted with the current resource type (accel×isGPU,
// accel×isCPU), ready-set pressure, free-resource fraction, the idle flag
// interacted with the resource type (idle×isGPU, idle×isCPU), bias. The
// explicit interactions are what a linear approximator needs to express even
// the basic "accelerated kernels go to GPUs, CPUs idle instead" rule — and
// their hand-crafted nature is precisely the scaling limitation the paper
// attributes to this family of methods.
const qFeatures = taskgraph.NumKernels + 7

// NewQLinear builds an untrained Q-learning scheduler.
func NewQLinear(seed int64) *QLinear {
	return &QLinear{
		W:       make([]float64, qFeatures),
		Epsilon: 0.1,
		Alpha:   0.01,
		Gamma:   0.99,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// phi computes φ(s, r, task); task == sim.NoTask encodes the idle action.
func phi(s *sim.State, r, task int) []float64 {
	f := make([]float64, qFeatures)
	i := taskgraph.NumKernels
	onGPU := s.Platform.Resources[r].Type == platform.GPU
	if task == sim.NoTask {
		if onGPU {
			f[i+4] = 1 // idle × isGPU
		} else {
			f[i+5] = 1 // idle × isCPU
		}
	} else {
		k := s.Graph.Tasks[task].Kernel
		f[k] = 1
		tt := s.TaskTiming(task)
		cpu := tt.ExpectedDuration(k, platform.CPU)
		gpu := tt.ExpectedDuration(k, platform.GPU)
		if gpu > 0 {
			accel := math.Min(cpu/gpu, 32) / 32
			if onGPU {
				f[i] = accel // accel × isGPU
			} else {
				f[i+1] = accel // accel × isCPU
			}
		}
	}
	if n := len(s.Ready) + len(s.Running); n > 0 {
		f[i+2] = float64(len(s.Ready)) / float64(n)
	}
	f[i+3] = float64(len(s.FreeResources())) / float64(s.Platform.Size())
	f[i+6] = 1 // bias
	return f
}

func (q *QLinear) value(f []float64) float64 {
	var v float64
	for i, x := range f {
		v += q.W[i] * x
	}
	return v
}

// Reset implements sim.Policy.
func (q *QLinear) Reset(*sim.State) {
	q.episodeFeats = q.episodeFeats[:0]
}

// Decide implements sim.Policy: ε-greedy over Q(s, ·); when training, the
// chosen action's features are recorded for the Monte-Carlo backup at
// episode end.
func (q *QLinear) Decide(s *sim.State, r int) int {
	// Candidate actions: every ready task, plus idle unless forced.
	type cand struct {
		task int
		feat []float64
		val  float64
	}
	cands := make([]cand, 0, len(s.Ready)+1)
	for _, t := range s.Ready {
		f := phi(s, r, t)
		cands = append(cands, cand{t, f, q.value(f)})
	}
	if !s.MustAct && len(s.Running) > 0 {
		f := phi(s, r, sim.NoTask)
		cands = append(cands, cand{sim.NoTask, f, q.value(f)})
	}

	best := 0
	for i := range cands {
		if cands[i].val > cands[best].val {
			best = i
		}
	}
	choice := best
	if q.training && q.rng.Float64() < q.Epsilon {
		choice = q.rng.Intn(len(cands))
	}
	if q.training {
		q.episodeFeats = append(q.episodeFeats, cands[choice].feat)
	}
	return cands[choice].task
}

// TrainQLinear trains the scheduler on the problem for the given number of
// episodes and returns the training history. Learning uses gradient
// Monte-Carlo backups: the discounted terminal reward is regressed onto the
// Q-value of every action taken during the episode.
func TrainQLinear(q *QLinear, prob core.Problem, episodes int, seed int64) (History, error) {
	hist := History{BaselineMakespan: prob.HEFTBaseline()}
	rng := rand.New(rand.NewSource(seed))
	q.training = true
	defer func() { q.training = false }()
	for ep := 0; ep < episodes; ep++ {
		res, err := prob.Simulate(q, rng)
		if err != nil {
			return hist, err
		}
		reward := core.Reward(hist.BaselineMakespan, res.Makespan)
		d := len(q.episodeFeats)
		for t, f := range q.episodeFeats {
			target := math.Pow(q.Gamma, float64(d-1-t)) * reward
			delta := target - q.value(f)
			for i, x := range f {
				q.W[i] += q.Alpha * delta * x
			}
		}
		hist.Episodes = append(hist.Episodes, EpisodeStats{
			Episode: ep, Makespan: res.Makespan, Reward: reward,
		})
	}
	return hist, nil
}
