package rl

import (
	"fmt"
	"math"
	"testing"

	"readys/internal/core"
	"readys/internal/nn"
	"readys/internal/platform"
	"readys/internal/taskgraph"
)

func tinyAgent(seed int64) *core.Agent {
	return core.NewAgent(core.Config{Window: 1, Layers: 1, Hidden: 8, Seed: seed})
}

func tinyProblem() core.Problem {
	return core.NewProblem(taskgraph.Cholesky, 3, 1, 1, 0)
}

func fastCfg(episodes int) Config {
	cfg := DefaultConfig()
	cfg.Episodes = episodes
	return cfg
}

func TestTrainerRunsAndRecordsHistory(t *testing.T) {
	tr := NewTrainer(tinyAgent(1), tinyProblem(), fastCfg(10))
	var progressed int
	h, err := tr.Run(func(EpisodeStats) { progressed++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Episodes) != 10 || progressed != 10 {
		t.Fatalf("history %d episodes, progress %d", len(h.Episodes), progressed)
	}
	if h.BaselineMakespan != tr.Baseline() || h.BaselineMakespan <= 0 {
		t.Fatalf("baseline %v", h.BaselineMakespan)
	}
	for _, e := range h.Episodes {
		if e.Makespan <= 0 || math.IsNaN(e.Reward) || math.IsNaN(e.Loss) || math.IsNaN(e.Entropy) {
			t.Fatalf("bad episode stats: %+v", e)
		}
		wantReward := (h.BaselineMakespan - e.Makespan) / h.BaselineMakespan
		if math.Abs(e.Reward-wantReward) > 1e-9 {
			t.Fatalf("reward %v inconsistent with makespan %v", e.Reward, e.Makespan)
		}
	}
}

func TestTrainerChangesParameters(t *testing.T) {
	agent := tinyAgent(1)
	before := snapshotParams(agent.Params())
	tr := NewTrainer(agent, tinyProblem(), fastCfg(4))
	if _, err := tr.Run(nil); err != nil {
		t.Fatal(err)
	}
	after := snapshotParams(agent.Params())
	if before == after {
		t.Fatal("training did not update parameters")
	}
}

func snapshotParams(ps *nn.ParamSet) string {
	var sum float64
	for _, p := range ps.All() {
		for _, v := range p.Value.Data {
			sum += v * v
		}
	}
	return fmt.Sprintf("%.12f", sum)
}

func TestTrainerDeterministicWithSeed(t *testing.T) {
	run := func() []float64 {
		tr := NewTrainer(tinyAgent(3), tinyProblem(), fastCfg(6))
		h, err := tr.Run(nil)
		if err != nil {
			panic(err)
		}
		out := make([]float64, len(h.Episodes))
		for i, e := range h.Episodes {
			out[i] = e.Makespan
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("episode %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTrainerUnrollBootstrap(t *testing.T) {
	cfg := fastCfg(6)
	cfg.Unroll = 5
	tr := NewTrainer(tinyAgent(4), tinyProblem(), cfg)
	h, err := tr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Episodes) != 6 {
		t.Fatal("unroll run incomplete")
	}
}

func TestTrainerGradientsClippedFinite(t *testing.T) {
	agent := tinyAgent(5)
	cfg := fastCfg(8)
	cfg.ClipNorm = 0.001 // aggressive clip must still work
	tr := NewTrainer(agent, tinyProblem(), cfg)
	if _, err := tr.Run(nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range agent.Params().All() {
		for _, v := range p.Value.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("parameter diverged")
			}
		}
	}
}

func TestEvaluateReturnsRuns(t *testing.T) {
	agent := tinyAgent(6)
	ms, err := Evaluate(agent, tinyProblem(), 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("got %d makespans", len(ms))
	}
	for _, m := range ms {
		if m <= 0 {
			t.Fatalf("bad makespan %v", m)
		}
	}
	// σ=0 and greedy: all runs identical up to processor draw order; with a
	// fixed seed the first run must be reproducible.
	ms2, err := Evaluate(agent, tinyProblem(), 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ms2[0] != ms[0] {
		t.Fatal("Evaluate not reproducible")
	}
}

func TestHistoryFinalMeanReward(t *testing.T) {
	h := History{Episodes: []EpisodeStats{{Reward: 1}, {Reward: 2}, {Reward: 3}}}
	if h.FinalMeanReward(2) != 2.5 {
		t.Fatalf("FinalMeanReward(2) = %v", h.FinalMeanReward(2))
	}
	if h.FinalMeanReward(10) != 2 {
		t.Fatalf("FinalMeanReward(10) = %v", h.FinalMeanReward(10))
	}
	if (History{}).FinalMeanReward(5) != 0 {
		t.Fatal("empty history should give 0")
	}
}

func TestNewTrainerRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config should panic")
		}
	}()
	NewTrainer(tinyAgent(1), tinyProblem(), Config{Episodes: 0, BatchEpisodes: 1})
}

// TestLearningImprovesPolicy is the end-to-end learning check: on the
// smallest heterogeneous problem (Cholesky T=3 on 1 CPU + 1 GPU), a short
// A2C run must substantially improve the mean reward over its start.
func TestLearningImprovesPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("learning test skipped in -short mode")
	}
	prob := core.NewProblem(taskgraph.Cholesky, 3, 1, 1, 0)
	agent := core.NewAgent(core.Config{Window: 2, Layers: 2, Hidden: 16, Seed: 1})
	cfg := DefaultConfig()
	cfg.Episodes = 1500
	tr := NewTrainer(agent, prob, cfg)
	h, err := tr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	first := meanReward(h.Episodes[:100])
	last := h.FinalMeanReward(100)
	if last <= first {
		t.Fatalf("no improvement: first 100 mean %.3f, last 100 mean %.3f", first, last)
	}
	// The greedy policy should land in the vicinity of HEFT (within 2x).
	ms, err := Evaluate(agent, prob, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0] > 2*h.BaselineMakespan {
		t.Fatalf("greedy makespan %.1f still far from HEFT %.1f", ms[0], h.BaselineMakespan)
	}
}

func meanReward(eps []EpisodeStats) float64 {
	var s float64
	for _, e := range eps {
		s += e.Reward
	}
	return s / float64(len(eps))
}

func TestTrainerOnGPUOnlyPlatform(t *testing.T) {
	prob := core.Problem{
		Graph:    taskgraph.NewCholesky(3),
		Platform: platform.New(0, 2),
		Timing:   platform.TimingFor(taskgraph.Cholesky),
	}
	tr := NewTrainer(tinyAgent(8), prob, fastCfg(5))
	if _, err := tr.Run(nil); err != nil {
		t.Fatal(err)
	}
}
