package rl

// Stream training: when Config.Arrivals (or PPOConfig.Arrivals) is set, each
// episode is an online multi-tenant run instead of a single-DAG one. The
// episode's RNG stream — the same (Seed, episodeIndex) splitmix64 derivation
// as single-DAG training — first draws a Poisson arrival stream, then drives
// the policy run on a persistent cluster (internal/stream), so the training
// History keeps the bit-identical-at-any-worker-count contract.
//
// The reward generalises the paper's terminal design from makespan to the
// job-level objective streams are judged on:
//
//	R = (meanResponse(HEFT-per-job) − meanResponse(policy)) / meanResponse(HEFT-per-job),
//
// with the baseline replayed on the SAME arrivals, noise- and fault-free and
// under a fixed RNG — like the single-DAG HEFT projection, it is a pure
// function of the episode's arrival list, so the reward scale never wobbles
// with the baseline's own randomness.

import (
	"fmt"
	"math/rand"

	"readys/internal/core"
	"readys/internal/sim"
	"readys/internal/stream"
)

// streamBaselineSeed fixes the RNG of the σ=0 HEFT-per-job baseline replay
// (the engine shuffles free-resource order from it), making the baseline a
// deterministic function of the arrivals alone.
const streamBaselineSeed = 1

// runStreamEpisode rolls out one stream-training episode. Draw order on rng
// is fixed — arrivals, fault-plan seed (only when faults are enabled, echoing
// Problem.Simulate's conditional draw), then the policy run — so an episode's
// randomness never depends on rollout scheduling.
func runStreamEpisode(agent *core.Agent, problem core.Problem, proc stream.PoissonProcess, ep int, rng *rand.Rand) rolloutResult {
	out := rolloutResult{ep: ep}
	arrivals, err := proc.Generate(rng)
	if err != nil {
		out.err = err
		return out
	}
	var planSeed int64
	if problem.Faults.Enabled() {
		planSeed = rng.Int63()
	}
	base, err := stream.Run(stream.NewHEFTPerJobPolicy(), stream.Config{
		Platform: problem.Platform,
		Arrivals: arrivals,
		Sigma:    0,
		Rng:      rand.New(rand.NewSource(streamBaselineSeed)),
	})
	if err != nil {
		out.err = fmt.Errorf("stream baseline: %w", err)
		return out
	}
	var plan *sim.FaultPlan
	if problem.Faults.Enabled() {
		spec := problem.Faults
		if spec.Horizon <= 0 {
			// Default the horizon off the baseline's full completion time:
			// faults keep arriving while the policy drags past what
			// HEFT-per-job needed for the whole stream.
			spec.Horizon = core.FaultHorizonFactor * base.Makespan
		}
		plan = sim.GeneratePlan(planSeed, problem.Platform.Size(), spec)
	}
	pol := core.NewTrainingPolicy(agent, rng)
	res, err := stream.Run(pol, stream.Config{
		Platform: problem.Platform,
		Arrivals: arrivals,
		Sigma:    problem.Sigma,
		Faults:   plan,
		Rng:      rng,
	})
	out.steps = pol.Steps
	if err != nil {
		out.err = err
		return out
	}
	out.makespan = res.Makespan
	out.reward = core.Reward(base.MeanResponse, res.MeanResponse)
	out.entropy = pol.MeanEntropy()
	return out
}
