package rl

import (
	"math"
	"testing"

	"readys/internal/core"
	"readys/internal/taskgraph"
)

func tinyPPOCfg(iters int) PPOConfig {
	cfg := DefaultPPOConfig()
	cfg.Iterations = iters
	cfg.EpisodesPerIter = 2
	cfg.Epochs = 2
	return cfg
}

func TestPPORunsAndRecordsHistory(t *testing.T) {
	tr := NewPPOTrainer(tinyAgent(1), tinyProblem(), tinyPPOCfg(3))
	var n int
	h, err := tr.Run(func(EpisodeStats) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Episodes) != 6 || n != 6 {
		t.Fatalf("history %d episodes, callback %d", len(h.Episodes), n)
	}
	for _, e := range h.Episodes {
		if e.Makespan <= 0 || math.IsNaN(e.Reward) {
			t.Fatalf("bad stats %+v", e)
		}
	}
}

func TestPPOChangesParameters(t *testing.T) {
	agent := tinyAgent(2)
	before := snapshotParams(agent.Params())
	tr := NewPPOTrainer(agent, tinyProblem(), tinyPPOCfg(2))
	if _, err := tr.Run(nil); err != nil {
		t.Fatal(err)
	}
	if snapshotParams(agent.Params()) == before {
		t.Fatal("PPO did not update parameters")
	}
	for _, p := range agent.Params().All() {
		for _, v := range p.Value.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("parameter diverged")
			}
		}
	}
}

func TestPPODeterministicWithSeed(t *testing.T) {
	run := func() float64 {
		tr := NewPPOTrainer(tinyAgent(3), tinyProblem(), tinyPPOCfg(2))
		h, err := tr.Run(nil)
		if err != nil {
			panic(err)
		}
		return h.FinalMeanReward(4)
	}
	if run() != run() {
		t.Fatal("PPO not reproducible with fixed seed")
	}
}

func TestPPORejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config should panic")
		}
	}()
	NewPPOTrainer(tinyAgent(1), tinyProblem(), PPOConfig{})
}

func TestPPOImprovesPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("learning test skipped in -short mode")
	}
	prob := core.NewProblem(taskgraph.Cholesky, 3, 1, 1, 0)
	agent := core.NewAgent(core.Config{Window: 2, Layers: 2, Hidden: 16, Seed: 1})
	cfg := DefaultPPOConfig()
	cfg.Iterations = 60
	cfg.EpisodesPerIter = 6
	tr := NewPPOTrainer(agent, prob, cfg)
	h, err := tr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	first := meanReward(h.Episodes[:30])
	last := h.FinalMeanReward(30)
	if last <= first {
		t.Fatalf("no improvement: first %.3f last %.3f", first, last)
	}
}
