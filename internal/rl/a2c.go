// Package rl implements the advantage actor-critic (A2C) training algorithm
// used by READYS (§IV-A): episodes are rolled out with the sampling policy,
// the terminal reward R = (makespan(HEFT) − makespan)/makespan(HEFT) is
// discounted back through the decisions, and each decision contributes
//
//	loss = −log π(aₜ|sₜ)·Âₜ + valueScale·(V(sₜ) − Rₜ)² − β·H(π(·|sₜ))
//
// with Âₜ = Rₜ − V(sₜ) (advantage, treated as a constant in the policy term)
// and H the policy entropy (exploration bonus [49]). Gradients are
// accumulated over a batch of episodes, clipped, and applied with Adam.
package rl

import (
	"fmt"
	"math"
	"math/rand"

	"readys/internal/autograd"
	"readys/internal/core"
	"readys/internal/nn"
	"readys/internal/obs"
	"readys/internal/sim"
	"readys/internal/stream"
)

// Config holds the A2C hyper-parameters. Defaults follow §V-D.
type Config struct {
	// Episodes is the total number of training episodes.
	Episodes int
	// BatchEpisodes is the number of episodes per gradient update.
	BatchEpisodes int
	// Gamma is the discount factor (0.99 in the paper).
	Gamma float64
	// EntropyBeta scales the entropy bonus (paper grid: 1e-3, 5e-3, 1e-2).
	EntropyBeta float64
	// ValueScale scales the critic loss (0.5 in the paper).
	ValueScale float64
	// LR is the Adam learning rate (0.01 in the paper).
	LR float64
	// ClipNorm bounds the global gradient norm (0 disables clipping).
	ClipNorm float64
	// Unroll is the n-step bootstrap horizon: value targets use
	// γⁿ·V(s_{t+n}) until the terminal reward takes over. 0 means full
	// Monte-Carlo returns (paper grid: 20, 40, 60, 80).
	Unroll int
	// IdlePenalty, when positive, adds an immediate reward of −IdlePenalty
	// to every ∅ decision — a reward-shaping ablation of the paper's
	// terminal-only design (§III-B sets rₜ=0 on non-terminal transitions).
	IdlePenalty float64
	// Seed drives episode randomness (noise, sampling). Each episode uses
	// its own stream derived from (Seed, episodeIndex), so results do not
	// depend on rollout scheduling.
	Seed int64
	// RolloutWorkers is the number of episodes of each batch rolled out
	// concurrently (0 selects GOMAXPROCS). The training History is
	// bit-identical at any worker count: per-episode RNG streams plus
	// fixed-order gradient accumulation after the batch barrier.
	RolloutWorkers int
	// Faults, when enabled, trains under fault injection: each episode
	// derives its own fault plan (outages, deaths, degradation) from its
	// (Seed, episodeIndex) RNG stream, so fault streams — like duration
	// noise — are bit-reproducible at any worker count. The zero value
	// trains fault-free.
	Faults sim.FaultSpec
	// Arrivals, when non-nil, trains on streaming job arrivals instead of the
	// problem's single DAG: each episode draws its own Poisson arrival stream
	// from its (Seed, episodeIndex) RNG and schedules it on a persistent
	// cluster under the problem's platform, σ and fault spec. The terminal
	// reward compares the policy's mean job response time against a
	// HEFT-per-job replay of the same arrivals (see stream.go); the problem's
	// Graph and Timing are ignored and History.BaselineMakespan stays 0
	// (baselines are per-episode). Worker-count bit-identity holds unchanged.
	Arrivals *stream.PoissonProcess
}

// DefaultConfig returns the hyper-parameters used throughout the experiment
// harness. γ, the value-loss scale and the entropy grid follow §V-D; the
// learning rate is 0.003 rather than the paper's 0.01 — with our float64
// from-scratch Adam the paper's rate oscillates, while 0.003 converges to
// HEFT-level policies reliably (see EXPERIMENTS.md).
func DefaultConfig() Config {
	return Config{
		Episodes:      8000,
		BatchEpisodes: 8,
		Gamma:         0.99,
		EntropyBeta:   1e-2,
		ValueScale:    0.5,
		LR:            0.003,
		ClipNorm:      5,
		Unroll:        0,
		Seed:          1,
	}
}

// EpisodeStats summarises one training episode. It doubles as the JSONL
// telemetry record (one line per episode), so every field carries a JSON tag.
type EpisodeStats struct {
	Episode  int     `json:"episode"`
	Makespan float64 `json:"makespan"`
	Reward   float64 `json:"reward"`
	Entropy  float64 `json:"entropy"`
	Loss     float64 `json:"loss"`
	// PolicyLoss and ValueLoss are the actor and critic components of Loss
	// (mean per decision for A2C; batch mean of the final PPO epoch).
	PolicyLoss float64 `json:"policy_loss"`
	ValueLoss  float64 `json:"value_loss"`
	// GradNorm is the pre-clip global gradient norm of the update applied at
	// the end of this episode, or 0 when the episode did not close a batch.
	GradNorm float64 `json:"grad_norm"`
}

// History is the training curve.
type History struct {
	Episodes []EpisodeStats
	// BaselineMakespan is the HEFT projection used in the reward.
	BaselineMakespan float64
}

// FinalMeanReward averages the reward over the last k episodes.
func (h History) FinalMeanReward(k int) float64 {
	n := len(h.Episodes)
	if k > n {
		k = n
	}
	if k == 0 {
		return 0
	}
	var s float64
	for _, e := range h.Episodes[n-k:] {
		s += e.Reward
	}
	return s / float64(k)
}

// Trainer trains an agent on a fixed problem distribution (one (kernel, T,
// platform, σ) combination, as in §V-E).
type Trainer struct {
	Agent   *core.Agent
	Problem core.Problem
	Cfg     Config

	// Telemetry, if non-nil, receives one EpisodeStats JSON line per episode.
	// The sink is write-only for the trainer: attaching it never touches the
	// RNG or the gradients, so training results are bit-identical with and
	// without telemetry.
	Telemetry *obs.JSONL

	opt      *nn.Adam
	baseline float64
}

// NewTrainer prepares training of the agent on the problem. A fault spec in
// the config is copied onto the trainer's problem, so rollouts (but not the
// HEFT reward baseline, which stays the fault-free projection) run under
// fault injection. With Arrivals set, the single-DAG HEFT projection is
// skipped (the problem may carry no graph at all) and baselines are computed
// per episode on each episode's own arrival stream.
func NewTrainer(agent *core.Agent, problem core.Problem, cfg Config) *Trainer {
	if cfg.Episodes <= 0 || cfg.BatchEpisodes <= 0 {
		panic(fmt.Sprintf("rl: invalid config %+v", cfg))
	}
	if cfg.Faults.Enabled() {
		problem.Faults = cfg.Faults
	}
	t := &Trainer{
		Agent:   agent,
		Problem: problem,
		Cfg:     cfg,
		opt:     nn.NewAdam(cfg.LR),
	}
	if cfg.Arrivals == nil {
		t.baseline = problem.HEFTBaseline()
	}
	return t
}

// Baseline returns the HEFT projected makespan used in the reward.
func (t *Trainer) Baseline() float64 { return t.baseline }

// Run trains for Cfg.Episodes episodes and returns the training history.
// Progress, if non-nil, is called after every episode; both a nil progress
// callback and a nil Telemetry sink are fine — emission is routed through one
// sink (emitEpisode), so the loop never branches on them.
func (t *Trainer) Run(progress func(EpisodeStats)) (History, error) {
	hist := History{BaselineMakespan: t.baseline}
	params := t.Agent.Params()
	params.ZeroGrad()
	workers := resolveWorkers(t.Cfg.RolloutWorkers)
	for start := 0; start < t.Cfg.Episodes; start += t.Cfg.BatchEpisodes {
		n := t.Cfg.Episodes - start
		if n > t.Cfg.BatchEpisodes {
			n = t.Cfg.BatchEpisodes
		}
		// Roll out the whole batch under the current parameters, then
		// accumulate gradients in fixed episode order: History does not
		// depend on the worker count.
		results := collectRollouts(t.Agent, t.Problem, t.Cfg.Arrivals, t.baseline, t.Cfg.Seed, start, n, workers)
		for k := range results {
			r := &results[k]
			if r.err != nil {
				releaseResults(results[k:])
				return hist, fmt.Errorf("rl: episode %d: %w", r.ep, r.err)
			}
			loss, policyLoss, valueLoss := t.accumulate(r.steps, r.reward)
			releaseSteps(r.steps)
			var gradNorm float64
			if k == n-1 {
				gradNorm = applyUpdate(params, t.opt, t.Cfg.ClipNorm)
			}
			st := EpisodeStats{
				Episode:    r.ep,
				Makespan:   r.makespan,
				Reward:     r.reward,
				Entropy:    r.entropy,
				Loss:       loss,
				PolicyLoss: policyLoss,
				ValueLoss:  valueLoss,
				GradNorm:   gradNorm,
			}
			hist.Episodes = append(hist.Episodes, st)
			if err := emitEpisode(t.Telemetry, progress, st); err != nil {
				releaseResults(results[k+1:])
				return hist, err
			}
		}
	}
	return hist, nil
}

// applyUpdate clips gradients (when enabled), steps the optimiser and zeroes
// the gradients, returning the pre-clip global gradient norm.
func applyUpdate(params *nn.ParamSet, opt *nn.Adam, clipNorm float64) float64 {
	var norm float64
	if clipNorm > 0 {
		norm = params.ClipGradNorm(clipNorm)
	} else {
		norm = params.GradNorm()
	}
	opt.Step(params)
	params.ZeroGrad()
	return norm
}

// emitEpisode delivers one episode's statistics to the telemetry sink and the
// optional progress callback. Both trainers route every emission through
// here, so call sites stay free of nil checks and the sink can never mutate
// training state.
func emitEpisode(sink *obs.JSONL, progress func(EpisodeStats), st EpisodeStats) error {
	if sink != nil {
		if err := sink.Write(st); err != nil {
			return fmt.Errorf("rl: writing telemetry: %w", err)
		}
	}
	if progress != nil {
		progress(st)
	}
	return nil
}

// accumulate builds the per-decision losses of one episode, runs backward on
// each decision's tape and accumulates gradients into the agent parameters.
// It returns the mean per-decision total, policy and value losses.
func (t *Trainer) accumulate(steps []core.Step, reward float64) (total, policy, value float64) {
	d := len(steps)
	if d == 0 {
		return 0, 0, 0
	}
	// Per-step rewards: zero on non-terminal transitions per §III-B, except
	// under the idle-penalty shaping ablation.
	stepRewards := make([]float64, d)
	stepRewards[d-1] = reward
	if t.Cfg.IdlePenalty > 0 {
		for i, st := range steps {
			if st.Forward.IdleIndex >= 0 && st.Action == st.Forward.IdleIndex {
				stepRewards[i] -= t.Cfg.IdlePenalty
			}
		}
	}
	// Targets: discounted returns, optionally bootstrapped from the recorded
	// value n steps ahead.
	targets := make([]float64, d)
	ret := 0.0
	for i := d - 1; i >= 0; i-- {
		ret = stepRewards[i] + t.Cfg.Gamma*ret
		targets[i] = ret
		if stepsToEnd := d - 1 - i; t.Cfg.Unroll > 0 && stepsToEnd >= t.Cfg.Unroll {
			boot := autograd.Scalar(steps[i+t.Cfg.Unroll].Forward.Value)
			targets[i] = math.Pow(t.Cfg.Gamma, float64(t.Cfg.Unroll)) * boot
			for k := 0; k < t.Cfg.Unroll; k++ {
				targets[i] += math.Pow(t.Cfg.Gamma, float64(k)) * stepRewards[i+k]
			}
		}
	}

	scale := 1.0 / float64(d)
	for i, st := range steps {
		fw := st.Forward
		tp := fw.Binding.Tape
		adv := targets[i] - autograd.Scalar(fw.Value)

		logp := tp.Pick(fw.LogProbs, st.Action, 0)
		policyLoss := tp.Scale(logp, -adv)
		valueErr := tp.AddConst(fw.Value, -targets[i])
		valueLoss := tp.Scale(tp.Square(valueErr), t.Cfg.ValueScale)
		entropy := fw.Entropy()
		loss := tp.Sub(tp.Add(policyLoss, valueLoss), tp.Scale(entropy, t.Cfg.EntropyBeta))
		// Normalise by episode length so long episodes don't dominate.
		loss = tp.Scale(loss, scale)
		tp.Backward(loss)
		policy += autograd.Scalar(policyLoss) * scale
		value += autograd.Scalar(valueLoss) * scale
		fw.Binding.Flush()
		total += autograd.Scalar(loss)
	}
	return total, policy, value
}

// Evaluate runs the agent greedily on the problem for the given number of
// runs/seeds and returns the makespans.
func Evaluate(agent *core.Agent, problem core.Problem, runs int, seed int64) ([]float64, error) {
	out := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		pol := core.NewPolicy(agent)
		res, err := problem.Simulate(pol, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, res.Makespan)
	}
	return out, nil
}
