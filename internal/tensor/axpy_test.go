package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// The AVX2 kernels must match the portable loops bit for bit — the training
// path depends on it. Exercise every vector width remainder and the special
// values that could diverge under a fused or reordered implementation.
func TestAxpyF64BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphas := []float64{0, math.Copysign(0, -1), 1, -1, 0.3330000000001, -1e-300, 1e300, math.Inf(1)}
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 64, 129} {
		for _, alpha := range alphas {
			x := make([]float64, n)
			y0 := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
				y0[i] = rng.NormFloat64()
			}
			// Mix in exact zeros and negative zeros.
			for i := 0; i < n; i += 5 {
				x[i] = 0
			}
			for i := 2; i < n; i += 7 {
				x[i] = math.Copysign(0, -1)
			}
			want := append([]float64(nil), y0...)
			axpyF64Generic(alpha, x, want)
			got := append([]float64(nil), y0...)
			axpyF64(alpha, x, got)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("n=%d alpha=%v i=%d: got %x want %x", n, alpha, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

func TestAxpyF32BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	alphas := []float32{0, float32(math.Copysign(0, -1)), 1, -1, 0.333, -1e-30, 1e30}
	for _, n := range []int{0, 1, 3, 7, 8, 15, 16, 17, 31, 32, 33, 64, 130} {
		for _, alpha := range alphas {
			x := make([]float32, n)
			y0 := make([]float32, n)
			for i := range x {
				x[i] = float32(rng.NormFloat64())
				y0[i] = float32(rng.NormFloat64())
			}
			want := append([]float32(nil), y0...)
			axpyF32Generic(alpha, x, want)
			got := append([]float32(nil), y0...)
			axpyF32(alpha, x, got)
			for i := range want {
				if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
					t.Fatalf("n=%d alpha=%v i=%d: got %x want %x", n, alpha, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
		}
	}
}

func TestAxpyQ8BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 5, 7, 8, 9, 16, 31, 33, 128} {
		for _, alpha := range []float32{0, 1, -0.007843138, 2.5} {
			q := make([]int8, n)
			y0 := make([]float32, n)
			for i := range q {
				q[i] = int8(rng.Intn(256) - 128)
				y0[i] = float32(rng.NormFloat64())
			}
			want := append([]float32(nil), y0...)
			axpyQ8Generic(alpha, q, want)
			got := append([]float32(nil), y0...)
			axpyQ8(alpha, q, got)
			for i := range want {
				if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
					t.Fatalf("n=%d alpha=%v i=%d: got %v want %v", n, alpha, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDetectAVX2Reported(t *testing.T) {
	// Informational: record which path the rest of the suite exercised.
	t.Logf("hasAVX2=%v", hasAVX2)
}
