package tensor

// Assembly kernels (axpy_amd64.s). They process any length, but the Go
// wrappers below only dispatch to them above a small cutoff: the call itself
// costs a few nanoseconds, which dominates for very short rows.

func cpuid(op, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)
func axpyAVX2F64(alpha float64, x, y []float64)
func axpyAVX2F32(alpha float32, x, y []float32)
func axpyAVX2Q8(alpha float32, q []int8, y []float32)

// hasAVX2 reports whether the CPU and OS support the AVX2 kernels: AVX and
// OSXSAVE advertised, XMM+YMM state enabled by the OS (XGETBV), and the AVX2
// feature bit set.
var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if c&osxsave == 0 || c&avx == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0
}

// axpyMinLen is the row length below which the scalar loop wins (call
// overhead exceeds the vector speedup).
const axpyMinLen = 8

func axpyF64(alpha float64, x, y []float64) {
	if hasAVX2 && len(x) >= axpyMinLen {
		axpyAVX2F64(alpha, x, y[:len(x)])
		return
	}
	axpyF64Generic(alpha, x, y)
}

func axpyF32(alpha float32, x, y []float32) {
	if hasAVX2 && len(x) >= axpyMinLen {
		axpyAVX2F32(alpha, x, y[:len(x)])
		return
	}
	axpyF32Generic(alpha, x, y)
}

func axpyQ8(alpha float32, q []int8, y []float32) {
	if hasAVX2 && len(q) >= axpyMinLen {
		axpyAVX2Q8(alpha, q, y[:len(q)])
		return
	}
	axpyQ8Generic(alpha, q, y)
}
