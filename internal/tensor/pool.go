package tensor

import (
	"math/bits"
	"sync"
)

// Buffer pooling for hot-path scratch matrices.
//
// Training and serving allocate the same handful of matrix shapes millions of
// times (one set of intermediates per scheduling decision). GetPooled hands
// out zeroed matrices whose backing slices come from size-bucketed
// sync.Pools; PutPooled returns them. Buckets are powers of two, so a
// recycled buffer serves every shape in its size class and the pool never
// fragments across the many slightly-different sub-DAG sizes.
//
// Pooling is strictly opt-in: New remains a plain allocation, and a pooled
// matrix behaves exactly like any other Matrix. Callers own the lifetime —
// returning a buffer that is still referenced elsewhere is the caller's bug,
// exactly as with any free list.

// maxPoolBucket bounds the pooled size classes: buffers beyond 2^22 floats
// (32 MiB) are handed to the garbage collector instead of being retained.
const maxPoolBucket = 22

var bufPools [maxPoolBucket + 1]sync.Pool

// bucketFor returns the smallest power-of-two size class holding n floats,
// or -1 when n is too large to pool.
func bucketFor(n int) int {
	if n <= 0 {
		return 0
	}
	b := bits.Len(uint(n - 1))
	if b > maxPoolBucket {
		return -1
	}
	return b
}

// GetPooled returns a zeroed rows x cols matrix backed by a recycled buffer
// when one is available. Return it with PutPooled once no reference escapes.
func GetPooled(rows, cols int) *Matrix {
	n := rows * cols
	b := bucketFor(n)
	if b < 0 {
		return New(rows, cols)
	}
	var data []float64
	if v := bufPools[b].Get(); v != nil {
		data = v.([]float64)[:n]
		for i := range data {
			data[i] = 0
		}
	} else {
		data = make([]float64, n, 1<<b)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// PutPooled returns m's backing buffer to its size-class pool. The matrix
// must not be used afterwards. Matrices whose capacity is not a pooled size
// class (e.g. built with New or FromSlice) are silently dropped.
func PutPooled(m *Matrix) {
	if m == nil || m.Data == nil {
		return
	}
	data := m.Data
	m.Data = nil // the matrix must not be used after Put, pooled or not
	c := cap(data)
	if c == 0 {
		return
	}
	b := bucketFor(c)
	if b < 0 || 1<<b != c {
		return // not one of ours; let the GC have it
	}
	bufPools[b].Put(data[:0])
}
