// Package tensor provides dense float64 matrices and the linear-algebra
// primitives needed by the neural-network stack: allocation, elementwise
// arithmetic, reductions, and a cache-friendly, goroutine-parallel GEMM.
//
// The package is deliberately small and allocation-explicit: every operation
// either writes into a caller-supplied destination or returns a freshly
// allocated matrix, and shapes are validated eagerly so that shape bugs
// surface at the call site rather than deep inside a training loop.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
// The zero value is an empty 0x0 matrix.
type Matrix struct {
	Rows, Cols int
	// Data holds the values in row-major order: element (i,j) is
	// Data[i*Cols+j]. len(Data) == Rows*Cols always holds for matrices
	// built through this package's constructors.
	Data []float64
}

// New returns a zero-initialised rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major) into a rows x cols matrix without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix from a slice of equal-length rows, copying data.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("tensor: FromRows ragged input: row %d has %d cols, want %d", i, len(r), c))
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// Eye returns the n x n identity matrix.
func Eye(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Full returns a rows x cols matrix with every entry set to v.
func Full(rows, cols int, v float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = v
	}
	return m
}

// RandUniform returns a rows x cols matrix with entries drawn uniformly from
// [-scale, scale] using rng.
func RandUniform(rng *rand.Rand, rows, cols int, scale float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// RandNormal returns a rows x cols matrix with N(0, std) entries.
func RandNormal(rng *rand.Rand, rows, cols int, std float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// GlorotUniform returns a matrix initialised with the Glorot/Xavier uniform
// scheme, the default initialisation used for GCN and linear layers.
func GlorotUniform(rng *rand.Rand, rows, cols int) *Matrix {
	limit := math.Sqrt(6.0 / float64(rows+cols))
	return RandUniform(rng, rows, cols, limit)
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range for %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a view (no copy) of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range for %dx%d", i, m.Rows, m.Cols))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets every entry to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool {
	return m.Rows == o.Rows && m.Cols == o.Cols
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix(%dx%d)[", m.Rows, m.Cols)
	maxRows := m.Rows
	if maxRows > 6 {
		maxRows = 6
	}
	for i := 0; i < maxRows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		maxCols := m.Cols
		if maxCols > 8 {
			maxCols = 8
		}
		for j := 0; j < maxCols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
		if maxCols < m.Cols {
			b.WriteString(" ...")
		}
	}
	if maxRows < m.Rows {
		b.WriteString("; ...")
	}
	b.WriteByte(']')
	return b.String()
}

// Equal reports exact equality of shape and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if !m.SameShape(o) {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether m and o agree within absolute tolerance tol.
func (m *Matrix) AllClose(o *Matrix, tol float64) bool {
	if !m.SameShape(o) {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}
