package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference implementation used to validate the optimised
// and parallel paths.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulMismatchPanics(t *testing.T) {
	defer mustPanic(t, "MatMul mismatch")
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := RandNormal(rng, 7, 7, 1)
	if !MatMul(m, Eye(7)).AllClose(m, 1e-12) || !MatMul(Eye(7), m).AllClose(m, 1e-12) {
		t.Fatal("identity should be neutral")
	}
}

func TestMatMulMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(m8, n8, p8 uint8) bool {
		m, n, p := int(m8%12)+1, int(n8%12)+1, int(p8%12)+1
		a := RandNormal(rng, m, n, 1)
		b := RandNormal(rng, n, p, 1)
		return MatMul(a, b).AllClose(naiveMatMul(a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulParallelPathMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Sized to exceed parallelThreshold so the goroutine pool is exercised.
	a := RandNormal(rng, 128, 80, 1)
	b := RandNormal(rng, 80, 96, 1)
	if !MatMul(a, b).AllClose(naiveMatMul(a, b), 1e-8) {
		t.Fatal("parallel MatMul diverges from naive")
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := RandNormal(rng, 9, 5, 1)
	b := RandNormal(rng, 9, 7, 1)
	if !MatMulTransA(a, b).AllClose(MatMul(a.T(), b), 1e-10) {
		t.Fatal("MatMulTransA mismatch")
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := RandNormal(rng, 6, 8, 1)
	b := RandNormal(rng, 5, 8, 1)
	if !MatMulTransB(a, b).AllClose(MatMul(a, b.T()), 1e-10) {
		t.Fatal("MatMulTransB mismatch")
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed uint8) bool {
		n := int(seed%6) + 2
		a := RandNormal(rng, n, n, 0.5)
		b := RandNormal(rng, n, n, 0.5)
		c := RandNormal(rng, n, n, 0.5)
		return MatMul(MatMul(a, b), c).AllClose(MatMul(a, MatMul(b, c)), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	if !Add(a, b).Equal(FromSlice(2, 2, []float64{6, 8, 10, 12})) {
		t.Fatal("Add wrong")
	}
	if !Sub(b, a).Equal(FromSlice(2, 2, []float64{4, 4, 4, 4})) {
		t.Fatal("Sub wrong")
	}
	if !Mul(a, b).Equal(FromSlice(2, 2, []float64{5, 12, 21, 32})) {
		t.Fatal("Mul wrong")
	}
	if !Scale(a, 2).Equal(FromSlice(2, 2, []float64{2, 4, 6, 8})) {
		t.Fatal("Scale wrong")
	}
}

func TestAddInPlaceAndScaled(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 1, 1})
	AddInPlace(a, FromSlice(1, 3, []float64{1, 2, 3}))
	if !a.Equal(FromSlice(1, 3, []float64{2, 3, 4})) {
		t.Fatal("AddInPlace wrong")
	}
	AddScaledInPlace(a, FromSlice(1, 3, []float64{1, 1, 1}), -2)
	if !a.Equal(FromSlice(1, 3, []float64{0, 1, 2})) {
		t.Fatal("AddScaledInPlace wrong")
	}
}

func TestAddRowVector(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	v := FromSlice(1, 3, []float64{10, 20, 30})
	got := AddRowVector(a, v)
	want := FromSlice(2, 3, []float64{11, 22, 33, 14, 25, 36})
	if !got.Equal(want) {
		t.Fatalf("AddRowVector = %v", got)
	}
}

func TestApplySumDotNorm(t *testing.T) {
	a := FromSlice(1, 4, []float64{-1, 2, -3, 4})
	abs := Apply(a, math.Abs)
	if Sum(abs) != 10 {
		t.Fatalf("Sum(|a|) = %v", Sum(abs))
	}
	if Dot(a, a) != 30 {
		t.Fatalf("Dot = %v", Dot(a, a))
	}
	if math.Abs(Norm(a)-math.Sqrt(30)) > 1e-12 {
		t.Fatalf("Norm = %v", Norm(a))
	}
}

func TestMeanRows(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 3, 3, 5})
	if !MeanRows(a).Equal(FromSlice(1, 2, []float64{2, 4})) {
		t.Fatal("MeanRows wrong")
	}
	empty := MeanRows(New(0, 3))
	if empty.Rows != 1 || empty.Cols != 3 || Sum(empty) != 0 {
		t.Fatal("MeanRows of empty should be zeros")
	}
}

func TestMaxRows(t *testing.T) {
	a := FromSlice(3, 2, []float64{1, 9, 7, 2, 7, 5})
	m, arg := MaxRows(a)
	if !m.Equal(FromSlice(1, 2, []float64{7, 9})) {
		t.Fatalf("MaxRows values = %v", m)
	}
	if arg[0] != 1 || arg[1] != 0 {
		t.Fatalf("MaxRows argmax = %v (ties must pick smallest row)", arg)
	}
}

func TestGatherRows(t *testing.T) {
	a := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	g := GatherRows(a, []int{2, 0, 2})
	want := FromSlice(3, 2, []float64{5, 6, 1, 2, 5, 6})
	if !g.Equal(want) {
		t.Fatalf("GatherRows = %v", g)
	}
}

func TestConcat(t *testing.T) {
	a := FromSlice(2, 1, []float64{1, 2})
	b := FromSlice(2, 2, []float64{3, 4, 5, 6})
	h := ConcatCols(a, b)
	if !h.Equal(FromSlice(2, 3, []float64{1, 3, 4, 2, 5, 6})) {
		t.Fatalf("ConcatCols = %v", h)
	}
	v := ConcatRows(FromSlice(1, 2, []float64{1, 2}), FromSlice(2, 2, []float64{3, 4, 5, 6}))
	if !v.Equal(FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})) {
		t.Fatalf("ConcatRows = %v", v)
	}
	e := ConcatRows(New(0, 0), FromSlice(1, 2, []float64{7, 8}))
	if !e.Equal(FromSlice(1, 2, []float64{7, 8})) {
		t.Fatalf("ConcatRows with empty = %v", e)
	}
}

func TestDistributivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed uint8) bool {
		n := int(seed%5) + 2
		a := RandNormal(rng, n, n, 1)
		b := RandNormal(rng, n, n, 1)
		c := RandNormal(rng, n, n, 1)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return left.AllClose(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := RandNormal(rng, 128, 128, 1)
	y := RandNormal(rng, 128, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func TestMatMulTransAParallelPathMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	// Work = a.Cols * b.Cols * a.Rows above parallelThreshold.
	a := RandNormal(rng, 80, 128, 1)
	b := RandNormal(rng, 80, 96, 1)
	if !MatMulTransA(a, b).AllClose(naiveMatMul(a.T(), b), 1e-8) {
		t.Fatal("parallel MatMulTransA diverges from naive")
	}
}

func TestMatMulTransBParallelPathMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := RandNormal(rng, 128, 80, 1)
	b := RandNormal(rng, 96, 80, 1)
	if !MatMulTransB(a, b).AllClose(naiveMatMul(a, b.T()), 1e-8) {
		t.Fatal("parallel MatMulTransB diverges from naive")
	}
}

// TestParallelOpsBitIdenticalAcrossWorkerCounts pins the determinism contract
// of the parallel kernels: each output element is produced by exactly one
// goroutine with the same ascending-k accumulation order, so changing
// GOMAXPROCS must not change a single bit.
func TestParallelOpsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := RandNormal(rng, 128, 96, 1)
	b := RandNormal(rng, 96, 112, 1)
	s := SparseFromDense(randomDAGDense(rng, 192, 0.4))
	x := RandNormal(rng, 192, 64, 1)

	c := RandNormal(rng, 112, 96, 1)
	d := RandNormal(rng, 128, 112, 1)

	prev := runtime.GOMAXPROCS(1)
	mm1 := MatMul(a, b)
	ta1 := MatMulTransA(a, d)
	tb1 := MatMulTransB(a, c)
	sp1 := SpMM(s, x)
	runtime.GOMAXPROCS(4)
	mm4 := MatMul(a, b)
	ta4 := MatMulTransA(a, d)
	tb4 := MatMulTransB(a, c)
	sp4 := SpMM(s, x)
	runtime.GOMAXPROCS(prev)

	if !mm1.Equal(mm4) || !ta1.Equal(ta4) || !tb1.Equal(tb4) || !sp1.Equal(sp4) {
		t.Fatal("parallel results depend on GOMAXPROCS")
	}
}
