package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroInitialised(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %dx%d len=%d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("entry %d not zero: %v", i, v)
		}
	}
}

func TestFromSliceAndAt(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("At returned wrong values: %v", m)
	}
	m.Set(1, 1, 42)
	if m.At(1, 1) != 42 {
		t.Fatal("Set did not stick")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer mustPanic(t, "FromSlice")
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows wrong: %v", m)
	}
	if FromRows(nil).Rows != 0 {
		t.Fatal("FromRows(nil) should be empty")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer mustPanic(t, "FromRows ragged")
	FromRows([][]float64{{1, 2}, {3}})
}

func TestEye(t *testing.T) {
	m := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("Eye(3)[%d,%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("bad transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(r8, c8 uint8) bool {
		r, c := int(r8%20)+1, int(c8%20)+1
		m := RandNormal(rng, r, c, 1)
		return m.T().T().Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone is shallow")
	}
}

func TestRowIsView(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	m.Row(1)[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row should be a view")
	}
}

func TestAllClose(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := FromSlice(1, 2, []float64{1.0005, 2})
	if !a.AllClose(b, 1e-3) {
		t.Fatal("AllClose should accept within tol")
	}
	if a.AllClose(b, 1e-6) {
		t.Fatal("AllClose should reject outside tol")
	}
	if a.AllClose(New(2, 1), 1) {
		t.Fatal("AllClose should reject shape mismatch")
	}
}

func TestGlorotUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := GlorotUniform(rng, 30, 50)
	limit := math.Sqrt(6.0 / 80.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Glorot value %v outside [-%v, %v]", v, limit, limit)
		}
	}
}

func TestStringElision(t *testing.T) {
	big := New(10, 20)
	s := big.String()
	if s == "" {
		t.Fatal("String should render")
	}
	small := FromSlice(1, 1, []float64{3})
	if small.String() != "Matrix(1x1)[3]" {
		t.Fatalf("unexpected render: %q", small.String())
	}
}

func mustPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("%s should panic", what)
	}
}
