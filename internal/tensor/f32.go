package tensor

import (
	"fmt"
	"math"
)

// Reduced-precision kernels for the serving forward path. Training and
// checkpoints stay float64; these types exist so a policy loaded for serving
// can run its GCN stack in float32 (or with int8 weights and float32
// accumulation) where the ~2x narrower lanes roughly double matmul throughput.

// Matrix32 is the float32 counterpart of Matrix: dense row-major.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 allocates a zeroed Rows x Cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Reset reshapes m to rows x cols, reusing the backing slice when it is large
// enough. Contents are unspecified after Reset; callers overwrite every row.
func (m *Matrix32) Reset(rows, cols int) {
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float32, n)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix32) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// SetFrom converts src into m, reshaping as needed.
func (m *Matrix32) SetFrom(src *Matrix) {
	m.Reset(src.Rows, src.Cols)
	for i, v := range src.Data {
		m.Data[i] = float32(v)
	}
}

// MatMul32SkipInto computes out = a*b in float32, skipping zero a-elements.
// Row-sparsity in a (zero features, post-ReLU activations) is common on the
// serving path, and the skip is what makes the reassociated GCN product pay.
func MatMul32SkipInto(a, b, out *Matrix32) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul32 shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out.Reset(a.Rows, b.Cols)
	n, p := a.Cols, b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*p : (i+1)*p]
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			axpyF32(av, b.Data[k*p:(k+1)*p], orow)
		}
	}
}

// SpMM32Into computes out = s*d where s supplies the CSR structure and val the
// float32 copies of its nonzero values (len(val) == len(s.Val)).
func SpMM32Into(s *Sparse, val []float32, d, out *Matrix32) {
	if s.Cols != d.Rows {
		panic(fmt.Sprintf("tensor: SpMM32 shape mismatch %dx%d * %dx%d", s.Rows, s.Cols, d.Rows, d.Cols))
	}
	out.Reset(s.Rows, d.Cols)
	p := d.Cols
	for i := 0; i < s.Rows; i++ {
		orow := out.Data[i*p : (i+1)*p]
		for j := range orow {
			orow[j] = 0
		}
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			axpyF32(val[k], d.Data[s.Col[k]*p:(s.Col[k]+1)*p], orow)
		}
	}
}

// QuantMat8 is a weight matrix quantized to int8 with a per-output-column
// float32 scale: W[k,j] ~= float32(Q[k,j]) * Scale[j]. Symmetric per-column
// quantization keeps the dequantization out of the inner loop — products
// accumulate in float32 over raw int8 weights and the scale is applied once
// per output element at the end.
type QuantMat8 struct {
	Rows, Cols int
	Q          []int8
	Scale      []float32
}

// QuantizeInt8 converts a float64 weight matrix to int8 with per-column
// symmetric scales (scale = max|col| / 127; an all-zero column gets scale 1).
func QuantizeInt8(w *Matrix) *QuantMat8 {
	q := &QuantMat8{Rows: w.Rows, Cols: w.Cols, Q: make([]int8, w.Rows*w.Cols), Scale: make([]float32, w.Cols)}
	for j := 0; j < w.Cols; j++ {
		absMax := 0.0
		for k := 0; k < w.Rows; k++ {
			if a := math.Abs(w.Data[k*w.Cols+j]); a > absMax {
				absMax = a
			}
		}
		scale := absMax / 127
		if scale == 0 {
			scale = 1
		}
		q.Scale[j] = float32(scale)
		for k := 0; k < w.Rows; k++ {
			v := math.RoundToEven(w.Data[k*w.Cols+j] / scale)
			if v > 127 {
				v = 127
			} else if v < -127 {
				v = -127
			}
			q.Q[k*w.Cols+j] = int8(v)
		}
	}
	return q
}

// MatMulQ8Into computes out = a*W for a quantized W: float32 activations times
// int8 weights with float32 accumulation, column scales applied at the end.
func MatMulQ8Into(a *Matrix32, w *QuantMat8, out *Matrix32) {
	if a.Cols != w.Rows {
		panic(fmt.Sprintf("tensor: MatMulQ8 shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, w.Rows, w.Cols))
	}
	out.Reset(a.Rows, w.Cols)
	n, p := a.Cols, w.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*p : (i+1)*p]
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			axpyQ8(av, w.Q[k*p:(k+1)*p], orow)
		}
		for j, s := range w.Scale {
			orow[j] *= s
		}
	}
}
