package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randMatrix(rng *rand.Rand, rows, cols int, sparsity float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		if rng.Float64() >= sparsity {
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

func TestMatMul32SkipMatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ m, n, p int }{{1, 1, 1}, {3, 5, 4}, {22, 22, 64}, {17, 64, 64}} {
		a64 := randMatrix(rng, tc.m, tc.n, 0.5)
		b64 := randMatrix(rng, tc.n, tc.p, 0)
		want := MatMul(a64, b64)

		var a32, b32, out Matrix32
		a32.SetFrom(a64)
		b32.SetFrom(b64)
		MatMul32SkipInto(&a32, &b32, &out)
		if out.Rows != tc.m || out.Cols != tc.p {
			t.Fatalf("shape %dx%d, want %dx%d", out.Rows, out.Cols, tc.m, tc.p)
		}
		for i, v := range out.Data {
			if math.Abs(float64(v)-want.Data[i]) > 1e-4*(1+math.Abs(want.Data[i])) {
				t.Fatalf("%dx%dx%d elem %d: f32 %v vs f64 %v", tc.m, tc.n, tc.p, i, v, want.Data[i])
			}
		}
	}
}

func TestSpMM32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	entries := make([][]SparseEntry, 16)
	for i := range entries {
		entries[i] = []SparseEntry{{Col: i, Val: rng.Float64()}}
		for j := 0; j < 3; j++ {
			entries[i] = append(entries[i], SparseEntry{Col: rng.Intn(16), Val: rng.Float64()})
		}
	}
	s := SparseFromRows(16, 16, entries)
	d64 := randMatrix(rng, 16, 32, 0)
	want := SpMM(s, d64)

	val32 := make([]float32, len(s.Val))
	for i, v := range s.Val {
		val32[i] = float32(v)
	}
	var d32, out Matrix32
	d32.SetFrom(d64)
	SpMM32Into(s, val32, &d32, &out)
	for i, v := range out.Data {
		if math.Abs(float64(v)-want.Data[i]) > 1e-4*(1+math.Abs(want.Data[i])) {
			t.Fatalf("elem %d: f32 %v vs f64 %v", i, v, want.Data[i])
		}
	}
}

func TestQuantizeInt8RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := randMatrix(rng, 64, 64, 0)
	q := QuantizeInt8(w)
	for j := 0; j < w.Cols; j++ {
		for k := 0; k < w.Rows; k++ {
			got := float64(q.Q[k*w.Cols+j]) * float64(q.Scale[j])
			// Symmetric quantization error is bounded by half a step per element.
			if math.Abs(got-w.Data[k*w.Cols+j]) > float64(q.Scale[j])*0.51 {
				t.Fatalf("w[%d,%d]=%v dequantized to %v (scale %v)", k, j, w.Data[k*w.Cols+j], got, q.Scale[j])
			}
		}
	}

	zero := New(4, 2)
	qz := QuantizeInt8(zero)
	for _, s := range qz.Scale {
		if s != 1 {
			t.Fatalf("all-zero column scale = %v, want 1", s)
		}
	}
}

func TestMatMulQ8MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a64 := randMatrix(rng, 22, 64, 0.5)
	w64 := randMatrix(rng, 64, 64, 0)
	want := MatMul(a64, w64)
	q := QuantizeInt8(w64)
	var a32, out Matrix32
	a32.SetFrom(a64)
	MatMulQ8Into(&a32, q, &out)

	// Quantization error is absolute (up to scale/2 per weight), not relative:
	// for ~N(0,1) entries the 64-term dot accumulates to ~0.1 of noise.
	for i, v := range out.Data {
		if math.Abs(float64(v)-want.Data[i]) > 0.25+0.02*math.Abs(want.Data[i]) {
			t.Fatalf("elem %d: q8 %v vs f64 %v", i, v, want.Data[i])
		}
	}
}
