package tensor

import (
	"fmt"
	"sort"
)

// Sparse is an immutable sparse matrix in compressed sparse row (CSR) form.
// Row i's nonzeros are Col[RowPtr[i]:RowPtr[i+1]] (column indices, strictly
// increasing within a row) with values Val[RowPtr[i]:RowPtr[i+1]].
//
// The type exists for the GCN propagation operator: a windowed sub-DAG's
// normalised adjacency has O(E) nonzeros, so multiplying it as a dense n x n
// matrix wastes O(n²−E) work per layer per decision. Sparse operands are
// constants in the autograd sense — gradients flow through the dense operand
// of SpMM only — which matches how graph topology is used throughout READYS.
type Sparse struct {
	Rows, Cols int
	RowPtr     []int
	Col        []int
	Val        []float64
}

// NewSparse builds a CSR matrix from raw components, validating the
// structure eagerly (monotone row pointers, sorted in-range columns).
func NewSparse(rows, cols int, rowPtr, col []int, val []float64) *Sparse {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative sparse dimensions %dx%d", rows, cols))
	}
	if len(rowPtr) != rows+1 {
		panic(fmt.Sprintf("tensor: sparse RowPtr length %d, want %d", len(rowPtr), rows+1))
	}
	if len(col) != len(val) {
		panic(fmt.Sprintf("tensor: sparse Col/Val length mismatch %d vs %d", len(col), len(val)))
	}
	if rowPtr[0] != 0 || rowPtr[rows] != len(col) {
		panic(fmt.Sprintf("tensor: sparse RowPtr bounds [%d,%d], want [0,%d]", rowPtr[0], rowPtr[rows], len(col)))
	}
	for i := 0; i < rows; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		if lo > hi {
			panic(fmt.Sprintf("tensor: sparse RowPtr not monotone at row %d", i))
		}
		for k := lo; k < hi; k++ {
			if col[k] < 0 || col[k] >= cols {
				panic(fmt.Sprintf("tensor: sparse column %d out of range at row %d", col[k], i))
			}
			if k > lo && col[k] <= col[k-1] {
				panic(fmt.Sprintf("tensor: sparse columns not strictly increasing in row %d", i))
			}
		}
	}
	return &Sparse{Rows: rows, Cols: cols, RowPtr: rowPtr, Col: col, Val: val}
}

// SparseFromDense converts a dense matrix to CSR, keeping exact nonzeros.
func SparseFromDense(m *Matrix) *Sparse {
	rowPtr := make([]int, m.Rows+1)
	var col []int
	var val []float64
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			if v != 0 {
				col = append(col, j)
				val = append(val, v)
			}
		}
		rowPtr[i+1] = len(col)
	}
	return &Sparse{Rows: m.Rows, Cols: m.Cols, RowPtr: rowPtr, Col: col, Val: val}
}

// SparseFromRows builds a CSR matrix from per-row (column, value) entries.
// Entries within a row are sorted by column; duplicate columns accumulate.
func SparseFromRows(rows, cols int, entries [][]SparseEntry) *Sparse {
	if len(entries) != rows {
		panic(fmt.Sprintf("tensor: SparseFromRows got %d rows, want %d", len(entries), rows))
	}
	rowPtr := make([]int, rows+1)
	var col []int
	var val []float64
	for i, es := range entries {
		sorted := append([]SparseEntry(nil), es...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a].Col < sorted[b].Col })
		for _, e := range sorted {
			if e.Col < 0 || e.Col >= cols {
				panic(fmt.Sprintf("tensor: SparseFromRows column %d out of range in row %d", e.Col, i))
			}
			if n := len(col); n > rowPtr[i] && col[n-1] == e.Col {
				val[n-1] += e.Val
				continue
			}
			col = append(col, e.Col)
			val = append(val, e.Val)
		}
		rowPtr[i+1] = len(col)
	}
	return &Sparse{Rows: rows, Cols: cols, RowPtr: rowPtr, Col: col, Val: val}
}

// SparseEntry is one (column, value) pair of a row under construction.
type SparseEntry struct {
	Col int
	Val float64
}

// NNZ returns the number of stored nonzeros.
func (s *Sparse) NNZ() int { return len(s.Val) }

// At returns element (i, j) by binary search over row i.
func (s *Sparse) At(i, j int) float64 {
	if i < 0 || i >= s.Rows || j < 0 || j >= s.Cols {
		panic(fmt.Sprintf("tensor: sparse index (%d,%d) out of range for %dx%d", i, j, s.Rows, s.Cols))
	}
	lo, hi := s.RowPtr[i], s.RowPtr[i+1]
	k := lo + sort.SearchInts(s.Col[lo:hi], j)
	if k < hi && s.Col[k] == j {
		return s.Val[k]
	}
	return 0
}

// Dense materialises the matrix densely (tests, ablation baselines).
func (s *Sparse) Dense() *Matrix {
	m := New(s.Rows, s.Cols)
	for i := 0; i < s.Rows; i++ {
		row := m.Data[i*s.Cols : (i+1)*s.Cols]
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			row[s.Col[k]] = s.Val[k]
		}
	}
	return m
}

// Equal reports exact equality of shape and stored structure/values.
func (s *Sparse) Equal(o *Sparse) bool {
	if s.Rows != o.Rows || s.Cols != o.Cols || len(s.Val) != len(o.Val) {
		return false
	}
	for i := range s.RowPtr {
		if s.RowPtr[i] != o.RowPtr[i] {
			return false
		}
	}
	for k := range s.Val {
		if s.Col[k] != o.Col[k] || s.Val[k] != o.Val[k] {
			return false
		}
	}
	return true
}

// SpMM returns s*d (sparse × dense). Cost is O(nnz · d.Cols) instead of the
// dense O(s.Rows · s.Cols · d.Cols). Large products are split across row
// blocks like MatMul; per-output-element accumulation order is independent of
// the split, so results are bit-identical at any parallelism level.
func SpMM(s *Sparse, d *Matrix) *Matrix {
	out := New(s.Rows, d.Cols)
	SpMMInto(s, d, out)
	return out
}

// SpMMInto computes out = s*d into a caller-supplied matrix.
func SpMMInto(s *Sparse, d, out *Matrix) {
	if s.Cols != d.Rows {
		panic(fmt.Sprintf("tensor: SpMM shape mismatch %dx%d * %dx%d", s.Rows, s.Cols, d.Rows, d.Cols))
	}
	if out.Rows != s.Rows || out.Cols != d.Cols {
		panic(fmt.Sprintf("tensor: SpMM destination %dx%d, want %dx%d", out.Rows, out.Cols, s.Rows, d.Cols))
	}
	work := s.NNZ() * d.Cols
	if work < parallelThreshold || s.Rows < 2 {
		spMMRange(s, d, out, 0, s.Rows)
		return
	}
	parallelRows(s.Rows, func(lo, hi int) { spMMRange(s, d, out, lo, hi) })
}

// spMMRange computes rows [lo, hi) of out = s*d.
func spMMRange(s *Sparse, d, out *Matrix, lo, hi int) {
	p := d.Cols
	for i := lo; i < hi; i++ {
		orow := out.Data[i*p : (i+1)*p]
		for j := range orow {
			orow[j] = 0
		}
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			axpyF64(s.Val[k], d.Data[s.Col[k]*p:(s.Col[k]+1)*p], orow)
		}
	}
}

// SpMMTransA returns sᵀ*g without materialising the transpose — the gradient
// of SpMM's dense operand (d(s·H)/dH applied to an upstream gradient g).
func SpMMTransA(s *Sparse, g *Matrix) *Matrix {
	out := New(s.Cols, g.Cols)
	SpMMTransAInto(s, g, out)
	return out
}

// SpMMTransAInto computes out = sᵀ*g into a caller-supplied matrix. The
// scatter over output rows runs serially: backward passes are already
// per-decision concurrent at the rollout level, and a fixed accumulation
// order keeps gradients deterministic.
func SpMMTransAInto(s *Sparse, g, out *Matrix) {
	if s.Rows != g.Rows {
		panic(fmt.Sprintf("tensor: SpMMTransA shape mismatch %dx%d ᵀ* %dx%d", s.Rows, s.Cols, g.Rows, g.Cols))
	}
	if out.Rows != s.Cols || out.Cols != g.Cols {
		panic(fmt.Sprintf("tensor: SpMMTransA destination %dx%d, want %dx%d", out.Rows, out.Cols, s.Cols, g.Cols))
	}
	out.Zero()
	p := g.Cols
	for i := 0; i < s.Rows; i++ {
		grow := g.Data[i*p : (i+1)*p]
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			axpyF64(s.Val[k], grow, out.Data[s.Col[k]*p:(s.Col[k]+1)*p])
		}
	}
}
