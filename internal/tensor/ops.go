package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which MatMul stays
// single-threaded; spawning goroutines for tiny products costs more than the
// product itself.
const parallelThreshold = 64 * 64 * 64

// MatMul returns a*b. It panics if the inner dimensions disagree.
// Large products are split across row blocks and computed by a pool of
// goroutines sized to GOMAXPROCS.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold || a.Rows < 2 {
		matMulRange(a, b, out, 0, a.Rows)
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	chunk := (a.Rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(a, b, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// matMulRange computes rows [lo, hi) of out = a*b using an ikj loop order so
// that the inner loop streams through contiguous rows of b and out.
func matMulRange(a, b, out *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*p : (i+1)*p]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransA returns aᵀ*b without materialising the transpose.
func MatMulTransA(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch %dx%d ᵀ* %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	p := b.Cols
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*p : (k+1)*p]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*p : (i+1)*p]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB returns a*bᵀ without materialising the transpose.
func MatMulTransB(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %dx%d *ᵀ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	n := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*n : (j+1)*n]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	mustSameShape("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns a-b elementwise.
func Sub(a, b *Matrix) *Matrix {
	mustSameShape("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product a⊙b.
func Mul(a, b *Matrix) *Matrix {
	mustSameShape("Mul", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
	return out
}

// Scale returns s*a.
func Scale(a *Matrix, s float64) *Matrix {
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * s
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Matrix) {
	mustSameShape("AddInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// AddScaledInPlace accumulates s*b into a.
func AddScaledInPlace(a *Matrix, b *Matrix, s float64) {
	mustSameShape("AddScaledInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += s * v
	}
}

// AddRowVector returns a matrix whose every row is the corresponding row of a
// plus the 1 x Cols row vector v (bias broadcast).
func AddRowVector(a, v *Matrix) *Matrix {
	if v.Rows != 1 || v.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector wants 1x%d, got %dx%d", a.Cols, v.Rows, v.Cols))
	}
	out := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*a.Cols : (i+1)*a.Cols]
		for j, x := range arow {
			orow[j] = x + v.Data[j]
		}
	}
	return out
}

// Apply returns f applied elementwise to a.
func Apply(a *Matrix, f func(float64) float64) *Matrix {
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Sum returns the sum of all entries.
func Sum(a *Matrix) float64 {
	var s float64
	for _, v := range a.Data {
		s += v
	}
	return s
}

// Dot returns the Frobenius inner product <a, b>.
func Dot(a, b *Matrix) float64 {
	mustSameShape("Dot", a, b)
	var s float64
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// Norm returns the Frobenius norm of a.
func Norm(a *Matrix) float64 {
	return math.Sqrt(Dot(a, a))
}

// MeanRows returns the 1 x Cols row vector of column means.
func MeanRows(a *Matrix) *Matrix {
	out := New(1, a.Cols)
	if a.Rows == 0 {
		return out
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	inv := 1.0 / float64(a.Rows)
	for j := range out.Data {
		out.Data[j] *= inv
	}
	return out
}

// MaxRows returns the 1 x Cols row vector of column maxima and, for each
// column, the row index attaining it (ties resolved to the smallest index).
func MaxRows(a *Matrix) (*Matrix, []int) {
	out := New(1, a.Cols)
	arg := make([]int, a.Cols)
	if a.Rows == 0 {
		return out, arg
	}
	copy(out.Data, a.Data[:a.Cols])
	for i := 1; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			if v > out.Data[j] {
				out.Data[j] = v
				arg[j] = i
			}
		}
	}
	return out, arg
}

// GatherRows returns the matrix whose i-th row is a's row idx[i].
func GatherRows(a *Matrix, idx []int) *Matrix {
	out := New(len(idx), a.Cols)
	for i, r := range idx {
		copy(out.Row(i), a.Row(r))
	}
	return out
}

// ConcatCols returns [a | b], the horizontal concatenation of a and b.
func ConcatCols(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", a.Rows, b.Rows))
	}
	out := New(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Data[i*out.Cols:], a.Row(i))
		copy(out.Data[i*out.Cols+a.Cols:], b.Row(i))
	}
	return out
}

// ConcatRows returns the vertical concatenation of a above b.
func ConcatRows(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols && a.Rows != 0 && b.Rows != 0 {
		panic(fmt.Sprintf("tensor: ConcatRows col mismatch %d vs %d", a.Cols, b.Cols))
	}
	cols := a.Cols
	if a.Rows == 0 {
		cols = b.Cols
	}
	out := New(a.Rows+b.Rows, cols)
	copy(out.Data, a.Data)
	copy(out.Data[a.Rows*cols:], b.Data)
	return out
}

func mustSameShape(op string, a, b *Matrix) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
