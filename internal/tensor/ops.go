package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which the matrix
// products stay single-threaded; spawning goroutines for tiny products costs
// more than the product itself.
const parallelThreshold = 64 * 64 * 64

// parallelRows splits [0, rows) into one contiguous block per worker and runs
// fn on each block concurrently. Each output row is written by exactly one
// goroutine with the same inner-loop order as the serial path, so results are
// bit-identical regardless of the split.
func parallelRows(rows int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		// One worker gains nothing from a goroutine hop; run inline. The
		// split never changes results, only who computes which rows (see
		// TestParallelOpsBitIdenticalAcrossWorkerCounts).
		fn(0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul returns a*b. It panics if the inner dimensions disagree.
// Large products are split across row blocks and computed by a pool of
// goroutines sized to GOMAXPROCS.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(a, b, out)
	return out
}

// MatMulInto computes out = a*b into a caller-supplied (zeroed or dirty)
// destination.
func MatMulInto(a, b, out *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape("MatMul destination", out, a.Rows, b.Cols)
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold || a.Rows < 2 {
		matMulRange(a, b, out, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) { matMulRange(a, b, out, lo, hi) })
}

// matMulRange computes rows [lo, hi) of out = a*b using an ikj loop order so
// that the inner loop streams through contiguous rows of b and out. Terms with
// av == 0 are skipped: since every accumulator starts at +0, a partial sum can
// never be -0 under round-to-nearest, so adding av*brow[j] (which is ±0 when
// av is ±0 and bv finite) is the identity and skipping it is bit-exact.
// Non-finite b values never occur here (features, weights, and activations are
// all finite), and the axpy kernel matches the scalar loop bit for bit.
func matMulRange(a, b, out *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*p : (i+1)*p]
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			axpyF64(av, b.Data[k*p:(k+1)*p], orow)
		}
	}
}

// MatMulTransA returns aᵀ*b without materialising the transpose.
func MatMulTransA(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	MatMulTransAInto(a, b, out)
	return out
}

// MatMulTransAInto computes out = aᵀ*b into a caller-supplied destination.
// Large products are split across blocks of output rows (columns of a) like
// MatMul; per-element accumulation runs over k in ascending order on every
// path, so the result is bit-identical at any parallelism level.
func MatMulTransAInto(a, b, out *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch %dx%d ᵀ* %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape("MatMulTransA destination", out, a.Cols, b.Cols)
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold || a.Cols < 2 {
		matMulTransARange(a, b, out, 0, a.Cols)
		return
	}
	parallelRows(a.Cols, func(lo, hi int) { matMulTransARange(a, b, out, lo, hi) })
}

// matMulTransARange computes output rows [lo, hi) of out = aᵀ*b: output row i
// is Σ_k a[k,i]·b[k,:].
func matMulTransARange(a, b, out *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		orow := out.Data[i*p : (i+1)*p]
		for j := range orow {
			orow[j] = 0
		}
		for k := 0; k < a.Rows; k++ {
			av := a.Data[k*n+i]
			if av == 0 {
				continue // bit-exact: see matMulRange
			}
			axpyF64(av, b.Data[k*p:(k+1)*p], orow)
		}
	}
}

// MatMulTransB returns a*bᵀ without materialising the transpose.
func MatMulTransB(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTransBInto(a, b, out)
	return out
}

// MatMulTransBInto computes out = a*bᵀ into a caller-supplied destination,
// split across row blocks of a for large products.
func MatMulTransBInto(a, b, out *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %dx%d *ᵀ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape("MatMulTransB destination", out, a.Rows, b.Rows)
	work := a.Rows * a.Cols * b.Rows
	if work < parallelThreshold || a.Rows < 2 {
		matMulTransBRange(a, b, out, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) { matMulTransBRange(a, b, out, lo, hi) })
}

// matMulTransBRange computes rows [lo, hi) of out = a*bᵀ.
func matMulTransBRange(a, b, out *Matrix, lo, hi int) {
	n := a.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*n : (j+1)*n]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	AddInto(a, b, out)
	return out
}

// AddInto computes out = a+b.
func AddInto(a, b, out *Matrix) {
	mustSameShape("Add", a, b)
	mustShape("Add destination", out, a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
}

// Sub returns a-b elementwise.
func Sub(a, b *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	SubInto(a, b, out)
	return out
}

// SubInto computes out = a-b.
func SubInto(a, b, out *Matrix) {
	mustSameShape("Sub", a, b)
	mustShape("Sub destination", out, a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
}

// Mul returns the elementwise (Hadamard) product a⊙b.
func Mul(a, b *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	MulInto(a, b, out)
	return out
}

// MulInto computes out = a⊙b.
func MulInto(a, b, out *Matrix) {
	mustSameShape("Mul", a, b)
	mustShape("Mul destination", out, a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
}

// Scale returns s*a.
func Scale(a *Matrix, s float64) *Matrix {
	out := New(a.Rows, a.Cols)
	ScaleInto(a, s, out)
	return out
}

// ScaleInto computes out = s*a.
func ScaleInto(a *Matrix, s float64, out *Matrix) {
	mustShape("Scale destination", out, a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * s
	}
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Matrix) {
	mustSameShape("AddInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// AddScaledInPlace accumulates s*b into a.
func AddScaledInPlace(a *Matrix, b *Matrix, s float64) {
	mustSameShape("AddScaledInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += s * v
	}
}

// AddRowVector returns a matrix whose every row is the corresponding row of a
// plus the 1 x Cols row vector v (bias broadcast).
func AddRowVector(a, v *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	AddRowVectorInto(a, v, out)
	return out
}

// AddRowVectorInto computes the bias broadcast into out.
func AddRowVectorInto(a, v, out *Matrix) {
	if v.Rows != 1 || v.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector wants 1x%d, got %dx%d", a.Cols, v.Rows, v.Cols))
	}
	mustShape("AddRowVector destination", out, a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*a.Cols : (i+1)*a.Cols]
		for j, x := range arow {
			orow[j] = x + v.Data[j]
		}
	}
}

// Apply returns f applied elementwise to a.
func Apply(a *Matrix, f func(float64) float64) *Matrix {
	out := New(a.Rows, a.Cols)
	ApplyInto(a, f, out)
	return out
}

// ApplyInto computes out = f(a) elementwise.
func ApplyInto(a *Matrix, f func(float64) float64, out *Matrix) {
	mustShape("Apply destination", out, a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = f(v)
	}
}

// Sum returns the sum of all entries.
func Sum(a *Matrix) float64 {
	var s float64
	for _, v := range a.Data {
		s += v
	}
	return s
}

// Dot returns the Frobenius inner product <a, b>.
func Dot(a, b *Matrix) float64 {
	mustSameShape("Dot", a, b)
	var s float64
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// Norm returns the Frobenius norm of a.
func Norm(a *Matrix) float64 {
	return math.Sqrt(Dot(a, a))
}

// MeanRows returns the 1 x Cols row vector of column means.
func MeanRows(a *Matrix) *Matrix {
	out := New(1, a.Cols)
	MeanRowsInto(a, out)
	return out
}

// MeanRowsInto computes the column means into a 1 x Cols destination.
func MeanRowsInto(a, out *Matrix) {
	mustShape("MeanRows destination", out, 1, a.Cols)
	out.Zero()
	if a.Rows == 0 {
		return
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	inv := 1.0 / float64(a.Rows)
	for j := range out.Data {
		out.Data[j] *= inv
	}
}

// MaxRows returns the 1 x Cols row vector of column maxima and, for each
// column, the row index attaining it (ties resolved to the smallest index).
func MaxRows(a *Matrix) (*Matrix, []int) {
	out := New(1, a.Cols)
	arg := make([]int, a.Cols)
	MaxRowsInto(a, out, arg)
	return out, arg
}

// MaxRowsInto computes column maxima and argmax rows into caller buffers.
func MaxRowsInto(a, out *Matrix, arg []int) {
	mustShape("MaxRows destination", out, 1, a.Cols)
	if len(arg) != a.Cols {
		panic(fmt.Sprintf("tensor: MaxRows arg length %d, want %d", len(arg), a.Cols))
	}
	for j := range arg {
		arg[j] = 0
	}
	if a.Rows == 0 {
		out.Zero()
		return
	}
	copy(out.Data, a.Data[:a.Cols])
	for i := 1; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			if v > out.Data[j] {
				out.Data[j] = v
				arg[j] = i
			}
		}
	}
}

// GatherRows returns the matrix whose i-th row is a's row idx[i].
func GatherRows(a *Matrix, idx []int) *Matrix {
	out := New(len(idx), a.Cols)
	GatherRowsInto(a, idx, out)
	return out
}

// GatherRowsInto gathers a's rows idx into out.
func GatherRowsInto(a *Matrix, idx []int, out *Matrix) {
	mustShape("GatherRows destination", out, len(idx), a.Cols)
	for i, r := range idx {
		copy(out.Row(i), a.Row(r))
	}
}

// ConcatCols returns [a | b], the horizontal concatenation of a and b.
func ConcatCols(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", a.Rows, b.Rows))
	}
	out := New(a.Rows, a.Cols+b.Cols)
	ConcatColsInto(a, b, out)
	return out
}

// ConcatColsInto writes [a | b] into out.
func ConcatColsInto(a, b, out *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", a.Rows, b.Rows))
	}
	mustShape("ConcatCols destination", out, a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Data[i*out.Cols:], a.Row(i))
		copy(out.Data[i*out.Cols+a.Cols:], b.Row(i))
	}
}

// ConcatRows returns the vertical concatenation of a above b.
func ConcatRows(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols && a.Rows != 0 && b.Rows != 0 {
		panic(fmt.Sprintf("tensor: ConcatRows col mismatch %d vs %d", a.Cols, b.Cols))
	}
	cols := a.Cols
	if a.Rows == 0 {
		cols = b.Cols
	}
	out := New(a.Rows+b.Rows, cols)
	copy(out.Data, a.Data)
	copy(out.Data[a.Rows*cols:], b.Data)
	return out
}

func mustSameShape(op string, a, b *Matrix) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

func mustShape(what string, m *Matrix, rows, cols int) {
	if m.Rows != rows || m.Cols != cols {
		panic(fmt.Sprintf("tensor: %s is %dx%d, want %dx%d", what, m.Rows, m.Cols, rows, cols))
	}
}
