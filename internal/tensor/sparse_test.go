package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDAGDense builds a dense normalised-adjacency-like matrix of a random
// DAG on n nodes: upper-triangular edges with self-loops and random positive
// weights, the shape SpMM sees on the GCN hot path.
func randomDAGDense(rng *rand.Rand, n int, p float64) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, rng.Float64()+0.1)
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				w := rng.Float64() + 0.1
				m.Set(i, j, w)
				m.Set(j, i, w)
			}
		}
	}
	return m
}

func TestSparseFromDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := randomDAGDense(rng, 9, 0.3)
	s := SparseFromDense(d)
	if !s.Dense().Equal(d) {
		t.Fatal("CSR round trip lost entries")
	}
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if s.At(i, j) != d.At(i, j) {
				t.Fatalf("At(%d,%d) = %v, dense %v", i, j, s.At(i, j), d.At(i, j))
			}
		}
	}
}

func TestSparseFromRowsSortsAndAccumulates(t *testing.T) {
	s := SparseFromRows(2, 3, [][]SparseEntry{
		{{Col: 2, Val: 1}, {Col: 0, Val: 2}, {Col: 2, Val: 3}},
		{},
	})
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 (duplicates must merge)", s.NNZ())
	}
	if s.At(0, 0) != 2 || s.At(0, 2) != 4 || s.At(1, 1) != 0 {
		t.Fatalf("unexpected values: %v %v", s.At(0, 0), s.At(0, 2))
	}
}

func TestNewSparseValidates(t *testing.T) {
	for name, f := range map[string]func(){
		"rowptr-length":   func() { NewSparse(2, 2, []int{0, 1}, []int{0}, []float64{1}) },
		"unsorted-cols":   func() { NewSparse(1, 3, []int{0, 2}, []int{2, 0}, []float64{1, 1}) },
		"col-range":       func() { NewSparse(1, 2, []int{0, 1}, []int{5}, []float64{1}) },
		"colval-mismatch": func() { NewSparse(1, 2, []int{0, 1}, []int{0}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestSpMMMatchesDenseProperty is the ISSUE's sparse-correctness property:
// SpMM(CSR(A), H) == MatMul(Dense(A), H) over random DAG adjacencies.
// Equality is exact — both paths accumulate per output element in ascending-k
// order, and skipping zero terms cannot change an IEEE sum.
func TestSpMMMatchesDenseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(n8, h8 uint8) bool {
		n := int(n8%24) + 1
		h := int(h8%9) + 1
		d := randomDAGDense(rng, n, 0.25)
		x := RandNormal(rng, n, h, 1)
		return SpMM(SparseFromDense(d), x).Equal(MatMul(d, x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSpMMLargeCrossesParallelThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 192
	d := randomDAGDense(rng, n, 0.4)
	x := RandNormal(rng, n, 64, 1)
	s := SparseFromDense(d)
	if s.NNZ()*x.Cols < parallelThreshold {
		t.Fatalf("test must exercise the parallel path: work %d < threshold %d", s.NNZ()*x.Cols, parallelThreshold)
	}
	if !SpMM(s, x).Equal(MatMul(d, x)) {
		t.Fatal("parallel SpMM diverges from dense MatMul")
	}
}

func TestSpMMTransAMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(20) + 1
		h := rng.Intn(8) + 1
		d := randomDAGDense(rng, n, 0.3)
		g := RandNormal(rng, n, h, 1)
		if !SpMMTransA(SparseFromDense(d), g).Equal(MatMulTransA(d, g)) {
			t.Fatal("SpMMTransA diverges from dense MatMulTransA")
		}
	}
}

func TestSpMMIntoOverwritesDirtyDestination(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randomDAGDense(rng, 6, 0.3)
	x := RandNormal(rng, 6, 4, 1)
	s := SparseFromDense(d)
	out := Full(6, 4, 123.0)
	SpMMInto(s, x, out)
	if !out.Equal(MatMul(d, x)) {
		t.Fatal("SpMMInto must fully overwrite its destination")
	}
	out2 := Full(6, 4, -7.0)
	SpMMTransAInto(s, x, out2)
	if !out2.Equal(MatMulTransA(d, x)) {
		t.Fatal("SpMMTransAInto must fully overwrite its destination")
	}
}

func TestSpMMShapeMismatchPanics(t *testing.T) {
	s := SparseFromDense(Eye(3))
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch should panic")
		}
	}()
	SpMM(s, New(4, 2))
}
