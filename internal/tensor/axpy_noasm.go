//go:build !amd64

package tensor

// Non-amd64 platforms use the portable loops; the compiler's auto-generated
// code is the same on every path, so bit-identity across builds is trivial.

const hasAVX2 = false

func axpyF64(alpha float64, x, y []float64)       { axpyF64Generic(alpha, x, y) }
func axpyF32(alpha float32, x, y []float32)       { axpyF32Generic(alpha, x, y) }
func axpyQ8(alpha float32, q []int8, y []float32) { axpyQ8Generic(alpha, q, y) }
