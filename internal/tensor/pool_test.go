package tensor

import (
	"math/rand"
	"testing"
)

func TestBucketForClasses(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := bucketFor(n); got != want {
			t.Fatalf("bucketFor(%d) = %d, want %d", n, got, want)
		}
	}
	if bucketFor(1<<maxPoolBucket+1) != -1 {
		t.Fatal("oversized buffers must not pool")
	}
}

func TestGetPooledIsZeroedAfterDirtyPut(t *testing.T) {
	m := GetPooled(4, 5)
	for i := range m.Data {
		m.Data[i] = 42
	}
	PutPooled(m)
	if m.Data != nil {
		t.Fatal("PutPooled must clear the matrix's slice")
	}
	// Whether or not the next Get recycles the same buffer, it must be zero.
	n := GetPooled(3, 7)
	for i, v := range n.Data {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
	PutPooled(n)
}

func TestPutPooledDropsForeignBuffers(t *testing.T) {
	// Buffers whose capacity is not a pool size class (plain New/FromSlice
	// allocations) must be silently dropped, not corrupt a pool class.
	m := &Matrix{Rows: 1, Cols: 3, Data: make([]float64, 3, 3)}
	PutPooled(m)
	if m.Data != nil {
		t.Fatal("foreign buffer should still be detached")
	}
	PutPooled(nil) // must not panic
}

func TestPooledMatrixBehavesLikeNew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(rng, 8, 8, 1)
	b := RandNormal(rng, 8, 8, 1)
	want := MatMul(a, b)
	out := GetPooled(8, 8)
	MatMulInto(a, b, out)
	if !out.Equal(want) {
		t.Fatal("MatMulInto into a pooled matrix diverges")
	}
	PutPooled(out)
}
