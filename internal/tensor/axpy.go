package tensor

// The axpy kernels are the shared inner loop of every matrix product in this
// package: out_row += alpha * b_row. On amd64 with AVX2 they run vectorised
// (see axpy_amd64.s); everywhere else the pure-Go loops below are used.
//
// The vector versions deliberately use separate multiply and add instructions
// (VMULPD + VADDPD), never fused multiply-add: each lane then performs exactly
// the two IEEE-754 operations of the scalar loop, in the same per-element
// order, so the results are bit-identical to the fallback on every input.
// That bit-identity is what lets the training and evaluation hot paths adopt
// the vector kernels without perturbing any committed experiment result.

// axpyF64Generic computes y[i] += alpha * x[i] for i in [0, len(x)).
func axpyF64Generic(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// axpyF32Generic is the float32 variant of axpyF64Generic.
func axpyF32Generic(alpha float32, x, y []float32) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// axpyQ8Generic computes y[i] += alpha * float32(q[i]) — the int8-weight,
// float32-accumulate inner loop of the quantized serving path.
func axpyQ8Generic(alpha float32, q []int8, y []float32) {
	for i, v := range q {
		y[i] += alpha * float32(v)
	}
}
