#include "textflag.h"

// func cpuid(op, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpyAVX2F64(alpha float64, x, y []float64)
//
// y[i] += alpha * x[i]. Separate VMULPD/VADDPD (no FMA): each lane performs
// exactly the two IEEE operations of the scalar loop, so the result is
// bit-identical to the pure-Go fallback. The caller guarantees
// len(y) == len(x); the element count is taken from y.
TEXT ·axpyAVX2F64(SB), NOSPLIT, $0-56
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ y_len+40(FP), CX
	VBROADCASTSD alpha+0(FP), Y0
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX
	JZ   f64tail

f64loop8:
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VADDPD  (DI)(AX*8), Y1, Y1
	VADDPD  32(DI)(AX*8), Y2, Y2
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	ADDQ $8, AX
	CMPQ AX, DX
	JLT  f64loop8

f64tail:
	CMPQ AX, CX
	JGE  f64done

f64tailloop:
	MOVSD (SI)(AX*8), X1
	MULSD X0, X1
	ADDSD (DI)(AX*8), X1
	MOVSD X1, (DI)(AX*8)
	INCQ AX
	CMPQ AX, CX
	JLT  f64tailloop

f64done:
	VZEROUPPER
	RET

// func axpyAVX2F32(alpha float32, x, y []float32)
//
// float32 variant of axpyAVX2F64 (16 elements per iteration).
TEXT ·axpyAVX2F32(SB), NOSPLIT, $0-56
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ y_len+40(FP), CX
	VBROADCASTSS alpha+0(FP), Y0
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-16, DX
	JZ   f32tail

f32loop16:
	VMOVUPS (SI)(AX*4), Y1
	VMOVUPS 32(SI)(AX*4), Y2
	VMULPS  Y0, Y1, Y1
	VMULPS  Y0, Y2, Y2
	VADDPS  (DI)(AX*4), Y1, Y1
	VADDPS  32(DI)(AX*4), Y2, Y2
	VMOVUPS Y1, (DI)(AX*4)
	VMOVUPS Y2, 32(DI)(AX*4)
	ADDQ $16, AX
	CMPQ AX, DX
	JLT  f32loop16

f32tail:
	CMPQ AX, CX
	JGE  f32done

f32tailloop:
	MOVSS (SI)(AX*4), X1
	MULSS X0, X1
	ADDSS (DI)(AX*4), X1
	MOVSS X1, (DI)(AX*4)
	INCQ AX
	CMPQ AX, CX
	JLT  f32tailloop

f32done:
	VZEROUPPER
	RET

// func axpyAVX2Q8(alpha float32, q []int8, y []float32)
//
// y[i] += alpha * float32(q[i]): sign-extend 8 int8 weights to int32
// (VPMOVSXBD), convert to float32 (VCVTDQ2PS), then multiply-add like the
// float32 kernel. int8 -> float32 conversion is exact, so this too matches
// the pure-Go loop bit for bit.
TEXT ·axpyAVX2Q8(SB), NOSPLIT, $0-56
	MOVQ q_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ y_len+40(FP), CX
	VBROADCASTSS alpha+0(FP), Y0
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX
	JZ   q8tail

q8loop8:
	VPMOVSXBD (SI)(AX*1), Y1
	VCVTDQ2PS Y1, Y1
	VMULPS  Y0, Y1, Y1
	VADDPS  (DI)(AX*4), Y1, Y1
	VMOVUPS Y1, (DI)(AX*4)
	ADDQ $8, AX
	CMPQ AX, DX
	JLT  q8loop8

q8tail:
	CMPQ AX, CX
	JGE  q8done

q8tailloop:
	MOVBQSX (SI)(AX*1), R8
	CVTSQ2SS R8, X1
	MULSS X0, X1
	ADDSS (DI)(AX*4), X1
	MOVSS X1, (DI)(AX*4)
	INCQ AX
	CMPQ AX, CX
	JLT  q8tailloop

q8done:
	VZEROUPPER
	RET
