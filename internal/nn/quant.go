package nn

import "readys/internal/tensor"

// ServingLayer holds reduced-precision copies of one Linear or GCN layer's
// weights for the inference-only forward path: a float32 copy (always) and an
// int8 per-column-quantized copy. The float64 Params stay the source of truth
// — conversion happens once when a serving engine is built, and training
// never reads these copies.
type ServingLayer struct {
	W32 tensor.Matrix32
	B32 tensor.Matrix32
	W8  *tensor.QuantMat8
}

// NewServingLayer converts a layer's float64 weights and bias.
func NewServingLayer(w, b *Param) *ServingLayer {
	l := &ServingLayer{W8: tensor.QuantizeInt8(w.Value)}
	l.W32.SetFrom(w.Value)
	l.B32.SetFrom(b.Value)
	return l
}
