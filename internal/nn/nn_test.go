package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"readys/internal/autograd"
	"readys/internal/tensor"
)

func TestLinearForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, "fc", 5, 3)
	b := NewBinding()
	x := b.Tape.Const(tensor.RandNormal(rng, 7, 5, 1))
	y := l.Forward(b, x)
	if y.Value.Rows != 7 || y.Value.Cols != 3 {
		t.Fatalf("Linear output %dx%d, want 7x3", y.Value.Rows, y.Value.Cols)
	}
}

func TestLinearMatchesManualCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, "fc", 2, 2)
	b := NewBinding()
	x := tensor.FromSlice(1, 2, []float64{1, -1})
	y := l.Forward(b, b.Tape.Const(x))
	want := tensor.AddRowVector(tensor.MatMul(x, l.W.Value), l.B.Value)
	if !y.Value.AllClose(want, 1e-12) {
		t.Fatal("Linear forward diverges from manual compute")
	}
}

func TestBindingReturnsSameNodeAndAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewParam("w", tensor.RandNormal(rng, 2, 2, 1))
	b := NewBinding()
	n1 := b.Bind(p)
	n2 := b.Bind(p)
	if n1 != n2 {
		t.Fatal("Bind must return the same node for the same param")
	}
	// y = sum(w) + sum(w) → dy/dw = 2 everywhere.
	y := b.Tape.Add(b.Tape.SumAll(n1), b.Tape.SumAll(n2))
	b.Tape.Backward(y)
	b.Flush()
	for _, g := range p.Grad.Data {
		if g != 2 {
			t.Fatalf("grad = %v, want 2", g)
		}
	}
}

func TestParamSetDuplicatePanics(t *testing.T) {
	s := NewParamSet()
	s.Add(NewParam("a", tensor.New(1, 1)))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name should panic")
		}
	}()
	s.Add(NewParam("a", tensor.New(1, 1)))
}

func TestParamSetClipGradNorm(t *testing.T) {
	s := NewParamSet()
	p := NewParam("a", tensor.New(1, 2))
	p.Grad = tensor.FromSlice(1, 2, []float64{3, 4}) // norm 5
	s.Add(p)
	pre := s.ClipGradNorm(1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v, want 5", pre)
	}
	if math.Abs(s.GradNorm()-1) > 1e-12 {
		t.Fatalf("post-clip norm = %v, want 1", s.GradNorm())
	}
	// Below the threshold nothing changes.
	if got := s.ClipGradNorm(10); math.Abs(got-1) > 1e-12 {
		t.Fatalf("second clip returned %v", got)
	}
}

func TestNormalizedAdjacencyProperties(t *testing.T) {
	// Path graph 0→1→2.
	norm := NormalizedAdjacency(3, [][]int{{1}, {2}, {}})
	// Must be symmetric with self-loops.
	for i := 0; i < 3; i++ {
		if norm.At(i, i) == 0 {
			t.Fatalf("missing self-loop at %d", i)
		}
		for j := 0; j < 3; j++ {
			if math.Abs(norm.At(i, j)-norm.At(j, i)) > 1e-12 {
				t.Fatalf("not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Node 0 has degree 2 (self + edge to 1): norm[0,0] = 1/2.
	if math.Abs(norm.At(0, 0)-0.5) > 1e-12 {
		t.Fatalf("norm[0,0] = %v, want 0.5", norm.At(0, 0))
	}
	// Disconnected node keeps unit self weight.
	iso := NormalizedAdjacency(1, [][]int{{}})
	if iso.At(0, 0) != 1 {
		t.Fatalf("isolated self-loop weight %v", iso.At(0, 0))
	}
}

func TestNormalizedAdjacencySpectralBoundProperty(t *testing.T) {
	// Rows of D^-1/2 A D^-1/2 sum to at most sqrt(deg) ratios; a simpler
	// robust invariant: all entries are in [0,1] and the matrix is symmetric.
	rng := rand.New(rand.NewSource(4))
	f := func(n8 uint8) bool {
		n := int(n8%10) + 2
		succ := make([][]int, n)
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					succ[i] = append(succ[i], j)
				}
			}
		}
		m := NormalizedAdjacency(n, succ)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := m.At(i, j)
				if v < 0 || v > 1 || math.Abs(v-m.At(j, i)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedNormalizedAdjacencyRowStochastic(t *testing.T) {
	m := DirectedNormalizedAdjacency(3, [][]int{{1, 2}, {2}, {}})
	for i := 0; i < 3; i++ {
		var s float64
		for j := 0; j < 3; j++ {
			s += m.At(i, j)
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestGCNForwardDepthPropagation(t *testing.T) {
	// On a path 0→1→2, one GCN layer mixes only direct neighbours: node 2's
	// output must not depend on node 0's features, but with two layers it must.
	rng := rand.New(rand.NewSource(5))
	g1 := NewGCN(rng, "g1", 1, 4)
	g2 := NewGCN(rng, "g2", 4, 4)
	norm := NormalizedAdjacency(3, [][]int{{1}, {2}, {}})

	run := func(x0 float64, layers int) []float64 {
		b := NewBinding()
		x := b.Tape.Const(tensor.FromSlice(3, 1, []float64{x0, 1, 1}))
		h := g1.Forward(b, norm, x)
		if layers == 2 {
			h = g2.Forward(b, norm, h)
		}
		return append([]float64(nil), h.Value.Row(2)...)
	}
	a1 := run(0, 1)
	b1 := run(100, 1)
	for i := range a1 {
		if a1[i] != b1[i] {
			t.Fatal("1-layer GCN leaked information beyond distance 1")
		}
	}
	a2 := run(0, 2)
	b2 := run(100, 2)
	same := true
	for i := range a2 {
		if a2[i] != b2[i] {
			same = false
		}
	}
	if same {
		t.Fatal("2-layer GCN should propagate information across two hops")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimise ||w - target||² — Adam must converge fast.
	target := tensor.FromSlice(1, 3, []float64{1, -2, 0.5})
	p := NewParam("w", tensor.New(1, 3))
	set := NewParamSet()
	set.Add(p)
	opt := NewAdam(0.05)
	for it := 0; it < 500; it++ {
		set.ZeroGrad()
		for i := range p.Grad.Data {
			p.Grad.Data[i] = 2 * (p.Value.Data[i] - target.Data[i])
		}
		opt.Step(set)
	}
	if !p.Value.AllClose(target, 1e-2) {
		t.Fatalf("Adam did not converge: %v", p.Value)
	}
	if opt.StepCount() != 500 {
		t.Fatalf("step count %d", opt.StepCount())
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p := NewParam("w", tensor.FromSlice(1, 1, []float64{5}))
	set := NewParamSet()
	set.Add(p)
	opt := NewSGD(0.05, 0.9)
	for it := 0; it < 300; it++ {
		set.ZeroGrad()
		p.Grad.Data[0] = 2 * p.Value.Data[0]
		opt.Step(set)
	}
	if math.Abs(p.Value.Data[0]) > 1e-3 {
		t.Fatalf("SGD did not converge: %v", p.Value.Data[0])
	}
}

func TestEndToEndRegression(t *testing.T) {
	// Fit y = relu-net(x) to a linear function; verifies Binding+Backward+Adam
	// work together through a multi-layer graph.
	rng := rand.New(rand.NewSource(6))
	l1 := NewLinear(rng, "l1", 2, 16)
	l2 := NewLinear(rng, "l2", 16, 1)
	set := NewParamSet()
	set.Add(l1.Params()...)
	set.Add(l2.Params()...)
	opt := NewAdam(0.01)

	targetFn := func(x0, x1 float64) float64 { return 2*x0 - x1 + 0.5 }
	var loss float64
	for it := 0; it < 600; it++ {
		x := tensor.New(8, 2)
		y := tensor.New(8, 1)
		for i := 0; i < 8; i++ {
			x.Set(i, 0, rng.Float64()*2-1)
			x.Set(i, 1, rng.Float64()*2-1)
			y.Set(i, 0, targetFn(x.At(i, 0), x.At(i, 1)))
		}
		b := NewBinding()
		h := b.Tape.ReLU(l1.Forward(b, b.Tape.Const(x)))
		pred := l2.Forward(b, h)
		diff := b.Tape.Sub(pred, b.Tape.Const(y))
		mse := b.Tape.Scale(b.Tape.SumAll(b.Tape.Square(diff)), 1.0/8)
		set.ZeroGrad()
		b.Tape.Backward(mse)
		b.Flush()
		opt.Step(set)
		loss = autograd.Scalar(mse)
	}
	if loss > 0.01 {
		t.Fatalf("regression did not fit: final loss %v", loss)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewLinear(rng, "fc", 3, 2)
	src := NewParamSet()
	src.Add(l.Params()...)

	var buf bytes.Buffer
	meta := map[string]string{"kernel": "cholesky", "T": "8"}
	if err := SaveCheckpoint(&buf, src, meta); err != nil {
		t.Fatal(err)
	}

	l2 := NewLinear(rand.New(rand.NewSource(99)), "fc", 3, 2)
	dst := NewParamSet()
	dst.Add(l2.Params()...)
	gotMeta, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), dst)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta["kernel"] != "cholesky" || gotMeta["T"] != "8" {
		t.Fatalf("meta round trip failed: %v", gotMeta)
	}
	if !l2.W.Value.Equal(l.W.Value) || !l2.B.Value.Equal(l.B.Value) {
		t.Fatal("values not restored")
	}
}

func TestCheckpointShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := NewParamSet()
	src.Add(NewParam("w", tensor.RandNormal(rng, 2, 2, 1)))
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src, nil); err != nil {
		t.Fatal(err)
	}
	dst := NewParamSet()
	dst.Add(NewParam("w", tensor.New(3, 3)))
	if _, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), dst); err == nil {
		t.Fatal("shape mismatch should error")
	}
}

func TestCheckpointMissingParam(t *testing.T) {
	src := NewParamSet()
	src.Add(NewParam("w", tensor.New(1, 1)))
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src, nil); err != nil {
		t.Fatal(err)
	}
	dst := NewParamSet()
	dst.Add(NewParam("other", tensor.New(1, 1)))
	if _, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), dst); err == nil {
		t.Fatal("missing param should error")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := NewParamSet()
	src.Add(NewParam("w", tensor.RandNormal(rng, 4, 4, 1)))
	path := t.TempDir() + "/ckpt.json"
	if err := SaveCheckpointFile(path, src, map[string]string{"a": "b"}); err != nil {
		t.Fatal(err)
	}
	dst := NewParamSet()
	dst.Add(NewParam("w", tensor.New(4, 4)))
	meta, err := LoadCheckpointFile(path, dst)
	if err != nil {
		t.Fatal(err)
	}
	if meta["a"] != "b" || !dst.Get("w").Value.Equal(src.Get("w").Value) {
		t.Fatal("file round trip failed")
	}
}

func TestCopyValuesFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := NewParamSet()
	a.Add(NewParam("w", tensor.RandNormal(rng, 2, 2, 1)))
	b := NewParamSet()
	b.Add(NewParam("w", tensor.New(2, 2)))
	if err := b.CopyValuesFrom(a); err != nil {
		t.Fatal(err)
	}
	if !b.Get("w").Value.Equal(a.Get("w").Value) {
		t.Fatal("copy failed")
	}
	c := NewParamSet()
	c.Add(NewParam("missing", tensor.New(1, 1)))
	if err := c.CopyValuesFrom(a); err == nil {
		t.Fatal("missing source should error")
	}
}

func TestInitSeedDeterministic(t *testing.T) {
	build := func(seed int64) *ParamSet {
		rng := rand.New(rand.NewSource(seed))
		s := NewParamSet()
		s.Add(NewParam("w", tensor.New(3, 3)), NewParam("b", tensor.New(1, 3)))
		s.InitSeed(rng)
		return s
	}
	a, b := build(42), build(42)
	if !a.Get("w").Value.Equal(b.Get("w").Value) {
		t.Fatal("same seed must give same init")
	}
	if tensor.Sum(a.Get("b").Value) != 0 {
		t.Fatal("bias rows must be zero-initialised")
	}
	c := build(43)
	if a.Get("w").Value.Equal(c.Get("w").Value) {
		t.Fatal("different seeds should differ")
	}
}

func TestNumValues(t *testing.T) {
	s := NewParamSet()
	s.Add(NewParam("a", tensor.New(2, 3)), NewParam("b", tensor.New(1, 4)))
	if s.NumValues() != 10 {
		t.Fatalf("NumValues = %d, want 10", s.NumValues())
	}
}
