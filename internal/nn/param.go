// Package nn provides the neural-network building blocks used by the READYS
// agent: trainable parameters, linear and graph-convolution layers
// (Kipf–Welling GCN), the Adam optimizer, gradient clipping and parameter
// (de)serialisation for transfer-learning checkpoints.
//
// Layers are stateless with respect to the computation graph: each forward
// pass binds the layer's parameters onto a fresh autograd.Tape through a
// Binding, and after Tape.Backward the Binding flushes the accumulated
// node gradients back into the parameters.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"readys/internal/autograd"
	"readys/internal/tensor"
)

// Param is a named trainable matrix together with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// NewParam allocates a parameter with a zero gradient buffer.
func NewParam(name string, value *tensor.Matrix) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Rows, value.Cols)}
}

// ZeroGrad resets the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Binding ties parameters to a single autograd tape. Binding the same
// parameter twice returns the same node, so gradient contributions from
// every use site accumulate correctly.
type Binding struct {
	Tape  *autograd.Tape
	nodes map[*Param]*autograd.Node
	order []*Param
}

// NewBinding returns a Binding over a fresh tape.
func NewBinding() *Binding {
	return &Binding{Tape: autograd.NewTape(), nodes: make(map[*Param]*autograd.Node)}
}

// Bind returns the tape node for p, creating it on first use.
func (b *Binding) Bind(p *Param) *autograd.Node {
	if n, ok := b.nodes[p]; ok {
		return n
	}
	n := b.Tape.Var(p.Value)
	b.nodes[p] = n
	b.order = append(b.order, p)
	return n
}

// Flush accumulates the gradients gathered on the tape into the parameters.
// Call it once, after Tape.Backward.
func (b *Binding) Flush() {
	for _, p := range b.order {
		if g := b.nodes[p].Grad; g != nil {
			tensor.AddInPlace(p.Grad, g)
		}
	}
}

// Release returns every pooled intermediate of the binding's tape to the
// buffer pool. Call it once the forward pass's outputs have been consumed
// (after Flush when training). The binding and its nodes must not be used
// afterwards.
func (b *Binding) Release() { b.Tape.Release() }

// ParamSet is an ordered collection of parameters: the unit of optimisation
// and serialisation.
type ParamSet struct {
	params []*Param
	byName map[string]*Param
}

// NewParamSet returns an empty set.
func NewParamSet() *ParamSet {
	return &ParamSet{byName: make(map[string]*Param)}
}

// Add registers params; duplicate names panic since checkpoints key on them.
func (s *ParamSet) Add(params ...*Param) {
	for _, p := range params {
		if _, dup := s.byName[p.Name]; dup {
			panic(fmt.Sprintf("nn: duplicate parameter name %q", p.Name))
		}
		s.params = append(s.params, p)
		s.byName[p.Name] = p
	}
}

// All returns the parameters in registration order.
func (s *ParamSet) All() []*Param { return s.params }

// Get returns the parameter with the given name, or nil.
func (s *ParamSet) Get(name string) *Param { return s.byName[name] }

// ZeroGrad clears every gradient in the set.
func (s *ParamSet) ZeroGrad() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}

// NumValues returns the total number of scalar parameters.
func (s *ParamSet) NumValues() int {
	var n int
	for _, p := range s.params {
		n += len(p.Value.Data)
	}
	return n
}

// GradNorm returns the global L2 norm over every gradient in the set.
func (s *ParamSet) GradNorm() float64 {
	var sq float64
	for _, p := range s.params {
		sq += tensor.Dot(p.Grad, p.Grad)
	}
	return math.Sqrt(sq)
}

// ClipGradNorm rescales all gradients so the global norm does not exceed max.
// It returns the pre-clip norm.
func (s *ParamSet) ClipGradNorm(max float64) float64 {
	norm := s.GradNorm()
	if norm > max && norm > 0 {
		scale := max / norm
		for _, p := range s.params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= scale
			}
		}
	}
	return norm
}

// CopyValuesFrom copies parameter values from src, matching by name. Every
// parameter in s must exist in src with the same shape.
func (s *ParamSet) CopyValuesFrom(src *ParamSet) error {
	for _, p := range s.params {
		q := src.Get(p.Name)
		if q == nil {
			return fmt.Errorf("nn: source set missing parameter %q", p.Name)
		}
		if !p.Value.SameShape(q.Value) {
			return fmt.Errorf("nn: parameter %q shape mismatch %dx%d vs %dx%d",
				p.Name, p.Value.Rows, p.Value.Cols, q.Value.Rows, q.Value.Cols)
		}
		copy(p.Value.Data, q.Value.Data)
	}
	return nil
}

// InitSeed re-initialises every parameter with Glorot-uniform values drawn
// from rng; bias-like parameters (single row beginning with "b") are zeroed.
func (s *ParamSet) InitSeed(rng *rand.Rand) {
	for _, p := range s.params {
		if p.Value.Rows == 1 {
			p.Value.Zero()
			continue
		}
		g := tensor.GlorotUniform(rng, p.Value.Rows, p.Value.Cols)
		copy(p.Value.Data, g.Data)
	}
}
