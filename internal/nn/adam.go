package nn

import (
	"math"

	"readys/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba). The paper trains READYS
// with Adam at learning rate 0.01 and PyTorch-default β/ε, which are the
// defaults here.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	step int
	m    map[*Param]*tensor.Matrix
	v    map[*Param]*tensor.Matrix
}

// NewAdam returns an Adam optimizer with the paper's learning rate and the
// PyTorch defaults β1=0.9, β2=0.999, ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:      lr,
		Beta1:   0.9,
		Beta2:   0.999,
		Epsilon: 1e-8,
		m:       make(map[*Param]*tensor.Matrix),
		v:       make(map[*Param]*tensor.Matrix),
	}
}

// Step applies one Adam update to every parameter in the set using the
// gradients currently stored in Param.Grad, then leaves the gradients
// untouched (call ParamSet.ZeroGrad before the next accumulation).
func (a *Adam) Step(params *ParamSet) {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params.All() {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Rows, p.Value.Cols)
			a.m[p] = m
			a.v[p] = tensor.New(p.Value.Rows, p.Value.Cols)
		}
		v := a.v[p]
		for i, g := range p.Grad.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mhat := m.Data[i] / bc1
			vhat := v.Data[i] / bc2
			p.Value.Data[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Epsilon)
		}
	}
}

// StepCount returns the number of updates applied so far.
func (a *Adam) StepCount() int { return a.step }

// SGD is a plain stochastic-gradient-descent optimizer, used as an ablation
// and in optimizer unit tests.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param]*tensor.Matrix
}

// NewSGD returns an SGD optimizer with optional momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Param]*tensor.Matrix)}
}

// Step applies one SGD update using the gradients in Param.Grad.
func (s *SGD) Step(params *ParamSet) {
	for _, p := range params.All() {
		if s.Momentum == 0 {
			tensor.AddScaledInPlace(p.Value, p.Grad, -s.LR)
			continue
		}
		v, ok := s.vel[p]
		if !ok {
			v = tensor.New(p.Value.Rows, p.Value.Cols)
			s.vel[p] = v
		}
		for i, g := range p.Grad.Data {
			v.Data[i] = s.Momentum*v.Data[i] + g
			p.Value.Data[i] -= s.LR * v.Data[i]
		}
	}
}

// Optimizer is the interface shared by Adam and SGD.
type Optimizer interface {
	Step(params *ParamSet)
}
