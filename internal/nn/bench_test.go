package nn

import (
	"math/rand"
	"testing"

	"readys/internal/tensor"
)

func BenchmarkGCNForward(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(sizeName(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			g := NewGCN(rng, "g", 64, 64)
			succ := make([][]int, n)
			for i := 0; i+1 < n; i++ {
				succ[i] = []int{i + 1}
			}
			norm := NormalizedAdjacency(n, succ)
			x := tensor.RandNormal(rng, n, 64, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bind := NewBinding()
				g.Forward(bind, norm, bind.Tape.Const(x))
				bind.Release()
			}
		})
	}
}

func BenchmarkGCNForwardDense(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(sizeName(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			g := NewGCN(rng, "g", 64, 64)
			succ := make([][]int, n)
			for i := 0; i+1 < n; i++ {
				succ[i] = []int{i + 1}
			}
			norm := NormalizedAdjacency(n, succ).Dense()
			x := tensor.RandNormal(rng, n, 64, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bind := NewBinding()
				g.ForwardDense(bind, bind.Tape.Const(norm), bind.Tape.Const(x))
				bind.Release()
			}
		})
	}
}

func BenchmarkLinearForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, "l", 64, 64)
	x := tensor.RandNormal(rng, 32, 64, 1)
	set := NewParamSet()
	set.Add(l.Params()...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bind := NewBinding()
		out := bind.Tape.SumAll(bind.Tape.Square(l.Forward(bind, bind.Tape.Const(x))))
		bind.Tape.Backward(out)
		bind.Flush()
		set.ZeroGrad()
	}
}

func BenchmarkAdamStep(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	set := NewParamSet()
	for i := 0; i < 8; i++ {
		p := NewParam(string(rune('a'+i)), tensor.RandNormal(rng, 64, 64, 1))
		p.Grad = tensor.RandNormal(rng, 64, 64, 0.1)
		set.Add(p)
	}
	opt := NewAdam(0.003)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(set)
	}
}

func BenchmarkNormalizedAdjacency(b *testing.B) {
	succ := make([][]int, 128)
	for i := 0; i+1 < 128; i++ {
		succ[i] = []int{i + 1, (i * 7) % 128}
		if succ[i][1] == i {
			succ[i] = succ[i][:1]
		}
	}
	// Drop any accidental back-edges to keep it a DAG-ish structure; the
	// function itself only needs index bounds.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NormalizedAdjacency(128, succ)
	}
}

func sizeName(n int) string {
	switch n {
	case 16:
		return "n=16"
	case 64:
		return "n=64"
	default:
		return "n=256"
	}
}
