package nn

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// checkpointFile is the on-disk JSON layout of a parameter checkpoint. The
// format is versioned so future layout changes stay loadable.
type checkpointFile struct {
	Version int               `json:"version"`
	Meta    map[string]string `json:"meta,omitempty"`
	Params  []checkpointParam `json:"params"`
}

type checkpointParam struct {
	Name string    `json:"name"`
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

const checkpointVersion = 1

// SaveCheckpoint writes the parameter set (and free-form metadata such as the
// training configuration) as JSON to w.
func SaveCheckpoint(w io.Writer, params *ParamSet, meta map[string]string) error {
	cf := checkpointFile{Version: checkpointVersion, Meta: meta}
	for _, p := range params.All() {
		cf.Params = append(cf.Params, checkpointParam{
			Name: p.Name,
			Rows: p.Value.Rows,
			Cols: p.Value.Cols,
			Data: p.Value.Data,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&cf)
}

// LoadCheckpoint reads a checkpoint from r and copies values into params,
// matching by name and validating shapes. It returns the stored metadata.
// Every parameter in params must be present in the checkpoint; extra
// checkpoint entries are ignored (forward compatibility).
func LoadCheckpoint(r io.Reader, params *ParamSet) (map[string]string, error) {
	var cf checkpointFile
	if err := json.NewDecoder(r).Decode(&cf); err != nil {
		return nil, fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	if cf.Version != checkpointVersion {
		return nil, fmt.Errorf("nn: unsupported checkpoint version %d", cf.Version)
	}
	byName := make(map[string]checkpointParam, len(cf.Params))
	for _, cp := range cf.Params {
		byName[cp.Name] = cp
	}
	for _, p := range params.All() {
		cp, ok := byName[p.Name]
		if !ok {
			return nil, fmt.Errorf("nn: checkpoint missing parameter %q", p.Name)
		}
		if cp.Rows != p.Value.Rows || cp.Cols != p.Value.Cols {
			return nil, fmt.Errorf("nn: parameter %q shape mismatch: checkpoint %dx%d, model %dx%d",
				p.Name, cp.Rows, cp.Cols, p.Value.Rows, p.Value.Cols)
		}
		if len(cp.Data) != cp.Rows*cp.Cols {
			return nil, fmt.Errorf("nn: parameter %q has %d values for %dx%d", p.Name, len(cp.Data), cp.Rows, cp.Cols)
		}
		copy(p.Value.Data, cp.Data)
	}
	return cf.Meta, nil
}

// SaveCheckpointFile writes a checkpoint to path, creating or truncating it.
func SaveCheckpointFile(path string, params *ParamSet, meta map[string]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveCheckpoint(f, params, meta); err != nil {
		return err
	}
	return f.Sync()
}

// LoadCheckpointFile reads a checkpoint from path into params.
func LoadCheckpointFile(path string, params *ParamSet) (map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCheckpoint(f, params)
}
