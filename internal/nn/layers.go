package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"readys/internal/autograd"
	"readys/internal/tensor"
)

// Linear is a fully connected layer y = xW + b. In the paper's notation,
// FC(in, out).
type Linear struct {
	W, B *Param
}

// NewLinear builds an in x out linear layer with Glorot-uniform weights and a
// zero bias. The name prefixes the parameter names for checkpointing.
func NewLinear(rng *rand.Rand, name string, in, out int) *Linear {
	return &Linear{
		W: NewParam(name+".W", tensor.GlorotUniform(rng, in, out)),
		B: NewParam(name+".b", tensor.New(1, out)),
	}
}

// Forward applies the layer to x (rows are samples) on b's tape.
func (l *Linear) Forward(b *Binding, x *autograd.Node) *autograd.Node {
	return b.Tape.AddRowVector(b.Tape.MatMul(x, b.Bind(l.W)), b.Bind(l.B))
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// GCN is one graph-convolution layer in the Kipf–Welling formulation used by
// the paper (§III-B):
//
//	H' = φ( D̃^{-1/2} Ã D̃^{-1/2} H W + b )
//
// where Ã is the adjacency matrix with self-loops. The normalised operator
// D̃^{-1/2}ÃD̃^{-1/2} is precomputed per sub-DAG with NormalizedAdjacency and
// passed to Forward as a constant, since the graph topology carries no
// gradient.
type GCN struct {
	W, B *Param
}

// NewGCN builds a GCN layer mapping in-dimensional node features to out
// dimensions.
func NewGCN(rng *rand.Rand, name string, in, out int) *GCN {
	return &GCN{
		W: NewParam(name+".W", tensor.GlorotUniform(rng, in, out)),
		B: NewParam(name+".b", tensor.New(1, out)),
	}
}

// Forward computes φ(norm · h · W + b) with φ = ReLU. norm must be the
// n x n normalised adjacency of the sub-DAG in CSR form and h the n x in
// feature matrix. Propagation runs as SpMM, so each layer costs O(E·h)
// rather than the dense O(n²·h).
func (g *GCN) Forward(b *Binding, norm *tensor.Sparse, h *autograd.Node) *autograd.Node {
	agg := b.Tape.SpMM(norm, h)
	lin := b.Tape.AddRowVector(b.Tape.MatMul(agg, b.Bind(g.W)), b.Bind(g.B))
	return b.Tape.ReLU(lin)
}

// ForwardDense is the dense-propagation variant of Forward: norm is
// materialised as an n x n matrix and multiplied densely. Kept as the
// ablation/benchmark baseline for the sparse path (core.Config.DenseProp).
func (g *GCN) ForwardDense(b *Binding, norm *autograd.Node, h *autograd.Node) *autograd.Node {
	agg := b.Tape.MatMul(norm, h)
	lin := b.Tape.AddRowVector(b.Tape.MatMul(agg, b.Bind(g.W)), b.Bind(g.B))
	return b.Tape.ReLU(lin)
}

// Params returns the layer's trainable parameters.
func (g *GCN) Params() []*Param { return []*Param{g.W, g.B} }

// NormalizedAdjacency returns D̃^{-1/2} (A + I) D̃^{-1/2} for the directed
// adjacency A given as successor lists: succ[i] holds the indices j of the
// edges i→j. Treating the operator symmetrically (information flows both
// ways, as in the paper's GCN) means both (i,j) and (j,i) are set. The
// result is built directly in CSR form — O(E) work and memory, never
// materialising the n x n matrix.
func NormalizedAdjacency(n int, succ [][]int) *tensor.Sparse {
	neigh := adjacencyRows(n, succ, true)
	deg := make([]float64, n)
	for i, row := range neigh {
		deg[i] = float64(len(row))
	}
	entries := make([][]tensor.SparseEntry, n)
	for i, row := range neigh {
		es := make([]tensor.SparseEntry, len(row))
		for k, j := range row {
			es[k] = tensor.SparseEntry{Col: j, Val: 1 / sqrtf(deg[i]*deg[j])}
		}
		entries[i] = es
	}
	return tensor.SparseFromRows(n, n, entries)
}

// DirectedNormalizedAdjacency returns D̃^{-1} (A + I) for a strictly
// downstream information flow (ablation variant): row-normalised adjacency
// where node i aggregates itself and its successors. Built directly in CSR
// form like NormalizedAdjacency.
func DirectedNormalizedAdjacency(n int, succ [][]int) *tensor.Sparse {
	neigh := adjacencyRows(n, succ, false)
	entries := make([][]tensor.SparseEntry, n)
	for i, row := range neigh {
		d := float64(len(row))
		es := make([]tensor.SparseEntry, len(row))
		for k, j := range row {
			es[k] = tensor.SparseEntry{Col: j, Val: 1 / d}
		}
		entries[i] = es
	}
	return tensor.SparseFromRows(n, n, entries)
}

// adjacencyRows builds sorted, deduplicated neighbour lists of A + I from
// successor lists, mirroring edges when symmetric is set. Row i always
// contains i (the self-loop), so every row is non-empty.
func adjacencyRows(n int, succ [][]int, symmetric bool) [][]int {
	rows := make([][]int, n)
	for i := 0; i < n; i++ {
		rows[i] = append(rows[i], i) // self-loop
	}
	for i, js := range succ {
		for _, j := range js {
			if i < 0 || i >= n || j < 0 || j >= n {
				panic(fmt.Sprintf("nn: edge (%d,%d) out of range for n=%d", i, j, n))
			}
			rows[i] = append(rows[i], j)
			if symmetric {
				rows[j] = append(rows[j], i)
			}
		}
	}
	for i := range rows {
		sort.Ints(rows[i])
		// Deduplicate in place (repeated edges and i→i self-edges).
		w := 0
		for k, v := range rows[i] {
			if k == 0 || v != rows[i][w-1] {
				rows[i][w] = v
				w++
			}
		}
		rows[i] = rows[i][:w]
	}
	return rows
}

// sqrtf is math.Sqrt with a guard for zero degrees (isolated vertices keep a
// unit self-loop weight instead of dividing by zero).
func sqrtf(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Sqrt(x)
}
