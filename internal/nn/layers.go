package nn

import (
	"fmt"
	"math"
	"math/rand"

	"readys/internal/autograd"
	"readys/internal/tensor"
)

// Linear is a fully connected layer y = xW + b. In the paper's notation,
// FC(in, out).
type Linear struct {
	W, B *Param
}

// NewLinear builds an in x out linear layer with Glorot-uniform weights and a
// zero bias. The name prefixes the parameter names for checkpointing.
func NewLinear(rng *rand.Rand, name string, in, out int) *Linear {
	return &Linear{
		W: NewParam(name+".W", tensor.GlorotUniform(rng, in, out)),
		B: NewParam(name+".b", tensor.New(1, out)),
	}
}

// Forward applies the layer to x (rows are samples) on b's tape.
func (l *Linear) Forward(b *Binding, x *autograd.Node) *autograd.Node {
	return b.Tape.AddRowVector(b.Tape.MatMul(x, b.Bind(l.W)), b.Bind(l.B))
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// GCN is one graph-convolution layer in the Kipf–Welling formulation used by
// the paper (§III-B):
//
//	H' = φ( D̃^{-1/2} Ã D̃^{-1/2} H W + b )
//
// where Ã is the adjacency matrix with self-loops. The normalised operator
// D̃^{-1/2}ÃD̃^{-1/2} is precomputed per sub-DAG with NormalizedAdjacency and
// passed to Forward as a constant, since the graph topology carries no
// gradient.
type GCN struct {
	W, B *Param
}

// NewGCN builds a GCN layer mapping in-dimensional node features to out
// dimensions.
func NewGCN(rng *rand.Rand, name string, in, out int) *GCN {
	return &GCN{
		W: NewParam(name+".W", tensor.GlorotUniform(rng, in, out)),
		B: NewParam(name+".b", tensor.New(1, out)),
	}
}

// Forward computes φ(norm · h · W + b) with φ = ReLU. norm must be the
// n x n normalised adjacency of the sub-DAG and h the n x in feature matrix.
func (g *GCN) Forward(b *Binding, norm *autograd.Node, h *autograd.Node) *autograd.Node {
	agg := b.Tape.MatMul(norm, h)
	lin := b.Tape.AddRowVector(b.Tape.MatMul(agg, b.Bind(g.W)), b.Bind(g.B))
	return b.Tape.ReLU(lin)
}

// Params returns the layer's trainable parameters.
func (g *GCN) Params() []*Param { return []*Param{g.W, g.B} }

// NormalizedAdjacency returns D̃^{-1/2} (A + I) D̃^{-1/2} for the directed
// adjacency A given as successor lists: succ[i] holds the indices j of the
// edges i→j. Treating the operator symmetrically (information flows both
// ways, as in the paper's GCN) means both (i,j) and (j,i) are set.
func NormalizedAdjacency(n int, succ [][]int) *tensor.Matrix {
	a := tensor.New(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1) // self-loop
	}
	for i, js := range succ {
		for _, j := range js {
			if i < 0 || i >= n || j < 0 || j >= n {
				panic(fmt.Sprintf("nn: edge (%d,%d) out of range for n=%d", i, j, n))
			}
			a.Set(i, j, 1)
			a.Set(j, i, 1)
		}
	}
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		var d float64
		for j := 0; j < n; j++ {
			d += a.At(i, j)
		}
		deg[i] = d
	}
	out := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := a.At(i, j)
			if v != 0 {
				out.Set(i, j, v/sqrtf(deg[i]*deg[j]))
			}
		}
	}
	return out
}

// DirectedNormalizedAdjacency returns D̃^{-1} (A + I) for a strictly
// downstream information flow (ablation variant): row-normalised adjacency
// where node i aggregates itself and its successors.
func DirectedNormalizedAdjacency(n int, succ [][]int) *tensor.Matrix {
	a := tensor.New(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	for i, js := range succ {
		for _, j := range js {
			a.Set(i, j, 1)
		}
	}
	out := tensor.New(n, n)
	for i := 0; i < n; i++ {
		var d float64
		for j := 0; j < n; j++ {
			d += a.At(i, j)
		}
		for j := 0; j < n; j++ {
			if v := a.At(i, j); v != 0 {
				out.Set(i, j, v/d)
			}
		}
	}
	return out
}

// sqrtf is math.Sqrt with a guard for zero degrees (isolated vertices keep a
// unit self-loop weight instead of dividing by zero).
func sqrtf(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Sqrt(x)
}
