package gateway

import (
	"io"
	"time"

	"readys/internal/obs"
)

// Metrics is the gateway's counter set, backed by the shared obs registry.
// All methods are safe for concurrent use.
type Metrics struct {
	start time.Time
	reg   *obs.Registry

	requests *obs.CounterVec
	errors   *obs.CounterVec
	// replicaRequests counts forwards per replica; replicaHealthy is 1 while
	// a replica is believed alive, 0 once a probe or a failed forward marked
	// it down.
	replicaRequests *obs.CounterVec
	replicaHealthy  *obs.GaugeVec
	// failovers counts retries on a different replica after a forward failed
	// — the signal that a replica died with requests in flight.
	failovers *obs.Counter
}

// NewMetrics returns an empty metric set anchored at now.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		start:           time.Now(),
		reg:             reg,
		requests:        reg.CounterVec("readys_gateway_requests_total", "Gateway HTTP requests by endpoint.", "endpoint"),
		errors:          reg.CounterVec("readys_gateway_errors_total", "Gateway HTTP responses with status >= 400 by endpoint.", "endpoint"),
		replicaRequests: reg.CounterVec("readys_gateway_replica_requests_total", "Requests forwarded per replica.", "replica"),
		replicaHealthy:  reg.GaugeVec("readys_gateway_replica_healthy", "Replica health (1 healthy, 0 down).", "replica"),
		failovers:       reg.Counter("readys_gateway_failovers_total", "Requests retried on another replica after a forward failed."),
	}
	reg.GaugeFunc("readys_gateway_uptime_seconds", "Seconds since the gateway started.",
		func() float64 { return time.Since(m.start).Seconds() })
	return m
}

// ObserveRequest counts one inbound request against an endpoint.
func (m *Metrics) ObserveRequest(endpoint string) { m.requests.With(endpoint).Inc() }

// ObserveError counts one >= 400 response against an endpoint.
func (m *Metrics) ObserveError(endpoint string) { m.errors.With(endpoint).Inc() }

// ObserveReplicaRequest counts one forward to a replica.
func (m *Metrics) ObserveReplicaRequest(url string) { m.replicaRequests.With(url).Inc() }

// SetReplicaHealth records a replica's health state.
func (m *Metrics) SetReplicaHealth(url string, healthy bool) {
	var v int64
	if healthy {
		v = 1
	}
	m.replicaHealthy.With(url).Set(v)
}

// Failover counts one retry on a different replica.
func (m *Metrics) Failover() { m.failovers.Inc() }

// Failovers returns the failover count (tests and the smoke harness).
func (m *Metrics) Failovers() uint64 { return m.failovers.Value() }

// WritePrometheus renders every metric in the Prometheus text exposition
// format (served on GET /metrics?format=prometheus).
func (m *Metrics) WritePrometheus(w io.Writer) error { return m.reg.WriteText(w) }

// Snapshot renders the counters as a JSON-encodable tree for the default
// /metrics format.
func (m *Metrics) Snapshot() map[string]any {
	eps := make(map[string]any)
	for _, labels := range m.requests.Labels() {
		name := labels[0]
		eps[name] = map[string]any{
			"requests": m.requests.With(name).Value(),
			"errors":   m.errors.With(name).Value(),
		}
	}
	reps := make(map[string]any)
	for _, labels := range m.replicaHealthy.Labels() {
		url := labels[0]
		reps[url] = map[string]any{
			"healthy":  m.replicaHealthy.With(url).Value() == 1,
			"requests": m.replicaRequests.With(url).Value(),
		}
	}
	return map[string]any{
		"uptime_seconds": time.Since(m.start).Seconds(),
		"failovers":      m.failovers.Value(),
		"endpoints":      eps,
		"replicas":       reps,
	}
}
