package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"readys/internal/core"
	"readys/internal/exp"
	"readys/internal/obs"
	"readys/internal/serve"
	"readys/internal/taskgraph"
)

// writeTestModel saves an untrained checkpoint for the (kind, T, platform)
// combination into dir. Untrained weights are deterministically seeded, so
// two replicas loading the same file schedule identically — the property the
// failover tests lean on.
func writeTestModel(t testing.TB, dir string, kind taskgraph.Kind, T, cpus, gpus int) {
	t.Helper()
	spec := exp.DefaultAgentSpec(kind, T, cpus, gpus)
	spec.Window, spec.Layers, spec.Hidden = 1, 1, 8
	agent := core.NewAgent(spec.AgentConfig())
	if err := agent.SaveCheckpoint(spec.ModelPath(dir), map[string]string{"test": "1"}); err != nil {
		t.Fatal(err)
	}
}

// startReplica runs one serving daemon over dir behind an httptest listener.
func startReplica(t testing.TB, dir string) *httptest.Server {
	t.Helper()
	srv := serve.New(serve.Config{
		ModelsDir: dir, Workers: 2, Queue: 32, RequestTimeout: 30 * time.Second,
		Batch: true, BatchWidth: 4, BatchDwell: time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newTestGateway builds a gateway over the given replica URLs with the active
// health prober effectively disabled, so tests exercise the passive
// (failed-forward) detection path deterministically.
func newTestGateway(t testing.TB, urls ...string) *Gateway {
	t.Helper()
	g, err := New(Config{
		Replicas:       urls,
		HealthInterval: time.Hour,
		Retries:        3,
		RetryBase:      time.Millisecond,
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func postJSON(t testing.TB, h http.Handler, path string, v any, hdr http.Header) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	for k, vals := range hdr {
		for _, val := range vals {
			req.Header.Add(k, val)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeSchedule(t testing.TB, rec *httptest.ResponseRecorder) serve.ScheduleResponse {
	t.Helper()
	var resp serve.ScheduleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding schedule response: %v\n%s", err, rec.Body.String())
	}
	return resp
}

// sameSchedule compares the deterministic parts of two schedule responses
// (ElapsedMS and CacheHit legitimately differ between replicas).
func sameSchedule(t testing.TB, ctx string, got, want serve.ScheduleResponse) {
	t.Helper()
	if got.Makespan != want.Makespan || got.Decisions != want.Decisions || got.IdleDecisions != want.IdleDecisions {
		t.Errorf("%s: makespan/decisions diverged: got %v/%d/%d, want %v/%d/%d",
			ctx, got.Makespan, got.Decisions, got.IdleDecisions, want.Makespan, want.Decisions, want.IdleDecisions)
	}
	if len(got.Placements) != len(want.Placements) {
		t.Fatalf("%s: %d placements, want %d", ctx, len(got.Placements), len(want.Placements))
	}
	for i := range got.Placements {
		if got.Placements[i] != want.Placements[i] {
			t.Errorf("%s: placement %d: got %+v, want %+v", ctx, i, got.Placements[i], want.Placements[i])
		}
	}
}

// TestRankDeterministicAndOrderFree pins the rendezvous-routing contract:
// the ranking for a key does not depend on the order replicas were listed
// in, and different keys spread across replicas.
func TestRankDeterministicAndOrderFree(t *testing.T) {
	urls := []string{"http://10.0.0.1:8081", "http://10.0.0.2:8081", "http://10.0.0.3:8081"}
	g1 := newTestGateway(t, urls[0], urls[1], urls[2])
	g2 := newTestGateway(t, urls[2], urls[0], urls[1])

	keys := []string{"model-a", "model-b", "model-c", "model-d", "model-e"}
	first := make(map[string]bool)
	for _, key := range keys {
		r1, r2 := g1.rank(key), g2.rank(key)
		if len(r1) != len(urls) || len(r2) != len(urls) {
			t.Fatalf("rank(%q) returned %d and %d replicas, want %d", key, len(r1), len(r2), len(urls))
		}
		for i := range r1 {
			if r1[i].url != r2[i].url {
				t.Fatalf("rank(%q) depends on listing order: %s vs %s at position %d", key, r1[i].url, r2[i].url, i)
			}
		}
		first[r1[0].url] = true
	}
	if len(first) < 2 {
		t.Errorf("5 keys all ranked the same replica first; rendezvous hashing should spread them")
	}

	// An unhealthy replica drops behind every healthy one but stays a
	// candidate of last resort.
	target := g1.rank("model-a")[0]
	target.healthy.Store(false)
	ranked := g1.rank("model-a")
	if ranked[0] == target {
		t.Fatal("unhealthy replica still ranked first")
	}
	if ranked[len(ranked)-1] != target {
		t.Fatal("unhealthy replica dropped from the candidate list entirely")
	}
	target.healthy.Store(true)
}

// TestGatewayFailoverChaos kills the replica that owns a key while requests
// are in flight and requires every request to complete on the survivor with
// a bit-identical schedule — replica death must never surface as a 5xx.
func TestGatewayFailoverChaos(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, taskgraph.Cholesky, 4, 1, 1)
	rep1 := startReplica(t, dir)
	rep2 := startReplica(t, dir)
	g := newTestGateway(t, rep1.URL, rep2.URL)

	req := serve.ScheduleRequest{Kind: "cholesky", T: 4, CPUs: 1, GPUs: 1, Seed: 42}

	// Reference answer while both replicas are up.
	rec := postJSON(t, g.Handler(), "/v1/schedule", req, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm-up request: status %d: %s", rec.Code, rec.Body.String())
	}
	want := decodeSchedule(t, rec)

	// Kill the replica that owns this request's route, so the very next
	// request must fail over. CloseClientConnections drops keep-alive
	// connections too, making in-flight forwards fail like a crashed process.
	owner := g.rank(routeKey(&req))[0].url
	for _, ts := range []*httptest.Server{rep1, rep2} {
		if ts.URL == owner {
			ts.CloseClientConnections()
			ts.Close()
		}
	}

	const clients = 8
	codes := make([]int, clients)
	resps := make([]serve.ScheduleResponse, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := postJSON(t, g.Handler(), "/v1/schedule", req, nil)
			codes[i] = r.Code
			if r.Code == http.StatusOK {
				resps[i] = decodeSchedule(t, r)
			}
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d after replica death: status %d", i, codes[i])
		}
		sameSchedule(t, "survivor response", resps[i], want)
	}
	if g.Metrics().Failovers() == 0 {
		t.Error("no failover recorded despite the owning replica dying")
	}

	// The dead replica must be marked down in the health gauge and in
	// /healthz, while the gateway itself stays serving.
	rec = httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=prometheus", nil))
	body := rec.Body.String()
	if !strings.Contains(body, `readys_gateway_replica_healthy{replica="`+owner+`"} 0`) {
		t.Errorf("dead replica %s not marked down in exposition:\n%s", owner, body)
	}
	rec = httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("gateway /healthz answered %d with one live replica", rec.Code)
	}
}

// TestGatewayAllReplicasDown pins the exhaustion path: with every replica
// dead the gateway answers 502 (not a hang) and its own /healthz turns 503.
func TestGatewayAllReplicasDown(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, taskgraph.Cholesky, 2, 1, 1)
	rep := startReplica(t, dir)
	g := newTestGateway(t, rep.URL)
	rep.CloseClientConnections()
	rep.Close()

	req := serve.ScheduleRequest{Kind: "cholesky", T: 2, CPUs: 1, GPUs: 1, Seed: 1}
	rec := postJSON(t, g.Handler(), "/v1/schedule", req, nil)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status %d with all replicas down, want 502: %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("gateway /healthz answered %d with zero live replicas, want 503", rec.Code)
	}
}

// TestGatewayBadRequestNotRetried pins the 4xx contract: application answers
// are relayed verbatim and never counted or retried as failures.
func TestGatewayBadRequestNotRetried(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, taskgraph.Cholesky, 2, 1, 1)
	rep := startReplica(t, dir)
	g := newTestGateway(t, rep.URL)

	// Invalid at the gateway: rejected before any forward.
	rec := postJSON(t, g.Handler(), "/v1/schedule", serve.ScheduleRequest{Kind: "nope", T: 2, CPUs: 1}, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid kind: status %d, want 400", rec.Code)
	}
	// Valid shape but no such model: the replica's 404 comes through as-is.
	rec = postJSON(t, g.Handler(), "/v1/schedule", serve.ScheduleRequest{Kind: "qr", T: 9, CPUs: 1, GPUs: 1}, nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("missing model: status %d, want 404: %s", rec.Code, rec.Body.String())
	}
	if n := g.Metrics().Failovers(); n != 0 {
		t.Errorf("4xx answers triggered %d failovers, want 0", n)
	}
}

// TestGatewayTraceLinks posts a request with a client trace context, merges
// the client, gateway and replica trace exports and requires every parent
// link to resolve — the stitched client→gateway→replica timeline the
// gateway-smoke target checks end to end.
func TestGatewayTraceLinks(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, taskgraph.Cholesky, 2, 1, 1)
	srv := serve.New(serve.Config{ModelsDir: dir, Workers: 2, Queue: 16, RequestTimeout: 30 * time.Second})
	rep := httptest.NewServer(srv.Handler())
	t.Cleanup(rep.Close)
	g := newTestGateway(t, rep.URL)

	// The "client process": one root span whose context rides the request.
	clientTracer := obs.NewTracer(0)
	clientTracer.NameProcess(3, "client")
	client := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()}
	hdr := http.Header{}
	client.Inject(hdr)
	start := time.Now()
	rec := postJSON(t, g.Handler(), "/v1/schedule",
		serve.ScheduleRequest{Kind: "cholesky", T: 2, CPUs: 1, GPUs: 1, Seed: 7}, hdr)
	if rec.Code != http.StatusOK {
		t.Fatalf("schedule via gateway: status %d: %s", rec.Code, rec.Body.String())
	}
	clientTracer.Complete("request", "client", 3, 1, 0,
		float64(time.Since(start))/float64(time.Microsecond),
		obs.SpanArgs(nil, client.TraceID, client.SpanID, ""))

	export := func(tr *obs.Tracer) []byte {
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	var replicaTrace bytes.Buffer
	resp := httptest.NewRecorder()
	srv.Handler().ServeHTTP(resp, httptest.NewRequest(http.MethodGet, "/debug/trace", nil))
	replicaTrace.Write(resp.Body.Bytes())

	merged, err := obs.MergeTraces(export(clientTracer), export(g.Tracer()), replicaTrace.Bytes())
	if err != nil {
		t.Fatalf("merging traces: %v", err)
	}
	if err := obs.ValidateChromeTrace(merged); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	if err := obs.ValidateTraceLinks(merged); err != nil {
		t.Fatalf("trace links broken across client→gateway→replica: %v", err)
	}
}

// TestHealthProbeRecovery exercises the active prober both ways: a replica
// whose /healthz starts failing is marked down without any request tripping
// over it, and marked healthy again once the endpoint recovers — the path
// that brings a restarted replica back into rotation.
func TestHealthProbeRecovery(t *testing.T) {
	var failing atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(ts.Close)

	g, err := New(Config{
		Replicas:       []string{ts.URL},
		HealthInterval: 5 * time.Millisecond,
		HealthTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)

	waitHealth := func(want bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if g.replicas[0].healthy.Load() == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("replica health never became %v", want)
	}

	waitHealth(true)
	failing.Store(true)
	waitHealth(false)
	failing.Store(false)
	waitHealth(true)
}

// TestGatewayMetricsPrometheusFormat is the golden exposition test for the
// gateway's metric families.
func TestGatewayMetricsPrometheusFormat(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, taskgraph.Cholesky, 2, 1, 1)
	rep := startReplica(t, dir)
	g := newTestGateway(t, rep.URL)

	rec := postJSON(t, g.Handler(), "/v1/schedule",
		serve.ScheduleRequest{Kind: "cholesky", T: 2, CPUs: 1, GPUs: 1, Seed: 3}, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("schedule: status %d: %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=prometheus", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	body := rec.Body.String()
	for _, line := range []string{
		"# TYPE readys_gateway_requests_total counter",
		`readys_gateway_requests_total{endpoint="schedule"} 1`,
		"# TYPE readys_gateway_replica_requests_total counter",
		`readys_gateway_replica_requests_total{replica="` + rep.URL + `"} 1`,
		"# TYPE readys_gateway_replica_healthy gauge",
		`readys_gateway_replica_healthy{replica="` + rep.URL + `"} 1`,
		"# TYPE readys_gateway_failovers_total counter",
		"readys_gateway_failovers_total 0",
		"# TYPE readys_gateway_uptime_seconds gauge",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("prometheus exposition missing %q\n%s", line, body)
		}
	}
}
