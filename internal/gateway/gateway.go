// Package gateway is the horizontal-scaling tier of the serving stack: a
// stateless router that fronts N readys-serve replicas behind one endpoint.
//
// Requests for one model are routed to the same replica (rendezvous hashing
// on the model's canonical spec hash), so each replica's LRU registry and
// cross-request batcher see a concentrated working set instead of a sliver of
// every model. Replicas are health-checked over their /healthz endpoint and
// failed over transparently: a replica dying mid-request surfaces as a
// retried request on a survivor, not a 5xx to the caller.
//
// The gateway records request and per-attempt forward spans into the same
// Chrome trace-event ring as the replicas and propagates X-Trace-ID /
// X-Parent-Span-ID on every hop, so a client→gateway→replica request renders
// as one stitched timeline (readys-obs-check -merge -links verifies the
// cross-process parent links).
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"readys/internal/exp"
	"readys/internal/fleet"
	"readys/internal/obs"
	"readys/internal/serve"
	"readys/internal/taskgraph"
)

// gatewayPID is the pid under which the gateway records trace events. It is
// distinct from the serving daemon's pid so merged multi-process traces keep
// one lane per process even before MergeTraces remaps collisions.
const gatewayPID = 2

// Config tunes the gateway.
type Config struct {
	// Replicas are the base URLs of the readys-serve replicas to front,
	// e.g. "http://127.0.0.1:8081". At least one is required.
	Replicas []string
	// HealthInterval is the period of the active /healthz probe loop.
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe.
	HealthTimeout time.Duration
	// Retries is the number of failover attempts after the first forward
	// fails (capped at the replica count); zero takes the default.
	Retries int
	// RetryBase is the pre-jitter backoff before the first failover attempt,
	// doubling per attempt (fleet.BackoffDelay's curve).
	RetryBase time.Duration
	// RequestTimeout bounds one schedule request end to end, across every
	// failover attempt.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies.
	MaxBodyBytes int64
	// Logger receives request-level diagnostics; nil disables logging.
	Logger *log.Logger
	// TraceEvents is the request-span ring capacity (<= 0 picks the obs
	// default).
	TraceEvents int
}

// DefaultConfig returns production-shaped defaults (Replicas must still be
// supplied by the caller).
func DefaultConfig() Config {
	return Config{
		HealthInterval: 250 * time.Millisecond,
		HealthTimeout:  time.Second,
		Retries:        3,
		RetryBase:      25 * time.Millisecond,
		RequestTimeout: 30 * time.Second,
		MaxBodyBytes:   1 << 20,
	}
}

// replica is one fronted readys-serve instance. healthy is optimistic: a
// fresh replica is assumed alive until a probe or a forward says otherwise,
// so the gateway serves immediately after start instead of waiting out the
// first probe cycle.
type replica struct {
	url     string
	healthy atomic.Bool
}

// Gateway routes schedule requests across replicas. Build with New, serve
// Handler(), stop the health loop with Close.
type Gateway struct {
	cfg      Config
	replicas []*replica
	client   *http.Client
	metrics  *Metrics
	mux      *http.ServeMux

	epoch  time.Time
	tracer *obs.Tracer
	reqSeq atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a gateway over the configured replicas (zero config fields take
// defaults) and starts its health-probe loop.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("gateway: at least one replica URL is required")
	}
	def := DefaultConfig()
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = def.HealthInterval
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = def.HealthTimeout
	}
	if cfg.Retries <= 0 {
		cfg.Retries = def.Retries
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = def.RetryBase
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = def.RequestTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = def.MaxBodyBytes
	}
	g := &Gateway{
		cfg:     cfg,
		client:  &http.Client{Timeout: cfg.RequestTimeout},
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
		epoch:   time.Now(),
		tracer:  obs.NewTracer(cfg.TraceEvents),
		stop:    make(chan struct{}),
	}
	seen := make(map[string]bool, len(cfg.Replicas))
	for _, raw := range cfg.Replicas {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		rep := &replica{url: u}
		rep.healthy.Store(true)
		g.replicas = append(g.replicas, rep)
		g.metrics.SetReplicaHealth(u, true)
	}
	if len(g.replicas) == 0 {
		return nil, errors.New("gateway: replica list is empty after normalisation")
	}
	g.tracer.NameProcess(gatewayPID, "readys-gateway")
	g.mux.HandleFunc("/v1/schedule", g.instrument("schedule", g.handleSchedule))
	g.mux.HandleFunc("/v1/models", g.instrument("models", g.handleModels))
	g.mux.HandleFunc("/healthz", g.instrument("healthz", g.handleHealthz))
	g.mux.HandleFunc("/metrics", g.instrument("metrics", g.handleMetrics))
	g.mux.HandleFunc("/debug/trace", g.handleTrace)
	g.wg.Add(1)
	go g.healthLoop()
	return g, nil
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Metrics exposes the counter set.
func (g *Gateway) Metrics() *Metrics { return g.metrics }

// Tracer exposes the gateway's span ring (tests and trace export).
func (g *Gateway) Tracer() *obs.Tracer { return g.tracer }

// Close stops the health-probe loop. In-flight requests are unaffected.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// healthLoop actively probes every replica's /healthz at the configured
// interval so replicas marked down by a failed forward recover without
// needing a risky live request, and replicas that died quietly are discovered
// before a request has to trip over them.
func (g *Gateway) healthLoop() {
	defer g.wg.Done()
	ticker := time.NewTicker(g.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
			for _, rep := range g.replicas {
				g.probe(rep)
			}
		}
	}
}

// probe checks one replica's liveness endpoint and updates its health state.
func (g *Gateway) probe(rep *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/healthz", nil)
	if err != nil {
		g.setHealth(rep, false)
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.setHealth(rep, false)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	g.setHealth(rep, resp.StatusCode == http.StatusOK)
}

// setHealth records a replica health transition (state plus gauge, logged on
// change).
func (g *Gateway) setHealth(rep *replica, healthy bool) {
	was := rep.healthy.Swap(healthy)
	g.metrics.SetReplicaHealth(rep.url, healthy)
	if was != healthy && g.cfg.Logger != nil {
		state := "down"
		if healthy {
			state = "healthy"
		}
		g.cfg.Logger.Printf("gateway: replica %s is %s", rep.url, state)
	}
}

// routeKey is the rendezvous key of a schedule request: the canonical hash of
// the agent spec the replica's registry will serve it with. Requests for one
// model always land on one replica (while it is healthy), concentrating each
// replica's model cache and cross-request batcher on a stable working set.
func routeKey(req *serve.ScheduleRequest) string {
	kind, err := taskgraph.KindFromString(req.Kind)
	if err != nil {
		// Unroutable kinds are rejected by Validate before routing; this
		// fallback just keeps the key total.
		return "invalid|" + req.Kind
	}
	return exp.DefaultAgentSpec(kind, req.ModelT(), req.CPUs, req.GPUs).Hash()
}

// rank orders replicas for a key: healthy replicas in rendezvous order, then
// unhealthy ones (still in rendezvous order) as last-ditch candidates — a
// fully-down fleet is still tried rather than failed outright, which is what
// lets the first request after a full restart succeed before the next probe
// cycle. Rendezvous (highest-random-weight) hashing keeps the assignment
// stable under membership change: removing one replica only moves the keys
// that replica owned.
func (g *Gateway) rank(key string) []*replica {
	type scored struct {
		rep   *replica
		score string
	}
	all := make([]scored, 0, len(g.replicas))
	for _, rep := range g.replicas {
		all = append(all, scored{rep, exp.HashBytes([]byte(key + "|" + rep.url))})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score > all[j].score })
	out := make([]*replica, 0, len(all))
	for _, s := range all {
		if s.rep.healthy.Load() {
			out = append(out, s.rep)
		}
	}
	for _, s := range all {
		if !s.rep.healthy.Load() {
			out = append(out, s.rep)
		}
	}
	return out
}

// RouteFor returns the URL of the replica a schedule request currently routes
// to: the rendezvous winner among healthy replicas. Exposed for operational
// debugging ("which replica owns this model?") and the smoke harness's
// targeted replica kill.
func (g *Gateway) RouteFor(req *serve.ScheduleRequest) string {
	return g.rank(routeKey(req))[0].url
}

// instrument wraps a handler with request counters, a request ID and an
// overall request span that adopts the caller's trace context (or starts a
// fresh trace), mirroring the serving daemon's instrumentation so gateway
// spans stitch into the same timeline.
func (g *Gateway) instrument(name string, h func(http.ResponseWriter, *http.Request, int64, obs.SpanContext)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := g.reqSeq.Add(1)
		w.Header().Set("X-Request-ID", strconv.FormatInt(id, 10))
		traceID, parentSpan, _ := obs.ExtractTraceContext(r.Header)
		if traceID == "" {
			traceID = obs.NewTraceID()
		}
		sc := obs.SpanContext{TraceID: traceID, SpanID: obs.NewSpanID()}
		w.Header().Set(obs.HeaderTraceID, traceID)
		g.metrics.ObserveRequest(name)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r, id, sc)
		if sw.status >= 400 {
			g.metrics.ObserveError(name)
		}
		g.span("request", name, id, start, obs.SpanArgs(map[string]any{
			"request_id": id, "endpoint": name, "status": sw.status,
		}, sc.TraceID, sc.SpanID, parentSpan))
	}
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// span records a completed slice on the request's lane.
func (g *Gateway) span(name, cat string, tid int64, start time.Time, args map[string]any) {
	ts := float64(start.Sub(g.epoch)) / float64(time.Microsecond)
	g.tracer.Complete(name, cat, gatewayPID, tid, ts,
		float64(time.Since(start))/float64(time.Microsecond), args)
}

func (g *Gateway) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil && g.cfg.Logger != nil {
		g.cfg.Logger.Printf("gateway: writing response: %v", err)
	}
}

func (g *Gateway) writeError(w http.ResponseWriter, status int, err error) {
	g.writeJSON(w, status, serve.ErrorResponse{Error: err.Error()})
}

// forwardResult is one attempt's outcome.
type forwardResult struct {
	status int
	header http.Header
	body   []byte
}

// forward sends body to one replica's path. Each attempt carries its own span
// identity in the outbound trace headers, so the replica's request span
// becomes a child of this attempt's "forward" span — the cross-process link
// readys-obs-check -links resolves.
func (g *Gateway) forward(ctx context.Context, rep *replica, method, path string, body []byte, tid int64, sc obs.SpanContext) (forwardResult, error) {
	start := time.Now()
	attempt := obs.SpanContext{TraceID: sc.TraceID, SpanID: obs.NewSpanID()}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rep.url+path, rd)
	if err != nil {
		return forwardResult{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	attempt.Inject(req.Header)
	g.metrics.ObserveReplicaRequest(rep.url)
	res := forwardResult{}
	resp, err := g.client.Do(req)
	if err == nil {
		res.status = resp.StatusCode
		res.header = resp.Header
		res.body, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	g.span("forward", "proxy", tid, start, obs.SpanArgs(map[string]any{
		"replica": rep.url, "path": path, "status": res.status,
	}, attempt.TraceID, attempt.SpanID, sc.SpanID))
	return res, err
}

// proxy forwards a request across the ranked candidates with jittered-backoff
// failover: transport errors and 5xx answers mark the replica down and move
// on; any other status is the application's answer and is relayed verbatim.
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request, method, path string, body []byte, candidates []*replica, tid int64, sc obs.SpanContext) {
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()

	attempts := g.cfg.Retries + 1
	if attempts > len(candidates) {
		attempts = len(candidates)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			g.metrics.Failover()
			select {
			case <-time.After(fleet.BackoffDelay(g.cfg.RetryBase, i)):
			case <-ctx.Done():
				g.writeError(w, http.StatusGatewayTimeout, fmt.Errorf("gateway: request exceeded %s", g.cfg.RequestTimeout))
				return
			}
		}
		rep := candidates[i]
		res, err := g.forward(ctx, rep, method, path, body, tid, sc)
		if !fleet.Retriable(res.status, err) {
			// The replica answered (2xx..4xx): relay its response verbatim.
			if ct := res.header.Get("Content-Type"); ct != "" {
				w.Header().Set("Content-Type", ct)
			}
			w.WriteHeader(res.status)
			w.Write(res.body)
			return
		}
		// Transport error or 5xx: the replica is suspect. Mark it down so
		// concurrent requests skip it until a health probe sees it recover.
		g.setHealth(rep, false)
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("replica %s answered %d", rep.url, res.status)
		}
		if g.cfg.Logger != nil {
			g.cfg.Logger.Printf("gateway: %s %s via %s failed (attempt %d/%d): %v", method, path, rep.url, i+1, attempts, lastErr)
		}
		if ctx.Err() != nil {
			break
		}
	}
	g.writeError(w, http.StatusBadGateway, fmt.Errorf("gateway: all %d candidate replicas failed: %w", attempts, lastErr))
}

// handleSchedule routes POST /v1/schedule by model identity and fails over
// on replica death.
func (g *Gateway) handleSchedule(w http.ResponseWriter, r *http.Request, tid int64, sc obs.SpanContext) {
	if r.Method != http.MethodPost {
		g.writeError(w, http.StatusMethodNotAllowed, errors.New("gateway: use POST"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		g.writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("gateway: reading request: %w", err))
		return
	}
	var req serve.ScheduleRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		g.writeError(w, http.StatusBadRequest, fmt.Errorf("gateway: decoding request: %w", err))
		return
	}
	// Validate before routing: malformed requests are answered here instead
	// of burning a replica round-trip (and a potential failover sequence) on
	// a request no replica could serve.
	if err := req.Validate(); err != nil {
		g.writeError(w, http.StatusBadRequest, err)
		return
	}
	g.proxy(w, r, http.MethodPost, "/v1/schedule", body, g.rank(routeKey(&req)), tid, sc)
}

// handleModels proxies GET /v1/models from any healthy replica. Replicas
// front the same checkpoint directory, so one answer represents the fleet.
func (g *Gateway) handleModels(w http.ResponseWriter, r *http.Request, tid int64, sc obs.SpanContext) {
	if r.Method != http.MethodGet {
		g.writeError(w, http.StatusMethodNotAllowed, errors.New("gateway: use GET"))
		return
	}
	g.proxy(w, r, http.MethodGet, "/v1/models", nil, g.rank("models"), tid, sc)
}

// handleHealthz reports the gateway's own liveness plus per-replica health.
// The gateway is "ok" while at least one replica is healthy; with none it
// answers 503 so a fronting load balancer can drain it.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request, tid int64, sc obs.SpanContext) {
	if r.Method != http.MethodGet {
		g.writeError(w, http.StatusMethodNotAllowed, errors.New("gateway: use GET"))
		return
	}
	reps := make(map[string]bool, len(g.replicas))
	anyHealthy := false
	for _, rep := range g.replicas {
		h := rep.healthy.Load()
		reps[rep.url] = h
		anyHealthy = anyHealthy || h
	}
	status := http.StatusOK
	state := "ok"
	if !anyHealthy {
		status = http.StatusServiceUnavailable
		state = "no healthy replicas"
	}
	g.writeJSON(w, status, map[string]any{
		"status":         state,
		"replicas":       reps,
		"uptime_seconds": time.Since(g.epoch).Seconds(),
	})
}

// handleMetrics serves the gateway's counters: Prometheus text exposition
// with ?format=prometheus, a JSON tree otherwise.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request, tid int64, sc obs.SpanContext) {
	if r.Method != http.MethodGet {
		g.writeError(w, http.StatusMethodNotAllowed, errors.New("gateway: use GET"))
		return
	}
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := g.metrics.WritePrometheus(w); err != nil && g.cfg.Logger != nil {
			g.cfg.Logger.Printf("gateway: writing prometheus metrics: %v", err)
		}
		return
	}
	g.writeJSON(w, http.StatusOK, g.metrics.Snapshot())
}

// handleTrace exports the gateway's span ring as Chrome trace-event JSON.
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		g.writeError(w, http.StatusMethodNotAllowed, errors.New("gateway: use GET"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := g.tracer.WriteChromeTrace(w); err != nil && g.cfg.Logger != nil {
		g.cfg.Logger.Printf("gateway: writing trace: %v", err)
	}
}
