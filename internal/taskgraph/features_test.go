package taskgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDescendantFeaturesChain(t *testing.T) {
	// Chain 0→1→2 with kernels 0,1,2: F̄(2)=e2, F̄(1)=e1+e2, F̄(0)=e0+e1+e2.
	g := newGraph(Random, 0, [NumKernels]string{"a", "b", "c", "d"})
	a := g.AddTask(0, "A")
	b := g.AddTask(1, "B")
	c := g.AddTask(2, "C")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	f := DescendantFeatures(g)
	want := [][NumKernels]float64{
		{1, 1, 1, 0},
		{0, 1, 1, 0},
		{0, 0, 1, 0},
	}
	for i := range want {
		for k := 0; k < NumKernels; k++ {
			if math.Abs(f[i][k]-want[i][k]) > 1e-12 {
				t.Fatalf("F[%d][%d] = %v, want %v", i, k, f[i][k], want[i][k])
			}
		}
	}
}

func TestDescendantFeaturesDiamondSplit(t *testing.T) {
	// Diamond: 0→{1,2}→3. Node 3 (kernel 3, two parents) contributes 1/2 to
	// each parent.
	g := newGraph(Random, 0, [NumKernels]string{"a", "b", "c", "d"})
	a := g.AddTask(0, "A")
	b := g.AddTask(1, "B")
	c := g.AddTask(1, "C")
	d := g.AddTask(3, "D")
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	f := DescendantFeatures(g)
	if math.Abs(f[b][3]-0.5) > 1e-12 || math.Abs(f[c][3]-0.5) > 1e-12 {
		t.Fatalf("split wrong: f[b][3]=%v f[c][3]=%v", f[b][3], f[c][3])
	}
	// Root's F is 1 for every kernel type present and 0 otherwise.
	if f[a][0] != 1 || f[a][1] != 1 || f[a][3] != 1 || f[a][2] != 0 {
		t.Fatalf("root F = %v", f[a])
	}
}

func TestDescendantFeaturesRootIsOne(t *testing.T) {
	for _, g := range []*Graph{NewCholesky(6), NewLU(5), NewQR(5)} {
		f := DescendantFeatures(g)
		root := g.Roots()[0]
		counts := g.KernelCounts()
		for k := 0; k < NumKernels; k++ {
			want := 0.0
			if counts[k] > 0 {
				want = 1.0
			}
			if math.Abs(f[root][k]-want) > 1e-9 {
				t.Fatalf("%v root F[%d] = %v, want %v", g.Kind, k, f[root][k], want)
			}
		}
	}
}

func TestDescendantFeaturesBoundedProperty(t *testing.T) {
	// Every F component lies in [0,1] for any DAG.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewLayeredRandom(rng, DefaultRandomConfig())
		feats := DescendantFeatures(g)
		for _, row := range feats {
			for _, v := range row {
				if v < -1e-12 || v > 1+1e-9 || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDescendantFeaturesRootSumEqualsTaskCounts(t *testing.T) {
	// The unnormalised invariant: summing F̄ over the roots of the DAG gives
	// the kernel-type task counts. We verify it through the normalised output
	// by checking that F over roots sums to exactly 1 per present type.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := NewLayeredRandom(rng, DefaultRandomConfig())
		f := DescendantFeatures(g)
		counts := g.KernelCounts()
		var rootSum [NumKernels]float64
		for _, r := range g.Roots() {
			for k := 0; k < NumKernels; k++ {
				rootSum[k] += f[r][k]
			}
		}
		for k := 0; k < NumKernels; k++ {
			if counts[k] == 0 {
				if rootSum[k] != 0 {
					t.Fatalf("absent kernel %d has F mass %v", k, rootSum[k])
				}
				continue
			}
			if math.Abs(rootSum[k]-1) > 1e-9 {
				t.Fatalf("root F mass for kernel %d = %v, want 1", k, rootSum[k])
			}
		}
	}
}

func TestDescendantFeaturesMonotoneAlongChain(t *testing.T) {
	// Walking down any edge cannot increase a task's F component beyond its
	// parent's when the parent is the only predecessor... in general F is not
	// monotone, but on the Cholesky sink chain POTRF(T-1) the GEMM share must
	// shrink to zero.
	g := NewCholesky(6)
	f := DescendantFeatures(g)
	sink := g.Sinks()[0]
	if f[sink][KGEMM] != 0 || f[sink][KPOTRF] == 0 {
		t.Fatalf("sink F = %v", f[sink])
	}
}

func TestWindowDepthZero(t *testing.T) {
	g := NewCholesky(4)
	running := []int{0}
	w := Window(g, running, nil, 0)
	if len(w) != 1 || w[0] != 0 {
		t.Fatalf("w=0 window = %v", w)
	}
}

func TestWindowGrowsWithDepth(t *testing.T) {
	g := NewCholesky(6)
	root := g.Roots()[0]
	prev := 0
	for w := 0; w <= 4; w++ {
		win := Window(g, nil, []int{root}, w)
		if len(win) < prev {
			t.Fatalf("window shrank at w=%d", w)
		}
		prev = len(win)
	}
	// With a large enough window everything reachable is included.
	all := Window(g, nil, []int{root}, g.NumTasks())
	if len(all) != g.NumTasks() {
		t.Fatalf("full window = %d tasks, want %d", len(all), g.NumTasks())
	}
}

func TestWindowMinDepthSemantics(t *testing.T) {
	// Diamond 0→{1,2}→3 plus long path 0→4→5→3: depth of 3 from {0} is 2 via
	// the diamond, so it must appear in a w=2 window even though another path
	// has length 3.
	g := newGraph(Random, 0, [NumKernels]string{"a", "b", "c", "d"})
	n0 := g.AddTask(0, "0")
	n1 := g.AddTask(0, "1")
	n2 := g.AddTask(0, "2")
	n3 := g.AddTask(0, "3")
	n4 := g.AddTask(0, "4")
	n5 := g.AddTask(0, "5")
	g.AddEdge(n0, n1)
	g.AddEdge(n0, n2)
	g.AddEdge(n1, n3)
	g.AddEdge(n2, n3)
	g.AddEdge(n0, n4)
	g.AddEdge(n4, n5)
	g.AddEdge(n5, n3)
	win := Window(g, nil, []int{n0}, 2)
	if !contains(win, n3) {
		t.Fatalf("n3 at min depth 2 missing from w=2 window: %v", win)
	}
	win1 := Window(g, nil, []int{n0}, 1)
	if contains(win1, n3) {
		t.Fatalf("n3 must not be in w=1 window: %v", win1)
	}
}

func TestWindowUnionOfSources(t *testing.T) {
	g := NewCholesky(4)
	running := []int{0}
	trsm := g.Succ[0][0]
	win := Window(g, running, []int{trsm}, 0)
	if len(win) != 2 {
		t.Fatalf("window should hold both sources, got %v", win)
	}
}

func TestWindowSortedProperty(t *testing.T) {
	f := func(seed int64, w8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewLayeredRandom(rng, DefaultRandomConfig())
		roots := g.Roots()
		win := Window(g, nil, roots, int(w8%4))
		for i := 1; i < len(win); i++ {
			if win[i-1] >= win[i] {
				return false
			}
		}
		return len(win) >= len(roots)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
