package taskgraph

import "fmt"

// LU kernel indices. GETRF factorises the diagonal tile, TRSML solves the
// column panel below it, TRSMU the row panel to its right, and GEMM updates
// the trailing submatrix.
const (
	KGETRF Kernel = iota
	KTRSML
	KTRSMU
	KGEMMLU
)

// NewLU builds the task graph of the tiled LU factorisation (without
// pivoting, as in the accelerator-oriented variant of Agullo et al. [3]) of a
// T x T tile matrix:
//
//	#GETRF = T, #TRSML = #TRSMU = T(T-1)/2, #GEMM = T(T-1)(2T-1)/6,
//
// a total of T(T+1)(2T+1)/6 tasks (30 for T=4).
func NewLU(T int) *Graph {
	if T < 1 {
		panic(fmt.Sprintf("taskgraph: LU needs T >= 1, got %d", T))
	}
	g := newGraph(LU, T, [NumKernels]string{"GETRF", "TRSM_L", "TRSM_U", "GEMM"})

	getrf := make([]int, T)
	trsmL := grid2(T) // trsmL[i][k]: tile A(i,k), i > k
	trsmU := grid2(T) // trsmU[j][k]: tile A(k,j), j > k
	gemm := grid3(T)  // gemm[i][j][k]: update of A(i,j) at step k; i,j > k

	for k := 0; k < T; k++ {
		getrf[k] = g.AddTask(KGETRF, fmt.Sprintf("GETRF(%d)", k))
		if k > 0 {
			g.AddEdge(gemm[k][k][k-1], getrf[k])
		}
		for i := k + 1; i < T; i++ {
			trsmL[i][k] = g.AddTask(KTRSML, fmt.Sprintf("TRSM_L(%d,%d)", i, k))
			g.AddEdge(getrf[k], trsmL[i][k])
			if k > 0 {
				g.AddEdge(gemm[i][k][k-1], trsmL[i][k])
			}
		}
		for j := k + 1; j < T; j++ {
			trsmU[j][k] = g.AddTask(KTRSMU, fmt.Sprintf("TRSM_U(%d,%d)", k, j))
			g.AddEdge(getrf[k], trsmU[j][k])
			if k > 0 {
				g.AddEdge(gemm[k][j][k-1], trsmU[j][k])
			}
		}
		for i := k + 1; i < T; i++ {
			for j := k + 1; j < T; j++ {
				gemm[i][j][k] = g.AddTask(KGEMMLU, fmt.Sprintf("GEMM(%d,%d,%d)", i, j, k))
				g.AddEdge(trsmL[i][k], gemm[i][j][k])
				g.AddEdge(trsmU[j][k], gemm[i][j][k])
				if k > 0 {
					g.AddEdge(gemm[i][j][k-1], gemm[i][j][k])
				}
			}
		}
	}
	return g
}

// LUTaskCount returns the closed-form number of tasks of the tiled LU DAG:
// T(T+1)(2T+1)/6.
func LUTaskCount(T int) int { return T * (T + 1) * (2*T + 1) / 6 }
