package taskgraph

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestCholeskyTaskCounts(t *testing.T) {
	// The paper (§V-F) quotes 20, 56, 120, 220 and 364 tasks for
	// T = 4, 6, 8, 10, 12.
	want := map[int]int{4: 20, 6: 56, 8: 120, 10: 220, 12: 364}
	for T, n := range want {
		g := NewCholesky(T)
		if g.NumTasks() != n {
			t.Fatalf("Cholesky T=%d has %d tasks, paper says %d", T, g.NumTasks(), n)
		}
		if CholeskyTaskCount(T) != n {
			t.Fatalf("CholeskyTaskCount(%d) = %d, want %d", T, CholeskyTaskCount(T), n)
		}
	}
}

func TestTaskCountFormulasProperty(t *testing.T) {
	f := func(t8 uint8) bool {
		T := int(t8%12) + 1
		return NewCholesky(T).NumTasks() == CholeskyTaskCount(T) &&
			NewLU(T).NumTasks() == LUTaskCount(T) &&
			NewQR(T).NumTasks() == QRTaskCount(T)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLUKernelCounts(t *testing.T) {
	T := 5
	g := NewLU(T)
	c := g.KernelCounts()
	if c[KGETRF] != T {
		t.Fatalf("#GETRF = %d", c[KGETRF])
	}
	if c[KTRSML] != T*(T-1)/2 || c[KTRSMU] != T*(T-1)/2 {
		t.Fatalf("#TRSM = %d/%d", c[KTRSML], c[KTRSMU])
	}
	if c[KGEMMLU] != (T-1)*T*(2*T-1)/6 {
		t.Fatalf("#GEMM = %d", c[KGEMMLU])
	}
}

func TestQRKernelCounts(t *testing.T) {
	T := 5
	g := NewQR(T)
	c := g.KernelCounts()
	if c[KGEQRT] != T || c[KORMQR] != T*(T-1)/2 || c[KTSQRT] != T*(T-1)/2 {
		t.Fatalf("QR counts = %v", c)
	}
	if c[KTSMQR] != (T-1)*T*(2*T-1)/6 {
		t.Fatalf("#TSMQR = %d", c[KTSMQR])
	}
}

// findTask locates a task by name; the generators use deterministic names.
func findTask(t *testing.T, g *Graph, name string) int {
	t.Helper()
	for _, task := range g.Tasks {
		if task.Name == name {
			return task.ID
		}
	}
	t.Fatalf("task %q not found", name)
	return -1
}

func hasEdge(g *Graph, from, to int) bool {
	return contains(g.Succ[from], to)
}

func TestCholeskyDependencySemantics(t *testing.T) {
	g := NewCholesky(4)
	potrf0 := findTask(t, g, "POTRF(0)")
	trsm10 := findTask(t, g, "TRSM(1,0)")
	syrk10 := findTask(t, g, "SYRK(1,0)")
	potrf1 := findTask(t, g, "POTRF(1)")
	gemm210 := findTask(t, g, "GEMM(2,1,0)")
	trsm21 := findTask(t, g, "TRSM(2,1)")
	syrk31 := findTask(t, g, "SYRK(3,1)")
	syrk30 := findTask(t, g, "SYRK(3,0)")
	trsm30 := findTask(t, g, "TRSM(3,0)")

	checks := []struct {
		from, to int
		desc     string
	}{
		{potrf0, trsm10, "TRSM(1,0) needs POTRF(0)"},
		{trsm10, syrk10, "SYRK(1,0) needs TRSM(1,0)"},
		{syrk10, potrf1, "POTRF(1) needs SYRK(1,0)"},
		{gemm210, trsm21, "TRSM(2,1) needs GEMM(2,1,0)"},
		{syrk30, syrk31, "SYRK accumulation chain"},
		{trsm30, gemm210, "GEMM(2,1,0) needs TRSM(2,0)... checked below"},
	}
	// Fix the last expectation properly: GEMM(2,1,0) needs TRSM(2,0) and TRSM(1,0).
	trsm20 := findTask(t, g, "TRSM(2,0)")
	checks[5] = struct {
		from, to int
		desc     string
	}{trsm20, gemm210, "GEMM(2,1,0) needs TRSM(2,0)"}

	for _, c := range checks {
		if !hasEdge(g, c.from, c.to) {
			t.Errorf("missing dependency: %s", c.desc)
		}
	}
	if !hasEdge(g, trsm10, gemm210) {
		t.Error("GEMM(2,1,0) needs TRSM(1,0)")
	}
}

func TestLUDependencySemantics(t *testing.T) {
	g := NewLU(3)
	getrf0 := findTask(t, g, "GETRF(0)")
	trsmL10 := findTask(t, g, "TRSM_L(1,0)")
	trsmU01 := findTask(t, g, "TRSM_U(0,1)")
	gemm110 := findTask(t, g, "GEMM(1,1,0)")
	getrf1 := findTask(t, g, "GETRF(1)")

	if !hasEdge(g, getrf0, trsmL10) || !hasEdge(g, getrf0, trsmU01) {
		t.Error("panel solves need GETRF(0)")
	}
	if !hasEdge(g, trsmL10, gemm110) || !hasEdge(g, trsmU01, gemm110) {
		t.Error("GEMM(1,1,0) needs both panel solves")
	}
	if !hasEdge(g, gemm110, getrf1) {
		t.Error("GETRF(1) needs GEMM(1,1,0)")
	}
}

func TestQRDependencySemantics(t *testing.T) {
	g := NewQR(3)
	geqrt0 := findTask(t, g, "GEQRT(0)")
	ormqr01 := findTask(t, g, "ORMQR(0,1)")
	tsqrt10 := findTask(t, g, "TSQRT(1,0)")
	tsqrt20 := findTask(t, g, "TSQRT(2,0)")
	tsmqr110 := findTask(t, g, "TSMQR(1,1,0)")
	tsmqr210 := findTask(t, g, "TSMQR(2,1,0)")
	geqrt1 := findTask(t, g, "GEQRT(1)")

	if !hasEdge(g, geqrt0, ormqr01) || !hasEdge(g, geqrt0, tsqrt10) {
		t.Error("GEQRT(0) gates ORMQR and first TSQRT")
	}
	if !hasEdge(g, tsqrt10, tsqrt20) {
		t.Error("TSQRT chain must be serialised on the diagonal tile")
	}
	if !hasEdge(g, ormqr01, tsmqr110) {
		t.Error("TSMQR(1,1,0) needs ORMQR(0,1)")
	}
	if !hasEdge(g, tsmqr110, tsmqr210) {
		t.Error("TSMQR chain must be serialised on the top tile row")
	}
	if !hasEdge(g, tsmqr110, geqrt1) {
		t.Error("GEQRT(1) needs TSMQR(1,1,0)")
	}
}

func TestSingleRootSingleSinkFamilies(t *testing.T) {
	for T := 2; T <= 8; T++ {
		for _, g := range []*Graph{NewCholesky(T), NewLU(T), NewQR(T)} {
			if len(g.Roots()) != 1 {
				t.Fatalf("%v T=%d has %d roots", g.Kind, T, len(g.Roots()))
			}
		}
	}
}

func TestNewByKind(t *testing.T) {
	if NewByKind(Cholesky, 4).NumTasks() != 20 {
		t.Fatal("NewByKind cholesky wrong")
	}
	if NewByKind(LU, 4).NumTasks() != 30 {
		t.Fatal("NewByKind lu wrong")
	}
	if NewByKind(QR, 4).NumTasks() != 30 {
		t.Fatal("NewByKind qr wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewByKind(Random) should panic")
		}
	}()
	NewByKind(Random, 4)
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, kind := range []Kind{Cholesky, LU, QR} {
		a, b := NewByKind(kind, 6), NewByKind(kind, 6)
		if a.NumTasks() != b.NumTasks() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("%v generator nondeterministic", kind)
		}
		for i := range a.Tasks {
			if a.Tasks[i].Name != b.Tasks[i].Name {
				t.Fatalf("%v task %d name differs", kind, i)
			}
		}
	}
}

func ExampleNewCholesky() {
	g := NewCholesky(4)
	fmt.Println(g.NumTasks(), g.CriticalPathLength())
	// Output: 20 10
}
