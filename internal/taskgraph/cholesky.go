package taskgraph

import "fmt"

// Cholesky kernel indices. POTRF factorises a diagonal tile, TRSM solves a
// triangular system against a panel tile, SYRK updates a diagonal tile and
// GEMM updates an off-diagonal trailing tile.
const (
	KPOTRF Kernel = iota
	KTRSM
	KSYRK
	KGEMM
)

// NewCholesky builds the task graph of the tiled (right-looking) Cholesky
// factorisation of a T x T tile matrix. The accumulation updates on each tile
// are serialised, which yields the classical DAG with
//
//	#POTRF = T, #TRSM = #SYRK = T(T-1)/2, #GEMM = T(T-1)(T-2)/6,
//
// a total of T(T+1)(T+2)/6 tasks (20 for T=4, 56 for T=6, 120 for T=8,
// 220 for T=10, 364 for T=12 — matching §V-F of the paper).
func NewCholesky(T int) *Graph {
	if T < 1 {
		panic(fmt.Sprintf("taskgraph: Cholesky needs T >= 1, got %d", T))
	}
	g := newGraph(Cholesky, T, [NumKernels]string{"POTRF", "TRSM", "SYRK", "GEMM"})

	potrf := make([]int, T)
	trsm := grid2(T) // trsm[i][k], i > k
	syrk := grid2(T) // syrk[i][k], i > k
	gemm := grid3(T) // gemm[i][j][k], i > j > k

	for k := 0; k < T; k++ {
		potrf[k] = g.AddTask(KPOTRF, fmt.Sprintf("POTRF(%d)", k))
		if k > 0 {
			// A(k,k) must carry every update A(k,k) -= A(k,j)A(k,j)ᵀ; the
			// serialised SYRK chain ends at SYRK(k, k-1).
			g.AddEdge(syrk[k][k-1], potrf[k])
		}
		for i := k + 1; i < T; i++ {
			trsm[i][k] = g.AddTask(KTRSM, fmt.Sprintf("TRSM(%d,%d)", i, k))
			g.AddEdge(potrf[k], trsm[i][k])
			if k > 0 {
				g.AddEdge(gemm[i][k][k-1], trsm[i][k])
			}
		}
		for i := k + 1; i < T; i++ {
			syrk[i][k] = g.AddTask(KSYRK, fmt.Sprintf("SYRK(%d,%d)", i, k))
			g.AddEdge(trsm[i][k], syrk[i][k])
			if k > 0 {
				g.AddEdge(syrk[i][k-1], syrk[i][k])
			}
		}
		for i := k + 2; i < T; i++ {
			for j := k + 1; j < i; j++ {
				gemm[i][j][k] = g.AddTask(KGEMM, fmt.Sprintf("GEMM(%d,%d,%d)", i, j, k))
				g.AddEdge(trsm[i][k], gemm[i][j][k])
				g.AddEdge(trsm[j][k], gemm[i][j][k])
				if k > 0 {
					g.AddEdge(gemm[i][j][k-1], gemm[i][j][k])
				}
			}
		}
	}
	return g
}

// CholeskyTaskCount returns the closed-form number of tasks of the tiled
// Cholesky DAG: T(T+1)(T+2)/6.
func CholeskyTaskCount(T int) int { return T * (T + 1) * (T + 2) / 6 }

func grid2(T int) [][]int {
	g := make([][]int, T)
	for i := range g {
		g[i] = make([]int, T)
		for j := range g[i] {
			g[i][j] = -1
		}
	}
	return g
}

func grid3(T int) [][][]int {
	g := make([][][]int, T)
	for i := range g {
		g[i] = grid2(T)
	}
	return g
}
