package taskgraph

import "fmt"

// Additional DAG families beyond the paper's three factorisation kernels.
// They stress different scheduling regimes: Gemm is embarrassingly parallel
// with long independent chains, Stencil is a tight wavefront pipeline where
// the parallelism front grows and shrinks, and ForkJoin alternates between
// wide parallel sections and serial bottlenecks.

// GEMM kernel indices (tiled C = A·B + C). The multiply-accumulate chains use
// a single kernel type; the other three index the load/store phases.
const (
	KLoadA Kernel = iota
	KLoadB
	KStoreC
	KMulAcc
)

// NewGemm builds the task graph of a tiled matrix product C = A·B with T
// tiles per dimension: for every output tile (i,j), a serialised chain of T
// multiply-accumulate tasks followed by a store, preceded by the loads of the
// needed A-row and B-column tiles. Total tasks: 2T² loads + T³ multiplies +
// T² stores.
func NewGemm(T int) *Graph {
	if T < 1 {
		panic(fmt.Sprintf("taskgraph: Gemm needs T >= 1, got %d", T))
	}
	g := newGraph(Gemm, T, [NumKernels]string{"LOAD_A", "LOAD_B", "STORE_C", "GEMM"})
	loadA := grid2(T)
	loadB := grid2(T)
	for i := 0; i < T; i++ {
		for k := 0; k < T; k++ {
			loadA[i][k] = g.AddTask(KLoadA, fmt.Sprintf("LOAD_A(%d,%d)", i, k))
			loadB[i][k] = g.AddTask(KLoadB, fmt.Sprintf("LOAD_B(%d,%d)", i, k))
		}
	}
	for i := 0; i < T; i++ {
		for j := 0; j < T; j++ {
			prev := -1
			for k := 0; k < T; k++ {
				m := g.AddTask(KMulAcc, fmt.Sprintf("GEMM(%d,%d,%d)", i, j, k))
				g.AddEdge(loadA[i][k], m)
				g.AddEdge(loadB[k][j], m)
				if prev != -1 {
					g.AddEdge(prev, m)
				}
				prev = m
			}
			st := g.AddTask(KStoreC, fmt.Sprintf("STORE_C(%d,%d)", i, j))
			g.AddEdge(prev, st)
		}
	}
	return g
}

// GemmTaskCount returns the closed-form task count of NewGemm:
// 2T² + T³ + T².
func GemmTaskCount(T int) int { return T*T*T + 3*T*T }

// Stencil kernel indices: tasks are typed by their position in the grid,
// which gives the four kernels different frequencies and dependency roles.
const (
	KCorner Kernel = iota
	KEdgeRow
	KEdgeCol
	KInterior
)

// NewStencil builds a T x T wavefront (pipeline) DAG: cell (i,j) depends on
// (i-1,j) and (i,j-1), the dependency pattern of Smith-Waterman, LU panels or
// 2D Gauss-Seidel sweeps. The parallel front grows to width T mid-sweep and
// shrinks back to 1, stressing schedulers under varying parallelism. T² tasks.
func NewStencil(T int) *Graph {
	if T < 1 {
		panic(fmt.Sprintf("taskgraph: Stencil needs T >= 1, got %d", T))
	}
	g := newGraph(Stencil, T, [NumKernels]string{"CORNER", "EDGE_ROW", "EDGE_COL", "INTERIOR"})
	id := grid2(T)
	for i := 0; i < T; i++ {
		for j := 0; j < T; j++ {
			k := KInterior
			switch {
			case i == 0 && j == 0:
				k = KCorner
			case i == 0:
				k = KEdgeRow
			case j == 0:
				k = KEdgeCol
			}
			id[i][j] = g.AddTask(k, fmt.Sprintf("CELL(%d,%d)", i, j))
			if i > 0 {
				g.AddEdge(id[i-1][j], id[i][j])
			}
			if j > 0 {
				g.AddEdge(id[i][j-1], id[i][j])
			}
		}
	}
	return g
}

// StencilTaskCount returns T².
func StencilTaskCount(T int) int { return T * T }

// Fork-join kernel indices.
const (
	KFork Kernel = iota
	KWork
	KJoin
	KReduce
)

// NewForkJoin builds a fork-join pipeline with `stages` serial stages of
// `width` parallel workers each: fork → width×work → join per stage, the
// join feeding the next fork, and a final reduce task. Bulk-synchronous
// applications (BSP supersteps, map-reduce rounds) have this shape.
// Total tasks: stages·(width+2) + 1.
func NewForkJoin(stages, width int) *Graph {
	if stages < 1 || width < 1 {
		panic(fmt.Sprintf("taskgraph: ForkJoin needs stages, width >= 1, got %d, %d", stages, width))
	}
	g := newGraph(ForkJoin, stages, [NumKernels]string{"FORK", "WORK", "JOIN", "REDUCE"})
	prevJoin := -1
	for s := 0; s < stages; s++ {
		fork := g.AddTask(KFork, fmt.Sprintf("FORK(%d)", s))
		if prevJoin != -1 {
			g.AddEdge(prevJoin, fork)
		}
		join := g.AddTask(KJoin, fmt.Sprintf("JOIN(%d)", s))
		for w := 0; w < width; w++ {
			work := g.AddTask(KWork, fmt.Sprintf("WORK(%d,%d)", s, w))
			g.AddEdge(fork, work)
			g.AddEdge(work, join)
		}
		prevJoin = join
	}
	reduce := g.AddTask(KReduce, "REDUCE")
	g.AddEdge(prevJoin, reduce)
	return g
}

// ForkJoinTaskCount returns stages·(width+2) + 1.
func ForkJoinTaskCount(stages, width int) int { return stages*(width+2) + 1 }
