// Package taskgraph models the directed acyclic task graphs scheduled by
// READYS and generates the three tiled dense linear-algebra DAG families the
// paper evaluates on: Cholesky, LU and QR factorisations (§V-A), plus layered
// random DAGs for generality testing.
//
// Each DAG family uses exactly four kernel types (the paper's "small number
// (typically 4) of kernels"); kernels index the per-resource timing tables in
// package platform. The package also computes the per-task descendant-type
// feature F(i) of §III-B and the sliding-window sub-DAG extraction that
// defines the READYS state.
package taskgraph

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Kernel identifies one of the four computational kernels of a DAG family.
// The integer value indexes timing tables; the human-readable name depends on
// the family (e.g. kernel 0 is POTRF for Cholesky, GETRF for LU, GEQRT for QR).
type Kernel int

// NumKernels is the number of kernel types per DAG family.
const NumKernels = 4

// Kind enumerates the DAG families.
type Kind int

// DAG families. Cholesky, LU and QR are the paper's evaluation kernels;
// Gemm, Stencil, ForkJoin and Random are additional families for generality
// testing.
const (
	Cholesky Kind = iota
	LU
	QR
	Random
	Gemm
	Stencil
	ForkJoin
)

// String returns the family name.
func (k Kind) String() string {
	switch k {
	case Cholesky:
		return "cholesky"
	case LU:
		return "lu"
	case QR:
		return "qr"
	case Random:
		return "random"
	case Gemm:
		return "gemm"
	case Stencil:
		return "stencil"
	case ForkJoin:
		return "forkjoin"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// KindFromString parses a family name as produced by Kind.String.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "cholesky":
		return Cholesky, nil
	case "lu":
		return LU, nil
	case "qr":
		return QR, nil
	case "random":
		return Random, nil
	case "gemm":
		return Gemm, nil
	case "stencil":
		return Stencil, nil
	case "forkjoin":
		return ForkJoin, nil
	default:
		return 0, fmt.Errorf("taskgraph: unknown DAG kind %q", s)
	}
}

// MarshalJSON encodes the family as its name, so serialised specs (fleet
// jobs, checkpoints metadata) read "cholesky" rather than an opaque integer.
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON parses a family name produced by MarshalJSON.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := KindFromString(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// Task is one vertex of the DAG.
type Task struct {
	ID     int
	Kernel Kernel
	// Name is a human-readable label such as "GEMM(3,2,1)".
	Name string
}

// Graph is a directed acyclic task graph. Tasks are identified by their index
// in Tasks; Succ[i] and Pred[i] list the direct successors and predecessors
// of task i.
type Graph struct {
	Kind  Kind
	Tiles int // tile count T for factorisation DAGs, 0 for random DAGs
	Tasks []Task
	Succ  [][]int
	Pred  [][]int

	// KernelNames maps kernel indices to family-specific names.
	KernelNames [NumKernels]string

	edgeSet map[[2]int]struct{}
}

// newGraph allocates an empty graph of the given family.
func newGraph(kind Kind, tiles int, kernelNames [NumKernels]string) *Graph {
	return &Graph{
		Kind:        kind,
		Tiles:       tiles,
		KernelNames: kernelNames,
		edgeSet:     make(map[[2]int]struct{}),
	}
}

// NewCustom returns an empty graph to be populated with AddTask/AddEdge —
// the entry point for scheduling application DAGs that are not one of the
// built-in factorisation families. Kernel indices in the new graph index the
// timing table of the given kind.
func NewCustom(kind Kind, kernelNames [NumKernels]string) *Graph {
	return newGraph(kind, 0, kernelNames)
}

// AddTask appends a task and returns its ID.
func (g *Graph) AddTask(kernel Kernel, name string) int {
	if kernel < 0 || kernel >= NumKernels {
		panic(fmt.Sprintf("taskgraph: kernel %d out of range", kernel))
	}
	id := len(g.Tasks)
	g.Tasks = append(g.Tasks, Task{ID: id, Kernel: kernel, Name: name})
	g.Succ = append(g.Succ, nil)
	g.Pred = append(g.Pred, nil)
	return id
}

// AddEdge records the dependency from → to (from must complete before to may
// start). Duplicate edges are ignored; self-edges panic.
func (g *Graph) AddEdge(from, to int) {
	if from == to {
		panic(fmt.Sprintf("taskgraph: self-edge on task %d", from))
	}
	if from < 0 || from >= len(g.Tasks) || to < 0 || to >= len(g.Tasks) {
		panic(fmt.Sprintf("taskgraph: edge (%d,%d) out of range for %d tasks", from, to, len(g.Tasks)))
	}
	if g.edgeSet == nil {
		g.edgeSet = make(map[[2]int]struct{})
	}
	key := [2]int{from, to}
	if _, dup := g.edgeSet[key]; dup {
		return
	}
	g.edgeSet[key] = struct{}{}
	g.Succ[from] = append(g.Succ[from], to)
	g.Pred[to] = append(g.Pred[to], from)
}

// NumTasks returns the number of vertices.
func (g *Graph) NumTasks() int { return len(g.Tasks) }

// NumEdges returns the number of dependency edges.
func (g *Graph) NumEdges() int {
	var n int
	for _, s := range g.Succ {
		n += len(s)
	}
	return n
}

// Roots returns the tasks with no predecessors, in ID order.
func (g *Graph) Roots() []int {
	var roots []int
	for i := range g.Tasks {
		if len(g.Pred[i]) == 0 {
			roots = append(roots, i)
		}
	}
	return roots
}

// Sinks returns the tasks with no successors, in ID order.
func (g *Graph) Sinks() []int {
	var sinks []int
	for i := range g.Tasks {
		if len(g.Succ[i]) == 0 {
			sinks = append(sinks, i)
		}
	}
	return sinks
}

// TopoOrder returns a topological ordering of the tasks, or an error if the
// graph contains a cycle (Kahn's algorithm; ties broken by smallest ID for
// determinism).
func (g *Graph) TopoOrder() ([]int, error) {
	n := g.NumTasks()
	indeg := make([]int, n)
	for i := range g.Pred {
		indeg[i] = len(g.Pred[i])
	}
	// Min-ID frontier keeps the order deterministic.
	frontier := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	order := make([]int, 0, n)
	for len(frontier) > 0 {
		sort.Ints(frontier)
		next := frontier[0]
		frontier = frontier[1:]
		order = append(order, next)
		for _, s := range g.Succ[next] {
			indeg[s]--
			if indeg[s] == 0 {
				frontier = append(frontier, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("taskgraph: graph has a cycle (%d of %d tasks ordered)", len(order), n)
	}
	return order, nil
}

// Validate checks structural soundness: edge endpoints in range, Succ/Pred
// consistency, no duplicate edges, acyclicity.
func (g *Graph) Validate() error {
	n := g.NumTasks()
	if len(g.Succ) != n || len(g.Pred) != n {
		return fmt.Errorf("taskgraph: adjacency size mismatch")
	}
	seen := make(map[[2]int]struct{})
	for i, succ := range g.Succ {
		for _, j := range succ {
			if j < 0 || j >= n {
				return fmt.Errorf("taskgraph: successor %d of task %d out of range", j, i)
			}
			key := [2]int{i, j}
			if _, dup := seen[key]; dup {
				return fmt.Errorf("taskgraph: duplicate edge (%d,%d)", i, j)
			}
			seen[key] = struct{}{}
			if !contains(g.Pred[j], i) {
				return fmt.Errorf("taskgraph: edge (%d,%d) missing from Pred", i, j)
			}
		}
	}
	for j, pred := range g.Pred {
		for _, i := range pred {
			if !contains(g.Succ[i], j) {
				return fmt.Errorf("taskgraph: pred edge (%d,%d) missing from Succ", i, j)
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// KernelCounts returns the number of tasks of each kernel type.
func (g *Graph) KernelCounts() [NumKernels]int {
	var c [NumKernels]int
	for _, t := range g.Tasks {
		c[t.Kernel]++
	}
	return c
}

// CriticalPathLength returns the length (in tasks) of the longest path.
func (g *Graph) CriticalPathLength() int {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	depth := make([]int, g.NumTasks())
	best := 0
	for _, i := range order {
		d := 1
		for _, p := range g.Pred[i] {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[i] = d
		if d > best {
			best = d
		}
	}
	return best
}

// Descendants returns the set (as a sorted slice) of tasks reachable from id.
func (g *Graph) Descendants(id int) []int {
	seen := make(map[int]bool)
	stack := append([]int(nil), g.Succ[id]...)
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[t] {
			continue
		}
		seen[t] = true
		stack = append(stack, g.Succ[t]...)
	}
	out := make([]int, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
