package taskgraph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddTaskAndEdge(t *testing.T) {
	g := newGraph(Random, 0, [NumKernels]string{"a", "b", "c", "d"})
	a := g.AddTask(0, "A")
	b := g.AddTask(1, "B")
	g.AddEdge(a, b)
	g.AddEdge(a, b) // duplicate ignored
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (dup must be ignored)", g.NumEdges())
	}
	if len(g.Succ[a]) != 1 || g.Succ[a][0] != b || len(g.Pred[b]) != 1 || g.Pred[b][0] != a {
		t.Fatal("adjacency wrong")
	}
}

func TestSelfEdgePanics(t *testing.T) {
	g := newGraph(Random, 0, [NumKernels]string{"a", "b", "c", "d"})
	a := g.AddTask(0, "A")
	defer func() {
		if recover() == nil {
			t.Fatal("self edge should panic")
		}
	}()
	g.AddEdge(a, a)
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := NewCholesky(5)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.NumTasks())
	for p, id := range order {
		pos[id] = p
	}
	for i, succ := range g.Succ {
		for _, j := range succ {
			if pos[i] >= pos[j] {
				t.Fatalf("edge (%d,%d) violated by topo order", i, j)
			}
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := newGraph(Random, 0, [NumKernels]string{"a", "b", "c", "d"})
	a := g.AddTask(0, "A")
	b := g.AddTask(0, "B")
	c := g.AddTask(0, "C")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, a)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate must reject cycles")
	}
}

func TestRootsAndSinks(t *testing.T) {
	g := NewCholesky(4)
	roots := g.Roots()
	if len(roots) != 1 || g.Tasks[roots[0]].Name != "POTRF(0)" {
		t.Fatalf("Cholesky root = %v", roots)
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || g.Tasks[sinks[0]].Name != "POTRF(3)" {
		t.Fatalf("Cholesky sink = %v (names %v)", sinks, taskNames(g, sinks))
	}
}

func TestCriticalPathCholesky(t *testing.T) {
	// For the serialized-accumulation tiled Cholesky, the critical path is
	// POTRF(0) TRSM(1,0) SYRK(1,0) POTRF(1) ... = 3(T-1)+1 tasks.
	for T := 1; T <= 8; T++ {
		g := NewCholesky(T)
		want := 3*(T-1) + 1
		if got := g.CriticalPathLength(); got != want {
			t.Fatalf("T=%d critical path = %d, want %d", T, got, want)
		}
	}
}

func TestDescendants(t *testing.T) {
	g := NewCholesky(3) // 10 tasks, root POTRF(0)
	all := g.Descendants(0)
	if len(all) != g.NumTasks()-1 {
		t.Fatalf("root should reach all others, got %d of %d", len(all), g.NumTasks()-1)
	}
	sink := g.Sinks()[0]
	if len(g.Descendants(sink)) != 0 {
		t.Fatal("sink has no descendants")
	}
}

func TestKernelCounts(t *testing.T) {
	g := NewCholesky(6)
	c := g.KernelCounts()
	if c[KPOTRF] != 6 || c[KTRSM] != 15 || c[KSYRK] != 15 || c[KGEMM] != 20 {
		t.Fatalf("Cholesky T=6 kernel counts = %v", c)
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range []Kind{Cholesky, LU, QR, Random} {
		got, err := KindFromString(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip failed for %v: %v %v", k, got, err)
		}
	}
	if _, err := KindFromString("nope"); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestValidateAllFamilies(t *testing.T) {
	for T := 1; T <= 10; T++ {
		for _, g := range []*Graph{NewCholesky(T), NewLU(T), NewQR(T)} {
			if err := g.Validate(); err != nil {
				t.Fatalf("%v T=%d invalid: %v", g.Kind, T, err)
			}
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := NewCholesky(2)
	var sb strings.Builder
	if err := WriteDOT(&sb, g); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph cholesky", "POTRF(0)", "TRSM(1,0)", "->"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func taskNames(g *Graph, ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Tasks[id].Name
	}
	return out
}

func TestRandomLayeredValidProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := RandomConfig{
			Layers:       2 + r.Intn(8),
			WidthMin:     1 + r.Intn(3),
			WidthMax:     4 + r.Intn(5),
			EdgeProb:     rng.Float64() * 0.6,
			LongEdgeProb: rng.Float64() * 0.2,
		}
		g := NewLayeredRandom(r, cfg)
		return g.Validate() == nil && g.NumTasks() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomLayeredNonRootsHavePreds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewLayeredRandom(rng, DefaultRandomConfig())
	// All roots must be in layer 0: every later-layer task has >= 1 pred.
	roots := g.Roots()
	for _, r := range roots {
		if !strings.Contains(g.Tasks[r].Name, "_L0_") {
			t.Fatalf("root %s not in layer 0", g.Tasks[r].Name)
		}
	}
}
