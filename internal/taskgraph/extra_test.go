package taskgraph

import (
	"testing"
	"testing/quick"
)

func TestGemmStructure(t *testing.T) {
	T := 3
	g := NewGemm(T)
	if g.NumTasks() != GemmTaskCount(T) {
		t.Fatalf("task count %d, want %d", g.NumTasks(), GemmTaskCount(T))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	c := g.KernelCounts()
	if c[KLoadA] != T*T || c[KLoadB] != T*T || c[KStoreC] != T*T || c[KMulAcc] != T*T*T {
		t.Fatalf("kernel counts %v", c)
	}
	// Each multiply chain is serialised: critical path ≥ T (chain) + load + store.
	if cp := g.CriticalPathLength(); cp != T+2 {
		t.Fatalf("critical path %d, want %d", cp, T+2)
	}
	// GEMM(i,j,k) depends on LOAD_A(i,k), LOAD_B(k,j) and the previous chain link.
	m := findTaskByName(t, g, "GEMM(1,2,1)")
	la := findTaskByName(t, g, "LOAD_A(1,1)")
	lb := findTaskByName(t, g, "LOAD_B(1,2)")
	prev := findTaskByName(t, g, "GEMM(1,2,0)")
	for _, dep := range []int{la, lb, prev} {
		if !contains(g.Pred[m], dep) {
			t.Fatalf("GEMM(1,2,1) missing dependency on task %d", dep)
		}
	}
}

func TestStencilStructure(t *testing.T) {
	T := 5
	g := NewStencil(T)
	if g.NumTasks() != StencilTaskCount(T) {
		t.Fatalf("task count %d", g.NumTasks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Wavefront critical path: (0,0) → ... → (T-1,T-1) = 2T-1 tasks.
	if cp := g.CriticalPathLength(); cp != 2*T-1 {
		t.Fatalf("critical path %d, want %d", cp, 2*T-1)
	}
	// Single root (corner) and single sink (opposite corner).
	if len(g.Roots()) != 1 || len(g.Sinks()) != 1 {
		t.Fatalf("roots %v sinks %v", g.Roots(), g.Sinks())
	}
	c := g.KernelCounts()
	if c[KCorner] != 1 || c[KEdgeRow] != T-1 || c[KEdgeCol] != T-1 || c[KInterior] != (T-1)*(T-1) {
		t.Fatalf("kernel counts %v", c)
	}
}

func TestForkJoinStructure(t *testing.T) {
	stages, width := 3, 4
	g := NewForkJoin(stages, width)
	if g.NumTasks() != ForkJoinTaskCount(stages, width) {
		t.Fatalf("task count %d, want %d", g.NumTasks(), ForkJoinTaskCount(stages, width))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Critical path: per stage fork→work→join (3 each) plus the reduce.
	if cp := g.CriticalPathLength(); cp != 3*stages+1 {
		t.Fatalf("critical path %d, want %d", cp, 3*stages+1)
	}
	c := g.KernelCounts()
	if c[KFork] != stages || c[KJoin] != stages || c[KWork] != stages*width || c[KReduce] != 1 {
		t.Fatalf("kernel counts %v", c)
	}
}

func TestExtraFamiliesValidProperty(t *testing.T) {
	f := func(t8 uint8) bool {
		T := int(t8%6) + 1
		return NewGemm(T).Validate() == nil &&
			NewStencil(T).Validate() == nil &&
			NewForkJoin(T, T).Validate() == nil &&
			NewGemm(T).NumTasks() == GemmTaskCount(T) &&
			NewStencil(T).NumTasks() == StencilTaskCount(T)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNewByKindExtraFamilies(t *testing.T) {
	if NewByKind(Gemm, 2).NumTasks() != GemmTaskCount(2) {
		t.Fatal("NewByKind gemm")
	}
	if NewByKind(Stencil, 4).NumTasks() != 16 {
		t.Fatal("NewByKind stencil")
	}
	if NewByKind(ForkJoin, 3).NumTasks() != ForkJoinTaskCount(3, 3) {
		t.Fatal("NewByKind forkjoin")
	}
}

func TestKindStringsExtra(t *testing.T) {
	for _, k := range []Kind{Gemm, Stencil, ForkJoin} {
		got, err := KindFromString(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v", k)
		}
	}
}

func findTaskByName(t *testing.T, g *Graph, name string) int {
	t.Helper()
	for _, task := range g.Tasks {
		if task.Name == name {
			return task.ID
		}
	}
	t.Fatalf("task %q not found", name)
	return -1
}
