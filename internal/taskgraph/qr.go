package taskgraph

import "fmt"

// QR kernel indices. GEQRT factorises the diagonal tile, ORMQR applies its
// reflectors to the row panel, TSQRT eliminates a sub-diagonal tile against
// the diagonal one, and TSMQR applies the corresponding reflectors to the
// trailing rows.
const (
	KGEQRT Kernel = iota
	KORMQR
	KTSQRT
	KTSMQR
)

// NewQR builds the task graph of the tiled QR factorisation with a flat
// elimination tree (the StarPU/PLASMA variant of Agullo et al. [4]) of a
// T x T tile matrix:
//
//	#GEQRT = T, #ORMQR = #TSQRT = T(T-1)/2, #TSMQR = T(T-1)(2T-1)/6,
//
// a total of T(T+1)(2T+1)/6 tasks, the same count as LU but with longer
// serialised chains (TSQRT/TSMQR update two tile rows each, which serialises
// the panel).
func NewQR(T int) *Graph {
	if T < 1 {
		panic(fmt.Sprintf("taskgraph: QR needs T >= 1, got %d", T))
	}
	g := newGraph(QR, T, [NumKernels]string{"GEQRT", "ORMQR", "TSQRT", "TSMQR"})

	geqrt := make([]int, T)
	ormqr := grid2(T) // ormqr[j][k]: apply to A(k,j), j > k
	tsqrt := grid2(T) // tsqrt[i][k]: eliminate A(i,k) against A(k,k), i > k
	tsmqr := grid3(T) // tsmqr[i][j][k]: update A(k,j) and A(i,j); i,j > k

	for k := 0; k < T; k++ {
		geqrt[k] = g.AddTask(KGEQRT, fmt.Sprintf("GEQRT(%d)", k))
		if k > 0 {
			g.AddEdge(tsmqr[k][k][k-1], geqrt[k])
		}
		for j := k + 1; j < T; j++ {
			ormqr[j][k] = g.AddTask(KORMQR, fmt.Sprintf("ORMQR(%d,%d)", k, j))
			g.AddEdge(geqrt[k], ormqr[j][k])
			if k > 0 {
				g.AddEdge(tsmqr[k][j][k-1], ormqr[j][k])
			}
		}
		for i := k + 1; i < T; i++ {
			tsqrt[i][k] = g.AddTask(KTSQRT, fmt.Sprintf("TSQRT(%d,%d)", i, k))
			// TSQRT(i,k) reads/writes A(k,k): serialised chain starting at GEQRT(k).
			if i == k+1 {
				g.AddEdge(geqrt[k], tsqrt[i][k])
			} else {
				g.AddEdge(tsqrt[i-1][k], tsqrt[i][k])
			}
			if k > 0 {
				g.AddEdge(tsmqr[i][k][k-1], tsqrt[i][k])
			}
		}
		for i := k + 1; i < T; i++ {
			for j := k + 1; j < T; j++ {
				tsmqr[i][j][k] = g.AddTask(KTSMQR, fmt.Sprintf("TSMQR(%d,%d,%d)", i, j, k))
				g.AddEdge(tsqrt[i][k], tsmqr[i][j][k])
				// TSMQR(i,j,k) reads/writes A(k,j): chain from ORMQR(k,j).
				if i == k+1 {
					g.AddEdge(ormqr[j][k], tsmqr[i][j][k])
				} else {
					g.AddEdge(tsmqr[i-1][j][k], tsmqr[i][j][k])
				}
				if k > 0 {
					g.AddEdge(tsmqr[i][j][k-1], tsmqr[i][j][k])
				}
			}
		}
	}
	return g
}

// QRTaskCount returns the closed-form number of tasks of the tiled QR DAG:
// T(T+1)(2T+1)/6.
func QRTaskCount(T int) int { return T * (T + 1) * (2*T + 1) / 6 }

// NewByKind dispatches to the generator for the given family with a single
// size parameter T (ForkJoin uses T stages of T workers). Random graphs are
// not supported here — they need an RNG; use NewLayeredRandom.
func NewByKind(kind Kind, T int) *Graph {
	switch kind {
	case Cholesky:
		return NewCholesky(T)
	case LU:
		return NewLU(T)
	case QR:
		return NewQR(T)
	case Gemm:
		return NewGemm(T)
	case Stencil:
		return NewStencil(T)
	case ForkJoin:
		return NewForkJoin(T, T)
	default:
		panic(fmt.Sprintf("taskgraph: NewByKind unsupported kind %v", kind))
	}
}
