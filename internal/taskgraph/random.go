package taskgraph

import (
	"fmt"
	"math/rand"
)

// RandomConfig parameterises the layered random DAG generator used to test
// the scheduler beyond the three factorisation families.
type RandomConfig struct {
	// Layers is the number of layers; edges only go from earlier to later
	// layers, which guarantees acyclicity.
	Layers int
	// WidthMin and WidthMax bound the number of tasks per layer.
	WidthMin, WidthMax int
	// EdgeProb is the probability of an edge between a task and each task of
	// the next layer. Every non-root task receives at least one predecessor
	// from the previous layer so the DAG stays connected layer to layer.
	EdgeProb float64
	// LongEdgeProb is the probability of an additional edge skipping to a
	// random later layer.
	LongEdgeProb float64
}

// DefaultRandomConfig returns a configuration producing DAGs with a shape
// comparable to a mid-size factorisation graph.
func DefaultRandomConfig() RandomConfig {
	return RandomConfig{Layers: 8, WidthMin: 2, WidthMax: 8, EdgeProb: 0.3, LongEdgeProb: 0.05}
}

// NewLayeredRandom generates a random layered DAG. Kernel types are assigned
// uniformly at random across the four types.
func NewLayeredRandom(rng *rand.Rand, cfg RandomConfig) *Graph {
	if cfg.Layers < 1 || cfg.WidthMin < 1 || cfg.WidthMax < cfg.WidthMin {
		panic(fmt.Sprintf("taskgraph: invalid random config %+v", cfg))
	}
	g := newGraph(Random, 0, [NumKernels]string{"K0", "K1", "K2", "K3"})
	layers := make([][]int, cfg.Layers)
	for l := 0; l < cfg.Layers; l++ {
		width := cfg.WidthMin + rng.Intn(cfg.WidthMax-cfg.WidthMin+1)
		for t := 0; t < width; t++ {
			k := Kernel(rng.Intn(NumKernels))
			id := g.AddTask(k, fmt.Sprintf("%s_L%d_%d", g.KernelNames[k], l, t))
			layers[l] = append(layers[l], id)
		}
	}
	for l := 0; l+1 < cfg.Layers; l++ {
		for _, to := range layers[l+1] {
			hasPred := false
			for _, from := range layers[l] {
				if rng.Float64() < cfg.EdgeProb {
					g.AddEdge(from, to)
					hasPred = true
				}
			}
			if !hasPred {
				from := layers[l][rng.Intn(len(layers[l]))]
				g.AddEdge(from, to)
			}
		}
		// Occasional long edges to later layers.
		for _, from := range layers[l] {
			if rng.Float64() < cfg.LongEdgeProb && l+2 < cfg.Layers {
				tl := l + 2 + rng.Intn(cfg.Layers-l-2)
				to := layers[tl][rng.Intn(len(layers[tl]))]
				g.AddEdge(from, to)
			}
		}
	}
	return g
}
