package taskgraph

// DescendantFeatures computes the per-task descendant-type summary F(i) of
// §III-B. The unnormalised form is defined recursively over successors:
//
//	F̄(i) = onehot(type(i)) + Σ_{c ∈ S(i)} F̄(c) / |P(c)|
//
// and F(i) = F̄(i) / F̄(root), componentwise. Splitting each child's vector
// across its |P(c)| parents makes Σ over the roots of each component equal to
// the number of tasks of that type, so F(root) is the all-ones vector and
// every F(i) component lies in [0, 1]: F(i) measures which fraction of the
// remaining work of each kernel type flows through task i.
//
// For graphs with several roots the normaliser is the componentwise sum of
// F̄ over all roots (which equals F̄(root) when the root is unique).
// Components whose normaliser is zero (no task of that type) are zero.
//
// The result is an NumTasks x NumKernels row-major matrix flattened as
// [][NumKernels]float64.
func DescendantFeatures(g *Graph) [][NumKernels]float64 {
	n := g.NumTasks()
	raw := make([][NumKernels]float64, n)
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	// Reverse topological order: successors are finalised before their
	// predecessors.
	for idx := n - 1; idx >= 0; idx-- {
		i := order[idx]
		raw[i][g.Tasks[i].Kernel] += 1
		for _, c := range g.Succ[i] {
			share := 1.0 / float64(len(g.Pred[c]))
			for k := 0; k < NumKernels; k++ {
				raw[i][k] += raw[c][k] * share
			}
		}
	}
	var norm [NumKernels]float64
	for _, r := range g.Roots() {
		for k := 0; k < NumKernels; k++ {
			norm[k] += raw[r][k]
		}
	}
	out := make([][NumKernels]float64, n)
	for i := 0; i < n; i++ {
		for k := 0; k < NumKernels; k++ {
			if norm[k] > 0 {
				out[i][k] = raw[i][k] / norm[k]
			}
		}
	}
	return out
}

// Window returns the sub-DAG retained in the READYS state (§III-B): the
// running tasks, the ready tasks, and every descendant of a running or ready
// task whose depth is at most w, where the depth of a descendant is the
// minimum length over paths from any running/ready task to it.
//
// The result is sorted by task ID. w = 0 keeps only running and ready tasks.
func Window(g *Graph, running, ready []int, w int) []int {
	type qitem struct {
		task  int
		depth int
	}
	depth := make(map[int]int)
	queue := make([]qitem, 0, len(running)+len(ready))
	for _, t := range running {
		depth[t] = 0
		queue = append(queue, qitem{t, 0})
	}
	for _, t := range ready {
		depth[t] = 0
		queue = append(queue, qitem{t, 0})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.depth == w {
			continue
		}
		for _, s := range g.Succ[it.task] {
			if d, seen := depth[s]; !seen || it.depth+1 < d {
				depth[s] = it.depth + 1
				queue = append(queue, qitem{s, it.depth + 1})
			}
		}
	}
	out := make([]int, 0, len(depth))
	for t := range depth {
		out = append(out, t)
	}
	sortInts(out)
	return out
}

// sortInts is a small insertion/quick hybrid avoiding the sort import here;
// window sets are small (tens of tasks).
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}
