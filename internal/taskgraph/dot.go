package taskgraph

import (
	"fmt"
	"io"
	"strings"
)

// kernelColors give each kernel type a distinct fill in DOT renderings.
var kernelColors = [NumKernels]string{"#e8956d", "#8fbf6f", "#7aa6c2", "#c2a878"}

// WriteDOT renders the graph in Graphviz DOT format: one node per task
// labelled with its name, coloured by kernel type, one edge per dependency.
func WriteDOT(w io.Writer, g *Graph) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", g.Kind)
	b.WriteString("  rankdir=TB;\n  node [shape=box, style=filled];\n")
	for _, t := range g.Tasks {
		fmt.Fprintf(&b, "  t%d [label=%q, fillcolor=%q];\n", t.ID, t.Name, kernelColors[t.Kernel])
	}
	for i, succ := range g.Succ {
		for _, j := range succ {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", i, j)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
