package serve

import (
	"os"
	"testing"

	"readys/internal/core"
	"readys/internal/taskgraph"
)

// TestPublishInstallsAndInvalidates is the train → serve loop from the
// registry's side: publishing a new checkpoint for a served combination must
// atomically replace the file and evict the resident model, so the very next
// Acquire serves the new weights.
func TestPublishInstallsAndInvalidates(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(taskgraph.Cholesky, 4, 1, 1)
	base := spec.Name() + ".json"

	// Generation 1 on disk, loaded and resident.
	gen1 := core.NewAgent(spec.AgentConfig())
	if err := gen1.SaveCheckpoint(spec.ModelPath(dir), map[string]string{"gen": "1"}); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(dir, 4, 2)
	lease, hit, err := reg.Acquire(spec.Kind, spec.T, spec.NumCPU, spec.NumGPU)
	if err != nil {
		t.Fatal(err)
	}
	if hit || lease.Meta()["gen"] != "1" {
		t.Fatalf("first acquire = (hit=%v, gen=%q)", hit, lease.Meta()["gen"])
	}
	lease.Release()
	warm, hit, err := reg.Acquire(spec.Kind, spec.T, spec.NumCPU, spec.NumGPU)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("model not resident after first load")
	}
	warm.Release()

	// Publish generation 2 (a different seed, so genuinely different
	// parameters) while generation 1 is resident.
	spec2 := spec
	spec2.Seed = spec.Seed + 100
	gen2 := core.NewAgent(spec2.AgentConfig())
	staging := t.TempDir()
	if err := gen2.SaveCheckpoint(spec.ModelPath(staging), map[string]string{"gen": "2"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(spec.ModelPath(staging))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Publish(base, data); err != nil {
		t.Fatal(err)
	}

	// The resident generation-1 model must be gone: the next acquire is a
	// miss and serves the published weights.
	lease2, hit, err := reg.Acquire(spec.Kind, spec.T, spec.NumCPU, spec.NumGPU)
	if err != nil {
		t.Fatal(err)
	}
	defer lease2.Release()
	if hit {
		t.Fatal("stale model answered the acquire after Publish")
	}
	if got := lease2.Meta()["gen"]; got != "2" {
		t.Fatalf("acquired generation %q after publish, want 2", got)
	}
	// On-disk bytes are the published bytes, verbatim (atomic install).
	onDisk, err := os.ReadFile(spec.ModelPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != string(data) {
		t.Fatal("published checkpoint differs on disk")
	}
}

func TestPublishRejectsNonCanonicalNames(t *testing.T) {
	reg := NewRegistry(t.TempDir(), 4, 2)
	for _, bad := range []string{"", "notes.txt", "../escape.json", "readys_bogus_T8_2c2g_w2_l2_h32.json"} {
		if err := reg.Publish(bad, []byte("{}")); err == nil {
			t.Errorf("Publish(%q) accepted", bad)
		}
	}
}

func TestInvalidateReportsResidency(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(taskgraph.LU, 4, 2, 2)
	writeTestModel(t, dir, spec)
	reg := NewRegistry(dir, 4, 2)
	base := spec.Name() + ".json"

	if reg.Invalidate(base) {
		t.Fatal("Invalidate reported an eviction before anything loaded")
	}
	lease, _, err := reg.Acquire(spec.Kind, spec.T, spec.NumCPU, spec.NumGPU)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Invalidate(base) {
		t.Fatal("Invalidate missed the resident model")
	}
	// A lease handed out before the invalidation stays usable; its release
	// is dropped quietly (the model is no longer live).
	lease.Release()
	if reg.Invalidate("not-a-model.json") {
		t.Fatal("Invalidate accepted a non-canonical name")
	}
	resident, _, _, evicted := reg.Stats()
	if resident != 0 || evicted == 0 {
		t.Fatalf("stats after invalidate: resident=%d evicted=%d", resident, evicted)
	}
}
