package serve

import (
	"os"
	"path/filepath"
	"testing"

	"readys/internal/core"
	"readys/internal/exp"
	"readys/internal/taskgraph"
)

// testSpec is the small architecture used throughout the serve tests: tiny
// hidden width keeps checkpoint writing and cloning fast, and the registry
// reconstructs it purely from the file name.
func testSpec(kind taskgraph.Kind, T, cpus, gpus int) exp.AgentSpec {
	spec := exp.DefaultAgentSpec(kind, T, cpus, gpus)
	spec.Window, spec.Layers, spec.Hidden = 1, 1, 8
	return spec
}

// writeTestModel saves an untrained checkpoint for the spec into dir.
// Untrained weights schedule poorly but legally, which is all registry and
// server mechanics need.
func writeTestModel(t testing.TB, dir string, spec exp.AgentSpec) {
	t.Helper()
	agent := core.NewAgent(spec.AgentConfig())
	if err := agent.SaveCheckpoint(spec.ModelPath(dir), map[string]string{"test": "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestParseModelName(t *testing.T) {
	spec := exp.DefaultAgentSpec(taskgraph.Cholesky, 8, 2, 2)
	got, ok := ParseModelName(spec.Name() + ".json")
	if !ok {
		t.Fatalf("ParseModelName rejected canonical name %q", spec.Name()+".json")
	}
	if got.Kind != spec.Kind || got.T != spec.T || got.NumCPU != spec.NumCPU ||
		got.NumGPU != spec.NumGPU || got.Window != spec.Window ||
		got.Layers != spec.Layers || got.Hidden != spec.Hidden {
		t.Fatalf("round-trip mismatch: %+v vs %+v", got, spec)
	}
	for _, bad := range []string{
		"readys_cholesky_T8.json",
		"notes.txt",
		"readys_bogus_T8_2c2g_w2_l2_h32.json",
		"readys_cholesky_T8_2c2g_w2_l2_h32.json.bak",
	} {
		if _, ok := ParseModelName(bad); ok {
			t.Errorf("ParseModelName accepted %q", bad)
		}
	}
}

func TestRegistryAcquireCachesAndCounts(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(taskgraph.Cholesky, 4, 1, 1)
	writeTestModel(t, dir, spec)

	r := NewRegistry(dir, 4, 2)
	l1, hit, err := r.Acquire(taskgraph.Cholesky, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first acquire must be a miss")
	}
	if l1.ModelName() != spec.Name() {
		t.Fatalf("lease model %q, want %q", l1.ModelName(), spec.Name())
	}
	if l1.Meta()["test"] != "1" {
		t.Fatalf("lease meta %v", l1.Meta())
	}

	l2, hit, err := r.Acquire(taskgraph.Cholesky, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second acquire must hit the cache")
	}
	a1, a2 := l1.Agent(), l2.Agent()
	if a1 == a2 {
		t.Fatal("concurrent leases must hold distinct agent instances")
	}
	l1.Release()
	l2.Release()

	// A released clone is reused rather than re-cloned.
	l3, _, err := r.Acquire(taskgraph.Cholesky, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l3.Agent() != a1 && l3.Agent() != a2 {
		t.Fatal("expected a pooled clone to be reused")
	}
	l3.Release()

	resident, hits, misses, _ := r.Stats()
	if resident != 1 || hits != 2 || misses != 1 {
		t.Fatalf("stats resident=%d hits=%d misses=%d", resident, hits, misses)
	}
}

func TestRegistryMissingModel(t *testing.T) {
	r := NewRegistry(t.TempDir(), 4, 2)
	if _, _, err := r.Acquire(taskgraph.Cholesky, 4, 1, 1); err == nil {
		t.Fatal("expected an error for a missing checkpoint")
	}
}

func TestRegistryCorruptModel(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(taskgraph.Cholesky, 4, 1, 1)
	if err := os.WriteFile(spec.ModelPath(dir), []byte(`{"version":1,"params":[`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewRegistry(dir, 4, 2).Acquire(taskgraph.Cholesky, 4, 1, 1); err == nil {
		t.Fatal("expected an error for a corrupt checkpoint")
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	dir := t.TempDir()
	for _, T := range []int{2, 3, 4} {
		writeTestModel(t, dir, testSpec(taskgraph.Cholesky, T, 1, 1))
	}
	r := NewRegistry(dir, 2, 2)
	for _, T := range []int{2, 3, 4} { // third load evicts T=2
		l, _, err := r.Acquire(taskgraph.Cholesky, T, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		l.Release()
	}
	resident, _, misses, evicted := r.Stats()
	if resident != 2 || evicted != 1 {
		t.Fatalf("resident=%d evicted=%d, want 2 and 1", resident, evicted)
	}
	// T=2 was evicted: re-acquiring it is a miss again.
	l, hit, err := r.Acquire(taskgraph.Cholesky, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	if hit {
		t.Fatal("evicted model must reload as a miss")
	}
	if _, _, m, _ := r.Stats(); m != misses+1 {
		t.Fatalf("miss counter did not advance: %d -> %d", misses, m)
	}
}

func TestRegistryList(t *testing.T) {
	dir := t.TempDir()
	specA := testSpec(taskgraph.Cholesky, 4, 1, 1)
	specB := testSpec(taskgraph.LU, 2, 2, 0)
	writeTestModel(t, dir, specA)
	writeTestModel(t, dir, specB)
	// Files outside the convention are ignored.
	if err := os.WriteFile(filepath.Join(dir, "readys_notes.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry(dir, 4, 2)
	l, _, err := r.Acquire(taskgraph.Cholesky, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()

	infos, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("listed %d models, want 2: %+v", len(infos), infos)
	}
	byName := map[string]ModelInfo{}
	for _, m := range infos {
		byName[m.Name] = m
	}
	if m := byName[specA.Name()]; !m.Loaded || m.Kind != "cholesky" || m.T != 4 {
		t.Fatalf("cholesky entry wrong: %+v", m)
	}
	if m := byName[specB.Name()]; m.Loaded || m.Kind != "lu" || m.CPUs != 2 || m.GPUs != 0 {
		t.Fatalf("lu entry wrong: %+v", m)
	}
}

// TestRegistryPrecision pins the serving-precision plumbing: leases default to
// float64 (bit-identical serving), SetDefaultPrecision applies to subsequent
// leases, and a per-model SetPrecision override beats the default.
func TestRegistryPrecision(t *testing.T) {
	dir := t.TempDir()
	chol := testSpec(taskgraph.Cholesky, 2, 1, 1)
	lu := testSpec(taskgraph.LU, 2, 1, 1)
	writeTestModel(t, dir, chol)
	writeTestModel(t, dir, lu)
	r := NewRegistry(dir, 4, 2)

	lease, _, err := r.Acquire(taskgraph.Cholesky, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Precision() != core.PrecisionFloat64 {
		t.Fatalf("default lease precision %v, want float64", lease.Precision())
	}
	lease.Release()

	r.SetDefaultPrecision(core.PrecisionInt8)
	if !r.SetPrecision(lu.Name()+".json", core.PrecisionFloat32) {
		t.Fatal("SetPrecision rejected canonical name")
	}
	if r.SetPrecision("garbage.json", core.PrecisionFloat32) {
		t.Fatal("SetPrecision accepted a non-canonical name")
	}

	lease, _, err = r.Acquire(taskgraph.Cholesky, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Precision() != core.PrecisionInt8 {
		t.Fatalf("post-default lease precision %v, want int8", lease.Precision())
	}
	lease.Release()

	lease, _, err = r.Acquire(taskgraph.LU, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Precision() != core.PrecisionFloat32 {
		t.Fatalf("override lease precision %v, want float32", lease.Precision())
	}
	lease.Release()
}
