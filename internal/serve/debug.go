package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"readys/internal/obs"
	"readys/internal/sim"
)

// servePID is the pid under which the server records trace events.
const servePID = 1

// ridKey carries the per-request info through the request context.
type ridKey struct{}

// reqInfo is what instrument() attaches to the request context: the numeric
// request ID (the trace lane) and the request span's distributed-trace
// identity.
type reqInfo struct {
	id int64
	sc obs.SpanContext
}

// requestID returns the ID instrument() assigned to this request (0 when the
// request did not pass through instrument, e.g. in direct handler tests).
func requestID(ctx context.Context) int64 {
	info, _ := ctx.Value(ridKey{}).(reqInfo)
	return info.id
}

// traceContext returns the request span's trace identity: children record it
// as their parent so client→serve→decide spans stitch across processes.
func traceContext(ctx context.Context) obs.SpanContext {
	info, _ := ctx.Value(ridKey{}).(reqInfo)
	return info.sc
}

// childArgs stamps span identity for a child of the request span (no-op on
// requests that did not pass through instrument).
func childArgs(sc obs.SpanContext, args map[string]any) map[string]any {
	if sc.TraceID == "" {
		return args
	}
	return obs.SpanArgs(args, sc.TraceID, obs.NewSpanID(), sc.SpanID)
}

// tsMicros converts a wall-clock instant into trace microseconds relative to
// server start.
func (s *Server) tsMicros(t time.Time) float64 {
	return float64(t.Sub(s.epoch)) / float64(time.Microsecond)
}

// span records a completed slice on the request's lane. Each request gets its
// own tid, so its queue-wait / model-load / rollout / per-decision slices
// render as one row in Perfetto; the ring bounds total memory.
func (s *Server) span(name, cat string, tid int64, start time.Time, args map[string]any) {
	s.tracer.Complete(name, cat, servePID, tid, s.tsMicros(start),
		float64(time.Since(start))/float64(time.Microsecond), args)
}

// tracedPolicy wraps the inference policy and records one "decide" slice per
// scheduling decision (wall-clock inference latency, not simulated time).
type tracedPolicy struct {
	inner sim.Policy
	srv   *Server
	tid   int64
	sc    obs.SpanContext
}

func (p tracedPolicy) Reset(st *sim.State) { p.inner.Reset(st) }

func (p tracedPolicy) Decide(st *sim.State, r int) int {
	start := time.Now()
	task := p.inner.Decide(st, r)
	p.srv.metrics.ObserveDecide(time.Since(start))
	p.srv.span("decide", "inference", p.tid, start, childArgs(p.sc, map[string]any{"resource": r, "task": task}))
	return task
}

// handleTrace exports the request-span ring buffer as Chrome trace-event
// JSON, loadable in chrome://tracing or https://ui.perfetto.dev.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("serve: use GET"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.tracer.WriteChromeTrace(w); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Printf("serve: writing trace: %v", err)
	}
}

// handleRuntime serves expvar-style runtime gauges (goroutines, heap, GC).
// Registered only when Config.EnablePprof is set.
func (s *Server) handleRuntime(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("serve: use GET"))
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"goroutines":       runtime.NumGoroutine(),
		"gomaxprocs":       runtime.GOMAXPROCS(0),
		"heap_alloc_bytes": ms.HeapAlloc,
		"heap_objects":     ms.HeapObjects,
		"total_alloc":      ms.TotalAlloc,
		"num_gc":           ms.NumGC,
		"uptime_seconds":   time.Since(s.epoch).Seconds(),
	})
}

// registerDebug mounts the optional profiling surface: net/http/pprof and
// the runtime gauge endpoint. Off by default (readys-serve -pprof enables
// it); when disabled none of these routes exist, so they 404.
func (s *Server) registerDebug() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.HandleFunc("/debug/runtime", s.handleRuntime)
}

// registerComponentGauges exposes registry and pool occupancy in the
// Prometheus exposition without coupling Metrics to either component.
func registerComponentGauges(reg *obs.Registry, registry *Registry, pool *Pool) {
	reg.GaugeFunc("readys_model_cache_resident", "Checkpoints currently resident in the LRU registry.",
		func() float64 { resident, _, _, _ := registry.Stats(); return float64(resident) })
	reg.GaugeFunc("readys_model_cache_hits_total", "Model cache hits.",
		func() float64 { _, hits, _, _ := registry.Stats(); return float64(hits) })
	reg.GaugeFunc("readys_model_cache_misses_total", "Model cache misses.",
		func() float64 { _, _, misses, _ := registry.Stats(); return float64(misses) })
	reg.GaugeFunc("readys_pool_queued", "Jobs waiting in the bounded queue.",
		func() float64 { return float64(pool.Queued()) })
	reg.GaugeFunc("readys_pool_running", "Jobs currently executing.",
		func() float64 { return float64(pool.Running()) })
	reg.GaugeFunc("readys_rollout_workers", "Default rollout worker count on this host (GOMAXPROCS), the parallelism a training batch collects episodes with.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
}
