package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"readys/internal/core"
	"readys/internal/exp"
	"readys/internal/obs"
	"readys/internal/platform"
	"readys/internal/sched"
	"readys/internal/sim"
)

// Config tunes the service.
type Config struct {
	// ModelsDir is the checkpoint directory the registry loads from.
	ModelsDir string
	// Workers is the number of rollout worker goroutines.
	Workers int
	// Queue is the bounded request-queue capacity; a full queue answers 503.
	Queue int
	// MaxModels bounds the number of resident checkpoints (LRU).
	MaxModels int
	// RequestTimeout is the server-side deadline for one schedule request.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies.
	MaxBodyBytes int64
	// Logger receives request-level diagnostics; nil disables logging.
	Logger *log.Logger
	// EnablePprof mounts net/http/pprof and GET /debug/runtime. Off by
	// default: profiling endpoints leak operational detail, so they must be
	// asked for (readys-serve -pprof).
	EnablePprof bool
	// TraceEvents is the request-span ring capacity (<= 0 picks the obs
	// default). Only the most recent window is kept, so tracing is always on
	// and bounded.
	TraceEvents int
	// Precision is the default serving precision for rollouts
	// (readys-serve -precision). The zero value, core.PrecisionFloat64,
	// schedules bit-identically to the training-path policy; float32/int8
	// trade bounded decision divergence for latency. Per-model overrides go
	// through Registry.SetPrecision.
	Precision core.Precision
	// Batch enables cross-request inference batching (readys-serve -batch):
	// concurrent rollouts on the same model submit their decision steps to a
	// shared per-model batcher, which coalesces them into row-batched forward
	// passes. Per-request results are bit-identical to unbatched serving at
	// float64 (see core.Batcher).
	Batch bool
	// BatchWidth is the maximum states per flushed batch; <= 0 takes
	// core.DefaultBatchWidth. When batching is on, Workers is raised to at
	// least BatchWidth so rollouts can actually overlap.
	BatchWidth int
	// BatchDwell bounds how long a submitted decision may wait for peers
	// before the batch flushes anyway; <= 0 takes core.DefaultBatchDwell.
	BatchDwell time.Duration
}

// DefaultConfig returns production-shaped defaults sized to the host.
func DefaultConfig() Config {
	return Config{
		ModelsDir:      exp.DefaultModelsDir(),
		Workers:        runtime.GOMAXPROCS(0),
		Queue:          64,
		MaxModels:      8,
		RequestTimeout: 30 * time.Second,
		MaxBodyBytes:   1 << 20,
	}
}

// Server is the online scheduling service: registry + pool + metrics behind
// a stdlib net/http mux.
type Server struct {
	cfg      Config
	registry *Registry
	pool     *Pool
	metrics  *Metrics
	mux      *http.ServeMux

	// epoch anchors trace timestamps; tracer records per-request spans into
	// a bounded ring; reqSeq hands out request IDs.
	epoch  time.Time
	tracer *obs.Tracer
	reqSeq atomic.Int64
	build  obs.BuildInfo
}

// New builds a server from the config (zero fields take defaults).
func New(cfg Config) *Server {
	def := DefaultConfig()
	if cfg.ModelsDir == "" {
		cfg.ModelsDir = def.ModelsDir
	}
	if cfg.Workers < 1 {
		cfg.Workers = def.Workers
	}
	if cfg.Queue < 1 {
		cfg.Queue = def.Queue
	}
	if cfg.MaxModels < 1 {
		cfg.MaxModels = def.MaxModels
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = def.RequestTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = def.MaxBodyBytes
	}
	if cfg.Batch {
		if cfg.BatchWidth < 1 {
			cfg.BatchWidth = core.DefaultBatchWidth
		}
		// Rollouts must overlap for their decisions to coalesce: a worker
		// count below the batch width would leave the batcher waiting on
		// rollouts that cannot be running.
		if cfg.Workers < cfg.BatchWidth {
			cfg.Workers = cfg.BatchWidth
		}
	}
	s := &Server{
		cfg: cfg,
		// Idle clones are capped at the worker count: more can never be in
		// flight at once, so anything beyond that would be dead weight.
		registry: NewRegistry(cfg.ModelsDir, cfg.MaxModels, cfg.Workers),
		pool:     NewPool(cfg.Workers, cfg.Queue),
		metrics:  NewMetrics(),
		mux:      http.NewServeMux(),
		epoch:    time.Now(),
		tracer:   obs.NewTracer(cfg.TraceEvents),
		build:    obs.ReadBuildInfo(),
	}
	s.registry.SetDefaultPrecision(cfg.Precision)
	if cfg.Batch {
		s.registry.EnableBatching(core.BatcherConfig{
			MaxWidth: cfg.BatchWidth,
			Dwell:    cfg.BatchDwell,
			OnFlush:  s.metrics.ObserveBatchFlush,
			OnWait:   s.metrics.ObserveBatchDwell,
		})
	}
	s.tracer.NameProcess(servePID, "readys-serve")
	registerComponentGauges(s.metrics.Registry(), s.registry, s.pool)
	s.mux.HandleFunc("/v1/schedule", s.instrument("schedule", s.handleSchedule))
	s.mux.HandleFunc("/v1/models", s.instrument("models", s.handleModels))
	s.mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("/debug/trace", s.handleTrace)
	if cfg.EnablePprof {
		s.registerDebug()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the model registry (tests and the daemon's preloading).
func (s *Server) Registry() *Registry { return s.registry }

// Metrics exposes the counter set.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Shutdown drains the worker pool: new schedule requests are refused with
// 503 while queued and in-flight rollouts run to completion (or ctx ends).
func (s *Server) Shutdown(ctx context.Context) error {
	return s.pool.Shutdown(ctx)
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the in-flight gauge, per-endpoint
// request/error counters and latency histogram, a request ID (echoed in the
// X-Request-ID response header) and an overall request span on the request's
// trace lane.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := s.reqSeq.Add(1)
		w.Header().Set("X-Request-ID", strconv.FormatInt(id, 10))
		// Adopt the caller's trace (client→serve spans stitch into one
		// timeline) or start a fresh one; children parent to the request span.
		traceID, parentSpan, _ := obs.ExtractTraceContext(r.Header)
		if traceID == "" {
			traceID = obs.NewTraceID()
		}
		sc := obs.SpanContext{TraceID: traceID, SpanID: obs.NewSpanID()}
		w.Header().Set(obs.HeaderTraceID, traceID)
		r = r.WithContext(context.WithValue(r.Context(), ridKey{}, reqInfo{id: id, sc: sc}))
		s.metrics.IncInflight()
		defer s.metrics.DecInflight()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.metrics.Observe(name, time.Since(start), sw.status >= 400)
		s.span("request", name, id, start, obs.SpanArgs(map[string]any{
			"request_id": id, "endpoint": name, "status": sw.status,
		}, sc.TraceID, sc.SpanID, parentSpan))
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Printf("serve: writing response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("serve: use GET"))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"models":         s.cfg.ModelsDir,
		"build":          s.build,
		"uptime_seconds": time.Since(s.epoch).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("serve: use GET"))
		return
	}
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.metrics.WritePrometheus(w); err != nil && s.cfg.Logger != nil {
			s.cfg.Logger.Printf("serve: writing prometheus metrics: %v", err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.registry, s.pool))
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("serve: use GET"))
		return
	}
	models, err := s.registry.List()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, ModelsResponse{Dir: s.registry.Dir(), Models: models})
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("serve: use POST"))
		return
	}
	var req ScheduleRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decoding request: %w", err))
		return
	}
	if err := req.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	graph, err := req.BuildGraph()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	kind, _ := req.kind() // validated above
	rid := requestID(r.Context())
	sc := traceContext(r.Context())

	acquireStart := time.Now()
	lease, cacheHit, err := s.registry.Acquire(kind, req.ModelT(), req.CPUs, req.GPUs)
	s.span("model_load", "registry", rid, acquireStart, childArgs(sc, map[string]any{"cache_hit": cacheHit}))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, errModelNotFound) {
			status = http.StatusNotFound
		}
		s.writeError(w, status, err)
		return
	}

	prob := core.Problem{
		Graph:    graph,
		Platform: platform.New(req.CPUs, req.GPUs),
		Timing:   platform.TimingFor(kind),
		Sigma:    req.Sigma,
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// Attach to the model's shared batcher at admission, before the rollout
	// starts: the batcher co-schedules attached requests, so announcing this
	// one early is what lets decision steps from overlapping rollouts
	// coalesce (a rollout that attached only once running would flush every
	// step alone). runSchedule detaches right after its rollout; the two
	// rejection paths below, where the closure never runs, detach here.
	if b := lease.Batcher(); b != nil {
		b.Attach()
	}

	var (
		resp   ScheduleResponse
		runErr error
	)
	enqueued := time.Now()
	err = s.pool.Do(ctx, func() {
		s.span("queue_wait", "pool", rid, enqueued, childArgs(sc, nil))
		defer lease.Release()
		resp, runErr = s.runSchedule(&req, prob, lease, cacheHit, rid, sc)
	})
	if errors.Is(err, ErrBusy) || errors.Is(err, ErrShuttingDown) {
		if b := lease.Batcher(); b != nil {
			b.Detach()
		}
	}
	switch {
	case errors.Is(err, ErrBusy):
		s.metrics.Rejected()
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrShuttingDown):
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.Timeout()
		s.writeError(w, http.StatusGatewayTimeout, fmt.Errorf("serve: request exceeded %s", s.cfg.RequestTimeout))
		return
	case err != nil: // client went away; the rollout finishes in background
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	if runErr != nil {
		s.writeError(w, http.StatusInternalServerError, runErr)
		return
	}
	s.metrics.Scheduled()
	s.writeJSON(w, http.StatusOK, resp)
}

// runSchedule executes one policy rollout plus the two baseline references
// on a worker goroutine. The leased agent is exclusively ours for the
// duration, so the forward passes share no mutable state with other workers.
// The rollout, each inference decision and the reference schedules are
// recorded as spans on the request's trace lane.
func (s *Server) runSchedule(req *ScheduleRequest, prob core.Problem, lease *Lease, cacheHit bool, rid int64, sc obs.SpanContext) (ScheduleResponse, error) {
	start := time.Now()
	inner := core.NewServingPolicy(lease.Agent(), lease.Precision())
	pol := tracedPolicy{inner: inner, srv: s, tid: rid, sc: sc}
	// The request attached to the batcher at admission (handleSchedule); the
	// detach goes right after the rollout, not at request end: the baseline
	// references below never call Forward, and a request that stayed attached
	// through them would stall concurrent rollouts on the dwell timer.
	b := lease.Batcher()
	if b != nil {
		inner.UseBatcher(b)
	}
	res, err := prob.Simulate(pol, rand.New(rand.NewSource(req.Seed)))
	if b != nil {
		b.Detach()
	}
	s.span("rollout", "sim", rid, start, childArgs(sc, map[string]any{"tasks": prob.Graph.NumTasks(), "decisions": res.Decisions}))
	if err != nil {
		return ScheduleResponse{}, fmt.Errorf("serve: rollout: %w", err)
	}
	// Never hand out an infeasible plan: re-validate every schedule against
	// precedence and resource-exclusivity constraints before answering.
	if err := sim.ValidateResult(prob.Graph, prob.Platform.Size(), res); err != nil {
		return ScheduleResponse{}, fmt.Errorf("serve: produced invalid schedule: %w", err)
	}
	refStart := time.Now()
	heft := sched.HEFT(prob.Graph, prob.Platform, prob.Timing).Makespan
	mctRes, err := prob.Simulate(sched.MCTPolicy{}, rand.New(rand.NewSource(req.Seed)))
	s.span("references", "sim", rid, refStart, childArgs(sc, nil))
	if err != nil {
		return ScheduleResponse{}, fmt.Errorf("serve: MCT reference: %w", err)
	}

	resp := ScheduleResponse{
		Model:         lease.ModelName(),
		CacheHit:      cacheHit,
		Makespan:      res.Makespan,
		HEFTMakespan:  heft,
		MCTMakespan:   mctRes.Makespan,
		NumTasks:      prob.Graph.NumTasks(),
		Decisions:     res.Decisions,
		IdleDecisions: res.IdleDecisions,
		ElapsedMS:     float64(time.Since(start)) / float64(time.Millisecond),
	}
	if res.Makespan > 0 {
		resp.ImproveVsHEFT = heft / res.Makespan
		resp.ImproveVsMCT = mctRes.Makespan / res.Makespan
	}
	resp.Placements = make([]PlacementJSON, 0, len(res.Trace))
	for _, p := range res.Trace {
		resp.Placements = append(resp.Placements, PlacementJSON{
			Task:     p.Task,
			Name:     prob.Graph.Tasks[p.Task].Name,
			Resource: p.Resource,
			Type:     prob.Platform.Resources[p.Resource].Type.String(),
			Start:    p.Start,
			End:      p.End,
		})
	}
	return resp, nil
}
