package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"readys/internal/obs"
	"readys/internal/taskgraph"
)

// TestDebugRoutes404WhenDisabled pins the default posture: without
// EnablePprof the profiling surface does not exist.
func TestDebugRoutes404WhenDisabled(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/profile", "/debug/runtime"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("GET %s with pprof disabled -> %d, want 404", path, rec.Code)
		}
	}
}

func TestDebugRoutesEnabled(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, testSpec(taskgraph.Cholesky, 4, 1, 1))
	s := New(Config{ModelsDir: dir, EnablePprof: true})
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ -> %d, want 200", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/runtime", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/runtime -> %d", rec.Code)
	}
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatal(err)
	}
	if vars["goroutines"].(float64) < 1 || vars["heap_alloc_bytes"].(float64) <= 0 {
		t.Fatalf("runtime gauges implausible: %v", vars)
	}
}

// TestMetricsPrometheusFormat checks the text exposition: readys_-prefixed
// families with endpoint labels, plus runtime and component gauges.
func TestMetricsPrometheusFormat(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	rec, _ := postSchedule(t, h, ScheduleRequest{Kind: "cholesky", T: 4, CPUs: 1, GPUs: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("schedule -> %d: %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=prometheus", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics?format=prometheus -> %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`readys_http_requests_total{endpoint="schedule"} 1`,
		`readys_http_errors_total{endpoint="schedule"} 0`,
		`readys_http_latency_ms_bucket{endpoint="schedule",le="+Inf"} 1`,
		"readys_schedules_answered_total 1",
		"readys_goroutines ",
		"readys_heap_alloc_bytes ",
		"readys_model_cache_resident 1",
		"readys_pool_queued 0",
		"# TYPE readys_http_latency_ms histogram",
		// Per-decision inference latency: the sub-100µs serving buckets must
		// exist, and every decision of the schedule request must be counted.
		"# TYPE readys_decide_latency_us histogram",
		`readys_decide_latency_us_bucket{le="5"} `,
		`readys_decide_latency_us_bucket{le="10"} `,
		`readys_decide_latency_us_bucket{le="25"} `,
		`readys_decide_latency_us_bucket{le="50"} `,
		`readys_decide_latency_us_bucket{le="100"} `,
		`readys_decide_latency_us_bucket{le="250"} `,
		`readys_decide_latency_us_bucket{le="1000"} `,
		`readys_decide_latency_us_bucket{le="10000"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Log(body)
	}
}

// TestServeTraceExport drives one schedule request and asserts the ring
// exports a loadable Chrome trace containing the request's spans — including
// per-decision inference slices — all tagged with the request ID from the
// X-Request-ID header.
func TestServeTraceExport(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	rec, _ := postSchedule(t, h, ScheduleRequest{Kind: "cholesky", T: 4, CPUs: 1, GPUs: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("schedule -> %d: %s", rec.Code, rec.Body.String())
	}
	rid := rec.Header().Get("X-Request-ID")
	if rid == "" {
		t.Fatal("no X-Request-ID header")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("debug/trace -> %d", rec.Code)
	}
	data := rec.Body.Bytes()
	if err := obs.ValidateChromeTrace(data); err != nil {
		t.Fatalf("trace invalid: %v\n%.400s", err, data)
	}
	var doc struct {
		TraceEvents []obs.Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	spans := map[string]int{}
	for _, e := range doc.TraceEvents {
		spans[e.Name]++
	}
	for _, want := range []string{"request", "queue_wait", "model_load", "rollout", "references", "decide"} {
		if spans[want] == 0 {
			t.Errorf("trace has no %q span (got %v)", want, spans)
		}
	}
	if spans["decide"] < 2 {
		t.Errorf("expected per-decision spans, got %d", spans["decide"])
	}
}
