package serve

import (
	"io"
	"runtime"
	"strconv"
	"time"

	"readys/internal/obs"
)

// latencyBucketsMS are the upper bounds (in milliseconds) of the latency
// histogram buckets, chosen around the observed cost of one warm rollout
// (sub-millisecond model access, tens of ms of simulation on larger DAGs).
var latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// decideBucketsUS are the upper bounds (in microseconds) of the per-decision
// inference latency histogram. The serving hot path targets sub-100µs
// decisions, so the resolution is concentrated there: the 5–100µs buckets
// separate the incremental/quantized tiers, the tail catches cold starts and
// full rebuilds.
var decideBucketsUS = []float64{5, 10, 25, 50, 100, 250, 1000, 10000}

// batchWidthBuckets cover the batcher's width range: one bucket per
// power of two up to the widest flush a saturated 64-client box produces.
var batchWidthBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// batchDwellBucketsUS are the upper bounds (in microseconds) of the batch
// queue-dwell histogram — how long a decision waited between submit and
// flush. The default dwell bound is 100µs, so resolution concentrates below
// it; the tail catches timer-driven flushes under light load.
var batchDwellBucketsUS = []float64{1, 5, 10, 25, 50, 100, 250, 1000, 10000}

// Metrics is the service's counter set, backed by the shared obs registry.
// GET /metrics serves it as JSON (the historical expvar-style tree) or, with
// ?format=prometheus, as Prometheus text exposition. All methods are safe
// for concurrent use.
type Metrics struct {
	start time.Time
	reg   *obs.Registry

	requests *obs.CounterVec
	errors   *obs.CounterVec
	latency  *obs.HistogramVec
	decide   *obs.Histogram

	// Cross-request batching instrumentation (Config.Batch): the width of
	// every flushed inference batch and each decision's queue dwell. Both
	// stay at zero when batching is disabled.
	batchWidth *obs.Histogram
	batchDwell *obs.Histogram

	inflight  *obs.Gauge
	rejected  *obs.Counter // 503s from a full queue
	timeouts  *obs.Counter // requests that hit the server-side deadline
	scheduled *obs.Counter // successfully answered schedule requests
}

// NewMetrics returns an empty metric set anchored at now. Runtime gauges
// (uptime, goroutines, heap) are registered for the Prometheus exposition.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		start:    time.Now(),
		reg:      reg,
		requests: reg.CounterVec("readys_http_requests_total", "HTTP requests by endpoint.", "endpoint"),
		errors:   reg.CounterVec("readys_http_errors_total", "HTTP responses with status >= 400 by endpoint.", "endpoint"),
		latency:  reg.HistogramVec("readys_http_latency_ms", "Request latency in milliseconds by endpoint.", latencyBucketsMS, "endpoint"),
		decide:   reg.Histogram("readys_decide_latency_us", "Per-decision inference latency in microseconds.", decideBucketsUS),
		batchWidth: reg.Histogram("readys_batch_width",
			"States per flushed inference batch (cross-request batching).", batchWidthBuckets),
		batchDwell: reg.Histogram("readys_batch_dwell_us",
			"Per-decision batch queue dwell in microseconds (submit to flush).", batchDwellBucketsUS),
		inflight:  reg.Gauge("readys_http_inflight", "Requests currently being handled."),
		rejected:  reg.Counter("readys_rejected_busy_total", "Backpressure rejections from a full queue (503)."),
		timeouts:  reg.Counter("readys_request_timeouts_total", "Requests that exceeded the server-side deadline."),
		scheduled: reg.Counter("readys_schedules_answered_total", "Successfully answered schedule requests."),
	}
	reg.GaugeFunc("readys_uptime_seconds", "Seconds since the metric set was created.",
		func() float64 { return time.Since(m.start).Seconds() })
	reg.GaugeFunc("readys_goroutines", "Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("readys_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	return m
}

// Registry exposes the underlying obs registry so the server can attach
// component gauges (model cache, pool depth) without Metrics depending on
// those components.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Observe records one finished request against an endpoint.
func (m *Metrics) Observe(endpoint string, d time.Duration, isError bool) {
	m.requests.With(endpoint).Inc()
	e := m.errors.With(endpoint) // materialise the series even at zero
	if isError {
		e.Inc()
	}
	m.latency.With(endpoint).Observe(float64(d) / float64(time.Millisecond))
}

// ObserveDecide records the wall-clock latency of one scheduling decision.
func (m *Metrics) ObserveDecide(d time.Duration) {
	m.decide.Observe(float64(d) / float64(time.Microsecond))
}

// ObserveBatchFlush records the width of one flushed inference batch.
func (m *Metrics) ObserveBatchFlush(width int) {
	m.batchWidth.Observe(float64(width))
}

// ObserveBatchDwell records how long one decision waited in the batch queue
// between submit and flush.
func (m *Metrics) ObserveBatchDwell(d time.Duration) {
	m.batchDwell.Observe(float64(d) / float64(time.Microsecond))
}

// IncInflight / DecInflight track requests currently being handled.
func (m *Metrics) IncInflight() { m.inflight.Add(1) }
func (m *Metrics) DecInflight() { m.inflight.Add(-1) }

// Rejected counts a backpressure rejection (full queue).
func (m *Metrics) Rejected() { m.rejected.Inc() }

// Timeout counts a request that exceeded the server-side deadline.
func (m *Metrics) Timeout() { m.timeouts.Inc() }

// Scheduled counts a successfully served schedule request.
func (m *Metrics) Scheduled() { m.scheduled.Inc() }

// WritePrometheus renders every metric in the Prometheus text exposition
// format (served on GET /metrics?format=prometheus).
func (m *Metrics) WritePrometheus(w io.Writer) error { return m.reg.WriteText(w) }

// Snapshot renders every counter as a JSON-encodable tree — the same shape
// the endpoint served before the obs refactor, so dashboards keep working.
// The registry and pool gauges are passed in by the server so Metrics stays
// free of dependencies on the other components.
func (m *Metrics) Snapshot(registry *Registry, pool *Pool) map[string]any {
	out := map[string]any{
		"uptime_seconds":     time.Since(m.start).Seconds(),
		"inflight":           m.inflight.Value(),
		"rejected_busy":      m.rejected.Value(),
		"request_timeouts":   m.timeouts.Value(),
		"schedules_answered": m.scheduled.Value(),
	}

	eps := make(map[string]any)
	for _, labels := range m.requests.Labels() {
		name := labels[0]
		eps[name] = map[string]any{
			"requests": m.requests.With(name).Value(),
			"errors":   m.errors.With(name).Value(),
			"latency":  latencyTree(m.latency.With(name).Snapshot()),
		}
	}
	out["endpoints"] = eps

	if registry != nil {
		resident, hits, misses, evicted := registry.Stats()
		var hitRate float64
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		out["model_cache"] = map[string]any{
			"resident": resident,
			"hits":     hits,
			"misses":   misses,
			"evicted":  evicted,
			"hit_rate": hitRate,
		}
	}
	if pool != nil {
		out["pool"] = map[string]any{
			"queued":  pool.Queued(),
			"running": pool.Running(),
		}
	}
	return out
}

// latencyTree converts a histogram snapshot into the JSON-friendly map the
// endpoint has always served: cumulative bucket counts keyed by
// "le_<bound>", plus count/sum/mean.
func latencyTree(s obs.HistogramSnapshot) map[string]any {
	buckets := make(map[string]uint64, len(s.Counts))
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		// Bounds are integral milliseconds; print without a decimal point.
		buckets["le_"+strconv.FormatInt(int64(bound), 10)] = cum
	}
	cum += s.Counts[len(s.Bounds)]
	buckets["le_inf"] = cum
	out := map[string]any{
		"count":      s.Count,
		"sum_ms":     s.Sum,
		"buckets_ms": buckets,
	}
	if s.Count > 0 {
		out["mean_ms"] = s.Sum / float64(s.Count)
	}
	return out
}
