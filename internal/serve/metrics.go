package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBucketsMS are the upper bounds (in milliseconds) of the latency
// histogram buckets, chosen around the observed cost of one warm rollout
// (sub-millisecond model access, tens of ms of simulation on larger DAGs).
var latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// histogram is a fixed-bucket latency histogram. Cheap enough to sit on the
// request path: one mutex-guarded slot increment per observation.
type histogram struct {
	mu     sync.Mutex
	counts []uint64 // len(latencyBucketsMS)+1, last bucket is +Inf
	sum    float64
	n      uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBucketsMS)+1)}
}

func (h *histogram) observe(ms float64) {
	i := sort.SearchFloat64s(latencyBucketsMS, ms)
	h.mu.Lock()
	h.counts[i]++
	h.sum += ms
	h.n++
	h.mu.Unlock()
}

// snapshot returns the histogram as a JSON-friendly map: cumulative bucket
// counts keyed by "le_<bound>", plus count/sum/mean.
func (h *histogram) snapshot() map[string]any {
	h.mu.Lock()
	defer h.mu.Unlock()
	buckets := make(map[string]uint64, len(h.counts))
	var cum uint64
	for i, bound := range latencyBucketsMS {
		cum += h.counts[i]
		buckets[leLabel(bound)] = cum
	}
	cum += h.counts[len(latencyBucketsMS)]
	buckets["le_inf"] = cum
	out := map[string]any{
		"count":      h.n,
		"sum_ms":     h.sum,
		"buckets_ms": buckets,
	}
	if h.n > 0 {
		out["mean_ms"] = h.sum / float64(h.n)
	}
	return out
}

func leLabel(bound float64) string {
	// Bounds are integral milliseconds; print without a decimal point.
	return "le_" + itoa(int64(bound))
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// endpointStats tracks one endpoint's traffic.
type endpointStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	latency  *histogram
}

// Metrics is the service's expvar-style counter set, served as JSON on
// GET /metrics. All methods are safe for concurrent use.
type Metrics struct {
	start time.Time

	mu        sync.Mutex
	endpoints map[string]*endpointStats

	inflight  atomic.Int64
	rejected  atomic.Uint64 // 503s from a full queue
	timeouts  atomic.Uint64 // requests that hit the server-side deadline
	scheduled atomic.Uint64 // successfully answered schedule requests
}

// NewMetrics returns an empty metric set anchored at now.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), endpoints: make(map[string]*endpointStats)}
}

func (m *Metrics) endpoint(name string) *endpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	es, ok := m.endpoints[name]
	if !ok {
		es = &endpointStats{latency: newHistogram()}
		m.endpoints[name] = es
	}
	return es
}

// Observe records one finished request against an endpoint.
func (m *Metrics) Observe(endpoint string, d time.Duration, isError bool) {
	es := m.endpoint(endpoint)
	es.requests.Add(1)
	if isError {
		es.errors.Add(1)
	}
	es.latency.observe(float64(d) / float64(time.Millisecond))
}

// IncInflight / DecInflight track requests currently being handled.
func (m *Metrics) IncInflight() { m.inflight.Add(1) }
func (m *Metrics) DecInflight() { m.inflight.Add(-1) }

// Rejected counts a backpressure rejection (full queue).
func (m *Metrics) Rejected() { m.rejected.Add(1) }

// Timeout counts a request that exceeded the server-side deadline.
func (m *Metrics) Timeout() { m.timeouts.Add(1) }

// Scheduled counts a successfully served schedule request.
func (m *Metrics) Scheduled() { m.scheduled.Add(1) }

// Snapshot renders every counter as a JSON-encodable tree. The registry and
// pool gauges are passed in by the server so Metrics stays free of
// dependencies on the other components.
func (m *Metrics) Snapshot(registry *Registry, pool *Pool) map[string]any {
	out := map[string]any{
		"uptime_seconds":     time.Since(m.start).Seconds(),
		"inflight":           m.inflight.Load(),
		"rejected_busy":      m.rejected.Load(),
		"request_timeouts":   m.timeouts.Load(),
		"schedules_answered": m.scheduled.Load(),
	}

	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)
	eps := make(map[string]any, len(names))
	for _, name := range names {
		es := m.endpoint(name)
		eps[name] = map[string]any{
			"requests": es.requests.Load(),
			"errors":   es.errors.Load(),
			"latency":  es.latency.snapshot(),
		}
	}
	out["endpoints"] = eps

	if registry != nil {
		resident, hits, misses, evicted := registry.Stats()
		var hitRate float64
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		out["model_cache"] = map[string]any{
			"resident": resident,
			"hits":     hits,
			"misses":   misses,
			"evicted":  evicted,
			"hit_rate": hitRate,
		}
	}
	if pool != nil {
		out["pool"] = map[string]any{
			"queued":  pool.Queued(),
			"running": pool.Running(),
		}
	}
	return out
}
