// Package serve is the online scheduling service: a long-lived HTTP daemon
// that answers scheduling requests with trained READYS policies.
//
// The batch entry points (cmd/readys-sim, cmd/readys-eval) load one model,
// run once and exit. This package instead keeps models resident and serves
// many requests concurrently, the deployment shape GCNScheduler (Kiamari &
// Krishnamachari, 2021) argues GCN schedulers are for: fast online inference
// over incoming task graphs. Three pieces cooperate:
//
//   - Registry (registry.go): lazily loads checkpoints from a model
//     directory, LRU-caches them keyed by (kind, T, platform) and hands each
//     in-flight request its own agent clone, so inference never shares
//     mutable state between goroutines.
//   - Pool (pool.go): a fixed set of worker goroutines behind a bounded
//     queue. The queue bound is the service's backpressure: when it is full,
//     requests are rejected immediately with 503 instead of piling up.
//   - Server (server.go): the stdlib-only net/http JSON API —
//     POST /v1/schedule, GET /v1/models, GET /healthz, GET /metrics —
//     with request timeouts and graceful drain on shutdown.
package serve

import (
	"errors"
	"fmt"

	"readys/internal/taskgraph"
)

// ScheduleRequest is the body of POST /v1/schedule. Either a built-in DAG
// family is named (Kind + T) or an explicit DAG is supplied (DAG != nil, with
// Kind still selecting the kernel timing tables). TrainT optionally picks a
// model trained at a different tile count than the request's T — the paper's
// transfer-learning usage; it is required for explicit DAGs, which have no
// tile count of their own.
type ScheduleRequest struct {
	// Kind is the DAG family: "cholesky", "lu" or "qr" (also "gemm",
	// "stencil", "forkjoin" for the extra generators, model availability
	// permitting). For explicit DAGs it selects the timing tables.
	Kind string `json:"kind"`
	// T is the tile count of the generated DAG. Ignored when DAG is set.
	T int `json:"t,omitempty"`
	// TrainT selects a model trained at this tile count (transfer). Defaults
	// to T. Required when DAG is set.
	TrainT int `json:"train_t,omitempty"`
	// CPUs and GPUs describe the platform.
	CPUs int `json:"cpus"`
	GPUs int `json:"gpus"`
	// Sigma is the duration-noise level σ of §V-B. Must be >= 0.
	Sigma float64 `json:"sigma"`
	// Seed drives the stochastic simulation. Two requests with identical
	// parameters and seeds produce identical plans.
	Seed int64 `json:"seed"`
	// DAG, when set, schedules an explicit task graph instead of a generated
	// factorisation DAG.
	DAG *DAGSpec `json:"dag,omitempty"`
}

// DAGSpec is an explicit task graph: tasks with kernel indices into the
// family's timing table, and dependency edges between task indices.
type DAGSpec struct {
	Tasks []DAGTask `json:"tasks"`
	// Edges lists dependencies [from, to]: from must finish before to starts.
	Edges [][2]int `json:"edges"`
}

// DAGTask is one vertex of an explicit DAG.
type DAGTask struct {
	// Kernel indexes the family's timing table (0..3).
	Kernel int `json:"kernel"`
	// Name is an optional human-readable label echoed back in placements.
	Name string `json:"name,omitempty"`
}

// MaxDAGTasks bounds explicit DAGs; windows over larger graphs make single
// forward passes arbitrarily expensive, which a shared service must not let
// one caller buy.
const MaxDAGTasks = 4096

// PlacementJSON is one scheduled task in a response.
type PlacementJSON struct {
	Task     int     `json:"task"`
	Name     string  `json:"name,omitempty"`
	Resource int     `json:"resource"`
	Type     string  `json:"type"` // "CPU" or "GPU"
	Start    float64 `json:"start_ms"`
	End      float64 `json:"end_ms"`
}

// ScheduleResponse is the body answering POST /v1/schedule.
type ScheduleResponse struct {
	// Model is the canonical name of the checkpoint that produced the plan.
	Model string `json:"model"`
	// CacheHit reports whether the model was already resident.
	CacheHit bool `json:"cache_hit"`
	// Makespan is the READYS plan's makespan in ms.
	Makespan float64 `json:"makespan_ms"`
	// HEFTMakespan / MCTMakespan are reference makespans of the two
	// baselines on the same problem (HEFT projected, MCT simulated with a
	// seed derived from the request's).
	HEFTMakespan float64 `json:"heft_makespan_ms"`
	MCTMakespan  float64 `json:"mct_makespan_ms"`
	// ImproveVsHEFT / ImproveVsMCT are baseline/READYS makespan ratios
	// (>1 means READYS wins).
	ImproveVsHEFT float64 `json:"improve_vs_heft"`
	ImproveVsMCT  float64 `json:"improve_vs_mct"`
	NumTasks      int     `json:"num_tasks"`
	Decisions     int     `json:"decisions"`
	IdleDecisions int     `json:"idle_decisions"`
	// ElapsedMS is the service-side wall-clock of the rollout in ms.
	ElapsedMS  float64         `json:"elapsed_ms"`
	Placements []PlacementJSON `json:"placements"`
}

// ModelInfo describes one checkpoint visible to the registry.
type ModelInfo struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	T      int    `json:"t"`
	CPUs   int    `json:"cpus"`
	GPUs   int    `json:"gpus"`
	Window int    `json:"window"`
	Layers int    `json:"layers"`
	Hidden int    `json:"hidden"`
	// Loaded reports whether the checkpoint is currently resident in the
	// registry cache.
	Loaded bool `json:"loaded"`
	// Meta is the checkpoint's stored metadata (training episodes, rewards,
	// …); only present for loaded models.
	Meta map[string]string `json:"meta,omitempty"`
}

// ModelsResponse is the body answering GET /v1/models.
type ModelsResponse struct {
	Dir    string      `json:"dir"`
	Models []ModelInfo `json:"models"`
}

// ErrorResponse is the JSON envelope of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Validate checks a schedule request's scalar fields; DAG contents are
// validated by BuildGraph.
func (r *ScheduleRequest) Validate() error {
	if _, err := r.kind(); err != nil {
		return err
	}
	if r.DAG == nil && r.T < 1 {
		return fmt.Errorf("serve: tile count t must be >= 1, got %d", r.T)
	}
	if r.DAG != nil && r.TrainT < 1 {
		return errors.New("serve: explicit DAGs require train_t (the tile count the model was trained at)")
	}
	if r.CPUs < 0 || r.GPUs < 0 || r.CPUs+r.GPUs < 1 {
		return fmt.Errorf("serve: platform needs >= 1 resource, got %d CPUs and %d GPUs", r.CPUs, r.GPUs)
	}
	if r.Sigma < 0 {
		return fmt.Errorf("serve: sigma must be >= 0, got %g", r.Sigma)
	}
	if r.TrainT < 0 {
		return fmt.Errorf("serve: train_t must be >= 1, got %d", r.TrainT)
	}
	return nil
}

// kind parses the request's DAG family.
func (r *ScheduleRequest) kind() (taskgraph.Kind, error) {
	if r.Kind == "" {
		return 0, errors.New("serve: missing DAG kind")
	}
	kind, err := taskgraph.KindFromString(r.Kind)
	if err != nil {
		return 0, fmt.Errorf("serve: %w", err)
	}
	if kind == taskgraph.Random {
		return 0, errors.New(`serve: kind "random" has no sized generator; submit it as an explicit dag`)
	}
	return kind, nil
}

// ModelT returns the tile count the serving model must have been trained at.
func (r *ScheduleRequest) ModelT() int {
	if r.TrainT > 0 {
		return r.TrainT
	}
	return r.T
}

// BuildGraph materialises the request's task graph: the named generator for
// family requests, or the explicit DAG validated for bounds and acyclicity.
func (r *ScheduleRequest) BuildGraph() (*taskgraph.Graph, error) {
	kind, err := r.kind()
	if err != nil {
		return nil, err
	}
	if r.DAG == nil {
		return taskgraph.NewByKind(kind, r.T), nil
	}
	spec := r.DAG
	if len(spec.Tasks) == 0 {
		return nil, errors.New("serve: explicit dag has no tasks")
	}
	if len(spec.Tasks) > MaxDAGTasks {
		return nil, fmt.Errorf("serve: explicit dag has %d tasks, limit is %d", len(spec.Tasks), MaxDAGTasks)
	}
	// Kernel names come from the family whose timing tables the DAG borrows.
	names := taskgraph.NewByKind(kind, 1).KernelNames
	g := taskgraph.NewCustom(kind, names)
	for i, task := range spec.Tasks {
		if task.Kernel < 0 || task.Kernel >= taskgraph.NumKernels {
			return nil, fmt.Errorf("serve: task %d kernel %d out of range [0,%d)", i, task.Kernel, taskgraph.NumKernels)
		}
		name := task.Name
		if name == "" {
			name = fmt.Sprintf("%s#%d", names[task.Kernel], i)
		}
		g.AddTask(taskgraph.Kernel(task.Kernel), name)
	}
	for _, e := range spec.Edges {
		from, to := e[0], e[1]
		if from < 0 || from >= len(spec.Tasks) || to < 0 || to >= len(spec.Tasks) {
			return nil, fmt.Errorf("serve: edge [%d,%d] out of range for %d tasks", from, to, len(spec.Tasks))
		}
		if from == to {
			return nil, fmt.Errorf("serve: self-edge on task %d", from)
		}
		g.AddEdge(from, to)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("serve: explicit dag invalid: %w", err)
	}
	if _, err := g.TopoOrder(); err != nil {
		return nil, fmt.Errorf("serve: explicit dag: %w", err)
	}
	return g, nil
}
