package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"readys/internal/core"
	"readys/internal/obs"
	"readys/internal/platform"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// newTestServer builds a server over a temp model dir holding small
// checkpoints for cholesky T∈{2,4} on 1c1g and lu T=2 on 1c1g.
func newTestServer(t testing.TB) *Server {
	t.Helper()
	dir := t.TempDir()
	writeTestModel(t, dir, testSpec(taskgraph.Cholesky, 2, 1, 1))
	writeTestModel(t, dir, testSpec(taskgraph.Cholesky, 4, 1, 1))
	writeTestModel(t, dir, testSpec(taskgraph.LU, 2, 1, 1))
	return New(Config{ModelsDir: dir, Workers: 4, Queue: 16, RequestTimeout: 10 * time.Second})
}

func postSchedule(t testing.TB, h http.Handler, req ScheduleRequest) (*httptest.ResponseRecorder, ScheduleResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body)))
	var resp ScheduleResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding response: %v\n%s", err, rec.Body.String())
		}
	}
	return rec, resp
}

func TestServeScheduleHappyPath(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	req := ScheduleRequest{Kind: "cholesky", T: 4, CPUs: 1, GPUs: 1, Sigma: 0.1, Seed: 7}
	rec, resp := postSchedule(t, h, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.CacheHit {
		t.Error("first request must be a cache miss")
	}
	if resp.Makespan <= 0 || resp.HEFTMakespan <= 0 || resp.MCTMakespan <= 0 {
		t.Fatalf("non-positive makespans: %+v", resp)
	}
	g := taskgraph.NewByKind(taskgraph.Cholesky, 4)
	if resp.NumTasks != g.NumTasks() || len(resp.Placements) != g.NumTasks() {
		t.Fatalf("placements %d for %d tasks", len(resp.Placements), g.NumTasks())
	}
	// The served plan must be a feasible schedule.
	res := sim.Result{Makespan: resp.Makespan}
	for _, p := range resp.Placements {
		res.Trace = append(res.Trace, sim.Placement{Task: p.Task, Resource: p.Resource, Start: p.Start, End: p.End})
	}
	if err := sim.ValidateResult(g, 2, res); err != nil {
		t.Fatalf("served plan infeasible: %v", err)
	}

	// Same request again: cache hit, identical plan (deterministic seed).
	rec2, resp2 := postSchedule(t, h, req)
	if rec2.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec2.Code, rec2.Body.String())
	}
	if !resp2.CacheHit {
		t.Error("second request must hit the model cache")
	}
	if resp2.Makespan != resp.Makespan {
		t.Errorf("same seed, different makespans: %g vs %g", resp.Makespan, resp2.Makespan)
	}
}

func TestServeScheduleExplicitDAG(t *testing.T) {
	s := newTestServer(t)
	// A diamond: 0 -> {1,2} -> 3, borrowing cholesky kernel timings, served
	// by the T=2-trained model (train_t).
	req := ScheduleRequest{
		Kind: "cholesky", TrainT: 2, CPUs: 1, GPUs: 1, Sigma: 0, Seed: 3,
		DAG: &DAGSpec{
			Tasks: []DAGTask{{Kernel: 0, Name: "root"}, {Kernel: 1}, {Kernel: 2}, {Kernel: 3, Name: "sink"}},
			Edges: [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
		},
	}
	rec, resp := postSchedule(t, s.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.NumTasks != 4 || len(resp.Placements) != 4 {
		t.Fatalf("got %d tasks, %d placements", resp.NumTasks, len(resp.Placements))
	}
	if resp.Placements[0].Name != "root" {
		t.Errorf("task names not echoed: %+v", resp.Placements[0])
	}
}

func TestServeScheduleErrors(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"malformed json", `{`, http.StatusBadRequest},
		{"unknown field", `{"kind":"cholesky","t":4,"cpus":1,"gpus":1,"bogus":1}`, http.StatusBadRequest},
		{"missing kind", `{"t":4,"cpus":1,"gpus":1}`, http.StatusBadRequest},
		{"bad kind", `{"kind":"fft","t":4,"cpus":1,"gpus":1}`, http.StatusBadRequest},
		{"t=0", `{"kind":"cholesky","cpus":1,"gpus":1}`, http.StatusBadRequest},
		{"empty platform", `{"kind":"cholesky","t":4}`, http.StatusBadRequest},
		{"negative sigma", `{"kind":"cholesky","t":4,"cpus":1,"gpus":1,"sigma":-1}`, http.StatusBadRequest},
		{"no such model", `{"kind":"qr","t":4,"cpus":1,"gpus":1}`, http.StatusNotFound},
		{"dag without train_t", `{"kind":"cholesky","cpus":1,"gpus":1,"dag":{"tasks":[{"kernel":0}],"edges":[]}}`, http.StatusBadRequest},
		{"dag bad kernel", `{"kind":"cholesky","train_t":2,"cpus":1,"gpus":1,"dag":{"tasks":[{"kernel":9}],"edges":[]}}`, http.StatusBadRequest},
		{"dag cyclic", `{"kind":"cholesky","train_t":2,"cpus":1,"gpus":1,"dag":{"tasks":[{"kernel":0},{"kernel":1}],"edges":[[0,1],[1,0]]}}`, http.StatusBadRequest},
		{"dag edge out of range", `{"kind":"cholesky","train_t":2,"cpus":1,"gpus":1,"dag":{"tasks":[{"kernel":0}],"edges":[[0,5]]}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader([]byte(tc.body))))
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.status, rec.Body.String())
			}
			var e ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("error envelope missing: %s", rec.Body.String())
			}
		})
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/schedule", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/schedule -> %d, want 405", rec.Code)
	}
}

func TestServeModelsAndHealthz(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz -> %d", rec.Code)
	}
	var health struct {
		Status        string        `json:"status"`
		Build         obs.BuildInfo `json:"build"`
		UptimeSeconds *float64      `json:"uptime_seconds"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if health.Status != "ok" {
		t.Errorf("healthz status %q", health.Status)
	}
	if health.Build.Go == "" {
		t.Errorf("healthz build info missing go version: %+v", health.Build)
	}
	if health.UptimeSeconds == nil || *health.UptimeSeconds < 0 {
		t.Errorf("healthz uptime_seconds missing or negative: %v", health.UptimeSeconds)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/models", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("models -> %d: %s", rec.Code, rec.Body.String())
	}
	var models ModelsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &models); err != nil {
		t.Fatal(err)
	}
	if len(models.Models) != 3 {
		t.Fatalf("listed %d models, want 3", len(models.Models))
	}
	for _, m := range models.Models {
		if m.Loaded {
			t.Errorf("model %s loaded before any request", m.Name)
		}
	}
}

func TestServeMetrics(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	for i := 0; i < 3; i++ {
		rec, _ := postSchedule(t, h, ScheduleRequest{Kind: "cholesky", T: 4, CPUs: 1, GPUs: 1, Seed: int64(i)})
		if rec.Code != http.StatusOK {
			t.Fatalf("schedule %d -> %d", i, rec.Code)
		}
	}
	// One failing request to populate error counters.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader([]byte(`{`))))

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics -> %d", rec.Code)
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	eps, _ := m["endpoints"].(map[string]any)
	sched, _ := eps["schedule"].(map[string]any)
	if sched == nil {
		t.Fatalf("no schedule endpoint stats in %s", rec.Body.String())
	}
	if got := sched["requests"].(float64); got != 4 {
		t.Errorf("schedule requests = %v, want 4", got)
	}
	if got := sched["errors"].(float64); got != 1 {
		t.Errorf("schedule errors = %v, want 1", got)
	}
	lat, _ := sched["latency"].(map[string]any)
	if lat == nil || lat["count"].(float64) != 4 {
		t.Errorf("latency histogram wrong: %v", lat)
	}
	cache, _ := m["model_cache"].(map[string]any)
	if cache == nil || cache["hits"].(float64) != 2 || cache["misses"].(float64) != 1 {
		t.Errorf("cache stats wrong: %v", cache)
	}
	if m["schedules_answered"].(float64) != 3 {
		t.Errorf("schedules_answered = %v, want 3", m["schedules_answered"])
	}
}

func TestServeBackpressure(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, testSpec(taskgraph.Cholesky, 4, 1, 1))
	s := New(Config{ModelsDir: dir, Workers: 1, Queue: 1, RequestTimeout: 10 * time.Second})
	h := s.Handler()

	// Deterministically saturate the pool: park the single worker on a
	// blocked job and fill the one queue slot, then an HTTP request must be
	// rejected with 503 immediately.
	block := make(chan struct{})
	started := make(chan struct{})
	go s.pool.Do(context.Background(), func() { close(started); <-block })
	<-started
	go s.pool.Do(context.Background(), func() {})
	for deadline := time.Now().Add(5 * time.Second); s.pool.Queued() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("queue slot never filled")
		}
		time.Sleep(time.Millisecond)
	}

	rec, _ := postSchedule(t, h, ScheduleRequest{Kind: "cholesky", T: 4, CPUs: 1, GPUs: 1})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated pool -> %d, want 503", rec.Code)
	}
	close(block)

	// Once the pool clears, the same request succeeds and the rejection is
	// visible in the metrics.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec, _ = postSchedule(t, h, ScheduleRequest{Kind: "cholesky", T: 4, CPUs: 1, GPUs: 1})
		if rec.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never recovered: %d %s", rec.Code, rec.Body.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap := s.Metrics().Snapshot(s.Registry(), s.pool)
	if snap["rejected_busy"].(uint64) < 1 {
		t.Fatalf("rejection not counted: %v", snap["rejected_busy"])
	}
}

func TestServeGracefulShutdownDrains(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	// Launch requests, then shut down while they are in flight: every
	// accepted request must still be answered 200.
	const clients = 6
	codes := make(chan int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, _ := postSchedule(t, h, ScheduleRequest{Kind: "cholesky", T: 4, CPUs: 1, GPUs: 1, Sigma: 0.1, Seed: int64(i)})
			codes <- rec.Code
		}(i)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	close(codes)
	var ok, unavailable int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			unavailable++
		default:
			t.Fatalf("request -> %d during drain", c)
		}
	}
	if ok+unavailable != clients {
		t.Fatalf("ok=%d unavailable=%d of %d", ok, unavailable, clients)
	}

	// After the drain, new work is refused.
	rec, _ := postSchedule(t, h, ScheduleRequest{Kind: "cholesky", T: 4, CPUs: 1, GPUs: 1})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown schedule -> %d, want 503", rec.Code)
	}
	// Liveness and metrics stay up for the supervisor.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("healthz during drain -> %d", rec2.Code)
	}
}

func TestServeRequestTimeout(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, testSpec(taskgraph.Cholesky, 8, 1, 1))
	// A nanosecond deadline cannot fit a T=8 rollout.
	s := New(Config{ModelsDir: dir, Workers: 1, Queue: 4, RequestTimeout: time.Nanosecond})
	rec, _ := postSchedule(t, s.Handler(), ScheduleRequest{Kind: "cholesky", T: 8, CPUs: 1, GPUs: 1})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", rec.Code)
	}
}

// TestServedPlanMatchesDirectSchedule pins the serving path to the library
// path: the same model, problem and seed must produce the same makespan
// through HTTP as through core directly.
func TestServedPlanMatchesDirectSchedule(t *testing.T) {
	s := newTestServer(t)
	rec, resp := postSchedule(t, s.Handler(), ScheduleRequest{Kind: "cholesky", T: 4, CPUs: 1, GPUs: 1, Sigma: 0.2, Seed: 99})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}

	lease, _, err := s.Registry().Acquire(taskgraph.Cholesky, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	prob := core.Problem{
		Graph:    taskgraph.NewByKind(taskgraph.Cholesky, 4),
		Platform: platform.New(1, 1),
		Timing:   platform.TimingFor(taskgraph.Cholesky),
		Sigma:    0.2,
	}
	direct, err := prob.Simulate(core.NewPolicy(lease.Agent()), rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if direct.Makespan != resp.Makespan {
		t.Fatalf("served %g vs direct %g", resp.Makespan, direct.Makespan)
	}
}

// TestScheduleReducedPrecision runs a schedule request end to end with the
// int8 serving tier as the server default: the response must still be a
// complete, validated schedule (runSchedule re-validates every plan before
// answering, so a quantization-broken rollout could not slip through).
func TestScheduleReducedPrecision(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, testSpec(taskgraph.Cholesky, 4, 1, 1))
	s := New(Config{ModelsDir: dir, Workers: 2, Queue: 8, Precision: core.PrecisionInt8})
	rec, resp := postSchedule(t, s.Handler(), ScheduleRequest{Kind: "cholesky", T: 4, CPUs: 1, GPUs: 1, Seed: 7})
	if rec.Code != http.StatusOK {
		t.Fatalf("int8 schedule -> %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Makespan <= 0 || len(resp.Placements) != resp.NumTasks {
		t.Fatalf("int8 schedule implausible: %+v", resp)
	}
}
