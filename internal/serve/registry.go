package serve

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"

	"readys/internal/core"
	"readys/internal/exp"
	"readys/internal/taskgraph"
)

// errModelNotFound marks Acquire failures caused by a missing checkpoint
// file (mapped to 404 by the HTTP layer).
var errModelNotFound = errors.New("model not found")

// modelNameRE matches the canonical checkpoint naming convention produced by
// exp.AgentSpec.Name: readys_<kind>_T<T>_<c>c<g>g_w<w>_l<l>_h<h>.json.
var modelNameRE = regexp.MustCompile(`^readys_([a-z]+)_T(\d+)_(\d+)c(\d+)g_w(\d+)_l(\d+)_h(\d+)\.json$`)

// ParseModelName decodes a checkpoint file name into its AgentSpec, or
// reports ok=false when the name does not follow the convention.
func ParseModelName(base string) (exp.AgentSpec, bool) {
	m := modelNameRE.FindStringSubmatch(base)
	if m == nil {
		return exp.AgentSpec{}, false
	}
	kind, err := taskgraph.KindFromString(m[1])
	if err != nil {
		return exp.AgentSpec{}, false
	}
	atoi := func(s string) int { n, _ := strconv.Atoi(s); return n }
	spec := exp.DefaultAgentSpec(kind, atoi(m[2]), atoi(m[3]), atoi(m[4]))
	spec.Window, spec.Layers, spec.Hidden = atoi(m[5]), atoi(m[6]), atoi(m[7])
	return spec, true
}

// Registry lazily loads agents from a checkpoint directory and LRU-caches
// them keyed by their canonical model name. Each resident model keeps one
// master agent (the loaded parameters) plus a free list of clones; Acquire
// hands every caller its own clone, so concurrent requests never share a
// mutable agent even accidentally, and Release returns it for reuse.
type Registry struct {
	dir string
	// maxModels bounds the number of resident checkpoints (LRU eviction).
	maxModels int
	// maxIdleClones bounds each model's free list; clones beyond it are
	// dropped on Release and rebuilt on demand.
	maxIdleClones int

	mu      sync.Mutex
	byName  map[string]*list.Element // -> *model, element of lru
	lru     *list.List               // front = most recently used
	hits    uint64
	misses  uint64
	evicted uint64

	// defaultPrec is the serving precision for models without a per-model
	// override; prec holds the overrides keyed by cache key. The zero value
	// (PrecisionFloat64) serves bit-identically to the training-path policy.
	defaultPrec core.Precision
	prec        map[string]core.Precision

	// batch, when non-nil, makes every lease carry a shared per-model
	// batcher so concurrent rollouts coalesce their decision steps
	// (EnableBatching). Nil leaves leases batcher-free.
	batch *core.BatcherConfig
}

// model is one resident checkpoint.
type model struct {
	// key is the (kind, T, platform) cache key; name is the full canonical
	// checkpoint name including the architecture suffix.
	key    string
	name   string
	spec   exp.AgentSpec
	meta   map[string]string
	master *core.Agent
	free   []*core.Agent // idle clones, capped at maxIdleClones
	live   bool          // false once evicted: stale releases are dropped
	// batchers are the model's shared cross-request batchers, one per
	// precision tier, created lazily on first lease. They compute over the
	// master's (immutable) parameters; leases issued before an eviction keep
	// their batcher, which stays consistent with the weights they leased.
	batchers map[core.Precision]*core.Batcher
}

// Lease is one acquired agent instance. The agent is exclusively the
// lease-holder's until Release.
type Lease struct {
	registry *Registry
	model    *model
	agent    *core.Agent
	prec     core.Precision
	batcher  *core.Batcher
}

// Agent returns the leased inference instance.
func (l *Lease) Agent() *core.Agent { return l.agent }

// Precision returns the serving precision the lease's rollouts should run at
// (the model's override, else the registry default).
func (l *Lease) Precision() core.Precision { return l.prec }

// Batcher returns the shared cross-request batcher for the lease's model and
// precision, or nil when batching is disabled (or the model's architecture
// has no serving kernels). All concurrent leases of one model at one
// precision share the same batcher — that sharing is what lets their
// decision steps coalesce.
func (l *Lease) Batcher() *core.Batcher { return l.batcher }

// ModelName returns the canonical name of the model backing the lease.
func (l *Lease) ModelName() string { return l.model.name }

// Meta returns the checkpoint metadata of the model backing the lease.
func (l *Lease) Meta() map[string]string { return l.model.meta }

// Release returns the leased clone to the model's free list (or drops it if
// the model was evicted or the list is full). The lease must not be used
// afterwards.
func (l *Lease) Release() {
	if l.agent == nil {
		return
	}
	r, m, a := l.registry, l.model, l.agent
	l.agent = nil
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.live && len(m.free) < r.maxIdleClones {
		m.free = append(m.free, a)
	}
}

// NewRegistry builds a registry over dir holding at most maxModels resident
// checkpoints (minimum 1) and at most maxIdleClones idle per-worker clones
// per checkpoint (minimum 1).
func NewRegistry(dir string, maxModels, maxIdleClones int) *Registry {
	if maxModels < 1 {
		maxModels = 1
	}
	if maxIdleClones < 1 {
		maxIdleClones = 1
	}
	return &Registry{
		dir:           dir,
		maxModels:     maxModels,
		maxIdleClones: maxIdleClones,
		byName:        make(map[string]*list.Element),
		lru:           list.New(),
	}
}

// EnableBatching makes every subsequent lease carry a shared per-model
// batcher: concurrent rollouts on one checkpoint submit their decision steps
// to it and they coalesce into row-batched forwards over the master's
// parameters (bit-identical per request at float64 — see core.Batcher).
// Call once at service construction, before serving traffic.
func (r *Registry) EnableBatching(cfg core.BatcherConfig) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.batch = &cfg
}

// batcherLocked resolves the shared batcher for a model at a precision,
// creating it on first use; callers hold r.mu. Creation converts the master's
// weights for the reduced tiers, which is acceptable under the lock because
// it happens once per resident (model, precision) pair. DenseProp masters
// have no serving kernels and lease with a nil batcher (the policy falls
// back to its per-request path).
func (r *Registry) batcherLocked(m *model, prec core.Precision) *core.Batcher {
	if r.batch == nil || m.master.Cfg.DenseProp {
		return nil
	}
	b, ok := m.batchers[prec]
	if !ok {
		if m.batchers == nil {
			m.batchers = make(map[core.Precision]*core.Batcher)
		}
		b = core.NewBatcher(m.master, prec, *r.batch)
		m.batchers[prec] = b
	}
	return b
}

// SetDefaultPrecision sets the serving precision used for every model without
// a per-model override (readys-serve -precision). Affects leases acquired
// after the call; in-flight leases keep the precision they were issued with.
func (r *Registry) SetDefaultPrecision(p core.Precision) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.defaultPrec = p
}

// SetPrecision overrides the serving precision for the problem combination
// the named checkpoint serves (base as accepted by Invalidate). Returns false
// when the name does not parse as a canonical model name.
func (r *Registry) SetPrecision(base string, p core.Precision) bool {
	spec, ok := ParseModelName(base)
	if !ok {
		return false
	}
	key := cacheKey(spec.Kind, spec.T, spec.NumCPU, spec.NumGPU)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.prec == nil {
		r.prec = make(map[string]core.Precision)
	}
	r.prec[key] = p
	return true
}

// precLocked resolves the serving precision for a cache key; callers hold
// r.mu.
func (r *Registry) precLocked(key string) core.Precision {
	if p, ok := r.prec[key]; ok {
		return p
	}
	return r.defaultPrec
}

// cacheKey is the registry's cache key: the problem combination a model was
// trained for, independent of its architecture. It doubles as the canonical
// file-name prefix of the combination's checkpoints.
func cacheKey(kind taskgraph.Kind, T, cpus, gpus int) string {
	return fmt.Sprintf("readys_%s_T%d_%dc%dg", kind, T, cpus, gpus)
}

// resolveSpec finds a checkpoint for the combination in dir, discovering the
// architecture (w/l/h) from the file name. When several architectures exist
// for one combination, the lexicographically first name wins, keeping the
// choice deterministic.
func (r *Registry) resolveSpec(kind taskgraph.Kind, T, cpus, gpus int) (exp.AgentSpec, error) {
	paths, err := filepath.Glob(filepath.Join(r.dir, cacheKey(kind, T, cpus, gpus)+"_w*.json"))
	if err != nil {
		return exp.AgentSpec{}, err
	}
	sort.Strings(paths)
	for _, p := range paths {
		if spec, ok := ParseModelName(filepath.Base(p)); ok {
			return spec, nil
		}
	}
	return exp.AgentSpec{}, fmt.Errorf("serve: no checkpoint %s_* in %s (train it with readys-train): %w",
		cacheKey(kind, T, cpus, gpus), r.dir, errModelNotFound)
}

// Acquire leases an inference agent for the given problem combination,
// loading the checkpoint on first use. cacheHit reports whether the model
// was already resident. Callers must Release the lease.
func (r *Registry) Acquire(kind taskgraph.Kind, T, cpus, gpus int) (lease *Lease, cacheHit bool, err error) {
	name := cacheKey(kind, T, cpus, gpus)

	r.mu.Lock()
	if el, ok := r.byName[name]; ok {
		r.lru.MoveToFront(el)
		m := el.Value.(*model)
		r.hits++
		agent := m.popFreeLocked()
		master := m.master
		prec := r.precLocked(name)
		batcher := r.batcherLocked(m, prec)
		r.mu.Unlock()
		if agent == nil {
			// Clone outside the lock: parameter copies are the expensive
			// part, and the master's values are immutable once loaded.
			agent = master.Clone()
		}
		return &Lease{registry: r, model: m, agent: agent, prec: prec, batcher: batcher}, true, nil
	}
	r.misses++
	r.mu.Unlock()

	// Load outside the lock so a slow disk read does not serialise the
	// whole service. A racing load of the same model is harmless: the
	// loser's copy is inserted-or-discarded below.
	spec, err := r.resolveSpec(kind, T, cpus, gpus)
	if err != nil {
		return nil, false, err
	}
	path := spec.ModelPath(r.dir)
	master := core.NewAgent(spec.AgentConfig())
	meta, err := master.LoadCheckpoint(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, fmt.Errorf("serve: checkpoint %s disappeared: %w", path, errModelNotFound)
		}
		return nil, false, fmt.Errorf("serve: loading %s: %w", path, err)
	}

	r.mu.Lock()
	if el, ok := r.byName[name]; ok {
		// Someone else finished loading first; use theirs.
		r.lru.MoveToFront(el)
		m := el.Value.(*model)
		agent := m.popFreeLocked()
		prec := r.precLocked(name)
		batcher := r.batcherLocked(m, prec)
		r.mu.Unlock()
		if agent == nil {
			agent = m.master.Clone()
		}
		return &Lease{registry: r, model: m, agent: agent, prec: prec, batcher: batcher}, true, nil
	}
	m := &model{key: name, name: spec.Name(), spec: spec, meta: meta, master: master, live: true}
	r.byName[name] = r.lru.PushFront(m)
	for r.lru.Len() > r.maxModels {
		oldest := r.lru.Back()
		victim := oldest.Value.(*model)
		victim.live = false
		victim.free = nil
		r.lru.Remove(oldest)
		delete(r.byName, victim.key)
		r.evicted++
	}
	prec := r.precLocked(name)
	batcher := r.batcherLocked(m, prec)
	r.mu.Unlock()
	// The first lease uses its own clone so the master's parameters stay a
	// pristine copy of the checkpoint.
	return &Lease{registry: r, model: m, agent: master.Clone(), prec: prec, batcher: batcher}, false, nil
}

// popFreeLocked pops an idle clone; callers hold r.mu.
func (m *model) popFreeLocked() *core.Agent {
	if n := len(m.free); n > 0 {
		a := m.free[n-1]
		m.free = m.free[:n-1]
		return a
	}
	return nil
}

// Stats returns the registry's counters: resident models, cache hits,
// misses and evictions.
func (r *Registry) Stats() (resident int, hits, misses, evicted uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len(), r.hits, r.misses, r.evicted
}

// List scans the model directory for canonically named checkpoints and
// reports each with its resident state. The listing is sorted by name.
func (r *Registry) List() ([]ModelInfo, error) {
	paths, err := filepath.Glob(filepath.Join(r.dir, "readys_*.json"))
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	loaded := make(map[string]map[string]string, len(r.byName))
	for _, el := range r.byName {
		m := el.Value.(*model)
		loaded[m.name] = m.meta
	}
	r.mu.Unlock()

	var out []ModelInfo
	for _, p := range paths {
		spec, ok := ParseModelName(filepath.Base(p))
		if !ok {
			continue
		}
		meta, resident := loaded[spec.Name()]
		out = append(out, ModelInfo{
			Name:   spec.Name(),
			Kind:   spec.Kind.String(),
			T:      spec.T,
			CPUs:   spec.NumCPU,
			GPUs:   spec.NumGPU,
			Window: spec.Window,
			Layers: spec.Layers,
			Hidden: spec.Hidden,
			Loaded: resident,
			Meta:   meta,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Dir returns the registry's checkpoint directory.
func (r *Registry) Dir() string { return r.dir }

// Invalidate evicts the resident model serving the combination the named
// checkpoint belongs to, so the next Acquire reloads from disk. Returns true
// when a resident model was dropped. Leases already handed out keep their
// clones; stale releases are discarded via the live flag.
func (r *Registry) Invalidate(base string) bool {
	spec, ok := ParseModelName(base)
	if !ok {
		return false
	}
	key := cacheKey(spec.Kind, spec.T, spec.NumCPU, spec.NumGPU)
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.byName[key]
	if !ok {
		return false
	}
	m := el.Value.(*model)
	m.live = false
	m.free = nil
	r.lru.Remove(el)
	delete(r.byName, key)
	r.evicted++
	return true
}

// Publish installs checkpoint bytes under the canonical name base in the
// registry's directory (atomically: temp file + rename) and invalidates any
// resident model for that combination. It is the fleet's train → serve
// hook: a completed training job publishes here and the very next Acquire
// serves the new weights. The name must parse as a canonical model name.
func (r *Registry) Publish(base string, data []byte) error {
	if _, ok := ParseModelName(base); !ok {
		return fmt.Errorf("serve: publish: %q is not a canonical model name", base)
	}
	tmp, err := os.CreateTemp(r.dir, ".publish-*")
	if err != nil {
		return fmt.Errorf("serve: staging %s: %w", base, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: writing %s: %w", base, err)
	}
	// Sync before rename so a crash just after publish cannot install a
	// zero-length or torn checkpoint under the canonical name.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: syncing %s: %w", base, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(r.dir, base)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: installing %s: %w", base, err)
	}
	r.Invalidate(base)
	return nil
}
