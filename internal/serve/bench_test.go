package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"readys/internal/taskgraph"
)

// BenchmarkServeScheduleThroughput measures requests/sec through the full
// handler path — JSON decode, registry cache hit, pool dispatch, rollout,
// baseline references, JSON encode — at 1, 4 and 16 concurrent clients.
// The model is warmed before timing so every iteration is a cache hit.
func BenchmarkServeScheduleThroughput(b *testing.B) {
	dir := b.TempDir()
	writeTestModel(b, dir, testSpec(taskgraph.Cholesky, 4, 1, 1))
	s := New(Config{ModelsDir: dir, Workers: 16, Queue: 1024, RequestTimeout: time.Minute})
	h := s.Handler()

	body, err := json.Marshal(ScheduleRequest{Kind: "cholesky", T: 4, CPUs: 1, GPUs: 1, Sigma: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	warm := httptest.NewRecorder()
	h.ServeHTTP(warm, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body)))
	if warm.Code != http.StatusOK {
		b.Fatalf("warm-up -> %d: %s", warm.Code, warm.Body.String())
	}

	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			var failures atomic.Uint64
			var next atomic.Int64
			var wg sync.WaitGroup
			start := time.Now()
			b.ResetTimer()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						rec := httptest.NewRecorder()
						h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body)))
						if rec.Code != http.StatusOK {
							failures.Add(1)
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			if f := failures.Load(); f > 0 {
				b.Fatalf("%d of %d requests failed", f, b.N)
			}
			if el := time.Since(start).Seconds(); el > 0 {
				b.ReportMetric(float64(b.N)/el, "req/s")
			}
		})
	}
}
