package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(4, 8)
	defer p.Shutdown(context.Background())
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				err := p.Do(context.Background(), func() { n.Add(1) })
				if err == nil {
					return
				}
				if !errors.Is(err, ErrBusy) {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := n.Load(); got != 32 {
		t.Fatalf("ran %d jobs, want 32", got)
	}
}

func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Shutdown(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func() { close(started); <-block })
	<-started // worker busy
	// Fill the one queue slot and wait until it is occupied...
	go p.Do(context.Background(), func() {})
	for deadline := time.Now().Add(5 * time.Second); p.Queued() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("queue slot never filled")
		}
		time.Sleep(time.Millisecond)
	}
	// ...then a submission must fail fast with ErrBusy.
	if err := p.Do(context.Background(), func() {}); !errors.Is(err, ErrBusy) {
		t.Fatalf("full queue: err = %v, want ErrBusy", err)
	}
	close(block)
}

func TestPoolRequestTimeout(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Shutdown(context.Background())
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	go p.Do(context.Background(), func() { close(started); <-release })
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := p.Do(ctx, func() {})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestPoolShutdownDrains(t *testing.T) {
	p := NewPool(2, 16)
	var n atomic.Int64
	const jobs = 10
	gate := make(chan struct{})
	for i := 0; i < jobs; i++ {
		go func() {
			// Detached submitter: Do blocks until the job runs, which is
			// after Shutdown starts draining.
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			p.Do(ctx, func() { <-gate; n.Add(1) })
		}()
	}
	// The queue is larger than the job count, so every submission lands.
	for deadline := time.Now().Add(5 * time.Second); p.Queued()+p.Running() < jobs; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d jobs accepted", p.Queued()+p.Running(), jobs)
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- p.Shutdown(ctx)
	}()
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := n.Load(); got != jobs {
		t.Fatalf("drained %d of %d accepted jobs", got, jobs)
	}
	if err := p.Do(context.Background(), func() {}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit: %v, want ErrShuttingDown", err)
	}
}

func TestPoolShutdownTimeout(t *testing.T) {
	p := NewPool(1, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func() { close(started); <-release })
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown with a stuck worker: %v, want DeadlineExceeded", err)
	}
	close(release)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown after release: %v", err)
	}
}
