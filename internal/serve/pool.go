package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrBusy is returned by Pool.Do when the bounded queue is full: the
// service's backpressure signal (mapped to 503 by the HTTP layer).
var ErrBusy = errors.New("serve: queue full")

// ErrShuttingDown is returned by Pool.Do once Shutdown has begun.
var ErrShuttingDown = errors.New("serve: shutting down")

// Pool runs submitted jobs on a fixed set of worker goroutines behind a
// bounded queue. Jobs already queued when Shutdown is called are drained, so
// a restarting daemon never drops accepted work.
type Pool struct {
	jobs    chan *poolJob
	wg      sync.WaitGroup
	mu      sync.RWMutex // guards closing against concurrent submits
	closed  bool
	queued  atomic.Int64
	running atomic.Int64
}

type poolJob struct {
	run  func()
	done chan struct{}
}

// NewPool starts workers goroutines (minimum 1) consuming a queue of the
// given capacity (minimum 0; zero means a job is only accepted when a worker
// is blocked waiting for one).
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{jobs: make(chan *poolJob, queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.queued.Add(-1)
		p.running.Add(1)
		j.run()
		p.running.Add(-1)
		close(j.done)
	}
}

// Do submits fn and waits for it to finish or for ctx to end. A full queue
// fails fast with ErrBusy. When ctx ends first, Do returns ctx.Err() but the
// job itself stays queued and will still run — fn must be safe to complete
// after its requester has gone away.
func (p *Pool) Do(ctx context.Context, fn func()) error {
	j := &poolJob{run: fn, done: make(chan struct{})}

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrShuttingDown
	}
	select {
	case p.jobs <- j:
		p.queued.Add(1)
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		return ErrBusy
	}

	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Queued returns the number of jobs accepted but not yet started.
func (p *Pool) Queued() int { return int(p.queued.Load()) }

// Running returns the number of jobs currently executing.
func (p *Pool) Running() int { return int(p.running.Load()) }

// Shutdown stops accepting new jobs, then waits until every queued and
// running job has finished or ctx ends. It returns nil on a complete drain,
// ctx.Err() otherwise. Safe to call more than once.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
