package serve

import (
	"math/rand"
	"sync"
	"testing"

	"readys/internal/core"
	"readys/internal/platform"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// TestConcurrentInference drives ONE loaded agent from many goroutines at
// once, each scheduling a different problem with its own Policy. Run under
// `go test -race ./internal/serve/...` this enforces the contract documented
// on core.Agent.Forward: inference reads shared parameters but mutates no
// shared state. The registry's per-lease clones make sharing unnecessary in
// production, but the contract must hold even for a shared instance.
func TestConcurrentInference(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(taskgraph.Cholesky, 4, 1, 1)
	writeTestModel(t, dir, spec)
	r := NewRegistry(dir, 2, 2)
	lease, _, err := r.Acquire(taskgraph.Cholesky, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	shared := lease.Agent()

	problems := []struct {
		kind taskgraph.Kind
		T    int
		cpus int
		gpus int
	}{
		{taskgraph.Cholesky, 3, 1, 1},
		{taskgraph.Cholesky, 4, 2, 2},
		{taskgraph.Cholesky, 5, 1, 2},
		{taskgraph.LU, 3, 2, 1},
		{taskgraph.LU, 4, 1, 1},
		{taskgraph.QR, 3, 1, 1},
		{taskgraph.QR, 4, 2, 2},
		{taskgraph.Cholesky, 6, 4, 0},
		{taskgraph.LU, 5, 0, 4},
		{taskgraph.QR, 5, 2, 0},
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(problems))
	for i, pc := range problems {
		wg.Add(1)
		go func(seed int64, kind taskgraph.Kind, T, cpus, gpus int) {
			defer wg.Done()
			prob := core.Problem{
				Graph:    taskgraph.NewByKind(kind, T),
				Platform: platform.New(cpus, gpus),
				Timing:   platform.TimingFor(kind),
				Sigma:    0.2,
			}
			res, err := prob.Simulate(core.NewPolicy(shared), rand.New(rand.NewSource(seed)))
			if err != nil {
				errs <- err
				return
			}
			errs <- sim.ValidateResult(prob.Graph, prob.Platform.Size(), res)
		}(int64(i), pc.kind, pc.T, pc.cpus, pc.gpus)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentRegistry hammers Acquire/Release across goroutines and
// models, interleaved with List and Stats, to catch registry-internal races
// (LRU mutation, free-list reuse, racing first loads).
func TestConcurrentRegistry(t *testing.T) {
	dir := t.TempDir()
	for _, T := range []int{2, 3, 4, 5} {
		writeTestModel(t, dir, testSpec(taskgraph.Cholesky, T, 1, 1))
	}
	r := NewRegistry(dir, 2, 2) // small cache forces concurrent evictions
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				T := 2 + (g+i)%4
				lease, _, err := r.Acquire(taskgraph.Cholesky, T, 1, 1)
				if err != nil {
					errs <- err
					return
				}
				prob := core.Problem{
					Graph:    taskgraph.NewByKind(taskgraph.Cholesky, T),
					Platform: platform.New(1, 1),
					Timing:   platform.TimingFor(taskgraph.Cholesky),
				}
				if _, err := prob.Simulate(core.NewPolicy(lease.Agent()), rand.New(rand.NewSource(int64(i)))); err != nil {
					errs <- err
				}
				lease.Release()
				if _, err := r.List(); err != nil {
					errs <- err
				}
				r.Stats()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
