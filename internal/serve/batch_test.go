package serve

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"readys/internal/taskgraph"
)

// TestBatchedServingBitIdentical drives one batched server and one unbatched
// server with the same request mix and requires identical schedules: batching
// is a throughput mechanism, never a behavioural one. The batched server
// takes 8 concurrent clients so decisions genuinely coalesce (asserted via
// the flush-width histogram below).
func TestBatchedServingBitIdentical(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, testSpec(taskgraph.Cholesky, 4, 1, 1))

	ref := New(Config{ModelsDir: dir, Workers: 1, Queue: 32, RequestTimeout: 30 * time.Second})
	batched := New(Config{
		ModelsDir: dir, Queue: 32, RequestTimeout: 30 * time.Second,
		Batch: true, BatchWidth: 8, BatchDwell: 2 * time.Millisecond,
	})

	const clients = 8
	mkReq := func(seed int64) ScheduleRequest {
		return ScheduleRequest{Kind: "cholesky", T: 4, CPUs: 1, GPUs: 1, Seed: seed}
	}

	want := make([]ScheduleResponse, clients)
	for i := range want {
		rec, resp := postSchedule(t, ref.Handler(), mkReq(int64(i)))
		if rec.Code != http.StatusOK {
			t.Fatalf("reference seed %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		want[i] = resp
	}

	// Batching coalesces decisions from rollouts that overlap in time. A
	// GOMAXPROCS=1 test box runs each tiny rollout to completion before the
	// next request is even admitted, so overlap is forced deterministically:
	// plug every pool worker, admit all clients (they attach to the batcher
	// and enqueue), then release the plugs so the rollouts start together.
	barrier := make(chan struct{})
	started := make(chan struct{}, clients)
	for i := 0; i < clients; i++ {
		go batched.pool.Do(context.Background(), func() {
			started <- struct{}{}
			<-barrier
		})
	}
	for i := 0; i < clients; i++ {
		<-started
	}

	got := make([]ScheduleResponse, clients)
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, resp := postSchedule(t, batched.Handler(), mkReq(int64(i)))
			codes[i], got[i] = rec.Code, resp
		}(i)
	}
	for batched.pool.Queued() < clients {
		time.Sleep(100 * time.Microsecond)
	}
	close(barrier)
	wg.Wait()

	for i := range got {
		if codes[i] != http.StatusOK {
			t.Fatalf("batched seed %d: status %d", i, codes[i])
		}
		if got[i].Makespan != want[i].Makespan {
			t.Errorf("seed %d: batched makespan %v, unbatched %v", i, got[i].Makespan, want[i].Makespan)
		}
		if got[i].Decisions != want[i].Decisions || got[i].IdleDecisions != want[i].IdleDecisions {
			t.Errorf("seed %d: decision counts diverged: batched %d/%d, unbatched %d/%d",
				i, got[i].Decisions, got[i].IdleDecisions, want[i].Decisions, want[i].IdleDecisions)
		}
		if len(got[i].Placements) != len(want[i].Placements) {
			t.Fatalf("seed %d: %d placements batched vs %d unbatched", i, len(got[i].Placements), len(want[i].Placements))
		}
		for j := range got[i].Placements {
			if got[i].Placements[j] != want[i].Placements[j] {
				t.Errorf("seed %d placement %d: batched %+v, unbatched %+v", i, j, got[i].Placements[j], want[i].Placements[j])
			}
		}
	}

	// The batch instrumentation must show real coalescing happened, and the
	// exposition must carry the new families in Prometheus histogram shape.
	rec := httptest.NewRecorder()
	batched.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=prometheus", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, line := range []string{
		"# TYPE readys_batch_width histogram",
		"# TYPE readys_batch_dwell_us histogram",
		`readys_batch_width_bucket{le="8"}`,
		`readys_batch_dwell_us_bucket{le="100"}`,
	} {
		if !strings.Contains(body, line) {
			t.Errorf("prometheus exposition missing %q", line)
		}
	}
	flushes, decisions := promValue(t, body, "readys_batch_width_count"), promValue(t, body, "readys_batch_width_sum")
	if flushes == 0 {
		t.Fatal("batched server recorded zero batch flushes")
	}
	if decisions <= flushes {
		t.Errorf("no coalescing: %v decisions over %v flushes (mean width %.2f)",
			decisions, flushes, decisions/flushes)
	}

	// The unbatched server must not have grown batch series beyond zero.
	rec = httptest.NewRecorder()
	ref.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=prometheus", nil))
	if v := promValue(t, rec.Body.String(), "readys_batch_width_count"); v != 0 {
		t.Errorf("unbatched server recorded %v batch flushes", v)
	}
}

// promValue scans a Prometheus text exposition for an unlabelled sample line
// and returns its value.
func promValue(t testing.TB, body, name string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("exposition has no sample %q", name)
	return 0
}

// TestBatchConfigRaisesWorkerFloor pins the worker-floor rule: a batched
// server must run at least BatchWidth workers, or rollouts could never
// overlap enough to fill a batch.
func TestBatchConfigRaisesWorkerFloor(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, testSpec(taskgraph.Cholesky, 2, 1, 1))
	s := New(Config{ModelsDir: dir, Workers: 1, Batch: true, BatchWidth: 8})
	if s.cfg.Workers != 8 {
		t.Fatalf("Workers = %d with BatchWidth 8, want 8", s.cfg.Workers)
	}
	if s.cfg.BatchDwell != 0 {
		t.Fatalf("BatchDwell defaulting is the batcher's job; config should stay 0, got %v", s.cfg.BatchDwell)
	}
}
