package sched

import (
	"math/rand"

	"readys/internal/platform"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// jobTaskLess reports whether ready task a precedes ready task b in the
// deterministic tie-break order used when a policy's scheduling key (ECT,
// rank, ...) is exactly equal: lower job ID first, then lower task ID. In
// single-job runs JobOf is identically zero, so the order reduces to task ID
// — the engine's historical first-seen order over the sorted ready set —
// which keeps single-DAG schedules (and the golden Cholesky trace)
// byte-identical. Under multi-job ready sets it pins the winner explicitly
// instead of leaning on iteration order.
func jobTaskLess(s *sim.State, a, b int) bool {
	if ja, jb := s.JobOf(a), s.JobOf(b); ja != jb {
		return ja < jb
	}
	return a < b
}

// FIFOPolicy always starts the lowest-ID ready task on whichever resource
// asks. Task IDs follow generation order, which for the factorisation DAGs is
// a sensible elimination order, so FIFO is a meaningful weak baseline.
type FIFOPolicy struct{}

// Reset implements sim.Policy.
func (FIFOPolicy) Reset(*sim.State) {}

// Decide implements sim.Policy.
func (FIFOPolicy) Decide(s *sim.State, _ int) int { return s.Ready[0] }

// RandomPolicy starts a uniformly random ready task. It needs its own RNG so
// that baseline randomness is decoupled from the simulator's duration noise.
type RandomPolicy struct {
	Rng *rand.Rand
}

// Reset implements sim.Policy.
func (RandomPolicy) Reset(*sim.State) {}

// Decide implements sim.Policy.
func (p RandomPolicy) Decide(s *sim.State, _ int) int {
	return s.Ready[p.Rng.Intn(len(s.Ready))]
}

// RankPolicy is dynamic list scheduling with HEFT priorities: it always
// starts the ready task with the highest upward rank (the task farthest from
// the end of the computation), on whichever resource asks. It uses dynamic
// dispatch like MCT but HEFT's global priority information, isolating the
// value of priorities from the value of static placement.
type RankPolicy struct {
	rank []float64
}

// NewRankPolicy precomputes upward ranks for the given problem.
func NewRankPolicy(g *taskgraph.Graph, plat platform.Platform, tt platform.Timing) *RankPolicy {
	return &RankPolicy{rank: UpwardRanks(g, plat, tt)}
}

// Reset implements sim.Policy.
func (*RankPolicy) Reset(*sim.State) {}

// Decide implements sim.Policy.
func (p *RankPolicy) Decide(s *sim.State, _ int) int {
	best := s.Ready[0]
	for _, t := range s.Ready[1:] {
		if p.rank[t] > p.rank[best] || (p.rank[t] == p.rank[best] && jobTaskLess(s, t, best)) {
			best = t
		}
	}
	return best
}
