package sched

import (
	"math"
	"math/rand"
	"testing"

	"readys/internal/platform"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

func TestHEFTCommReducesToHEFTWithNilModel(t *testing.T) {
	g, plat, tt := setup(taskgraph.Cholesky, 6, 2, 2)
	a := HEFT(g, plat, tt)
	b := HEFTComm(g, plat, tt, nil)
	if a.Makespan != b.Makespan {
		t.Fatalf("nil comm model changed HEFT: %v vs %v", a.Makespan, b.Makespan)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("assignments differ under nil comm")
		}
	}
}

func TestUpwardRanksCommAddsEdgeTerm(t *testing.T) {
	g := taskgraph.NewCholesky(2) // chain-ish DAG with 4 tasks
	plat := platform.New(2, 0)
	tt := platform.TimingFor(taskgraph.Cholesky)
	comm := &platform.CommModel{LatencyMs: 10, TileBytes: 0, BandwidthBytesPerMs: 1}
	base := UpwardRanks(g, plat, tt)
	withComm := UpwardRanksComm(g, plat, tt, comm)
	// Ranks of non-sink tasks must grow by at least one mean edge cost.
	cbar := comm.MeanCost(plat.Size())
	root := g.Roots()[0]
	if withComm[root] < base[root]+cbar-1e-9 {
		t.Fatalf("comm rank %v should exceed %v", withComm[root], base[root]+cbar)
	}
	sink := g.Sinks()[0]
	if withComm[sink] != base[sink] {
		t.Fatal("sink rank must be unchanged (no outgoing edges)")
	}
}

func TestHEFTCommAvoidsScatterWhenCommDominates(t *testing.T) {
	// With transfers far more expensive than any kernel, HEFT should place a
	// dependent chain on a single resource.
	g := taskgraph.NewCholesky(4)
	plat := platform.New(2, 0)
	tt := platform.TimingFor(taskgraph.Cholesky)
	comm := &platform.CommModel{LatencyMs: 10000, TileBytes: 0, BandwidthBytesPerMs: 1}
	h := HEFTComm(g, plat, tt, comm)
	first := h.Assignment[0]
	for tsk, r := range h.Assignment {
		if r != first {
			t.Fatalf("task %d scattered to resource %d despite dominant comm", tsk, r)
		}
	}
}

func TestHEFTCommProjectionMatchesSimulatedExecution(t *testing.T) {
	g, plat, tt := setup(taskgraph.Cholesky, 5, 2, 2)
	comm := platform.DefaultCommModel()
	h := HEFTComm(g, plat, tt, comm)
	res, err := sim.Simulate(g, plat, tt, NewStaticPolicy(h), sim.Options{
		Rng: rand.New(rand.NewSource(1)), Comm: comm,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The simulator's stall model can only delay relative to HEFT's
	// projection (which plans transfers into the gaps); executed makespan
	// must be >= projected and within a few transfer costs of it.
	if res.Makespan < h.Makespan-1e-6 {
		t.Fatalf("executed %v beats projection %v", res.Makespan, h.Makespan)
	}
	slack := 20 * comm.Cost(0, 1)
	if res.Makespan > h.Makespan+slack {
		t.Fatalf("executed %v too far above projection %v", res.Makespan, h.Makespan)
	}
}

func TestMCTWithCommStillValid(t *testing.T) {
	g, plat, tt := setup(taskgraph.LU, 4, 2, 2)
	res, err := sim.Simulate(g, plat, tt, MCTPolicy{}, sim.Options{
		Sigma: 0.2, Comm: platform.DefaultCommModel(), Rng: rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.ValidateResult(g, plat.Size(), res); err != nil {
		t.Fatal(err)
	}
}

func TestMCTCommPrefersDataLocalityWhenCommDominates(t *testing.T) {
	// Chain A→B on 2 CPUs with huge transfer cost: MCT must keep B where A
	// ran.
	g := taskgraph.NewCustom(taskgraph.Cholesky, [4]string{"POTRF", "TRSM", "SYRK", "GEMM"})
	a := g.AddTask(taskgraph.KPOTRF, "A")
	b := g.AddTask(taskgraph.KPOTRF, "B")
	g.AddEdge(a, b)
	plat := platform.New(2, 0)
	tt := platform.TimingFor(taskgraph.Cholesky)
	comm := &platform.CommModel{LatencyMs: 1000, TileBytes: 0, BandwidthBytesPerMs: 1}
	res, err := sim.Simulate(g, plat, tt, MCTPolicy{}, sim.Options{
		Comm: comm, Rng: rand.New(rand.NewSource(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	var resA, resB int
	for _, p := range res.Trace {
		if p.Task == a {
			resA = p.Resource
		}
		if p.Task == b {
			resB = p.Resource
		}
	}
	if resA != resB {
		t.Fatalf("MCT ignored data locality: A on %d, B on %d", resA, resB)
	}
	if math.Abs(res.Makespan-32) > 1e-9 {
		t.Fatalf("makespan %v, want 32 (two local POTRFs)", res.Makespan)
	}
}
