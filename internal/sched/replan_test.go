package sched

import (
	"math"
	"math/rand"
	"testing"

	"readys/internal/sim"
	"readys/internal/taskgraph"
)

func TestReplanHEFTValidAcrossFamilies(t *testing.T) {
	for _, kind := range []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR} {
		g, plat, tt := setup(kind, 5, 2, 2)
		for _, sigma := range []float64{0, 0.4} {
			res, err := sim.Simulate(g, plat, tt, NewReplanHEFTPolicy(), sim.Options{
				Sigma: sigma, Rng: rand.New(rand.NewSource(1)),
			})
			if err != nil {
				t.Fatalf("%v σ=%v: %v", kind, sigma, err)
			}
			if err := sim.ValidateResult(g, plat.Size(), res); err != nil {
				t.Fatalf("%v σ=%v: %v", kind, sigma, err)
			}
		}
	}
}

func TestReplanHEFTMatchesHEFTAtSigmaZero(t *testing.T) {
	// Without noise nothing drifts, so re-planning must reproduce (up to
	// equal-rank tie-breaks) the static HEFT makespan.
	g, plat, tt := setup(taskgraph.Cholesky, 6, 2, 2)
	h := HEFT(g, plat, tt)
	res, err := sim.Simulate(g, plat, tt, NewReplanHEFTPolicy(), sim.Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-h.Makespan) > 0.05*h.Makespan {
		t.Fatalf("replan %.1f deviates from static HEFT %.1f at σ=0", res.Makespan, h.Makespan)
	}
}

func TestReplanHEFTBeatsStaticUnderStrongNoise(t *testing.T) {
	// Re-planning adapts; the static replay cannot. Averaged over seeds the
	// adaptive variant must not be worse.
	g, plat, tt := setup(taskgraph.Cholesky, 8, 2, 2)
	h := HEFT(g, plat, tt)
	var staticSum, replanSum float64
	const runs = 15
	for i := 0; i < runs; i++ {
		rs, err := sim.Simulate(g, plat, tt, NewStaticPolicy(h), sim.Options{
			Sigma: 0.6, Rng: rand.New(rand.NewSource(int64(i))),
		})
		if err != nil {
			t.Fatal(err)
		}
		staticSum += rs.Makespan
		rr, err := sim.Simulate(g, plat, tt, NewReplanHEFTPolicy(), sim.Options{
			Sigma: 0.6, Rng: rand.New(rand.NewSource(int64(i))),
		})
		if err != nil {
			t.Fatal(err)
		}
		replanSum += rr.Makespan
	}
	if replanSum > staticSum*1.02 {
		t.Fatalf("replanning HEFT (%.0f) worse than static (%.0f) under noise", replanSum/runs, staticSum/runs)
	}
}

func TestReplanHEFTResetBetweenEpisodes(t *testing.T) {
	g, plat, tt := setup(taskgraph.LU, 4, 2, 2)
	pol := NewReplanHEFTPolicy()
	for i := 0; i < 3; i++ {
		res, err := sim.Simulate(g, plat, tt, pol, sim.Options{Sigma: 0.3, Rng: rand.New(rand.NewSource(int64(i)))})
		if err != nil {
			t.Fatalf("episode %d: %v", i, err)
		}
		if err := sim.ValidateResult(g, plat.Size(), res); err != nil {
			t.Fatalf("episode %d: %v", i, err)
		}
	}
}
