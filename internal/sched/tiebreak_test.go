package sched

import (
	"math/rand"
	"testing"

	"readys/internal/platform"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// twoJobTieState builds a minimal two-task state where both ready tasks are
// interchangeable (same kernel, no predecessors, idle platform), so every
// ECT- or rank-based key ties exactly. JobID is deliberately NON-monotone in
// task ID — task 0 belongs to job 1 and task 1 to job 0 — so the (job, task)
// tie-break order differs from plain task order and from ready-set iteration
// order: any policy leaning on first-seen iteration would pick task 0.
func twoJobTieState() *sim.State {
	g := taskgraph.NewCustom(taskgraph.Cholesky, [taskgraph.NumKernels]string{"POTRF", "TRSM", "SYRK", "GEMM"})
	g.AddTask(0, "j1:POTRF(0)")
	g.AddTask(0, "j0:POTRF(0)")
	plat := platform.New(1, 1)
	s := &sim.State{
		Graph:       g,
		Platform:    plat,
		Timing:      platform.TimingFor(taskgraph.Cholesky),
		Ready:       []int{0, 1},
		Done:        make([]bool, 2),
		Started:     make([]bool, 2),
		StartTime:   make([]float64, 2),
		EndTime:     make([]float64, 2),
		AssignedTo:  []int{-1, -1},
		PredLeft:    make([]int, 2),
		BusyUntil:   make([]float64, plat.Size()),
		RunningTask: []int{sim.NoTask, sim.NoTask},
		JobID:       []int{1, 0},
	}
	return s
}

// TestTieBreakPrefersLowerJobID pins the multi-job tie-break contract: when
// the scheduling key is exactly equal, every list policy must prefer the
// lower job ID (then the lower task ID), not whichever task it happened to
// scan first.
func TestTieBreakPrefersLowerJobID(t *testing.T) {
	rank := NewRankPolicy(twoJobTieState().Graph, platform.New(1, 1), platform.TimingFor(taskgraph.Cholesky))
	pols := map[string]sim.Policy{
		"mct":    MCTPolicy{},
		"minmin": MinMinPolicy{},
		"maxmin": MaxMinPolicy{},
		"rank":   rank,
	}
	for name, pol := range pols {
		s := twoJobTieState()
		pol.Reset(s)
		// Ask the CPU (resource 0): POTRF prefers the GPU under the Cholesky
		// table, so MCT-family policies answer ∅ here — only the forced
		// round exposes their tie-break. Ask the GPU in a normal round.
		got := pol.Decide(s, 1)
		if got == sim.NoTask {
			s.MustAct = true
			got = pol.Decide(s, 1)
		}
		if got != 1 {
			t.Errorf("%s: picked task %d on tie, want task 1 (job 0)", name, got)
		}
	}
}

// TestTieBreakSingleJobUnchanged verifies the explicit tie-break is inert for
// single-job states: on a full fixed-seed Cholesky run, MCT and ReplanHEFT
// schedules are identical to the historical first-seen behavior, which the
// lowest-task-ID reference policy reproduces by construction. (The golden
// Chrome-trace test in internal/sim pins the same property at byte level.)
func TestTieBreakSingleJobUnchanged(t *testing.T) {
	g, plat, tt := setup(taskgraph.Cholesky, 4, 2, 2)
	for name, mk := range map[string]func() sim.Policy{
		"mct":    func() sim.Policy { return MCTPolicy{} },
		"replan": func() sim.Policy { return NewReplanHEFTPolicy() },
	} {
		run := func() sim.Result {
			res, err := sim.Simulate(g, plat, tt, mk(), sim.Options{Sigma: 0.1, Rng: rand.New(rand.NewSource(11))})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return res
		}
		a, b := run(), run()
		if len(a.Trace) != len(b.Trace) {
			t.Fatalf("%s: trace lengths differ", name)
		}
		for i := range a.Trace {
			if a.Trace[i] != b.Trace[i] {
				t.Fatalf("%s: placement %d differs across identical runs: %+v vs %+v", name, i, a.Trace[i], b.Trace[i])
			}
		}
	}
}
