package sched

import (
	"math"

	"readys/internal/sim"
)

// ReplanHEFTPolicy is an adaptive variant of HEFT that answers the question
// the paper raises implicitly: how much of HEFT's noise fragility comes from
// the *staticness* of its plan rather than from its priorities? Each time the
// simulator asks for a decision after the world has drifted (a task finished
// earlier or later than planned), the policy recomputes a full HEFT schedule
// over the remaining tasks — treating running tasks as resource reservations
// until their estimated completion — and dispatches according to the fresh
// plan. It is far too expensive for a real runtime (O(n²) per re-plan); here
// it serves as an upper-bound reference for plan-based scheduling under
// uncertainty.
type ReplanHEFTPolicy struct {
	plan        *HEFTSchedule
	next        []int
	doneAtPlan  int
	epochAtPlan int
	graphAtPlan int
}

// NewReplanHEFTPolicy returns a fresh re-planning policy.
func NewReplanHEFTPolicy() *ReplanHEFTPolicy { return &ReplanHEFTPolicy{} }

// Reset implements sim.Policy.
func (p *ReplanHEFTPolicy) Reset(s *sim.State) {
	p.plan = nil
	p.next = nil
	p.doneAtPlan = -1
	p.epochAtPlan = -1
	p.graphAtPlan = -1
}

// Decide implements sim.Policy.
func (p *ReplanHEFTPolicy) Decide(s *sim.State, r int) int {
	// Re-plan whenever the world drifted: a task completed, a fault
	// event changed resource state (outage, recovery, death, degrade), or
	// a streaming job arrival grew the graph — keying only on NumDone
	// would keep dispatching onto dead resources, never reclaim killed
	// work, and never see newly arrived jobs.
	if p.plan == nil || s.NumDone != p.doneAtPlan || s.FaultEpoch != p.epochAtPlan || s.GraphEpoch != p.graphAtPlan {
		p.replan(s)
	}
	order := p.plan.Order[r]
	for p.next[r] < len(order) {
		t := order[p.next[r]]
		if s.Done[t] || s.Started[t] {
			p.next[r]++
			continue
		}
		if s.PredLeft[t] != 0 {
			break
		}
		p.next[r]++
		return t
	}
	if s.MustAct {
		// Forced round: start the highest-rank ready task rather than
		// deadlocking on a plan invalidated between replans; exact rank
		// ties break by (job, task).
		best, bestRank := sim.NoTask, math.Inf(-1)
		for _, t := range s.Ready {
			if p.plan.Rank[t] > bestRank || (p.plan.Rank[t] == bestRank && best != sim.NoTask && jobTaskLess(s, t, best)) {
				best, bestRank = t, p.plan.Rank[t]
			}
		}
		return best
	}
	return sim.NoTask
}

// replan recomputes HEFT over the unfinished, unstarted tasks. Completed
// tasks contribute their realised end times as release dates; running tasks
// reserve their resource until their estimated completion.
func (p *ReplanHEFTPolicy) replan(s *sim.State) {
	g := s.Graph
	n := g.NumTasks()
	rank := UpwardRanksFor(g, s.Platform, s.TaskTiming)

	// Remaining tasks in decreasing rank order.
	remaining := make([]int, 0, n)
	for t := 0; t < n; t++ {
		if !s.Started[t] {
			remaining = append(remaining, t)
		}
	}
	sortByRankDesc(remaining, rank)

	plan := &HEFTSchedule{
		Assignment: make([]int, n),
		Order:      make([][]int, s.Platform.Size()),
		ProjStart:  make([]float64, n),
		ProjEnd:    make([]float64, n),
		Rank:       rank,
	}
	for i := range plan.Assignment {
		plan.Assignment[i] = -1
	}
	timelines := make([][]slot, s.Platform.Size())
	// Seed projections with reality: done tasks ended when they ended;
	// running tasks end at their estimated completion and reserve their
	// resource from now until then.
	for t := 0; t < n; t++ {
		if s.Done[t] {
			plan.Assignment[t] = s.AssignedTo[t]
			plan.ProjEnd[t] = s.EndTime[t]
		} else if s.Started[t] {
			r := s.AssignedTo[t]
			plan.Assignment[t] = r
			est := s.Now + s.EstTimeUntilFree(r)
			plan.ProjEnd[t] = est
			timelines[r] = insertSlot(timelines[r], slot{s.Now, est})
		}
	}

	for _, t := range remaining {
		var readyAt float64 = s.Now
		for _, pr := range g.Pred[t] {
			if plan.ProjEnd[pr] > readyAt {
				readyAt = plan.ProjEnd[pr]
			}
		}
		bestRes, bestStart, bestEnd := -1, 0.0, math.Inf(1)
		for r := 0; r < s.Platform.Size(); r++ {
			// Only place on currently available resources, at their current
			// speed; a recovery or degrade bumps FaultEpoch and triggers a
			// fresh plan. At least one resource is up whenever the engine
			// asks for a decision, so bestRes is always found.
			if !s.ResourceUp(r) {
				continue
			}
			dur := s.EstTaskDuration(t, r)
			start := earliestGap(timelines[r], readyAt, dur)
			if end := start + dur; end < bestEnd {
				bestRes, bestStart, bestEnd = r, start, end
			}
		}
		plan.Assignment[t] = bestRes
		plan.ProjStart[t] = bestStart
		plan.ProjEnd[t] = bestEnd
		timelines[bestRes] = insertSlot(timelines[bestRes], slot{bestStart, bestEnd})
	}

	for _, t := range remaining {
		r := plan.Assignment[t]
		plan.Order[r] = append(plan.Order[r], t)
	}
	for r := range plan.Order {
		sortByProjStart(plan.Order[r], plan.ProjStart)
	}
	p.plan = plan
	p.next = make([]int, s.Platform.Size())
	p.doneAtPlan = s.NumDone
	p.epochAtPlan = s.FaultEpoch
	p.graphAtPlan = s.GraphEpoch
}

func sortByRankDesc(xs []int, rank []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && (rank[xs[j]] < rank[v] || (rank[xs[j]] == rank[v] && xs[j] > v)) {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

func sortByProjStart(xs []int, start []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && start[xs[j]] > start[v] {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}
