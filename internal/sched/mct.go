package sched

import (
	"math"

	"readys/internal/sim"
)

// MCTPolicy is the dynamic Minimum Completion Time heuristic [46]: a ready
// task is assigned to the resource on which it is *expected* to complete
// soonest, taking into account each resource's current load
// (max(now, busy-until) + expected duration). Like READYS, MCT never looks at
// the DAG beyond the ready set.
//
// Within the simulator's resource-driven decision loop this is realised as:
// when asked to fill resource r, MCT starts the ready task whose
// minimum-completion-time resource is r (the task that "wants" r most, ties
// broken towards the earliest completion); if every ready task would complete
// sooner elsewhere — e.g. a GPU-loving update task prefers waiting for a busy
// GPU over starting on a free CPU — the resource is left idle (∅).
type MCTPolicy struct{}

// Reset implements sim.Policy.
func (MCTPolicy) Reset(*sim.State) {}

// Decide implements sim.Policy.
func (MCTPolicy) Decide(s *sim.State, r int) int {
	bestTask := sim.NoTask
	bestECT := math.Inf(1)
	for _, t := range s.Ready {
		res, ect := mctChoice(s, t)
		if res == r && (ect < bestECT || (ect == bestECT && bestTask != sim.NoTask && jobTaskLess(s, t, bestTask))) {
			bestTask, bestECT = t, ect
		}
	}
	if bestTask == sim.NoTask && s.MustAct {
		// Forced round: every ready task prefers another resource, but time
		// cannot advance unless someone starts. Take the task completing
		// soonest on r instead of deadlocking; exact ECT ties break by
		// (job, task) like everywhere else.
		for _, t := range s.Ready {
			if ect := ectOn(s, t, r); ect < bestECT || (ect == bestECT && bestTask != sim.NoTask && jobTaskLess(s, t, bestTask)) {
				bestTask, bestECT = t, ect
			}
		}
	}
	return bestTask
}

// ectOn returns the expected completion time of ready task t on resource r
// under r's current speed factor.
func ectOn(s *sim.State, t, r int) float64 {
	start := s.Now + s.EstTimeUntilFree(r)
	// With the communication extension, inputs produced elsewhere delay the
	// start on r.
	if dr := s.DataReadyTime(t, r); dr > start {
		start = dr
	}
	return start + s.EstTaskDuration(t, r)
}

// mctChoice returns the resource minimising the expected completion time of
// task t and that time. Ties break towards the smaller resource ID, keeping
// the heuristic deterministic. Unavailable resources (outage or death) are
// excluded: dispatching to them would stall forever.
func mctChoice(s *sim.State, t int) (int, float64) {
	best, bestECT := -1, math.Inf(1)
	for r := 0; r < s.Platform.Size(); r++ {
		if !s.ResourceUp(r) {
			continue
		}
		if ect := ectOn(s, t, r); ect < bestECT {
			best, bestECT = r, ect
		}
	}
	return best, bestECT
}
