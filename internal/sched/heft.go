// Package sched implements the classical scheduling algorithms READYS is
// compared against in the paper: the static HEFT heuristic [48] (upward
// ranks + insertion-based earliest-finish-time allocation, executed as a
// fixed per-resource order under duration noise) and the dynamic MCT
// heuristic [46], plus auxiliary dynamic policies (random, FIFO, rank-greedy)
// used in tests and ablations.
package sched

import (
	"math"
	"sort"

	"readys/internal/platform"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// HEFTSchedule is the static schedule computed by HEFT from *expected*
// durations: a task→resource assignment, the per-resource execution order and
// the projected (noise-free) timings.
type HEFTSchedule struct {
	// Assignment[t] is the resource chosen for task t.
	Assignment []int
	// Order[r] lists the tasks of resource r sorted by projected start.
	Order [][]int
	// ProjStart and ProjEnd are the projected task timings under expected
	// durations.
	ProjStart, ProjEnd []float64
	// Makespan is the projected makespan.
	Makespan float64
	// Rank holds the HEFT upward ranks (also usable as dynamic priorities).
	Rank []float64
}

// UpwardRanks computes the HEFT upward rank of every task:
//
//	rank(i) = w̄(i) + max_{j ∈ succ(i)} rank(j)
//
// with w̄(i) the expected duration of i averaged over the platform's
// resources and zero communication costs (communications are overlapped,
// §III-A).
func UpwardRanks(g *taskgraph.Graph, plat platform.Platform, tt platform.Timing) []float64 {
	return UpwardRanksComm(g, plat, tt, nil)
}

// UpwardRanksComm generalises UpwardRanks with the classical HEFT
// communication term: each edge adds the mean transfer cost c̄ over resource
// pairs, rank(i) = w̄(i) + max_j (c̄ + rank(j)).
func UpwardRanksComm(g *taskgraph.Graph, plat platform.Platform, tt platform.Timing, comm *platform.CommModel) []float64 {
	n := g.NumTasks()
	cbar := comm.MeanCost(plat.Size())
	avg := make([]float64, taskgraph.NumKernels)
	for k := 0; k < taskgraph.NumKernels; k++ {
		var s float64
		for _, r := range plat.Resources {
			s += tt.ExpectedDuration(taskgraph.Kernel(k), r.Type)
		}
		avg[k] = s / float64(plat.Size())
	}
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	rank := make([]float64, n)
	for idx := n - 1; idx >= 0; idx-- {
		i := order[idx]
		var best float64
		for _, j := range g.Succ[i] {
			if cbar+rank[j] > best {
				best = cbar + rank[j]
			}
		}
		rank[i] = avg[g.Tasks[i].Kernel] + best
	}
	return rank
}

// UpwardRanksFor generalises UpwardRanks to per-task timing tables — the
// multi-family (streaming) case where each job's tasks carry the table of
// their own DAG family. timingOf is typically (*sim.State).TaskTiming. When
// every task resolves to the same table the arithmetic is identical to
// UpwardRanks, so single-DAG ranks are bit-equal.
func UpwardRanksFor(g *taskgraph.Graph, plat platform.Platform, timingOf func(task int) platform.Timing) []float64 {
	n := g.NumTasks()
	w := make([]float64, n)
	for i, t := range g.Tasks {
		var s float64
		tt := timingOf(i)
		for _, r := range plat.Resources {
			s += tt.ExpectedDuration(t.Kernel, r.Type)
		}
		w[i] = s / float64(plat.Size())
	}
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	rank := make([]float64, n)
	for idx := n - 1; idx >= 0; idx-- {
		i := order[idx]
		var best float64
		for _, j := range g.Succ[i] {
			if rank[j] > best {
				best = rank[j]
			}
		}
		rank[i] = w[i] + best
	}
	return rank
}

// slot is an occupied interval on a resource timeline.
type slot struct{ start, end float64 }

// HEFT computes the static HEFT schedule: tasks are taken in decreasing
// upward-rank order and each is placed on the resource (and in the earliest
// idle gap — insertion-based policy) minimising its earliest finish time
// under expected durations. Communication costs are zero, as in the paper.
func HEFT(g *taskgraph.Graph, plat platform.Platform, tt platform.Timing) *HEFTSchedule {
	return HEFTComm(g, plat, tt, nil)
}

// HEFTComm is HEFT with the communication-cost extension: a task's earliest
// start on resource r accounts for the transfer of each input produced on a
// different resource, as in the original HEFT formulation [48].
func HEFTComm(g *taskgraph.Graph, plat platform.Platform, tt platform.Timing, comm *platform.CommModel) *HEFTSchedule {
	n := g.NumTasks()
	rank := UpwardRanksComm(g, plat, tt, comm)
	byRank := make([]int, n)
	for i := range byRank {
		byRank[i] = i
	}
	sort.Slice(byRank, func(a, b int) bool {
		if rank[byRank[a]] != rank[byRank[b]] {
			return rank[byRank[a]] > rank[byRank[b]]
		}
		return byRank[a] < byRank[b] // deterministic tie-break
	})

	sched := &HEFTSchedule{
		Assignment: make([]int, n),
		Order:      make([][]int, plat.Size()),
		ProjStart:  make([]float64, n),
		ProjEnd:    make([]float64, n),
		Rank:       rank,
	}
	for i := range sched.Assignment {
		sched.Assignment[i] = -1
	}
	timelines := make([][]slot, plat.Size())

	for _, t := range byRank {
		for _, p := range g.Pred[t] {
			if sched.Assignment[p] == -1 {
				// Decreasing rank order guarantees predecessors first
				// (rank(pred) > rank(succ) since w̄ > 0).
				panic("sched: HEFT predecessor not yet scheduled")
			}
		}
		bestRes, bestStart, bestEnd := -1, 0.0, math.Inf(1)
		for r := 0; r < plat.Size(); r++ {
			// Earliest time every input is available on r (projected
			// completion plus cross-resource transfer when comm is modelled).
			var readyAt float64
			for _, p := range g.Pred[t] {
				at := sched.ProjEnd[p] + comm.Cost(sched.Assignment[p], r)
				if at > readyAt {
					readyAt = at
				}
			}
			dur := tt.ExpectedDuration(g.Tasks[t].Kernel, plat.Resources[r].Type)
			start := earliestGap(timelines[r], readyAt, dur)
			if end := start + dur; end < bestEnd {
				bestRes, bestStart, bestEnd = r, start, end
			}
		}
		sched.Assignment[t] = bestRes
		sched.ProjStart[t] = bestStart
		sched.ProjEnd[t] = bestEnd
		timelines[bestRes] = insertSlot(timelines[bestRes], slot{bestStart, bestEnd})
		if bestEnd > sched.Makespan {
			sched.Makespan = bestEnd
		}
	}

	// Build per-resource orders sorted by projected start.
	for t := 0; t < n; t++ {
		r := sched.Assignment[t]
		sched.Order[r] = append(sched.Order[r], t)
	}
	for r := range sched.Order {
		o := sched.Order[r]
		sort.Slice(o, func(a, b int) bool { return sched.ProjStart[o[a]] < sched.ProjStart[o[b]] })
	}
	return sched
}

// earliestGap returns the earliest start ≥ readyAt at which a task of the
// given duration fits into the timeline (insertion-based policy): either
// inside an idle gap between existing slots or after the last one.
func earliestGap(tl []slot, readyAt, dur float64) float64 {
	cur := readyAt
	for _, s := range tl {
		if cur+dur <= s.start {
			return cur
		}
		if s.end > cur {
			cur = s.end
		}
	}
	return cur
}

// insertSlot keeps the timeline sorted by start time.
func insertSlot(tl []slot, s slot) []slot {
	i := sort.Search(len(tl), func(i int) bool { return tl[i].start >= s.start })
	tl = append(tl, slot{})
	copy(tl[i+1:], tl[i:])
	tl[i] = s
	return tl
}

// StaticPolicy replays a static schedule inside the dynamic simulator: each
// resource executes its assigned tasks in the prescribed order, starting the
// next one as soon as it is ready. Under duration noise the realised timings
// drift from the projection — the effect the paper measures for HEFT.
type StaticPolicy struct {
	Schedule *HEFTSchedule
	next     []int
}

// NewStaticPolicy wraps a static schedule as a simulator policy.
func NewStaticPolicy(s *HEFTSchedule) *StaticPolicy {
	return &StaticPolicy{Schedule: s}
}

// Reset rewinds the per-resource cursors.
func (p *StaticPolicy) Reset(*sim.State) {
	p.next = make([]int, len(p.Schedule.Order))
}

// Decide starts resource r's next prescribed task if it is ready. Tasks
// already executed elsewhere (possible only under fault injection, when an
// emergency round re-placed killed work) are skipped. In a forced round the
// plan has failed — e.g. the task's prescribed resource died — and the
// policy falls back to the highest-rank ready task to keep the run alive;
// the makespan it pays for that is exactly the static plan's fragility.
func (p *StaticPolicy) Decide(s *sim.State, r int) int {
	order := p.Schedule.Order[r]
	for p.next[r] < len(order) {
		t := order[p.next[r]]
		if s.Done[t] || s.Started[t] {
			p.next[r]++
			continue
		}
		if s.PredLeft[t] != 0 {
			break
		}
		p.next[r]++
		return t
	}
	if s.MustAct {
		best, bestRank := sim.NoTask, math.Inf(-1)
		for _, t := range s.Ready {
			if p.Schedule.Rank[t] > bestRank || (p.Schedule.Rank[t] == bestRank && best != sim.NoTask && jobTaskLess(s, t, best)) {
				best, bestRank = t, p.Schedule.Rank[t]
			}
		}
		return best
	}
	return sim.NoTask
}
