package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"readys/internal/platform"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// TestHEFTValidOnRandomDAGsProperty checks HEFT end to end on arbitrary
// multi-root layered DAGs: the projection must be a feasible schedule and its
// static replay must execute without deadlock at any noise level.
func TestHEFTValidOnRandomDAGsProperty(t *testing.T) {
	f := func(seed int64, sig8 uint8, cpus8, gpus8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := taskgraph.NewLayeredRandom(rng, taskgraph.DefaultRandomConfig())
		cpus := int(cpus8%3) + 1
		gpus := int(gpus8 % 3)
		plat := platform.New(cpus, gpus)
		tt := platform.TimingFor(taskgraph.Random)
		h := HEFT(g, plat, tt)

		proj := sim.Result{Makespan: h.Makespan}
		for task := 0; task < g.NumTasks(); task++ {
			proj.Trace = append(proj.Trace, sim.Placement{
				Task: task, Resource: h.Assignment[task], Start: h.ProjStart[task], End: h.ProjEnd[task],
			})
		}
		if sim.ValidateResult(g, plat.Size(), proj) != nil {
			return false
		}
		sigma := float64(sig8%6) * 0.1
		res, err := sim.Simulate(g, plat, tt, NewStaticPolicy(h), sim.Options{
			Sigma: sigma, Rng: rand.New(rand.NewSource(seed + 1)),
		})
		if err != nil {
			return false
		}
		return sim.ValidateResult(g, plat.Size(), res) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMCTValidOnRandomDAGsProperty does the same for the dynamic MCT.
func TestMCTValidOnRandomDAGsProperty(t *testing.T) {
	f := func(seed int64, sig8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := taskgraph.NewLayeredRandom(rng, taskgraph.DefaultRandomConfig())
		plat := platform.New(2, 2)
		tt := platform.TimingFor(taskgraph.Random)
		res, err := sim.Simulate(g, plat, tt, MCTPolicy{}, sim.Options{
			Sigma: float64(sig8%6) * 0.1, Rng: rand.New(rand.NewSource(seed + 1)),
		})
		if err != nil {
			return false
		}
		return sim.ValidateResult(g, plat.Size(), res) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestReplanHEFTValidOnRandomDAGsProperty covers the adaptive variant too.
func TestReplanHEFTValidOnRandomDAGsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := taskgraph.NewLayeredRandom(rng, taskgraph.DefaultRandomConfig())
		plat := platform.New(2, 1)
		tt := platform.TimingFor(taskgraph.Random)
		res, err := sim.Simulate(g, plat, tt, NewReplanHEFTPolicy(), sim.Options{
			Sigma: 0.4, Rng: rand.New(rand.NewSource(seed + 1)),
		})
		if err != nil {
			return false
		}
		return sim.ValidateResult(g, plat.Size(), res) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
