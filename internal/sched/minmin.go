package sched

import (
	"math"

	"readys/internal/sim"
)

// MinMinPolicy is the dynamic Min-Min heuristic: among the ready tasks, the
// one with the globally smallest expected completion time is scheduled first,
// on its best resource. Small tasks drain quickly, at the risk of delaying
// the long critical-path tasks — the classical contrast to Max-Min.
//
// In the resource-driven decision loop, the asking resource r starts the
// min-ECT task only if r is that task's best resource; otherwise it defers
// (∅), letting the task's preferred resource pick it up.
type MinMinPolicy struct{}

// Reset implements sim.Policy.
func (MinMinPolicy) Reset(*sim.State) {}

// Decide implements sim.Policy.
func (MinMinPolicy) Decide(s *sim.State, r int) int {
	bestTask, bestRes, bestECT := sim.NoTask, -1, math.Inf(1)
	for _, t := range s.Ready {
		res, ect := mctChoice(s, t)
		if ect < bestECT || (ect == bestECT && bestTask != sim.NoTask && jobTaskLess(s, t, bestTask)) {
			bestTask, bestRes, bestECT = t, res, ect
		}
	}
	if bestRes == r {
		return bestTask
	}
	// The globally best pair does not involve r; r may still be the best
	// resource for some other ready task — fall back to MCT's view for r so
	// resources are not starved.
	return MCTPolicy{}.Decide(s, r)
}

// MaxMinPolicy is the dynamic Max-Min heuristic: among the ready tasks, the
// one with the *largest* minimum expected completion time (the heaviest
// remaining task) is scheduled first on its best resource. Long tasks start
// early, which often shortens the critical path on heterogeneous platforms.
type MaxMinPolicy struct{}

// Reset implements sim.Policy.
func (MaxMinPolicy) Reset(*sim.State) {}

// Decide implements sim.Policy.
func (MaxMinPolicy) Decide(s *sim.State, r int) int {
	bestTask, bestRes, bestECT := sim.NoTask, -1, math.Inf(-1)
	for _, t := range s.Ready {
		res, ect := mctChoice(s, t)
		if ect > bestECT || (ect == bestECT && bestTask != sim.NoTask && jobTaskLess(s, t, bestTask)) {
			bestTask, bestRes, bestECT = t, res, ect
		}
	}
	if bestRes == r {
		return bestTask
	}
	return MCTPolicy{}.Decide(s, r)
}
