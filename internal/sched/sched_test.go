package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"readys/internal/platform"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

func setup(kind taskgraph.Kind, T, nCPU, nGPU int) (*taskgraph.Graph, platform.Platform, platform.Timing) {
	return taskgraph.NewByKind(kind, T), platform.New(nCPU, nGPU), platform.TimingFor(kind)
}

func TestUpwardRanksMonotoneAlongEdges(t *testing.T) {
	g, plat, tt := setup(taskgraph.Cholesky, 6, 2, 2)
	rank := UpwardRanks(g, plat, tt)
	for i, succ := range g.Succ {
		for _, j := range succ {
			if rank[i] <= rank[j] {
				t.Fatalf("rank not decreasing along edge (%d,%d): %v <= %v", i, j, rank[i], rank[j])
			}
		}
	}
	// Sink rank equals its own average duration.
	sink := g.Sinks()[0]
	want := tt.MeanExpected(g.Tasks[sink].Kernel) // 2 CPU + 2 GPU → same as type mean
	if math.Abs(rank[sink]-want) > 1e-9 {
		t.Fatalf("sink rank = %v, want %v", rank[sink], want)
	}
}

func TestUpwardRanksWeightedByPlatform(t *testing.T) {
	g := taskgraph.NewCholesky(2)
	tt := platform.TimingFor(taskgraph.Cholesky)
	cpuOnly := UpwardRanks(g, platform.New(4, 0), tt)
	gpuOnly := UpwardRanks(g, platform.New(0, 4), tt)
	sink := g.Sinks()[0] // POTRF(1)
	if cpuOnly[sink] != 16 || gpuOnly[sink] != 8 {
		t.Fatalf("platform weighting wrong: cpu %v gpu %v", cpuOnly[sink], gpuOnly[sink])
	}
}

func TestHEFTProjectionIsValidSchedule(t *testing.T) {
	for _, kind := range []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR} {
		g, plat, tt := setup(kind, 6, 2, 2)
		h := HEFT(g, plat, tt)
		res := sim.Result{Makespan: h.Makespan}
		for t2 := 0; t2 < g.NumTasks(); t2++ {
			res.Trace = append(res.Trace, sim.Placement{
				Task: t2, Resource: h.Assignment[t2], Start: h.ProjStart[t2], End: h.ProjEnd[t2],
			})
		}
		if err := sim.ValidateResult(g, plat.Size(), res); err != nil {
			t.Fatalf("%v: HEFT projection infeasible: %v", kind, err)
		}
	}
}

func TestHEFTExecutesExactlyAtSigmaZero(t *testing.T) {
	// Replaying the HEFT schedule with exact durations must reproduce the
	// projected makespan.
	g, plat, tt := setup(taskgraph.Cholesky, 8, 2, 2)
	h := HEFT(g, plat, tt)
	res, err := sim.Simulate(g, plat, tt, NewStaticPolicy(h), sim.Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-h.Makespan) > 1e-6 {
		t.Fatalf("executed %.3f vs projected %.3f", res.Makespan, h.Makespan)
	}
}

func TestHEFTBeatsFIFOOnHeterogeneousPlatform(t *testing.T) {
	g, plat, tt := setup(taskgraph.Cholesky, 8, 2, 2)
	h := HEFT(g, plat, tt)
	fifo, err := sim.Simulate(g, plat, tt, FIFOPolicy{}, sim.Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if h.Makespan >= fifo.Makespan {
		t.Fatalf("HEFT %.1f should beat FIFO %.1f", h.Makespan, fifo.Makespan)
	}
}

func TestHEFTPrefersGPUForUpdates(t *testing.T) {
	// On 1 CPU + 1 GPU, GEMM tasks (29x faster on GPU) should overwhelmingly
	// land on the GPU.
	g, plat, tt := setup(taskgraph.Cholesky, 8, 1, 1)
	h := HEFT(g, plat, tt)
	gpu := 1 // resource 1 is the GPU (CPUs first)
	var gemmTotal, gemmOnGPU int
	for _, task := range g.Tasks {
		if task.Kernel == taskgraph.KGEMM {
			gemmTotal++
			if h.Assignment[task.ID] == gpu {
				gemmOnGPU++
			}
		}
	}
	if gemmOnGPU*10 < gemmTotal*8 {
		t.Fatalf("only %d/%d GEMMs on GPU", gemmOnGPU, gemmTotal)
	}
}

func TestHEFTStaticReplayValidUnderNoise(t *testing.T) {
	f := func(seed int64, sig8 uint8) bool {
		g, plat, tt := setup(taskgraph.LU, 5, 2, 2)
		h := HEFT(g, plat, tt)
		sigma := float64(sig8%6) * 0.1
		res, err := sim.Simulate(g, plat, tt, NewStaticPolicy(h), sim.Options{
			Sigma: sigma, Rng: rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			return false
		}
		if sim.ValidateResult(g, plat.Size(), res) != nil {
			return false
		}
		// Replay must respect the static assignment.
		for _, p := range res.Trace {
			if p.Resource != h.Assignment[p.Task] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHEFTDegradesWithNoise(t *testing.T) {
	// Mean HEFT makespan under strong noise should exceed the noise-free one:
	// the static order cannot adapt.
	g, plat, tt := setup(taskgraph.Cholesky, 8, 2, 2)
	h := HEFT(g, plat, tt)
	var sum float64
	const runs = 30
	for i := 0; i < runs; i++ {
		res, err := sim.Simulate(g, plat, tt, NewStaticPolicy(h), sim.Options{
			Sigma: 0.5, Rng: rand.New(rand.NewSource(int64(i))),
		})
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Makespan
	}
	if mean := sum / runs; mean <= h.Makespan {
		t.Fatalf("noisy mean %.1f should exceed noise-free %.1f", mean, h.Makespan)
	}
}

func TestMCTValidAndCompletes(t *testing.T) {
	for _, kind := range []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR} {
		g, plat, tt := setup(kind, 6, 2, 2)
		res, err := sim.Simulate(g, plat, tt, MCTPolicy{}, sim.Options{Rng: rand.New(rand.NewSource(1))})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := sim.ValidateResult(g, plat.Size(), res); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

func TestMCTPlacesLoneTaskOnFastestResource(t *testing.T) {
	// A single POTRF on 1 CPU + 1 GPU: MCT must pick the GPU (8 < 16 ms).
	g := taskgraph.NewCholesky(1)
	plat := platform.New(1, 1)
	tt := platform.TimingFor(taskgraph.Cholesky)
	res, err := sim.Simulate(g, plat, tt, MCTPolicy{}, sim.Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace[0].Resource != 1 {
		t.Fatalf("MCT placed POTRF on resource %d, want GPU (1)", res.Trace[0].Resource)
	}
	if res.Makespan != 8 {
		t.Fatalf("makespan %v, want 8", res.Makespan)
	}
}

func TestMCTWaitsForBusyGPUWhenWorthIt(t *testing.T) {
	// MCT may idle a free CPU if a GEMM completes sooner by waiting for the
	// GPU: verify idle decisions occur on a GPU-heavy DAG with 1 CPU + 1 GPU.
	g, plat, tt := setup(taskgraph.Cholesky, 8, 1, 1)
	res, err := sim.Simulate(g, plat, tt, MCTPolicy{}, sim.Options{Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	if res.IdleDecisions == 0 {
		t.Fatal("expected MCT to idle the CPU sometimes")
	}
}

func TestMCTRobustToNoise(t *testing.T) {
	// MCT's relative degradation under noise must stay mild (it adapts),
	// unlike a static schedule.
	g, plat, tt := setup(taskgraph.Cholesky, 8, 2, 2)
	base, err := sim.Simulate(g, plat, tt, MCTPolicy{}, sim.Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const runs = 20
	for i := 0; i < runs; i++ {
		res, err := sim.Simulate(g, plat, tt, MCTPolicy{}, sim.Options{Sigma: 0.4, Rng: rand.New(rand.NewSource(int64(i)))})
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Makespan
	}
	if mean := sum / runs; mean > 1.6*base.Makespan {
		t.Fatalf("MCT degraded too much under noise: %.1f vs %.1f", mean, base.Makespan)
	}
}

func TestRandomPolicyValid(t *testing.T) {
	g, plat, tt := setup(taskgraph.QR, 5, 2, 2)
	pol := RandomPolicy{Rng: rand.New(rand.NewSource(42))}
	res, err := sim.Simulate(g, plat, tt, pol, sim.Options{Sigma: 0.2, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.ValidateResult(g, plat.Size(), res); err != nil {
		t.Fatal(err)
	}
}

func TestRankPolicyBeatsRandomOnAverage(t *testing.T) {
	// Homogeneous platform: with no placement dimension, priority order is
	// the only signal, and critical-path-first must win on average.
	g, plat, tt := setup(taskgraph.Cholesky, 8, 4, 0)
	var rankSum, randSum float64
	const runs = 10
	for i := 0; i < runs; i++ {
		rr, err := sim.Simulate(g, plat, tt, NewRankPolicy(g, plat, tt), sim.Options{Rng: rand.New(rand.NewSource(int64(i)))})
		if err != nil {
			t.Fatal(err)
		}
		rankSum += rr.Makespan
		rd, err := sim.Simulate(g, plat, tt, RandomPolicy{Rng: rand.New(rand.NewSource(int64(1000 + i)))},
			sim.Options{Rng: rand.New(rand.NewSource(int64(i)))})
		if err != nil {
			t.Fatal(err)
		}
		randSum += rd.Makespan
	}
	if rankSum >= randSum {
		t.Fatalf("rank policy (%.0f) should beat random (%.0f) on average", rankSum/runs, randSum/runs)
	}
}

func TestHEFTDeterministic(t *testing.T) {
	g, plat, tt := setup(taskgraph.QR, 6, 2, 2)
	a, b := HEFT(g, plat, tt), HEFT(g, plat, tt)
	if a.Makespan != b.Makespan {
		t.Fatal("HEFT nondeterministic makespan")
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("HEFT nondeterministic assignment")
		}
	}
}

func TestEarliestGapInsertion(t *testing.T) {
	tl := []slot{{10, 20}, {30, 40}}
	if got := earliestGap(tl, 0, 5); got != 0 {
		t.Fatalf("gap before first slot: %v", got)
	}
	if got := earliestGap(tl, 0, 15); got != 40 {
		t.Fatalf("too big for gaps: %v", got)
	}
	if got := earliestGap(tl, 22, 8); got != 22 {
		t.Fatalf("fits between: %v", got)
	}
	if got := earliestGap(tl, 15, 5); got != 20 {
		t.Fatalf("ready inside slot: %v", got)
	}
	if got := earliestGap(nil, 7, 3); got != 7 {
		t.Fatalf("empty timeline: %v", got)
	}
}

func TestHEFTOnSingleResource(t *testing.T) {
	g, plat, tt := setup(taskgraph.Cholesky, 4, 1, 0)
	h := HEFT(g, plat, tt)
	// Single resource: makespan equals the serial sum of CPU durations.
	var serial float64
	for _, task := range g.Tasks {
		serial += tt.ExpectedDuration(task.Kernel, platform.CPU)
	}
	if math.Abs(h.Makespan-serial) > 1e-9 {
		t.Fatalf("single-CPU HEFT makespan %.3f, want serial %.3f", h.Makespan, serial)
	}
}
