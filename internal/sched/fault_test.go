package sched

import (
	"math/rand"
	"testing"

	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// faultOpts runs a policy against a fixed fault plan and strictly validates
// the outcome.
func runUnderFaults(t *testing.T, pol sim.Policy, plan *sim.FaultPlan, seed int64) sim.Result {
	t.Helper()
	g, plat, tim := setup(taskgraph.Cholesky, 5, 2, 2)
	res, err := sim.Simulate(g, plat, tim, pol, sim.Options{Rng: rand.New(rand.NewSource(seed)), Faults: plan})
	if err != nil {
		t.Fatalf("%T under faults: %v", pol, err)
	}
	if err := sim.ValidateResultStrict(g, res, sim.CheckOptions{Platform: plat, Timing: tim, Faults: plan}); err != nil {
		t.Fatalf("%T produced invalid faulty schedule: %v", pol, err)
	}
	return res
}

func TestMCTFamilyCompletesUnderDeathAndOutage(t *testing.T) {
	plan := &sim.FaultPlan{Events: []sim.FaultEvent{
		{Kind: sim.FaultDeath, Resource: 2, At: 30},                 // a GPU dies early
		{Kind: sim.FaultOutage, Resource: 0, At: 10, Duration: 60},  // a CPU blinks out
		{Kind: sim.FaultDegrade, Resource: 3, At: 20, Factor: 2.5},  // the other GPU slows
		{Kind: sim.FaultOutage, Resource: 1, At: 100, Duration: 20}, // late CPU outage
	}}
	for _, pol := range []sim.Policy{MCTPolicy{}, MinMinPolicy{}, MaxMinPolicy{}} {
		runUnderFaults(t, pol, plan, 3)
	}
}

func TestReplanHEFTSurvivesResourceDeath(t *testing.T) {
	plan := &sim.FaultPlan{Events: []sim.FaultEvent{
		{Kind: sim.FaultDeath, Resource: 3, At: 15},
		{Kind: sim.FaultDeath, Resource: 1, At: 40},
	}}
	runUnderFaults(t, NewReplanHEFTPolicy(), plan, 5)
}

func TestStaticHEFTSurvivesResourceDeath(t *testing.T) {
	// The static plan prescribes work to resources that die; the forced-round
	// fallback must keep the run alive, at a (possibly steep) makespan cost —
	// that cost is the fragility the resilience benchmark measures.
	g, plat, tim := setup(taskgraph.Cholesky, 5, 2, 2)
	plan := &sim.FaultPlan{Events: []sim.FaultEvent{
		{Kind: sim.FaultDeath, Resource: 3, At: 5},
		{Kind: sim.FaultOutage, Resource: 0, At: 20, Duration: 50},
	}}
	pol := NewStaticPolicy(HEFT(g, plat, tim))
	res, err := sim.Simulate(g, plat, tim, pol, sim.Options{Rng: rand.New(rand.NewSource(2)), Faults: plan})
	if err != nil {
		t.Fatalf("static HEFT under faults: %v", err)
	}
	if err := sim.ValidateResultStrict(g, res, sim.CheckOptions{Platform: plat, Timing: tim, Faults: plan}); err != nil {
		t.Fatal(err)
	}
	// Its plan was built for 4 resources; losing a GPU must cost makespan
	// versus the fault-free execution.
	clean, err := sim.Simulate(g, plat, tim, NewStaticPolicy(HEFT(g, plat, tim)),
		sim.Options{Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= clean.Makespan {
		t.Fatalf("faulty makespan %v not worse than clean %v", res.Makespan, clean.Makespan)
	}
}

func TestReplanHEFTBeatsStaticUnderDeath(t *testing.T) {
	// The whole point of epoch-keyed replanning: losing a GPU early should
	// hurt the adaptive planner no more than the static plan.
	g, plat, tim := setup(taskgraph.Cholesky, 6, 2, 2)
	plan := &sim.FaultPlan{Events: []sim.FaultEvent{{Kind: sim.FaultDeath, Resource: 3, At: 5}}}
	static, err := sim.Simulate(g, plat, tim, NewStaticPolicy(HEFT(g, plat, tim)),
		sim.Options{Rng: rand.New(rand.NewSource(1)), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	replan, err := sim.Simulate(g, plat, tim, NewReplanHEFTPolicy(),
		sim.Options{Rng: rand.New(rand.NewSource(1)), Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if replan.Makespan > static.Makespan+1e-9 {
		t.Fatalf("replanning (%v) worse than static plan (%v) under early GPU death",
			replan.Makespan, static.Makespan)
	}
}

func TestPoliciesInertWithoutFaults(t *testing.T) {
	// The fault-awareness changes (availability skip, speed-aware durations,
	// forced-round fallbacks) must not alter fault-free behaviour.
	g, plat, tim := setup(taskgraph.Cholesky, 5, 2, 2)
	for _, pol := range []sim.Policy{MCTPolicy{}, MinMinPolicy{}, MaxMinPolicy{},
		NewReplanHEFTPolicy(), NewStaticPolicy(HEFT(g, plat, tim))} {
		a, err := sim.Simulate(g, plat, tim, pol, sim.Options{Sigma: 0.2, Rng: rand.New(rand.NewSource(11))})
		if err != nil {
			t.Fatalf("%T: %v", pol, err)
		}
		b, err := sim.Simulate(g, plat, tim, pol, sim.Options{Sigma: 0.2, Rng: rand.New(rand.NewSource(11)), Faults: &sim.FaultPlan{}})
		if err != nil {
			t.Fatalf("%T: %v", pol, err)
		}
		if a.Makespan != b.Makespan {
			t.Fatalf("%T: empty plan changed makespan %v → %v", pol, a.Makespan, b.Makespan)
		}
	}
}
