package sched

import (
	"math/rand"
	"testing"

	"readys/internal/platform"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// TestAllPoliciesAllFamilies is a cross-product soak test: every scheduler
// must produce a valid schedule on every DAG family, with and without noise
// and with and without communication costs.
func TestAllPoliciesAllFamilies(t *testing.T) {
	kinds := []taskgraph.Kind{
		taskgraph.Cholesky, taskgraph.LU, taskgraph.QR,
		taskgraph.Gemm, taskgraph.Stencil, taskgraph.ForkJoin,
	}
	for _, kind := range kinds {
		g := taskgraph.NewByKind(kind, 4)
		plat := platform.New(2, 2)
		tt := platform.TimingFor(kind)
		policies := map[string]sim.Policy{
			"fifo":   FIFOPolicy{},
			"random": RandomPolicy{Rng: rand.New(rand.NewSource(1))},
			"mct":    MCTPolicy{},
			"minmin": MinMinPolicy{},
			"maxmin": MaxMinPolicy{},
			"rank":   NewRankPolicy(g, plat, tt),
			"heft":   NewStaticPolicy(HEFT(g, plat, tt)),
		}
		for name, pol := range policies {
			for _, sigma := range []float64{0, 0.3} {
				for _, comm := range []*platform.CommModel{nil, platform.DefaultCommModel()} {
					res, err := sim.Simulate(g, plat, tt, pol, sim.Options{
						Sigma: sigma, Comm: comm, Rng: rand.New(rand.NewSource(7)),
					})
					if err != nil {
						t.Fatalf("%v/%s σ=%v comm=%v: %v", kind, name, sigma, comm != nil, err)
					}
					if err := sim.ValidateResult(g, plat.Size(), res); err != nil {
						t.Fatalf("%v/%s σ=%v comm=%v: %v", kind, name, sigma, comm != nil, err)
					}
				}
			}
		}
	}
}

// TestHEFTBeatsFIFOAcrossFamilies checks the heuristics keep their expected
// ordering on the new families too.
func TestHEFTBeatsFIFOAcrossFamilies(t *testing.T) {
	for _, kind := range []taskgraph.Kind{taskgraph.Gemm, taskgraph.Stencil, taskgraph.ForkJoin} {
		g := taskgraph.NewByKind(kind, 5)
		plat := platform.New(2, 2)
		tt := platform.TimingFor(kind)
		h := HEFT(g, plat, tt)
		fifo, err := sim.Simulate(g, plat, tt, FIFOPolicy{}, sim.Options{Rng: rand.New(rand.NewSource(1))})
		if err != nil {
			t.Fatal(err)
		}
		if h.Makespan > fifo.Makespan {
			t.Fatalf("%v: HEFT %.1f worse than FIFO %.1f", kind, h.Makespan, fifo.Makespan)
		}
	}
}
