package sched

import (
	"math/rand"
	"testing"

	"readys/internal/platform"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

func TestMinMinAndMaxMinValid(t *testing.T) {
	for _, kind := range []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR} {
		for _, pol := range []sim.Policy{MinMinPolicy{}, MaxMinPolicy{}} {
			g, plat, tt := setup(kind, 5, 2, 2)
			res, err := sim.Simulate(g, plat, tt, pol, sim.Options{Sigma: 0.2, Rng: rand.New(rand.NewSource(3))})
			if err != nil {
				t.Fatalf("%v %T: %v", kind, pol, err)
			}
			if err := sim.ValidateResult(g, plat.Size(), res); err != nil {
				t.Fatalf("%v %T: %v", kind, pol, err)
			}
		}
	}
}

func TestMinMinPrefersSmallTaskFirst(t *testing.T) {
	// Two independent tasks — one short (POTRF: GPU 8), one long (GEMM: GPU 3
	// vs CPU 88)... choose kernels so ECTs differ: POTRF GPU=8, GEMM GPU=3.
	// Min-Min must start GEMM (ECT 3) before POTRF (ECT 8) when the GPU asks.
	g := taskgraph.NewCustom(taskgraph.Cholesky, [4]string{"POTRF", "TRSM", "SYRK", "GEMM"})
	potrf := g.AddTask(taskgraph.KPOTRF, "P")
	gemm := g.AddTask(taskgraph.KGEMM, "G")
	plat := platform.New(0, 1)
	tt := platform.TimingFor(taskgraph.Cholesky)
	res, err := sim.Simulate(g, plat, tt, MinMinPolicy{}, sim.Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	var start [2]float64
	for _, p := range res.Trace {
		start[p.Task] = p.Start
	}
	if start[gemm] >= start[potrf] {
		t.Fatalf("Min-Min should start the short GEMM first: %v vs %v", start[gemm], start[potrf])
	}
}

func TestMaxMinPrefersLongTaskFirst(t *testing.T) {
	g := taskgraph.NewCustom(taskgraph.Cholesky, [4]string{"POTRF", "TRSM", "SYRK", "GEMM"})
	potrf := g.AddTask(taskgraph.KPOTRF, "P") // GPU: 8 (long)
	gemm := g.AddTask(taskgraph.KGEMM, "G")   // GPU: 3 (short)
	plat := platform.New(0, 1)
	tt := platform.TimingFor(taskgraph.Cholesky)
	res, err := sim.Simulate(g, plat, tt, MaxMinPolicy{}, sim.Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	var start [2]float64
	for _, p := range res.Trace {
		start[p.Task] = p.Start
	}
	if start[potrf] >= start[gemm] {
		t.Fatalf("Max-Min should start the long POTRF first: %v vs %v", start[potrf], start[gemm])
	}
}

func TestMinMinCompetitiveWithMCT(t *testing.T) {
	// On the factorisation DAGs Min-Min should land in the same ballpark as
	// MCT (both ECT-driven); guard against regressions making it pathological.
	g, plat, tt := setup(taskgraph.Cholesky, 8, 2, 2)
	mm, err := sim.Simulate(g, plat, tt, MinMinPolicy{}, sim.Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	mct, err := sim.Simulate(g, plat, tt, MCTPolicy{}, sim.Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if mm.Makespan > 1.5*mct.Makespan {
		t.Fatalf("Min-Min %.1f too far from MCT %.1f", mm.Makespan, mct.Makespan)
	}
}
