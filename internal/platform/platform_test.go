package platform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"readys/internal/taskgraph"
)

func TestNewPlatformLayout(t *testing.T) {
	p := New(2, 3)
	if p.Size() != 5 || p.Count(CPU) != 2 || p.Count(GPU) != 3 {
		t.Fatalf("platform layout wrong: %v", p)
	}
	// CPUs first, IDs dense.
	for i, r := range p.Resources {
		if r.ID != i {
			t.Fatalf("resource %d has ID %d", i, r.ID)
		}
		wantType := CPU
		if i >= 2 {
			wantType = GPU
		}
		if r.Type != wantType {
			t.Fatalf("resource %d type %v", i, r.Type)
		}
	}
	if p.String() != "2CPU+3GPU" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestNewPlatformRejectsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty platform should panic")
		}
	}()
	New(0, 0)
}

func TestTimingTablesUnrelatedStructure(t *testing.T) {
	// The GPU acceleration must depend on the kernel (unrelated machines):
	// panel factorisations ~2-4x, updates >10x.
	for _, kind := range []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR} {
		tt := TimingFor(kind)
		panelAccel := tt.Expected[0][CPU] / tt.Expected[0][GPU]
		if panelAccel > 5 {
			t.Fatalf("%v panel kernel acceleration %.1fx too high", kind, panelAccel)
		}
		updateAccel := tt.Expected[3][CPU] / tt.Expected[3][GPU]
		if updateAccel < 10 {
			t.Fatalf("%v update kernel acceleration %.1fx too low", kind, updateAccel)
		}
		if updateAccel <= panelAccel {
			t.Fatalf("%v accelerations not unrelated: panel %.1f update %.1f", kind, panelAccel, updateAccel)
		}
	}
}

func TestTimingPositive(t *testing.T) {
	for _, kind := range []taskgraph.Kind{
		taskgraph.Cholesky, taskgraph.LU, taskgraph.QR, taskgraph.Random,
		taskgraph.Gemm, taskgraph.Stencil, taskgraph.ForkJoin,
	} {
		tt := TimingFor(kind)
		if tt.Kind != kind {
			t.Fatalf("timing kind mismatch: %v", tt.Kind)
		}
		for k := 0; k < taskgraph.NumKernels; k++ {
			for rt := ResourceType(0); rt < NumResourceTypes; rt++ {
				if tt.Expected[k][rt] <= 0 {
					t.Fatalf("%v kernel %d on %v non-positive", kind, k, rt)
				}
			}
		}
	}
}

func TestMaxAndMeanExpected(t *testing.T) {
	tt := TimingFor(taskgraph.Cholesky)
	if tt.MaxExpected() != 88 {
		t.Fatalf("MaxExpected = %v", tt.MaxExpected())
	}
	want := (16.0 + 8.0) / 2
	if math.Abs(tt.MeanExpected(taskgraph.KPOTRF)-want) > 1e-12 {
		t.Fatalf("MeanExpected(POTRF) = %v", tt.MeanExpected(taskgraph.KPOTRF))
	}
}

func TestSampleDurationNoiseFreeDeterministic(t *testing.T) {
	tt := TimingFor(taskgraph.Cholesky)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		d := tt.SampleDuration(rng, taskgraph.KGEMM, CPU, 0)
		if d != 88 {
			t.Fatalf("sigma=0 sample = %v, want 88", d)
		}
	}
}

func TestSampleDurationNonNegativeProperty(t *testing.T) {
	tt := TimingFor(taskgraph.QR)
	rng := rand.New(rand.NewSource(2))
	f := func(k8 uint8, rt8 uint8, sig float64) bool {
		k := taskgraph.Kernel(k8 % taskgraph.NumKernels)
		rt := ResourceType(rt8 % uint8(NumResourceTypes))
		sigma := math.Mod(math.Abs(sig), 2)
		if math.IsNaN(sigma) {
			sigma = 0.5
		}
		d := tt.SampleDuration(rng, k, rt, sigma)
		return d >= 0 && !math.IsNaN(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDurationMeanAndSpread(t *testing.T) {
	tt := TimingFor(taskgraph.Cholesky)
	rng := rand.New(rand.NewSource(3))
	const n = 20000
	sigma := 0.3
	e := tt.Expected[taskgraph.KGEMM][CPU]
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		d := tt.SampleDuration(rng, taskgraph.KGEMM, CPU, sigma)
		sum += d
		sumsq += d * d
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-e) > 0.02*e {
		t.Fatalf("sample mean %v, want ~%v", mean, e)
	}
	if math.Abs(std-sigma*e) > 0.05*sigma*e {
		t.Fatalf("sample std %v, want ~%v", std, sigma*e)
	}
}

func TestSampleDurationSeedDeterminism(t *testing.T) {
	tt := TimingFor(taskgraph.LU)
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		da := tt.SampleDuration(a, taskgraph.KGEMMLU, GPU, 0.5)
		db := tt.SampleDuration(b, taskgraph.KGEMMLU, GPU, 0.5)
		if da != db {
			t.Fatal("same seed must give same samples")
		}
	}
}

func TestResourceTypeString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Fatal("ResourceType.String wrong")
	}
}
