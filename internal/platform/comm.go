package platform

// CommModel is an optional communication-cost extension to the simulator.
//
// The paper assumes communications are fully overlapped with computation and
// neglects them (§III-A) — the justification being that tiles of order N
// carry O(N²) data against O(N³) work. This model lets the repository
// *verify* that assumption and explore regimes where it breaks: each
// dependency edge whose producer and consumer run on different resources
// delays the consumer's computation by
//
//	Latency + TileBytes / Bandwidth     (milliseconds)
//
// Transfers are non-blocking (they overlap computation on both resources) and
// contention-free; a transfer only manifests as a data-arrival stall on the
// consumer when it starts before its inputs arrive. A nil *CommModel means
// zero-cost communication, i.e. the paper's setting.
type CommModel struct {
	// LatencyMs is the fixed per-transfer latency in milliseconds.
	LatencyMs float64
	// TileBytes is the size of one tile's data in bytes.
	TileBytes float64
	// BandwidthBytesPerMs is the interconnect bandwidth in bytes per
	// millisecond (e.g. PCIe 3.0 x16 ≈ 16 GB/s ≈ 1.6e7 bytes/ms).
	BandwidthBytesPerMs float64
}

// DefaultCommModel returns a PCIe-class interconnect with 960x960
// double-precision tiles: ≈7.4 MB per tile, 16 GB/s, 10 µs latency. The
// resulting ≈0.47 ms per transfer is small against the tens-of-milliseconds
// kernels — consistent with the paper's overlap argument.
func DefaultCommModel() *CommModel {
	return &CommModel{
		LatencyMs:           0.01,
		TileBytes:           960 * 960 * 8,
		BandwidthBytesPerMs: 16e6,
	}
}

// Cost returns the transfer delay in milliseconds for data produced on
// resource from and consumed on resource to. Same-resource accesses are free.
// A nil model is free everywhere.
func (c *CommModel) Cost(from, to int) float64 {
	if c == nil || from == to || from < 0 {
		return 0
	}
	return c.LatencyMs + c.TileBytes/c.BandwidthBytesPerMs
}

// MeanCost returns the average transfer cost over distinct resource pairs of
// a platform with n resources — the communication term HEFT averages into its
// upward ranks. Zero for n < 2 or a nil model.
func (c *CommModel) MeanCost(n int) float64 {
	if c == nil || n < 2 {
		return 0
	}
	// Cost is uniform across distinct pairs; the mean over all pairs
	// (including same-resource, which are free) is cost·(n-1)/n.
	pair := c.LatencyMs + c.TileBytes/c.BandwidthBytesPerMs
	return pair * float64(n-1) / float64(n)
}
