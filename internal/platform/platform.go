// Package platform models the heterogeneous computing node of the paper:
// a few CPUs and GPUs with *unrelated* performance (the speed-up of a GPU
// over a CPU depends on the kernel), per-kernel expected durations taken from
// the dense linear-algebra literature, and the stochastic duration model of
// §V-B:
//
//	d(i,p) = max(0, N(E(i,p), σ·E(i,p))).
package platform

import (
	"fmt"
	"math/rand"

	"readys/internal/taskgraph"
)

// ResourceType distinguishes CPUs from GPUs.
type ResourceType int

// Resource types.
const (
	CPU ResourceType = iota
	GPU
	NumResourceTypes
)

// String returns "CPU" or "GPU".
func (r ResourceType) String() string {
	switch r {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	default:
		return fmt.Sprintf("ResourceType(%d)", int(r))
	}
}

// Resource is one computing unit of the platform.
type Resource struct {
	ID   int
	Type ResourceType
}

// Platform is an ordered set of resources. CPUs come first, then GPUs, which
// keeps resource IDs stable across runs.
type Platform struct {
	Resources []Resource
}

// New builds a platform with the given number of CPUs and GPUs.
func New(numCPU, numGPU int) Platform {
	if numCPU < 0 || numGPU < 0 || numCPU+numGPU == 0 {
		panic(fmt.Sprintf("platform: invalid sizes %d CPUs, %d GPUs", numCPU, numGPU))
	}
	p := Platform{}
	for i := 0; i < numCPU; i++ {
		p.Resources = append(p.Resources, Resource{ID: len(p.Resources), Type: CPU})
	}
	for i := 0; i < numGPU; i++ {
		p.Resources = append(p.Resources, Resource{ID: len(p.Resources), Type: GPU})
	}
	return p
}

// Size returns the number of resources.
func (p Platform) Size() int { return len(p.Resources) }

// Count returns the number of resources of the given type.
func (p Platform) Count(t ResourceType) int {
	var n int
	for _, r := range p.Resources {
		if r.Type == t {
			n++
		}
	}
	return n
}

// String renders the platform as e.g. "2CPU+2GPU".
func (p Platform) String() string {
	return fmt.Sprintf("%dCPU+%dGPU", p.Count(CPU), p.Count(GPU))
}

// Timing holds the expected duration (in milliseconds) of each kernel type of
// one DAG family on each resource type.
type Timing struct {
	Kind taskgraph.Kind
	// Expected[k][t] is E(kernel k, resource type t) in ms.
	Expected [taskgraph.NumKernels][NumResourceTypes]float64
}

// choleskyTiming, luTiming and qrTiming reproduce the expected kernel
// durations of double-precision 960x960 tiles on a multicore CPU node with
// discrete accelerators, as measured in the references the paper takes its
// cost models from (Agullo et al. [3], [4]; Agullo, Beaumont, Eyraud-Dubois,
// Kumar [6]). What matters for scheduling behaviour is the *unrelated*
// acceleration structure: trailing-matrix updates (GEMM, SYRK, TSMQR) enjoy
// 25-30x GPU speed-ups, triangular solves ~15x, while panel factorisations
// (POTRF, GETRF, GEQRT) barely double — exactly the regime in which
// allocation matters and HEFT/MCT/READYS differ.
var (
	choleskyTiming = Timing{
		Kind: taskgraph.Cholesky,
		Expected: [taskgraph.NumKernels][NumResourceTypes]float64{
			taskgraph.KPOTRF: {16, 8},   // 2.0x
			taskgraph.KTRSM:  {44, 2.9}, // 15.2x
			taskgraph.KSYRK:  {42, 1.6}, // 26.2x
			taskgraph.KGEMM:  {88, 3.0}, // 29.3x
		},
	}
	luTiming = Timing{
		Kind: taskgraph.LU,
		Expected: [taskgraph.NumKernels][NumResourceTypes]float64{
			taskgraph.KGETRF:  {30, 12},  // 2.5x
			taskgraph.KTRSML:  {44, 3.0}, // 14.7x
			taskgraph.KTRSMU:  {44, 3.0}, // 14.7x
			taskgraph.KGEMMLU: {88, 3.0}, // 29.3x
		},
	}
	qrTiming = Timing{
		Kind: taskgraph.QR,
		Expected: [taskgraph.NumKernels][NumResourceTypes]float64{
			taskgraph.KGEQRT: {35, 14},  // 2.5x
			taskgraph.KORMQR: {60, 4.0}, // 15.0x
			taskgraph.KTSQRT: {40, 10},  // 4.0x
			taskgraph.KTSMQR: {120, 5},  // 24.0x
		},
	}
	// randomTiming gives the synthetic kernels of random DAGs a similar
	// unrelated structure.
	randomTiming = Timing{
		Kind: taskgraph.Random,
		Expected: [taskgraph.NumKernels][NumResourceTypes]float64{
			0: {20, 10}, // 2x
			1: {50, 5},  // 10x
			2: {40, 2},  // 20x
			3: {90, 3},  // 30x
		},
	}
	// gemmTiming: loads/stores are memory-bound (little GPU advantage), the
	// multiply-accumulate kernel is the GPU's best case.
	gemmTiming = Timing{
		Kind: taskgraph.Gemm,
		Expected: [taskgraph.NumKernels][NumResourceTypes]float64{
			taskgraph.KLoadA:  {6, 4},  // 1.5x
			taskgraph.KLoadB:  {6, 4},  // 1.5x
			taskgraph.KStoreC: {6, 5},  // 1.2x
			taskgraph.KMulAcc: {88, 3}, // 29.3x
		},
	}
	// stencilTiming: interior cells vectorise well on GPUs; boundary cells
	// are branchy and favour CPUs slightly less markedly.
	stencilTiming = Timing{
		Kind: taskgraph.Stencil,
		Expected: [taskgraph.NumKernels][NumResourceTypes]float64{
			taskgraph.KCorner:   {10, 8}, // 1.25x
			taskgraph.KEdgeRow:  {18, 6}, // 3x
			taskgraph.KEdgeCol:  {18, 6}, // 3x
			taskgraph.KInterior: {30, 2}, // 15x
		},
	}
	// forkJoinTiming: fork/join/reduce are serial control tasks (CPU-ish),
	// the worker kernel is throughput-oriented.
	forkJoinTiming = Timing{
		Kind: taskgraph.ForkJoin,
		Expected: [taskgraph.NumKernels][NumResourceTypes]float64{
			taskgraph.KFork:   {5, 5},   // 1x
			taskgraph.KWork:   {60, 3},  // 20x
			taskgraph.KJoin:   {8, 6},   // 1.3x
			taskgraph.KReduce: {25, 10}, // 2.5x
		},
	}
)

// TimingFor returns the timing table of a DAG family.
func TimingFor(kind taskgraph.Kind) Timing {
	switch kind {
	case taskgraph.Cholesky:
		return choleskyTiming
	case taskgraph.LU:
		return luTiming
	case taskgraph.QR:
		return qrTiming
	case taskgraph.Random:
		return randomTiming
	case taskgraph.Gemm:
		return gemmTiming
	case taskgraph.Stencil:
		return stencilTiming
	case taskgraph.ForkJoin:
		return forkJoinTiming
	default:
		panic(fmt.Sprintf("platform: no timing for kind %v", kind))
	}
}

// ExpectedDuration returns E(task, resource) for a task of kernel k on a
// resource of type t.
func (tt Timing) ExpectedDuration(k taskgraph.Kernel, t ResourceType) float64 {
	return tt.Expected[k][t]
}

// MaxExpected returns the largest expected duration in the table, used to
// normalise time-valued state features.
func (tt Timing) MaxExpected() float64 {
	var m float64
	for _, row := range tt.Expected {
		for _, v := range row {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// MeanExpected returns the mean expected duration of kernel k over resource
// types, the quantity HEFT's upward ranks average over.
func (tt Timing) MeanExpected(k taskgraph.Kernel) float64 {
	var s float64
	for t := ResourceType(0); t < NumResourceTypes; t++ {
		s += tt.Expected[k][t]
	}
	return s / float64(NumResourceTypes)
}

// SampleDuration draws the actual duration of a task of kernel k on resource
// type t under noise level sigma, following §V-B:
// d = max(0, N(E, σE)). sigma = 0 returns E exactly, keeping the noise-free
// case deterministic.
func (tt Timing) SampleDuration(rng *rand.Rand, k taskgraph.Kernel, t ResourceType, sigma float64) float64 {
	e := tt.Expected[k][t]
	if sigma == 0 {
		return e
	}
	d := rng.NormFloat64()*sigma*e + e
	if d < 0 {
		return 0
	}
	return d
}
