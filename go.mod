module readys

go 1.22
